// Property test: the calendar EventQueue dispatches the exact same
// (time, seq, id) sequence as the pre-calendar reference heap.
//
// Determinism is a hard requirement of the kernel (ROADMAP: reproducible
// experiment numbers), so the calendar queue is not allowed to reorder even
// same-time events: ties break by insertion seq, bit-identically to the old
// binary heap. This test drives both queues through the same randomized
// scripts of push / pop / run_until operations — including same-time ties,
// zero-delay self-rescheduling callbacks, far-future times that land in the
// overflow tier, and same-time bursts that trigger a finer-width rebuild —
// and requires the dispatch logs to match element for element.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "sim/event_queue.h"
#include "sim/reference_event_queue.h"

namespace livesec::sim {
namespace {

struct Dispatch {
  SimTime time = 0;
  std::uint64_t seq = 0;
  std::uint32_t id = 0;

  bool operator==(const Dispatch& o) const {
    return time == o.time && seq == o.seq && id == o.id;
  }
};

/// Drives one queue implementation through a script. Callbacks may spawn
/// children from inside their own dispatch (possibly at the current time,
/// i.e. zero delay), which exercises push-during-drain reentrancy.
template <typename Queue>
class Driver {
 public:
  void spawn(SimTime t, std::uint32_t id, std::uint32_t children, SimTime child_delay) {
    queue_.push(t, [this, id, children, child_delay] {
      log_.back().id = id;
      for (std::uint32_t c = 0; c < children; ++c) {
        // First child is a zero-delay self-reschedule when child_delay > 0
        // is multiplied by c == 0; ids derive deterministically from the
        // parent so both queue implementations spawn identical trees.
        spawn(now_ + child_delay * c, id * 31u + c + 1u, children / 2, child_delay);
      }
    });
  }

  bool pop_one() {
    if (queue_.empty()) return false;
    auto e = queue_.pop();
    now_ = e.time;
    log_.push_back(Dispatch{e.time, e.seq, 0});
    e.action();
    return true;
  }

  void run_until(SimTime deadline) {
    while (!queue_.empty() && queue_.next_time() <= deadline) pop_one();
    if (now_ < deadline) now_ = deadline;
  }

  void drain() {
    while (pop_one()) {
    }
  }

  SimTime now() const { return now_; }
  const std::vector<Dispatch>& log() const { return log_; }

 private:
  Queue queue_;
  SimTime now_ = 0;
  std::vector<Dispatch> log_;
};

/// One scripted operation, generated once and applied to both queues.
struct Op {
  enum Kind { kPush, kPop, kRunUntil } kind = kPush;
  SimTime time_arg = 0;          // push: offset from now; run_until: delta
  std::uint32_t id = 0;          // push only
  std::uint32_t children = 0;    // push only
  SimTime child_delay = 0;       // push only
};

template <typename Queue>
std::vector<Dispatch> apply_script(const std::vector<Op>& script) {
  Driver<Queue> driver;
  for (const Op& op : script) {
    switch (op.kind) {
      case Op::kPush: {
        SimTime t = driver.now() + op.time_arg;
        if (t < 0) t = 0;
        driver.spawn(t, op.id, op.children, op.child_delay);
        break;
      }
      case Op::kPop:
        driver.pop_one();
        break;
      case Op::kRunUntil:
        driver.run_until(driver.now() + op.time_arg);
        break;
    }
  }
  driver.drain();
  return driver.log();
}

void expect_identical(const std::vector<Op>& script, const char* label) {
  const std::vector<Dispatch> calendar = apply_script<EventQueue>(script);
  const std::vector<Dispatch> reference = apply_script<ReferenceEventQueue>(script);
  ASSERT_EQ(calendar.size(), reference.size()) << label;
  for (std::size_t i = 0; i < calendar.size(); ++i) {
    ASSERT_TRUE(calendar[i] == reference[i])
        << label << ": dispatch " << i << " diverged — calendar (t=" << calendar[i].time
        << ", seq=" << calendar[i].seq << ", id=" << calendar[i].id << ") vs reference (t="
        << reference[i].time << ", seq=" << reference[i].seq << ", id=" << reference[i].id
        << ")";
  }
}

std::vector<Op> random_script(std::uint64_t seed, std::size_t ops) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> kind_dist(0, 99);
  // Delay mix: immediate (ties / current-day), near window, far overflow.
  std::uniform_int_distribution<SimTime> near_dist(0, 2000);
  std::uniform_int_distribution<SimTime> far_dist(0, 20'000'000);
  std::uniform_int_distribution<std::uint32_t> children_dist(0, 3);
  std::vector<Op> script;
  script.reserve(ops);
  SimTime last_push_offset = 0;
  for (std::size_t i = 0; i < ops; ++i) {
    const int k = kind_dist(rng);
    Op op;
    if (k < 60) {
      op.kind = Op::kPush;
      const int shape = kind_dist(rng);
      if (shape < 20) {
        op.time_arg = 0;  // dispatch "now": lands at/before the day cursor
      } else if (shape < 40) {
        op.time_arg = last_push_offset;  // deliberate same-time tie
      } else if (shape < 85) {
        op.time_arg = near_dist(rng);
      } else {
        op.time_arg = far_dist(rng);  // overflow tier + window rebuilds
      }
      last_push_offset = op.time_arg;
      op.id = static_cast<std::uint32_t>(rng());
      op.children = children_dist(rng);
      op.child_delay = (kind_dist(rng) < 30) ? 0 : near_dist(rng) / 4;
      script.push_back(op);
    } else if (k < 85) {
      op.kind = Op::kPop;
      script.push_back(op);
    } else {
      op.kind = Op::kRunUntil;
      op.time_arg = near_dist(rng) * 8;
      script.push_back(op);
    }
  }
  return script;
}

TEST(EventQueuePropertyTest, RandomizedSchedulesMatchReferenceHeap) {
  // 10 seeds x 1000 ops = 10k mixed operations, each op possibly spawning a
  // tree of child events from inside callbacks.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    expect_identical(random_script(seed, 1000), "random schedule");
  }
}

TEST(EventQueuePropertyTest, SameTimeBurstMatchesReferenceHeap) {
  // A sparse phase first (fixes a coarse bucket width), then a dense
  // same-time burst: exercises the burst-rebuild path and in-heap tie
  // ordering of several hundred events sharing one timestamp.
  std::vector<Op> script;
  for (int i = 0; i < 8; ++i) {
    script.push_back(Op{Op::kPush, i * 1'000'000, static_cast<std::uint32_t>(i), 0, 0});
  }
  script.push_back(Op{Op::kRunUntil, 2'500'000, 0, 0, 0});
  for (int i = 0; i < 500; ++i) {
    script.push_back(Op{Op::kPush, 777, static_cast<std::uint32_t>(1000 + i), 0, 0});
  }
  expect_identical(script, "same-time burst");
}

TEST(EventQueuePropertyTest, ZeroDelayCascadesMatchReferenceHeap) {
  // Chains that respawn at the exact current time while the current day is
  // being drained: every child must still run in seq order after its
  // same-time siblings.
  std::vector<Op> script;
  for (int i = 0; i < 32; ++i) {
    script.push_back(Op{Op::kPush, i % 4, static_cast<std::uint32_t>(i), 3, 0});
  }
  for (int i = 0; i < 64; ++i) script.push_back(Op{Op::kPop, 0, 0, 0, 0});
  for (int i = 0; i < 32; ++i) {
    script.push_back(Op{Op::kPush, 5, static_cast<std::uint32_t>(100 + i), 2, 0});
  }
  expect_identical(script, "zero-delay cascade");
}

TEST(EventQueuePropertyTest, PastPushesDuringDrainMatchReferenceHeap) {
  // Events pushed at times earlier than already-dispatched events (the queue
  // does not forbid it; the Simulator layer does) must still order by
  // (time, seq) against everything pending.
  std::vector<Op> script;
  for (int i = 0; i < 16; ++i) {
    script.push_back(Op{Op::kPush, 1000 + i * 10, static_cast<std::uint32_t>(i), 0, 0});
  }
  for (int i = 0; i < 8; ++i) script.push_back(Op{Op::kPop, 0, 0, 0, 0});
  for (int i = 0; i < 8; ++i) {
    script.push_back(Op{Op::kPush, -900, static_cast<std::uint32_t>(200 + i), 1, 0});
  }
  expect_identical(script, "past pushes");
}

}  // namespace
}  // namespace livesec::sim
