// Property test for the indexed PolicyTable: the two-tier hash lookup must
// be observationally identical to the priority-ordered linear scan it
// replaced, across randomized policy mixes, interleaved add/remove, and
// randomized flow keys.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <vector>

#include "controller/policy.h"
#include "packet/flow_key.h"

namespace livesec::ctrl {
namespace {

/// The reference semantics: first match in the (priority desc, insertion
/// asc) sorted vector wins. This is exactly what PolicyTable::lookup did
/// before the exact-match tiers existed.
const Policy* reference_lookup(const PolicyTable& table, const pkt::FlowKey& key) {
  for (const Policy& p : table.policies()) {
    if (p.matches(key)) return &p;
  }
  return nullptr;
}

MacAddress mac_from_pool(std::mt19937& rng, int pool) {
  return MacAddress::from_uint64(0x111100ull + std::uniform_int_distribution<int>(0, pool - 1)(rng));
}

Policy random_policy(std::mt19937& rng) {
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> pct(0, 99);
  Policy p;
  p.priority = std::uniform_int_distribution<int>(-5, 5)(rng);  // many ties
  // Mix of fully pinned, partially pinned and wildcard policies, so every
  // tier (mac-pair, mac-port, wildcard scan) gets populated.
  if (pct(rng) < 70) p.src_mac = mac_from_pool(rng, 6);
  if (pct(rng) < 50) p.dst_mac = mac_from_pool(rng, 6);
  if (pct(rng) < 40) p.tp_dst = static_cast<std::uint16_t>(std::uniform_int_distribution<int>(1, 4)(rng));
  if (pct(rng) < 25) {
    p.nw_src = Ipv4Address(10, 0, static_cast<std::uint8_t>(coin(rng)), 0);
    p.nw_src_prefix = 24;
  }
  if (pct(rng) < 20) p.nw_proto = static_cast<std::uint8_t>(coin(rng) ? 6 : 17);
  p.action = pct(rng) < 50 ? PolicyAction::kAllow
             : pct(rng) < 50 ? PolicyAction::kDeny
                             : PolicyAction::kRedirect;
  return p;
}

pkt::FlowKey random_key(std::mt19937& rng) {
  std::uniform_int_distribution<int> coin(0, 1);
  pkt::FlowKey key;
  key.dl_src = mac_from_pool(rng, 6);
  key.dl_dst = mac_from_pool(rng, 6);
  key.dl_type = 0x0800;
  key.nw_src = Ipv4Address(10, 0, static_cast<std::uint8_t>(coin(rng)),
                           static_cast<std::uint8_t>(std::uniform_int_distribution<int>(1, 9)(rng)));
  key.nw_dst = Ipv4Address(10, 0, 9, 9);
  key.nw_proto = static_cast<std::uint8_t>(coin(rng) ? 6 : 17);
  key.tp_src = static_cast<std::uint16_t>(std::uniform_int_distribution<int>(1000, 1005)(rng));
  key.tp_dst = static_cast<std::uint16_t>(std::uniform_int_distribution<int>(1, 5)(rng));
  return key;
}

TEST(PolicyIndexProperty, IndexedLookupMatchesLinearScan) {
  std::mt19937 rng(0xC0FFEE);
  for (int round = 0; round < 30; ++round) {
    PolicyTable table;
    const int policy_count = std::uniform_int_distribution<int>(0, 40)(rng);
    std::vector<std::uint32_t> ids;
    for (int i = 0; i < policy_count; ++i) ids.push_back(table.add(random_policy(rng)));

    for (int probe = 0; probe < 200; ++probe) {
      const pkt::FlowKey key = random_key(rng);
      const Policy* fast = table.lookup(key);
      const Policy* ref = reference_lookup(table, key);
      ASSERT_EQ(fast == nullptr, ref == nullptr) << "round " << round << " probe " << probe;
      if (fast != nullptr) {
        EXPECT_EQ(fast->id, ref->id) << "round " << round << " probe " << probe;
      }
    }

    // Interleave removals and re-check: the index must track the reordered
    // vector exactly.
    std::shuffle(ids.begin(), ids.end(), rng);
    const std::size_t keep = ids.size() / 2;
    for (std::size_t i = keep; i < ids.size(); ++i) EXPECT_TRUE(table.remove(ids[i]));
    for (int probe = 0; probe < 100; ++probe) {
      const pkt::FlowKey key = random_key(rng);
      const Policy* fast = table.lookup(key);
      const Policy* ref = reference_lookup(table, key);
      ASSERT_EQ(fast == nullptr, ref == nullptr);
      if (fast != nullptr) EXPECT_EQ(fast->id, ref->id);
    }
  }
}

TEST(PolicyIndexProperty, FindIsConsistentAcrossMutations) {
  std::mt19937 rng(42);
  PolicyTable table;
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 64; ++i) ids.push_back(table.add(random_policy(rng)));
  for (std::uint32_t id : ids) {
    const Policy* p = table.find(id);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->id, id);
  }
  EXPECT_EQ(table.find(9999), nullptr);

  // Remove half; find() must forget exactly those.
  for (std::size_t i = 0; i < ids.size(); i += 2) EXPECT_TRUE(table.remove(ids[i]));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const Policy* p = table.find(ids[i]);
    if (i % 2 == 0) {
      EXPECT_EQ(p, nullptr);
    } else {
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(p->id, ids[i]);
    }
  }
  EXPECT_FALSE(table.remove(ids[0]));  // already gone

  // Version moves on every mutation (decision caches depend on it).
  const std::uint64_t v = table.version();
  table.add(random_policy(rng));
  EXPECT_GT(table.version(), v);
}

}  // namespace
}  // namespace livesec::ctrl
