// Unit tests for the switching layer: legacy learning switch, spanning tree,
// OpenFlow datapath, Wi-Fi AP radio contention.
#include <gtest/gtest.h>

#include "openflow/channel.h"
#include "sim/simulator.h"
#include "switching/ethernet_switch.h"
#include "switching/openflow_switch.h"
#include "switching/spanning_tree.h"
#include "switching/wifi_ap.h"

namespace livesec::sw {
namespace {

class Endpoint : public sim::Node {
 public:
  Endpoint(sim::Simulator& sim, std::string name) : Node(sim, std::move(name)) { add_port(); }
  void handle_packet(PortId, pkt::PacketPtr packet) override { received.push_back(packet); }
  void emit(pkt::PacketPtr p) { send(0, std::move(p)); }
  std::vector<pkt::PacketPtr> received;
};

pkt::PacketPtr frame(std::uint64_t src, std::uint64_t dst, std::size_t payload = 100) {
  return pkt::PacketBuilder()
      .eth(MacAddress::from_uint64(src), MacAddress::from_uint64(dst))
      .ipv4(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), pkt::IpProto::kUdp)
      .udp(1, 2)
      .payload_size(payload)
      .finalize();
}

struct LegacyFixture {
  sim::Simulator sim;
  EthernetSwitch sw{sim, "legacy"};
  Endpoint a{sim, "a"}, b{sim, "b"}, c{sim, "c"};
  std::vector<std::unique_ptr<sim::Link>> links;

  LegacyFixture() {
    links.push_back(sim::connect(sim, a.port(0), sw.add_port()));
    links.push_back(sim::connect(sim, b.port(0), sw.add_port()));
    links.push_back(sim::connect(sim, c.port(0), sw.add_port()));
  }
};

TEST(EthernetSwitch, FloodsUnknownUnicastThenLearns) {
  LegacyFixture f;
  f.a.emit(frame(1, 2));  // dst unknown: flood to b and c
  f.sim.run();
  EXPECT_EQ(f.b.received.size(), 1u);
  EXPECT_EQ(f.c.received.size(), 1u);
  EXPECT_EQ(f.sw.flooded_packets(), 1u);

  f.b.emit(frame(2, 1));  // a was learned: unicast only
  f.sim.run();
  EXPECT_EQ(f.a.received.size(), 1u);
  EXPECT_EQ(f.c.received.size(), 1u);  // unchanged
  EXPECT_EQ(f.sw.forwarded_packets(), 1u);

  f.a.emit(frame(1, 2));  // b now learned too
  f.sim.run();
  EXPECT_EQ(f.b.received.size(), 2u);
  EXPECT_EQ(f.c.received.size(), 1u);
}

TEST(EthernetSwitch, BroadcastAlwaysFloods) {
  LegacyFixture f;
  f.a.emit(frame(1, 0xFFFFFFFFFFFF));
  f.sim.run();
  EXPECT_EQ(f.b.received.size(), 1u);
  EXPECT_EQ(f.c.received.size(), 1u);
  EXPECT_EQ(f.a.received.size(), 0u);  // not back out the ingress
}

TEST(EthernetSwitch, BlockedPortDropsBothDirections) {
  LegacyFixture f;
  f.sw.set_port_blocked(2, true);  // c's port
  f.a.emit(frame(1, 0xFFFFFFFFFFFF));
  f.sim.run();
  EXPECT_EQ(f.b.received.size(), 1u);
  EXPECT_EQ(f.c.received.size(), 0u);

  f.c.emit(frame(3, 1));  // ingress on blocked port: dropped
  f.sim.run();
  EXPECT_EQ(f.a.received.size(), 0u);
  EXPECT_EQ(f.sw.learned_port(MacAddress::from_uint64(3)), kInvalidPort);
}

TEST(EthernetSwitch, MacAgingForgetsIdleHosts) {
  sim::Simulator sim;
  EthernetSwitch::Config config;
  config.mac_aging = 1 * kSecond;
  EthernetSwitch sw(sim, "legacy", config);
  Endpoint a(sim, "a"), b(sim, "b");
  auto l1 = sim::connect(sim, a.port(0), sw.add_port());
  auto l2 = sim::connect(sim, b.port(0), sw.add_port());

  a.emit(frame(1, 2));
  sim.run();
  EXPECT_EQ(sw.learned_port(MacAddress::from_uint64(1)), 0u);
  sim.run_until(sim.now() + 2 * kSecond);
  EXPECT_EQ(sw.learned_port(MacAddress::from_uint64(1)), kInvalidPort);
}

TEST(EthernetSwitch, DoesNotLearnMulticastSources) {
  LegacyFixture f;
  f.a.emit(frame(0xFFFFFFFFFFFF, 2));
  f.sim.run();
  EXPECT_EQ(f.sw.learned_port(MacAddress::broadcast()), kInvalidPort);
}

// --- SpanningTree ---------------------------------------------------------------

TEST(SpanningTree, TriangleBlocksExactlyOneEdge) {
  SpanningTree graph;
  graph.add_edge({{0, 0}, {1, 0}, 1});
  graph.add_edge({{1, 1}, {2, 0}, 1});
  graph.add_edge({{2, 1}, {0, 1}, 1});
  EXPECT_TRUE(graph.connected());
  EXPECT_EQ(graph.compute_tree().size(), 2u);
  EXPECT_EQ(graph.compute_blocked().size(), 1u);
}

TEST(SpanningTree, TreeTopologyBlocksNothing) {
  SpanningTree graph;
  graph.add_edge({{0, 0}, {1, 0}, 1});
  graph.add_edge({{1, 1}, {2, 0}, 1});
  graph.add_edge({{1, 2}, {3, 0}, 1});
  EXPECT_TRUE(graph.connected());
  EXPECT_TRUE(graph.compute_blocked().empty());
}

TEST(SpanningTree, DisconnectedGraphDetected) {
  SpanningTree graph;
  graph.add_edge({{0, 0}, {1, 0}, 1});
  graph.add_node(5);
  EXPECT_FALSE(graph.connected());
}

TEST(SpanningTree, PrefersLowerCostEdges) {
  SpanningTree graph;
  graph.add_edge({{0, 0}, {1, 0}, 10});  // expensive
  graph.add_edge({{0, 1}, {2, 0}, 1});
  graph.add_edge({{2, 1}, {1, 1}, 1});
  const auto blocked = graph.compute_blocked();
  ASSERT_EQ(blocked.size(), 1u);
  EXPECT_EQ(blocked[0].cost, 10u);
}

// Property sweep: on K_n (complete graph), exactly n-1 edges survive and the
// blocked count is n(n-1)/2 - (n-1), for a range of n.
class SpanningTreeComplete : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SpanningTreeComplete, KeepsExactlyNMinusOneEdges) {
  const std::uint32_t n = GetParam();
  SpanningTree graph;
  std::uint32_t port_counter = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      graph.add_edge({{i, port_counter++}, {j, port_counter++}, 1});
    }
  }
  EXPECT_TRUE(graph.connected());
  EXPECT_EQ(graph.compute_tree().size(), n - 1);
  EXPECT_EQ(graph.compute_blocked().size(), n * (n - 1) / 2 - (n - 1));
}

INSTANTIATE_TEST_SUITE_P(CompleteGraphs, SpanningTreeComplete, ::testing::Values(2, 3, 5, 8, 12));

// --- OpenFlowSwitch ----------------------------------------------------------------

class RecordingController : public of::ControllerEndpoint {
 public:
  void handle_switch_message(DatapathId dpid, const of::Message& m) override {
    messages.emplace_back(dpid, m);
  }
  void handle_switch_connected(DatapathId dpid, const of::FeaturesReply& f) override {
    connected.emplace_back(dpid, f);
  }
  void handle_switch_disconnected(DatapathId) override {}
  std::vector<std::pair<DatapathId, of::Message>> messages;
  std::vector<std::pair<DatapathId, of::FeaturesReply>> connected;

  const of::PacketIn* last_packet_in() const {
    for (auto it = messages.rbegin(); it != messages.rend(); ++it) {
      if (const auto* pin = std::get_if<of::PacketIn>(&it->second)) return pin;
    }
    return nullptr;
  }
};

struct OfFixture {
  sim::Simulator sim;
  OpenFlowSwitch sw{sim, "ovs", 1};
  RecordingController controller;
  of::SecureChannel channel{sim, sw, controller};
  Endpoint host{sim, "host"}, peer{sim, "peer"};
  std::vector<std::unique_ptr<sim::Link>> links;

  OfFixture() {
    links.push_back(sim::connect(sim, host.port(0), sw.add_port(PortRole::kNetworkPeriphery)));
    links.push_back(sim::connect(sim, peer.port(0), sw.add_port(PortRole::kLegacySwitching)));
    sw.connect_controller(channel);
    sim.run();
  }
};

TEST(OpenFlowSwitch, HandshakeAnnouncesFeatures) {
  OfFixture f;
  ASSERT_EQ(f.controller.connected.size(), 1u);
  EXPECT_EQ(f.controller.connected[0].first, 1u);
  EXPECT_EQ(f.controller.connected[0].second.num_ports, 2u);
}

TEST(OpenFlowSwitch, NpMissPuntsToController) {
  OfFixture f;
  f.host.emit(frame(1, 2));
  f.sim.run();
  const of::PacketIn* pin = f.controller.last_packet_in();
  ASSERT_NE(pin, nullptr);
  EXPECT_EQ(pin->in_port, 0u);
  EXPECT_EQ(f.sw.packet_ins_sent(), 1u);
}

TEST(OpenFlowSwitch, LsMissDropsSilently) {
  OfFixture f;
  f.peer.emit(frame(5, 6));
  f.sim.run();
  EXPECT_EQ(f.sw.packet_ins_sent(), 0u);
  EXPECT_EQ(f.sw.miss_drops(), 1u);
}

TEST(OpenFlowSwitch, LldpFromLsPortStillPunts) {
  OfFixture f;
  pkt::Packet lldp;
  lldp.eth.src = MacAddress::from_uint64(9);
  lldp.eth.dst = MacAddress::from_uint64(0x0180c200000e);
  lldp.eth.ether_type = static_cast<std::uint16_t>(pkt::EtherType::kLldp);
  f.peer.emit(pkt::finalize(std::move(lldp)));
  f.sim.run();
  EXPECT_EQ(f.sw.packet_ins_sent(), 1u);
}

TEST(OpenFlowSwitch, InstalledEntryForwardsWithoutController) {
  OfFixture f;
  auto p = frame(1, 2);
  of::FlowMod mod;
  mod.entry.match = of::Match::exact(0, pkt::FlowKey::from_packet(*p));
  mod.entry.actions = of::output_to(1);
  f.channel.send_to_switch(mod);
  f.sim.run();

  f.host.emit(p);
  f.sim.run();
  EXPECT_EQ(f.peer.received.size(), 1u);
  EXPECT_EQ(f.sw.packet_ins_sent(), 0u);
}

TEST(OpenFlowSwitch, SetDlDstRewritesBeforeOutput) {
  OfFixture f;
  auto p = frame(1, 2);
  const MacAddress se_mac = MacAddress::from_uint64(0x5E);
  of::FlowMod mod;
  mod.entry.match = of::Match::exact(0, pkt::FlowKey::from_packet(*p));
  mod.entry.actions = {of::ActionSetDlDst{se_mac}, of::ActionOutput{1}};
  f.channel.send_to_switch(mod);
  f.sim.run();

  f.host.emit(p);
  f.sim.run();
  ASSERT_EQ(f.peer.received.size(), 1u);
  EXPECT_EQ(f.peer.received[0]->eth.dst, se_mac);
  EXPECT_EQ(p->eth.dst, MacAddress::from_uint64(2));  // original untouched
}

TEST(OpenFlowSwitch, DropActionDiscards) {
  OfFixture f;
  auto p = frame(1, 2);
  of::FlowMod mod;
  mod.entry.match = of::Match::exact(0, pkt::FlowKey::from_packet(*p));
  mod.entry.actions = of::drop();
  f.channel.send_to_switch(mod);
  f.sim.run();

  f.host.emit(p);
  f.sim.run();
  EXPECT_EQ(f.peer.received.size(), 0u);
  EXPECT_EQ(f.sw.packet_ins_sent(), 0u);
}

TEST(OpenFlowSwitch, FlowModReleasesBufferedPacket) {
  OfFixture f;
  f.host.emit(frame(1, 2));
  f.sim.run();
  const of::PacketIn* pin = f.controller.last_packet_in();
  ASSERT_NE(pin, nullptr);

  of::FlowMod mod;
  mod.entry.match = of::Match::exact(0, pkt::FlowKey::from_packet(*pin->packet));
  mod.entry.actions = of::output_to(1);
  mod.buffer_id = pin->buffer_id;
  f.channel.send_to_switch(mod);
  f.sim.run();
  EXPECT_EQ(f.peer.received.size(), 1u);  // the first packet was not lost
}

TEST(OpenFlowSwitch, PacketOutInjects) {
  OfFixture f;
  of::PacketOut out;
  out.actions = of::output_to(0);
  out.packet = frame(7, 1);
  f.channel.send_to_switch(out);
  f.sim.run();
  EXPECT_EQ(f.host.received.size(), 1u);
}

TEST(OpenFlowSwitch, FlowRemovedNotifiesController) {
  OfFixture f;
  auto p = frame(1, 2);
  of::FlowMod mod;
  mod.entry.match = of::Match::exact(0, pkt::FlowKey::from_packet(*p));
  mod.entry.actions = of::output_to(1);
  mod.entry.idle_timeout = 10 * kMillisecond;
  mod.entry.cookie = 0xC00CE;
  f.channel.send_to_switch(mod);
  f.sim.run();
  f.host.emit(p);
  f.sim.run();

  // Another miss later forces a lookup that lazily expires the idle entry.
  f.sim.run_until(f.sim.now() + 1 * kSecond);
  f.host.emit(frame(1, 3));
  f.sim.run();

  bool saw_removed = false;
  for (const auto& [dpid, m] : f.controller.messages) {
    if (const auto* removed = std::get_if<of::FlowRemoved>(&m)) {
      EXPECT_EQ(removed->cookie, 0xC00CEu);
      EXPECT_EQ(removed->packet_count, 1u);
      saw_removed = true;
    }
  }
  EXPECT_TRUE(saw_removed);
}

TEST(OpenFlowSwitch, StatsReplyReportsTable) {
  OfFixture f;
  auto p = frame(1, 2);
  of::FlowMod mod;
  mod.entry.match = of::Match::exact(0, pkt::FlowKey::from_packet(*p));
  mod.entry.actions = of::output_to(1);
  f.channel.send_to_switch(mod);
  f.sim.run();
  f.host.emit(p);
  f.sim.run();

  f.channel.send_to_switch(of::StatsRequest{});
  f.sim.run();
  bool saw_stats = false;
  for (const auto& [dpid, m] : f.controller.messages) {
    if (const auto* stats = std::get_if<of::StatsReply>(&m)) {
      ASSERT_EQ(stats->flows.size(), 1u);
      EXPECT_EQ(stats->flows[0].packet_count, 1u);
      saw_stats = true;
    }
  }
  EXPECT_TRUE(saw_stats);
}

// --- WifiAccessPoint -----------------------------------------------------------------

TEST(WifiAccessPoint, RadioCapsAggregateStationThroughput) {
  sim::Simulator sim;
  WifiAccessPoint ap(sim, "ap", 10);
  RecordingController controller;
  of::SecureChannel channel(sim, ap, controller);

  Endpoint sta1(sim, "sta1"), sta2(sim, "sta2"), uplink(sim, "uplink");
  std::vector<std::unique_ptr<sim::Link>> links;
  links.push_back(sim::connect(sim, sta1.port(0), ap.add_station_port()));
  links.push_back(sim::connect(sim, sta2.port(0), ap.add_station_port()));
  links.push_back(sim::connect(sim, uplink.port(0), ap.add_uplink_port()));
  ap.connect_controller(channel);
  sim.run();

  // Pre-install forwarding for both stations toward the uplink.
  for (auto src : {1, 2}) {
    auto p = frame(static_cast<std::uint64_t>(src), 99, 1400);
    of::FlowMod mod;
    mod.entry.match = of::Match::exact(static_cast<PortId>(src - 1),
                                       pkt::FlowKey::from_packet(*p));
    mod.entry.actions = of::output_to(2);
    channel.send_to_switch(mod);
  }
  sim.run();

  std::uint64_t offered_bytes = 0;
  for (int i = 0; i < 200; ++i) {
    auto p1 = frame(1, 99, 1400);
    auto p2 = frame(2, 99, 1400);
    offered_bytes += p1->wire_size() + p2->wire_size();
    sta1.emit(std::move(p1));
    sta2.emit(std::move(p2));
  }
  sim.run();
  ASSERT_EQ(uplink.received.size(), 400u);
  const double rate = static_cast<double>(offered_bytes) * 8.0 / to_seconds(sim.now());
  // Aggregate throughput must be pinned near the 43 Mbps radio, not 2x.
  EXPECT_LT(rate, 46e6);
  EXPECT_GT(rate, 38e6);
}

}  // namespace
}  // namespace livesec::sw
