// Unit tests for the service-element substrate: daemon message codec,
// Aho-Corasick matcher, IDS engine, L7 classifier, virus scanner, and the
// ServiceElement processing pipeline.
#include <gtest/gtest.h>

#include <random>

#include "services/ids/aho_corasick.h"
#include "services/ids/ids_engine.h"
#include "services/ids/signature.h"
#include "services/l7/l7_classifier.h"
#include "services/message.h"
#include "services/scanner/virus_scanner.h"
#include "services/service_element.h"
#include "sim/simulator.h"

namespace livesec::svc {
namespace {

// --- DaemonMessage codec -----------------------------------------------------

TEST(DaemonMessage, OnlineRoundTrip) {
  DaemonMessage m;
  m.se_id = 42;
  m.cert_token = 0xFEEDFACE;
  OnlineMessage online;
  online.service = ServiceType::kProtocolIdentification;
  online.cpu_percent = 73;
  online.memory_mb = 512;
  online.packets_per_second = 120000;
  online.processed_packets_total = 9999999;
  online.processed_bytes_total = 1234567890123ull;
  online.queued_packets = 17;
  online.capacity_bps = 500000000;
  m.body = online;

  const auto decoded = DaemonMessage::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->se_id, 42u);
  EXPECT_EQ(decoded->cert_token, 0xFEEDFACEu);
  const auto* o = std::get_if<OnlineMessage>(&decoded->body);
  ASSERT_NE(o, nullptr);
  EXPECT_EQ(o->service, ServiceType::kProtocolIdentification);
  EXPECT_EQ(o->cpu_percent, 73);
  EXPECT_EQ(o->packets_per_second, 120000u);
  EXPECT_EQ(o->processed_bytes_total, 1234567890123ull);
  EXPECT_EQ(o->queued_packets, 17u);
}

TEST(DaemonMessage, EventRoundTrip) {
  DaemonMessage m;
  m.se_id = 7;
  m.cert_token = 1;
  EventMessage event;
  event.kind = EventKind::kAttackDetected;
  event.rule_id = 1014;
  event.severity = 8;
  event.observed_dpid = 3;
  event.observed_port = 5;
  event.flow.dl_src = MacAddress::from_uint64(0xAA);
  event.flow.dl_dst = MacAddress::from_uint64(0xBB);
  event.flow.nw_src = Ipv4Address(10, 0, 0, 1);
  event.flow.nw_dst = Ipv4Address(10, 0, 0, 2);
  event.flow.nw_proto = 6;
  event.flow.tp_src = 12345;
  event.flow.tp_dst = 80;
  event.description = "web.malicious-site";
  m.body = event;

  const auto decoded = DaemonMessage::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  const auto* e = std::get_if<EventMessage>(&decoded->body);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, EventKind::kAttackDetected);
  EXPECT_EQ(e->rule_id, 1014u);
  EXPECT_EQ(e->flow, event.flow);
  EXPECT_EQ(e->description, "web.malicious-site");
}

TEST(DaemonMessage, OnlineRoundTripCarriesFastPathLoad) {
  DaemonMessage m;
  m.se_id = 3;
  m.cert_token = 0xABCD;
  OnlineMessage online;
  online.service = ServiceType::kVirusScan;
  online.flow_contexts = 321;
  online.context_evictions = 12;
  online.batches_total = 400;
  online.batch_packets_total = 4807;
  online.batch_size_hist = {1, 2, 3, 4, 5, 6};
  m.body = online;

  const auto decoded = DaemonMessage::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  const auto* o = std::get_if<OnlineMessage>(&decoded->body);
  ASSERT_NE(o, nullptr);
  EXPECT_EQ(o->flow_contexts, 321u);
  EXPECT_EQ(o->context_evictions, 12u);
  EXPECT_EQ(o->batches_total, 400u);
  EXPECT_EQ(o->batch_packets_total, 4807u);
  EXPECT_EQ(o->batch_size_hist, (std::array<std::uint32_t, 6>{1, 2, 3, 4, 5, 6}));
}

TEST(DaemonMessage, VerdictRoundTrip) {
  DaemonMessage m;
  m.se_id = 9;
  m.cert_token = 0x77;
  VerdictMessage verdict;
  verdict.verdict = FlowVerdict::kBenign;
  verdict.flow.dl_src = MacAddress::from_uint64(0xA1);
  verdict.flow.dl_dst = MacAddress::from_uint64(0x5E0001);  // as seen at the SE
  verdict.flow.dl_type = 0x0800;
  verdict.flow.nw_src = Ipv4Address(10, 0, 0, 1);
  verdict.flow.nw_dst = Ipv4Address(10, 0, 0, 2);
  verdict.flow.nw_proto = 17;
  verdict.flow.tp_src = 40000;
  verdict.flow.tp_dst = 9000;
  verdict.inspected_bytes = 123456;
  verdict.byte_budget = 65536;
  verdict.rule_id = 1013;
  verdict.severity = 3;
  m.body = verdict;

  const auto decoded = DaemonMessage::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->se_id, 9u);
  const auto* v = std::get_if<VerdictMessage>(&decoded->body);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->verdict, FlowVerdict::kBenign);
  EXPECT_EQ(v->flow, verdict.flow);
  EXPECT_EQ(v->inspected_bytes, 123456u);
  EXPECT_EQ(v->byte_budget, 65536u);
  EXPECT_EQ(v->rule_id, 1013u);
  EXPECT_EQ(v->severity, 3);
}

TEST(DaemonMessage, DecodeRejectsBadMagicVersionTruncation) {
  DaemonMessage m;
  m.se_id = 1;
  m.body = OnlineMessage{};
  auto bytes = m.encode();

  auto corrupted = bytes;
  corrupted[0] ^= 0xFF;  // magic
  EXPECT_FALSE(DaemonMessage::decode(corrupted).has_value());

  corrupted = bytes;
  corrupted[4] = 99;  // version
  EXPECT_FALSE(DaemonMessage::decode(corrupted).has_value());

  corrupted = bytes;
  corrupted[5] = 77;  // unknown type
  EXPECT_FALSE(DaemonMessage::decode(corrupted).has_value());

  corrupted.assign(bytes.begin(), bytes.begin() + 10);  // truncated
  EXPECT_FALSE(DaemonMessage::decode(corrupted).has_value());
}

TEST(DaemonMessage, IsDaemonPacketChecksUdpPort) {
  const pkt::Packet daemon = pkt::PacketBuilder()
                                 .eth(MacAddress::from_uint64(1), controller_service_mac())
                                 .ipv4(Ipv4Address(10, 0, 0, 1), controller_service_ip(),
                                       pkt::IpProto::kUdp)
                                 .udp(kLiveSecPort, kLiveSecPort)
                                 .build();
  EXPECT_TRUE(is_daemon_packet(daemon));
  const pkt::Packet normal = pkt::PacketBuilder()
                                 .eth(MacAddress::from_uint64(1), MacAddress::from_uint64(2))
                                 .ipv4(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                                       pkt::IpProto::kUdp)
                                 .udp(1, 53)
                                 .build();
  EXPECT_FALSE(is_daemon_packet(normal));
}

// --- AhoCorasick ------------------------------------------------------------------

TEST(AhoCorasick, FindsAllOccurrences) {
  ids::AhoCorasick ac;
  const auto he = ac.add_pattern("he");
  const auto she = ac.add_pattern("she");
  const auto his = ac.add_pattern("his");
  const auto hers = ac.add_pattern("hers");
  ac.build();

  const std::string text = "ushers";
  std::vector<ids::AhoCorasick::Hit> hits;
  ac.scan(std::span(reinterpret_cast<const std::uint8_t*>(text.data()), text.size()), hits);
  // Classic example: "she" at 1..3, "he" at 2..3, "hers" at 2..5.
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].pattern_id, she);
  EXPECT_EQ(hits[1].pattern_id, he);
  EXPECT_EQ(hits[2].pattern_id, hers);
  (void)his;
}

TEST(AhoCorasick, MatchesBinaryPatterns) {
  ids::AhoCorasick ac;
  const std::string nops(8, '\x90');
  ac.add_pattern(nops);
  ac.build();
  std::vector<std::uint8_t> payload(100, 0x41);
  for (int i = 50; i < 58; ++i) payload[static_cast<std::size_t>(i)] = 0x90;
  EXPECT_TRUE(ac.contains_any(payload));
  payload[53] = 0x00;
  EXPECT_FALSE(ac.contains_any(payload));
}

TEST(AhoCorasick, StreamingFindsPatternsSplitAcrossChunks) {
  ids::AhoCorasick ac;
  ac.add_pattern("ATTACK-MARKER");
  ac.build();
  const std::string part1 = "benign data ATTACK-";
  const std::string part2 = "MARKER more data";
  std::uint32_t state = 0;
  std::vector<ids::AhoCorasick::Hit> hits;
  ac.scan_stream(std::span(reinterpret_cast<const std::uint8_t*>(part1.data()), part1.size()),
                 state, hits);
  EXPECT_TRUE(hits.empty());
  ac.scan_stream(std::span(reinterpret_cast<const std::uint8_t*>(part2.data()), part2.size()),
                 state, hits);
  ASSERT_EQ(hits.size(), 1u);
}

// Property: Aho-Corasick results equal naive search over random text.
TEST(AhoCorasick, AgreesWithNaiveSearchOnRandomInput) {
  std::mt19937 rng(1234);
  const std::vector<std::string> patterns = {"ab", "abc", "bca", "aa", "cab"};
  ids::AhoCorasick ac;
  for (const auto& p : patterns) ac.add_pattern(p);
  ac.build();

  for (int trial = 0; trial < 50; ++trial) {
    std::string text;
    for (int i = 0; i < 200; ++i) text.push_back(static_cast<char>('a' + rng() % 3));

    std::size_t naive = 0;
    for (const auto& p : patterns) {
      for (std::size_t pos = 0; pos + p.size() <= text.size(); ++pos) {
        if (text.compare(pos, p.size(), p) == 0) ++naive;
      }
    }
    std::vector<ids::AhoCorasick::Hit> hits;
    ac.scan(std::span(reinterpret_cast<const std::uint8_t*>(text.data()), text.size()), hits);
    EXPECT_EQ(hits.size(), naive) << "trial " << trial;
  }
}

// --- rule parsing ---------------------------------------------------------------

TEST(Signature, ParsesRuleLines) {
  std::vector<std::string> errors;
  const auto rules = ids::parse_rules(
      "# comment\n"
      "\n"
      "2001 test.rule tcp 80 7 evil\\spayload\n"
      "2002 multi any 0 5 part1|part2\n",
      errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].id, 2001u);
  EXPECT_EQ(rules[0].dst_port, 80);
  ASSERT_EQ(rules[0].contents.size(), 1u);
  EXPECT_EQ(rules[0].contents[0], "evil payload");
  ASSERT_EQ(rules[1].contents.size(), 2u);
}

TEST(Signature, CollectsParseErrors) {
  std::vector<std::string> errors;
  const auto rules = ids::parse_rules(
      "bad line\n"
      "2001 ok tcp 80 7 x\n"
      "2002 badproto xxx 80 7 x\n"
      "2003 badsev tcp 80 99 x\n",
      errors);
  EXPECT_EQ(rules.size(), 1u);
  EXPECT_EQ(errors.size(), 3u);
}

TEST(Signature, HexEscapesDecode) {
  std::vector<std::string> errors;
  const auto rules = ids::parse_rules("3001 hex any 0 5 \\x90\\x90\\xde\\xad\n", errors);
  ASSERT_EQ(rules.size(), 1u);
  const std::string expected = {'\x90', '\x90', '\xde', '\xad'};
  EXPECT_EQ(rules[0].contents[0], expected);
}

// --- IdsEngine --------------------------------------------------------------------

pkt::Packet http_packet(std::string_view payload, std::uint16_t src_port = 40000) {
  return pkt::PacketBuilder()
      .eth(MacAddress::from_uint64(0xA1), MacAddress::from_uint64(0xB2))
      .ipv4(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), pkt::IpProto::kTcp)
      .tcp(src_port, 80, pkt::TcpFlags::kPsh)
      .payload(payload)
      .build();
}

TEST(IdsEngine, DetectsSqlInjection) {
  ids::IdsEngine engine;
  const auto alerts = engine.inspect(http_packet("GET /q?id=1 UNION SELECT * FROM users"));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule_id, 1001u);
  EXPECT_EQ(alerts[0].severity, 8);
}

TEST(IdsEngine, PortConstraintSuppressesWrongPort) {
  ids::IdsEngine engine;
  // Same content but to port 443: the port-80 rule must not fire.
  pkt::Packet p = pkt::PacketBuilder()
                      .eth(MacAddress::from_uint64(0xA1), MacAddress::from_uint64(0xB2))
                      .ipv4(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                            pkt::IpProto::kTcp)
                      .tcp(40000, 443, pkt::TcpFlags::kPsh)
                      .payload("UNION SELECT")
                      .build();
  EXPECT_TRUE(engine.inspect(p).empty());
}

TEST(IdsEngine, AlertsOncePerFlowPerRule) {
  ids::IdsEngine engine;
  EXPECT_EQ(engine.inspect(http_packet("UNION SELECT a")).size(), 1u);
  EXPECT_EQ(engine.inspect(http_packet("UNION SELECT b")).size(), 0u);  // same flow
  EXPECT_EQ(engine.inspect(http_packet("UNION SELECT c", 40001)).size(), 1u);  // new flow
}

TEST(IdsEngine, DetectsPatternSplitAcrossPackets) {
  ids::IdsEngine engine;
  EXPECT_TRUE(engine.inspect(http_packet("prefix UNION ")).empty());
  const auto alerts = engine.inspect(http_packet("SELECT suffix"));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule_id, 1001u);
}

TEST(IdsEngine, MultiContentRuleNeedsAllParts) {
  std::vector<std::string> errors;
  auto rules = ids::parse_rules("9001 multi tcp 0 9 PART_ONE|PART_TWO\n", errors);
  ids::IdsEngine engine(std::move(rules));
  EXPECT_TRUE(engine.inspect(http_packet("PART_ONE only")).empty());
  const auto alerts = engine.inspect(http_packet("now PART_TWO"));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule_id, 9001u);
}

TEST(IdsEngine, ForgetFlowResetsState) {
  ids::IdsEngine engine;
  engine.inspect(http_packet("UNION SELECT x"));
  engine.forget_flow(pkt::FlowKey::from_packet(http_packet("any")));
  EXPECT_EQ(engine.tracked_flows(), 0u);
  // Re-alerting is allowed after the flow state is dropped.
  EXPECT_EQ(engine.inspect(http_packet("UNION SELECT y")).size(), 1u);
}

TEST(IdsEngine, CleanTrafficRaisesNothing) {
  ids::IdsEngine engine;
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(engine.inspect(http_packet("GET /index.html HTTP/1.1\r\n\r\n",
                                           static_cast<std::uint16_t>(41000 + i)))
                    .empty());
  }
  EXPECT_EQ(engine.alerts_raised(), 0u);
}

// --- L7Classifier ------------------------------------------------------------------

pkt::Packet flow_packet(std::string_view payload, std::uint16_t src, std::uint16_t dst,
                        pkt::IpProto proto = pkt::IpProto::kTcp) {
  pkt::PacketBuilder b;
  b.eth(MacAddress::from_uint64(0xC1), MacAddress::from_uint64(0xD2))
      .ipv4(Ipv4Address(10, 0, 1, 1), Ipv4Address(10, 0, 1, 2), proto);
  if (proto == pkt::IpProto::kTcp) {
    b.tcp(src, dst);
  } else {
    b.udp(src, dst);
  }
  b.payload(payload);
  return b.build();
}

TEST(L7Classifier, IdentifiesCommonProtocols) {
  l7::L7Classifier classifier;
  EXPECT_EQ(classifier.classify(flow_packet("GET / HTTP/1.1\r\n", 1001, 80)).proto,
            l7::AppProtocol::kHttp);
  EXPECT_EQ(classifier.classify(flow_packet("SSH-2.0-OpenSSH_5.8", 1002, 22)).proto,
            l7::AppProtocol::kSsh);
  std::string bt = "\x13";
  bt += "BitTorrent protocol";
  EXPECT_EQ(classifier.classify(flow_packet(bt, 1003, 6881)).proto,
            l7::AppProtocol::kBitTorrent);
  EXPECT_EQ(classifier.classify(flow_packet("220 ftp.example ready", 1004, 21)).proto,
            l7::AppProtocol::kFtp);
  EXPECT_EQ(classifier.classify(flow_packet("EHLO mail.example", 1005, 25)).proto,
            l7::AppProtocol::kSmtp);
}

TEST(L7Classifier, BitTorrentHandshakeHelperMatchesClassifier) {
  // A handshake built by the shared helper must be exactly the BEP 3 layout
  // and must classify as BitTorrent (the generator and classifier share the
  // kBitTorrentProtocolHeader constant, so they cannot drift apart).
  const std::string handshake =
      l7::make_bittorrent_handshake("INFOHASHINFOHASHXXXX", "PEERIDPEERIDPEERIDPE");
  ASSERT_EQ(handshake.size(), 68u);
  EXPECT_EQ(handshake[0], '\x13');
  EXPECT_EQ(handshake.substr(1, 19), "BitTorrent protocol");
  EXPECT_EQ(handshake.substr(20, 8), std::string(8, '\0'));  // reserved bits
  EXPECT_EQ(handshake.substr(28, 20), "INFOHASHINFOHASHXXXX");
  EXPECT_EQ(handshake.substr(48, 20), "PEERIDPEERIDPEERIDPE");

  l7::L7Classifier classifier;
  EXPECT_EQ(classifier.classify(flow_packet(handshake, 1010, 6881)).proto,
            l7::AppProtocol::kBitTorrent);

  // Short ids are zero-padded to their fixed 20-byte fields, long ones cut.
  const std::string padded = l7::make_bittorrent_handshake("short", std::string(30, 'p'));
  ASSERT_EQ(padded.size(), 68u);
  EXPECT_EQ(padded.substr(28, 20), std::string("short") + std::string(15, '\0'));
  EXPECT_EQ(padded.substr(48, 20), std::string(20, 'p'));
}

TEST(L7Classifier, FreshFlagFiresExactlyOnce) {
  l7::L7Classifier classifier;
  const auto first = classifier.classify(flow_packet("GET / HTTP/1.1\r\n", 2000, 80));
  EXPECT_TRUE(first.fresh);
  const auto second = classifier.classify(flow_packet("more body bytes", 2000, 80));
  EXPECT_FALSE(second.fresh);
  EXPECT_EQ(second.proto, l7::AppProtocol::kHttp);
}

TEST(L7Classifier, AnchoredPatternMustBeAtStart) {
  l7::L7Classifier classifier;
  // "GET " not at flow start -> only the unanchored "HTTP/1." pattern could
  // match, and it is absent here.
  const auto c = classifier.classify(flow_packet("xxxGET /abc", 2010, 80));
  EXPECT_EQ(c.proto, l7::AppProtocol::kUnknown);
}

TEST(L7Classifier, GivesUpAfterPacketBudget) {
  l7::L7Classifier classifier;
  for (int i = 0; i < 12; ++i) {
    classifier.classify(flow_packet("opaque-bytes-no-protocol", 2020, 9999));
  }
  EXPECT_FALSE(classifier.verdict(
                   pkt::FlowKey::from_packet(flow_packet("x", 2020, 9999)))
                   .has_value());
}

TEST(L7Classifier, DnsIdentifiedByPortAndShape) {
  l7::L7Classifier classifier;
  const std::string query(16, '\x01');
  EXPECT_EQ(classifier.classify(flow_packet(query, 5353, 53, pkt::IpProto::kUdp)).proto,
            l7::AppProtocol::kDns);
}

TEST(L7Classifier, DetectsHttpInLaterPacketViaWindow) {
  l7::L7Classifier classifier;
  EXPECT_EQ(classifier.classify(flow_packet("preamble ", 2030, 80)).proto,
            l7::AppProtocol::kUnknown);
  // Unanchored "HTTP/1." appears in the accumulated window.
  EXPECT_EQ(classifier.classify(flow_packet("HTTP/1.1 200 OK", 2030, 80)).proto,
            l7::AppProtocol::kHttp);
}

// --- VirusScanner -------------------------------------------------------------------

TEST(VirusScanner, DetectsEicarAndFamilies) {
  scanner::VirusScanner scanner;
  const auto detections = scanner.scan(http_packet(
      "X5O!P%@AP[4\\PZX54(P^)7CC)7}$EICAR-STANDARD-ANTIVIRUS-TEST-FILE!$H+H*"));
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].family, "EICAR-Test-File");
  EXPECT_EQ(detections[0].severity, 10);
}

TEST(VirusScanner, CleanPayloadPasses) {
  scanner::VirusScanner scanner;
  EXPECT_TRUE(scanner.scan(http_packet("perfectly normal file contents")).empty());
  EXPECT_EQ(scanner.detections_total(), 0u);
}

// Regression: a signature split across a packet boundary must still be found.
// A per-packet rescan from the automaton root misses it; the streaming scan
// carries the Aho-Corasick state across packets of the flow.
TEST(VirusScanner, DetectsSignatureSplitAcrossPackets) {
  scanner::VirusScanner scanner;
  EXPECT_TRUE(scanner.scan(http_packet("X5O!P%@AP[4\\PZX54(P^)7C")).empty());
  const auto detections =
      scanner.scan(http_packet("C)7}$EICAR-STANDARD-ANTIVIRUS-TEST-FILE!$H+H*"));
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].family, "EICAR-Test-File");

  // Reported once per flow: the same marker again on this flow stays silent.
  EXPECT_TRUE(scanner
                  .scan(http_packet(
                      "X5O!P%@AP[4\\PZX54(P^)7CC)7}$EICAR-STANDARD-ANTIVIRUS-TEST-FILE!"))
                  .empty());
  // A different flow carries no state from the first and detects on its own.
  EXPECT_EQ(scanner
                .scan(http_packet(
                    "X5O!P%@AP[4\\PZX54(P^)7CC)7}$EICAR-STANDARD-ANTIVIRUS-TEST-FILE!", 40001))
                .size(),
            1u);
  EXPECT_EQ(scanner.detections_total(), 2u);
}

// The documented memory/completeness trade: evicting a flow's context loses
// mid-stream automaton state, so a marker spanning the eviction is missed.
TEST(VirusScanner, EvictionLosesCrossPacketState) {
  scanner::VirusScanner scanner;
  scanner.contexts().set_limits({1, 0});
  EXPECT_TRUE(scanner.scan(http_packet("X5O!P%@AP[4\\PZX54(P^)7C")).empty());
  EXPECT_TRUE(scanner.scan(http_packet("unrelated flow", 40001)).empty());  // evicts the first
  EXPECT_TRUE(
      scanner.scan(http_packet("C)7}$EICAR-STANDARD-ANTIVIRUS-TEST-FILE!")).empty());
  EXPECT_GE(scanner.contexts().evictions_lru(), 1u);
}

// --- FlowContextTable -----------------------------------------------------------------

pkt::FlowKey context_key(std::uint16_t src_port) {
  pkt::FlowKey key;
  key.dl_src = MacAddress::from_uint64(0xA1);
  key.dl_dst = MacAddress::from_uint64(0xB2);
  key.dl_type = 0x0800;
  key.nw_src = Ipv4Address(10, 0, 0, 1);
  key.nw_dst = Ipv4Address(10, 0, 0, 2);
  key.nw_proto = 6;
  key.tp_src = src_port;
  key.tp_dst = 80;
  return key;
}

TEST(FlowContextTable, TouchRefreshesLruAndFullTableEvictsColdest) {
  FlowContextTable<int> table({2, 0});
  table.touch(context_key(1), 10) = 100;
  table.touch(context_key(2), 20) = 200;
  table.touch(context_key(1), 30);  // refresh: key 2 is now the LRU tail
  table.touch(context_key(3), 40);  // full: evicts key 2

  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.find(context_key(2)), nullptr);
  ASSERT_NE(table.find(context_key(1)), nullptr);
  EXPECT_EQ(*table.find(context_key(1)), 100);  // state survived the refresh
  EXPECT_EQ(table.created(), 3u);
  EXPECT_EQ(table.evictions_lru(), 1u);
  EXPECT_EQ(table.evictions_total(), 1u);
}

TEST(FlowContextTable, SweepDropsOnlyIdleContexts) {
  FlowContextTable<int> table({8, 10});
  table.touch(context_key(1), 0);
  table.touch(context_key(2), 5);
  EXPECT_EQ(table.sweep(9), 0u);   // neither idle past the timeout yet
  EXPECT_EQ(table.sweep(12), 1u);  // key 1 idle for 12, key 2 only 7
  EXPECT_EQ(table.find(context_key(1)), nullptr);
  EXPECT_NE(table.find(context_key(2)), nullptr);
  EXPECT_EQ(table.evictions_idle(), 1u);
  EXPECT_EQ(table.sweep(100), 1u);  // key 2 eventually ages out too
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowContextTable, ShrinkingCapacityEvictsImmediately) {
  FlowContextTable<int> table({4, 0});
  for (std::uint16_t p = 1; p <= 4; ++p) table.touch(context_key(p), p);
  table.set_limits({2, 0});
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.evictions_lru(), 2u);
  // The two most recently touched survive.
  EXPECT_NE(table.find(context_key(3)), nullptr);
  EXPECT_NE(table.find(context_key(4)), nullptr);
  EXPECT_EQ(table.find(context_key(1)), nullptr);
}

TEST(FlowContextTable, EraseDropsWithoutCountingAsEviction) {
  FlowContextTable<int> table({4, 0});
  table.touch(context_key(1), 0);
  table.erase(context_key(1));
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.evictions_total(), 0u);
  table.erase(context_key(9));  // absent key: no-op
}

// --- ServiceElement pipeline -----------------------------------------------------------

class Collector : public sim::Node {
 public:
  Collector(sim::Simulator& sim) : Node(sim, "collector") { add_port(); }
  void handle_packet(PortId, pkt::PacketPtr packet) override {
    received.push_back(packet);
    arrival_times.push_back(simulator().now());
  }
  void emit(pkt::PacketPtr p) { send(0, std::move(p)); }
  std::vector<pkt::PacketPtr> received;
  std::vector<SimTime> arrival_times;
};

// The SE's heartbeat makes the event queue non-draining by design, so these
// tests advance the clock by bounded amounts instead of sim.run().
void settle(sim::Simulator& sim, SimTime amount = 100 * kMillisecond) {
  sim.run_until(sim.now() + amount);
}

ServiceElement::Config se_config(ServiceType type) {
  ServiceElement::Config config;
  config.se_id = 1;
  config.mac = MacAddress::from_uint64(0x5E0001);
  config.ip = Ipv4Address(10, 9, 0, 1);
  config.service = type;
  config.cert_token = 0x1234;
  return config;
}

TEST(ServiceElement, ReflectsSteeredPacketsAndHeartbeats) {
  sim::Simulator sim;
  ServiceElement se(sim, "se1", se_config(ServiceType::kIntrusionDetection));
  Collector peer(sim);
  auto link = sim::connect(sim, se.port(0), peer.port(0));
  se.start();
  settle(sim);
  // The start() heartbeat arrived at the peer (it goes out the NIC).
  ASSERT_GE(peer.received.size(), 1u);
  EXPECT_TRUE(is_daemon_packet(*peer.received[0]));

  // A steered packet (dl_dst == SE MAC) is processed and reflected.
  peer.received.clear();
  pkt::Packet steered = http_packet("normal content");
  steered.eth.dst = se.mac();
  peer.emit(pkt::finalize(steered));
  settle(sim);
  ASSERT_EQ(peer.received.size(), 1u);
  EXPECT_EQ(peer.received[0]->eth.dst, se.mac());  // reflected unchanged
  EXPECT_EQ(se.processed_packets(), 1u);
}

TEST(ServiceElement, IgnoresPacketsNotAddressedToIt) {
  sim::Simulator sim;
  ServiceElement se(sim, "se1", se_config(ServiceType::kIntrusionDetection));
  Collector peer(sim);
  auto link = sim::connect(sim, se.port(0), peer.port(0));
  se.start();
  settle(sim);
  peer.received.clear();

  peer.emit(pkt::finalize(http_packet("payload")));  // dst != SE mac
  settle(sim);
  EXPECT_EQ(se.processed_packets(), 0u);
  EXPECT_TRUE(peer.received.empty());
}

TEST(ServiceElement, EmitsAttackEventMessage) {
  sim::Simulator sim;
  ServiceElement se(sim, "se1", se_config(ServiceType::kIntrusionDetection));
  Collector peer(sim);
  auto link = sim::connect(sim, se.port(0), peer.port(0));
  se.start();
  settle(sim);
  peer.received.clear();

  pkt::Packet attack = http_packet("id=1 UNION SELECT password FROM users");
  attack.eth.dst = se.mac();
  peer.emit(pkt::finalize(attack));
  settle(sim);

  bool saw_event = false;
  for (const auto& p : peer.received) {
    if (!is_daemon_packet(*p)) continue;
    const auto m = DaemonMessage::decode(p->payload_view());
    ASSERT_TRUE(m.has_value());
    if (const auto* event = std::get_if<EventMessage>(&m->body)) {
      EXPECT_EQ(event->kind, EventKind::kAttackDetected);
      EXPECT_EQ(event->rule_id, 1001u);
      saw_event = true;
    }
  }
  EXPECT_TRUE(saw_event);
  EXPECT_EQ(se.events_sent(), 1u);
}

TEST(ServiceElement, ProcessingRateBoundsThroughput) {
  sim::Simulator sim;
  auto config = se_config(ServiceType::kIntrusionDetection);
  config.processing_bps = 100e6;  // slow SE for a visible bound
  config.heartbeat_interval = 100 * kSecond;  // keep heartbeats out of the way
  ServiceElement se(sim, "se1", config);
  Collector peer(sim);
  sim::Link::Config fast;
  fast.bandwidth_bps = 10e9;
  fast.max_queue_bytes = 1 << 30;
  auto link = sim::connect(sim, se.port(0), peer.port(0), fast);
  se.start();
  settle(sim);
  peer.received.clear();

  std::uint64_t offered = 0;
  for (int i = 0; i < 500; ++i) {
    pkt::Packet p = http_packet(std::string(1300, 'x'),
                                static_cast<std::uint16_t>(30000 + i));
    p.tcp->dst_port = 9999;  // avoid HTTP deep-inspect slowdown in this test
    p.eth.dst = se.mac();
    offered += p.wire_size();
    peer.emit(pkt::finalize(std::move(p)));
  }
  peer.arrival_times.clear();
  settle(sim, 2 * kSecond);
  // Rate over the drain window (first reflection to last): the pipeline is
  // saturated in between, so this measures the SE's processing budget.
  ASSERT_EQ(peer.received.size(), 500u);
  const double seconds =
      to_seconds(peer.arrival_times.back() - peer.arrival_times.front());
  const double rate = static_cast<double>(offered) * 8.0 * (499.0 / 500.0) / seconds;
  EXPECT_LT(rate, 110e6);
  EXPECT_GT(rate, 80e6);
}

TEST(ServiceElement, OverloadDropsWhenQueueFull) {
  sim::Simulator sim;
  auto config = se_config(ServiceType::kIntrusionDetection);
  config.processing_bps = 1e6;  // pathological
  config.max_queue_packets = 10;
  ServiceElement se(sim, "se1", config);
  Collector peer(sim);
  auto link = sim::connect(sim, se.port(0), peer.port(0));
  se.start();
  settle(sim);

  for (int i = 0; i < 100; ++i) {
    pkt::Packet p = http_packet("data", static_cast<std::uint16_t>(31000 + i));
    p.eth.dst = se.mac();
    peer.emit(pkt::finalize(std::move(p)));
  }
  settle(sim);
  EXPECT_GT(se.overload_drops(), 0u);
  EXPECT_EQ(se.overload_drops() + se.processed_packets(), 100u);
}

TEST(ServiceElement, L7ElementReportsProtocolOnce) {
  sim::Simulator sim;
  ServiceElement se(sim, "se1", se_config(ServiceType::kProtocolIdentification));
  Collector peer(sim);
  auto link = sim::connect(sim, se.port(0), peer.port(0));
  se.start();
  settle(sim);
  peer.received.clear();

  for (int i = 0; i < 3; ++i) {
    pkt::Packet p = http_packet("GET /page HTTP/1.1\r\n\r\n");
    p.eth.dst = se.mac();
    peer.emit(pkt::finalize(std::move(p)));
  }
  settle(sim);
  EXPECT_EQ(se.events_sent(), 1u);  // one verdict per flow
}

TEST(ServiceElement, StopHaltsHeartbeatsAndProcessing) {
  sim::Simulator sim;
  auto config = se_config(ServiceType::kIntrusionDetection);
  config.heartbeat_interval = 100 * kMillisecond;
  ServiceElement se(sim, "se1", config);
  Collector peer(sim);
  auto link = sim::connect(sim, se.port(0), peer.port(0));
  se.start();
  sim.run_until(250 * kMillisecond);
  const std::size_t heartbeats = peer.received.size();
  EXPECT_GE(heartbeats, 2u);

  se.stop();
  sim.run_until(1 * kSecond);
  EXPECT_EQ(peer.received.size(), heartbeats);  // no more traffic

  pkt::Packet p = http_packet("x");
  p.eth.dst = se.mac();
  peer.emit(pkt::finalize(std::move(p)));
  settle(sim);
  EXPECT_EQ(se.processed_packets(), 0u);
}

// --- ServiceElement verdict emission -----------------------------------------------

std::vector<VerdictMessage> collect_verdicts(const std::vector<pkt::PacketPtr>& received) {
  std::vector<VerdictMessage> out;
  for (const auto& p : received) {
    if (!is_daemon_packet(*p)) continue;
    const auto m = DaemonMessage::decode(p->payload_view());
    if (!m.has_value()) continue;
    if (const auto* v = std::get_if<VerdictMessage>(&m->body)) out.push_back(*v);
  }
  return out;
}

TEST(ServiceElement, BenignVerdictAfterCleanBudgetOncePerFlow) {
  sim::Simulator sim;
  auto config = se_config(ServiceType::kIntrusionDetection);
  config.verdict_byte_budget = 64;
  ServiceElement se(sim, "se1", config);
  Collector peer(sim);
  auto link = sim::connect(sim, se.port(0), peer.port(0));
  se.start();
  settle(sim);
  peer.received.clear();

  pkt::Packet clean = http_packet(std::string(100, 'a'));
  clean.eth.dst = se.mac();
  peer.emit(pkt::finalize(clean));
  settle(sim);

  const auto verdicts = collect_verdicts(peer.received);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].verdict, FlowVerdict::kBenign);
  EXPECT_GE(verdicts[0].inspected_bytes, 64u);
  EXPECT_EQ(verdicts[0].byte_budget, 64u);
  // The flow key is the one observed at the SE: dl_dst already rewritten.
  EXPECT_EQ(verdicts[0].flow.dl_dst, se.mac());
  EXPECT_EQ(verdicts[0].flow.tp_dst, 80);

  // More clean traffic on the decided flow stays verdict-silent.
  peer.received.clear();
  pkt::Packet more = http_packet(std::string(100, 'b'));
  more.eth.dst = se.mac();
  peer.emit(pkt::finalize(more));
  settle(sim);
  EXPECT_TRUE(collect_verdicts(peer.received).empty());
  EXPECT_EQ(se.verdicts_sent(), 1u);
}

TEST(ServiceElement, NoVerdictsWhenBudgetDisabled) {
  sim::Simulator sim;
  ServiceElement se(sim, "se1", se_config(ServiceType::kIntrusionDetection));  // budget 0
  Collector peer(sim);
  auto link = sim::connect(sim, se.port(0), peer.port(0));
  se.start();
  settle(sim);
  peer.received.clear();

  pkt::Packet clean = http_packet(std::string(2000, 'a'));
  clean.eth.dst = se.mac();
  peer.emit(pkt::finalize(clean));
  settle(sim);
  EXPECT_TRUE(collect_verdicts(peer.received).empty());
  EXPECT_EQ(se.verdicts_sent(), 0u);
}

TEST(ServiceElement, MaliciousVerdictOnDetection) {
  sim::Simulator sim;
  auto config = se_config(ServiceType::kIntrusionDetection);
  config.verdict_byte_budget = 1 << 20;  // far away: detection decides first
  ServiceElement se(sim, "se1", config);
  Collector peer(sim);
  auto link = sim::connect(sim, se.port(0), peer.port(0));
  se.start();
  settle(sim);
  peer.received.clear();

  pkt::Packet attack = http_packet("id=1 UNION SELECT password FROM users");
  attack.eth.dst = se.mac();
  peer.emit(pkt::finalize(attack));
  settle(sim);

  const auto verdicts = collect_verdicts(peer.received);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].verdict, FlowVerdict::kMalicious);
  EXPECT_EQ(verdicts[0].rule_id, 1001u);
  EXPECT_EQ(verdicts[0].severity, 8);
  EXPECT_EQ(se.events_sent(), 1u);  // the EVENT report still goes out alongside
}

TEST(ServiceElement, L7KeepsInspectingAtBudgetThenBenignOnDecision) {
  sim::Simulator sim;
  auto config = se_config(ServiceType::kProtocolIdentification);
  config.verdict_byte_budget = 16;
  ServiceElement se(sim, "se1", config);
  Collector peer(sim);
  auto link = sim::connect(sim, se.port(0), peer.port(0));
  se.start();
  settle(sim);
  peer.received.clear();

  // Budget crossed but the classifier is still undecided: the SE asks the
  // controller to keep the flow steered instead of declaring it benign.
  pkt::Packet opaque = http_packet("preamble preamble ");
  opaque.eth.dst = se.mac();
  peer.emit(pkt::finalize(opaque));
  settle(sim);
  auto verdicts = collect_verdicts(peer.received);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].verdict, FlowVerdict::kKeepInspecting);

  // Once the classifier decides, the benign verdict follows.
  peer.received.clear();
  pkt::Packet http = http_packet("HTTP/1.1 200 OK");
  http.eth.dst = se.mac();
  peer.emit(pkt::finalize(http));
  settle(sim);
  verdicts = collect_verdicts(peer.received);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].verdict, FlowVerdict::kBenign);
  EXPECT_EQ(se.verdicts_sent(), 2u);
}

TEST(ServiceElement, FirewallVerdictsOnFirstPacket) {
  sim::Simulator sim;
  auto config = se_config(ServiceType::kFirewall);
  config.verdict_byte_budget = 1 << 20;
  fw::FwRule deny;
  deny.id = 10;
  deny.name = "deny-9999";
  deny.action = fw::FwAction::kDeny;
  deny.dst_port = 9999;
  config.firewall_rules.push_back(deny);
  ServiceElement se(sim, "se1", config);
  Collector peer(sim);
  auto link = sim::connect(sim, se.port(0), peer.port(0));
  se.start();
  settle(sim);
  peer.received.clear();

  // Header-based decision: one allowed packet settles the flow as benign,
  // long before any byte budget.
  pkt::Packet allowed = http_packet("hello");
  allowed.eth.dst = se.mac();
  peer.emit(pkt::finalize(allowed));
  settle(sim);
  auto verdicts = collect_verdicts(peer.received);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].verdict, FlowVerdict::kBenign);

  peer.received.clear();
  pkt::Packet denied = http_packet("hello", 40001);
  denied.tcp->dst_port = 9999;
  denied.eth.dst = se.mac();
  peer.emit(pkt::finalize(denied));
  settle(sim);
  verdicts = collect_verdicts(peer.received);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].verdict, FlowVerdict::kMalicious);
  EXPECT_EQ(verdicts[0].rule_id, 10u);
}

// --- ServiceElement batch-drain telemetry ------------------------------------------

TEST(ServiceElement, BatchDrainCoalescesBurstsAndCountsThem) {
  sim::Simulator sim;
  auto config = se_config(ServiceType::kIntrusionDetection);
  config.processing_bps = 100e6;          // service time >> arrival spacing
  config.heartbeat_interval = 100 * kSecond;
  ServiceElement se(sim, "se1", config);
  Collector peer(sim);
  sim::Link::Config fast;
  fast.bandwidth_bps = 10e9;
  fast.max_queue_bytes = 1 << 30;
  auto link = sim::connect(sim, se.port(0), peer.port(0), fast);
  se.start();
  settle(sim);

  for (int i = 0; i < 40; ++i) {
    pkt::Packet p = http_packet(std::string(1300, 'x'),
                                static_cast<std::uint16_t>(30000 + i));
    p.tcp->dst_port = 9999;
    p.eth.dst = se.mac();
    peer.emit(pkt::finalize(std::move(p)));
  }
  settle(sim, 2 * kSecond);

  EXPECT_EQ(se.processed_packets(), 40u);
  EXPECT_EQ(se.batch_packets_total(), 40u);
  // The burst queues behind the first (solo) batch, so later drains coalesce
  // many packets into one simulator event — up to batch_max_packets at once.
  EXPECT_GE(se.batches_total(), 2u);
  EXPECT_LE(se.batches_total(), 40u / 2);
  const auto& hist = se.batch_size_hist();
  std::uint64_t hist_sum = 0;
  for (std::uint32_t bucket : hist) hist_sum += bucket;
  EXPECT_EQ(hist_sum, se.batches_total());
  EXPECT_GE(hist[0], 1u);  // the burst-opening solo batch
  EXPECT_GE(hist[5], 1u);  // a full 32+ batch once the queue built up
  // One streaming context per distinct flow.
  EXPECT_EQ(se.flow_contexts(), 40u);
}

TEST(ServiceElement, HeartbeatReportsFastPathLoad) {
  sim::Simulator sim;
  auto config = se_config(ServiceType::kIntrusionDetection);
  config.heartbeat_interval = 50 * kMillisecond;
  config.max_flow_contexts = 2;
  ServiceElement se(sim, "se1", config);
  Collector peer(sim);
  auto link = sim::connect(sim, se.port(0), peer.port(0));
  se.start();
  settle(sim, 10 * kMillisecond);
  peer.received.clear();

  for (int i = 0; i < 3; ++i) {
    pkt::Packet p = http_packet("clean", static_cast<std::uint16_t>(32000 + i));
    p.eth.dst = se.mac();
    peer.emit(pkt::finalize(std::move(p)));
  }
  settle(sim, 200 * kMillisecond);

  std::optional<OnlineMessage> last;
  for (const auto& p : peer.received) {
    if (!is_daemon_packet(*p)) continue;
    const auto m = DaemonMessage::decode(p->payload_view());
    if (!m.has_value()) continue;
    if (const auto* o = std::get_if<OnlineMessage>(&m->body)) last = *o;
  }
  ASSERT_TRUE(last.has_value());
  // Three flows through a 2-context table: occupancy capped, eviction visible.
  EXPECT_EQ(last->flow_contexts, 2u);
  EXPECT_GE(last->context_evictions, 1u);
  EXPECT_GE(last->batches_total, 1u);
  EXPECT_EQ(last->batch_packets_total, 3u);
  std::uint64_t hist_sum = 0;
  for (std::uint32_t bucket : last->batch_size_hist) hist_sum += bucket;
  EXPECT_EQ(hist_sum, last->batches_total);
}

}  // namespace
}  // namespace livesec::svc
