// Campus-at-scale routing table: regression tests for the two staleness
// bugs (stale IP index on DHCP reassignment; missing version bump on an
// IP-only change), the batched-expiry caller audit, and a property test
// driving random churn against a reference map model.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "controller/controller.h"
#include "controller/routing_table.h"
#include "monitor/event_store.h"
#include "openflow/channel.h"
#include "packet/packet.h"
#include "scenario/campus.h"
#include "sim/simulator.h"
#include "topology/lldp.h"

namespace livesec {
namespace {

MacAddress mac(std::uint64_t v) { return MacAddress::from_uint64(v); }
Ipv4Address ip(std::uint32_t v) { return Ipv4Address(v); }

// --- staleness bug 1: IP reassignment left the loser's record holding the
// address, so removing the loser erased the new owner's index entry --------

TEST(RoutingTableStaleness, IpReassignmentSurvivesLoserRemoval) {
  ctrl::RoutingTable table;
  const Ipv4Address addr = ip(0x0A000001);
  table.learn(mac(0xA), addr, 1, 1, 0);
  // DHCP re-lease: the same address now belongs to B.
  table.learn(mac(0xB), addr, 2, 1, kSecond);
  ASSERT_NE(table.find_by_ip(addr), nullptr);
  EXPECT_EQ(table.find_by_ip(addr)->mac, mac(0xB));

  // Removing the previous holder must not take the address down with it.
  table.remove(mac(0xA));
  const ctrl::HostLocation* owner = table.find_by_ip(addr);
  ASSERT_NE(owner, nullptr) << "loser removal erased the winner's IP entry";
  EXPECT_EQ(owner->mac, mac(0xB));
}

TEST(RoutingTableStaleness, IpReassignmentSurvivesLoserExpiry) {
  ctrl::RoutingTable table(10 * kSecond);
  const Ipv4Address addr = ip(0x0A000002);
  table.learn(mac(0xA), addr, 1, 1, 0);
  table.learn(mac(0xB), addr, 2, 1, 9 * kSecond);

  const auto removed = table.expire(11 * kSecond);  // only A is idle past 10s
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].mac, mac(0xA));
  const ctrl::HostLocation* owner = table.find_by_ip(addr);
  ASSERT_NE(owner, nullptr) << "loser expiry erased the winner's IP entry";
  EXPECT_EQ(owner->mac, mac(0xB));
}

TEST(RoutingTableStaleness, IpReassignmentSurvivesLoserSwitchRemoval) {
  ctrl::RoutingTable table;
  const Ipv4Address addr = ip(0x0A000003);
  table.learn(mac(0xA), addr, 1, 1, 0);
  table.learn(mac(0xB), addr, 2, 1, kSecond);
  table.remove_switch(1);  // takes A down
  const ctrl::HostLocation* owner = table.find_by_ip(addr);
  ASSERT_NE(owner, nullptr);
  EXPECT_EQ(owner->mac, mac(0xB));
}

// --- staleness bug 2: learn() returned false and left version_ unchanged
// when only the IP changed, so IP-keyed consumers kept stale decisions ------

TEST(RoutingTableStaleness, VersionMovesOnIpOnlyChange) {
  ctrl::RoutingTable table;
  table.learn(mac(0xA), ip(1), 1, 1, 0);
  const std::uint64_t before = table.version();

  // Same attachment point, new address: not a move, but a mapping change.
  const bool moved = table.learn(mac(0xA), ip(2), 1, 1, kSecond);
  EXPECT_FALSE(moved);
  EXPECT_GT(table.version(), before) << "IP re-lease must invalidate IP-keyed consumers";

  // A no-op refresh (same everything) must NOT burn a version.
  const std::uint64_t after = table.version();
  EXPECT_FALSE(table.learn(mac(0xA), ip(2), 1, 1, 2 * kSecond));
  EXPECT_EQ(table.version(), after);
  table.touch(mac(0xA), 3 * kSecond);
  EXPECT_EQ(table.version(), after);
}

// --- controller level: a memoized flow decision must not be replayed across
// a DHCP re-lease (the stamp includes the routing version) ------------------

pkt::PacketPtr gratuitous_arp(MacAddress sender, Ipv4Address sender_ip) {
  return pkt::PacketBuilder()
      .eth(sender, MacAddress::broadcast())
      .arp(pkt::ArpOp::kRequest, sender, sender_ip, MacAddress{}, sender_ip)
      .finalize();
}

class SilentSwitch : public of::SwitchEndpoint {
 public:
  explicit SilentSwitch(DatapathId dpid) : dpid_(dpid) {}
  DatapathId datapath_id() const override { return dpid_; }
  void handle_controller_message(const of::Message&) override {}

 private:
  DatapathId dpid_;
};

struct CacheHarness {
  sim::Simulator sim;
  ctrl::Controller controller{sim};
  SilentSwitch sw1{1};
  SilentSwitch sw2{2};
  of::SecureChannel ch1{sim, sw1, controller, 0};
  of::SecureChannel ch2{sim, sw2, controller, 0};

  MacAddress alice = mac(0xA11CE);
  MacAddress bob = mac(0xB0B);
  MacAddress carol = mac(0xCA401);
  Ipv4Address alice_ip{10, 0, 0, 1};
  Ipv4Address bob_ip{10, 0, 0, 2};
  Ipv4Address carol_ip{10, 0, 0, 3};

  CacheHarness() {
    controller.attach_channel(1, ch1);
    controller.attach_channel(2, ch2);
    ch1.connect(of::FeaturesReply{1, 8, "sw1"});
    ch2.connect(of::FeaturesReply{2, 8, "sw2"});
    sim.run();
    topo::LldpInfo info;
    info.chassis_id = 2;
    info.port_id = 4;
    packet_in(1, 3, pkt::finalize(info.to_packet()));
    packet_in(1, 0, gratuitous_arp(alice, alice_ip));
    packet_in(2, 0, gratuitous_arp(bob, bob_ip));
    packet_in(2, 1, gratuitous_arp(carol, carol_ip));
  }

  void packet_in(DatapathId dpid, PortId in_port, pkt::PacketPtr packet) {
    of::PacketIn pin;
    pin.in_port = in_port;
    pin.buffer_id = of::PacketOut::kNoBuffer;
    pin.packet = std::move(packet);
    controller.handle_switch_message(dpid, of::Message{std::move(pin)});
    sim.run();
  }

  void start_flow(std::uint16_t tp_src) {
    packet_in(1, 0,
              pkt::PacketBuilder()
                  .eth(alice, bob)
                  .ipv4(alice_ip, bob_ip, pkt::IpProto::kUdp)
                  .udp(tp_src, 80)
                  .finalize());
  }
};

TEST(ControllerStaleness, DhcpReLeaseFlushesMemoizedDecisions) {
  CacheHarness net;
  net.start_flow(1000);  // cold: decision computed and cached
  const auto& fp = net.controller.stats().fastpath;
  ASSERT_EQ(fp.decision_cache_misses, 1u);
  net.start_flow(1001);  // warm: same class, served from the cache
  ASSERT_EQ(fp.decision_cache_hits, 1u);

  // Bob's address is re-leased to carol — an already-known host at an
  // unchanged attachment point, so nothing but the ip->mac binding moves.
  // The routing version must still advance and flush the decision cache
  // (bug: an IP-only change left version_ alone and the memo replayed).
  net.packet_in(2, 1, gratuitous_arp(net.carol, net.bob_ip));

  net.start_flow(1002);
  EXPECT_EQ(fp.decision_cache_hits, 1u) << "stale decision replayed across a re-lease";
  EXPECT_EQ(fp.decision_cache_misses, 2u);
  EXPECT_GE(fp.decision_cache_invalidations, 1u);
}

// --- satellite audit: one batched expire() sweep at scale must raise the
// leave event and tear down the flow state of every removed host, once -----

TEST(RoutingScaleChurn, BatchedExpirySweepsTenThousandIdleHosts) {
  scenario::CampusConfig campus_config;
  campus_config.hosts = 10'000;
  campus_config.hosts_per_switch = 2'500;
  scenario::CampusGenerator campus(campus_config);

  sim::Simulator sim;
  ctrl::Controller::Config config;
  config.host_timeout = 10 * kSecond;
  ctrl::Controller controller(sim, config);

  std::vector<std::unique_ptr<SilentSwitch>> switches;
  std::vector<std::unique_ptr<of::SecureChannel>> channels;
  for (std::uint32_t s = 0; s < campus.switch_count(); ++s) {
    const DatapathId dpid = 1 + s;
    switches.push_back(std::make_unique<SilentSwitch>(dpid));
    channels.push_back(std::make_unique<of::SecureChannel>(sim, *switches.back(), controller, 0));
    controller.attach_channel(dpid, *channels.back());
    channels.back()->connect(of::FeaturesReply{dpid, 4, "as" + std::to_string(dpid)});
    controller.register_ls_port(dpid, campus.ls_uplink_port());
  }
  sim.run();

  const auto inject = [&](DatapathId dpid, PortId in_port, pkt::PacketPtr packet) {
    of::PacketIn pin;
    pin.in_port = in_port;
    pin.buffer_id = of::PacketOut::kNoBuffer;
    pin.packet = std::move(packet);
    controller.handle_switch_message(dpid, of::Message{std::move(pin)});
  };

  for (std::uint32_t i = 0; i < campus_config.hosts; ++i) {
    const scenario::CampusHost h = campus.host(i);
    inject(h.dpid, h.port, gratuitous_arp(h.mac, h.ip));
    if ((i & 511) == 511) sim.run();
  }
  sim.run();
  ASSERT_EQ(controller.routing().size(), campus_config.hosts);

  // Open flows between cross-switch pairs so expiry has state to tear down.
  constexpr std::uint32_t kFlows = 200;
  for (std::uint32_t f = 0; f < kFlows; ++f) {
    const scenario::CampusHost src = campus.host(f);
    const scenario::CampusHost dst = campus.host(f + 5'000);
    inject(src.dpid, src.port,
           pkt::PacketBuilder()
               .eth(src.mac, dst.mac)
               .ipv4(src.ip, dst.ip, pkt::IpProto::kUdp)
               .udp(static_cast<std::uint16_t>(2000 + f), 443)
               .finalize());
  }
  sim.run();
  ASSERT_EQ(controller.active_flows(), kFlows);
  ASSERT_EQ(controller.host_flow_index_size(), 2 * kFlows);

  // Every host is idle; one housekeeping expire() past the timeout removes
  // the whole campus in a single batched sweep.
  controller.start_housekeeping();
  sim.run_until(15 * kSecond);

  EXPECT_EQ(controller.routing().size(), 0u);
  EXPECT_EQ(controller.active_flows(), 0u) << "expired hosts left flow records behind";
  EXPECT_EQ(controller.host_flow_index_size(), 0u);

  // Exactly one leave event per host — no host skipped, none doubled.
  const auto leaves =
      controller.events().query_type(mon::EventType::kHostLeave, 0, 1'000 * kSecond);
  EXPECT_EQ(leaves.size(), campus_config.hosts);
  std::set<std::string> subjects;
  for (const auto& event : leaves) subjects.insert(event.subject);
  EXPECT_EQ(subjects.size(), campus_config.hosts);
}

// --- mechanics of the sharded layout ----------------------------------------

TEST(RoutingTableWheel, TouchedHostsSurviveTheSweepUntilIdle) {
  ctrl::RoutingTable table(10 * kSecond);
  table.learn(mac(0xA), ip(1), 1, 1, 0);
  table.learn(mac(0xB), ip(2), 1, 2, 0);
  table.touch(mac(0xA), 5 * kSecond);  // refreshed lazily, no re-file

  auto removed = table.expire(10 * kSecond);  // B hits exactly the timeout
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].mac, mac(0xB));
  EXPECT_NE(table.find(mac(0xA)), nullptr);

  removed = table.expire(15 * kSecond);  // now A is idle 10s too
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].mac, mac(0xA));
  EXPECT_EQ(table.size(), 0u);
}

TEST(RoutingTableShards, RemoveSwitchDrainsExactlyThatSwitch) {
  ctrl::RoutingTable table(120 * kSecond, 8);
  for (std::uint32_t i = 0; i < 100; ++i) {
    table.learn(mac(100 + i), ip(100 + i), 1 + i % 4, 1 + i, 0);
  }
  EXPECT_EQ(table.size_on_switch(2), 25u);

  const auto removed = table.remove_switch(2);
  EXPECT_EQ(removed.size(), 25u);
  for (const auto& loc : removed) EXPECT_EQ(loc.dpid, 2u);
  EXPECT_EQ(table.size(), 75u);
  EXPECT_EQ(table.size_on_switch(2), 0u);
  for (const auto& loc : removed) {
    EXPECT_EQ(table.find(loc.mac), nullptr);
    EXPECT_EQ(table.find_by_ip(loc.ip), nullptr);
  }
}

TEST(RoutingTableShards, StatsAccountForEveryHostAndPointersStayStable) {
  ctrl::RoutingTable table(120 * kSecond, 4);
  table.learn(mac(0x5AB1E), ip(0x7F00007F), 3, 9, kSecond);
  const ctrl::HostLocation* pinned = table.find(mac(0x5AB1E));
  ASSERT_NE(pinned, nullptr);

  for (std::uint32_t i = 0; i < 5'000; ++i) table.learn(mac(i), ip(i + 1), 1 + i % 7, 1, 0);

  // Arena chunks never move: the record pointer survives table growth.
  EXPECT_EQ(pinned->mac, mac(0x5AB1E));
  EXPECT_EQ(pinned->ip, ip(0x7F00007F));
  EXPECT_EQ(pinned->dpid, 3u);

  std::size_t hosts = 0;
  std::size_t bytes = 0;
  for (std::size_t s = 0; s < table.shard_count(); ++s) {
    const auto stats = table.shard_stats(s);
    hosts += stats.hosts;
    bytes += stats.bytes;
    EXPECT_GE(stats.arena_slots, stats.hosts);
  }
  EXPECT_EQ(hosts, table.size());
  EXPECT_GT(bytes, table.size() * sizeof(ctrl::HostLocation));
  EXPECT_GE(table.memory_bytes(), bytes);
}

// --- property test: random churn against a reference map model -------------
//
// The model is a plain pair of maps with the *intended* semantics written
// out longhand; the table must agree with it after any sequence of learn /
// touch / move / re-lease / remove / expire / remove_switch. Runs under the
// ASan/UBSan CI job, where a stale slot or index would light up.

struct ReferenceModel {
  struct Entry {
    Ipv4Address ip;
    DatapathId dpid = 0;
    PortId port = kInvalidPort;
    SimTime last_seen = 0;
  };
  std::unordered_map<std::uint64_t, Entry> by_mac;
  std::unordered_map<std::uint32_t, std::uint64_t> by_ip;

  void assign_ip(Ipv4Address addr, std::uint64_t mac48) {
    if (addr.is_zero()) return;
    auto it = by_ip.find(addr.value());
    if (it != by_ip.end() && it->second != mac48) {
      auto loser = by_mac.find(it->second);
      if (loser != by_mac.end()) loser->second.ip = Ipv4Address();
    }
    by_ip[addr.value()] = mac48;
  }

  void learn(std::uint64_t mac48, Ipv4Address addr, DatapathId dpid, PortId port, SimTime now) {
    auto it = by_mac.find(mac48);
    if (it != by_mac.end()) {
      if (!addr.is_zero() && it->second.ip != addr) {
        if (auto owned = by_ip.find(it->second.ip.value());
            owned != by_ip.end() && owned->second == mac48) {
          by_ip.erase(owned);
        }
        it->second.ip = addr;
        assign_ip(addr, mac48);
      }
      it->second.dpid = dpid;
      it->second.port = port;
      it->second.last_seen = now;
      return;
    }
    by_mac[mac48] = Entry{addr, dpid, port, now};
    assign_ip(addr, mac48);
  }

  void remove(std::uint64_t mac48) {
    auto it = by_mac.find(mac48);
    if (it == by_mac.end()) return;
    if (auto owned = by_ip.find(it->second.ip.value());
        owned != by_ip.end() && owned->second == mac48) {
      by_ip.erase(owned);
    }
    by_mac.erase(it);
  }

  std::vector<std::uint64_t> expire(SimTime now, SimTime timeout) {
    std::vector<std::uint64_t> gone;
    for (const auto& [mac48, entry] : by_mac) {
      if (now - entry.last_seen >= timeout) gone.push_back(mac48);
    }
    for (std::uint64_t mac48 : gone) remove(mac48);
    return gone;
  }

  std::vector<std::uint64_t> remove_switch(DatapathId dpid) {
    std::vector<std::uint64_t> gone;
    for (const auto& [mac48, entry] : by_mac) {
      if (entry.dpid == dpid) gone.push_back(mac48);
    }
    for (std::uint64_t mac48 : gone) remove(mac48);
    return gone;
  }
};

void expect_agreement(const ctrl::RoutingTable& table, const ReferenceModel& model) {
  ASSERT_EQ(table.size(), model.by_mac.size());
  for (const auto& [mac48, entry] : model.by_mac) {
    const ctrl::HostLocation* loc = table.find(mac(mac48));
    ASSERT_NE(loc, nullptr) << "host " << mac48 << " missing from table";
    EXPECT_EQ(loc->ip, entry.ip);
    EXPECT_EQ(loc->dpid, entry.dpid);
    EXPECT_EQ(loc->port, entry.port);
    EXPECT_EQ(loc->last_seen, entry.last_seen);
  }
  for (const auto& [addr, mac48] : model.by_ip) {
    const ctrl::HostLocation* loc = table.find_by_ip(ip(addr));
    ASSERT_NE(loc, nullptr) << "ip " << addr << " missing from index";
    EXPECT_EQ(loc->mac.to_uint64(), mac48);
  }
  // And nothing extra: an IP the model doesn't know must miss.
  for (std::uint32_t probe = 1; probe < 8; ++probe) {
    const std::uint32_t addr = 0x0B000000u + probe * 37;
    if (!model.by_ip.contains(addr)) EXPECT_EQ(table.find_by_ip(ip(addr)), nullptr);
  }
}

TEST(RoutingTableProperty, RandomChurnAgreesWithReferenceModel) {
  constexpr SimTime kTimeout = 60 * kSecond;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ctrl::RoutingTable table(kTimeout, 4);
    ReferenceModel model;
    std::uint64_t counter = 0;
    const auto rnd = [&]() { return splitmix64(seed * 0x9E3779B97F4A7C15ull + ++counter); };
    SimTime now = 0;
    std::uint64_t last_version = table.version();

    for (int op = 0; op < 4'000; ++op) {
      now += static_cast<SimTime>(rnd() % (8 * kSecond));
      const std::uint64_t mac48 = 1 + rnd() % 160;  // small pools force reuse
      const std::uint32_t addr = static_cast<std::uint32_t>(1 + rnd() % 96);
      const DatapathId dpid = 1 + rnd() % 6;
      const PortId port = static_cast<PortId>(1 + rnd() % 12);

      switch (rnd() % 10) {
        case 0:
        case 1:
        case 2:
        case 3:  // learn (fresh, move or re-lease, depending on the draws)
          table.learn(mac(mac48), ip(addr), dpid, port, now);
          model.learn(mac48, ip(addr), dpid, port, now);
          break;
        case 4:  // learn with no address (pre-DHCP announcement)
          table.learn(mac(mac48), Ipv4Address(), dpid, port, now);
          model.learn(mac48, Ipv4Address(), dpid, port, now);
          break;
        case 5:  // liveness refresh
          table.touch(mac(mac48), now);
          if (auto it = model.by_mac.find(mac48); it != model.by_mac.end()) {
            it->second.last_seen = now;
          }
          break;
        case 6:  // explicit leave
          table.remove(mac(mac48));
          model.remove(mac48);
          break;
        case 7: {  // batched idle expiry
          auto removed = table.expire(now);
          auto expected = model.expire(now, kTimeout);
          std::vector<std::uint64_t> got;
          for (const auto& loc : removed) got.push_back(loc.mac.to_uint64());
          std::sort(got.begin(), got.end());
          std::sort(expected.begin(), expected.end());
          EXPECT_EQ(got, expected) << "expiry diverged at op " << op << " seed " << seed;
          break;
        }
        case 8: {  // switch failure
          auto removed = table.remove_switch(dpid);
          auto expected = model.remove_switch(dpid);
          EXPECT_EQ(removed.size(), expected.size());
          break;
        }
        case 9:  // re-lease pressure: a specific contested address
          table.learn(mac(mac48), ip(7), dpid, port, now);
          model.learn(mac48, ip(7), dpid, port, now);
          break;
      }

      EXPECT_GE(table.version(), last_version);
      last_version = table.version();
      if ((op & 63) == 63) {
        expect_agreement(table, model);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
    expect_agreement(table, model);
  }
}

}  // namespace
}  // namespace livesec
