// Unit tests for the OpenFlow layer: match semantics, flow table, channel.
#include <gtest/gtest.h>

#include "openflow/channel.h"
#include "openflow/flow_table.h"
#include "openflow/match.h"
#include "sim/simulator.h"

namespace livesec::of {
namespace {

pkt::FlowKey sample_key(std::uint16_t tp_src = 1000) {
  pkt::FlowKey key;
  key.dl_src = MacAddress::from_uint64(0xA);
  key.dl_dst = MacAddress::from_uint64(0xB);
  key.dl_type = static_cast<std::uint16_t>(pkt::EtherType::kIpv4);
  key.nw_src = Ipv4Address(10, 0, 0, 1);
  key.nw_dst = Ipv4Address(10, 0, 0, 2);
  key.nw_proto = 6;
  key.tp_src = tp_src;
  key.tp_dst = 80;
  return key;
}

TEST(Match, WildcardAllMatchesEverything) {
  const Match m;
  EXPECT_TRUE(m.is_wildcard_all());
  EXPECT_TRUE(m.matches(0, sample_key()));
  EXPECT_TRUE(m.matches(99, sample_key(2222)));
}

TEST(Match, ExactMatchesOnlyIdenticalKey) {
  const pkt::FlowKey key = sample_key();
  const Match m = Match::exact(3, key);
  EXPECT_TRUE(m.matches(3, key));
  EXPECT_FALSE(m.matches(4, key));  // different in_port
  pkt::FlowKey other = key;
  other.tp_dst = 443;
  EXPECT_FALSE(m.matches(3, other));
}

TEST(Match, SingleFieldConstraints) {
  const pkt::FlowKey key = sample_key();
  EXPECT_TRUE(Match().nw_proto(6).matches(0, key));
  EXPECT_FALSE(Match().nw_proto(17).matches(0, key));
  EXPECT_TRUE(Match().tp_dst(80).matches(0, key));
  EXPECT_FALSE(Match().tp_dst(81).matches(0, key));
  EXPECT_TRUE(Match().dl_src(key.dl_src).matches(0, key));
  EXPECT_FALSE(Match().dl_src(key.dl_dst).matches(0, key));
}

TEST(Match, SpecificityCountsExactFields) {
  EXPECT_EQ(Match().specificity(), 0);
  EXPECT_EQ(Match().nw_proto(6).specificity(), 1);
  EXPECT_EQ(Match::exact(0, sample_key()).specificity(), 10);
  EXPECT_EQ(Match::exact_flow(sample_key()).specificity(), 9);
}

TEST(FlowTable, HighestPriorityWins) {
  FlowTable table;
  FlowEntry broad;
  broad.match = Match().tp_dst(80);
  broad.priority = 10;
  broad.actions = output_to(1);
  table.add(broad, 0);

  FlowEntry specific;
  specific.match = Match::exact(0, sample_key());
  specific.priority = 200;
  specific.actions = drop();
  table.add(specific, 0);

  const FlowEntry* hit = table.lookup(0, sample_key(), 100, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->priority, 200);
}

TEST(FlowTable, EqualPriorityPrefersMoreSpecific) {
  FlowTable table;
  FlowEntry broad;
  broad.match = Match().tp_dst(80);
  broad.priority = 100;
  broad.actions = output_to(1);
  table.add(broad, 0);

  FlowEntry narrow;
  narrow.match = Match().tp_dst(80).nw_proto(6);
  narrow.priority = 100;
  narrow.actions = output_to(2);
  table.add(narrow, 0);

  const FlowEntry* hit = table.lookup(0, sample_key(), 100, 1);
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->actions.size(), 1u);
  EXPECT_EQ(std::get<ActionOutput>(hit->actions[0]).port, 2u);
}

TEST(FlowTable, AddReplacesIdenticalMatchAndPriority) {
  FlowTable table;
  FlowEntry e;
  e.match = Match::exact(0, sample_key());
  e.priority = 100;
  e.actions = output_to(1);
  table.add(e, 0);
  e.actions = output_to(9);
  table.add(e, 5);
  EXPECT_EQ(table.size(), 1u);
  const FlowEntry* hit = table.lookup(0, sample_key(), 10, 6);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(std::get<ActionOutput>(hit->actions[0]).port, 9u);
}

TEST(FlowTable, CountersAccumulateOnHits) {
  FlowTable table;
  FlowEntry e;
  e.match = Match::exact(0, sample_key());
  e.actions = output_to(1);
  table.add(e, 0);
  table.lookup(0, sample_key(), 100, 1);
  table.lookup(0, sample_key(), 150, 2);
  const FlowEntry* hit = table.lookup(0, sample_key(), 50, 3);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->packet_count, 3u);
  EXPECT_EQ(hit->byte_count, 300u);
  EXPECT_EQ(table.hits(), 3u);
  EXPECT_EQ(table.misses(), 0u);
}

TEST(FlowTable, MissReturnsNullAndCounts) {
  FlowTable table;
  EXPECT_EQ(table.lookup(0, sample_key(), 10, 0), nullptr);
  EXPECT_EQ(table.misses(), 1u);
}

TEST(FlowTable, IdleTimeoutEvicts) {
  FlowTable table;
  FlowEntry e;
  e.match = Match::exact(0, sample_key());
  e.actions = output_to(1);
  e.idle_timeout = 100;
  table.add(e, 0);
  EXPECT_NE(table.lookup(0, sample_key(), 10, 50), nullptr);   // refreshes idle clock
  EXPECT_NE(table.lookup(0, sample_key(), 10, 149), nullptr);  // still fresh
  EXPECT_EQ(table.lookup(0, sample_key(), 10, 249), nullptr);  // idle > 100
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, HardTimeoutEvictsRegardlessOfUse) {
  FlowTable table;
  FlowEntry e;
  e.match = Match::exact(0, sample_key());
  e.actions = output_to(1);
  e.hard_timeout = 100;
  table.add(e, 0);
  for (SimTime t = 10; t < 100; t += 10) {
    EXPECT_NE(table.lookup(0, sample_key(), 10, t), nullptr);
  }
  EXPECT_EQ(table.lookup(0, sample_key(), 10, 100), nullptr);
}

TEST(FlowTable, RemovalCallbackFiresWithReason) {
  FlowTable table;
  std::vector<RemovalReason> reasons;
  table.set_removal_callback(
      [&](const FlowEntry&, RemovalReason reason) { reasons.push_back(reason); });

  FlowEntry e;
  e.match = Match::exact(0, sample_key());
  e.actions = output_to(1);
  e.idle_timeout = 100;
  table.add(e, 0);
  table.expire(500);
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_EQ(reasons[0], RemovalReason::kIdleTimeout);

  e.idle_timeout = 0;
  table.add(e, 500);
  table.remove_strict(e.match, e.priority, 501);
  ASSERT_EQ(reasons.size(), 2u);
  EXPECT_EQ(reasons[1], RemovalReason::kDelete);
}

TEST(FlowTable, ModifyStrictUpdatesActionsOnly) {
  FlowTable table;
  FlowEntry e;
  e.match = Match::exact(0, sample_key());
  e.priority = 100;
  e.actions = output_to(1);
  table.add(e, 0);
  table.lookup(0, sample_key(), 42, 1);

  EXPECT_EQ(table.modify_strict(e.match, 100, drop()), 1u);
  const FlowEntry* hit = table.lookup(0, sample_key(), 10, 2);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(std::holds_alternative<ActionDrop>(hit->actions[0]));
  EXPECT_EQ(hit->packet_count, 2u);  // counters survived the modify
}

TEST(FlowTable, NonStrictDeleteRemovesCoveredEntries) {
  FlowTable table;
  FlowEntry a;
  a.match = Match::exact(0, sample_key(1000));
  a.actions = output_to(1);
  table.add(a, 0);
  FlowEntry b;
  b.match = Match::exact(0, sample_key(2000));
  b.actions = output_to(1);
  table.add(b, 0);
  FlowEntry c;
  c.match = Match().nw_proto(17);  // different proto: not covered below
  c.actions = output_to(2);
  table.add(c, 0);

  // Delete everything with nw_proto=6 (covers both exact TCP entries).
  EXPECT_EQ(table.remove_matching(Match().nw_proto(6), 1), 2u);
  EXPECT_EQ(table.size(), 1u);

  // Wildcard-all covers the rest.
  EXPECT_EQ(table.remove_matching(Match(), 1), 1u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, StrictDeleteRequiresExactMatchAndPriority) {
  FlowTable table;
  FlowEntry e;
  e.match = Match::exact(0, sample_key());
  e.priority = 100;
  e.actions = output_to(1);
  table.add(e, 0);
  EXPECT_EQ(table.remove_strict(e.match, 99, 1), 0u);
  EXPECT_EQ(table.remove_strict(Match::exact(1, sample_key()), 100, 1), 0u);
  EXPECT_EQ(table.remove_strict(e.match, 100, 1), 1u);
}

TEST(FlowTable, ReplaceInPlaceResetsCounters) {
  FlowTable table;
  FlowEntry e;
  e.match = Match::exact(0, sample_key());
  e.priority = 100;
  e.actions = output_to(1);
  table.add(e, 0);
  table.lookup(0, sample_key(), 100, 1);
  table.lookup(0, sample_key(), 100, 2);

  // OFPFC_ADD with an identical match+priority replaces in place: actions
  // swap, counters restart from zero.
  e.actions = output_to(2);
  table.add(e, 3);
  EXPECT_EQ(table.size(), 1u);
  const FlowEntry* hit = table.lookup(0, sample_key(), 40, 4);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->packet_count, 1u);
  EXPECT_EQ(hit->byte_count, 40u);
  EXPECT_EQ(std::get<ActionOutput>(hit->actions[0]).port, 2u);
}

TEST(FlowTable, SameKeyDifferentPriorityCoexist) {
  // A security drop outranks the forwarding entry for the same exact key
  // (the controller installs both); deleting the drop re-exposes the path.
  FlowTable table;
  FlowEntry forward;
  forward.match = Match::exact(0, sample_key());
  forward.priority = 100;
  forward.actions = output_to(1);
  table.add(forward, 0);
  FlowEntry drop;
  drop.match = forward.match;
  drop.priority = 200;
  drop.actions = {ActionDrop{}};
  table.add(drop, 0);
  EXPECT_EQ(table.size(), 2u);

  const FlowEntry* hit = table.lookup(0, sample_key(), 10, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->priority, 200);

  EXPECT_EQ(table.remove_strict(drop.match, 200, 2), 1u);
  hit = table.lookup(0, sample_key(), 10, 3);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->priority, 100);
}

TEST(FlowTable, HigherPriorityWildcardShadowsExactEntry) {
  FlowTable table;
  FlowEntry exact;
  exact.match = Match::exact(0, sample_key());
  exact.priority = 100;
  exact.actions = output_to(1);
  table.add(exact, 0);
  FlowEntry wild;
  wild.match = Match().nw_proto(6);
  wild.priority = 300;
  wild.actions = output_to(2);
  table.add(wild, 0);

  // The wildcard outranks the exact-tier hit; OF 1.0 priority order must
  // survive the fast path.
  const FlowEntry* hit = table.lookup(0, sample_key(), 10, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->priority, 300);

  // At equal priority the exact entry is more specific and wins.
  wild.priority = 100;
  table.add(wild, 2);
  table.remove_strict(Match().nw_proto(6), 300, 2);
  hit = table.lookup(0, sample_key(), 10, 3);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->match.is_exact(), true);
}

TEST(FlowTable, ExpiryCallbacksFireInDeadlineOrderWithFinalCounters) {
  FlowTable table;
  std::vector<std::pair<std::uint64_t, RemovalReason>> removed;
  table.set_removal_callback([&](const FlowEntry& entry, RemovalReason reason) {
    removed.emplace_back(entry.cookie, reason);
  });

  FlowEntry a;
  a.match = Match::exact(0, sample_key(1));
  a.cookie = 1;
  a.hard_timeout = 100;
  a.actions = output_to(1);
  table.add(a, 0);
  FlowEntry b;
  b.match = Match::exact(0, sample_key(2));
  b.cookie = 2;
  b.idle_timeout = 200;
  b.actions = output_to(1);
  table.add(b, 0);
  FlowEntry c;
  c.match = Match::exact(0, sample_key(3));
  c.cookie = 3;
  c.hard_timeout = 300;
  c.actions = output_to(1);
  table.add(c, 0);

  table.lookup(0, sample_key(2), 64, 10);  // b stays busy until t=10
  table.expire(1000);
  ASSERT_EQ(removed.size(), 3u);
  EXPECT_EQ(removed[0], (std::pair<std::uint64_t, RemovalReason>{1, RemovalReason::kHardTimeout}));
  EXPECT_EQ(removed[1], (std::pair<std::uint64_t, RemovalReason>{2, RemovalReason::kIdleTimeout}));
  EXPECT_EQ(removed[2], (std::pair<std::uint64_t, RemovalReason>{3, RemovalReason::kHardTimeout}));
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, ExpiredEntryCountersSurviveUntilCallback) {
  FlowTable table;
  std::uint64_t final_packets = 0;
  table.set_removal_callback(
      [&](const FlowEntry& entry, RemovalReason) { final_packets = entry.packet_count; });
  FlowEntry e;
  e.match = Match::exact(0, sample_key());
  e.idle_timeout = 100;
  e.actions = output_to(1);
  table.add(e, 0);
  table.lookup(0, sample_key(), 10, 50);
  table.lookup(0, sample_key(), 10, 90);
  table.expire(500);
  EXPECT_EQ(final_packets, 2u);
}

// --- SecureChannel ------------------------------------------------------------

class FakeSwitch : public SwitchEndpoint {
 public:
  DatapathId datapath_id() const override { return 7; }
  void handle_controller_message(const Message& m) override { received.push_back(m); }
  std::vector<Message> received;
};

class FakeController : public ControllerEndpoint {
 public:
  void handle_switch_message(DatapathId dpid, const Message& m) override {
    messages.emplace_back(dpid, m);
  }
  void handle_switch_connected(DatapathId dpid, const FeaturesReply&) override {
    connected.push_back(dpid);
  }
  void handle_switch_disconnected(DatapathId dpid) override { disconnected.push_back(dpid); }
  std::vector<std::pair<DatapathId, Message>> messages;
  std::vector<DatapathId> connected;
  std::vector<DatapathId> disconnected;
};

TEST(SecureChannel, DeliversWithLatencyBothWays) {
  sim::Simulator sim;
  FakeSwitch sw;
  FakeController controller;
  SecureChannel channel(sim, sw, controller, 100 * kMicrosecond);
  channel.connect(FeaturesReply{7, 4, "sw7"});
  sim.run();
  ASSERT_EQ(controller.connected.size(), 1u);
  EXPECT_EQ(sim.now(), 100 * kMicrosecond);

  channel.send_to_controller(EchoRequest{99});
  sim.run();
  ASSERT_EQ(controller.messages.size(), 1u);
  EXPECT_EQ(controller.messages[0].first, 7u);

  channel.send_to_switch(EchoRequest{11});
  sim.run();
  ASSERT_EQ(sw.received.size(), 1u);
}

TEST(SecureChannel, DropsMessagesWhenDisconnected) {
  sim::Simulator sim;
  FakeSwitch sw;
  FakeController controller;
  SecureChannel channel(sim, sw, controller);
  channel.send_to_controller(EchoRequest{1});  // never connected
  sim.run();
  EXPECT_TRUE(controller.messages.empty());

  channel.connect(FeaturesReply{7, 0, "sw"});
  sim.run();
  channel.disconnect();
  channel.send_to_controller(EchoRequest{2});
  sim.run();
  EXPECT_TRUE(controller.messages.empty());
  ASSERT_EQ(controller.disconnected.size(), 1u);
}

}  // namespace
}  // namespace livesec::of
