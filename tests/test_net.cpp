// Unit tests for the net module: Host behaviour (ARP, ping, dispatch),
// traffic applications, and the Network deployment builder.
#include <gtest/gtest.h>

#include "net/network.h"
#include "net/traffic.h"

namespace livesec::net {
namespace {

/// Two hosts wired back-to-back (no switches): exercises pure host logic.
struct HostPair {
  sim::Simulator sim;
  Host a{sim, "a", MacAddress::from_uint64(0xA), Ipv4Address(10, 0, 0, 1)};
  Host b{sim, "b", MacAddress::from_uint64(0xB), Ipv4Address(10, 0, 0, 2)};
  std::unique_ptr<sim::Link> link = sim::connect(sim, a.port(0), b.port(0));
};

TEST(Host, ArpResolvesThenSends) {
  HostPair pair;
  pkt::Packet p = pkt::PacketBuilder()
                      .ipv4(pair.a.ip(), pair.b.ip(), pkt::IpProto::kUdp)
                      .udp(1000, 2000)
                      .payload("queued until ARP resolves")
                      .build();
  pair.a.send_ip(std::move(p));
  EXPECT_FALSE(pair.a.arp_cached(pair.b.ip()));
  pair.sim.run();
  EXPECT_TRUE(pair.a.arp_cached(pair.b.ip()));
  EXPECT_EQ(pair.b.rx_ip_packets(), 1u);
}

TEST(Host, ArpRequestsAreCoalescedWhileResolving) {
  HostPair pair;
  for (int i = 0; i < 5; ++i) {
    pkt::Packet p = pkt::PacketBuilder()
                        .ipv4(pair.a.ip(), pair.b.ip(), pkt::IpProto::kUdp)
                        .udp(static_cast<std::uint16_t>(1000 + i), 2000)
                        .payload("x")
                        .build();
    pair.a.send_ip(std::move(p));
  }
  pair.sim.run();
  EXPECT_EQ(pair.b.rx_ip_packets(), 5u);  // all five flushed after one ARP
}

TEST(Host, RepliesToEchoAndRecordsRtt) {
  HostPair pair;
  bool done = false;
  pair.a.ping(pair.b.ip(), 3, 1 * kMillisecond, [&](const Host::PingStats& stats) {
    done = true;
    EXPECT_EQ(stats.received, 3u);
    EXPECT_GT(stats.min_rtt, 0);
    EXPECT_GE(stats.max_rtt, stats.min_rtt);
  });
  pair.sim.run();
  EXPECT_TRUE(done);
}

TEST(Host, PingCompletionFiresOnTimeoutWithLosses) {
  sim::Simulator sim;
  Host lonely(sim, "lonely", MacAddress::from_uint64(0xC), Ipv4Address(10, 0, 0, 3));
  // No link at all: every ping is lost.
  bool done = false;
  lonely.ping(Ipv4Address(10, 0, 0, 9), 2, 1 * kMillisecond,
              [&](const Host::PingStats& stats) {
                done = true;
                EXPECT_EQ(stats.received, 0u);
              },
              50 * kMillisecond);
  sim.run();
  EXPECT_TRUE(done);
}

TEST(Host, PortHandlersDispatchByDestination) {
  HostPair pair;
  int udp_hits = 0;
  int fallback_hits = 0;
  pair.b.on_udp(5000, [&](const pkt::Packet&) { ++udp_hits; });
  pair.b.on_ip_default([&](const pkt::Packet&) { ++fallback_hits; });

  pkt::Packet hit = pkt::PacketBuilder()
                        .ipv4(pair.a.ip(), pair.b.ip(), pkt::IpProto::kUdp)
                        .udp(1, 5000)
                        .payload("to handler")
                        .build();
  pkt::Packet miss = pkt::PacketBuilder()
                         .ipv4(pair.a.ip(), pair.b.ip(), pkt::IpProto::kUdp)
                         .udp(1, 9999)
                         .payload("to fallback")
                         .build();
  pair.a.send_ip(std::move(hit));
  pair.a.send_ip(std::move(miss));
  pair.sim.run();
  EXPECT_EQ(udp_hits, 1);
  EXPECT_EQ(fallback_hits, 1);
}

TEST(Host, IgnoresFramesForOtherMacs) {
  HostPair pair;
  pkt::Packet p = pkt::PacketBuilder()
                      .eth(pair.a.mac(), MacAddress::from_uint64(0xDEAD))
                      .ipv4(pair.a.ip(), pair.b.ip(), pkt::IpProto::kUdp)
                      .udp(1, 2)
                      .payload("wrong dst mac")
                      .build();
  pair.a.port(0).transmit(pkt::finalize(std::move(p)));
  pair.sim.run();
  EXPECT_EQ(pair.b.rx_ip_packets(), 0u);
}

TEST(UdpCbrApp, HitsConfiguredRate) {
  HostPair pair;
  UdpCbrApp app(pair.a, {.dst = pair.b.ip(),
                         .rate_bps = 10e6,
                         .packet_payload = 1000,
                         .duration = 1 * kSecond});
  app.start();
  pair.sim.run();
  const double sent_bps = static_cast<double>(app.bytes_sent()) * 8.0;
  EXPECT_NEAR(sent_bps, 10e6, 0.5e6);  // over ~1 second
  EXPECT_EQ(pair.b.rx_ip_packets(), app.packets_sent());
}

TEST(HttpApps, RequestResponseCycleCompletes) {
  HostPair pair;
  HttpServerApp server(pair.b, {.port = 80, .response_size = 10000, .mtu_payload = 1400});
  HttpClientApp client(pair.a, {.server = pair.b.ip(), .sessions = 3, .concurrency = 1,
                                .expected_response = 10000});
  client.start();
  pair.sim.run();
  EXPECT_EQ(client.responses_completed(), 3u);
  EXPECT_EQ(server.requests_served(), 3u);
  EXPECT_GE(client.response_bytes(), 3u * 10000u);
  EXPECT_TRUE(client.done());
}

TEST(HttpApps, ResponseStartsWithRealHttpBytes) {
  HostPair pair;
  HttpServerApp server(pair.b, {.port = 80, .response_size = 2000});
  std::string first_payload;
  pair.a.on_ip_default([&](const pkt::Packet& p) {
    if (first_payload.empty() && p.payload_size() > 0) {
      first_payload.assign(p.payload->begin(), p.payload->end());
    }
  });
  pkt::Packet request = pkt::PacketBuilder()
                            .ipv4(pair.a.ip(), pair.b.ip(), pkt::IpProto::kTcp)
                            .tcp(12345, 80, pkt::TcpFlags::kPsh)
                            .payload("GET / HTTP/1.1\r\n\r\n")
                            .build();
  pair.a.send_ip(std::move(request));
  pair.sim.run();
  ASSERT_FALSE(first_payload.empty());
  EXPECT_EQ(first_payload.rfind("HTTP/1.1 200 OK", 0), 0u);
}

TEST(BitTorrentApp, SendsRealHandshake) {
  HostPair pair;
  std::string first_payload;
  pair.b.on_tcp(6881, [&](const pkt::Packet& p) {
    if (first_payload.empty() && p.payload_size() > 0) {
      first_payload.assign(p.payload->begin(), p.payload->end());
    }
  });
  BitTorrentApp app(pair.a, {.peers = {pair.b.ip()}, .rate_bps = 1e6,
                             .duration = 100 * kMillisecond});
  app.start();
  pair.sim.run();
  ASSERT_GE(first_payload.size(), 20u);
  EXPECT_EQ(first_payload[0], '\x13');
  EXPECT_EQ(first_payload.substr(1, 19), "BitTorrent protocol");
}

// --- Network builder ---------------------------------------------------------

TEST(Network, AllocatesUniqueAddresses) {
  Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs = network.add_as_switch("ovs", backbone);
  auto& h1 = network.add_host("h1", ovs);
  auto& h2 = network.add_host("h2", ovs);
  EXPECT_NE(h1.mac(), h2.mac());
  EXPECT_NE(h1.ip(), h2.ip());
}

TEST(Network, StartRegistersEverything) {
  Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs1 = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);
  network.add_host("h1", ovs1);
  network.add_service_element(svc::ServiceType::kVirusScan, ovs2);
  network.start();

  EXPECT_EQ(network.controller().topology().switch_count(), 2u);
  EXPECT_EQ(network.controller().services().size(), 1u);
  EXPECT_GE(network.controller().routing().size(), 2u);  // host + SE
}

TEST(Network, RedundantLegacyLinksAreLoopFreeAfterFinalize) {
  Network network;
  auto& l1 = network.add_legacy_switch("l1");
  auto& l2 = network.add_legacy_switch("l2");
  auto& l3 = network.add_legacy_switch("l3");
  network.connect_legacy(l1, l2);
  network.connect_legacy(l2, l3);
  network.connect_legacy(l3, l1);  // loop!
  network.finalize_legacy();

  auto& ovs1 = network.add_as_switch("ovs1", l1);
  auto& ovs2 = network.add_as_switch("ovs2", l3);
  auto& a = network.add_host("a", ovs1);
  auto& b = network.add_host("b", ovs2);
  network.start();

  // A broadcast-triggering exchange must terminate (no storm) and deliver.
  pkt::Packet p = pkt::PacketBuilder()
                      .ipv4(a.ip(), b.ip(), pkt::IpProto::kUdp)
                      .udp(1, 2)
                      .payload("through the ex-loop")
                      .build();
  a.send_ip(std::move(p));
  network.run_for(1 * kSecond);
  EXPECT_EQ(b.rx_ip_packets(), 1u);
}

TEST(Network, SeCertTokensAreValid) {
  Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs = network.add_as_switch("ovs", backbone);
  auto& se = network.add_service_element(svc::ServiceType::kIntrusionDetection, ovs);
  EXPECT_TRUE(network.controller().certification().validate(se.se_id(),
                                                            se.config().cert_token));
}

}  // namespace
}  // namespace livesec::net
