// Controller edge cases: unblocking, fail-open on empty SE pools, custom SE
// rulesets, DHCP exhaustion, mirror interplay, policy updates on live nets.
#include <gtest/gtest.h>

#include "net/network.h"
#include "net/trace_sink.h"
#include "net/traffic.h"

namespace livesec {
namespace {

struct EdgeNet {
  net::Network network;
  sw::EthernetSwitch& backbone;
  sw::OpenFlowSwitch& ovs1;
  sw::OpenFlowSwitch& ovs2;
  net::Host& alice;
  net::Host& bob;

  EdgeNet()
      : backbone(network.add_legacy_switch("backbone")),
        ovs1(network.add_as_switch("ovs1", backbone)),
        ovs2(network.add_as_switch("ovs2", backbone)),
        alice(network.add_host("alice", ovs1)),
        bob(network.add_host("bob", ovs2)) {}
};

TEST(ControllerEdge, UnblockFlowRestoresConnectivity) {
  EdgeNet net;
  net.network.add_service_element(svc::ServiceType::kIntrusionDetection, net.ovs2);
  ctrl::Policy policy;
  policy.tp_dst = 80;
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kIntrusionDetection};
  net.network.controller().policies().add(policy);
  net::HttpServerApp server(net.bob, {.port = 80});
  net.network.start();

  net::AttackApp attacker(net.alice, {.server = net.bob.ip(), .packets = 5});
  attacker.start();
  net.network.run_for(1 * kSecond);
  ASSERT_EQ(net.network.controller().stats().flows_blocked_by_event, 1u);

  // Find the blocked key from the event record and unblock it.
  const auto blocked_events = net.network.controller().events().query_type(
      mon::EventType::kFlowBlocked, 0, INT64_MAX);
  ASSERT_FALSE(blocked_events.empty());
  const pkt::FlowKey key = blocked_events[0].flow;
  EXPECT_TRUE(net.network.controller().flow_blocked(key));
  EXPECT_TRUE(net.network.controller().unblock_flow(key));
  EXPECT_FALSE(net.network.controller().flow_blocked(key));
  EXPECT_FALSE(net.network.controller().unblock_flow(key));  // idempotence

  // After entries idle out, the same flow works again (it still alerts, but
  // admission is no longer pre-denied; the fresh alert re-blocks it, which
  // is the designed loop — here we only check setup was permitted again).
  net.network.run_for(35 * kSecond);
  const auto before = net.network.controller().stats().flows_installed;
  net::AttackApp retry(net.alice, {.server = net.bob.ip(), .packets = 1});
  retry.start();
  net.network.run_for(1 * kSecond);
  EXPECT_EQ(net.network.controller().stats().flows_installed, before + 1);
}

TEST(ControllerEdge, RedirectFailsOpenWithoutSes) {
  EdgeNet net;
  ctrl::Policy policy;
  policy.nw_proto = static_cast<std::uint8_t>(pkt::IpProto::kUdp);
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kVirusScan};  // pool is empty
  net.network.controller().policies().add(policy);
  net.network.start();

  pkt::Packet p = pkt::PacketBuilder()
                      .ipv4(net.alice.ip(), net.bob.ip(), pkt::IpProto::kUdp)
                      .udp(1, 2)
                      .payload("no scanner available")
                      .build();
  net.alice.send_ip(std::move(p));
  net.network.run_for(300 * kMillisecond);
  // Fail-open: traffic still flows, just uninspected.
  EXPECT_EQ(net.bob.rx_ip_packets(), 1u);
  EXPECT_EQ(net.network.controller().stats().flows_redirected, 0u);
}

TEST(ControllerEdge, CustomSeRulesetDetectsCustomMarker) {
  EdgeNet net;
  std::vector<std::string> errors;
  svc::ServiceElement::Config config;
  config.ids_rules = svc::ids::parse_rules("8800 custom.marker tcp 0 9 ORG-SPECIFIC-IOC\n",
                                           errors);
  net.network.add_service_element(svc::ServiceType::kIntrusionDetection, net.ovs2, config);
  ctrl::Policy policy;
  policy.nw_proto = static_cast<std::uint8_t>(pkt::IpProto::kTcp);
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kIntrusionDetection};
  net.network.controller().policies().add(policy);
  net.network.start();

  net::AttackApp attacker(net.alice, {.server = net.bob.ip(),
                                      .attack_payload = "data ORG-SPECIFIC-IOC data",
                                      .packets = 3});
  attacker.start();
  net.network.run_for(1 * kSecond);
  const auto attacks = net.network.controller().events().query_type(
      mon::EventType::kAttackDetected, 0, INT64_MAX);
  ASSERT_GE(attacks.size(), 1u);
  EXPECT_EQ(attacks[0].detail, "custom.marker");
}

TEST(ControllerEdge, DhcpNakOnPoolExhaustion) {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs = network.add_as_switch("ovs", backbone);
  network.controller().enable_dhcp(Ipv4Address(10, 2, 0, 10), 1);  // one address
  auto& h1 = network.add_host("h1", ovs);
  auto& h2 = network.add_host("h2", ovs);
  network.start();
  h1.start_dhcp();
  network.run_for(500 * kMillisecond);
  h2.start_dhcp({}, 10 * kSecond);  // single attempt inside the window
  network.run_for(500 * kMillisecond);
  EXPECT_TRUE(h1.dhcp_bound());
  EXPECT_FALSE(h2.dhcp_bound());  // NAK'd: pool exhausted
}

TEST(ControllerEdge, PolicyRemovalChangesNewFlows) {
  EdgeNet net;
  ctrl::Policy policy;
  policy.nw_proto = static_cast<std::uint8_t>(pkt::IpProto::kUdp);
  policy.action = ctrl::PolicyAction::kDeny;
  const std::uint32_t id = net.network.controller().policies().add(policy);
  net.network.start();

  pkt::Packet first = pkt::PacketBuilder()
                          .ipv4(net.alice.ip(), net.bob.ip(), pkt::IpProto::kUdp)
                          .udp(100, 200)
                          .payload("x")
                          .build();
  net.alice.send_ip(std::move(first));
  net.network.run_for(300 * kMillisecond);
  EXPECT_EQ(net.bob.rx_ip_packets(), 0u);

  EXPECT_TRUE(net.network.controller().policies().remove(id));
  pkt::Packet second = pkt::PacketBuilder()
                           .ipv4(net.alice.ip(), net.bob.ip(), pkt::IpProto::kUdp)
                           .udp(101, 200)  // distinct flow: not the denied entry
                           .payload("y")
                           .build();
  net.alice.send_ip(std::move(second));
  net.network.run_for(300 * kMillisecond);
  EXPECT_EQ(net.bob.rx_ip_packets(), 1u);
}

TEST(ControllerEdge, MirrorDoesNotDisturbDelivery) {
  EdgeNet net;
  net::TraceSink sink(net.network.sim(), "capture");
  sim::Port& span = net.ovs1.add_port(sw::PortRole::kNetworkPeriphery);
  auto link = sim::connect(net.network.sim(), sink.port(0), span);
  net.network.controller().set_mirror_port(1, span.id());
  net.network.start();

  for (int i = 0; i < 5; ++i) {
    pkt::Packet p = pkt::PacketBuilder()
                        .ipv4(net.alice.ip(), net.bob.ip(), pkt::IpProto::kUdp)
                        .udp(100, 200)
                        .payload("mirrored payload")
                        .build();
    net.alice.send_ip(std::move(p));
  }
  net.network.run_for(500 * kMillisecond);
  EXPECT_EQ(net.bob.rx_ip_packets(), 5u);     // delivery unaffected
  EXPECT_EQ(sink.trace().size(), 5u);         // every packet mirrored once
  net.network.controller().clear_mirror_port(1);
}

TEST(ControllerEdge, StatsPollingIsHarmlessWithoutTraffic) {
  ctrl::Controller::Config config;
  config.stats_interval = 200 * kMillisecond;
  net::Network network(config);
  auto& backbone = network.add_legacy_switch("backbone");
  network.add_as_switch("ovs", backbone);
  network.start();
  network.run_for(2 * kSecond);
  const auto* load = network.controller().switch_load(1);
  ASSERT_NE(load, nullptr);
  EXPECT_EQ(load->total_packets, 0u);
  EXPECT_EQ(load->bits_per_second, 0.0);
}

}  // namespace
}  // namespace livesec
