// Regression tests for controller state management: LS-uplink re-cabling,
// packet-ins from unknown datapaths, and disconnect cleanup. These pin the
// stale-state bugs fixed alongside the flow-table fast path.
#include <gtest/gtest.h>

#include <optional>

#include "controller/controller.h"
#include "net/network.h"
#include "openflow/channel.h"
#include "packet/packet.h"
#include "sim/simulator.h"
#include "topology/lldp.h"

namespace livesec {
namespace {

/// Switch-side channel endpoint that records every FlowMod the controller
/// pushes, so tests can inspect the installed paths without a full datapath.
class RecordingSwitch : public of::SwitchEndpoint {
 public:
  explicit RecordingSwitch(DatapathId dpid) : dpid_(dpid) {}
  DatapathId datapath_id() const override { return dpid_; }
  void handle_controller_message(const of::Message& m) override {
    if (const auto* fm = std::get_if<of::FlowMod>(&m)) {
      flow_mods.push_back(*fm);
    } else if (const auto* batch = std::get_if<of::FlowModBatch>(&m)) {
      // Batched installs count as their individual mods, in batch order.
      flow_mods.insert(flow_mods.end(), batch->mods.begin(), batch->mods.end());
    }
  }
  std::vector<of::FlowMod> flow_mods;

 private:
  DatapathId dpid_;
};

std::optional<PortId> output_port(const of::ActionList& actions) {
  for (const auto& action : actions) {
    if (const auto* out = std::get_if<of::ActionOutput>(&action)) return out->port;
  }
  return std::nullopt;
}

pkt::PacketPtr gratuitous_arp(MacAddress mac, Ipv4Address ip) {
  return pkt::PacketBuilder()
      .eth(mac, MacAddress::from_uint64(0xFFFFFFFFFFFFull))
      .arp(pkt::ArpOp::kRequest, mac, ip, MacAddress{}, ip)
      .finalize();
}

/// Two AS switches wired straight to a controller through recording
/// channels; no legacy fabric, so tests drive LLDP and ARP by hand.
struct TwoSwitchHarness {
  sim::Simulator sim;
  ctrl::Controller controller{sim};
  RecordingSwitch sw1{1};
  RecordingSwitch sw2{2};
  of::SecureChannel ch1{sim, sw1, controller, 10 * kMicrosecond};
  of::SecureChannel ch2{sim, sw2, controller, 10 * kMicrosecond};

  MacAddress alice_mac = MacAddress::from_uint64(0xA11CE);
  MacAddress bob_mac = MacAddress::from_uint64(0xB0B);
  Ipv4Address alice_ip{10, 0, 0, 1};
  Ipv4Address bob_ip{10, 0, 0, 2};

  TwoSwitchHarness() {
    controller.attach_channel(1, ch1);
    controller.attach_channel(2, ch2);
    ch1.connect(of::FeaturesReply{1, 8, "sw1"});
    ch2.connect(of::FeaturesReply{2, 8, "sw2"});
    sim.run();
  }

  void packet_in(of::SecureChannel& ch, PortId in_port, pkt::PacketPtr packet) {
    of::PacketIn pin;
    pin.in_port = in_port;
    pin.packet = std::move(packet);
    ch.send_to_controller(std::move(pin));
    sim.run();
  }

  /// Simulates an LLDP probe from `peer`:`peer_port` arriving on `in_port`.
  void lldp(of::SecureChannel& ch, PortId in_port, DatapathId peer, PortId peer_port) {
    topo::LldpInfo info;
    info.chassis_id = peer;
    info.port_id = peer_port;
    packet_in(ch, in_port, pkt::finalize(info.to_packet()));
  }

  void learn_hosts() {
    packet_in(ch1, 0, gratuitous_arp(alice_mac, alice_ip));
    packet_in(ch2, 0, gratuitous_arp(bob_mac, bob_ip));
  }

  void start_flow(std::uint16_t tp_src) {
    auto p = pkt::PacketBuilder()
                 .eth(alice_mac, bob_mac)
                 .ipv4(alice_ip, bob_ip, pkt::IpProto::kUdp)
                 .udp(tp_src, 80)
                 .finalize();
    packet_in(ch1, 0, std::move(p));
  }

  /// First kAdd FlowMod recorded on `sw` (the ingress/arrival entry).
  const of::FlowMod* first_add(const RecordingSwitch& sw) const {
    for (const auto& fm : sw.flow_mods) {
      if (fm.command == of::FlowModCommand::kAdd) return &fm;
    }
    return nullptr;
  }
};

// A switch re-cabled to a different LS-uplink port must overwrite the stale
// ls_ports_ record (bug: emplace kept the old port and routing forwarded new
// flows into the dead uplink forever).
TEST(ControllerState, LldpRecableUpdatesUplinkAndReroutesNewFlows) {
  TwoSwitchHarness net;
  net.lldp(net.ch1, 3, 2, 4);  // probe from sw2 port 4 arrives on sw1 port 3
  ASSERT_EQ(net.controller.ls_port(1), std::optional<PortId>{3});
  ASSERT_EQ(net.controller.ls_port(2), std::optional<PortId>{4});
  net.learn_hosts();

  net.start_flow(1000);
  const of::FlowMod* ingress = net.first_add(net.sw1);
  ASSERT_NE(ingress, nullptr);
  EXPECT_EQ(output_port(ingress->entry.actions), std::optional<PortId>{3});

  // Re-cable both uplinks; the next discovery round reports the new ports.
  net.sw1.flow_mods.clear();
  net.sw2.flow_mods.clear();
  net.lldp(net.ch1, 7, 2, 5);
  EXPECT_EQ(net.controller.ls_port(1), std::optional<PortId>{7});
  EXPECT_EQ(net.controller.ls_port(2), std::optional<PortId>{5});

  // A new flow must route over the new uplink end to end: ingress outputs
  // to sw1's new LS port and the far-side entry matches arrival on sw2's.
  net.start_flow(2000);
  const of::FlowMod* ingress2 = net.first_add(net.sw1);
  ASSERT_NE(ingress2, nullptr);
  EXPECT_EQ(output_port(ingress2->entry.actions), std::optional<PortId>{7});
  const of::FlowMod* egress = net.first_add(net.sw2);
  ASSERT_NE(egress, nullptr);
  EXPECT_TRUE(egress->entry.match.matches(
      5, pkt::FlowKey::from_packet(
             pkt::PacketBuilder()
                 .eth(net.alice_mac, net.bob_mac)
                 .ipv4(net.alice_ip, net.bob_ip, pkt::IpProto::kUdp)
                 .udp(2000, 80)
                 .build())));
}

// Packet-ins carrying a dpid that never attached a channel must be counted
// and dropped, not crash the controller (bug: switches_.at threw).
TEST(ControllerState, UnknownDpidPacketInIsIgnored) {
  sim::Simulator sim;
  ctrl::Controller controller(sim);
  of::PacketIn pin;
  pin.in_port = 0;
  pin.packet = gratuitous_arp(MacAddress::from_uint64(0xDEAD), Ipv4Address(10, 9, 9, 9));
  EXPECT_NO_THROW(controller.handle_switch_message(99, of::Message{pin}));
  EXPECT_EQ(controller.stats().unknown_dpid_drops, 1u);
  // The unroutable location must not have been learned.
  EXPECT_EQ(controller.routing().size(), 0u);
}

// Same guard on the flow-setup path: an IP packet-in from an unknown dpid.
TEST(ControllerState, UnknownDpidFlowSetupIsIgnored) {
  TwoSwitchHarness net;
  net.lldp(net.ch1, 3, 2, 4);
  net.learn_hosts();
  auto p = pkt::PacketBuilder()
               .eth(net.alice_mac, net.bob_mac)
               .ipv4(net.alice_ip, net.bob_ip, pkt::IpProto::kUdp)
               .udp(1, 2)
               .finalize();
  of::PacketIn pin;
  pin.in_port = 0;
  pin.packet = std::move(p);
  EXPECT_NO_THROW(net.controller.handle_switch_message(77, of::Message{pin}));
  EXPECT_EQ(net.controller.active_flows(), 0u);
}

// Disconnecting a switch must tear down every flow with a hop on it and drop
// its load record (bug: FlowRecords and switch_loads_ entries leaked).
TEST(ControllerState, DisconnectTearsDownFlowsAndLoadRecord) {
  TwoSwitchHarness net;
  net.lldp(net.ch1, 3, 2, 4);
  net.learn_hosts();
  net.start_flow(1000);
  ASSERT_EQ(net.controller.active_flows(), 1u);

  // Fake a stats reply so a load record exists for dpid 1.
  net.ch1.send_to_controller(of::StatsReply{});
  net.sim.run();
  ASSERT_NE(net.controller.switch_load(1), nullptr);

  net.controller.handle_switch_disconnected(1);
  EXPECT_EQ(net.controller.active_flows(), 0u);
  EXPECT_EQ(net.controller.switch_load(1), nullptr);
  EXPECT_EQ(net.controller.ls_port(1), std::nullopt);
}

}  // namespace
}  // namespace livesec
