// Control-plane fast-path regressions: the flow-decision cache must never
// replay a decision whose inputs changed (policy mutation, host move, SE
// offline, switch disconnect), duplicate packet-ins must collapse into one
// computation, and the fast-path counters must surface all of it.
#include <gtest/gtest.h>

#include <optional>

#include "controller/controller.h"
#include "openflow/channel.h"
#include "packet/packet.h"
#include "services/message.h"
#include "services/service_element.h"
#include "sim/simulator.h"
#include "topology/lldp.h"

namespace livesec {
namespace {

/// Records every FlowMod (batched ones flattened) and PacketOut the
/// controller pushes, so tests can count installs and buffered releases.
class RecordingSwitch : public of::SwitchEndpoint {
 public:
  explicit RecordingSwitch(DatapathId dpid) : dpid_(dpid) {}
  DatapathId datapath_id() const override { return dpid_; }
  void handle_controller_message(const of::Message& m) override {
    if (const auto* fm = std::get_if<of::FlowMod>(&m)) {
      flow_mods.push_back(*fm);
    } else if (const auto* batch = std::get_if<of::FlowModBatch>(&m)) {
      flow_mods.insert(flow_mods.end(), batch->mods.begin(), batch->mods.end());
    } else if (std::get_if<of::PacketOut>(&m) != nullptr) {
      ++packet_outs;
    }
  }

  std::size_t adds() const {
    std::size_t n = 0;
    for (const auto& fm : flow_mods) {
      if (fm.command == of::FlowModCommand::kAdd) ++n;
    }
    return n;
  }

  std::vector<of::FlowMod> flow_mods;
  std::size_t packet_outs = 0;

 private:
  DatapathId dpid_;
};

pkt::PacketPtr gratuitous_arp(MacAddress mac, Ipv4Address ip) {
  return pkt::PacketBuilder()
      .eth(mac, MacAddress::from_uint64(0xFFFFFFFFFFFFull))
      .arp(pkt::ArpOp::kRequest, mac, ip, MacAddress{}, ip)
      .finalize();
}

/// Two AS switches wired straight to a controller through recording
/// channels. Runs the clock in bounded steps so it stays usable after
/// start_housekeeping() makes the event queue self-refilling.
struct FastPathHarness {
  sim::Simulator sim;
  ctrl::Controller controller{sim};
  RecordingSwitch sw1{1};
  RecordingSwitch sw2{2};
  of::SecureChannel ch1{sim, sw1, controller, 10 * kMicrosecond};
  of::SecureChannel ch2{sim, sw2, controller, 10 * kMicrosecond};

  MacAddress alice_mac = MacAddress::from_uint64(0xA11CE);
  MacAddress bob_mac = MacAddress::from_uint64(0xB0B);
  Ipv4Address alice_ip{10, 0, 0, 1};
  Ipv4Address bob_ip{10, 0, 0, 2};

  FastPathHarness() {
    controller.attach_channel(1, ch1);
    controller.attach_channel(2, ch2);
    ch1.connect(of::FeaturesReply{1, 8, "sw1"});
    ch2.connect(of::FeaturesReply{2, 8, "sw2"});
    settle();
  }

  void settle() { sim.run_until(sim.now() + 100 * kMillisecond); }

  void packet_in(of::SecureChannel& ch, PortId in_port, pkt::PacketPtr packet) {
    of::PacketIn pin;
    pin.in_port = in_port;
    pin.packet = std::move(packet);
    ch.send_to_controller(std::move(pin));
    settle();
  }

  void lldp(of::SecureChannel& ch, PortId in_port, DatapathId peer, PortId peer_port) {
    topo::LldpInfo info;
    info.chassis_id = peer;
    info.port_id = peer_port;
    packet_in(ch, in_port, pkt::finalize(info.to_packet()));
  }

  /// Discovers the LS uplinks and announces both hosts.
  void bring_up() {
    lldp(ch1, 3, 2, 4);
    lldp(ch2, 4, 1, 3);
    packet_in(ch1, 0, gratuitous_arp(alice_mac, alice_ip));
    packet_in(ch2, 0, gratuitous_arp(bob_mac, bob_ip));
  }

  pkt::PacketPtr flow_packet(std::uint16_t tp_src) {
    return pkt::PacketBuilder()
        .eth(alice_mac, bob_mac)
        .ipv4(alice_ip, bob_ip, pkt::IpProto::kUdp)
        .udp(tp_src, 80)
        .finalize();
  }

  void start_flow(std::uint16_t tp_src) { packet_in(ch1, 0, flow_packet(tp_src)); }

  /// Certified SE online announcement arriving as a daemon packet-in.
  void se_online(std::uint64_t se_id, of::SecureChannel& ch, PortId port, MacAddress mac,
                 Ipv4Address ip) {
    svc::OnlineMessage online;
    online.service = svc::ServiceType::kIntrusionDetection;
    online.capacity_bps = 1'000'000'000;
    svc::DaemonMessage message;
    message.se_id = se_id;
    message.cert_token = controller.certification().issue(se_id);
    message.body = online;
    auto p = pkt::PacketBuilder()
                 .eth(mac, svc::controller_service_mac())
                 .ipv4(ip, svc::controller_service_ip(), pkt::IpProto::kUdp)
                 .udp(svc::kLiveSecPort, svc::kLiveSecPort)
                 .payload(pkt::make_payload(message.encode()))
                 .finalize();
    packet_in(ch, port, std::move(p));
  }

  const mon::FastPathCounters& counters() const { return controller.stats().fastpath; }
};

TEST(ControllerFastPath, CountersTrackHitsAndMisses) {
  FastPathHarness net;
  net.bring_up();

  net.start_flow(1000);
  EXPECT_EQ(net.counters().decision_cache_misses, 1u);
  EXPECT_EQ(net.counters().decision_cache_hits, 0u);
  EXPECT_EQ(net.controller.decision_cache_size(), 1u);

  // Same class (only tp_src differs): served from the cache.
  net.start_flow(1001);
  net.start_flow(1002);
  EXPECT_EQ(net.counters().decision_cache_misses, 1u);
  EXPECT_EQ(net.counters().decision_cache_hits, 2u);
  EXPECT_EQ(net.controller.decision_cache_size(), 1u);
  EXPECT_EQ(net.controller.stats().flows_installed, 3u);
}

TEST(ControllerFastPath, PolicyMutationInvalidatesCachedDecision) {
  FastPathHarness net;
  net.bring_up();
  net.start_flow(1000);
  net.start_flow(1001);
  ASSERT_EQ(net.counters().decision_cache_hits, 1u);

  // Adding a deny that matches the class must flush the cached allow: the
  // next flow of the class is denied, not installed from the stale entry.
  ctrl::Policy deny;
  deny.priority = 50;
  deny.tp_dst = 80;
  deny.action = ctrl::PolicyAction::kDeny;
  const std::uint32_t deny_id = net.controller.policies().add(deny);
  net.start_flow(1002);
  EXPECT_EQ(net.counters().decision_cache_invalidations, 1u);
  EXPECT_EQ(net.counters().decision_cache_hits, 1u);  // no replay
  EXPECT_EQ(net.controller.stats().flows_denied, 1u);
  EXPECT_EQ(net.controller.stats().flows_installed, 2u);

  // Removing the deny must flush again: the class is allowed once more.
  ASSERT_TRUE(net.controller.policies().remove(deny_id));
  net.start_flow(1003);
  EXPECT_EQ(net.counters().decision_cache_invalidations, 2u);
  EXPECT_EQ(net.controller.stats().flows_installed, 3u);
}

TEST(ControllerFastPath, HostMoveInvalidatesCachedDecision) {
  FastPathHarness net;
  net.bring_up();
  net.start_flow(1000);
  net.start_flow(1001);
  ASSERT_EQ(net.counters().decision_cache_hits, 1u);

  // Bob re-attaches on sw1 port 6. The cached route (via the LS uplink to
  // sw2) is stale; a replay would strand the flow on the old path.
  net.packet_in(net.ch1, 6, gratuitous_arp(net.bob_mac, net.bob_ip));
  net.sw1.flow_mods.clear();
  net.sw2.flow_mods.clear();
  net.start_flow(1002);
  EXPECT_GE(net.counters().decision_cache_invalidations, 1u);
  EXPECT_EQ(net.counters().decision_cache_hits, 1u);  // recomputed, not replayed
  // Both endpoints now hang off sw1: the new path must not touch sw2.
  EXPECT_GT(net.sw1.adds(), 0u);
  EXPECT_EQ(net.sw2.adds(), 0u);
}

TEST(ControllerFastPath, SeOfflineInvalidatesCachedDecision) {
  FastPathHarness net;
  ctrl::Policy redirect;
  redirect.priority = 50;
  redirect.tp_dst = 80;
  redirect.action = ctrl::PolicyAction::kRedirect;
  redirect.service_chain = {svc::ServiceType::kIntrusionDetection};
  redirect.granularity = ctrl::LbGranularity::kPerUser;  // memoizable chain
  net.controller.policies().add(redirect);
  net.bring_up();
  net.se_online(7, net.ch2, 5, MacAddress::from_uint64(0x5E), Ipv4Address(10, 0, 0, 100));

  net.start_flow(1000);
  net.start_flow(1001);
  ASSERT_EQ(net.counters().decision_cache_hits, 1u);
  ASSERT_EQ(net.controller.stats().flows_redirected, 2u);

  // Let liveness housekeeping expire the silent SE (timeout 6s).
  net.controller.start_housekeeping();
  net.sim.run_until(net.sim.now() + 10 * kSecond);
  ASSERT_FALSE(net.controller.events()
                   .query_type(mon::EventType::kSeOffline, 0, INT64_MAX)
                   .empty());

  // The cached chain through the dead SE must not be replayed: the policy
  // fails open and the flow installs without redirection.
  net.start_flow(1002);
  EXPECT_GE(net.counters().decision_cache_invalidations, 1u);
  EXPECT_EQ(net.counters().decision_cache_hits, 1u);
  EXPECT_EQ(net.controller.stats().flows_redirected, 2u);
  EXPECT_EQ(net.controller.stats().flows_installed, 3u);
}

TEST(ControllerFastPath, SwitchDisconnectInvalidatesCachedDecision) {
  FastPathHarness net;
  net.bring_up();
  net.start_flow(1000);
  net.start_flow(1001);
  ASSERT_EQ(net.counters().decision_cache_hits, 1u);

  // Bob's switch dies. Its hosts are forgotten and the cached path through
  // it is invalid; a replay would install entries toward a dead datapath.
  net.ch2.disconnect();
  net.settle();
  net.sw1.flow_mods.clear();
  net.start_flow(1002);
  EXPECT_EQ(net.counters().decision_cache_hits, 1u);  // no replay
  EXPECT_EQ(net.sw1.adds(), 0u);
  // With the destination unknown again, the setup parks instead.
  EXPECT_EQ(net.controller.pending_setup_count(), 1u);
  EXPECT_EQ(net.controller.stats().flows_installed, 2u);
}

TEST(ControllerFastPath, DuplicatePacketInsCollapseIntoOneSetup) {
  FastPathHarness net;
  net.lldp(net.ch1, 3, 2, 4);
  net.lldp(net.ch2, 4, 1, 3);
  net.packet_in(net.ch1, 0, gratuitous_arp(net.alice_mac, net.alice_ip));

  // Baseline: a fully-known flow, to learn how many adds one setup emits.
  net.packet_in(net.ch2, 0, gratuitous_arp(net.bob_mac, net.bob_ip));
  net.start_flow(2000);
  const std::size_t adds_per_setup = net.sw1.adds() + net.sw2.adds();
  ASSERT_GT(adds_per_setup, 0u);
  net.sw1.flow_mods.clear();
  net.sw2.flow_mods.clear();
  net.sw1.packet_outs = 0;

  // An unknown destination parks the first packet-in; the two retransmits
  // must be absorbed by the pending entry, not recomputed.
  const MacAddress carol_mac = MacAddress::from_uint64(0xCA01);
  const Ipv4Address carol_ip{10, 0, 0, 3};
  auto to_carol = [&](std::uint16_t tp_src) {
    return pkt::PacketBuilder()
        .eth(net.alice_mac, carol_mac)
        .ipv4(net.alice_ip, carol_ip, pkt::IpProto::kUdp)
        .udp(tp_src, 80)
        .finalize();
  };
  for (int i = 0; i < 3; ++i) net.packet_in(net.ch1, 0, to_carol(3000));
  EXPECT_EQ(net.counters().pending_setups_parked, 1u);
  EXPECT_EQ(net.counters().suppressed_packet_ins, 2u);
  EXPECT_EQ(net.controller.pending_setup_count(), 1u);
  EXPECT_EQ(net.sw1.adds() + net.sw2.adds(), 0u);

  // Carol announces herself: exactly one setup runs and the suppressed
  // duplicates' buffered packets are released through the new entries.
  net.packet_in(net.ch2, 0, gratuitous_arp(carol_mac, carol_ip));
  EXPECT_EQ(net.counters().pending_setups_completed, 1u);
  EXPECT_EQ(net.controller.pending_setup_count(), 0u);
  EXPECT_EQ(net.sw1.adds() + net.sw2.adds(), adds_per_setup);
  EXPECT_EQ(net.sw1.packet_outs, 2u);  // one release per suppressed waiter
}

}  // namespace
}  // namespace livesec
