// Unit tests for the packet module: buffer, header codecs, packet
// serialize/parse round-trips, flow keys.
#include <gtest/gtest.h>

#include "packet/buffer.h"
#include "packet/flow_key.h"
#include "packet/packet.h"

namespace livesec::pkt {
namespace {

TEST(Buffer, ScalarsRoundTripBigEndian) {
  BufferWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ull);
  const auto bytes = w.data();
  EXPECT_EQ(bytes[1], 0x12);  // big-endian check
  EXPECT_EQ(bytes[2], 0x34);

  BufferReader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ull);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Buffer, ReaderUnderflowSetsStickyError) {
  BufferWriter w;
  w.u16(7);
  BufferReader r(w.data());
  r.u32();  // underflow: only 2 bytes available
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // still failing
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Buffer, LengthPrefixedStringRoundTrip) {
  BufferWriter w;
  w.length_prefixed_string("hello livesec");
  BufferReader r(w.data());
  EXPECT_EQ(r.length_prefixed_string(), "hello livesec");
  EXPECT_TRUE(r.ok());
}

Packet udp_packet() {
  return PacketBuilder()
      .eth(MacAddress::from_uint64(0x111111111111), MacAddress::from_uint64(0x222222222222))
      .ipv4(Ipv4Address(192, 168, 1, 10), Ipv4Address(192, 168, 1, 20), IpProto::kUdp)
      .udp(5353, 53)
      .payload("dns-query-bytes")
      .build();
}

TEST(Packet, UdpSerializeParseRoundTrip) {
  const Packet original = udp_packet();
  const auto bytes = original.serialize();
  const auto parsed = Packet::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->eth.src, original.eth.src);
  EXPECT_EQ(parsed->eth.dst, original.eth.dst);
  ASSERT_TRUE(parsed->ipv4.has_value());
  EXPECT_EQ(parsed->ipv4->src, original.ipv4->src);
  EXPECT_EQ(parsed->ipv4->dst, original.ipv4->dst);
  ASSERT_TRUE(parsed->udp.has_value());
  EXPECT_EQ(parsed->udp->src_port, 5353);
  EXPECT_EQ(parsed->udp->dst_port, 53);
  ASSERT_TRUE(parsed->payload != nullptr);
  EXPECT_EQ(std::string(parsed->payload->begin(), parsed->payload->end()), "dns-query-bytes");
}

TEST(Packet, TcpSerializeParseRoundTrip) {
  const Packet original = PacketBuilder()
                              .eth(MacAddress::from_uint64(1), MacAddress::from_uint64(2))
                              .ipv4(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                                    IpProto::kTcp)
                              .tcp(40000, 80, TcpFlags::kSyn)
                              .payload("GET / HTTP/1.1\r\n\r\n")
                              .build();
  const auto parsed = Packet::parse(original.serialize());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->tcp.has_value());
  EXPECT_EQ(parsed->tcp->src_port, 40000);
  EXPECT_EQ(parsed->tcp->dst_port, 80);
  EXPECT_EQ(parsed->tcp->flags, TcpFlags::kSyn);
}

TEST(Packet, ArpSerializeParseRoundTrip) {
  const Packet original = PacketBuilder()
                              .eth(MacAddress::from_uint64(5), MacAddress::broadcast())
                              .arp(ArpOp::kRequest, MacAddress::from_uint64(5),
                                   Ipv4Address(10, 0, 0, 5), MacAddress(),
                                   Ipv4Address(10, 0, 0, 9))
                              .build();
  const auto parsed = Packet::parse(original.serialize());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->arp.has_value());
  EXPECT_EQ(parsed->arp->op, ArpOp::kRequest);
  EXPECT_EQ(parsed->arp->sender_ip, Ipv4Address(10, 0, 0, 5));
  EXPECT_EQ(parsed->arp->target_ip, Ipv4Address(10, 0, 0, 9));
}

TEST(Packet, IcmpSerializeParseRoundTrip) {
  const Packet original = PacketBuilder()
                              .eth(MacAddress::from_uint64(1), MacAddress::from_uint64(2))
                              .ipv4(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                                    IpProto::kIcmp)
                              .icmp(IcmpType::kEchoRequest, 77, 3)
                              .payload_size(56)
                              .build();
  const auto parsed = Packet::parse(original.serialize());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->icmp.has_value());
  EXPECT_EQ(parsed->icmp->type, IcmpType::kEchoRequest);
  EXPECT_EQ(parsed->icmp->id, 77);
  EXPECT_EQ(parsed->icmp->seq, 3);
  EXPECT_EQ(parsed->payload_size(), 56u);
}

TEST(Packet, VlanTagRoundTrip) {
  Packet original = udp_packet();
  original.eth.vlan_id = 42;
  const auto parsed = Packet::parse(original.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->eth.vlan_id, 42);
  ASSERT_TRUE(parsed->udp.has_value());
  EXPECT_EQ(parsed->udp->dst_port, 53);
}

TEST(Packet, ParseRejectsTruncatedFrames) {
  const auto bytes = udp_packet().serialize();
  for (std::size_t len : {0u, 5u, 13u, 20u, 30u}) {
    EXPECT_FALSE(Packet::parse(std::span(bytes.data(), len)).has_value()) << "len=" << len;
  }
}

TEST(Packet, WireSizeHasEthernetMinimum) {
  const Packet tiny = PacketBuilder()
                          .eth(MacAddress::from_uint64(1), MacAddress::from_uint64(2))
                          .build();
  EXPECT_EQ(tiny.wire_size(), 60u);
}

TEST(FlowKey, ExtractsNineTuple) {
  const Packet p = udp_packet();
  const FlowKey key = FlowKey::from_packet(p);
  EXPECT_EQ(key.dl_src, p.eth.src);
  EXPECT_EQ(key.dl_dst, p.eth.dst);
  EXPECT_EQ(key.nw_src, Ipv4Address(192, 168, 1, 10));
  EXPECT_EQ(key.nw_proto, static_cast<std::uint8_t>(IpProto::kUdp));
  EXPECT_EQ(key.tp_src, 5353);
  EXPECT_EQ(key.tp_dst, 53);
}

TEST(FlowKey, ReversedSwapsEndpoints) {
  const FlowKey key = FlowKey::from_packet(udp_packet());
  const FlowKey rev = key.reversed();
  EXPECT_EQ(rev.dl_src, key.dl_dst);
  EXPECT_EQ(rev.nw_src, key.nw_dst);
  EXPECT_EQ(rev.tp_src, key.tp_dst);
  EXPECT_EQ(rev.reversed(), key);  // involution
}

TEST(FlowKey, HashDiffersAcrossFlows) {
  FlowKey a = FlowKey::from_packet(udp_packet());
  FlowKey b = a;
  b.tp_src = 5354;
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), FlowKey::from_packet(udp_packet()).hash());
}

TEST(FlowKey, EqualityIsFieldwise) {
  FlowKey a = FlowKey::from_packet(udp_packet());
  FlowKey b = a;
  EXPECT_EQ(a, b);
  b.nw_proto = 6;
  EXPECT_NE(a, b);
}

// Parameterized round-trip sweep over payload sizes: serialize(parse(x))
// must preserve wire size and payload bytes for every size class.
class PacketSizeRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PacketSizeRoundTrip, PreservesPayload) {
  std::vector<std::uint8_t> payload(GetParam());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  const Packet original = PacketBuilder()
                              .eth(MacAddress::from_uint64(3), MacAddress::from_uint64(4))
                              .ipv4(Ipv4Address(10, 1, 0, 1), Ipv4Address(10, 1, 0, 2),
                                    IpProto::kTcp)
                              .tcp(1234, 80)
                              .payload(make_payload(payload))
                              .build();
  const auto parsed = Packet::parse(original.serialize());
  ASSERT_TRUE(parsed.has_value());
  if (GetParam() == 0) {
    EXPECT_EQ(parsed->payload_size(), 0u);
  } else {
    ASSERT_TRUE(parsed->payload != nullptr);
    EXPECT_EQ(*parsed->payload, payload);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PacketSizeRoundTrip,
                         ::testing::Values(0, 1, 7, 64, 512, 1400, 9000));

}  // namespace
}  // namespace livesec::pkt
