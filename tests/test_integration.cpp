// End-to-end integration tests over whole simulated deployments: discovery,
// ARP proxying, two-hop routing, SE redirection, interactive blocking,
// certification enforcement, aging, wireless access, aggregate flow control.
#include <gtest/gtest.h>

#include "monitor/webui.h"
#include "net/network.h"
#include "net/traffic.h"

namespace livesec {
namespace {

using net::Network;

struct TwoSwitchNet {
  Network network;
  sw::EthernetSwitch& backbone;
  sw::OpenFlowSwitch& ovs1;
  sw::OpenFlowSwitch& ovs2;
  net::Host& alice;
  net::Host& bob;

  TwoSwitchNet()
      : backbone(network.add_legacy_switch("backbone")),
        ovs1(network.add_as_switch("ovs1", backbone)),
        ovs2(network.add_as_switch("ovs2", backbone)),
        alice(network.add_host("alice", ovs1)),
        bob(network.add_host("bob", ovs2)) {}
};

TEST(Integration, LldpDiscoversFullMesh) {
  Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& s1 = network.add_as_switch("s1", backbone);
  auto& s2 = network.add_as_switch("s2", backbone);
  auto& s3 = network.add_as_switch("s3", backbone);
  (void)s1;
  (void)s2;
  (void)s3;
  network.start();
  EXPECT_TRUE(network.controller().topology().full_mesh());
  EXPECT_EQ(network.controller().topology().switch_count(), 3u);
  EXPECT_GE(network.controller().stats().lldp_links, 3u);
}

TEST(Integration, HostsAreDiscoveredViaArpAnnounce) {
  TwoSwitchNet net;
  net.network.start();
  const auto* alice_loc = net.network.controller().routing().find(net.alice.mac());
  ASSERT_NE(alice_loc, nullptr);
  EXPECT_EQ(alice_loc->dpid, 1u);
  EXPECT_EQ(alice_loc->ip, net.alice.ip());
  EXPECT_EQ(net.network.controller()
                .events()
                .query_type(mon::EventType::kHostJoin, 0, net.network.sim().now())
                .size(),
            2u);
}

TEST(Integration, ArpIsProxiedNotFlooded) {
  TwoSwitchNet net;
  net.network.start();
  // Alice resolves Bob through the directory proxy.
  pkt::Packet probe = pkt::PacketBuilder()
                          .ipv4(net.alice.ip(), net.bob.ip(), pkt::IpProto::kUdp)
                          .udp(5000, 6000)
                          .payload("hello")
                          .build();
  net.alice.send_ip(std::move(probe));
  net.network.run_for(100 * kMillisecond);
  EXPECT_TRUE(net.alice.arp_cached(net.bob.ip()));
  EXPECT_GE(net.network.controller().stats().arp_proxied, 1u);
}

TEST(Integration, EndToEndDeliveryAcrossSwitches) {
  TwoSwitchNet net;
  net.network.start();
  for (int i = 0; i < 10; ++i) {
    pkt::Packet p = pkt::PacketBuilder()
                        .ipv4(net.alice.ip(), net.bob.ip(), pkt::IpProto::kUdp)
                        .udp(5000, 6000)
                        .payload("data packet payload")
                        .build();
    net.alice.send_ip(std::move(p));
  }
  net.network.run_for(200 * kMillisecond);
  EXPECT_EQ(net.bob.rx_ip_packets(), 10u);
  EXPECT_EQ(net.network.controller().stats().flows_installed, 1u);
  // Follow-up packets used the data path: exactly one IPv4 packet-in for the
  // flow (plus ARP/daemon ones which are not IPv4-flow setups).
  EXPECT_EQ(net.network.controller().active_flows(), 1u);
}

TEST(Integration, ReplyDirectionIsPreinstalled) {
  TwoSwitchNet net;
  net.network.start();
  pkt::Packet p = pkt::PacketBuilder()
                      .ipv4(net.alice.ip(), net.bob.ip(), pkt::IpProto::kUdp)
                      .udp(5000, 6000)
                      .payload("ping-ish")
                      .build();
  net.alice.send_ip(std::move(p));
  net.network.run_for(100 * kMillisecond);
  const auto flows_before = net.network.controller().stats().flows_installed;

  // Bob replies on the reverse 5-tuple: no new flow setup should happen.
  pkt::Packet reply = pkt::PacketBuilder()
                          .ipv4(net.bob.ip(), net.alice.ip(), pkt::IpProto::kUdp)
                          .udp(6000, 5000)
                          .payload("reply")
                          .build();
  net.bob.send_ip(std::move(reply));
  net.network.run_for(100 * kMillisecond);
  EXPECT_EQ(net.alice.rx_ip_packets(), 1u);
  EXPECT_EQ(net.network.controller().stats().flows_installed, flows_before);
}

TEST(Integration, PingWorksThroughLiveSec) {
  TwoSwitchNet net;
  net.network.start();
  bool done = false;
  net.alice.ping(net.bob.ip(), 5, 10 * kMillisecond,
                 [&](const net::Host::PingStats& stats) {
                   done = true;
                   EXPECT_EQ(stats.received, 5u);
                 });
  net.network.run_for(2 * kSecond);
  EXPECT_TRUE(done);
  EXPECT_EQ(net.alice.ping_stats().received, 5u);
  // First ping pays the controller round trip; later pings ride the
  // installed entries and must be faster.
  const auto& results = net.alice.ping_stats().results;
  ASSERT_EQ(results.size(), 5u);
  EXPECT_GT(results[0].rtt, results[4].rtt);
}

TEST(Integration, RedirectPolicySteersThroughIds) {
  TwoSwitchNet net;
  auto& ids = net.network.add_service_element(svc::ServiceType::kIntrusionDetection, net.ovs1);

  ctrl::Policy policy;
  policy.name = "web-via-ids";
  policy.tp_dst = 80;
  policy.nw_proto = 6;
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kIntrusionDetection};
  net.network.controller().policies().add(policy);

  net::HttpServerApp server(net.bob, {.port = 80, .response_size = 4096});
  net.network.start();

  net::HttpClientApp client(net.alice, {.server = net.bob.ip(), .sessions = 2,
                                        .concurrency = 1, .expected_response = 4096});
  client.start();
  net.network.run_for(2 * kSecond);

  EXPECT_EQ(client.responses_completed(), 2u);
  EXPECT_GT(ids.processed_packets(), 0u);  // traffic really traversed the SE
  EXPECT_EQ(net.network.controller().stats().flows_redirected, 2u);
}

TEST(Integration, AttackIsDetectedAndBlockedAtIngress) {
  TwoSwitchNet net;
  net.network.add_service_element(svc::ServiceType::kIntrusionDetection, net.ovs2);

  ctrl::Policy policy;
  policy.name = "web-via-ids";
  policy.tp_dst = 80;
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kIntrusionDetection};
  net.network.controller().policies().add(policy);

  net::HttpServerApp server(net.bob, {.port = 80});
  net.network.start();

  net::AttackApp attacker(net.alice, {.server = net.bob.ip(), .packets = 30,
                                      .interval = 20 * kMillisecond});
  attacker.start();
  net.network.run_for(2 * kSecond);

  const auto& events = net.network.controller().events();
  EXPECT_GE(events.query_type(mon::EventType::kAttackDetected, 0, INT64_MAX).size(), 1u);
  EXPECT_GE(events.query_type(mon::EventType::kFlowBlocked, 0, INT64_MAX).size(), 1u);
  EXPECT_EQ(net.network.controller().stats().flows_blocked_by_event, 1u);

  // The server must have stopped receiving attack packets after the block:
  // far fewer than the 30 sent.
  EXPECT_LT(server.requests_served(), 10u);
  EXPECT_EQ(attacker.packets_sent(), 30u);
}

TEST(Integration, BlockedFlowStaysBlockedOnRetry) {
  TwoSwitchNet net;
  net.network.add_service_element(svc::ServiceType::kIntrusionDetection, net.ovs2);
  ctrl::Policy policy;
  policy.tp_dst = 80;
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kIntrusionDetection};
  net.network.controller().policies().add(policy);
  net::HttpServerApp server(net.bob, {.port = 80});
  net.network.start();

  net::AttackApp first(net.alice, {.server = net.bob.ip(), .packets = 5});
  first.start();
  net.network.run_for(1 * kSecond);
  const std::size_t served = server.requests_served();

  // Flow entries idle out, then the same flow returns: the controller's
  // blocked set must drop it at setup time without re-steering.
  net.network.run_for(35 * kSecond);
  net::AttackApp second(net.alice, {.server = net.bob.ip(), .packets = 5});
  second.start();
  net.network.run_for(1 * kSecond);
  EXPECT_EQ(server.requests_served(), served);
}

TEST(Integration, DenyPolicyDropsAtIngress) {
  TwoSwitchNet net;
  ctrl::Policy policy;
  policy.name = "block-alice";
  policy.src_mac = net.alice.mac();
  policy.action = ctrl::PolicyAction::kDeny;
  net.network.controller().policies().add(policy);
  net.network.start();

  pkt::Packet p = pkt::PacketBuilder()
                      .ipv4(net.alice.ip(), net.bob.ip(), pkt::IpProto::kUdp)
                      .udp(1, 2)
                      .payload("x")
                      .build();
  net.alice.send_ip(std::move(p));
  net.network.run_for(200 * kMillisecond);
  EXPECT_EQ(net.bob.rx_ip_packets(), 0u);
  EXPECT_EQ(net.network.controller().stats().flows_denied, 1u);
  EXPECT_EQ(net.network.controller()
                .events()
                .query_type(mon::EventType::kPolicyDenied, 0, INT64_MAX)
                .size(),
            1u);
}

TEST(Integration, UncertifiedSeIsRejectedAndDropped) {
  TwoSwitchNet net;
  svc::ServiceElement::Config rogue;
  rogue.cert_token = 0xBADBADBADull;  // not issued by the controller
  net.network.add_service_element(svc::ServiceType::kIntrusionDetection, net.ovs1, rogue);
  net.network.start();

  EXPECT_EQ(net.network.controller().services().size(), 0u);  // never registered
  EXPECT_GE(net.network.controller().stats().cert_rejections, 1u);
  EXPECT_GE(net.network.controller()
                .events()
                .query_type(mon::EventType::kCertificationRejected, 0, INT64_MAX)
                .size(),
            1u);
}

TEST(Integration, SilentSeExpiresAndLoadBalancerMovesOn) {
  TwoSwitchNet net;
  auto& se1 = net.network.add_service_element(svc::ServiceType::kIntrusionDetection, net.ovs1);
  auto& se2 = net.network.add_service_element(svc::ServiceType::kIntrusionDetection, net.ovs2);
  (void)se2;
  net.network.start();
  EXPECT_EQ(net.network.controller().services().size(), 2u);

  se1.stop();  // silent: heartbeats cease
  net.network.run_for(10 * kSecond);
  EXPECT_EQ(net.network.controller().services().size(), 1u);
  EXPECT_GE(net.network.controller()
                .events()
                .query_type(mon::EventType::kSeOffline, 0, INT64_MAX)
                .size(),
            1u);
}

TEST(Integration, IdleHostAgesOutAndRaisesLeave) {
  ctrl::Controller::Config config;
  config.host_timeout = 3 * kSecond;
  Network network(config);
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs = network.add_as_switch("ovs", backbone);
  auto& host = network.add_host("h", ovs);
  (void)host;
  network.start();
  EXPECT_EQ(network.controller().routing().size(), 1u);

  network.run_for(10 * kSecond);  // no traffic: ARP timeout fires
  EXPECT_EQ(network.controller().routing().size(), 0u);
  EXPECT_GE(network.controller()
                .events()
                .query_type(mon::EventType::kHostLeave, 0, INT64_MAX)
                .size(),
            1u);
}

TEST(Integration, WirelessUserTrafficFlowsThroughAp) {
  Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs = network.add_as_switch("ovs", backbone);
  auto& ap = network.add_wifi_ap("ap", backbone);
  auto& sta = network.add_wifi_host("sta", ap);
  auto& server = network.add_host("server", ovs);
  network.start();

  for (int i = 0; i < 20; ++i) {
    pkt::Packet p = pkt::PacketBuilder()
                        .ipv4(sta.ip(), server.ip(), pkt::IpProto::kUdp)
                        .udp(1000, 2000)
                        .payload_size(1000)
                        .build();
    sta.send_ip(std::move(p));
  }
  network.run_for(500 * kMillisecond);
  EXPECT_EQ(server.rx_ip_packets(), 20u);
  // The AP appears in the topology as a Wi-Fi node.
  const auto* info = network.controller().topology().switch_info(2);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->kind, topo::NodeKind::kWifiAp);
}

TEST(Integration, ProtocolIdentificationFeedsServiceAwareMonitoring) {
  TwoSwitchNet net;
  net.network.add_service_element(svc::ServiceType::kProtocolIdentification, net.ovs2);
  ctrl::Policy policy;
  policy.nw_proto = 6;
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kProtocolIdentification};
  net.network.controller().policies().add(policy);
  net::HttpServerApp server(net.bob, {.port = 80, .response_size = 2048});
  net.network.start();

  net::HttpClientApp client(net.alice, {.server = net.bob.ip(), .sessions = 1,
                                        .concurrency = 1, .expected_response = 2048});
  client.start();
  net.network.run_for(1 * kSecond);

  EXPECT_EQ(net.network.controller().service_monitor().dominant_app(net.alice.mac()),
            svc::l7::AppProtocol::kHttp);
  EXPECT_GE(net.network.controller()
                .events()
                .query_type(mon::EventType::kProtocolIdentified, 0, INT64_MAX)
                .size(),
            1u);
}

TEST(Integration, AggregateFlowControlBlocksExcessFlows) {
  TwoSwitchNet net;
  net.network.add_service_element(svc::ServiceType::kProtocolIdentification, net.ovs2);
  ctrl::Policy policy;
  policy.nw_proto = 6;
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kProtocolIdentification};
  net.network.controller().policies().add(policy);
  net.network.controller().flow_control().set_limit(svc::l7::AppProtocol::kBitTorrent, 2);
  net.network.start();

  // Alice opens BitTorrent flows to several peers; beyond 2 concurrently
  // active ones the controller slams the door.
  net::BitTorrentApp bt(net.alice,
                        {.peers = {net.bob.ip(), net.bob.ip(), net.bob.ip(), net.bob.ip()},
                         .rate_bps = 5e6,
                         .duration = 2 * kSecond});
  // Distinct src ports per peer index make these distinct flows even though
  // the peer IP repeats.
  bt.start();
  net.network.run_for(3 * kSecond);

  EXPECT_GE(net.network.controller()
                .events()
                .query_type(mon::EventType::kAggregateLimitHit, 0, INT64_MAX)
                .size(),
            1u);
}

TEST(Integration, WebUiSnapshotsRenderState) {
  TwoSwitchNet net;
  net.network.add_service_element(svc::ServiceType::kIntrusionDetection, net.ovs1);
  net.network.start();
  mon::WebUi ui(net.network.controller());
  const std::string json = ui.snapshot_json(0, net.network.sim().now());
  EXPECT_NE(json.find("\"switches\""), std::string::npos);
  EXPECT_NE(json.find("\"full_mesh\":true"), std::string::npos);
  EXPECT_NE(json.find("intrusion_detection"), std::string::npos);

  const std::string text = ui.snapshot_text(0, net.network.sim().now());
  EXPECT_NE(text.find("full-mesh AS layer: yes"), std::string::npos);

  const std::string replay = ui.replay_text(0, net.network.sim().now());
  EXPECT_NE(replay.find("switch_join"), std::string::npos);
  EXPECT_NE(replay.find("se_online"), std::string::npos);
}

TEST(Integration, FlowEndEventAfterIdleTimeout) {
  TwoSwitchNet net;
  net.network.start();
  pkt::Packet p = pkt::PacketBuilder()
                      .ipv4(net.alice.ip(), net.bob.ip(), pkt::IpProto::kUdp)
                      .udp(5000, 6000)
                      .payload("one-shot")
                      .build();
  net.alice.send_ip(std::move(p));
  net.network.run_for(100 * kMillisecond);
  EXPECT_EQ(net.network.controller().active_flows(), 1u);

  // Idle past the flow timeout; keep a trickle of other traffic so the
  // switch's lazy expiry runs.
  net.network.run_for(15 * kSecond);
  pkt::Packet other = pkt::PacketBuilder()
                          .ipv4(net.alice.ip(), net.bob.ip(), pkt::IpProto::kUdp)
                          .udp(5001, 6001)
                          .payload("tick")
                          .build();
  net.alice.send_ip(std::move(other));
  net.network.run_for(1 * kSecond);

  EXPECT_GE(net.network.controller()
                .events()
                .query_type(mon::EventType::kFlowEnd, 0, INT64_MAX)
                .size(),
            1u);
}

TEST(Integration, FlowRemovalFeedsPerUserTrafficTotals) {
  TwoSwitchNet net;
  net.network.start();
  net::UdpCbrApp app(net.alice, {.dst = net.bob.ip(), .rate_bps = 5e6,
                                 .duration = 500 * kMillisecond});
  app.start();
  net.network.run_for(1 * kSecond);

  // Let the entry idle out; a later miss triggers the lazy expiry.
  net.network.run_for(15 * kSecond);
  pkt::Packet nudge = pkt::PacketBuilder()
                          .ipv4(net.alice.ip(), net.bob.ip(), pkt::IpProto::kUdp)
                          .udp(777, 888)
                          .payload("nudge")
                          .build();
  net.alice.send_ip(std::move(nudge));
  net.network.run_for(1 * kSecond);

  const auto* totals = net.network.controller().service_monitor().traffic(net.alice.mac());
  ASSERT_NE(totals, nullptr);
  EXPECT_GT(totals->bytes, 100000u);  // the CBR flow's bytes were attributed
  const auto talkers = net.network.controller().service_monitor().top_talkers(5);
  ASSERT_FALSE(talkers.empty());
  EXPECT_EQ(talkers[0].first, net.alice.mac());
}

TEST(Integration, ServiceChainOfTwoServices) {
  TwoSwitchNet net;
  auto& ids = net.network.add_service_element(svc::ServiceType::kIntrusionDetection, net.ovs1);
  auto& l7 = net.network.add_service_element(svc::ServiceType::kProtocolIdentification,
                                             net.ovs2);
  ctrl::Policy policy;
  policy.tp_dst = 80;
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kIntrusionDetection,
                          svc::ServiceType::kProtocolIdentification};
  net.network.controller().policies().add(policy);
  net::HttpServerApp server(net.bob, {.port = 80, .response_size = 2048});
  net.network.start();

  net::HttpClientApp client(net.alice, {.server = net.bob.ip(), .sessions = 1,
                                        .concurrency = 1, .expected_response = 2048});
  client.start();
  net.network.run_for(2 * kSecond);

  EXPECT_EQ(client.responses_completed(), 1u);
  EXPECT_GT(ids.processed_packets(), 0u);
  EXPECT_GT(l7.processed_packets(), 0u);
}

}  // namespace
}  // namespace livesec
