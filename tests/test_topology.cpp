// Unit tests for topology discovery: LLDP codec, link table, topology graph.
#include <gtest/gtest.h>

#include "topology/lldp.h"
#include "topology/link_table.h"
#include "topology/topology_graph.h"

namespace livesec::topo {
namespace {

TEST(Lldp, RoundTripsChassisAndPort) {
  LldpInfo info;
  info.chassis_id = 0xDEADBEEF12345678ull;
  info.port_id = 42;
  const pkt::Packet packet = info.to_packet();
  EXPECT_EQ(packet.eth.ether_type, static_cast<std::uint16_t>(pkt::EtherType::kLldp));
  EXPECT_EQ(packet.eth.dst, LldpInfo::multicast_mac());

  const auto decoded = LldpInfo::from_packet(packet);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->chassis_id, info.chassis_id);
  EXPECT_EQ(decoded->port_id, info.port_id);
}

TEST(Lldp, SurvivesWireSerialization) {
  LldpInfo info{7, 3};
  const auto bytes = info.to_packet().serialize();
  const auto parsed = pkt::Packet::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  const auto decoded = LldpInfo::from_packet(*parsed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->chassis_id, 7u);
  EXPECT_EQ(decoded->port_id, 3u);
}

TEST(Lldp, RejectsNonLldpPackets) {
  const pkt::Packet p = pkt::PacketBuilder()
                            .eth(MacAddress::from_uint64(1), MacAddress::from_uint64(2))
                            .ipv4(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                                  pkt::IpProto::kUdp)
                            .udp(1, 2)
                            .build();
  EXPECT_FALSE(LldpInfo::from_packet(p).has_value());
}

TEST(Lldp, RejectsTruncatedTlvs) {
  LldpInfo info{7, 3};
  pkt::Packet packet = info.to_packet();
  std::vector<std::uint8_t> bytes(packet.payload->begin(), packet.payload->end());
  bytes.resize(bytes.size() / 2);
  packet.payload = pkt::make_payload(std::move(bytes));
  EXPECT_FALSE(LldpInfo::from_packet(packet).has_value());
}

TEST(LinkTable, AddIsBidirectional) {
  LinkTable table;
  table.add(AsLink{1, 10, 2, 20});
  const auto forward = table.find(1, 2);
  ASSERT_TRUE(forward.has_value());
  EXPECT_EQ(forward->src_port, 10u);
  EXPECT_EQ(forward->dst_port, 20u);
  const auto backward = table.find(2, 1);
  ASSERT_TRUE(backward.has_value());
  EXPECT_EQ(backward->src_port, 20u);
  EXPECT_EQ(backward->dst_port, 10u);
}

TEST(LinkTable, FullMeshDetection) {
  LinkTable table;
  const std::vector<DatapathId> switches{1, 2, 3};
  EXPECT_FALSE(table.is_full_mesh(switches));
  table.add(AsLink{1, 0, 2, 0});
  table.add(AsLink{1, 0, 3, 0});
  EXPECT_FALSE(table.is_full_mesh(switches));
  table.add(AsLink{2, 0, 3, 0});
  EXPECT_TRUE(table.is_full_mesh(switches));
}

TEST(LinkTable, RemoveSwitchDropsItsLinks) {
  LinkTable table;
  table.add(AsLink{1, 0, 2, 0});
  table.add(AsLink{2, 1, 3, 0});
  table.remove_switch(2);
  EXPECT_FALSE(table.find(1, 2).has_value());
  EXPECT_FALSE(table.find(2, 3).has_value());
  EXPECT_EQ(table.size(), 0u);
}

TEST(TopologyGraph, TracksSwitchesAndNodes) {
  TopologyGraph graph;
  graph.add_switch({1, "ovs1", NodeKind::kAsSwitch, 0});
  graph.add_switch({2, "ap1", NodeKind::kWifiAp, 0});
  EXPECT_EQ(graph.switch_count(), 2u);
  EXPECT_TRUE(graph.has_switch(1));

  TopologyGraph::AttachedNode host;
  host.name = "10.0.0.5";
  host.kind = NodeKind::kHost;
  host.dpid = 1;
  host.port = 3;
  graph.upsert_node("mac1", host);
  EXPECT_EQ(graph.node_count(), 1u);
  ASSERT_NE(graph.node("mac1"), nullptr);
  EXPECT_EQ(graph.node("mac1")->dpid, 1u);
}

TEST(TopologyGraph, RemoveSwitchCascadesToNodes) {
  TopologyGraph graph;
  graph.add_switch({1, "ovs1", NodeKind::kAsSwitch, 0});
  TopologyGraph::AttachedNode host;
  host.dpid = 1;
  graph.upsert_node("h", host);
  graph.links().add(AsLink{1, 0, 2, 0});

  graph.remove_switch(1);
  EXPECT_FALSE(graph.has_switch(1));
  EXPECT_EQ(graph.node_count(), 0u);
  EXPECT_EQ(graph.links().size(), 0u);
}

TEST(TopologyGraph, DotExportContainsAllElements) {
  TopologyGraph graph;
  graph.add_switch({1, "ovs1", NodeKind::kAsSwitch, 0});
  graph.add_switch({2, "ovs2", NodeKind::kAsSwitch, 0});
  graph.links().add(AsLink{1, 0, 2, 0});
  TopologyGraph::AttachedNode host;
  host.name = "h1";
  host.dpid = 1;
  graph.upsert_node("h1", host);

  const std::string dot = graph.to_dot();
  EXPECT_NE(dot.find("sw1"), std::string::npos);
  EXPECT_NE(dot.find("sw2"), std::string::npos);
  EXPECT_NE(dot.find("sw1 -- sw2"), std::string::npos);
  EXPECT_NE(dot.find("\"h1\""), std::string::npos);
}

}  // namespace
}  // namespace livesec::topo
