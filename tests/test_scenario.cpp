// Deterministic campus scenario generator: same seed -> same campus and the
// same event stream, with the advertised structure (index-derived hosts,
// time-ordered events, diurnal intensity, flash-crowd concentration).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "scenario/campus.h"

namespace livesec::scenario {
namespace {

TEST(CampusGenerator, HostRecordsAreIndexDerivedAndDisjoint) {
  CampusConfig config;
  config.hosts = 100'000;
  config.hosts_per_switch = 256;
  CampusGenerator campus(config);

  EXPECT_EQ(campus.switch_count(), (config.hosts + 255) / 256);
  EXPECT_EQ(campus.ls_uplink_port(), 257u);

  const CampusHost first = campus.host(0);
  EXPECT_EQ(first.mac.to_uint64(), 0x02'0000'0000'00ull);
  EXPECT_EQ(first.ip.value(), (10u << 24) | 1u);
  EXPECT_EQ(first.dpid, 1u);
  EXPECT_EQ(first.port, 1u);

  const CampusHost last = campus.host(config.hosts - 1);
  EXPECT_EQ(last.dpid, campus.switch_count());
  EXPECT_LE(last.port, config.hosts_per_switch);

  // Index-derived addressing: every host is unique without any lookup table.
  std::set<std::uint64_t> macs;
  std::set<std::uint32_t> ips;
  for (std::uint32_t i = 0; i < config.hosts; i += 997) {
    const CampusHost h = campus.host(i);
    EXPECT_TRUE(macs.insert(h.mac.to_uint64()).second);
    EXPECT_TRUE(ips.insert(h.ip.value()).second);
    // Locally-administered unicast MACs, never colliding with real vendors.
    EXPECT_EQ(h.mac.to_uint64() >> 40, 0x02u);
    EXPECT_GE(h.dpid, 1u);
    EXPECT_LE(h.dpid, campus.switch_count());
    EXPECT_GE(h.port, 1u);
    EXPECT_LE(h.port, config.hosts_per_switch);
  }
}

TEST(CampusGenerator, EventStreamIsDeterministicAndTimeOrdered) {
  CampusConfig config;
  config.hosts = 5'000;
  CampusGenerator a(config);
  CampusGenerator b(config);

  SimTime last = 0;
  for (int i = 0; i < 5'000; ++i) {
    const auto ea = a.next_event();
    const auto eb = b.next_event();
    EXPECT_EQ(ea.kind, eb.kind);
    EXPECT_EQ(ea.at, eb.at);
    EXPECT_EQ(ea.host, eb.host);
    EXPECT_EQ(ea.peer, eb.peer);

    EXPECT_GE(ea.at, last);
    last = ea.at;
    EXPECT_LT(ea.host, config.hosts);
    EXPECT_LT(ea.peer, config.hosts);
    EXPECT_NE(ea.host, ea.peer);
  }

  // A different seed produces a different stream.
  config.seed = 0xD1FF;
  CampusGenerator c(config);
  CampusGenerator a2(CampusConfig{.hosts = 5'000});
  int diverged = 0;
  for (int i = 0; i < 100; ++i) {
    if (a2.next_event().host != c.next_event().host) ++diverged;
  }
  EXPECT_GT(diverged, 50);
}

TEST(CampusGenerator, DiurnalIntensitySwingsBetweenFloorAndPeak) {
  CampusConfig config;
  CampusGenerator campus(config);

  EXPECT_NEAR(campus.diurnal_intensity(0), config.night_floor, 1e-9);
  EXPECT_NEAR(campus.diurnal_intensity(config.day_length / 2), 1.0, 1e-9);
  EXPECT_NEAR(campus.diurnal_intensity(config.day_length), config.night_floor, 1e-9);
  for (SimTime t = 0; t < 2 * config.day_length; t += config.day_length / 13) {
    const double intensity = campus.diurnal_intensity(t);
    EXPECT_GE(intensity, config.night_floor - 1e-9);
    EXPECT_LE(intensity, 1.0 + 1e-9);
  }
}

TEST(CampusGenerator, EventMixTracksConfiguredFractions) {
  CampusConfig config;
  config.hosts = 2'000;
  config.roam_fraction = 0.10;
  config.relese_fraction = 0.05;
  CampusGenerator campus(config);

  int flows = 0;
  int roams = 0;
  int releases = 0;
  constexpr int kDraws = 20'000;
  for (int i = 0; i < kDraws; ++i) {
    switch (campus.next_event().kind) {
      case CampusGenerator::EventKind::kFlow: ++flows; break;
      case CampusGenerator::EventKind::kRoam: ++roams; break;
      case CampusGenerator::EventKind::kReLease: ++releases; break;
    }
  }
  EXPECT_NEAR(static_cast<double>(roams) / kDraws, 0.10, 0.02);
  EXPECT_NEAR(static_cast<double>(releases) / kDraws, 0.05, 0.015);
  EXPECT_NEAR(static_cast<double>(flows) / kDraws, 0.85, 0.03);
}

TEST(CampusGenerator, FlashCrowdsConcentrateFlowTargets) {
  CampusConfig config;
  config.hosts = 500;
  config.flows_per_host_per_sec = 0.5;
  config.day_length = 120 * kSecond;  // fast cycles so windows fall inside the run
  config.flash_interval = 60 * kSecond;
  config.flash_duration = 20 * kSecond;
  config.flash_targets = 4;
  config.flash_bias = 0.8;
  CampusGenerator campus(config);

  EXPECT_FALSE(campus.in_flash_crowd(0));
  EXPECT_TRUE(campus.in_flash_crowd(config.flash_interval / 2));
  EXPECT_FALSE(campus.in_flash_crowd(config.flash_interval - kSecond));

  std::map<std::uint32_t, int> hot_peers;
  std::map<std::uint32_t, int> calm_peers;
  int hot = 0;
  int calm = 0;
  while (hot < 4'000 || calm < 4'000) {
    const auto ev = campus.next_event();
    if (ev.kind != CampusGenerator::EventKind::kFlow) continue;
    if (campus.in_flash_crowd(ev.at)) {
      ++hot_peers[ev.peer];
      ++hot;
    } else {
      ++calm_peers[ev.peer];
      ++calm;
    }
  }

  // Top-4 targets soak up most in-window flows, but near-none outside.
  const auto top4_share = [](const std::map<std::uint32_t, int>& peers, int total) {
    std::vector<int> counts;
    for (const auto& [peer, count] : peers) counts.push_back(count);
    std::sort(counts.rbegin(), counts.rend());
    int top = 0;
    for (std::size_t i = 0; i < counts.size() && i < 4; ++i) top += counts[i];
    return static_cast<double>(top) / total;
  };
  EXPECT_GT(top4_share(hot_peers, hot), 0.5);
  EXPECT_LT(top4_share(calm_peers, calm), 0.1);
}

}  // namespace
}  // namespace livesec::scenario
