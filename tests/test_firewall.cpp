// Tests for the stateful firewall engine and firewall service elements.
#include <gtest/gtest.h>

#include "net/network.h"
#include "net/traffic.h"
#include "services/firewall/firewall_engine.h"

namespace livesec::svc::fw {
namespace {

pkt::Packet packet_of(Ipv4Address src, Ipv4Address dst, std::uint16_t sport,
                      std::uint16_t dport, pkt::IpProto proto = pkt::IpProto::kTcp) {
  pkt::PacketBuilder b;
  b.eth(MacAddress::from_uint64(1), MacAddress::from_uint64(2)).ipv4(src, dst, proto);
  if (proto == pkt::IpProto::kTcp) {
    b.tcp(sport, dport);
  } else {
    b.udp(sport, dport);
  }
  b.payload("x");
  return b.build();
}

TEST(FirewallEngine, FirstMatchWins) {
  std::vector<std::string> errors;
  auto rules = parse_fw_rules(
      "1 allow-web allow proto=tcp dport=80\n"
      "2 deny-all-tcp deny proto=tcp\n",
      errors);
  ASSERT_TRUE(errors.empty());
  FirewallEngine engine(std::move(rules), FwAction::kAllow);

  const auto web = engine.filter(packet_of(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                                           1000, 80));
  EXPECT_EQ(web.action, FwAction::kAllow);
  EXPECT_EQ(web.rule_id, 1u);

  const auto ssh = engine.filter(packet_of(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                                           1000, 22));
  EXPECT_EQ(ssh.action, FwAction::kDeny);
  EXPECT_EQ(ssh.rule_id, 2u);
}

TEST(FirewallEngine, DefaultPolicyApplies) {
  FirewallEngine deny_by_default({}, FwAction::kDeny);
  EXPECT_EQ(deny_by_default
                .filter(packet_of(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 1, 2))
                .action,
            FwAction::kDeny);
  FirewallEngine allow_by_default({}, FwAction::kAllow);
  EXPECT_EQ(allow_by_default
                .filter(packet_of(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 1, 2))
                .action,
            FwAction::kAllow);
}

TEST(FirewallEngine, StatefulReplyIsAllowedDespiteRules) {
  std::vector<std::string> errors;
  // Outbound web allowed; everything else denied — the classic edge policy.
  auto rules = parse_fw_rules("1 out-web allow src=10.0.1.0/24 proto=tcp dport=80\n", errors);
  FirewallEngine engine(std::move(rules), FwAction::kDeny, /*stateful=*/true);

  const Ipv4Address client(10, 0, 1, 5);
  const Ipv4Address server(93, 184, 216, 34);
  // Outbound request establishes the session.
  EXPECT_EQ(engine.filter(packet_of(client, server, 40000, 80)).action, FwAction::kAllow);
  EXPECT_EQ(engine.established_sessions(), 1u);
  // The reply (server:80 -> client:40000) matches no allow rule, but rides
  // the established session.
  const auto reply = engine.filter(packet_of(server, client, 80, 40000));
  EXPECT_EQ(reply.action, FwAction::kAllow);
  EXPECT_TRUE(reply.by_state);
  // An unsolicited inbound connection is still denied.
  EXPECT_EQ(engine.filter(packet_of(server, client, 80, 41000)).action, FwAction::kDeny);
}

TEST(FirewallEngine, StatelessModeDeniesReplies) {
  std::vector<std::string> errors;
  auto rules = parse_fw_rules("1 out-web allow proto=tcp dport=80\n", errors);
  FirewallEngine engine(std::move(rules), FwAction::kDeny, /*stateful=*/false);
  const Ipv4Address client(10, 0, 1, 5);
  const Ipv4Address server(93, 184, 216, 34);
  EXPECT_EQ(engine.filter(packet_of(client, server, 40000, 80)).action, FwAction::kAllow);
  EXPECT_EQ(engine.filter(packet_of(server, client, 80, 40000)).action, FwAction::kDeny);
}

TEST(FirewallEngine, ForgetSessionClosesTheReplyHole) {
  std::vector<std::string> errors;
  auto rules = parse_fw_rules("1 out allow proto=tcp dport=80\n", errors);
  FirewallEngine engine(std::move(rules), FwAction::kDeny);
  const pkt::Packet request =
      packet_of(Ipv4Address(10, 0, 1, 5), Ipv4Address(10, 9, 9, 9), 40000, 80);
  engine.filter(request);
  engine.forget_session(pkt::FlowKey::from_packet(request));
  EXPECT_EQ(engine.filter(packet_of(Ipv4Address(10, 9, 9, 9), Ipv4Address(10, 0, 1, 5), 80,
                                    40000))
                .action,
            FwAction::kDeny);
}

TEST(FwRuleParser, ParsesAndReportsErrors) {
  std::vector<std::string> errors;
  const auto rules = parse_fw_rules(
      "# edge policy\n"
      "1 ok allow src=10.0.0.0/16 dst=10.1.0.0/24 proto=udp dport=53\n"
      "2 bad explode\n"
      "3 badcidr deny src=10.0.0.0/40\n",
      errors);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(errors.size(), 2u);
  EXPECT_EQ(rules[0].src_prefix, 16);
  EXPECT_EQ(rules[0].proto, 17);
  EXPECT_EQ(rules[0].dst_port, 53);
}

TEST(FirewallSe, DeniedTrafficIsDroppedAndIngressBlocked) {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs1 = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);

  std::vector<std::string> errors;
  svc::ServiceElement::Config config;
  config.firewall_rules = parse_fw_rules("1 no-telnetish deny proto=udp dport=2323\n", errors);
  auto& fw_se = network.add_service_element(svc::ServiceType::kFirewall, ovs2, config);

  ctrl::Policy policy;
  policy.nw_proto = static_cast<std::uint8_t>(pkt::IpProto::kUdp);
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kFirewall};
  network.controller().policies().add(policy);

  auto& alice = network.add_host("alice", ovs1);
  auto& bob = network.add_host("bob", ovs2);
  network.start();

  // Allowed UDP flows pass through the firewall SE.
  net::UdpCbrApp good(alice, {.dst = bob.ip(), .dst_port = 9000, .rate_bps = 2e6,
                              .duration = 500 * kMillisecond});
  good.start();
  network.run_for(1 * kSecond);
  EXPECT_GT(bob.rx_ip_packets(), 0u);
  const auto good_rx = bob.rx_ip_packets();

  // Denied flow: the SE drops it, reports it, and the controller blocks it
  // at the ingress switch.
  net::UdpCbrApp bad(alice, {.dst = bob.ip(), .dst_port = 2323, .src_port = 41000,
                             .rate_bps = 2e6, .duration = 1 * kSecond});
  bad.start();
  network.run_for(2 * kSecond);
  EXPECT_EQ(bob.rx_ip_packets(), good_rx);  // nothing denied got through
  EXPECT_GT(fw_se.firewall().denied(), 0u);
  EXPECT_GE(network.controller()
                .events()
                .query_type(mon::EventType::kPolicyDenied, 0, INT64_MAX)
                .size(),
            1u);
  // Blocked at ingress: the SE stopped seeing the denied flow's packets
  // long before the sender stopped.
  EXPECT_LT(fw_se.firewall().denied(), 20u);
}

TEST(FirewallSe, ChainsWithIdsAndBothVerdictsApply) {
  // Firewall first (drops the denied port), then IDS (catches attacks in the
  // allowed traffic) — a two-stage security chain over off-path SEs.
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs1 = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);

  std::vector<std::string> errors;
  svc::ServiceElement::Config fw_config;
  fw_config.firewall_rules = parse_fw_rules("1 no-8081 deny proto=tcp dport=8081\n", errors);
  auto& fw_se = network.add_service_element(svc::ServiceType::kFirewall, ovs1, fw_config);
  auto& ids_se = network.add_service_element(svc::ServiceType::kIntrusionDetection, ovs2);

  ctrl::Policy policy;
  policy.nw_proto = static_cast<std::uint8_t>(pkt::IpProto::kTcp);
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kFirewall,
                          svc::ServiceType::kIntrusionDetection};
  network.controller().policies().add(policy);

  auto& alice = network.add_host("alice", ovs1);
  auto& bob = network.add_host("bob", ovs2);
  net::HttpServerApp server(bob, {.port = 80});
  network.start();

  // Attack on the allowed port: passes the firewall, caught by the IDS.
  net::AttackApp attacker(alice, {.server = bob.ip(), .packets = 5});
  attacker.start();
  // Traffic to the denied port: dropped by the firewall before the IDS.
  pkt::Packet denied = pkt::PacketBuilder()
                           .ipv4(alice.ip(), bob.ip(), pkt::IpProto::kTcp)
                           .tcp(45000, 8081, pkt::TcpFlags::kPsh)
                           .payload("should not pass")
                           .build();
  alice.send_ip(std::move(denied));
  network.run_for(2 * kSecond);

  EXPECT_GT(fw_se.processed_packets(), 0u);
  EXPECT_GT(fw_se.firewall().denied(), 0u);
  EXPECT_GE(network.controller()
                .events()
                .query_type(mon::EventType::kAttackDetected, 0, INT64_MAX)
                .size(),
            1u);
  EXPECT_GT(ids_se.processed_packets(), 0u);
}

}  // namespace
}  // namespace livesec::svc::fw
