// Unit tests for the monitoring subsystem: event store queries and replay,
// service-aware monitoring, aggregate flow control.
#include <gtest/gtest.h>

#include "monitor/event_store.h"
#include "monitor/monitoring.h"

namespace livesec::mon {
namespace {

NetworkEvent make_event(SimTime t, EventType type, std::string subject = "s") {
  NetworkEvent e;
  e.time = t;
  e.type = type;
  e.subject = std::move(subject);
  return e;
}

TEST(EventStore, AppendAssignsMonotonicIds) {
  EventStore store;
  const auto a = store.append(make_event(1, EventType::kHostJoin));
  const auto b = store.append(make_event(2, EventType::kFlowStart));
  EXPECT_LT(a, b);
  EXPECT_EQ(store.size(), 2u);
  ASSERT_NE(store.by_id(a), nullptr);
  EXPECT_EQ(store.by_id(a)->type, EventType::kHostJoin);
  EXPECT_EQ(store.by_id(999), nullptr);
}

TEST(EventStore, RangeQueryIsHalfOpen) {
  EventStore store;
  for (SimTime t = 0; t < 100; t += 10) store.append(make_event(t, EventType::kFlowStart));
  const auto events = store.query_range(20, 50);
  ASSERT_EQ(events.size(), 3u);  // 20, 30, 40
  EXPECT_EQ(events.front().time, 20);
  EXPECT_EQ(events.back().time, 40);
}

TEST(EventStore, TypeQueryFilters) {
  EventStore store;
  store.append(make_event(1, EventType::kHostJoin));
  store.append(make_event(2, EventType::kAttackDetected));
  store.append(make_event(3, EventType::kHostJoin));
  EXPECT_EQ(store.query_type(EventType::kHostJoin, 0, 100).size(), 2u);
  EXPECT_EQ(store.query_type(EventType::kAttackDetected, 0, 100).size(), 1u);
  EXPECT_EQ(store.query_type(EventType::kAttackDetected, 3, 100).size(), 0u);
}

TEST(EventStore, SubjectQueryReturnsMostRecentFirst) {
  EventStore store;
  store.append(make_event(1, EventType::kFlowStart, "alice"));
  store.append(make_event(2, EventType::kFlowStart, "bob"));
  store.append(make_event(3, EventType::kFlowEnd, "alice"));
  const auto events = store.query_subject("alice", 10);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].time, 3);
  EXPECT_EQ(events[1].time, 1);
  EXPECT_EQ(store.query_subject("alice", 1).size(), 1u);
}

TEST(EventStore, ReplayPreservesOrderAndBounds) {
  EventStore store;
  for (SimTime t = 0; t < 50; t += 5) store.append(make_event(t, EventType::kFlowStart));
  std::vector<SimTime> seen;
  const std::size_t count = store.replay(10, 30, [&](const NetworkEvent& e) {
    seen.push_back(e.time);
  });
  EXPECT_EQ(count, 4u);
  EXPECT_EQ(seen, (std::vector<SimTime>{10, 15, 20, 25}));
}

// Property: replay over [0, inf) reproduces exactly the appended sequence.
TEST(EventStore, FullReplayEqualsOriginalSequence) {
  EventStore store;
  std::vector<std::uint64_t> appended;
  for (int i = 0; i < 200; ++i) {
    appended.push_back(
        store.append(make_event(i * 3, static_cast<EventType>(1 + (i % 10)))));
  }
  std::vector<std::uint64_t> replayed;
  store.replay(0, 1'000'000, [&](const NetworkEvent& e) { replayed.push_back(e.id); });
  EXPECT_EQ(replayed, appended);
}

TEST(EventStore, CapacityEvictsOldest) {
  EventStore store(5);
  for (SimTime t = 0; t < 10; ++t) store.append(make_event(t, EventType::kFlowStart));
  EXPECT_EQ(store.size(), 5u);
  EXPECT_EQ(store.at(0).time, 5);
  EXPECT_EQ(store.by_id(1), nullptr);   // evicted
  EXPECT_NE(store.by_id(10), nullptr);  // newest survives
}

TEST(EventStore, HistogramCountsTypes) {
  EventStore store;
  store.append(make_event(1, EventType::kHostJoin));
  store.append(make_event(2, EventType::kHostJoin));
  store.append(make_event(3, EventType::kAttackDetected));
  const auto histogram = store.histogram();
  ASSERT_EQ(histogram.size(), 2u);
}

TEST(EventStore, JsonIsWellFormedArray) {
  EventStore store;
  store.append(make_event(1, EventType::kAttackDetected, "he said \"hi\""));
  const std::string json = store.to_json(0, 10);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\\\"hi\\\""), std::string::npos);  // quotes escaped
  EXPECT_NE(json.find("attack_detected"), std::string::npos);
}

TEST(NetworkEvent, ToStringIncludesSeverityAndDetail) {
  NetworkEvent e = make_event(kSecond, EventType::kAttackDetected, "host1");
  e.detail = "sql-injection";
  e.severity = 8;
  const std::string s = e.to_string();
  EXPECT_NE(s.find("attack_detected"), std::string::npos);
  EXPECT_NE(s.find("sql-injection"), std::string::npos);
  EXPECT_NE(s.find("sev=8"), std::string::npos);
}

// --- ServiceAwareMonitor -----------------------------------------------------------

TEST(ServiceAwareMonitor, TracksDominantApp) {
  ServiceAwareMonitor monitor;
  const MacAddress user = MacAddress::from_uint64(0xA);
  EXPECT_FALSE(monitor.dominant_app(user).has_value());

  monitor.record_flow_identified(user, svc::l7::AppProtocol::kHttp);
  monitor.record_flow_identified(user, svc::l7::AppProtocol::kHttp);
  monitor.record_flow_identified(user, svc::l7::AppProtocol::kSsh);
  EXPECT_EQ(monitor.dominant_app(user), svc::l7::AppProtocol::kHttp);

  // Both HTTP flows end; SSH becomes dominant (the Figure 7 -> 8 shift).
  monitor.record_flow_ended(user, svc::l7::AppProtocol::kHttp);
  monitor.record_flow_ended(user, svc::l7::AppProtocol::kHttp);
  EXPECT_EQ(monitor.dominant_app(user), svc::l7::AppProtocol::kSsh);
}

TEST(ServiceAwareMonitor, NetworkDistributionAggregates) {
  ServiceAwareMonitor monitor;
  monitor.record_flow_identified(MacAddress::from_uint64(1), svc::l7::AppProtocol::kHttp);
  monitor.record_flow_identified(MacAddress::from_uint64(2), svc::l7::AppProtocol::kHttp);
  monitor.record_flow_identified(MacAddress::from_uint64(2), svc::l7::AppProtocol::kBitTorrent);
  const auto dist = monitor.network_distribution();
  EXPECT_EQ(dist.at(svc::l7::AppProtocol::kHttp), 2u);
  EXPECT_EQ(dist.at(svc::l7::AppProtocol::kBitTorrent), 1u);
  EXPECT_EQ(monitor.users().size(), 2u);
}

TEST(ServiceAwareMonitor, TrafficTotalsAccumulateAndRank) {
  ServiceAwareMonitor monitor;
  const MacAddress light = MacAddress::from_uint64(1);
  const MacAddress heavy = MacAddress::from_uint64(2);
  monitor.record_flow_traffic(light, 10, 1000);
  monitor.record_flow_traffic(heavy, 100, 50000);
  monitor.record_flow_traffic(heavy, 200, 70000);

  const auto* totals = monitor.traffic(heavy);
  ASSERT_NE(totals, nullptr);
  EXPECT_EQ(totals->flows, 2u);
  EXPECT_EQ(totals->packets, 300u);
  EXPECT_EQ(totals->bytes, 120000u);
  EXPECT_EQ(monitor.traffic(MacAddress::from_uint64(9)), nullptr);

  const auto ranked = monitor.top_talkers(10);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].first, heavy);
  EXPECT_EQ(ranked[1].first, light);
  EXPECT_EQ(monitor.top_talkers(1).size(), 1u);
}

TEST(ServiceAwareMonitor, EndWithoutStartIsSafe) {
  ServiceAwareMonitor monitor;
  monitor.record_flow_ended(MacAddress::from_uint64(9), svc::l7::AppProtocol::kHttp);
  EXPECT_TRUE(monitor.users().empty());
}

// --- AggregateFlowControl -----------------------------------------------------------

TEST(AggregateFlowControl, EnforcesPerUserPerAppCap) {
  ServiceAwareMonitor monitor;
  AggregateFlowControl control;
  control.set_limit(svc::l7::AppProtocol::kBitTorrent, 2);
  const MacAddress user = MacAddress::from_uint64(0xA);

  EXPECT_TRUE(control.admits(monitor, user, svc::l7::AppProtocol::kBitTorrent));
  monitor.record_flow_identified(user, svc::l7::AppProtocol::kBitTorrent);
  EXPECT_TRUE(control.admits(monitor, user, svc::l7::AppProtocol::kBitTorrent));
  monitor.record_flow_identified(user, svc::l7::AppProtocol::kBitTorrent);
  EXPECT_FALSE(control.admits(monitor, user, svc::l7::AppProtocol::kBitTorrent));

  // A flow ending frees a slot.
  monitor.record_flow_ended(user, svc::l7::AppProtocol::kBitTorrent);
  EXPECT_TRUE(control.admits(monitor, user, svc::l7::AppProtocol::kBitTorrent));
}

TEST(AggregateFlowControl, UnlimitedAppsAlwaysAdmit) {
  ServiceAwareMonitor monitor;
  AggregateFlowControl control;
  control.set_limit(svc::l7::AppProtocol::kBitTorrent, 1);
  const MacAddress user = MacAddress::from_uint64(0xA);
  for (int i = 0; i < 10; ++i) {
    monitor.record_flow_identified(user, svc::l7::AppProtocol::kHttp);
  }
  EXPECT_TRUE(control.admits(monitor, user, svc::l7::AppProtocol::kHttp));
  EXPECT_FALSE(control.limit(svc::l7::AppProtocol::kHttp).has_value());
}

TEST(AggregateFlowControl, LimitsArePerUser) {
  ServiceAwareMonitor monitor;
  AggregateFlowControl control;
  control.set_limit(svc::l7::AppProtocol::kBitTorrent, 1);
  monitor.record_flow_identified(MacAddress::from_uint64(1), svc::l7::AppProtocol::kBitTorrent);
  EXPECT_FALSE(
      control.admits(monitor, MacAddress::from_uint64(1), svc::l7::AppProtocol::kBitTorrent));
  EXPECT_TRUE(
      control.admits(monitor, MacAddress::from_uint64(2), svc::l7::AppProtocol::kBitTorrent));
}

}  // namespace
}  // namespace livesec::mon
