// VLAN-aware policy tests: the 9-tuple includes the 802.1Q tag (paper
// §III.C.3 lists "VLAN id" first), so per-tenant policies and isolation are
// expressible directly in the policy table.
#include <gtest/gtest.h>

#include "net/network.h"

namespace livesec {
namespace {

/// Sends one tagged UDP packet from `src` (bypassing Host's untagged path).
void send_tagged(net::Host& src, const net::Host& dst, std::uint16_t vlan,
                 std::uint16_t dst_port) {
  pkt::Packet p = pkt::PacketBuilder()
                      .eth(src.mac(), dst.mac())
                      .vlan(vlan)
                      .ipv4(src.ip(), dst.ip(), pkt::IpProto::kUdp)
                      .udp(4000, dst_port)
                      .payload("tenant data")
                      .build();
  src.port(0).transmit(pkt::finalize(std::move(p)));
}

struct VlanNet {
  net::Network network;
  sw::EthernetSwitch& backbone;
  sw::OpenFlowSwitch& ovs1;
  sw::OpenFlowSwitch& ovs2;
  net::Host& tenant_a;
  net::Host& tenant_b;
  net::Host& server;

  VlanNet()
      : backbone(network.add_legacy_switch("backbone")),
        ovs1(network.add_as_switch("ovs1", backbone)),
        ovs2(network.add_as_switch("ovs2", backbone)),
        tenant_a(network.add_host("tenant-a", ovs1)),
        tenant_b(network.add_host("tenant-b", ovs1)),
        server(network.add_host("server", ovs2)) {}
};

TEST(Vlan, TaggedFlowsMatchVlanPolicies) {
  VlanNet net;
  // Tenant VLAN 10 is denied access to the server; VLAN 20 allowed.
  ctrl::Policy deny10;
  deny10.name = "deny-vlan10";
  deny10.priority = 10;
  deny10.vlan_id = 10;
  deny10.action = ctrl::PolicyAction::kDeny;
  net.network.controller().policies().add(deny10);
  net.network.start();

  send_tagged(net.tenant_a, net.server, 10, 9000);
  send_tagged(net.tenant_b, net.server, 20, 9001);
  net.network.run_for(300 * kMillisecond);

  // Only the VLAN-20 packet went through.
  EXPECT_EQ(net.server.rx_ip_packets(), 1u);
  EXPECT_EQ(net.network.controller().stats().flows_denied, 1u);
}

TEST(Vlan, TagIsPartOfFlowIdentity) {
  VlanNet net;
  net.network.start();
  // Same 5-tuple, two different tags: two distinct flows in the controller.
  send_tagged(net.tenant_a, net.server, 10, 9000);
  send_tagged(net.tenant_a, net.server, 20, 9000);
  net.network.run_for(300 * kMillisecond);
  EXPECT_EQ(net.network.controller().stats().flows_installed, 2u);
  EXPECT_EQ(net.server.rx_ip_packets(), 2u);
}

TEST(Vlan, TaggedFrameSurvivesWireCodec) {
  pkt::Packet p = pkt::PacketBuilder()
                      .eth(MacAddress::from_uint64(1), MacAddress::from_uint64(2))
                      .vlan(42)
                      .ipv4(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                            pkt::IpProto::kUdp)
                      .udp(1, 2)
                      .payload("x")
                      .build();
  const pkt::FlowKey key = pkt::FlowKey::from_packet(p);
  EXPECT_EQ(key.vlan_id, 42);
  const auto reparsed = pkt::Packet::parse(p.serialize());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(pkt::FlowKey::from_packet(*reparsed), key);
}

}  // namespace
}  // namespace livesec
