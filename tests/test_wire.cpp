// Round-trip and stream-segmentation tests for the OpenFlow wire codec.
#include <gtest/gtest.h>

#include <random>

#include "net/network.h"
#include "net/traffic.h"
#include "openflow/wire.h"
#include "packet/flow_key.h"

namespace livesec::of {
namespace {

pkt::FlowKey sample_key() {
  pkt::FlowKey key;
  key.dl_src = MacAddress::from_uint64(0xA1);
  key.dl_dst = MacAddress::from_uint64(0xB2);
  key.dl_type = 0x0800;
  key.nw_src = Ipv4Address(10, 0, 0, 1);
  key.nw_dst = Ipv4Address(10, 0, 0, 2);
  key.nw_proto = 6;
  key.tp_src = 12345;
  key.tp_dst = 80;
  return key;
}

pkt::PacketPtr sample_packet() {
  return pkt::PacketBuilder()
      .eth(MacAddress::from_uint64(0xA1), MacAddress::from_uint64(0xB2))
      .ipv4(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), pkt::IpProto::kTcp)
      .tcp(12345, 80, pkt::TcpFlags::kPsh)
      .payload("GET / HTTP/1.1\r\n\r\n")
      .finalize();
}

DecodedFrame must_roundtrip(const Message& message, std::uint32_t xid = 7) {
  const auto bytes = encode_message(message, xid);
  auto decoded = decode_message(bytes);
  EXPECT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->xid, xid);
  EXPECT_STREQ(message_name(decoded->message), message_name(message));
  return std::move(*decoded);
}

TEST(Wire, MatchRoundTripsAllWildcardCombinations) {
  const pkt::FlowKey key = sample_key();
  // Sweep a sample of wildcard masks including all-exact and all-wild.
  for (std::uint32_t mask : {0u, 0x3FFu, 0x001u, 0x200u, 0x155u, 0x0F0u}) {
    Match match = Match::exact(3, key);
    for (int bit = 0; bit < 10; ++bit) {
      if (mask & (1u << bit)) match.wildcard(static_cast<Wildcard>(1u << bit));
    }
    pkt::BufferWriter w;
    encode_match(w, match);
    pkt::BufferReader r(w.data());
    const auto decoded = decode_match(r);
    ASSERT_TRUE(decoded.has_value()) << "mask " << mask;
    EXPECT_EQ(decoded->wildcards(), match.wildcards());
    EXPECT_EQ(*decoded == match, true) << "mask " << mask;
  }
}

TEST(Wire, ActionsRoundTrip) {
  const ActionList actions = {ActionSetDlDst{MacAddress::from_uint64(0x5E)},
                              ActionSetDlSrc{MacAddress::from_uint64(0x5F)},
                              ActionOutput{42},
                              ActionFlood{},
                              ActionController{},
                              ActionDrop{}};
  pkt::BufferWriter w;
  encode_actions(w, actions);
  pkt::BufferReader r(w.data());
  const auto decoded = decode_actions(r);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), actions.size());
  EXPECT_EQ(std::get<ActionSetDlDst>((*decoded)[0]).mac, MacAddress::from_uint64(0x5E));
  EXPECT_EQ(std::get<ActionOutput>((*decoded)[2]).port, 42u);
  EXPECT_TRUE(std::holds_alternative<ActionDrop>((*decoded)[5]));
}

TEST(Wire, FlowModRoundTrip) {
  FlowMod mod;
  mod.command = FlowModCommand::kAdd;
  mod.notify_on_removal = true;
  mod.buffer_id = 99;
  mod.entry.match = Match::exact(1, sample_key());
  mod.entry.priority = 150;
  mod.entry.idle_timeout = 10 * kSecond;
  mod.entry.cookie = 0xC00CE;
  mod.entry.actions = {ActionSetDlDst{MacAddress::from_uint64(0x5E)}, ActionOutput{2}};

  const auto decoded = must_roundtrip(mod);
  const auto& got = std::get<FlowMod>(decoded.message);
  EXPECT_EQ(got.command, FlowModCommand::kAdd);
  EXPECT_TRUE(got.notify_on_removal);
  EXPECT_EQ(got.buffer_id, 99u);
  EXPECT_EQ(got.entry.match, mod.entry.match);
  EXPECT_EQ(got.entry.priority, 150);
  EXPECT_EQ(got.entry.idle_timeout, 10 * kSecond);
  EXPECT_EQ(got.entry.cookie, 0xC00CEu);
  EXPECT_EQ(got.entry.actions.size(), 2u);
}

TEST(Wire, FlowModBatchRoundTrip) {
  FlowModBatch batch;
  for (int i = 0; i < 3; ++i) {
    FlowMod mod;
    mod.command = FlowModCommand::kAdd;
    mod.buffer_id = static_cast<std::uint32_t>(100 + i);
    mod.entry.match = Match::exact(static_cast<PortId>(i), sample_key());
    mod.entry.priority = static_cast<std::uint16_t>(10 + i);
    mod.entry.cookie = static_cast<std::uint64_t>(0xAB00 + i);
    mod.entry.actions = {ActionOutput{static_cast<PortId>(i + 1)}};
    batch.mods.push_back(std::move(mod));
  }

  const auto decoded = must_roundtrip(Message{batch});
  const auto& got = std::get<FlowModBatch>(decoded.message);
  ASSERT_EQ(got.mods.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    const auto& mod = got.mods[static_cast<std::size_t>(i)];
    EXPECT_EQ(mod.buffer_id, static_cast<std::uint32_t>(100 + i));
    EXPECT_EQ(mod.entry.priority, 10 + i);
    EXPECT_EQ(mod.entry.cookie, static_cast<std::uint64_t>(0xAB00 + i));
    EXPECT_EQ(mod.entry.match, batch.mods[static_cast<std::size_t>(i)].entry.match);
    EXPECT_EQ(mod.entry.actions.size(), 1u);
  }
}

// The preserialized-replay contract: FlowModPatchOffsets must address the
// encoded buffer_id/cookie/match-port fields of every mod in a batch frame,
// so a template can be encoded once and byte-patched per flow.
TEST(Wire, FlowModPatchOffsetsEditEncodedFields) {
  FlowModBatch batch;
  for (int i = 0; i < 2; ++i) {
    FlowMod mod;
    mod.command = FlowModCommand::kAdd;
    mod.buffer_id = PacketOut::kNoBuffer;
    mod.entry.match = Match::exact(1, sample_key());
    mod.entry.actions = {ActionOutput{2}};
    batch.mods.push_back(std::move(mod));
  }

  std::vector<std::size_t> offsets;
  auto frame = encode_message(Message{batch}, 7, &offsets);
  ASSERT_EQ(offsets.size(), 2u);

  const std::span<std::uint8_t> bytes(frame);
  pkt::patch_u32(bytes, offsets[0] + FlowModPatchOffsets::kBufferId, 424242);
  pkt::patch_u64(bytes, offsets[0] + FlowModPatchOffsets::kCookie, 0xFEEDBEEFull);
  pkt::patch_u16(bytes, offsets[0] + FlowModPatchOffsets::kMatchTpSrc, 54321);
  pkt::patch_u16(bytes, offsets[1] + FlowModPatchOffsets::kMatchTpDst, 8443);

  const auto decoded = decode_message(frame);
  ASSERT_TRUE(decoded.has_value());
  const auto& got = std::get<FlowModBatch>(decoded->message);
  ASSERT_EQ(got.mods.size(), 2u);
  EXPECT_EQ(got.mods[0].buffer_id, 424242u);
  EXPECT_EQ(got.mods[0].entry.cookie, 0xFEEDBEEFull);
  EXPECT_EQ(got.mods[0].entry.match.flow_key().tp_src, 54321);
  EXPECT_EQ(got.mods[1].entry.match.flow_key().tp_dst, 8443);
  // The untouched fields of mod[1] survive the patches to mod[0].
  EXPECT_EQ(got.mods[1].buffer_id, PacketOut::kNoBuffer);
  EXPECT_EQ(got.mods[1].entry.match.flow_key().tp_src, sample_key().tp_src);
}

TEST(Wire, PacketInCarriesFullPacket) {
  PacketIn pin;
  pin.buffer_id = 7;
  pin.in_port = 3;
  pin.reason = PacketInReason::kNoMatch;
  pin.packet = sample_packet();

  const auto decoded = must_roundtrip(pin);
  const auto& got = std::get<PacketIn>(decoded.message);
  EXPECT_EQ(got.buffer_id, 7u);
  EXPECT_EQ(got.in_port, 3u);
  ASSERT_NE(got.packet, nullptr);
  EXPECT_EQ(pkt::FlowKey::from_packet(*got.packet), pkt::FlowKey::from_packet(*pin.packet));
  EXPECT_EQ(got.packet->payload_size(), pin.packet->payload_size());
}

TEST(Wire, PacketOutWithoutPacketStaysEmpty) {
  PacketOut pout;
  pout.buffer_id = 5;
  pout.in_port = 1;
  pout.actions = output_to(3);

  const auto decoded = must_roundtrip(pout);
  const auto& got = std::get<PacketOut>(decoded.message);
  EXPECT_EQ(got.buffer_id, 5u);
  EXPECT_EQ(got.packet, nullptr);
}

TEST(Wire, AllSimpleMessagesRoundTrip) {
  must_roundtrip(EchoRequest{0xDEAD});
  must_roundtrip(EchoReply{0xBEEF});
  must_roundtrip(StatsRequest{});
  must_roundtrip(PortStatus{4, PortChange::kDown});
  must_roundtrip(FeaturesReply{42, 8, "ovs-closet-2"});

  FlowRemoved removed;
  removed.match = Match::exact_flow(sample_key());
  removed.priority = 100;
  removed.cookie = 11;
  removed.reason = RemovalReason::kIdleTimeout;
  removed.packet_count = 1234;
  removed.byte_count = 56789;
  const auto decoded = must_roundtrip(removed);
  const auto& got = std::get<FlowRemoved>(decoded.message);
  EXPECT_EQ(got.byte_count, 56789u);
  EXPECT_EQ(got.match, removed.match);
}

TEST(Wire, StatsReplyWithFlowsRoundTrips) {
  StatsReply stats;
  stats.table_lookups = 1000;
  stats.table_hits = 900;
  for (int i = 0; i < 5; ++i) {
    FlowStats flow;
    pkt::FlowKey key = sample_key();
    key.tp_src = static_cast<std::uint16_t>(1000 + i);
    flow.match = Match::exact(0, key);
    flow.priority = 100;
    flow.packet_count = static_cast<std::uint64_t>(i * 10);
    flow.byte_count = static_cast<std::uint64_t>(i * 1000);
    stats.flows.push_back(flow);
  }
  const auto decoded = must_roundtrip(stats);
  const auto& got = std::get<StatsReply>(decoded.message);
  EXPECT_EQ(got.table_hits, 900u);
  ASSERT_EQ(got.flows.size(), 5u);
  EXPECT_EQ(got.flows[4].byte_count, 4000u);
}

TEST(Wire, DecodeRejectsMalformedFrames) {
  const auto good = encode_message(EchoRequest{1}, 0);

  auto bad_version = good;
  bad_version[0] = 0x04;
  EXPECT_FALSE(decode_message(bad_version).has_value());

  auto bad_type = good;
  bad_type[1] = 0xEE;
  EXPECT_FALSE(decode_message(bad_type).has_value());

  auto truncated = good;
  truncated.pop_back();
  EXPECT_FALSE(decode_message(truncated).has_value());  // length mismatch

  auto padded = good;
  padded.push_back(0);
  EXPECT_FALSE(decode_message(padded).has_value());
}

TEST(Wire, StreamSegmentationHandlesPartialFrames) {
  std::vector<std::uint8_t> stream;
  for (std::uint32_t xid = 1; xid <= 3; ++xid) {
    const auto frame = encode_message(EchoRequest{xid}, xid);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  // Append half of a fourth frame.
  const auto partial = encode_message(EchoRequest{4}, 4);
  stream.insert(stream.end(), partial.begin(), partial.begin() + 5);

  std::vector<DecodedFrame> frames;
  const std::size_t consumed = decode_stream(stream, frames);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(consumed, stream.size() - 5);
  EXPECT_EQ(std::get<EchoRequest>(frames[2].message).token, 3u);

  // Feeding the tail plus the rest completes the fourth frame.
  std::vector<std::uint8_t> rest(stream.begin() + static_cast<std::ptrdiff_t>(consumed),
                                 stream.end());
  rest.insert(rest.end(), partial.begin() + 5, partial.end());
  frames.clear();
  EXPECT_EQ(decode_stream(rest, frames), rest.size());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].xid, 4u);
}

TEST(Wire, WholeScenarioSurvivesWireEncodedChannels) {
  // Run a complete redirect + detect + block scenario with every control
  // message byte-encoded and re-parsed: behavior must be identical to the
  // structured channel, with zero codec failures.
  net::Network network;
  network.enable_wire_encoding();
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs1 = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);
  auto& ids = network.add_service_element(svc::ServiceType::kIntrusionDetection, ovs2);
  (void)ids;

  ctrl::Policy policy;
  policy.tp_dst = 80;
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kIntrusionDetection};
  network.controller().policies().add(policy);

  auto& alice = network.add_host("alice", ovs1);
  auto& bob = network.add_host("bob", ovs2);
  net::HttpServerApp server(bob, {.port = 80, .response_size = 4096});
  network.start();

  net::HttpClientApp client(alice, {.server = bob.ip(), .sessions = 2, .concurrency = 1,
                                    .expected_response = 4096});
  client.start();
  net::AttackApp attacker(alice, {.server = bob.ip(), .packets = 10});
  attacker.start();
  network.run_for(2 * kSecond);

  EXPECT_EQ(client.responses_completed(), 2u);
  EXPECT_EQ(network.controller().stats().flows_blocked_by_event, 1u);
  EXPECT_TRUE(network.controller().topology().full_mesh());  // LLDP survived too
}

TEST(Wire, FuzzDecodeNeverCrashes) {
  std::mt19937_64 rng(42);
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::uint8_t> bytes(rng() % 96);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    (void)decode_message(bytes);
    std::vector<DecodedFrame> frames;
    (void)decode_stream(bytes, frames);
  }
}

}  // namespace
}  // namespace livesec::of
