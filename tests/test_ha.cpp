// Controller high-availability subsystem: replication codec/log units,
// cluster state mirroring under lossy replication, deterministic failover
// with post-failover reconciliation, DHCP/ARP continuity across failover,
// control-plane partition detection via OFPT_ECHO, and the channel
// backpressure / pending-setup regressions that ride along.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <variant>
#include <vector>

#include "controller/controller.h"
#include "ha/cluster.h"
#include "ha/fault_plan.h"
#include "ha/replication.h"
#include "monitor/webui.h"
#include "net/network.h"
#include "net/traffic.h"
#include "openflow/channel.h"
#include "packet/packet.h"
#include "scenario/campus.h"
#include "sim/simulator.h"
#include "topology/lldp.h"

namespace livesec {
namespace {

using net::Network;

// --- replication codec / log units -------------------------------------------------

TEST(Replication, RecordCodecRoundTripsEveryType) {
  const MacAddress mac = MacAddress::from_uint64(0xA11CE);
  const Ipv4Address ip(10, 0, 0, 1);
  pkt::FlowKey key;
  key.nw_src = ip;
  key.nw_dst = Ipv4Address(10, 0, 0, 2);
  key.nw_proto = 17;
  key.tp_src = 1000;
  key.tp_dst = 2000;

  ctrl::Policy policy;
  policy.id = 7;
  policy.name = "web-via-ids";
  policy.priority = 10;
  policy.tp_dst = 80;
  policy.nw_src = ip;
  policy.nw_src_prefix = 24;
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kIntrusionDetection};

  const std::vector<ha::RecordBody> bodies = {
      ha::HostLearnedRecord{mac, ip, 3, 2, 42},
      ha::HostRemovedRecord{mac},
      ha::LsPortRecord{4, 9},
      ha::LinkRecord{1, 2, 3, 4},
      ha::PolicyAddedRecord{policy},
      ha::PolicyRemovedRecord{7},
      ha::DefaultActionRecord{ctrl::PolicyAction::kDeny},
      ha::SeUpsertRecord{5, mac, ip, svc::ServiceType::kProtocolIdentification, 2, 6, 99},
      ha::SeRemovedRecord{5},
      ha::FlowBlockedRecord{key, 1, 3},
      ha::FlowUnblockedRecord{key},
      ha::DhcpConfigRecord{Ipv4Address(10, 2, 0, 10), 16, 3600 * kSecond},
      ha::DhcpLeaseRecord{mac, Ipv4Address(10, 2, 0, 11), 7200 * kSecond},
      ha::DhcpReleaseRecord{mac},
      ha::SwitchUpRecord{6, 12, "ovs-floor-3"},
      ha::SwitchDownRecord{6},
      ha::FlowOffloadedRecord{key, 65536},
      ha::FlowOnloadedRecord{key},
  };
  ASSERT_EQ(bodies.size(), std::variant_size_v<ha::RecordBody>);

  std::uint64_t seq = 0;
  for (const auto& body : bodies) {
    const ha::ReplicationRecord record{++seq, body};
    const auto bytes = ha::encode_record(record);
    const auto decoded = ha::decode_record(bytes);
    ASSERT_TRUE(decoded.has_value()) << ha::record_name(body);
    EXPECT_EQ(decoded->seq, record.seq);
    EXPECT_EQ(decoded->body.index(), body.index()) << ha::record_name(body);
  }

  // Spot-check deep fields survive the trip.
  const auto policy_bytes = ha::encode_record({1, ha::PolicyAddedRecord{policy}});
  const auto policy_rt = ha::decode_record(policy_bytes);
  ASSERT_TRUE(policy_rt.has_value());
  const auto& p = std::get<ha::PolicyAddedRecord>(policy_rt->body).policy;
  EXPECT_EQ(p.id, 7u);
  EXPECT_EQ(p.name, "web-via-ids");
  ASSERT_TRUE(p.tp_dst.has_value());
  EXPECT_EQ(*p.tp_dst, 80);
  ASSERT_TRUE(p.nw_src_prefix.has_value());
  EXPECT_EQ(*p.nw_src_prefix, 24);
  ASSERT_EQ(p.service_chain.size(), 1u);
  EXPECT_EQ(p.service_chain[0], svc::ServiceType::kIntrusionDetection);

  const auto sw_bytes = ha::encode_record({2, ha::SwitchUpRecord{6, 12, "ovs-floor-3"}});
  const auto sw_rt = ha::decode_record(sw_bytes);
  ASSERT_TRUE(sw_rt.has_value());
  EXPECT_EQ(std::get<ha::SwitchUpRecord>(sw_rt->body).name, "ovs-floor-3");
}

TEST(Replication, CodecRejectsVersionMismatchAndTruncation) {
  auto bytes = ha::encode_record({9, ha::HostRemovedRecord{MacAddress::from_uint64(1)}});
  ASSERT_FALSE(bytes.empty());

  auto wrong_version = bytes;
  wrong_version[0] ^= 0xFF;  // format version lives up front
  EXPECT_FALSE(ha::decode_record(wrong_version).has_value());

  auto truncated = bytes;
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(ha::decode_record(truncated).has_value());

  EXPECT_FALSE(ha::decode_record(std::vector<std::uint8_t>{}).has_value());
}

TEST(Replication, LogAssignsSequencesServesTailAndTruncates) {
  ha::ReplicationLog log;
  EXPECT_EQ(log.head_seq(), 0u);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(log.append(ha::SeRemovedRecord{i}), i);
  }
  EXPECT_EQ(log.head_seq(), 5u);
  EXPECT_EQ(log.base_seq(), 1u);

  auto tail = log.since(3);
  ASSERT_TRUE(tail.has_value());
  ASSERT_EQ(tail->size(), 2u);
  EXPECT_EQ((*tail)[0].seq, 4u);
  EXPECT_EQ((*tail)[1].seq, 5u);

  log.truncate(3);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.base_seq(), 4u);
  // A reader still at or before the truncation point must snapshot instead.
  EXPECT_FALSE(log.since(2).has_value());
  ASSERT_TRUE(log.since(3).has_value());
  ASSERT_TRUE(log.since(5).has_value());
  EXPECT_TRUE(log.since(5)->empty());
}

TEST(Replication, SnapshotRecordsRoundTrip) {
  std::vector<ha::RecordBody> records = {
      ha::LsPortRecord{1, 4},
      ha::HostLearnedRecord{MacAddress::from_uint64(2), Ipv4Address(10, 0, 0, 2), 1, 1, 5},
      ha::DefaultActionRecord{ctrl::PolicyAction::kDeny},
  };
  const auto bytes = ha::encode_snapshot_records(records);
  const auto decoded = ha::decode_snapshot_records(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*decoded)[i].index(), records[i].index());
  }

  auto corrupt = bytes;
  corrupt.resize(corrupt.size() - 1);
  EXPECT_FALSE(ha::decode_snapshot_records(corrupt).has_value());
}

// --- snapshot export / import fidelity ---------------------------------------------

TEST(Replication, ExportedStateImportsIntoFreshController) {
  Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs1 = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);
  auto& alice = network.add_host("alice", ovs1);
  auto& bob = network.add_host("bob", ovs2);
  network.add_service_element(svc::ServiceType::kIntrusionDetection, ovs2);

  ctrl::Policy policy;
  policy.name = "deny-telnet";
  policy.tp_dst = 23;
  policy.action = ctrl::PolicyAction::kDeny;
  network.controller().policies().add(policy);
  network.start();

  const auto records = network.controller().export_state();
  ASSERT_FALSE(records.empty());

  sim::Simulator standby_sim;
  ctrl::Controller standby(standby_sim);
  standby.import_snapshot(records);

  // Hosts, SEs, policies and topology all arrive.
  const auto* a = standby.routing().find(alice.mac());
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->dpid, 1u);
  EXPECT_EQ(a->ip, alice.ip());
  ASSERT_NE(standby.routing().find(bob.mac()), nullptr);
  EXPECT_EQ(standby.services().all().size(), 1u);
  EXPECT_EQ(standby.policies().size(), network.controller().policies().size());
  EXPECT_EQ(standby.topology().switch_count(), 2u);
}

// The sharded record layout must survive a snapshot round-trip after DHCP
// lease churn: losers of an IP re-lease export with a cleared address, so a
// standby importing the snapshot rebuilds exactly the same mac and ip maps
// (bug 1's stale index would otherwise resurrect on the standby).
TEST(Replication, IpChurnedStateRoundTripsThroughSnapshot) {
  sim::Simulator sim;
  ctrl::Controller active(sim);

  scenario::CampusConfig campus_config;
  campus_config.hosts = 500;
  scenario::CampusGenerator campus(campus_config);
  for (std::uint32_t i = 0; i < campus_config.hosts; ++i) {
    const scenario::CampusHost h = campus.host(i);
    active.apply_replicated(ha::HostLearnedRecord{h.mac, h.ip, h.dpid, h.port, 0});
  }
  // Re-lease a band of addresses to the next host over: host i loses its
  // address to host i+1, which in turn loses its own to i+2, and so on.
  for (std::uint32_t i = 0; i < 100; ++i) {
    const scenario::CampusHost loser = campus.host(i);
    const scenario::CampusHost winner = campus.host(i + 1);
    active.apply_replicated(
        ha::HostLearnedRecord{winner.mac, loser.ip, winner.dpid, winner.port, kSecond});
  }

  const auto records = active.export_state();
  sim::Simulator standby_sim;
  ctrl::Controller standby(standby_sim);
  standby.import_snapshot(records);

  ASSERT_EQ(standby.routing().size(), active.routing().size());
  for (std::uint32_t i = 0; i < campus_config.hosts; ++i) {
    const scenario::CampusHost h = campus.host(i);
    const auto* on_active = active.routing().find(h.mac);
    const auto* on_standby = standby.routing().find(h.mac);
    ASSERT_NE(on_active, nullptr);
    ASSERT_NE(on_standby, nullptr);
    EXPECT_EQ(on_standby->ip, on_active->ip) << "host " << i;
    EXPECT_EQ(on_standby->dpid, on_active->dpid);
    EXPECT_EQ(on_standby->port, on_active->port);
  }
  // The contested addresses resolve to the same winner on both sides.
  for (std::uint32_t i = 0; i < 100; ++i) {
    const scenario::CampusHost h = campus.host(i);
    const auto* on_active = active.routing().find_by_ip(h.ip);
    const auto* on_standby = standby.routing().find_by_ip(h.ip);
    ASSERT_NE(on_active, nullptr) << "address " << i << " lost on the active";
    ASSERT_NE(on_standby, nullptr) << "address " << i << " lost on the standby";
    EXPECT_EQ(on_standby->mac, on_active->mac);
    EXPECT_EQ(on_active->mac, campus.host(i + 1).mac);
  }
}

// --- cluster replication -----------------------------------------------------------

TEST(HaCluster, StandbyMirrorsActiveState) {
  Network network;
  network.enable_ha(1);
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs1 = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);
  auto& alice = network.add_host("alice", ovs1);
  auto& bob = network.add_host("bob", ovs2);
  network.add_service_element(svc::ServiceType::kIntrusionDetection, ovs2);
  network.start();

  ctrl::Policy policy;
  policy.name = "deny-telnet";
  policy.tp_dst = 23;
  policy.action = ctrl::PolicyAction::kDeny;
  network.controller().policies().add(policy);
  network.run_for(1 * kSecond);

  ha::HaCluster* cluster = network.ha_cluster();
  ASSERT_NE(cluster, nullptr);
  ASSERT_EQ(cluster->node_count(), 2u);
  EXPECT_EQ(cluster->role(0), ha::HaCluster::Role::kActive);
  EXPECT_EQ(cluster->role(1), ha::HaCluster::Role::kStandby);
  EXPECT_GT(cluster->stats().records_published, 0u);
  // The standby applied everything the active published.
  EXPECT_EQ(cluster->applied_seq(1), cluster->log().head_seq());

  ctrl::Controller& standby = cluster->node_controller(1);
  const auto* a = standby.routing().find(alice.mac());
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->ip, alice.ip());
  ASSERT_NE(standby.routing().find(bob.mac()), nullptr);
  EXPECT_EQ(standby.services().all().size(), 1u);
  EXPECT_EQ(standby.policies().size(), network.controller().policies().size());
  EXPECT_EQ(standby.topology().switch_count(), 2u);
  // Standby channels exist but stay down until promotion.
  EXPECT_FALSE(standby.switch_connected(1));
  EXPECT_FALSE(standby.switch_connected(2));
}

TEST(HaCluster, LossyDelayedReorderedReplicationConverges) {
  ha::FaultPlan plan;
  plan.seed = 7;
  plan.replication_drop_probability = 0.3;
  plan.replication_delay_probability = 0.2;
  plan.replication_reorder_probability = 0.2;

  Network network;
  network.enable_ha(2, {}, plan);
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs1 = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);
  auto& alice = network.add_host("alice", ovs1);
  auto& bob = network.add_host("bob", ovs2);
  network.start();

  net::UdpCbrApp stream(alice, {.dst = bob.ip(), .rate_bps = 2e6, .duration = 1 * kSecond});
  stream.start();
  // Run past the end of traffic so at least one resync pass repairs the tail.
  network.run_for(2 * kSecond);

  ha::HaCluster* cluster = network.ha_cluster();
  const auto& stats = cluster->stats();
  EXPECT_GT(stats.records_dropped, 0u);
  EXPECT_GT(stats.records_delayed, 0u);
  EXPECT_GT(stats.retransmits, 0u);
  // Both standbys converge to the full stream despite the faults.
  EXPECT_EQ(cluster->applied_seq(1), cluster->log().head_seq());
  EXPECT_EQ(cluster->applied_seq(2), cluster->log().head_seq());
  for (std::size_t node = 1; node <= 2; ++node) {
    ctrl::Controller& standby = cluster->node_controller(node);
    EXPECT_NE(standby.routing().find(alice.mac()), nullptr);
    EXPECT_NE(standby.routing().find(bob.mac()), nullptr);
    EXPECT_EQ(standby.topology().switch_count(), 2u);
  }
}

TEST(HaCluster, PromotionBootstrapsFromSnapshotWhenLogTruncated) {
  // Every direct delivery is lost and resync never runs: the only way the
  // standby can take over is the snapshot the active left behind.
  ha::FaultPlan plan;
  plan.replication_drop_probability = 1.0;
  plan.crash_active_at = 1 * kSecond;
  ha::HaCluster::Config config;
  config.snapshot_interval = 100 * kMillisecond;
  config.resync_interval = 10 * kSecond;

  Network network;
  network.enable_ha(1, config, plan);
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs1 = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);
  auto& alice = network.add_host("alice", ovs1);
  auto& bob = network.add_host("bob", ovs2);
  network.start();
  network.run_for(2 * kSecond);

  ha::HaCluster* cluster = network.ha_cluster();
  EXPECT_EQ(cluster->stats().crashes, 1u);
  EXPECT_EQ(cluster->stats().failovers, 1u);
  EXPECT_GE(cluster->stats().snapshots_taken, 1u);
  EXPECT_GE(cluster->stats().snapshots_imported, 1u);
  EXPECT_EQ(cluster->active_index(), 1u);

  ctrl::Controller& active = cluster->active_controller();
  EXPECT_NE(active.routing().find(alice.mac()), nullptr);
  EXPECT_NE(active.routing().find(bob.mac()), nullptr);
  EXPECT_TRUE(active.switch_connected(1));
  EXPECT_TRUE(active.switch_connected(2));
}

// --- deterministic failover end-to-end ---------------------------------------------

struct FailoverRun {
  std::uint64_t legit_delivered = 0;
  std::uint64_t attack_served = 0;
  std::uint64_t arp_probe_delivered = 0;
  std::uint64_t failovers = 0;
  ctrl::Controller::ReconcileReport report;
  std::size_t failover_events = 0;
  std::size_t reconciled_events = 0;
  bool new_active_knows_block = false;
};

/// One fully seeded failover scenario; `crash` selects the fault plan so the
/// crash and no-crash runs share every other event, byte for byte.
FailoverRun run_failover_scenario(bool crash) {
  ctrl::Controller::Config config;
  config.flow_idle_timeout = 2 * kSecond;  // attack drop entry: 6 s idle
  ha::FaultPlan plan;
  if (crash) plan.crash_active_at = 8 * kSecond;

  Network network{config};
  network.enable_ha(1, {}, plan);
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs1 = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);
  auto& alice = network.add_host("alice", ovs1);
  auto& bob = network.add_host("bob", ovs2);
  auto& carol = network.add_host("carol", ovs1);
  auto& dave = network.add_host("dave", ovs2);
  network.add_service_element(svc::ServiceType::kIntrusionDetection, ovs2);

  ctrl::Policy redirect;
  redirect.name = "web-via-ids";
  redirect.tp_dst = 80;
  redirect.action = ctrl::PolicyAction::kRedirect;
  redirect.service_chain = {svc::ServiceType::kIntrusionDetection};
  network.controller().policies().add(redirect);

  net::HttpServerApp server(bob, {.port = 80});
  std::uint64_t legit = 0;
  bob.on_udp(9000, [&legit](const pkt::Packet&) { ++legit; });
  std::uint64_t arp_probe = 0;
  alice.on_udp(9100, [&arp_probe](const pkt::Packet&) { ++arp_probe; });

  network.start();  // settles 200 ms

  // Legitimate stream alice -> bob, alive across the whole scenario. Its
  // entries stay warm, so the data plane must carry it through the
  // controller outage untouched.
  net::UdpCbrApp stream(alice, {.dst = bob.ip(), .dst_port = 9000, .rate_bps = 2e6,
                                .duration = 13 * kSecond});
  stream.start();

  // Attack alice -> bob:80 through the IDS: detected and blocked within the
  // first second; the drop entry idle-expires (~6 s after the last attack
  // packet) before the crash at 8 s.
  net::AttackApp attack(alice, {.server = bob.ip(), .packets = 10,
                                .interval = 20 * kMillisecond});
  attack.start();

  // Carol's stream, ending at 7 s so its entries (2 s idle) still exist at
  // reconcile time (8.1 s) but are denied by then: reconciliation must
  // remove them as stale.
  net::UdpCbrApp carol_stream(carol, {.dst = bob.ip(), .dst_port = 7000, .rate_bps = 1e6,
                                      .duration = 6800 * kMillisecond});
  carol_stream.start();

  network.run_for(5 * kSecond);  // now at ~5.2 s

  ctrl::Policy deny;
  deny.name = "deny-7000";
  deny.priority = 50;
  deny.tp_dst = 7000;
  deny.action = ctrl::PolicyAction::kDeny;
  network.controller().policies().add(deny);

  network.run_for(4 * kSecond);  // crash at 8 s, promotion ~8.1 s, reconcile ~8.11 s

  // The attacker resumes with the same flow key. With the drop entry long
  // expired, only the replicated block record (re-installed during
  // reconciliation) keeps the server clean.
  net::AttackApp attack_again(alice, {.server = bob.ip(), .packets = 10,
                                      .interval = 20 * kMillisecond});
  attack_again.start();

  // A brand-new flow needing ARP resolution + flow setup by whoever is
  // active now: dave -> alice.
  net::UdpCbrApp probe(dave, {.dst = alice.ip(), .dst_port = 9100, .rate_bps = 1e6,
                              .duration = 500 * kMillisecond});
  probe.start();

  network.run_for(5 * kSecond);  // to ~14.2 s

  FailoverRun out;
  out.legit_delivered = legit;
  out.attack_served = server.requests_served();
  out.arp_probe_delivered = arp_probe;
  ha::HaCluster* cluster = network.ha_cluster();
  out.failovers = cluster->stats().failovers;
  ctrl::Controller& active = network.active_controller();
  out.report = active.reconcile_report();
  constexpr SimTime kForever = std::numeric_limits<SimTime>::max();
  out.failover_events =
      active.events().query_type(mon::EventType::kFailover, 0, kForever).size();
  out.reconciled_events =
      active.events().query_type(mon::EventType::kReconciled, 0, kForever).size();
  out.new_active_knows_block = active.blocked_flow_count() >= 1;
  return out;
}

TEST(HaFailover, DeterministicFailoverPreservesServiceAndEnforcement) {
  const FailoverRun faulty = run_failover_scenario(true);
  const FailoverRun clean = run_failover_scenario(false);

  // The failover happened and was announced.
  EXPECT_EQ(faulty.failovers, 1u);
  EXPECT_EQ(faulty.failover_events, 1u);
  EXPECT_EQ(faulty.reconciled_events, 1u);
  EXPECT_EQ(clean.failovers, 0u);

  // Reconciliation audited the switches, removed carol's now-denied entries
  // and re-installed the expired attack drop from replicated state.
  EXPECT_EQ(faulty.report.switches_audited, 2u);
  EXPECT_GT(faulty.report.entries_audited, 0u);
  EXPECT_GE(faulty.report.stale_removed, 1u);
  EXPECT_GE(faulty.report.drops_reinstalled, 1u);
  EXPECT_GT(faulty.report.completed_at, 0);
  EXPECT_TRUE(faulty.new_active_knows_block);

  // Policy enforcement across the failover: the resumed attack reached the
  // server in neither run.
  EXPECT_EQ(faulty.attack_served, clean.attack_served);
  // Established goodput is identical to the no-failure run, packet for
  // packet: the data plane never depended on the dead controller.
  EXPECT_EQ(faulty.legit_delivered, clean.legit_delivered);
  EXPECT_GT(faulty.legit_delivered, 0u);
  // And the promoted standby can set up brand-new flows (ARP directory
  // proxy + two-hop routing) just like the original active.
  EXPECT_GT(faulty.arp_probe_delivered, 0u);
  EXPECT_EQ(faulty.arp_probe_delivered, clean.arp_probe_delivered);
}

// --- DHCP + ARP continuity across failover -----------------------------------------

TEST(HaFailover, DhcpLeasesSurviveFailoverAndStillExpire) {
  ctrl::Controller::Config config;
  config.housekeeping_interval = 500 * kMillisecond;

  Network network{config};
  network.enable_ha(1);
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs1 = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);
  network.controller().enable_dhcp(Ipv4Address(10, 2, 0, 10), 16, 4 * kSecond);
  auto& client = network.add_host("client", ovs1);
  auto& late_client = network.add_host("late", ovs2);
  network.start();

  client.start_dhcp();
  network.run_for(1 * kSecond);
  ASSERT_TRUE(client.dhcp_bound());
  const Ipv4Address leased = client.ip();

  // The lease and the pool configuration reached the standby.
  ha::HaCluster* cluster = network.ha_cluster();
  const ctrl::DhcpPool* standby_pool = cluster->node_controller(1).dhcp_pool();
  ASSERT_NE(standby_pool, nullptr);
  EXPECT_EQ(standby_pool->active_leases(), 1u);
  EXPECT_GT(standby_pool->lease_expiry(client.mac()), 0);

  cluster->crash_active();
  network.run_for(500 * kMillisecond);  // detection + promotion
  ASSERT_EQ(cluster->stats().failovers, 1u);
  ctrl::Controller& active = cluster->active_controller();

  // The promoted standby serves the existing lease's identity: another host
  // can resolve the client's leased address through the directory proxy.
  EXPECT_EQ(active.dhcp_pool()->active_leases(), 1u);
  const auto* loc = active.routing().find_by_ip(leased);
  ASSERT_NE(loc, nullptr);
  EXPECT_EQ(loc->mac, client.mac());

  // Renewal against the new active keeps the replicated address: the same
  // DISCOVER/REQUEST exchange extends the lease instead of reallocating.
  const SimTime expiry_before_renewal = active.dhcp_pool()->lease_expiry(client.mac());
  client.start_dhcp();
  network.run_for(1 * kSecond);
  ASSERT_TRUE(client.dhcp_bound());
  EXPECT_EQ(client.ip(), leased);
  EXPECT_GT(active.dhcp_pool()->lease_expiry(client.mac()), expiry_before_renewal);

  // ...and keeps allocating: a new client binds against the new active.
  late_client.start_dhcp();
  network.run_for(1 * kSecond);
  EXPECT_TRUE(late_client.dhcp_bound());
  EXPECT_NE(late_client.ip(), leased);
  EXPECT_EQ(active.dhcp_pool()->active_leases(), 2u);

  // Leases still expire on the survivor once renewals stop: the renewed 4 s
  // lease lapses after we run well past its horizon.
  network.run_for(6 * kSecond);
  EXPECT_EQ(active.dhcp_pool()->lease_expiry(client.mac()), 0);
}

// --- control-plane partition via OFPT_ECHO -----------------------------------------

TEST(HaCluster, EchoLivenessDetectsPartitionAndHealSurvives) {
  ctrl::Controller::Config config;
  config.switch_echo_interval = 100 * kMillisecond;  // timeout 3x = 300 ms

  Network network{config};
  network.enable_ha(1);
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs1 = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);
  auto& alice = network.add_host("alice", ovs1);
  (void)ovs2;
  network.start();
  ASSERT_TRUE(network.controller().switch_connected(1));

  ha::HaCluster* cluster = network.ha_cluster();
  cluster->partition_switch(1);
  network.run_for(1 * kSecond);

  // The channel still claims "connected" — only the echo probes noticed.
  EXPECT_GE(network.controller().stats().echo_timeouts, 1u);
  EXPECT_FALSE(network.controller().switch_connected(1));
  EXPECT_TRUE(network.controller().switch_connected(2));

  cluster->heal_switch(1);
  network.run_for(200 * kMillisecond);
  EXPECT_TRUE(network.controller().switch_connected(1));

  // The switch is fully usable again: the host re-announces and is learned
  // back at its old attachment point.
  alice.announce();
  network.run_for(200 * kMillisecond);
  const auto* loc = network.controller().routing().find(alice.mac());
  ASSERT_NE(loc, nullptr);
  EXPECT_EQ(loc->dpid, 1u);
}

// --- WebUI surfaces the HA panel ---------------------------------------------------

TEST(HaCluster, WebUiRendersHaStatusAndBackpressure) {
  Network network;
  network.enable_ha(1);
  auto& backbone = network.add_legacy_switch("backbone");
  network.add_as_switch("ovs1", backbone);
  network.start();
  network.run_for(500 * kMillisecond);

  mon::WebUi ui(network.controller());
  ui.set_ha_status_provider(
      [cluster = network.ha_cluster()] { return cluster->status_json(); });

  const std::string json = ui.snapshot_json(0, network.sim().now());
  EXPECT_NE(json.find("\"ha\":{"), std::string::npos);
  EXPECT_NE(json.find("\"role\":\"active\""), std::string::npos);
  EXPECT_NE(json.find("\"role\":\"standby\""), std::string::npos);
  EXPECT_NE(json.find("\"channel_outbox_dropped\":"), std::string::npos);
  EXPECT_NE(json.find("\"channel_backlog\":"), std::string::npos);
  EXPECT_NE(json.find("\"echo_timeouts\":"), std::string::npos);

  const std::string text = ui.snapshot_text(0, network.sim().now());
  EXPECT_NE(text.find("high availability"), std::string::npos);
  EXPECT_NE(text.find("channel backpressure"), std::string::npos);
}

// --- satellite regressions: channel bound, pending-setup cleanup -------------------

/// Minimal switch endpoint for channel-level tests.
class SinkSwitch : public of::SwitchEndpoint {
 public:
  explicit SinkSwitch(DatapathId dpid) : dpid_(dpid) {}
  DatapathId datapath_id() const override { return dpid_; }
  void handle_controller_message(const of::Message&) override { ++delivered; }
  std::uint64_t delivered = 0;

 private:
  DatapathId dpid_;
};

class SinkController : public of::ControllerEndpoint {
 public:
  void handle_switch_message(DatapathId, const of::Message&) override { ++delivered; }
  void handle_switch_connected(DatapathId, const of::FeaturesReply&) override {}
  void handle_switch_disconnected(DatapathId) override {}
  std::uint64_t delivered = 0;
};

TEST(SecureChannel, OutboxBoundDropsBeyondLimitAndCounts) {
  sim::Simulator sim;
  SinkSwitch sw{1};
  SinkController controller;
  of::SecureChannel channel(sim, sw, controller);
  channel.connect(of::FeaturesReply{1, 4, "sw"});
  channel.set_outbox_limit(4);

  for (int i = 0; i < 10; ++i) channel.send_to_switch(of::EchoRequest{});
  EXPECT_EQ(channel.outbox_depth_to_switch(), 4u);
  EXPECT_EQ(channel.outbox_dropped(), 6u);
  for (int i = 0; i < 7; ++i) channel.send_to_controller(of::EchoReply{});
  EXPECT_EQ(channel.outbox_depth_to_controller(), 4u);
  EXPECT_EQ(channel.outbox_dropped(), 9u);

  sim.run();
  EXPECT_EQ(sw.delivered, 4u);
  // The connect's features notification plus the four surviving echoes.
  EXPECT_EQ(channel.outbox_depth_to_switch(), 0u);
  EXPECT_EQ(channel.outbox_depth_to_controller(), 0u);

  // Unbounded mode accepts arbitrarily deep bursts again.
  channel.set_outbox_limit(0);
  for (int i = 0; i < 20; ++i) channel.send_to_switch(of::EchoRequest{});
  EXPECT_EQ(channel.outbox_depth_to_switch(), 20u);
  EXPECT_EQ(channel.outbox_dropped(), 9u);
}

TEST(SecureChannel, BlackholeSilentlyLosesWhileConnected) {
  sim::Simulator sim;
  SinkSwitch sw{1};
  SinkController controller;
  of::SecureChannel channel(sim, sw, controller);
  channel.connect(of::FeaturesReply{1, 4, "sw"});
  sim.run();

  channel.set_blackhole(true);
  EXPECT_TRUE(channel.connected());
  channel.send_to_switch(of::EchoRequest{});
  channel.send_to_controller(of::EchoReply{});
  sim.run();
  EXPECT_EQ(sw.delivered, 0u);
  EXPECT_EQ(controller.delivered, 0u);
  EXPECT_EQ(channel.blackholed_messages(), 2u);

  channel.set_blackhole(false);
  channel.send_to_switch(of::EchoRequest{});
  sim.run();
  EXPECT_EQ(sw.delivered, 1u);
}

pkt::PacketPtr gratuitous_arp(MacAddress mac, Ipv4Address ip) {
  return pkt::PacketBuilder()
      .eth(mac, MacAddress::from_uint64(0xFFFFFFFFFFFFull))
      .arp(pkt::ArpOp::kRequest, mac, ip, MacAddress{}, ip)
      .finalize();
}

TEST(Controller, PendingSetupsClearedOnSwitchDisconnectAndReconnect) {
  sim::Simulator sim;
  ctrl::Controller controller(sim);
  SinkSwitch sw1{1};
  SinkSwitch sw2{2};
  of::SecureChannel ch1(sim, sw1, controller, 10 * kMicrosecond);
  of::SecureChannel ch2(sim, sw2, controller, 10 * kMicrosecond);
  controller.attach_channel(1, ch1);
  controller.attach_channel(2, ch2);
  const of::FeaturesReply features1{1, 8, "sw1"};
  ch1.connect(features1);
  ch2.connect(of::FeaturesReply{2, 8, "sw2"});
  sim.run_until(sim.now() + 10 * kMillisecond);

  const MacAddress alice_mac = MacAddress::from_uint64(0xA11CE);
  const Ipv4Address alice_ip(10, 0, 0, 1);
  auto park_flow = [&] {
    of::PacketIn announce;
    announce.in_port = 0;
    announce.packet = gratuitous_arp(alice_mac, alice_ip);
    ch1.send_to_controller(std::move(announce));
    // Destination never announced: the setup parks awaiting its location.
    of::PacketIn pin;
    pin.in_port = 0;
    pin.packet = pkt::PacketBuilder()
                     .eth(alice_mac, MacAddress::from_uint64(0xCA201))
                     .ipv4(alice_ip, Ipv4Address(10, 0, 0, 9), pkt::IpProto::kUdp)
                     .udp(5000, 80)
                     .finalize();
    ch1.send_to_controller(std::move(pin));
    sim.run_until(sim.now() + 10 * kMillisecond);
  };

  park_flow();
  ASSERT_EQ(controller.pending_setup_count(), 1u);

  // Disconnect: the parked setup waits on a dead ingress; it must go.
  ch1.disconnect();
  sim.run_until(sim.now() + 10 * kMillisecond);
  EXPECT_EQ(controller.pending_setup_count(), 0u);
  EXPECT_GE(controller.stats().fastpath.pending_setups_expired, 1u);

  // Reconnect and park again; a repeated handshake for the same dpid (the
  // switch process restarted without the disconnect ever being seen) must
  // also clear its pending entries, not leave them to dangle.
  ch1.connect(features1);
  sim.run_until(sim.now() + 10 * kMillisecond);
  park_flow();
  ASSERT_EQ(controller.pending_setup_count(), 1u);
  controller.handle_switch_connected(1, features1);
  EXPECT_EQ(controller.pending_setup_count(), 0u);
}

}  // namespace
}  // namespace livesec
