// Unit tests for the discrete-event kernel and the Node/Port/Link substrate.
#include <gtest/gtest.h>

#include <vector>

#include "packet/packet.h"
#include "sim/event_queue.h"
#include "sim/node.h"
#include "sim/simulator.h"

namespace livesec::sim {
namespace {

TEST(EventQueue, OrdersByTimeThenSequence) {
  EventQueue q;
  std::vector<int> order;
  q.push(10, [&] { order.push_back(1); });
  q.push(5, [&] { order.push_back(2); });
  q.push(10, [&] { order.push_back(3); });
  q.push(1, [&] { order.push_back(4); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{4, 2, 1, 3}));
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule(100, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule(100, [&] { ++fired; });
  sim.schedule(200, [&] { ++fired; });
  sim.run_until(150);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 150);
  sim.run_until(250);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, NestedSchedulingWorks) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule(10, [&] {
    times.push_back(sim.now());
    sim.schedule(10, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 20}));
}

TEST(Simulator, SameTimeEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.schedule(5, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

/// A node that records everything it receives.
class SinkNode : public Node {
 public:
  SinkNode(Simulator& sim, std::string name) : Node(sim, std::move(name)) { add_port(); }
  void handle_packet(PortId in_port, pkt::PacketPtr packet) override {
    arrivals.emplace_back(simulator().now(), in_port);
    packets.push_back(std::move(packet));
  }
  std::vector<std::pair<SimTime, PortId>> arrivals;
  std::vector<pkt::PacketPtr> packets;
};

class SourceNode : public Node {
 public:
  SourceNode(Simulator& sim) : Node(sim, "src") { add_port(); }
  void handle_packet(PortId, pkt::PacketPtr) override {}
  void emit(pkt::PacketPtr p) { send(0, std::move(p)); }
};

pkt::PacketPtr test_packet(std::size_t payload = 1000) {
  return pkt::PacketBuilder()
      .eth(MacAddress::from_uint64(1), MacAddress::from_uint64(2))
      .ipv4(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), pkt::IpProto::kUdp)
      .udp(1111, 2222)
      .payload_size(payload)
      .finalize();
}

TEST(Link, DeliversAfterSerializationPlusPropagation) {
  Simulator sim;
  SourceNode src(sim);
  SinkNode dst(sim, "dst");
  Link::Config config;
  config.bandwidth_bps = 1e9;
  config.propagation_delay = 5 * kMicrosecond;
  auto link = connect(sim, src.port(0), dst.port(0), config);

  auto p = test_packet(1000);
  const SimTime serialization =
      static_cast<SimTime>(static_cast<double>(p->wire_size()) * 8.0 / 1e9 * kSecond);
  src.emit(p);
  sim.run();
  ASSERT_EQ(dst.arrivals.size(), 1u);
  EXPECT_EQ(dst.arrivals[0].first, serialization + config.propagation_delay);
}

TEST(Link, BandwidthCapsThroughput) {
  Simulator sim;
  SourceNode src(sim);
  SinkNode dst(sim, "dst");
  Link::Config config;
  config.bandwidth_bps = 100e6;  // 100 Mbps
  config.propagation_delay = 0;
  config.max_queue_bytes = 1 << 30;  // no tail drop for this test
  auto link = connect(sim, src.port(0), dst.port(0), config);

  // Offer 1000 packets instantaneously; drain time must match 100 Mbps.
  std::uint64_t offered_bytes = 0;
  for (int i = 0; i < 1000; ++i) {
    auto p = test_packet(1400);
    offered_bytes += p->wire_size();
    src.emit(std::move(p));
  }
  sim.run();
  ASSERT_EQ(dst.arrivals.size(), 1000u);
  const double seconds = to_seconds(sim.now());
  const double rate = static_cast<double>(offered_bytes) * 8.0 / seconds;
  EXPECT_NEAR(rate, 100e6, 1e6);
}

TEST(Link, TailDropsWhenQueueOverflows) {
  Simulator sim;
  SourceNode src(sim);
  SinkNode dst(sim, "dst");
  Link::Config config;
  config.bandwidth_bps = 1e6;  // slow link
  config.max_queue_bytes = 5000;
  auto link = connect(sim, src.port(0), dst.port(0), config);

  for (int i = 0; i < 100; ++i) src.emit(test_packet(1400));
  sim.run();
  EXPECT_LT(dst.arrivals.size(), 100u);
  EXPECT_GT(link->dropped_packets(), 0u);
  EXPECT_EQ(dst.arrivals.size() + link->dropped_packets(), 100u);
}

TEST(Link, FullDuplexDirectionsAreIndependent) {
  Simulator sim;
  SourceNode a(sim);
  SourceNode b(sim);
  Link::Config config;
  config.bandwidth_bps = 1e9;
  config.propagation_delay = 1 * kMicrosecond;
  auto link = connect(sim, a.port(0), b.port(0), config);

  // Saturate a->b; a single b->a packet must not queue behind it.
  for (int i = 0; i < 100; ++i) a.emit(test_packet(1400));
  b.emit(test_packet(100));
  sim.run();
  // b->a delivered long before all a->b: check counters only (both sides
  // received), as SourceNode ignores arrivals.
  EXPECT_EQ(a.port(0).rx_packets(), 1u);
  EXPECT_EQ(b.port(0).rx_packets(), 100u);
}

TEST(Port, UnwiredTransmitCountsAsDrop) {
  Simulator sim;
  SourceNode src(sim);
  src.emit(test_packet());
  sim.run();
  EXPECT_EQ(src.port(0).dropped(), 1u);
  EXPECT_EQ(src.port(0).tx_packets(), 0u);
}

TEST(Port, CountersTrackTraffic) {
  Simulator sim;
  SourceNode src(sim);
  SinkNode dst(sim, "dst");
  auto link = connect(sim, src.port(0), dst.port(0));
  auto p = test_packet(500);
  const std::size_t size = p->wire_size();
  src.emit(p);
  sim.run();
  EXPECT_EQ(src.port(0).tx_packets(), 1u);
  EXPECT_EQ(src.port(0).tx_bytes(), size);
  EXPECT_EQ(dst.port(0).rx_packets(), 1u);
  EXPECT_EQ(dst.port(0).rx_bytes(), size);
}

}  // namespace
}  // namespace livesec::sim
