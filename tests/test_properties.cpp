// Model-based and randomized property tests over core invariants:
//  - FlowTable behaves like a reference model under random operation mixes
//  - Match::covers soundness (non-strict delete never misses covered entries)
//  - EventStore range queries agree with a naive filter
//  - LoadBalancer keeps every SE utilized under skewed user populations
//  - DaemonMessage/Trace codecs survive random payload fuzz without crashing
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "common/random.h"
#include "controller/load_balancer.h"
#include "monitor/event_store.h"
#include "monitor/trace.h"
#include "openflow/flow_table.h"
#include "services/message.h"

namespace livesec {
namespace {

pkt::FlowKey random_key(Rng& rng, int space = 4) {
  pkt::FlowKey key;
  key.dl_src = MacAddress::from_uint64(rng.uniform(1, static_cast<std::uint64_t>(space)));
  key.dl_dst = MacAddress::from_uint64(rng.uniform(1, static_cast<std::uint64_t>(space)));
  key.dl_type = 0x0800;
  key.nw_src = Ipv4Address(static_cast<std::uint32_t>((10u << 24) | rng.uniform(1, 4)));
  key.nw_dst = Ipv4Address(static_cast<std::uint32_t>((10u << 24) | rng.uniform(1, 4)));
  key.nw_proto = rng.chance(0.5) ? 6 : 17;
  key.tp_src = static_cast<std::uint16_t>(rng.uniform(1000, 1000 + 3));
  key.tp_dst = static_cast<std::uint16_t>(rng.uniform(80, 83));
  return key;
}

/// Reference model: a plain list scanned by (priority desc, specificity
/// desc, insertion asc) — the specified FlowTable semantics.
struct ModelEntry {
  of::Match match;
  std::uint16_t priority;
  int output;
  std::uint64_t seq;
};

const ModelEntry* model_lookup(const std::vector<ModelEntry>& model, PortId in_port,
                               const pkt::FlowKey& key) {
  const ModelEntry* best = nullptr;
  for (const auto& e : model) {
    if (!e.match.matches(in_port, key)) continue;
    if (best == nullptr || e.priority > best->priority ||
        (e.priority == best->priority && e.match.specificity() > best->match.specificity()) ||
        (e.priority == best->priority && e.match.specificity() == best->match.specificity() &&
         e.seq < best->seq)) {
      best = &e;
    }
  }
  return best;
}

TEST(FlowTableModel, RandomOperationsAgreeWithReference) {
  Rng rng(2024);
  of::FlowTable table;
  std::vector<ModelEntry> model;
  std::uint64_t seq = 0;

  for (int step = 0; step < 2000; ++step) {
    const double dice = rng.uniform01();
    if (dice < 0.45) {
      // Random add: sometimes exact, sometimes partially wildcarded.
      const pkt::FlowKey key = random_key(rng);
      of::Match match;
      if (rng.chance(0.5)) {
        match = of::Match::exact(static_cast<PortId>(rng.uniform(0, 2)), key);
      } else {
        if (rng.chance(0.7)) match.nw_proto(key.nw_proto);
        if (rng.chance(0.7)) match.tp_dst(key.tp_dst);
        if (rng.chance(0.3)) match.dl_src(key.dl_src);
      }
      const auto priority = static_cast<std::uint16_t>(rng.uniform(1, 5) * 10);
      const int output = static_cast<int>(rng.uniform(0, 100));

      of::FlowEntry entry;
      entry.match = match;
      entry.priority = priority;
      entry.actions = of::output_to(static_cast<PortId>(output));
      table.add(entry, step);

      // Model add-or-replace.
      bool replaced = false;
      for (auto& m : model) {
        if (m.priority == priority && m.match == match) {
          m.output = output;
          replaced = true;
          break;
        }
      }
      if (!replaced) model.push_back(ModelEntry{match, priority, output, seq++});
    } else if (dice < 0.55 && !model.empty()) {
      // Strict delete of a random known entry.
      const auto& victim = model[rng.uniform(0, model.size() - 1)];
      const of::Match match = victim.match;
      const std::uint16_t priority = victim.priority;
      table.remove_strict(match, priority, step);
      std::erase_if(model, [&](const ModelEntry& m) {
        return m.priority == priority && m.match == match;
      });
    } else {
      // Lookup must agree with the model (no timeouts configured).
      const pkt::FlowKey key = random_key(rng);
      const PortId in_port = static_cast<PortId>(rng.uniform(0, 2));
      const of::FlowEntry* got = table.peek(in_port, key, step);
      const ModelEntry* want = model_lookup(model, in_port, key);
      ASSERT_EQ(got != nullptr, want != nullptr) << "step " << step;
      if (got != nullptr) {
        ASSERT_EQ(got->priority, want->priority) << "step " << step;
        ASSERT_EQ(got->match.specificity(), want->match.specificity()) << "step " << step;
        ASSERT_EQ(std::get<of::ActionOutput>(got->actions[0]).port,
                  static_cast<PortId>(want->output))
            << "step " << step;
      }
    }
  }
  EXPECT_EQ(table.size(), model.size());
}

TEST(MatchCovers, NonStrictDeleteRemovesExactlyCoveredEntries) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    of::FlowTable table;
    std::vector<std::pair<of::Match, pkt::FlowKey>> entries;
    for (int i = 0; i < 20; ++i) {
      const pkt::FlowKey key = random_key(rng);
      of::FlowEntry e;
      e.match = of::Match::exact(0, key);
      // Random keys over a small space collide; OFPFC_ADD replaces
      // duplicates, so keep the reference list duplicate-free too.
      const bool duplicate = std::any_of(entries.begin(), entries.end(), [&](const auto& known) {
        return known.first == e.match;
      });
      e.actions = of::output_to(1);
      table.add(e, 0);
      if (!duplicate) entries.emplace_back(e.match, key);
    }
    const std::size_t before = table.size();

    // Delete everything matching a random single-field filter.
    of::Match filter;
    const pkt::FlowKey probe = random_key(rng);
    filter.tp_dst(probe.tp_dst);
    const std::size_t removed = table.remove_matching(filter, 1);

    // Soundness: every surviving entry must NOT match the filter's key
    // space; every removed one must have (exact entries: key.tp_dst equal).
    std::size_t expected = 0;
    for (const auto& [match, key] : entries) {
      if (key.tp_dst == probe.tp_dst) ++expected;
    }
    EXPECT_EQ(removed, expected) << "trial " << trial;
    EXPECT_EQ(table.size(), before - removed);
    for (const auto& e : table.entries()) {
      EXPECT_NE(e.match.tp_dst_value(), probe.tp_dst);
    }
  }
}

TEST(EventStoreModel, RangeQueriesAgreeWithNaiveFilter) {
  Rng rng(3);
  mon::EventStore store;
  std::vector<mon::NetworkEvent> naive;
  SimTime t = 0;
  for (int i = 0; i < 500; ++i) {
    t += static_cast<SimTime>(rng.uniform(0, 5));
    mon::NetworkEvent e;
    e.time = t;
    e.type = static_cast<mon::EventType>(1 + rng.uniform(0, 11));
    e.subject = "s" + std::to_string(rng.uniform(0, 5));
    store.append(e);
    e.id = store.at(store.size() - 1).id;
    naive.push_back(e);
  }
  for (int q = 0; q < 100; ++q) {
    const SimTime from = static_cast<SimTime>(rng.uniform(0, static_cast<std::uint64_t>(t)));
    const SimTime to = from + static_cast<SimTime>(rng.uniform(0, 500));
    const auto got = store.query_range(from, to);
    std::size_t want = 0;
    for (const auto& e : naive) {
      if (e.time >= from && e.time < to) ++want;
    }
    ASSERT_EQ(got.size(), want) << "query " << q;
    // Ordering & bounds.
    for (std::size_t i = 1; i < got.size(); ++i) {
      ASSERT_LE(got[i - 1].time, got[i].time);
    }
    for (const auto& e : got) {
      ASSERT_GE(e.time, from);
      ASSERT_LT(e.time, to);
    }
  }
}

TEST(LoadBalancerProperty, SkewedUsersStillUseWholePoolPerFlow) {
  ctrl::ServiceRegistry registry;
  for (std::uint64_t id = 1; id <= 5; ++id) {
    svc::OnlineMessage online;
    online.service = svc::ServiceType::kIntrusionDetection;
    registry.handle_online(id, MacAddress::from_uint64(id), Ipv4Address(), 1,
                           static_cast<PortId>(id), online, 0);
  }
  ctrl::LoadBalancer lb(ctrl::LbStrategy::kMinLoad);
  Rng rng(5);
  std::map<std::uint64_t, int> counts;
  // Zipf-skewed user population: one heavy hitter, many light users.
  for (int i = 0; i < 1000; ++i) {
    const std::size_t user = rng.zipf(20, 1.3);
    pkt::FlowKey key = random_key(rng, 2);
    key.dl_src = MacAddress::from_uint64(0x1000 + user);
    key.tp_src = static_cast<std::uint16_t>(10000 + i);  // distinct flows
    const auto pick = lb.assign(registry, svc::ServiceType::kIntrusionDetection, key,
                                ctrl::LbGranularity::kPerFlow);
    ASSERT_TRUE(pick.has_value());
    counts[*pick]++;
  }
  ASSERT_EQ(counts.size(), 5u);  // every SE used
  int min = 1 << 30, max = 0;
  for (const auto& [id, c] : counts) {
    min = std::min(min, c);
    max = std::max(max, c);
  }
  // Flow-grain balancing is immune to user skew: near-uniform spread.
  EXPECT_LE(max - min, 1000 / 5 / 4);
}

TEST(CodecFuzz, DaemonMessageDecodeNeverCrashesOnRandomBytes) {
  std::mt19937_64 rng(99);
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::uint8_t> bytes(rng() % 128);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    // Must not crash; almost always rejects (magic mismatch).
    const auto decoded = svc::DaemonMessage::decode(bytes);
    if (decoded) {
      // If it decoded, re-encoding must reproduce a decodable message.
      EXPECT_TRUE(svc::DaemonMessage::decode(decoded->encode()).has_value());
    }
  }
}

TEST(CodecFuzz, PacketParseNeverCrashesOnRandomBytes) {
  std::mt19937_64 rng(7);
  std::size_t parsed_ok = 0;
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::uint8_t> bytes(rng() % 200);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    if (pkt::Packet::parse(bytes)) ++parsed_ok;
  }
  (void)parsed_ok;  // value irrelevant; absence of UB/crash is the property
}

TEST(CodecFuzz, TraceDeserializeNeverCrashesOnRandomBytes) {
  std::mt19937_64 rng(13);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> bytes(rng() % 256);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    (void)mon::Trace::deserialize(bytes);
  }
}

}  // namespace
}  // namespace livesec
