// Model-based and randomized property tests over core invariants:
//  - FlowTable behaves like a reference model under random operation mixes
//  - Match::covers soundness (non-strict delete never misses covered entries)
//  - EventStore range queries agree with a naive filter
//  - LoadBalancer keeps every SE utilized under skewed user populations
//  - DaemonMessage/Trace codecs survive random payload fuzz without crashing
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "common/random.h"
#include "controller/load_balancer.h"
#include "monitor/event_store.h"
#include "monitor/trace.h"
#include "openflow/flow_table.h"
#include "services/message.h"

namespace livesec {
namespace {

pkt::FlowKey random_key(Rng& rng, int space = 4) {
  pkt::FlowKey key;
  key.dl_src = MacAddress::from_uint64(rng.uniform(1, static_cast<std::uint64_t>(space)));
  key.dl_dst = MacAddress::from_uint64(rng.uniform(1, static_cast<std::uint64_t>(space)));
  key.dl_type = 0x0800;
  key.nw_src = Ipv4Address(static_cast<std::uint32_t>((10u << 24) | rng.uniform(1, 4)));
  key.nw_dst = Ipv4Address(static_cast<std::uint32_t>((10u << 24) | rng.uniform(1, 4)));
  key.nw_proto = rng.chance(0.5) ? 6 : 17;
  key.tp_src = static_cast<std::uint16_t>(rng.uniform(1000, 1000 + 3));
  key.tp_dst = static_cast<std::uint16_t>(rng.uniform(80, 83));
  return key;
}

/// Reference model: a plain list scanned by (priority desc, specificity
/// desc, insertion asc) — the specified FlowTable semantics.
struct ModelEntry {
  of::Match match;
  std::uint16_t priority;
  int output;
  std::uint64_t seq;
};

const ModelEntry* model_lookup(const std::vector<ModelEntry>& model, PortId in_port,
                               const pkt::FlowKey& key) {
  const ModelEntry* best = nullptr;
  for (const auto& e : model) {
    if (!e.match.matches(in_port, key)) continue;
    if (best == nullptr || e.priority > best->priority ||
        (e.priority == best->priority && e.match.specificity() > best->match.specificity()) ||
        (e.priority == best->priority && e.match.specificity() == best->match.specificity() &&
         e.seq < best->seq)) {
      best = &e;
    }
  }
  return best;
}

TEST(FlowTableModel, RandomOperationsAgreeWithReference) {
  Rng rng(2024);
  of::FlowTable table;
  std::vector<ModelEntry> model;
  std::uint64_t seq = 0;

  for (int step = 0; step < 2000; ++step) {
    const double dice = rng.uniform01();
    if (dice < 0.45) {
      // Random add: sometimes exact, sometimes partially wildcarded.
      const pkt::FlowKey key = random_key(rng);
      of::Match match;
      if (rng.chance(0.5)) {
        match = of::Match::exact(static_cast<PortId>(rng.uniform(0, 2)), key);
      } else {
        if (rng.chance(0.7)) match.nw_proto(key.nw_proto);
        if (rng.chance(0.7)) match.tp_dst(key.tp_dst);
        if (rng.chance(0.3)) match.dl_src(key.dl_src);
      }
      const auto priority = static_cast<std::uint16_t>(rng.uniform(1, 5) * 10);
      const int output = static_cast<int>(rng.uniform(0, 100));

      of::FlowEntry entry;
      entry.match = match;
      entry.priority = priority;
      entry.actions = of::output_to(static_cast<PortId>(output));
      table.add(entry, step);

      // Model add-or-replace.
      bool replaced = false;
      for (auto& m : model) {
        if (m.priority == priority && m.match == match) {
          m.output = output;
          replaced = true;
          break;
        }
      }
      if (!replaced) model.push_back(ModelEntry{match, priority, output, seq++});
    } else if (dice < 0.55 && !model.empty()) {
      // Strict delete of a random known entry.
      const auto& victim = model[rng.uniform(0, model.size() - 1)];
      const of::Match match = victim.match;
      const std::uint16_t priority = victim.priority;
      table.remove_strict(match, priority, step);
      std::erase_if(model, [&](const ModelEntry& m) {
        return m.priority == priority && m.match == match;
      });
    } else {
      // Lookup must agree with the model (no timeouts configured).
      const pkt::FlowKey key = random_key(rng);
      const PortId in_port = static_cast<PortId>(rng.uniform(0, 2));
      const of::FlowEntry* got = table.peek(in_port, key, step);
      const ModelEntry* want = model_lookup(model, in_port, key);
      ASSERT_EQ(got != nullptr, want != nullptr) << "step " << step;
      if (got != nullptr) {
        ASSERT_EQ(got->priority, want->priority) << "step " << step;
        ASSERT_EQ(got->match.specificity(), want->match.specificity()) << "step " << step;
        ASSERT_EQ(std::get<of::ActionOutput>(got->actions[0]).port,
                  static_cast<PortId>(want->output))
            << "step " << step;
      }
    }
  }
  EXPECT_EQ(table.size(), model.size());
}

/// Reference entry replicating the pre-fast-path table semantics including
/// counters and timeouts; scanned linearly in (priority, specificity, seq)
/// order like the model above.
struct TimedModelEntry {
  of::Match match;
  std::uint16_t priority = 0;
  SimTime idle_timeout = 0;
  SimTime hard_timeout = 0;
  SimTime installed_at = 0;
  SimTime last_hit = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  std::uint64_t seq = 0;
  std::uint64_t cookie = 0;

  bool expired(SimTime now) const {
    if (hard_timeout > 0 && now - installed_at >= hard_timeout) return true;
    if (idle_timeout > 0 && now - last_hit >= idle_timeout) return true;
    return false;
  }
  of::RemovalReason reason(SimTime now) const {
    return (hard_timeout > 0 && now - installed_at >= hard_timeout)
               ? of::RemovalReason::kHardTimeout
               : of::RemovalReason::kIdleTimeout;
  }
};

// The O(1) exact tier plus the timeout wheel must be observationally
// equivalent to the old expire-then-scan table: same hits, same counters,
// same set of expirations (the wheel may fire them in deadline order rather
// than table order, so removals are compared as multisets).
TEST(FlowTableModel, TimeoutsAndCountersAgreeWithReferenceScan) {
  Rng rng(4096);
  of::FlowTable table;
  std::vector<TimedModelEntry> model;
  std::vector<std::pair<std::uint64_t, of::RemovalReason>> table_removed;
  std::vector<std::pair<std::uint64_t, of::RemovalReason>> model_removed;
  table.set_removal_callback([&](const of::FlowEntry& e, of::RemovalReason r) {
    table_removed.emplace_back(e.cookie, r);
  });

  std::uint64_t seq = 0;
  std::uint64_t next_cookie = 1;
  SimTime now = 0;

  const auto model_expire = [&](SimTime t) {
    for (const auto& m : model) {
      if (m.expired(t)) model_removed.emplace_back(m.cookie, m.reason(t));
    }
    std::erase_if(model, [&](const TimedModelEntry& m) { return m.expired(t); });
  };

  for (int step = 0; step < 3000; ++step) {
    now += rng.uniform(0, 5);
    // Keep both sides time-synchronized before every operation.
    table.expire(now);
    model_expire(now);

    const double dice = rng.uniform01();
    if (dice < 0.4) {
      const pkt::FlowKey key = random_key(rng);
      of::Match match;
      if (rng.chance(0.6)) {
        match = of::Match::exact(static_cast<PortId>(rng.uniform(0, 2)), key);
      } else {
        if (rng.chance(0.7)) match.nw_proto(key.nw_proto);
        if (rng.chance(0.7)) match.tp_dst(key.tp_dst);
      }
      of::FlowEntry entry;
      entry.match = match;
      entry.priority = static_cast<std::uint16_t>(rng.uniform(1, 5) * 10);
      entry.idle_timeout = rng.chance(0.5) ? static_cast<SimTime>(rng.uniform(2, 12)) : 0;
      entry.hard_timeout = rng.chance(0.3) ? static_cast<SimTime>(rng.uniform(5, 20)) : 0;
      entry.cookie = next_cookie++;
      entry.actions = of::output_to(1);
      table.add(entry, now);

      bool replaced = false;
      for (auto& m : model) {
        if (m.priority == entry.priority && m.match == match) {
          // Replace in place: new timeouts/cookie, counters reset, seq kept.
          m.idle_timeout = entry.idle_timeout;
          m.hard_timeout = entry.hard_timeout;
          m.installed_at = m.last_hit = now;
          m.packet_count = m.byte_count = 0;
          m.cookie = entry.cookie;
          replaced = true;
          break;
        }
      }
      if (!replaced) {
        TimedModelEntry m;
        m.match = match;
        m.priority = entry.priority;
        m.idle_timeout = entry.idle_timeout;
        m.hard_timeout = entry.hard_timeout;
        m.installed_at = m.last_hit = now;
        m.seq = seq++;
        m.cookie = entry.cookie;
        model.push_back(m);
      }
    } else if (dice < 0.5 && !model.empty()) {
      const auto& victim = model[rng.uniform(0, model.size() - 1)];
      const of::Match match = victim.match;
      const std::uint16_t priority = victim.priority;
      const std::uint64_t cookie = victim.cookie;
      const std::size_t removed = table.remove_strict(match, priority, now);
      ASSERT_EQ(removed, 1u) << "step " << step;
      model_removed.emplace_back(cookie, of::RemovalReason::kDelete);
      std::erase_if(model, [&](const TimedModelEntry& m) {
        return m.priority == priority && m.match == match;
      });
    } else {
      const pkt::FlowKey key = random_key(rng);
      const PortId in_port = static_cast<PortId>(rng.uniform(0, 2));
      const std::size_t bytes = rng.uniform(40, 1500);
      const of::FlowEntry* got = table.lookup(in_port, key, bytes, now);

      TimedModelEntry* want = nullptr;
      for (auto& m : model) {
        if (!m.match.matches(in_port, key)) continue;
        if (want == nullptr || m.priority > want->priority ||
            (m.priority == want->priority &&
             m.match.specificity() > want->match.specificity()) ||
            (m.priority == want->priority &&
             m.match.specificity() == want->match.specificity() && m.seq < want->seq)) {
          want = &m;
        }
      }
      ASSERT_EQ(got != nullptr, want != nullptr) << "step " << step;
      if (got != nullptr) {
        want->packet_count += 1;
        want->byte_count += bytes;
        want->last_hit = now;
        ASSERT_EQ(got->priority, want->priority) << "step " << step;
        ASSERT_EQ(got->cookie, want->cookie) << "step " << step;
        ASSERT_EQ(got->packet_count, want->packet_count) << "step " << step;
        ASSERT_EQ(got->byte_count, want->byte_count) << "step " << step;
      }
    }
    ASSERT_EQ(table.size(), model.size()) << "step " << step;
  }

  // Flush everything still pending, then the removal histories must agree
  // as multisets (the wheel fires in deadline order, the scan in table
  // order; the set of (cookie, reason) events must be identical).
  now += 1000000;
  table.expire(now);
  model_expire(now);
  std::sort(table_removed.begin(), table_removed.end());
  std::sort(model_removed.begin(), model_removed.end());
  EXPECT_EQ(table_removed, model_removed);
}

TEST(MatchCovers, NonStrictDeleteRemovesExactlyCoveredEntries) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    of::FlowTable table;
    std::vector<std::pair<of::Match, pkt::FlowKey>> entries;
    for (int i = 0; i < 20; ++i) {
      const pkt::FlowKey key = random_key(rng);
      of::FlowEntry e;
      e.match = of::Match::exact(0, key);
      // Random keys over a small space collide; OFPFC_ADD replaces
      // duplicates, so keep the reference list duplicate-free too.
      const bool duplicate = std::any_of(entries.begin(), entries.end(), [&](const auto& known) {
        return known.first == e.match;
      });
      e.actions = of::output_to(1);
      table.add(e, 0);
      if (!duplicate) entries.emplace_back(e.match, key);
    }
    const std::size_t before = table.size();

    // Delete everything matching a random single-field filter.
    of::Match filter;
    const pkt::FlowKey probe = random_key(rng);
    filter.tp_dst(probe.tp_dst);
    const std::size_t removed = table.remove_matching(filter, 1);

    // Soundness: every surviving entry must NOT match the filter's key
    // space; every removed one must have (exact entries: key.tp_dst equal).
    std::size_t expected = 0;
    for (const auto& [match, key] : entries) {
      if (key.tp_dst == probe.tp_dst) ++expected;
    }
    EXPECT_EQ(removed, expected) << "trial " << trial;
    EXPECT_EQ(table.size(), before - removed);
    for (const auto& e : table.entries()) {
      EXPECT_NE(e.match.tp_dst_value(), probe.tp_dst);
    }
  }
}

TEST(EventStoreModel, RangeQueriesAgreeWithNaiveFilter) {
  Rng rng(3);
  mon::EventStore store;
  std::vector<mon::NetworkEvent> naive;
  SimTime t = 0;
  for (int i = 0; i < 500; ++i) {
    t += static_cast<SimTime>(rng.uniform(0, 5));
    mon::NetworkEvent e;
    e.time = t;
    e.type = static_cast<mon::EventType>(1 + rng.uniform(0, 11));
    e.subject = "s" + std::to_string(rng.uniform(0, 5));
    store.append(e);
    e.id = store.at(store.size() - 1).id;
    naive.push_back(e);
  }
  for (int q = 0; q < 100; ++q) {
    const SimTime from = static_cast<SimTime>(rng.uniform(0, static_cast<std::uint64_t>(t)));
    const SimTime to = from + static_cast<SimTime>(rng.uniform(0, 500));
    const auto got = store.query_range(from, to);
    std::size_t want = 0;
    for (const auto& e : naive) {
      if (e.time >= from && e.time < to) ++want;
    }
    ASSERT_EQ(got.size(), want) << "query " << q;
    // Ordering & bounds.
    for (std::size_t i = 1; i < got.size(); ++i) {
      ASSERT_LE(got[i - 1].time, got[i].time);
    }
    for (const auto& e : got) {
      ASSERT_GE(e.time, from);
      ASSERT_LT(e.time, to);
    }
  }
}

TEST(LoadBalancerProperty, SkewedUsersStillUseWholePoolPerFlow) {
  ctrl::ServiceRegistry registry;
  for (std::uint64_t id = 1; id <= 5; ++id) {
    svc::OnlineMessage online;
    online.service = svc::ServiceType::kIntrusionDetection;
    registry.handle_online(id, MacAddress::from_uint64(id), Ipv4Address(), 1,
                           static_cast<PortId>(id), online, 0);
  }
  ctrl::LoadBalancer lb(ctrl::LbStrategy::kMinLoad);
  Rng rng(5);
  std::map<std::uint64_t, int> counts;
  // Zipf-skewed user population: one heavy hitter, many light users.
  for (int i = 0; i < 1000; ++i) {
    const std::size_t user = rng.zipf(20, 1.3);
    pkt::FlowKey key = random_key(rng, 2);
    key.dl_src = MacAddress::from_uint64(0x1000 + user);
    key.tp_src = static_cast<std::uint16_t>(10000 + i);  // distinct flows
    const auto pick = lb.assign(registry, svc::ServiceType::kIntrusionDetection, key,
                                ctrl::LbGranularity::kPerFlow);
    ASSERT_TRUE(pick.has_value());
    counts[*pick]++;
  }
  ASSERT_EQ(counts.size(), 5u);  // every SE used
  int min = 1 << 30, max = 0;
  for (const auto& [id, c] : counts) {
    min = std::min(min, c);
    max = std::max(max, c);
  }
  // Flow-grain balancing is immune to user skew: near-uniform spread.
  EXPECT_LE(max - min, 1000 / 5 / 4);
}

TEST(CodecFuzz, DaemonMessageDecodeNeverCrashesOnRandomBytes) {
  std::mt19937_64 rng(99);
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::uint8_t> bytes(rng() % 128);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    // Must not crash; almost always rejects (magic mismatch).
    const auto decoded = svc::DaemonMessage::decode(bytes);
    if (decoded) {
      // If it decoded, re-encoding must reproduce a decodable message.
      EXPECT_TRUE(svc::DaemonMessage::decode(decoded->encode()).has_value());
    }
  }
}

TEST(CodecFuzz, PacketParseNeverCrashesOnRandomBytes) {
  std::mt19937_64 rng(7);
  std::size_t parsed_ok = 0;
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::uint8_t> bytes(rng() % 200);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    if (pkt::Packet::parse(bytes)) ++parsed_ok;
  }
  (void)parsed_ok;  // value irrelevant; absence of UB/crash is the property
}

TEST(CodecFuzz, TraceDeserializeNeverCrashesOnRandomBytes) {
  std::mt19937_64 rng(13);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> bytes(rng() % 256);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    (void)mon::Trace::deserialize(bytes);
  }
}

}  // namespace
}  // namespace livesec
