// Verdict-driven flow offload (service-chain fast path): the paper's 4-entry
// redirect shape (§IV.A), its rewrite into the direct path after a benign
// VERDICT, the offload memo's replay/invalidation semantics, and the
// interaction with SE offline, host moves, policy mutation and HA failover.
#include <gtest/gtest.h>

#include "monitor/webui.h"
#include "net/network.h"
#include "net/traffic.h"

namespace livesec {
namespace {

using net::Network;

constexpr SimTime kForever = std::numeric_limits<SimTime>::max();

/// src@ovs1, dst@ovs2, SE@ovs3: the SE sits on a *third* switch, so one
/// direction of a steered flow needs all four entries of paper §IV.A
/// (ingress steer, SE-switch arrival, SE-switch return, egress).
struct ChainNet {
  Network network;
  sw::EthernetSwitch& backbone;
  sw::OpenFlowSwitch& ovs1;
  sw::OpenFlowSwitch& ovs2;
  sw::OpenFlowSwitch& ovs3;
  net::Host& alice;
  net::Host& bob;

  explicit ChainNet(ctrl::Controller::Config config = {})
      : network(config),
        backbone(network.add_legacy_switch("backbone")),
        ovs1(network.add_as_switch("ovs1", backbone)),
        ovs2(network.add_as_switch("ovs2", backbone)),
        ovs3(network.add_as_switch("ovs3", backbone)),
        alice(network.add_host("alice", ovs1)),
        bob(network.add_host("bob", ovs2)) {}

  svc::ServiceElement& add_ids(std::uint64_t verdict_byte_budget) {
    svc::ServiceElement::Config config;
    config.verdict_byte_budget = verdict_byte_budget;
    return network.add_service_element(svc::ServiceType::kIntrusionDetection, ovs3, config);
  }

  void add_udp_redirect_policy() {
    ctrl::Policy policy;
    policy.name = "udp-via-ids";
    policy.nw_proto = 17;
    policy.tp_dst = 9000;
    policy.action = ctrl::PolicyAction::kRedirect;
    policy.service_chain = {svc::ServiceType::kIntrusionDetection};
    network.controller().policies().add(policy);
  }

  /// Forward key of the UdpCbrApp default flow alice -> bob.
  pkt::FlowKey udp_key() const {
    pkt::FlowKey key;
    key.dl_src = alice.mac();
    key.dl_dst = bob.mac();
    key.dl_type = static_cast<std::uint16_t>(pkt::EtherType::kIpv4);
    key.nw_src = alice.ip();
    key.nw_dst = bob.ip();
    key.nw_proto = static_cast<std::uint8_t>(pkt::IpProto::kUdp);
    key.tp_src = 40000;
    key.tp_dst = 9000;
    return key;
  }
};

// --- the paper's redirect geometry --------------------------------------------------

TEST(Offload, RedirectInstallsPaperFourEntryShape) {
  ChainNet net;
  net.add_ids(0);  // no verdicts: the base always-redirect behavior
  net.add_udp_redirect_policy();
  net.network.start();

  net::UdpCbrApp stream(net.alice, {.dst = net.bob.ip(), .rate_bps = 2e6,
                                    .duration = 500 * kMillisecond});
  stream.start();
  net.network.run_for(1 * kSecond);

  const pkt::FlowKey key = net.udp_key();
  // Paper §IV.A: four flow entries per direction when the SE lives on a
  // third switch — steer at ingress, deliver to the SE, pick up the SE's
  // return traffic, forward at egress. Both directions are preinstalled.
  EXPECT_EQ(net.network.controller().flow_entries(key).size(), 8u);
  EXPECT_EQ(net.network.controller().flow_se_ids(key).size(), 1u);
  EXPECT_GT(net.bob.rx_ip_packets(), 0u);
  EXPECT_FALSE(net.network.controller().flow_offloaded(key));
  EXPECT_EQ(net.network.controller().stats().flows_offloaded, 0u);
}

TEST(Offload, DirectFlowUsesTwoEntriesPerDirection) {
  ChainNet net;  // no policy, no SE: plain two-hop routing
  net.network.start();

  net::UdpCbrApp stream(net.alice, {.dst = net.bob.ip(), .rate_bps = 2e6,
                                    .duration = 300 * kMillisecond});
  stream.start();
  net.network.run_for(500 * kMillisecond);

  EXPECT_EQ(net.network.controller().flow_entries(net.udp_key()).size(), 4u);
}

// --- benign verdict -> cut-through --------------------------------------------------

TEST(Offload, BenignVerdictRewritesChainToDirectPath) {
  ChainNet net;
  svc::ServiceElement& ids = net.add_ids(4096);
  net.add_udp_redirect_policy();
  net.network.start();

  net::UdpCbrApp stream(net.alice, {.dst = net.bob.ip(), .rate_bps = 2e6,
                                    .duration = 2 * kSecond});
  stream.start();
  net.network.run_for(500 * kMillisecond);

  // ~3 clean packets crossed the 4 KiB budget: the SE reported benign and
  // the controller rewrote the chain in place.
  const pkt::FlowKey key = net.udp_key();
  const auto& ctrl = net.network.controller();
  EXPECT_GE(ids.verdicts_sent(), 1u);
  EXPECT_GE(ctrl.stats().verdict_messages, 1u);
  EXPECT_EQ(ctrl.stats().flows_offloaded, 1u);
  EXPECT_TRUE(ctrl.flow_offloaded(key));
  EXPECT_EQ(ctrl.offloaded_flow_count(), 1u);
  EXPECT_EQ(ctrl.flow_entries(key).size(), 4u);  // direct shape, SE legs deleted
  EXPECT_TRUE(ctrl.flow_se_ids(key).empty());
  EXPECT_EQ(ctrl.events().query_type(mon::EventType::kFlowOffloaded, 0, kForever).size(), 1u);

  // After the cut-through the SE stops seeing the flow while goodput
  // continues: that is the entire point of the fast path.
  const std::uint64_t se_after_offload = ids.processed_packets();
  const std::uint64_t rx_after_offload = net.bob.rx_ip_packets();
  net.network.run_for(1 * kSecond);
  EXPECT_LE(ids.processed_packets() - se_after_offload, 3u);  // in-flight tail only
  EXPECT_GT(net.bob.rx_ip_packets(), rx_after_offload + 100);
}

TEST(Offload, MaliciousVerdictBlocksInsteadOfOffloading) {
  ChainNet net;
  net.add_ids(512);
  ctrl::Policy policy;
  policy.name = "web-via-ids";
  policy.tp_dst = 80;
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kIntrusionDetection};
  net.network.controller().policies().add(policy);
  net::HttpServerApp server(net.bob, {.port = 80});
  net.network.start();

  net::AttackApp attacker(net.alice, {.server = net.bob.ip(), .packets = 30,
                                      .interval = 20 * kMillisecond});
  attacker.start();
  net.network.run_for(2 * kSecond);

  const auto& ctrl = net.network.controller();
  EXPECT_GE(ctrl.stats().verdict_messages, 1u);
  EXPECT_EQ(ctrl.stats().flows_offloaded, 0u);
  EXPECT_EQ(ctrl.offloaded_flow_count(), 0u);
  EXPECT_GE(ctrl.blocked_flow_count(), 1u);
  EXPECT_LT(server.requests_served(), 10u);
}

TEST(Offload, DisabledOffloadCountsVerdictsButKeepsRedirect) {
  ctrl::Controller::Config config;
  config.enable_flow_offload = false;
  ChainNet net(config);
  svc::ServiceElement& ids = net.add_ids(4096);
  net.add_udp_redirect_policy();
  net.network.start();

  net::UdpCbrApp stream(net.alice, {.dst = net.bob.ip(), .rate_bps = 2e6,
                                    .duration = 1 * kSecond});
  stream.start();
  net.network.run_for(1500 * kMillisecond);

  const auto& ctrl = net.network.controller();
  EXPECT_GE(ctrl.stats().verdict_messages, 1u);
  EXPECT_EQ(ctrl.stats().flows_offloaded, 0u);
  EXPECT_EQ(ctrl.flow_entries(net.udp_key()).size(), 8u);  // still steered
  EXPECT_GT(ids.processed_packets(), 10u);
}

// --- teardown paths -----------------------------------------------------------------

TEST(Offload, SeOfflineTearsDownSteeredFlow) {
  ChainNet net;
  svc::ServiceElement& ids = net.add_ids(0);
  net.add_udp_redirect_policy();
  net.network.start();

  net::UdpCbrApp stream(net.alice, {.dst = net.bob.ip(), .rate_bps = 2e6,
                                    .duration = 500 * kMillisecond});
  stream.start();
  net.network.run_for(1 * kSecond);
  const pkt::FlowKey key = net.udp_key();
  ASSERT_EQ(net.network.controller().flow_entries(key).size(), 8u);

  ids.stop();  // silent: heartbeats cease, liveness timeout expires the SE
  net.network.run_for(10 * kSecond);
  EXPECT_EQ(net.network.controller().services().size(), 0u);
  EXPECT_TRUE(net.network.controller().flow_entries(key).empty());
}

TEST(Offload, HostMoveTearsDownFlowAndInvalidatesMemo) {
  ChainNet net;
  net.add_ids(4096);
  net.add_udp_redirect_policy();
  net.network.start();

  net::UdpCbrApp stream(net.alice, {.dst = net.bob.ip(), .rate_bps = 2e6,
                                    .duration = 500 * kMillisecond});
  stream.start();
  net.network.run_for(1 * kSecond);
  const pkt::FlowKey key = net.udp_key();
  auto& ctrl = net.network.controller();
  ASSERT_TRUE(ctrl.flow_offloaded(key));

  // Bob roams to the SE's switch: the installed direct path is stale.
  net.network.move_host(net.bob, net.ovs3);
  net.network.run_for(500 * kMillisecond);
  EXPECT_TRUE(ctrl.flow_entries(key).empty());

  // The memoed verdict was taken against the old routing world: the next
  // setup of the flow must invalidate it and steer through the IDS again.
  net::UdpCbrApp again(net.alice, {.dst = net.bob.ip(), .rate_bps = 2e6,
                                   .duration = 500 * kMillisecond});
  again.start();
  net.network.run_for(1 * kSecond);
  EXPECT_GE(ctrl.stats().offload_invalidations, 1u);
  EXPECT_EQ(ctrl.stats().offload_replays, 0u);
  EXPECT_EQ(ctrl.flow_se_ids(key).size(), 1u);  // redirect-and-reinspect
}

// --- the offload memo ---------------------------------------------------------------

TEST(Offload, MemoReplaysDirectPathWithoutReinspection) {
  ChainNet net;
  svc::ServiceElement& ids = net.add_ids(4096);
  net.add_udp_redirect_policy();
  net.network.start();

  net::UdpCbrApp stream(net.alice, {.dst = net.bob.ip(), .rate_bps = 2e6,
                                    .duration = 500 * kMillisecond});
  stream.start();
  net.network.run_for(1 * kSecond);
  const pkt::FlowKey key = net.udp_key();
  auto& ctrl = net.network.controller();
  ASSERT_EQ(ctrl.stats().flows_offloaded, 1u);
  const std::uint64_t se_packets = ids.processed_packets();
  const std::uint64_t redirected = ctrl.stats().flows_redirected;

  // Idle past the flow timeout so the entries expire, then the same flow
  // returns: its benign verdict is replayed as a direct install — no detour,
  // no second inspection.
  net.network.run_for(15 * kSecond);
  net::UdpCbrApp again(net.alice, {.dst = net.bob.ip(), .rate_bps = 2e6,
                                   .duration = 500 * kMillisecond});
  again.start();
  net.network.run_for(1 * kSecond);

  EXPECT_EQ(ctrl.stats().offload_replays, 1u);
  EXPECT_EQ(ctrl.stats().flows_redirected, redirected);
  EXPECT_EQ(ctrl.flow_entries(key).size(), 4u);
  EXPECT_TRUE(ctrl.flow_se_ids(key).empty());
  EXPECT_LE(ids.processed_packets() - se_packets, 3u);
  EXPECT_GT(net.bob.rx_ip_packets(), 100u);
}

TEST(Offload, PolicyMutationInvalidatesMemo) {
  ChainNet net;
  net.add_ids(4096);
  net.add_udp_redirect_policy();
  net.network.start();

  net::UdpCbrApp stream(net.alice, {.dst = net.bob.ip(), .rate_bps = 2e6,
                                    .duration = 500 * kMillisecond});
  stream.start();
  net.network.run_for(1 * kSecond);
  const pkt::FlowKey key = net.udp_key();
  auto& ctrl = net.network.controller();
  ASSERT_TRUE(ctrl.flow_offloaded(key));
  net.network.run_for(15 * kSecond);  // entries idle out

  // Any policy push could change what inspection the flow deserves; the
  // memoed verdict must not survive it, even when the new policy is
  // unrelated to this flow.
  ctrl::Policy deny;
  deny.name = "deny-telnet";
  deny.tp_dst = 23;
  deny.nw_proto = 6;
  deny.action = ctrl::PolicyAction::kDeny;
  ctrl.policies().add(deny);

  net::UdpCbrApp again(net.alice, {.dst = net.bob.ip(), .rate_bps = 2e6,
                                   .duration = 500 * kMillisecond});
  again.start();
  net.network.run_for(1 * kSecond);

  EXPECT_GE(ctrl.stats().offload_invalidations, 1u);
  EXPECT_EQ(ctrl.stats().offload_replays, 0u);
  EXPECT_FALSE(ctrl.flow_offloaded(key));
  EXPECT_EQ(ctrl.flow_se_ids(key).size(), 1u);  // steered through the IDS again
}

TEST(Offload, LateDetectionAfterOffloadBlocksAndForgetsMemo) {
  ChainNet net;
  net.add_ids(1400);  // one clean full-MTU packet crosses the budget
  net.add_udp_redirect_policy();
  net.network.start();

  // Packet 1 crosses the budget clean -> benign verdict -> cut-through.
  // Packet 2 carries an IDS-rule payload (1013: udp "root:root") and is
  // already steered toward the SE when the rewrite lands: its late alert
  // must still map back to the flow, block it and revoke the memo.
  pkt::Packet clean = pkt::PacketBuilder()
                          .ipv4(net.alice.ip(), net.bob.ip(), pkt::IpProto::kUdp)
                          .udp(40000, 9000)
                          .payload_size(1400)
                          .build();
  net.alice.send_ip(std::move(clean));
  pkt::Packet attack = pkt::PacketBuilder()
                           .ipv4(net.alice.ip(), net.bob.ip(), pkt::IpProto::kUdp)
                           .udp(40000, 9000)
                           .payload("USER root:root login attempt")
                           .build();
  net.alice.send_ip(std::move(attack));
  net.network.run_for(1 * kSecond);

  auto& ctrl = net.network.controller();
  const pkt::FlowKey key = net.udp_key();
  EXPECT_EQ(ctrl.stats().flows_offloaded, 1u);  // the benign verdict fired first
  EXPECT_TRUE(ctrl.flow_blocked(key));          // ...then the detection caught up
  EXPECT_FALSE(ctrl.flow_offloaded(key));       // and the memo died with the block
  EXPECT_EQ(ctrl.offloaded_flow_count(), 0u);
  EXPECT_GE(ctrl.stats().flows_blocked_by_event, 1u);
}

TEST(Offload, CutThroughWaitsForEverySeInTheChain) {
  ChainNet net;
  net.add_ids(1400);  // clears the flow after the first clean packet
  // Second chain stage: a virus scanner whose budget is far beyond what the
  // test sends — it never issues a verdict, so the chain never fully clears.
  svc::ServiceElement::Config scan_config;
  scan_config.verdict_byte_budget = 1ull << 40;
  net.network.add_service_element(svc::ServiceType::kVirusScan, net.ovs3, scan_config);

  ctrl::Policy policy;
  policy.name = "udp-via-ids-scan";
  policy.nw_proto = 17;
  policy.tp_dst = 9000;
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kIntrusionDetection, svc::ServiceType::kVirusScan};
  net.network.controller().policies().add(policy);
  net.network.start();

  net::UdpCbrApp stream(net.alice, {.dst = net.bob.ip(), .rate_bps = 2e6,
                                    .duration = 1 * kSecond});
  stream.start();
  net.network.run_for(2 * kSecond);

  // The IDS said benign, but one engine's word is not the chain's: with the
  // scanner still inspecting, the redirect must stay.
  const auto& ctrl = net.network.controller();
  EXPECT_GE(ctrl.stats().verdict_messages, 1u);
  EXPECT_EQ(ctrl.stats().flows_offloaded, 0u);
  EXPECT_EQ(ctrl.flow_se_ids(net.udp_key()).size(), 2u);
  EXPECT_FALSE(ctrl.flow_offloaded(net.udp_key()));
}

// --- HA interaction -----------------------------------------------------------------

TEST(Offload, ReplicatesToStandbyAndNeverReplaysAfterFailover) {
  Network network;
  network.enable_ha(1);
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs1 = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);
  auto& ovs3 = network.add_as_switch("ovs3", backbone);
  auto& alice = network.add_host("alice", ovs1);
  auto& bob = network.add_host("bob", ovs2);
  svc::ServiceElement::Config se_config;
  se_config.verdict_byte_budget = 4096;
  auto& ids =
      network.add_service_element(svc::ServiceType::kIntrusionDetection, ovs3, se_config);

  ctrl::Policy policy;
  policy.name = "udp-via-ids";
  policy.nw_proto = 17;
  policy.tp_dst = 9000;
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kIntrusionDetection};
  network.controller().policies().add(policy);
  network.start();

  net::UdpCbrApp stream(alice, {.dst = bob.ip(), .rate_bps = 2e6,
                                .duration = 500 * kMillisecond});
  stream.start();
  network.run_for(1 * kSecond);

  pkt::FlowKey key;
  key.dl_src = alice.mac();
  key.dl_dst = bob.mac();
  key.dl_type = static_cast<std::uint16_t>(pkt::EtherType::kIpv4);
  key.nw_src = alice.ip();
  key.nw_dst = bob.ip();
  key.nw_proto = static_cast<std::uint8_t>(pkt::IpProto::kUdp);
  key.tp_src = 40000;
  key.tp_dst = 9000;

  ha::HaCluster* cluster = network.ha_cluster();
  ASSERT_NE(cluster, nullptr);
  ASSERT_EQ(network.controller().stats().flows_offloaded, 1u);
  // The standby mirrors the offload memo (observability + snapshot safety).
  EXPECT_EQ(cluster->node_controller(1).offloaded_flow_count(), 1u);

  // Crash the active. The promoted standby holds the replicated memo, but
  // stamped with its own pre-promotion world — and promotion bumps the
  // epoch, so the memo can never replay: a pre-failover benign verdict is
  // not trusted by the new regime.
  cluster->crash_active();
  network.run_for(5 * kSecond);
  ASSERT_EQ(cluster->stats().failovers, 1u);
  ctrl::Controller& active = network.active_controller();
  const std::uint64_t se_packets = ids.processed_packets();

  network.run_for(12 * kSecond);  // old entries idle out
  net::UdpCbrApp again(alice, {.dst = bob.ip(), .rate_bps = 2e6,
                               .duration = 500 * kMillisecond});
  again.start();
  network.run_for(1 * kSecond);

  EXPECT_EQ(active.stats().offload_replays, 0u);
  EXPECT_GE(active.stats().offload_invalidations, 1u);
  EXPECT_EQ(active.flow_se_ids(key).size(), 1u);  // redirected and re-inspected
  EXPECT_GT(ids.processed_packets(), se_packets);
}

// --- WebUI surfacing ----------------------------------------------------------------

TEST(Offload, WebUiSurfacesOffloadAndBatchTelemetry) {
  ChainNet net;
  net.add_ids(4096);
  net.add_udp_redirect_policy();
  net.network.start();

  net::UdpCbrApp stream(net.alice, {.dst = net.bob.ip(), .rate_bps = 2e6,
                                    .duration = 1 * kSecond});
  stream.start();
  net.network.run_for(2 * kSecond);

  mon::WebUi ui(net.network.controller());
  const std::string json = ui.snapshot_json(0, net.network.sim().now());
  EXPECT_NE(json.find("\"verdict_messages\":"), std::string::npos);
  EXPECT_NE(json.find("\"flows_offloaded\":1"), std::string::npos);
  EXPECT_NE(json.find("\"offloaded_now\":1"), std::string::npos);
  EXPECT_NE(json.find("\"flow_contexts\":"), std::string::npos);
  EXPECT_NE(json.find("\"batch_size_hist\":["), std::string::npos);

  const std::string text = ui.snapshot_text(0, net.network.sim().now());
  EXPECT_NE(text.find("flow offload: 1 cut through"), std::string::npos);
  EXPECT_NE(text.find("contexts="), std::string::npos);
}

}  // namespace
}  // namespace livesec
