// Unit tests for controller submodules: routing table, certification,
// policy table, service registry, load balancer strategies.
#include <gtest/gtest.h>

#include "controller/certification.h"
#include "controller/load_balancer.h"
#include "controller/policy.h"
#include "controller/routing_table.h"
#include "controller/service_registry.h"

namespace livesec::ctrl {
namespace {

// --- RoutingTable ----------------------------------------------------------------

TEST(RoutingTable, LearnAndFind) {
  RoutingTable table;
  const MacAddress mac = MacAddress::from_uint64(0x1);
  const Ipv4Address ip(10, 0, 0, 1);
  EXPECT_TRUE(table.learn(mac, ip, 1, 2, 0));
  const HostLocation* loc = table.find(mac);
  ASSERT_NE(loc, nullptr);
  EXPECT_EQ(loc->dpid, 1u);
  EXPECT_EQ(loc->port, 2u);
  EXPECT_EQ(table.find_by_ip(ip), loc);
}

TEST(RoutingTable, RelearnSameSpotIsNotAMove) {
  RoutingTable table;
  const MacAddress mac = MacAddress::from_uint64(0x1);
  table.learn(mac, Ipv4Address(10, 0, 0, 1), 1, 2, 0);
  EXPECT_FALSE(table.learn(mac, Ipv4Address(10, 0, 0, 1), 1, 2, 5));
  EXPECT_TRUE(table.learn(mac, Ipv4Address(10, 0, 0, 1), 3, 4, 10));  // moved
}

TEST(RoutingTable, IpChangeUpdatesSecondaryIndex) {
  RoutingTable table;
  const MacAddress mac = MacAddress::from_uint64(0x1);
  table.learn(mac, Ipv4Address(10, 0, 0, 1), 1, 2, 0);
  table.learn(mac, Ipv4Address(10, 0, 0, 9), 1, 2, 1);
  EXPECT_EQ(table.find_by_ip(Ipv4Address(10, 0, 0, 1)), nullptr);
  ASSERT_NE(table.find_by_ip(Ipv4Address(10, 0, 0, 9)), nullptr);
}

TEST(RoutingTable, ExpireRemovesIdleHosts) {
  RoutingTable table(100);
  table.learn(MacAddress::from_uint64(1), Ipv4Address(10, 0, 0, 1), 1, 1, 0);
  table.learn(MacAddress::from_uint64(2), Ipv4Address(10, 0, 0, 2), 1, 2, 50);
  table.touch(MacAddress::from_uint64(1), 80);

  const auto removed = table.expire(160);
  ASSERT_EQ(removed.size(), 1u);  // host2 idle since 50
  EXPECT_EQ(removed[0].mac, MacAddress::from_uint64(2));
  EXPECT_EQ(table.size(), 1u);
}

TEST(RoutingTable, RemoveSwitchEvictsItsHosts) {
  RoutingTable table;
  table.learn(MacAddress::from_uint64(1), Ipv4Address(10, 0, 0, 1), 1, 1, 0);
  table.learn(MacAddress::from_uint64(2), Ipv4Address(10, 0, 0, 2), 2, 1, 0);
  const auto removed = table.remove_switch(1);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.find_by_ip(Ipv4Address(10, 0, 0, 1)), nullptr);
}

// --- CertificationAuthority --------------------------------------------------------

TEST(Certification, IssueValidateCycle) {
  CertificationAuthority ca(12345);
  const std::uint64_t token = ca.issue(7);
  EXPECT_TRUE(ca.validate(7, token));
  EXPECT_FALSE(ca.validate(8, token));       // wrong SE
  EXPECT_FALSE(ca.validate(7, token ^ 1));   // tampered token
  EXPECT_FALSE(ca.validate(7, 0));           // uncertified sentinel
}

TEST(Certification, DifferentSecretsDifferentTokens) {
  CertificationAuthority a(1), b(2);
  EXPECT_NE(a.issue(7), b.issue(7));
  EXPECT_FALSE(b.validate(7, a.issue(7)));
}

TEST(Certification, RevocationSticks) {
  CertificationAuthority ca(99);
  const std::uint64_t token = ca.issue(7);
  ca.revoke(7);
  EXPECT_FALSE(ca.validate(7, token));
  EXPECT_TRUE(ca.revoked(7));
  EXPECT_TRUE(ca.validate(8, ca.issue(8)));  // others unaffected
}

// --- PolicyTable ---------------------------------------------------------------------

pkt::FlowKey web_flow(std::uint64_t src_mac = 0xA, std::uint16_t dst_port = 80) {
  pkt::FlowKey key;
  key.dl_src = MacAddress::from_uint64(src_mac);
  key.dl_dst = MacAddress::from_uint64(0xB);
  key.dl_type = 0x0800;
  key.nw_src = Ipv4Address(10, 0, 0, 1);
  key.nw_dst = Ipv4Address(10, 0, 0, 2);
  key.nw_proto = 6;
  key.tp_src = 40000;
  key.tp_dst = dst_port;
  return key;
}

TEST(Policy, PredicatesAreConjunctive) {
  Policy p;
  p.nw_proto = 6;
  p.tp_dst = 80;
  EXPECT_TRUE(p.matches(web_flow()));
  EXPECT_FALSE(p.matches(web_flow(0xA, 443)));
  pkt::FlowKey udp = web_flow();
  udp.nw_proto = 17;
  EXPECT_FALSE(p.matches(udp));
}

TEST(Policy, SubnetPredicate) {
  Policy p;
  p.nw_dst = Ipv4Address(10, 0, 0, 0);
  p.nw_dst_prefix = 24;
  EXPECT_TRUE(p.matches(web_flow()));
  pkt::FlowKey other = web_flow();
  other.nw_dst = Ipv4Address(10, 0, 1, 2);
  EXPECT_FALSE(p.matches(other));
}

TEST(PolicyTable, PriorityOrderWins) {
  PolicyTable table;
  Policy broad;
  broad.name = "web-redirect";
  broad.priority = 1;
  broad.tp_dst = 80;
  broad.action = PolicyAction::kRedirect;
  table.add(broad);

  Policy narrow;
  narrow.name = "bad-user-deny";
  narrow.priority = 10;
  narrow.src_mac = MacAddress::from_uint64(0xA);
  narrow.action = PolicyAction::kDeny;
  table.add(narrow);

  const Policy* hit = table.lookup(web_flow());
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->name, "bad-user-deny");
  const Policy* other = table.lookup(web_flow(0xC));
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->name, "web-redirect");
}

TEST(PolicyTable, NoMatchUsesDefaultAction) {
  PolicyTable table(PolicyAction::kDeny);
  EXPECT_EQ(table.lookup(web_flow()), nullptr);
  EXPECT_EQ(table.default_action(), PolicyAction::kDeny);
}

TEST(PolicyTable, AddAssignsIdsAndRemoveWorks) {
  PolicyTable table;
  Policy p;
  p.name = "a";
  const std::uint32_t id = table.add(p);
  EXPECT_NE(table.find(id), nullptr);
  EXPECT_TRUE(table.remove(id));
  EXPECT_FALSE(table.remove(id));
  EXPECT_EQ(table.find(id), nullptr);
}

TEST(PolicyTable, EqualPriorityKeepsInsertionOrder) {
  PolicyTable table;
  Policy first;
  first.name = "first";
  first.priority = 5;
  first.tp_dst = 80;
  table.add(first);
  Policy second;
  second.name = "second";
  second.priority = 5;
  second.tp_dst = 80;
  table.add(second);
  ASSERT_NE(table.lookup(web_flow()), nullptr);
  EXPECT_EQ(table.lookup(web_flow())->name, "first");
}

// --- ServiceRegistry -------------------------------------------------------------------

svc::OnlineMessage online(svc::ServiceType type, std::uint32_t pps = 0,
                          std::uint32_t queued = 0) {
  svc::OnlineMessage m;
  m.service = type;
  m.packets_per_second = pps;
  m.queued_packets = queued;
  return m;
}

TEST(ServiceRegistry, RegistersAndPools) {
  ServiceRegistry registry;
  EXPECT_TRUE(registry.handle_online(1, MacAddress::from_uint64(1), Ipv4Address(10, 9, 0, 1), 1,
                                     1, online(svc::ServiceType::kIntrusionDetection), 0));
  EXPECT_FALSE(registry.handle_online(1, MacAddress::from_uint64(1), Ipv4Address(10, 9, 0, 1), 1,
                                      1, online(svc::ServiceType::kIntrusionDetection), 100));
  registry.handle_online(2, MacAddress::from_uint64(2), Ipv4Address(10, 9, 0, 2), 1, 2,
                         online(svc::ServiceType::kProtocolIdentification), 0);
  EXPECT_EQ(registry.pool(svc::ServiceType::kIntrusionDetection).size(), 1u);
  EXPECT_EQ(registry.pool(svc::ServiceType::kProtocolIdentification).size(), 1u);
  EXPECT_EQ(registry.pool(svc::ServiceType::kVirusScan).size(), 0u);
}

TEST(ServiceRegistry, ExpiresSilentSes) {
  ServiceRegistry registry(100);
  registry.handle_online(1, MacAddress::from_uint64(1), Ipv4Address(), 1, 1,
                         online(svc::ServiceType::kIntrusionDetection), 0);
  registry.handle_online(2, MacAddress::from_uint64(2), Ipv4Address(), 1, 2,
                         online(svc::ServiceType::kIntrusionDetection), 80);
  const auto removed = registry.expire(150);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].se_id, 1u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ServiceRegistry, HeartbeatResetsAssignmentEstimate) {
  ServiceRegistry registry;
  registry.handle_online(1, MacAddress::from_uint64(1), Ipv4Address(), 1, 1,
                         online(svc::ServiceType::kIntrusionDetection), 0);
  registry.note_assignment(1);
  registry.note_assignment(1);
  EXPECT_EQ(registry.find(1)->assigned_since_report, 2u);
  EXPECT_EQ(registry.find(1)->assigned_flows_total, 2u);
  registry.handle_online(1, MacAddress::from_uint64(1), Ipv4Address(), 1, 1,
                         online(svc::ServiceType::kIntrusionDetection, 100), 10);
  EXPECT_EQ(registry.find(1)->assigned_since_report, 0u);
  EXPECT_EQ(registry.find(1)->assigned_flows_total, 2u);
}

// --- LoadBalancer -----------------------------------------------------------------------

struct LbFixture {
  ServiceRegistry registry;
  LbFixture() {
    for (std::uint64_t id = 1; id <= 4; ++id) {
      registry.handle_online(id, MacAddress::from_uint64(id), Ipv4Address(), 1,
                             static_cast<PortId>(id),
                             online(svc::ServiceType::kIntrusionDetection), 0);
    }
  }
};

pkt::FlowKey flow_n(std::uint32_t n, std::uint64_t user = 0xA) {
  pkt::FlowKey key = web_flow(user);
  key.tp_src = static_cast<std::uint16_t>(10000 + n);
  return key;
}

TEST(LoadBalancer, PollingDistributesRoundRobin) {
  LbFixture f;
  LoadBalancer lb(LbStrategy::kPolling);
  std::vector<std::uint64_t> picks;
  for (std::uint32_t i = 0; i < 8; ++i) {
    picks.push_back(*lb.assign(f.registry, svc::ServiceType::kIntrusionDetection, flow_n(i),
                               LbGranularity::kPerFlow));
  }
  EXPECT_EQ(picks, (std::vector<std::uint64_t>{1, 2, 3, 4, 1, 2, 3, 4}));
}

TEST(LoadBalancer, AssignmentsAreStickyPerFlow) {
  LbFixture f;
  LoadBalancer lb(LbStrategy::kPolling);
  const auto first = lb.assign(f.registry, svc::ServiceType::kIntrusionDetection, flow_n(1),
                               LbGranularity::kPerFlow);
  const auto second = lb.assign(f.registry, svc::ServiceType::kIntrusionDetection, flow_n(1),
                                LbGranularity::kPerFlow);
  EXPECT_EQ(first, second);  // same flow, same SE
}

TEST(LoadBalancer, UserGranularityPinsAllUserFlows) {
  LbFixture f;
  LoadBalancer lb(LbStrategy::kPolling);
  const auto a = lb.assign(f.registry, svc::ServiceType::kIntrusionDetection,
                           flow_n(1, 0xAA), LbGranularity::kPerUser);
  const auto b = lb.assign(f.registry, svc::ServiceType::kIntrusionDetection,
                           flow_n(2, 0xAA), LbGranularity::kPerUser);
  const auto c = lb.assign(f.registry, svc::ServiceType::kIntrusionDetection,
                           flow_n(3, 0xBB), LbGranularity::kPerUser);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // round robin advanced for the next user
}

TEST(LoadBalancer, HashIsDeterministic) {
  LbFixture f;
  LoadBalancer lb(LbStrategy::kHash);
  const auto a = lb.assign(f.registry, svc::ServiceType::kIntrusionDetection, flow_n(7),
                           LbGranularity::kPerFlow);
  LoadBalancer lb2(LbStrategy::kHash);
  const auto b = lb2.assign(f.registry, svc::ServiceType::kIntrusionDetection, flow_n(7),
                            LbGranularity::kPerFlow);
  EXPECT_EQ(a, b);
}

TEST(LoadBalancer, MinLoadPrefersLeastLoaded) {
  ServiceRegistry registry;
  registry.handle_online(1, MacAddress::from_uint64(1), Ipv4Address(), 1, 1,
                         online(svc::ServiceType::kIntrusionDetection, 5000, 10), 0);
  registry.handle_online(2, MacAddress::from_uint64(2), Ipv4Address(), 1, 2,
                         online(svc::ServiceType::kIntrusionDetection, 100, 0), 0);
  LoadBalancer lb(LbStrategy::kMinLoad);
  EXPECT_EQ(*lb.assign(registry, svc::ServiceType::kIntrusionDetection, flow_n(1),
                       LbGranularity::kPerFlow),
            2u);
}

TEST(LoadBalancer, MinLoadAccountsLocalAssignments) {
  LbFixture f;  // all SEs report zero load
  LoadBalancer lb(LbStrategy::kMinLoad);
  std::map<std::uint64_t, int> counts;
  for (std::uint32_t i = 0; i < 400; ++i) {
    counts[*lb.assign(f.registry, svc::ServiceType::kIntrusionDetection, flow_n(i),
                      LbGranularity::kPerFlow)]++;
  }
  // Perfectly uniform flows => deviation across SEs must be tiny (<=5%,
  // the paper's §V.B.2 bound).
  int min = 1 << 30, max = 0;
  for (const auto& [id, c] : counts) {
    min = std::min(min, c);
    max = std::max(max, c);
  }
  ASSERT_EQ(counts.size(), 4u);
  const double deviation = static_cast<double>(max - min) / (400.0 / 4.0);
  EXPECT_LE(deviation, 0.05);
}

TEST(LoadBalancer, WeightedMinLoadHonorsCapacity) {
  ServiceRegistry registry;
  auto fast = online(svc::ServiceType::kIntrusionDetection);
  fast.capacity_bps = 1000;
  auto slow = online(svc::ServiceType::kIntrusionDetection);
  slow.capacity_bps = 250;
  registry.handle_online(1, MacAddress::from_uint64(1), Ipv4Address(), 1, 1, fast, 0);
  registry.handle_online(2, MacAddress::from_uint64(2), Ipv4Address(), 1, 2, slow, 0);

  LoadBalancer lb(LbStrategy::kWeightedMinLoad);
  std::map<std::uint64_t, int> counts;
  for (std::uint32_t i = 0; i < 500; ++i) {
    counts[*lb.assign(registry, svc::ServiceType::kIntrusionDetection, flow_n(i),
                      LbGranularity::kPerFlow)]++;
  }
  // 4:1 capacity ratio => ~4:1 flow split (plain min-load would do 1:1).
  const double ratio = static_cast<double>(counts[1]) / static_cast<double>(counts[2]);
  EXPECT_GT(ratio, 3.5);
  EXPECT_LT(ratio, 4.5);
}

TEST(LoadBalancer, QueuingPrefersShortQueues) {
  ServiceRegistry registry;
  registry.handle_online(1, MacAddress::from_uint64(1), Ipv4Address(), 1, 1,
                         online(svc::ServiceType::kIntrusionDetection, 0, 500), 0);
  registry.handle_online(2, MacAddress::from_uint64(2), Ipv4Address(), 1, 2,
                         online(svc::ServiceType::kIntrusionDetection, 0, 2), 0);
  LoadBalancer lb(LbStrategy::kQueuing);
  EXPECT_EQ(*lb.assign(registry, svc::ServiceType::kIntrusionDetection, flow_n(1),
                       LbGranularity::kPerFlow),
            2u);
}

TEST(LoadBalancer, EmptyPoolReturnsNullopt) {
  ServiceRegistry registry;
  LoadBalancer lb;
  EXPECT_FALSE(lb.assign(registry, svc::ServiceType::kVirusScan, flow_n(1),
                         LbGranularity::kPerFlow)
                   .has_value());
}

TEST(LoadBalancer, DeadSePinIsReassigned) {
  LbFixture f;
  LoadBalancer lb(LbStrategy::kPolling);
  const auto first = *lb.assign(f.registry, svc::ServiceType::kIntrusionDetection, flow_n(1),
                                LbGranularity::kPerFlow);
  f.registry.remove(first);
  lb.purge_se(first);
  const auto second = *lb.assign(f.registry, svc::ServiceType::kIntrusionDetection, flow_n(1),
                                 LbGranularity::kPerFlow);
  EXPECT_NE(first, second);
}

// Parameterized strategy sweep: every strategy must assign every flow when
// the pool is non-empty, and honor stickiness.
class LbStrategySweep : public ::testing::TestWithParam<LbStrategy> {};

TEST_P(LbStrategySweep, AssignsEveryFlowAndSticks) {
  LbFixture f;
  LoadBalancer lb(GetParam());
  for (std::uint32_t i = 0; i < 100; ++i) {
    const auto pick = lb.assign(f.registry, svc::ServiceType::kIntrusionDetection, flow_n(i),
                                LbGranularity::kPerFlow);
    ASSERT_TRUE(pick.has_value());
    const auto again = lb.assign(f.registry, svc::ServiceType::kIntrusionDetection, flow_n(i),
                                 LbGranularity::kPerFlow);
    EXPECT_EQ(pick, again);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, LbStrategySweep,
                         ::testing::Values(LbStrategy::kPolling, LbStrategy::kHash,
                                           LbStrategy::kQueuing, LbStrategy::kMinLoad,
                                           LbStrategy::kWeightedMinLoad));

}  // namespace
}  // namespace livesec::ctrl
