// Tests for the extension features: DHCP directory proxy, policy config
// language, IDS rule options, event-store persistence, statistics polling,
// SE migration and host mobility.
#include <gtest/gtest.h>

#include "controller/dhcp_pool.h"
#include "controller/policy_parser.h"
#include "monitor/event_store.h"
#include "net/network.h"
#include "net/traffic.h"
#include "packet/dhcp.h"
#include "services/ids/ids_engine.h"

namespace livesec {
namespace {

// --- DhcpPool ------------------------------------------------------------------

TEST(DhcpPool, AllocatesDistinctStableAddresses) {
  ctrl::DhcpPool pool(Ipv4Address(10, 2, 0, 1), 4);
  const auto a = pool.allocate(MacAddress::from_uint64(1), 0);
  const auto b = pool.allocate(MacAddress::from_uint64(2), 0);
  ASSERT_TRUE(a && b);
  EXPECT_NE(*a, *b);
  // Renewal returns the same address.
  EXPECT_EQ(pool.allocate(MacAddress::from_uint64(1), 100), a);
}

TEST(DhcpPool, ExhaustionReturnsNullopt) {
  ctrl::DhcpPool pool(Ipv4Address(10, 2, 0, 1), 2);
  EXPECT_TRUE(pool.allocate(MacAddress::from_uint64(1), 0).has_value());
  EXPECT_TRUE(pool.allocate(MacAddress::from_uint64(2), 0).has_value());
  EXPECT_FALSE(pool.allocate(MacAddress::from_uint64(3), 0).has_value());
}

TEST(DhcpPool, ExpiredLeasesAreReclaimed) {
  ctrl::DhcpPool pool(Ipv4Address(10, 2, 0, 1), 1, 100);
  const auto a = pool.allocate(MacAddress::from_uint64(1), 0);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(pool.allocate(MacAddress::from_uint64(2), 50).has_value());
  // Past the lease, the address frees up.
  const auto b = pool.allocate(MacAddress::from_uint64(2), 200);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, *b);
  EXPECT_FALSE(pool.lookup(MacAddress::from_uint64(1), 200).has_value());
}

TEST(DhcpPool, ReleaseFreesImmediately) {
  ctrl::DhcpPool pool(Ipv4Address(10, 2, 0, 1), 1);
  pool.allocate(MacAddress::from_uint64(1), 0);
  pool.release(MacAddress::from_uint64(1));
  EXPECT_TRUE(pool.allocate(MacAddress::from_uint64(2), 0).has_value());
}

TEST(DhcpMessage, CodecRoundTrip) {
  pkt::DhcpMessage m;
  m.op = pkt::DhcpOp::kOffer;
  m.xid = 0xABCD1234;
  m.client_mac = MacAddress::from_uint64(0x42);
  m.your_ip = Ipv4Address(10, 2, 0, 7);
  m.server_ip = Ipv4Address(10, 255, 255, 254);
  m.lease_seconds = 3600;
  const auto decoded = pkt::DhcpMessage::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->op, pkt::DhcpOp::kOffer);
  EXPECT_EQ(decoded->xid, 0xABCD1234u);
  EXPECT_EQ(decoded->your_ip, m.your_ip);
  EXPECT_EQ(decoded->lease_seconds, 3600u);

  auto bytes = m.encode();
  bytes[0] ^= 0xFF;
  EXPECT_FALSE(pkt::DhcpMessage::decode(bytes).has_value());
}

TEST(Dhcp, EndToEndLeaseThroughController) {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs = network.add_as_switch("ovs", backbone);
  network.controller().enable_dhcp(Ipv4Address(10, 2, 0, 10), 16);
  auto& host = network.add_host("dhcp-client", ovs);
  network.start();

  Ipv4Address bound;
  host.start_dhcp([&](Ipv4Address ip) { bound = ip; });
  network.run_for(1 * kSecond);

  EXPECT_TRUE(host.dhcp_bound());
  EXPECT_EQ(bound, Ipv4Address(10, 2, 0, 10));
  EXPECT_EQ(host.ip(), bound);
  // The lease registered the host's location with the controller.
  const auto* loc = network.controller().routing().find_by_ip(bound);
  ASSERT_NE(loc, nullptr);
  EXPECT_EQ(loc->mac, host.mac());
}

TEST(Dhcp, TwoClientsGetDistinctLeases) {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs = network.add_as_switch("ovs", backbone);
  network.controller().enable_dhcp(Ipv4Address(10, 2, 0, 10), 16);
  auto& h1 = network.add_host("c1", ovs);
  auto& h2 = network.add_host("c2", ovs);
  network.start();
  h1.start_dhcp();
  h2.start_dhcp();
  network.run_for(1 * kSecond);
  ASSERT_TRUE(h1.dhcp_bound());
  ASSERT_TRUE(h2.dhcp_bound());
  EXPECT_NE(h1.ip(), h2.ip());
}

// --- policy parser ------------------------------------------------------------

TEST(PolicyParser, ParsesFullSyntax) {
  std::vector<std::string> errors;
  const auto policies = ctrl::parse_policies(
      "# campus policies\n"
      "web-ids 10 redirect proto=tcp dport=80 chain=l7,ids granularity=user\n"
      "deny-guest 50 deny src_ip=10.9.0.0/16\n"
      "allow-dns 5 allow proto=udp dport=53\n",
      errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
  ASSERT_EQ(policies.size(), 3u);

  EXPECT_EQ(policies[0].name, "web-ids");
  EXPECT_EQ(policies[0].action, ctrl::PolicyAction::kRedirect);
  ASSERT_EQ(policies[0].service_chain.size(), 2u);
  EXPECT_EQ(policies[0].service_chain[0], svc::ServiceType::kProtocolIdentification);
  EXPECT_EQ(policies[0].service_chain[1], svc::ServiceType::kIntrusionDetection);
  EXPECT_EQ(policies[0].granularity, ctrl::LbGranularity::kPerUser);
  EXPECT_EQ(policies[0].tp_dst, 80);

  EXPECT_EQ(policies[1].action, ctrl::PolicyAction::kDeny);
  EXPECT_EQ(policies[1].nw_src_prefix, 16);
}

TEST(PolicyParser, CollectsErrors) {
  std::vector<std::string> errors;
  const auto policies = ctrl::parse_policies(
      "bad-action 10 explode\n"
      "bad-mac 10 deny src_mac=zz:zz\n"
      "bad-redirect 10 redirect proto=tcp\n"  // no chain
      "ok 10 allow\n",
      errors);
  EXPECT_EQ(policies.size(), 1u);
  EXPECT_EQ(errors.size(), 3u);
}

TEST(PolicyParser, FormatRoundTrips) {
  std::vector<std::string> errors;
  const auto policies = ctrl::parse_policies(
      "web-ids 10 redirect src_mac=02:00:00:00:00:05 dst_ip=10.1.0.0/24 proto=6 dport=80 "
      "chain=ids granularity=flow\n",
      errors);
  ASSERT_EQ(policies.size(), 1u);
  const std::string text = ctrl::format_policy(policies[0]);
  const auto reparsed = ctrl::parse_policies(text + "\n", errors);
  ASSERT_EQ(reparsed.size(), 1u);
  EXPECT_EQ(reparsed[0].name, policies[0].name);
  EXPECT_EQ(reparsed[0].tp_dst, policies[0].tp_dst);
  EXPECT_EQ(reparsed[0].src_mac, policies[0].src_mac);
  EXPECT_EQ(reparsed[0].nw_dst, policies[0].nw_dst);
  EXPECT_EQ(reparsed[0].service_chain, policies[0].service_chain);
}

TEST(PolicyParser, ParsedPolicyEnforces) {
  std::vector<std::string> errors;
  auto policies = ctrl::parse_policies("no-web 10 deny proto=tcp dport=80\n", errors);
  ASSERT_EQ(policies.size(), 1u);

  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs = network.add_as_switch("ovs", backbone);
  auto& a = network.add_host("a", ovs);
  auto& b = network.add_host("b", ovs);
  network.controller().policies().add(policies[0]);
  network.start();

  pkt::Packet p = pkt::PacketBuilder()
                      .ipv4(a.ip(), b.ip(), pkt::IpProto::kTcp)
                      .tcp(1234, 80)
                      .payload("GET /")
                      .build();
  a.send_ip(std::move(p));
  network.run_for(200 * kMillisecond);
  EXPECT_EQ(b.rx_ip_packets(), 0u);
  EXPECT_EQ(network.controller().stats().flows_denied, 1u);
}

// --- IDS rule options -----------------------------------------------------------

pkt::Packet tcp_payload(std::string_view payload, std::uint16_t src = 50000) {
  return pkt::PacketBuilder()
      .eth(MacAddress::from_uint64(0xE1), MacAddress::from_uint64(0xE2))
      .ipv4(Ipv4Address(10, 3, 0, 1), Ipv4Address(10, 3, 0, 2), pkt::IpProto::kTcp)
      .tcp(src, 80, pkt::TcpFlags::kPsh)
      .payload(payload)
      .build();
}

TEST(IdsRuleOptions, NocaseMatchesAnyCase) {
  std::vector<std::string> errors;
  auto rules = svc::ids::parse_rules("5001 probe tcp 80 4 select\\sfrom nocase\n", errors);
  ASSERT_TRUE(errors.empty());
  svc::ids::IdsEngine engine(std::move(rules));
  EXPECT_EQ(engine.inspect(tcp_payload("SeLeCt FROM users", 50001)).size(), 1u);
  EXPECT_EQ(engine.inspect(tcp_payload("select from t", 50002)).size(), 1u);
}

TEST(IdsRuleOptions, CaseSensitiveByDefault) {
  std::vector<std::string> errors;
  auto rules = svc::ids::parse_rules("5002 probe tcp 80 4 MARKER\n", errors);
  svc::ids::IdsEngine engine(std::move(rules));
  EXPECT_EQ(engine.inspect(tcp_payload("marker here", 50001)).size(), 0u);
  EXPECT_EQ(engine.inspect(tcp_payload("MARKER here", 50002)).size(), 1u);
}

TEST(IdsRuleOptions, OffsetAndDepthConstrainPosition) {
  std::vector<std::string> errors;
  // Pattern must start at byte >= 4 and end within the first 4+12 bytes.
  auto rules = svc::ids::parse_rules("5003 pos tcp 80 4 EVIL offset=4,depth=12\n", errors);
  ASSERT_TRUE(errors.empty());
  svc::ids::IdsEngine engine(std::move(rules));
  EXPECT_EQ(engine.inspect(tcp_payload("EVIL too early", 50001)).size(), 0u);   // starts at 0
  EXPECT_EQ(engine.inspect(tcp_payload("xxxxEVIL okay", 50002)).size(), 1u);    // starts at 4
  EXPECT_EQ(engine.inspect(tcp_payload("xxxxxxxxxxxxxxxxEVIL", 50003)).size(), 0u);  // too deep
}

TEST(IdsRuleOptions, OffsetAppliesAcrossPacketsInStream) {
  std::vector<std::string> errors;
  auto rules = svc::ids::parse_rules("5004 deep tcp 80 4 NEEDLE offset=10\n", errors);
  svc::ids::IdsEngine engine(std::move(rules));
  // 8 bytes in packet 1, NEEDLE begins at stream offset 8+4=12 >= 10.
  EXPECT_EQ(engine.inspect(tcp_payload("12345678", 50001)).size(), 0u);
  EXPECT_EQ(engine.inspect(tcp_payload("xxxxNEEDLE", 50001)).size(), 1u);
}

// --- event store persistence ------------------------------------------------------

TEST(EventStorePersistence, SerializeDeserializeRoundTrip) {
  mon::EventStore store;
  for (int i = 0; i < 50; ++i) {
    mon::NetworkEvent e;
    e.time = i * 10;
    e.type = static_cast<mon::EventType>(1 + (i % 12));
    e.subject = "subject-" + std::to_string(i);
    e.detail = "detail \"quoted\" #" + std::to_string(i);
    e.dpid = static_cast<DatapathId>(i % 5);
    e.severity = static_cast<std::uint8_t>(i % 10);
    store.append(std::move(e));
  }
  const auto blob = store.serialize();
  const auto restored = mon::EventStore::deserialize(blob);
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(restored->at(i).id, store.at(i).id);
    EXPECT_EQ(restored->at(i).time, store.at(i).time);
    EXPECT_EQ(restored->at(i).type, store.at(i).type);
    EXPECT_EQ(restored->at(i).subject, store.at(i).subject);
    EXPECT_EQ(restored->at(i).detail, store.at(i).detail);
  }
  // Appending after restore continues the id sequence.
  mon::EventStore writable = *restored;
  mon::NetworkEvent fresh;
  fresh.time = 1000;
  EXPECT_GT(writable.append(std::move(fresh)), store.at(49).id);
}

TEST(EventStorePersistence, RejectsCorruptBlobs) {
  mon::EventStore store;
  mon::NetworkEvent e;
  e.subject = "x";
  store.append(std::move(e));
  auto blob = store.serialize();

  auto bad_magic = blob;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(mon::EventStore::deserialize(bad_magic).has_value());

  auto truncated = blob;
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(mon::EventStore::deserialize(truncated).has_value());

  auto trailing = blob;
  trailing.push_back(0);
  EXPECT_FALSE(mon::EventStore::deserialize(trailing).has_value());
}

// --- statistics polling -------------------------------------------------------------

TEST(StatsPolling, BuildsPerSwitchLoadView) {
  ctrl::Controller::Config config;
  config.stats_interval = 500 * kMillisecond;
  net::Network network(config);
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs1 = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);
  (void)ovs2;
  auto& a = network.add_host("a", ovs1);
  auto& b = network.add_host("b", ovs1);
  network.start();

  net::UdpCbrApp app(a, {.dst = b.ip(), .rate_bps = 20e6, .duration = 3 * kSecond});
  app.start();
  network.run_for(4 * kSecond);

  const auto* load = network.controller().switch_load(1);
  ASSERT_NE(load, nullptr);
  EXPECT_GT(load->total_packets, 0u);
  EXPECT_GT(load->bits_per_second, 10e6);
  EXPECT_LT(load->bits_per_second, 50e6);
  EXPECT_GE(load->flow_count, 1u);
}

// --- SE migration --------------------------------------------------------------------

TEST(Migration, SeMigratesAndTrafficFollows) {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs1 = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);
  auto& ovs3 = network.add_as_switch("ovs3", backbone);
  auto& ids = network.add_service_element(svc::ServiceType::kIntrusionDetection, ovs2);

  ctrl::Policy policy;
  policy.nw_proto = static_cast<std::uint8_t>(pkt::IpProto::kUdp);
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kIntrusionDetection};
  network.controller().policies().add(policy);

  auto& a = network.add_host("a", ovs1);
  auto& b = network.add_host("b", ovs3);
  network.start();

  net::UdpCbrApp app(a, {.dst = b.ip(), .rate_bps = 5e6, .duration = 6 * kSecond});
  app.start();
  network.run_for(2 * kSecond);
  const auto rx_before = b.rx_ip_packets();
  EXPECT_GT(rx_before, 0u);
  EXPECT_EQ(network.controller().services().find(ids.se_id())->dpid, 2u);

  // Live-migrate the IDS VM from ovs2 to ovs3 mid-traffic.
  network.migrate_service_element(ids, ovs3);
  network.run_for(3 * kSecond);

  // The controller noticed, re-routed, and traffic kept flowing via the SE.
  EXPECT_EQ(network.controller().services().find(ids.se_id())->dpid, 3u);
  EXPECT_GE(network.controller()
                .events()
                .query_type(mon::EventType::kSeMigrated, 0, INT64_MAX)
                .size(),
            1u);
  EXPECT_GT(b.rx_ip_packets(), rx_before);
}

TEST(Migration, HostMobilityTearsDownAndRecovers) {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs1 = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);
  auto& ovs3 = network.add_as_switch("ovs3", backbone);
  auto& roamer = network.add_host("roamer", ovs1);
  auto& peer = network.add_host("peer", ovs2);
  network.start();

  net::UdpCbrApp app(roamer, {.dst = peer.ip(), .rate_bps = 5e6, .duration = 6 * kSecond});
  app.start();
  network.run_for(2 * kSecond);
  const auto rx_before = peer.rx_ip_packets();
  EXPECT_GT(rx_before, 0u);

  network.move_host(roamer, ovs3);
  network.run_for(3 * kSecond);

  EXPECT_GT(peer.rx_ip_packets(), rx_before);  // traffic resumed from ovs3
  EXPECT_GE(network.controller()
                .events()
                .query_type(mon::EventType::kHostMoved, 0, INT64_MAX)
                .size(),
            1u);
  const auto* loc = network.controller().routing().find(roamer.mac());
  ASSERT_NE(loc, nullptr);
  EXPECT_EQ(loc->dpid, 3u);
}

}  // namespace
}  // namespace livesec
