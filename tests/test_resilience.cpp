// Tests for link aggregation (ECMP), SPAN mirroring + trace replay, and
// failure injection (SE crash, switch loss) — the resilience/elasticity
// properties of paper §III.B and §IV.B.
#include <gtest/gtest.h>

#include "monitor/trace.h"
#include "net/network.h"
#include "net/trace_sink.h"
#include "net/traffic.h"

namespace livesec {
namespace {

// --- link aggregation / ECMP ----------------------------------------------------

TEST(LinkAggregation, FlowsSpreadAcrossBondMembers) {
  net::Network network;
  auto& left = network.add_legacy_switch("left");
  auto& right = network.add_legacy_switch("right");
  network.connect_legacy_bonded(left, right, 4, 1e9);

  auto& ovs1 = network.add_as_switch("ovs1", left);
  auto& ovs2 = network.add_as_switch("ovs2", right);
  auto& a = network.add_host("a", ovs1, 10e9);
  auto& b = network.add_host("b", ovs2, 10e9);
  network.start();

  // 32 distinct flows cross the bond.
  std::vector<std::unique_ptr<net::UdpCbrApp>> apps;
  for (int f = 0; f < 32; ++f) {
    apps.push_back(std::make_unique<net::UdpCbrApp>(
        a, net::UdpCbrApp::Config{.dst = b.ip(),
                                  .dst_port = static_cast<std::uint16_t>(7000 + f),
                                  .src_port = static_cast<std::uint16_t>(17000 + f),
                                  .rate_bps = 2e6,
                                  .duration = 1 * kSecond}));
    apps.back()->start();
  }
  network.run_for(2 * kSecond);
  EXPECT_GT(b.rx_ip_packets(), 0u);

  // At least 3 of the 4 members carried traffic (hash spread).
  int used = 0;
  for (PortId member : left.bond_members(sw::EthernetSwitch::kBondBase)) {
    if (left.member_tx_count(member) > 0) ++used;
  }
  EXPECT_GE(used, 3);
}

TEST(LinkAggregation, BondAggregatesCapacity) {
  net::Network network;
  auto& left = network.add_legacy_switch("left");
  auto& right = network.add_legacy_switch("right");
  network.connect_legacy_bonded(left, right, 2, 100e6);  // 2 x 100 Mbps

  auto& ovs1 = network.add_as_switch("ovs1", left, 1e9);
  auto& ovs2 = network.add_as_switch("ovs2", right, 1e9);
  auto& a = network.add_host("a", ovs1, 1e9);
  auto& b = network.add_host("b", ovs2, 1e9);
  network.start();

  // Many flows at 300 Mbps offered: a single 100 Mbps link would cap at
  // ~100; the bond should carry meaningfully more.
  std::vector<std::unique_ptr<net::UdpCbrApp>> apps;
  for (int f = 0; f < 16; ++f) {
    apps.push_back(std::make_unique<net::UdpCbrApp>(
        a, net::UdpCbrApp::Config{.dst = b.ip(),
                                  .dst_port = static_cast<std::uint16_t>(7000 + f),
                                  .src_port = static_cast<std::uint16_t>(17000 + f),
                                  .rate_bps = 300e6 / 16,
                                  .duration = 2 * kSecond}));
    apps.back()->start();
  }
  b.reset_counters();
  const SimTime start = network.sim().now();
  network.run_for(2 * kSecond);
  const double rate = static_cast<double>(b.rx_ip_bytes()) * 8.0 /
                      to_seconds(network.sim().now() - start);
  EXPECT_GT(rate, 130e6);  // clearly beyond one member's capacity
}

TEST(LinkAggregation, SameFlowStaysOnOneMember) {
  sim::Simulator sim;
  sw::EthernetSwitch sw(sim, "sw");
  // 3 endpoints + a 2-member bond toward a sink pair.
  // Use the switch API directly: learning + hashing only.
  const auto members = std::vector<PortId>{0, 1};
  sw.add_port();
  sw.add_port();
  sw.add_port();  // port 2: source side
  const PortId bond = sw.create_bond(members);

  pkt::Packet p = pkt::PacketBuilder()
                      .eth(MacAddress::from_uint64(1), MacAddress::from_uint64(2))
                      .ipv4(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                            pkt::IpProto::kUdp)
                      .udp(5, 6)
                      .build();
  // Teach the switch that MAC 2 lives behind the bond by sending its frame
  // in via a member port.
  pkt::Packet reverse = pkt::PacketBuilder()
                            .eth(MacAddress::from_uint64(2), MacAddress::from_uint64(1))
                            .ipv4(Ipv4Address(10, 0, 0, 2), Ipv4Address(10, 0, 0, 1),
                                  pkt::IpProto::kUdp)
                            .udp(6, 5)
                            .build();
  sw.handle_packet(0, pkt::finalize(reverse));
  sim.run();

  for (int i = 0; i < 10; ++i) sw.handle_packet(2, pkt::finalize(p));
  sim.run();
  // All 10 packets of the flow picked the same member.
  const std::uint64_t m0 = sw.member_tx_count(0);
  const std::uint64_t m1 = sw.member_tx_count(1);
  EXPECT_EQ(m0 + m1, 10u);
  EXPECT_TRUE(m0 == 10 || m1 == 10);
  (void)bond;
}

// --- SPAN mirroring + trace capture/replay ------------------------------------------

TEST(TraceCapture, MirrorPortRecordsRedirectedTraffic) {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs1 = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);
  auto& a = network.add_host("a", ovs1);
  auto& b = network.add_host("b", ovs2);

  // Capture box on a spare port of the ingress switch.
  net::TraceSink sink(network.sim(), "capture");
  sim::Port& mirror_port = ovs1.add_port(sw::PortRole::kNetworkPeriphery);
  auto mirror_link = sim::connect(network.sim(), sink.port(0), mirror_port);
  network.controller().set_mirror_port(1, mirror_port.id());

  net::HttpServerApp server(b, {.port = 80, .response_size = 4096});
  network.start();

  net::HttpClientApp client(a, {.server = b.ip(), .sessions = 2, .concurrency = 1,
                                .expected_response = 4096});
  client.start();
  network.run_for(1 * kSecond);

  EXPECT_EQ(client.responses_completed(), 2u);
  EXPECT_GT(sink.trace().size(), 4u);  // requests + responses + acks mirrored
}

TEST(TraceCapture, SerializeDeserializeRoundTrip) {
  mon::Trace trace;
  for (int i = 0; i < 20; ++i) {
    trace.append(i * 1000, pkt::PacketBuilder()
                               .eth(MacAddress::from_uint64(1), MacAddress::from_uint64(2))
                               .ipv4(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                                     pkt::IpProto::kTcp)
                               .tcp(static_cast<std::uint16_t>(1000 + i), 80)
                               .payload("GET /page" + std::to_string(i) + " HTTP/1.1\r\n")
                               .finalize());
  }
  const auto blob = trace.serialize();
  const auto restored = mon::Trace::deserialize(blob);
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->size(), 20u);
  EXPECT_EQ(restored->at(5).time, 5000);
  EXPECT_EQ(restored->at(5).packet->tcp->src_port, 1005);
  EXPECT_EQ(restored->total_bytes(), trace.total_bytes());

  auto corrupt = blob;
  corrupt[0] ^= 1;
  EXPECT_FALSE(mon::Trace::deserialize(corrupt).has_value());
}

TEST(TraceCapture, OfflineReplayFindsAttacksWithNewRules) {
  // Capture "historical" traffic containing a marker no current rule knows.
  mon::Trace trace;
  trace.append(0, pkt::finalize(pkt::PacketBuilder()
                                    .eth(MacAddress::from_uint64(1), MacAddress::from_uint64(2))
                                    .ipv4(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                                          pkt::IpProto::kTcp)
                                    .tcp(1234, 80)
                                    .payload("GET /cgi?q=ZERO-DAY-MARKER HTTP/1.1")
                                    .build()));
  // Today's engine: silent.
  svc::ids::IdsEngine current;
  EXPECT_TRUE(trace.replay_into(current).empty());

  // Tomorrow's ruleset knows the marker: the stored trace now alerts.
  std::vector<std::string> errors;
  auto rules = svc::ids::parse_rules("7001 zero.day tcp 80 10 ZERO-DAY-MARKER\n", errors);
  svc::ids::IdsEngine updated(std::move(rules));
  const auto alerts = trace.replay_into(updated);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule_id, 7001u);
}

TEST(TraceCapture, FlowCensusFromTrace) {
  mon::Trace trace;
  auto add = [&](std::string_view payload, std::uint16_t src, std::uint16_t dst) {
    trace.append(0, pkt::finalize(pkt::PacketBuilder()
                                      .eth(MacAddress::from_uint64(1),
                                           MacAddress::from_uint64(2))
                                      .ipv4(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                                            pkt::IpProto::kTcp)
                                      .tcp(src, dst)
                                      .payload(payload)
                                      .build()));
  };
  add("GET / HTTP/1.1\r\n", 1000, 80);
  add("GET /a HTTP/1.1\r\n", 1001, 80);
  add("SSH-2.0-OpenSSH", 1002, 22);

  svc::l7::L7Classifier classifier;
  const auto census = trace.classify_flows(classifier);
  EXPECT_EQ(census.at(svc::l7::AppProtocol::kHttp), 2u);
  EXPECT_EQ(census.at(svc::l7::AppProtocol::kSsh), 1u);
}

// --- failure injection -----------------------------------------------------------------

TEST(Failover, SeCrashMidFlowReroutesToSurvivor) {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs1 = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);
  auto& se1 = network.add_service_element(svc::ServiceType::kIntrusionDetection, ovs1);
  auto& se2 = network.add_service_element(svc::ServiceType::kIntrusionDetection, ovs2);

  ctrl::Policy policy;
  policy.nw_proto = static_cast<std::uint8_t>(pkt::IpProto::kUdp);
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kIntrusionDetection};
  network.controller().policies().add(policy);

  auto& a = network.add_host("a", ovs1);
  auto& b = network.add_host("b", ovs2);
  network.start();

  // Long-lived stream; min-load pins it to one SE.
  net::UdpCbrApp app(a, {.dst = b.ip(), .rate_bps = 5e6, .duration = 20 * kSecond});
  app.start();
  network.run_for(2 * kSecond);
  const bool via_se1 = se1.processed_packets() > 0;
  svc::ServiceElement& victim = via_se1 ? se1 : se2;
  svc::ServiceElement& survivor = via_se1 ? se2 : se1;
  const auto rx_at_crash = b.rx_ip_packets();
  EXPECT_GT(rx_at_crash, 0u);

  victim.stop();  // crash: heartbeats cease, packets blackhole
  network.run_for(10 * kSecond);

  // The controller expired the SE, tore the flow down, and the next packet
  // re-routed through the survivor; traffic kept flowing.
  EXPECT_GT(survivor.processed_packets(), 0u);
  EXPECT_GT(b.rx_ip_packets(), rx_at_crash + 100);
  EXPECT_GE(network.controller()
                .events()
                .query_type(mon::EventType::kSeOffline, 0, INT64_MAX)
                .size(),
            1u);
}

TEST(Failover, SwitchDisconnectCleansState) {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs1 = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);
  (void)ovs2;
  auto& h = network.add_host("h", ovs1);
  (void)h;
  network.start();
  EXPECT_EQ(network.controller().topology().switch_count(), 2u);
  EXPECT_EQ(network.controller().routing().size(), 1u);

  network.controller().handle_switch_disconnected(1);
  EXPECT_EQ(network.controller().topology().switch_count(), 1u);
  EXPECT_EQ(network.controller().routing().size(), 0u);  // attached host gone
  EXPECT_GE(network.controller()
                .events()
                .query_type(mon::EventType::kSwitchLeave, 0, INT64_MAX)
                .size(),
            1u);
}

// A disconnect must also drop per-flow and per-switch monitoring state: the
// dead switch's FlowRemoved messages can never arrive, so FlowRecords with a
// hop there (and the stale load snapshot) would otherwise leak forever.
TEST(Failover, SwitchDisconnectTearsDownFlowsAndLoad) {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs1 = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);
  auto& h1 = network.add_host("h1", ovs1);
  auto& h2 = network.add_host("h2", ovs2);
  network.start();

  pkt::Packet p = pkt::PacketBuilder()
                      .ipv4(h1.ip(), h2.ip(), pkt::IpProto::kUdp)
                      .udp(5000, 6000)
                      .payload("leak probe")
                      .build();
  h1.send_ip(std::move(p));
  network.run_for(300 * kMillisecond);
  ASSERT_EQ(network.controller().active_flows(), 1u);

  network.controller().poll_stats();
  network.run_for(100 * kMillisecond);
  ASSERT_NE(network.controller().switch_load(1), nullptr);

  network.controller().handle_switch_disconnected(1);
  EXPECT_EQ(network.controller().active_flows(), 0u);
  EXPECT_EQ(network.controller().switch_load(1), nullptr);
  EXPECT_EQ(network.controller().ls_port(1), std::nullopt);
}

}  // namespace
}  // namespace livesec
