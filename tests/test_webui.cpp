// Tests for the WebUI rendering layer and controller state exposition.
#include <gtest/gtest.h>

#include "monitor/webui.h"
#include "net/network.h"
#include "net/traffic.h"

namespace livesec {
namespace {

struct UiNet {
  ctrl::Controller::Config config;
  net::Network network;
  sw::EthernetSwitch& backbone;
  sw::OpenFlowSwitch& ovs;
  sw::WifiAccessPoint& ap;

  static ctrl::Controller::Config make_config() {
    ctrl::Controller::Config c;
    c.stats_interval = 500 * kMillisecond;
    return c;
  }

  UiNet()
      : network(make_config()),
        backbone(network.add_legacy_switch("backbone")),
        ovs(network.add_as_switch("ovs", backbone)),
        ap(network.add_wifi_ap("ap", backbone)) {}
};

/// Naive structural JSON validator: balanced braces/brackets outside
/// strings, no trailing garbage. Catches the classic comma/quote bugs.
bool json_well_formed(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{':
      case '[': ++depth; break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

TEST(WebUi, JsonSnapshotIsWellFormedAndComplete) {
  UiNet net;
  auto& host = net.network.add_host("host", net.ovs);
  net.network.add_service_element(svc::ServiceType::kIntrusionDetection, net.ovs);
  net.network.start();
  (void)host;

  mon::WebUi ui(net.network.controller());
  const std::string json = ui.snapshot_json(0, net.network.sim().now());
  EXPECT_TRUE(json_well_formed(json)) << json;
  for (const char* field : {"\"switches\"", "\"nodes\"", "\"users\"", "\"service_elements\"",
                            "\"full_mesh\"", "\"events\"", "\"wifi_ap\"", "\"as_switch\"",
                            "\"routing\"", "\"shard_hosts\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }

  // The sharded host table reports a consistent occupancy breakdown.
  const auto& routing = net.network.controller().routing();
  const std::string hosts_field = "\"hosts\":" + std::to_string(routing.size());
  EXPECT_NE(json.find(hosts_field), std::string::npos) << hosts_field;
  const std::string shards_field = "\"shards\":" + std::to_string(routing.shard_count());
  EXPECT_NE(json.find(shards_field), std::string::npos) << shards_field;

  const std::string text = ui.snapshot_text(0, net.network.sim().now());
  EXPECT_NE(text.find("host table:"), std::string::npos) << text;
}

TEST(WebUi, JsonEscapesHostileSubjects) {
  UiNet net;
  net.network.start();
  mon::NetworkEvent e;
  e.time = net.network.sim().now();
  e.type = mon::EventType::kAttackDetected;
  e.subject = "quote\" brace} back\\slash";
  net.network.controller().events().append(std::move(e));

  mon::WebUi ui(net.network.controller());
  const std::string json = ui.snapshot_json(0, net.network.sim().now() + 1);
  EXPECT_TRUE(json_well_formed(json)) << json;
}

TEST(WebUi, StatsEndpointSurfacesFastPathCounters) {
  UiNet net;
  auto& a = net.network.add_host("a", net.ovs);
  auto& b = net.network.add_host("b", net.ovs);
  net.network.start();

  // Two UDP flows of the same class: one decision-cache miss, one hit.
  for (std::uint16_t tp_src : {5001, 5002}) {
    pkt::Packet p = pkt::PacketBuilder()
                        .ipv4(a.ip(), b.ip(), pkt::IpProto::kUdp)
                        .udp(tp_src, 80)
                        .payload("x")
                        .build();
    a.send_ip(std::move(p));
    net.network.run_for(100 * kMillisecond);
  }
  const auto& fp = net.network.controller().stats().fastpath;
  ASSERT_GE(fp.decision_cache_misses, 1u);
  ASSERT_GE(fp.decision_cache_hits, 1u);

  mon::WebUi ui(net.network.controller());
  const std::string json = ui.snapshot_json(0, net.network.sim().now());
  EXPECT_TRUE(json_well_formed(json)) << json;
  const auto has_counter = [&](const std::string& name, std::uint64_t value) {
    const std::string needle = "\"" + name + "\":" + std::to_string(value);
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n" << json;
  };
  has_counter("decision_cache_hits", fp.decision_cache_hits);
  has_counter("decision_cache_misses", fp.decision_cache_misses);
  has_counter("decision_cache_invalidations", fp.decision_cache_invalidations);
  has_counter("suppressed_packet_ins", fp.suppressed_packet_ins);

  const std::string text = ui.snapshot_text(0, net.network.sim().now());
  EXPECT_NE(text.find("control plane"), std::string::npos);
  EXPECT_NE(text.find("decision cache"), std::string::npos);
}

TEST(WebUi, SwitchLoadAppearsAfterStatsPolling) {
  UiNet net;
  auto& a = net.network.add_host("a", net.ovs);
  auto& b = net.network.add_host("b", net.ovs);
  net.network.start();

  net::UdpCbrApp app(a, {.dst = b.ip(), .rate_bps = 20e6, .duration = 2 * kSecond});
  app.start();
  net.network.run_for(3 * kSecond);

  mon::WebUi ui(net.network.controller());
  const std::string text = ui.snapshot_text(0, net.network.sim().now());
  EXPECT_NE(text.find("load="), std::string::npos) << text;
  const std::string json = ui.snapshot_json(0, net.network.sim().now());
  EXPECT_NE(json.find("\"bps\":"), std::string::npos);
}

TEST(WebUi, ReplayWindowsArePrecise) {
  UiNet net;
  net.network.start();
  auto& events = net.network.controller().events();
  const SimTime t0 = net.network.sim().now();

  mon::NetworkEvent early;
  early.time = t0;
  early.type = mon::EventType::kFlowStart;
  early.subject = "EARLY-MARKER";
  events.append(early);

  net.network.run_for(1 * kSecond);
  mon::NetworkEvent late;
  late.time = net.network.sim().now();
  late.type = mon::EventType::kFlowEnd;
  late.subject = "LATE-MARKER";
  events.append(late);

  mon::WebUi ui(net.network.controller());
  const std::string first_window = ui.replay_text(t0, t0 + 500 * kMillisecond);
  EXPECT_NE(first_window.find("EARLY-MARKER"), std::string::npos);
  EXPECT_EQ(first_window.find("LATE-MARKER"), std::string::npos);

  const std::string second_window =
      ui.replay_text(t0 + 500 * kMillisecond, net.network.sim().now() + 1);
  EXPECT_EQ(second_window.find("EARLY-MARKER"), std::string::npos);
  EXPECT_NE(second_window.find("LATE-MARKER"), std::string::npos);
}

TEST(WebUi, TopologyDotExportsFromLiveController) {
  UiNet net;
  net.network.add_host("h", net.ovs);
  net.network.start();
  const std::string dot = net.network.controller().topology().to_dot();
  EXPECT_NE(dot.find("graph livesec"), std::string::npos);
  EXPECT_NE(dot.find("sw1"), std::string::npos);
  EXPECT_NE(dot.find("sw1 -- sw2"), std::string::npos);  // discovered AS link
}

}  // namespace
}  // namespace livesec
