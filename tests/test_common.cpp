// Unit tests for src/common: addresses, hashing, RNG, formatting.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/hash.h"
#include "common/small_vector.h"
#include "common/ip_address.h"
#include "common/mac_address.h"
#include "common/random.h"
#include "common/types.h"

namespace livesec {
namespace {

TEST(MacAddress, RoundTripsThroughString) {
  const MacAddress mac = MacAddress::from_uint64(0x0123456789ABull);
  EXPECT_EQ(mac.to_string(), "01:23:45:67:89:ab");
  const auto parsed = MacAddress::parse(mac.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, mac);
}

TEST(MacAddress, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddress::parse("").has_value());
  EXPECT_FALSE(MacAddress::parse("01:23:45:67:89").has_value());
  EXPECT_FALSE(MacAddress::parse("01:23:45:67:89:ab:cd").has_value());
  EXPECT_FALSE(MacAddress::parse("01-23-45-67-89-ab").has_value());
  EXPECT_FALSE(MacAddress::parse("0g:23:45:67:89:ab").has_value());
  EXPECT_FALSE(MacAddress::parse("01:23:45:67:89:a").has_value());
}

TEST(MacAddress, ParseAcceptsUppercase) {
  const auto parsed = MacAddress::parse("AA:BB:CC:DD:EE:FF");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->to_uint64(), 0xAABBCCDDEEFFull);
}

TEST(MacAddress, ClassifiesSpecialAddresses) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_multicast());
  EXPECT_TRUE(MacAddress().is_zero());
  EXPECT_TRUE(MacAddress::from_uint64(0x0180c200000eull).is_multicast());
  EXPECT_FALSE(MacAddress::from_uint64(0x020000000001ull).is_multicast());
}

TEST(MacAddress, Uint64RoundTrip) {
  for (std::uint64_t v : {0ull, 1ull, 0xFFFFFFFFFFFFull, 0x020000000001ull}) {
    EXPECT_EQ(MacAddress::from_uint64(v).to_uint64(), v);
  }
}

TEST(Ipv4Address, RoundTripsThroughString) {
  const Ipv4Address ip(10, 1, 2, 3);
  EXPECT_EQ(ip.to_string(), "10.1.2.3");
  const auto parsed = Ipv4Address::parse("10.1.2.3");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, ip);
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse("").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.1.2").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.1.2.3.4").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.1.2.256").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10..2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 ").has_value());
}

TEST(Ipv4Address, SubnetMatching) {
  const Ipv4Address a(10, 0, 1, 5);
  const Ipv4Address b(10, 0, 1, 200);
  const Ipv4Address c(10, 0, 2, 5);
  EXPECT_TRUE(a.same_subnet(b, 24));
  EXPECT_FALSE(a.same_subnet(c, 24));
  EXPECT_TRUE(a.same_subnet(c, 16));
  EXPECT_TRUE(a.same_subnet(c, 0));
  EXPECT_FALSE(a.same_subnet(b, 32));
  EXPECT_TRUE(a.same_subnet(a, 32));
}

TEST(Hash, Fnv1aIsDeterministicAndSensitive) {
  EXPECT_EQ(fnv1a("livesec"), fnv1a("livesec"));
  EXPECT_NE(fnv1a("livesec"), fnv1a("livesed"));
  EXPECT_NE(fnv1a("ab"), fnv1a("ba"));
}

TEST(Hash, SplitmixAvoidsTrivialCollisions) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(splitmix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(0, 1u << 30), b.uniform(0, 1u << 30));
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(1);
  std::size_t low = 0;
  constexpr int kDraws = 5000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.zipf(100, 1.2) < 10) ++low;
  }
  // With s=1.2, the top-10 ranks should dominate well beyond the uniform 10%.
  EXPECT_GT(low, kDraws / 3);
}

TEST(Types, TimeConversions) {
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(2 * kSecond), 2.0);
  EXPECT_EQ(format_time(1'500'000), "0.001500s");
}

TEST(Types, RateFormatting) {
  EXPECT_EQ(format_rate_bps(500), "500 bps");
  EXPECT_EQ(format_rate_bps(43e6), "43.00 Mbps");
  EXPECT_EQ(format_rate_bps(8.1e9), "8.10 Gbps");
}

TEST(SmallVector, StaysInlineWithinCapacityAndSpillsBeyond) {
  SmallVector<int, 2> v;
  EXPECT_TRUE(v.empty());
  v.push_back(1);
  v.push_back(2);
  EXPECT_EQ(v.capacity(), 2u);  // still in the inline slots
  v.push_back(3);               // forces the heap spill
  ASSERT_EQ(v.size(), 3u);
  EXPECT_GT(v.capacity(), 2u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 2);
  EXPECT_EQ(v[2], 3);
  EXPECT_EQ(v.front(), 1);
  EXPECT_EQ(v.back(), 3);
}

TEST(SmallVector, CopyAndMovePreserveElements) {
  // Non-trivial element type: copies/moves must run real ctors/dtors.
  SmallVector<std::string, 2> v{"alpha", "beta", "gamma"};
  SmallVector<std::string, 2> copy = v;
  EXPECT_EQ(copy, v);

  SmallVector<std::string, 2> moved = std::move(copy);
  ASSERT_EQ(moved.size(), 3u);
  EXPECT_EQ(moved[2], "gamma");

  SmallVector<std::string, 2> assigned;
  assigned.push_back("overwritten");
  assigned = v;
  EXPECT_EQ(assigned, v);
  assigned = SmallVector<std::string, 2>{"solo"};
  ASSERT_EQ(assigned.size(), 1u);
  EXPECT_EQ(assigned[0], "solo");

  // Inline-to-inline move: elements transfer one by one.
  SmallVector<std::string, 4> small{"x", "y"};
  SmallVector<std::string, 4> stolen = std::move(small);
  ASSERT_EQ(stolen.size(), 2u);
  EXPECT_EQ(stolen[0], "x");
  EXPECT_EQ(stolen[1], "y");
}

TEST(SmallVector, InsertAndClear) {
  SmallVector<int, 2> v{10, 30};
  v.insert(v.begin() + 1, 20);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 20);
  EXPECT_EQ(v[2], 30);
  v.insert(v.begin(), 5);
  EXPECT_EQ(v[0], 5);
  EXPECT_EQ(v[3], 30);

  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 65);

  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(7);  // usable after clear
  EXPECT_EQ(v.back(), 7);
}

}  // namespace
}  // namespace livesec
