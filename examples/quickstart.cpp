// Quickstart: the smallest useful LiveSec deployment.
//
// Builds one legacy switch, two AS switches, two hosts and one intrusion-
// detection service element; installs a policy steering host1 -> host2 web
// traffic through the IDS; sends benign and malicious requests; prints what
// the controller saw. Mirrors the interactive policy-enforcement walkthrough
// of paper §IV.A (Figure 3).
#include <cstdio>

#include "monitor/webui.h"
#include "net/network.h"
#include "net/traffic.h"

using namespace livesec;

int main() {
  net::Network network;

  // Legacy-Switching layer: one backbone switch.
  auto& backbone = network.add_legacy_switch("backbone");

  // Access-Switching layer: two OpenFlow switches.
  auto& ovs1 = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);

  // Network-Periphery layer: a user, a web server, and an IDS SE.
  auto& user = network.add_host("user", ovs1);
  auto& server = network.add_host("server", ovs2);
  auto& ids = network.add_service_element(svc::ServiceType::kIntrusionDetection, ovs2);

  // Policy: all TCP port-80 traffic must traverse intrusion detection.
  ctrl::Policy policy;
  policy.name = "web-via-ids";
  policy.priority = 10;
  policy.nw_proto = static_cast<std::uint8_t>(pkt::IpProto::kTcp);
  policy.tp_dst = 80;
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kIntrusionDetection};
  network.controller().policies().add(policy);

  // A web server app and two clients: one benign, one malicious.
  net::HttpServerApp http_server(server, {.port = 80, .response_size = 8 * 1024});

  network.start();

  net::HttpClientApp benign(user, {.server = server.ip(), .sessions = 3, .concurrency = 1,
                                   .expected_response = 8 * 1024});
  net::AttackApp attacker(user, {.server = server.ip()});
  benign.start();
  network.run_for(1 * kSecond);
  attacker.start();
  network.run_for(2 * kSecond);

  // Report.
  const auto& ctrl_stats = network.controller().stats();
  std::printf("=== quickstart results ===\n");
  std::printf("flows installed:         %llu\n",
              static_cast<unsigned long long>(ctrl_stats.flows_installed));
  std::printf("flows redirected to SE:  %llu\n",
              static_cast<unsigned long long>(ctrl_stats.flows_redirected));
  std::printf("flows blocked by event:  %llu\n",
              static_cast<unsigned long long>(ctrl_stats.flows_blocked_by_event));
  std::printf("benign responses done:   %llu\n",
              static_cast<unsigned long long>(benign.responses_completed()));
  std::printf("ids processed packets:   %llu\n",
              static_cast<unsigned long long>(ids.processed_packets()));
  std::printf("ids events sent:         %llu\n",
              static_cast<unsigned long long>(ids.events_sent()));

  mon::WebUi ui(network.controller());
  std::printf("\n%s\n", ui.snapshot_text(0, network.sim().now() + 1).c_str());
  return 0;
}
