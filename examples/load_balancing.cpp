// Distributed load balancing demo (paper §IV.B, Figure 4).
//
// Two hosts send flows toward the gateway; the controller spreads the
// security workload over two IDS service elements using the min-load
// dispatching method, and the per-SE load report shows the balance.
#include <cstdio>

#include "net/network.h"
#include "net/traffic.h"

using namespace livesec;

int main() {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& host_sw = network.add_as_switch("host-ovs", backbone);
  auto& se_sw1 = network.add_as_switch("se-ovs1", backbone);
  auto& se_sw2 = network.add_as_switch("se-ovs2", backbone);
  auto& gw_sw = network.add_as_switch("gw-ovs", backbone);

  auto& host1 = network.add_host("host1", host_sw);
  auto& host2 = network.add_host("host2", host_sw);
  auto& gateway = network.add_host("gateway", gw_sw, 1e9);
  auto& se1 = network.add_service_element(svc::ServiceType::kIntrusionDetection, se_sw1);
  auto& se2 = network.add_service_element(svc::ServiceType::kIntrusionDetection, se_sw2);

  ctrl::Policy policy;
  policy.name = "all-udp-via-ids";
  policy.nw_proto = static_cast<std::uint8_t>(pkt::IpProto::kUdp);
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kIntrusionDetection};
  policy.granularity = ctrl::LbGranularity::kPerFlow;
  network.controller().policies().add(policy);

  network.start();

  // Each host opens 8 flows; 16 flows total over 2 SEs.
  std::vector<std::unique_ptr<net::UdpCbrApp>> apps;
  for (net::Host* host : {&host1, &host2}) {
    for (int f = 0; f < 8; ++f) {
      apps.push_back(std::make_unique<net::UdpCbrApp>(
          *host, net::UdpCbrApp::Config{.dst = gateway.ip(),
                                        .dst_port = static_cast<std::uint16_t>(9000 + f),
                                        .src_port = static_cast<std::uint16_t>(45000 + f),
                                        .rate_bps = 5e6,
                                        .packet_payload = 1200,
                                        .duration = 3 * kSecond}));
      apps.back()->start();
    }
  }
  network.run_for(4 * kSecond);

  std::printf("=== load balancing results (min-load, flow-grain) ===\n");
  std::printf("%-8s %-22s %-16s\n", "SE", "processed packets", "events sent");
  std::printf("%-8s %-22llu %-16llu\n", "se1",
              static_cast<unsigned long long>(se1.processed_packets()),
              static_cast<unsigned long long>(se1.events_sent()));
  std::printf("%-8s %-22llu %-16llu\n", "se2",
              static_cast<unsigned long long>(se2.processed_packets()),
              static_cast<unsigned long long>(se2.events_sent()));

  const double p1 = static_cast<double>(se1.processed_packets());
  const double p2 = static_cast<double>(se2.processed_packets());
  const double deviation = std::abs(p1 - p2) / ((p1 + p2) / 2.0) * 100.0;
  std::printf("load deviation: %.1f%%  (paper §V.B.2: <=5%% for normal traffic)\n", deviation);

  std::printf("\ncontroller assignment counts per SE:\n");
  for (const auto& [se_id, count] : network.controller().load_balancer().assignment_counts()) {
    std::printf("  se%llu: %llu flows\n", static_cast<unsigned long long>(se_id),
                static_cast<unsigned long long>(count));
  }
  return 0;
}
