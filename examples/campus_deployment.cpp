// Campus-scale deployment (paper §V, Figure 6): the FIT-building testbed.
//
// "We implement two switching and wiring closets with OpenFlow-enabled
//  switches... twenty OF Wi-Fi APs in various meeting rooms... All 10
//  OpenFlow-enabled switches are both connected to the Gigabit backbone
//  network of the building by two 24-port Gigabit Ethernet switches...
//  about 30 wireless users, 20 wired users, and 200 VM-based service
//  elements."
//
// This example builds that deployment 1:1, runs a realistic mixed workload,
// and prints the controller's global view — demonstrating that a single
// controller manages the whole building.
#include <cstdio>

#include "controller/policy_parser.h"
#include "monitor/webui.h"
#include "net/network.h"
#include "net/traffic.h"

using namespace livesec;

int main() {
  net::Network network;

  // Legacy backbone: two 24-port GbE switches, interconnected.
  auto& core1 = network.add_legacy_switch("core1");
  auto& core2 = network.add_legacy_switch("core2");
  network.connect_legacy(core1, core2, 10e9);

  // 10 OvS in two wiring closets (5 per core switch), each hosting 20 SEs:
  // 8 OvS carry intrusion detection, 2 carry protocol identification.
  std::vector<sw::OpenFlowSwitch*> closet;
  for (int i = 0; i < 10; ++i) {
    auto& legacy = i < 5 ? core1 : core2;
    closet.push_back(&network.add_as_switch("ovs" + std::to_string(i), legacy));
    const auto service = i < 8 ? svc::ServiceType::kIntrusionDetection
                               : svc::ServiceType::kProtocolIdentification;
    for (int v = 0; v < 20; ++v) network.add_service_element(service, *closet.back());
  }

  // 20 OF Wi-Fi APs across meeting rooms.
  std::vector<sw::WifiAccessPoint*> aps;
  for (int i = 0; i < 20; ++i) {
    aps.push_back(&network.add_wifi_ap("ap" + std::to_string(i), i < 10 ? core1 : core2));
  }

  // 20 wired users on the closet switches, 30 wireless users on the APs.
  std::vector<net::Host*> wired, wireless;
  for (int i = 0; i < 20; ++i) {
    wired.push_back(&network.add_host("wired" + std::to_string(i),
                                      *closet[static_cast<std::size_t>(i % 10)]));
  }
  for (int i = 0; i < 30; ++i) {
    wireless.push_back(&network.add_wifi_host("wifi" + std::to_string(i),
                                              *aps[static_cast<std::size_t>(i % 20)]));
  }

  // The Internet gateway plus a web server behind it.
  auto& gw_sw = network.add_as_switch("gw-ovs", core1, 10e9);
  auto& gateway = network.add_host("gateway", gw_sw, 10e9);
  net::HttpServerApp web(gateway, {.port = 80, .response_size = 32 * 1024});

  // Building policy, in the administrator-facing config format (§IV.A):
  // web traffic is identified and inspected.
  std::vector<std::string> policy_errors;
  const auto policies = ctrl::parse_policies(
      "campus-web 10 redirect proto=tcp dport=80 chain=l7,ids granularity=flow\n",
      policy_errors);
  for (const auto& error : policy_errors) std::printf("policy error: %s\n", error.c_str());
  for (const auto& policy : policies) {
    network.controller().policies().add(policy);
    std::printf("policy loaded: %s\n", ctrl::format_policy(policy).c_str());
  }

  std::printf("building the FIT deployment (10 OvS + 20 APs + 200 SEs + 50 users)...\n");
  network.start(1 * kSecond);

  const auto& topo = network.controller().topology();
  std::printf("switches managed: %zu (full mesh: %s)\n", topo.switch_count(),
              topo.full_mesh() ? "yes" : "no");
  std::printf("service elements registered: %zu\n", network.controller().services().size());
  std::printf("hosts discovered: %zu\n", network.controller().routing().size());

  // Mixed workload: every user browses; a few hit malicious content.
  std::vector<std::unique_ptr<net::HttpClientApp>> clients;
  int port_base = 22000;
  auto browse = [&](net::Host& user) {
    clients.push_back(std::make_unique<net::HttpClientApp>(
        user, net::HttpClientApp::Config{.server = gateway.ip(),
                                         .first_src_port = static_cast<std::uint16_t>(port_base),
                                         .sessions = 2,
                                         .concurrency = 1,
                                         .expected_response = 32 * 1024}));
    port_base += 16;
    clients.back()->start();
  };
  for (auto* user : wired) browse(*user);
  for (auto* user : wireless) browse(*user);

  net::AttackApp attacker1(*wired[3], {.server = gateway.ip(), .packets = 10});
  net::AttackApp attacker2(*wireless[7], {.server = gateway.ip(), .src_port = 28081,
                                          .packets = 10});
  attacker1.start();
  attacker2.start();

  network.run_for(8 * kSecond);

  std::uint64_t completed = 0;
  for (const auto& client : clients) completed += client->responses_completed();

  const auto& stats = network.controller().stats();
  std::printf("\n=== after 8 simulated seconds of campus traffic ===\n");
  std::printf("web sessions completed:   %llu / %zu\n",
              static_cast<unsigned long long>(completed), clients.size() * 2);
  std::printf("flows installed:          %llu\n",
              static_cast<unsigned long long>(stats.flows_installed));
  std::printf("flows redirected:         %llu\n",
              static_cast<unsigned long long>(stats.flows_redirected));
  std::printf("attacks blocked:          %llu\n",
              static_cast<unsigned long long>(stats.flows_blocked_by_event));
  std::printf("packet-ins handled:       %llu\n",
              static_cast<unsigned long long>(stats.packet_ins));
  std::printf("daemon messages:          %llu\n",
              static_cast<unsigned long long>(stats.daemon_messages));

  std::printf("\nnetwork-wide application distribution:\n");
  for (const auto& [proto, flows] :
       network.controller().service_monitor().network_distribution()) {
    std::printf("  %-12s %llu flows\n", svc::l7::app_protocol_name(proto),
                static_cast<unsigned long long>(flows));
  }

  std::printf("\nSE load summary (first 5 of each service):\n");
  int shown_ids = 0, shown_l7 = 0;
  for (const auto* se : network.controller().services().all()) {
    const bool is_ids = se->service == svc::ServiceType::kIntrusionDetection;
    int& shown = is_ids ? shown_ids : shown_l7;
    if (shown >= 5) continue;
    ++shown;
    std::printf("  se%-4llu %-26s pps=%-8u assigned_flows=%llu\n",
                static_cast<unsigned long long>(se->se_id),
                svc::service_type_name(se->service), se->last_report.packets_per_second,
                static_cast<unsigned long long>(se->assigned_flows_total));
  }
  return 0;
}
