// Interactive policy enforcement walkthrough (paper §IV.A, Figure 3).
//
// Narrates each step of the mechanism:
//   1. a user flow to the "Internet" hits the policy table,
//   2. the controller installs the 4-entry redirection through a security SE,
//   3. the SE detects an attack and reports it over the daemon channel,
//   4. the controller modifies the ingress entry to drop — the flow is
//      blocked at the entrance and the inner network never sees it again.
#include <cstdio>

#include "net/network.h"
#include "net/traffic.h"

using namespace livesec;

namespace {

void dump_flow_table(const sw::OpenFlowSwitch& sw) {
  std::printf("  flow table of %s:\n", sw.name().c_str());
  for (const auto& entry : sw.flow_table().entries()) {
    std::printf("    %s\n", entry.to_string().c_str());
  }
}

}  // namespace

int main() {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& user_sw = network.add_as_switch("user-ovs", backbone);
  auto& se_sw = network.add_as_switch("se-ovs", backbone);
  auto& gw_sw = network.add_as_switch("gw-ovs", backbone);

  auto& user = network.add_host("user", user_sw);
  auto& gateway = network.add_host("internet-gw", gw_sw, 1e9);
  auto& ids = network.add_service_element(svc::ServiceType::kIntrusionDetection, se_sw);

  ctrl::Policy policy;
  policy.name = "internet-via-ids";
  policy.nw_proto = static_cast<std::uint8_t>(pkt::IpProto::kTcp);
  policy.tp_dst = 80;
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kIntrusionDetection};
  network.controller().policies().add(policy);
  std::printf("step 0: policy table:\n  %s\n\n", policy.to_string().c_str());

  net::HttpServerApp server(gateway, {.port = 80, .response_size = 4096});
  network.start();

  std::printf("step 1: user opens a benign web flow to the gateway...\n");
  net::HttpClientApp benign(user, {.server = gateway.ip(), .sessions = 1, .concurrency = 1,
                                   .expected_response = 4096});
  benign.start();
  network.run_for(500 * kMillisecond);
  std::printf("  responses completed: %llu (flow traversed the IDS: %llu packets seen)\n\n",
              static_cast<unsigned long long>(benign.responses_completed()),
              static_cast<unsigned long long>(ids.processed_packets()));

  std::printf("step 2: the 4-entry redirection is in place:\n");
  dump_flow_table(user_sw);
  dump_flow_table(se_sw);
  dump_flow_table(gw_sw);

  std::printf("\nstep 3: user now requests a malicious site (IDS rule 1014)...\n");
  net::AttackApp attacker(user, {.server = gateway.ip(), .packets = 15,
                                 .interval = 50 * kMillisecond});
  attacker.start();
  network.run_for(2 * kSecond);

  std::printf("step 4: controller reaction (event log):\n");
  network.controller().events().replay(500 * kMillisecond, network.sim().now() + 1,
                                       [](const mon::NetworkEvent& e) {
                                         if (e.type == mon::EventType::kAttackDetected ||
                                             e.type == mon::EventType::kFlowBlocked ||
                                             e.type == mon::EventType::kFlowStart) {
                                           std::printf("  %s\n", e.to_string().c_str());
                                         }
                                       });

  std::printf("\nstep 5: ingress entry now drops at the entrance:\n");
  dump_flow_table(user_sw);

  std::printf("\nattack packets sent: %llu, requests that reached the gateway: %llu\n",
              static_cast<unsigned long long>(attacker.packets_sent()),
              static_cast<unsigned long long>(server.requests_served()));
  return 0;
}
