// Traffic capture & offline forensics: SPAN-mirrors a user's traffic into a
// trace, persists it, then replays it against an updated IDS ruleset — the
// "historical traffic replay" workflow of the paper's abstract, at packet
// granularity.
#include <cstdio>

#include "monitor/trace.h"
#include "net/network.h"
#include "net/trace_sink.h"
#include "net/traffic.h"

using namespace livesec;

int main() {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& user_sw = network.add_as_switch("user-ovs", backbone);
  auto& srv_sw = network.add_as_switch("srv-ovs", backbone);
  auto& user = network.add_host("user", user_sw);
  auto& server = network.add_host("server", srv_sw, 1e9);

  // A capture box on a SPAN port of the user's switch.
  net::TraceSink capture(network.sim(), "capture-box");
  sim::Port& span = user_sw.add_port(sw::PortRole::kNetworkPeriphery);
  auto span_link = sim::connect(network.sim(), capture.port(0), span);
  network.controller().set_mirror_port(1, span.id());

  net::HttpServerApp web(server, {.port = 80, .response_size = 4 * 1024});
  network.start();

  std::printf("step 1: user browses; one request carries a (not yet known) exploit...\n");
  net::HttpClientApp benign(user, {.server = server.ip(), .sessions = 2, .concurrency = 1,
                                   .expected_response = 4 * 1024});
  benign.start();
  network.run_for(1 * kSecond);

  net::AttackApp stealth(user, {.server = server.ip(),
                                .attack_payload =
                                    "GET /app?cmd=STAGE2-IMPLANT-BEACON HTTP/1.1\r\n\r\n",
                                .packets = 3});
  stealth.start();
  network.run_for(1 * kSecond);

  std::printf("  captured %zu frames (%llu bytes) on the SPAN port\n", capture.trace().size(),
              static_cast<unsigned long long>(capture.trace().total_bytes()));

  std::printf("\nstep 2: persist the capture (the paper's database role)...\n");
  const auto blob = capture.trace().serialize();
  std::printf("  trace blob: %zu bytes\n", blob.size());
  const auto restored = mon::Trace::deserialize(blob);
  if (!restored) {
    std::printf("  ERROR: trace did not round-trip\n");
    return 1;
  }

  std::printf("\nstep 3: offline census of the captured traffic...\n");
  svc::l7::L7Classifier census_classifier;
  for (const auto& [proto, flows] : restored->classify_flows(census_classifier)) {
    std::printf("  %-12s %zu flows\n", svc::l7::app_protocol_name(proto), flows);
  }

  std::printf("\nstep 4: replay against TODAY's IDS rules...\n");
  svc::ids::IdsEngine today;
  std::printf("  alerts: %zu (the implant marker is not in the ruleset yet)\n",
              restored->replay_into(today).size());

  std::printf("\nstep 5: threat intel lands; replay the SAME capture with the new rule...\n");
  std::vector<std::string> errors;
  auto rules = svc::ids::parse_rules(
      "9100 implant.stage2-beacon tcp 80 10 STAGE2-IMPLANT-BEACON\n", errors);
  svc::ids::IdsEngine tomorrow(std::move(rules));
  const auto alerts = restored->replay_into(tomorrow);
  std::printf("  alerts: %zu\n", alerts.size());
  for (const auto& alert : alerts) {
    std::printf("    rule %u '%s' sev=%d on flow %s\n", alert.rule_id, alert.rule_name.c_str(),
                alert.severity, alert.flow.to_string().c_str());
  }
  std::printf("\nforensics verdict: the compromise WAS in last week's traffic.\n");
  return alerts.empty() ? 1 : 0;
}
