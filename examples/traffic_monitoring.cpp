// Service-aware traffic monitoring + visualization (paper §IV.C-D, Fig 5).
//
// Shows the WebUI pipeline end to end: protocol-identification SEs classify
// user flows, the controller's monitoring component aggregates per-user
// usage, aggregate flow control caps BitTorrent, and the event database
// supports live snapshots, JSON export, and history replay.
#include <cstdio>

#include "monitor/webui.h"
#include "net/network.h"
#include "net/traffic.h"

using namespace livesec;

int main() {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& user_sw = network.add_as_switch("user-ovs", backbone);
  auto& se_sw = network.add_as_switch("se-ovs", backbone);
  auto& srv_sw = network.add_as_switch("srv-ovs", backbone);

  auto& alice = network.add_host("alice", user_sw);
  auto& bob = network.add_host("bob", user_sw);
  auto& web_server = network.add_host("web", srv_sw, 1e9);
  auto& ssh_server = network.add_host("sshd", srv_sw, 1e9);
  auto& bt_peer = network.add_host("peer", srv_sw, 1e9);
  network.add_service_element(svc::ServiceType::kProtocolIdentification, se_sw);
  network.add_service_element(svc::ServiceType::kProtocolIdentification, se_sw);

  ctrl::Policy policy;
  policy.name = "identify-all-tcp";
  policy.nw_proto = static_cast<std::uint8_t>(pkt::IpProto::kTcp);
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kProtocolIdentification};
  network.controller().policies().add(policy);

  // Aggregate flow control: at most 2 concurrent BitTorrent flows per user.
  network.controller().flow_control().set_limit(svc::l7::AppProtocol::kBitTorrent, 2);

  net::HttpServerApp web(web_server, {.port = 80, .response_size = 8 * 1024});
  network.start();

  // Alice browses; Bob SSHes, then torrents from 4 peers (2 get cut).
  net::HttpClientApp browsing(alice, {.server = web_server.ip(), .sessions = 4,
                                      .concurrency = 2, .expected_response = 8 * 1024});
  browsing.start();
  net::SshApp ssh(bob, {.server = ssh_server.ip(), .duration = 4 * kSecond});
  ssh.start();
  network.run_for(2 * kSecond);

  net::BitTorrentApp torrent(bob, {.peers = {bt_peer.ip(), bt_peer.ip(), bt_peer.ip(),
                                             bt_peer.ip()},
                                   .rate_bps = 10e6,
                                   .duration = 2 * kSecond});
  torrent.start();
  network.run_for(3 * kSecond);

  mon::WebUi ui(network.controller());
  std::printf("%s\n", ui.snapshot_text(0, network.sim().now()).c_str());

  std::printf("=== per-user service consumption (paper §IV.C) ===\n");
  const auto& monitor = network.controller().service_monitor();
  for (const MacAddress& user : monitor.users()) {
    std::printf("  %s:\n", user.to_string().c_str());
    for (const auto& [proto, usage] : *monitor.usage(user)) {
      std::printf("    %-12s flows=%llu active=%llu\n", svc::l7::app_protocol_name(proto),
                  static_cast<unsigned long long>(usage.flows),
                  static_cast<unsigned long long>(usage.active_flows));
    }
  }

  std::printf("\naggregate flow control rejections: %llu\n",
              static_cast<unsigned long long>(
                  network.controller().flow_control().rejections()));

  std::printf("\n=== JSON snapshot (WebUI data feed, truncated) ===\n");
  const std::string json = ui.snapshot_json(0, network.sim().now());
  std::printf("%.600s...\n", json.c_str());

  std::printf("\n=== history replay of the torrent phase ===\n%s\n",
              ui.replay_text(2 * kSecond, network.sim().now()).c_str());
  return 0;
}
