// Mobility & elasticity walkthrough: DHCP-managed users roaming between
// access switches while a service element VM live-migrates under them
// (paper §III.D: "dynamic migration for elastic utilization of network
// service resources ... the mobility of users and VMs can be guaranteed").
#include <cstdio>

#include "net/network.h"
#include "net/traffic.h"

using namespace livesec;

int main() {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& floor1 = network.add_as_switch("floor1-ovs", backbone);
  auto& floor2 = network.add_as_switch("floor2-ovs", backbone);
  auto& dc = network.add_as_switch("dc-ovs", backbone);

  // Central DHCP service (directory proxy, paper §III.C.2).
  network.controller().enable_dhcp(Ipv4Address(10, 50, 0, 10), 32);

  auto& laptop = network.add_host("laptop", floor1);
  auto& server = network.add_host("server", dc, 1e9);
  auto& ids = network.add_service_element(svc::ServiceType::kIntrusionDetection, floor1);

  ctrl::Policy policy;
  policy.nw_proto = static_cast<std::uint8_t>(pkt::IpProto::kUdp);
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kIntrusionDetection};
  network.controller().policies().add(policy);

  network.start();

  std::printf("step 1: laptop requests an address via DHCP...\n");
  laptop.start_dhcp([](Ipv4Address ip) {
    std::printf("  leased %s from the directory proxy\n", ip.to_string().c_str());
  });
  network.run_for(500 * kMillisecond);

  std::printf("\nstep 2: laptop streams to the server through the floor1 IDS...\n");
  net::UdpCbrApp stream(laptop, {.dst = server.ip(), .rate_bps = 8e6, .duration = 12 * kSecond});
  stream.start();
  network.run_for(3 * kSecond);
  std::printf("  server received %llu packets; IDS inspected %llu\n",
              static_cast<unsigned long long>(server.rx_ip_packets()),
              static_cast<unsigned long long>(ids.processed_packets()));

  std::printf("\nstep 3: the IDS VM live-migrates floor1 -> dc rack...\n");
  network.migrate_service_element(ids, dc);
  network.run_for(3 * kSecond);

  std::printf("\nstep 4: the user roams floor1 -> floor2 mid-stream...\n");
  network.move_host(laptop, floor2);
  network.run_for(3 * kSecond);

  const auto rx_final = server.rx_ip_packets();
  std::printf("  server total: %llu packets (stream survived both moves)\n",
              static_cast<unsigned long long>(rx_final));

  std::printf("\nevent log (mobility-related):\n");
  network.controller().events().replay(0, network.sim().now() + 1,
                                       [](const mon::NetworkEvent& e) {
                                         switch (e.type) {
                                           case mon::EventType::kHostJoin:
                                           case mon::EventType::kHostMoved:
                                           case mon::EventType::kSeOnline:
                                           case mon::EventType::kSeMigrated:
                                             std::printf("  %s\n", e.to_string().c_str());
                                             break;
                                           default:
                                             break;
                                         }
                                       });
  return 0;
}
