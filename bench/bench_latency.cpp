// E5 — Latency overhead (paper §V.B.3).
//
// Paper: "We test the network delay by pinging from the user to an Internet
// server. Compared with legacy switching network without access the Internet
// through OpenFlow-enable equipment, we can find that, LiveSec only increase
// the average latency by around 10%."
//
// Reproduction: the same physical path (host -> access -> backbone ->
// gateway) measured twice — once with the host and gateway attached directly
// to the legacy fabric, once behind AS switches with the controller in the
// loop. 20 pings each; the first LiveSec ping pays the packet-in round trip,
// subsequent ones ride installed entries, so the averaged overhead lands
// near the paper's ~10%.
#include <cstdio>

#include "bench_json.h"
#include "net/network.h"

using namespace livesec;

namespace {

double run_legacy_ping() {
  net::Network network;
  auto& access = network.add_legacy_switch("access");
  auto& backbone = network.add_legacy_switch("backbone");
  network.connect_legacy(access, backbone);
  auto& user = network.add_legacy_host("user", access);
  // The "Internet server" of the paper's test sits across a WAN span.
  auto& gateway = network.add_legacy_host("gateway", backbone, 1e9, 400 * kMicrosecond);
  network.start();

  user.ping(gateway.ip(), 20, 20 * kMillisecond);
  network.run_for(3 * kSecond);
  return user.ping_stats().avg_rtt();
}

double run_livesec_ping() {
  net::Network network;
  auto& access = network.add_legacy_switch("access");
  auto& backbone = network.add_legacy_switch("backbone");
  network.connect_legacy(access, backbone);
  auto& user_sw = network.add_as_switch("user-ovs", access);
  auto& gw_sw = network.add_as_switch("gw-ovs", backbone);
  auto& user = network.add_host("user", user_sw);
  auto& gateway = network.add_host("gateway", gw_sw, 1e9, 400 * kMicrosecond);
  network.start();

  user.ping(gateway.ip(), 20, 20 * kMillisecond);
  network.run_for(3 * kSecond);
  return user.ping_stats().avg_rtt();
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = benchjson::wants_json(argc, argv);
  if (!json) std::printf("=== E5: ping latency, legacy vs LiveSec (paper §V.B.3) ===\n");
  const double legacy = run_legacy_ping();
  const double livesec = run_livesec_ping();
  const double overhead = (livesec - legacy) / legacy * 100.0;

  const bool ok = overhead > 2.0 && overhead < 25.0;
  if (json) {
    benchjson::Emitter out("bench_latency");
    out.metric("legacy_avg_rtt", legacy / kMicrosecond, "us");
    out.metric("livesec_avg_rtt", livesec / kMicrosecond, "us");
    out.metric("overhead", overhead, "percent");
    out.flag("shape_ok", ok);
    out.print();
  } else {
    std::printf("%-26s %12.1f us\n", "legacy avg RTT", legacy / kMicrosecond);
    std::printf("%-26s %12.1f us\n", "LiveSec avg RTT", livesec / kMicrosecond);
    std::printf("%-26s %11.1f %%  (paper: ~10%%)\n", "overhead", overhead);
    std::printf("shape check (moderate single-digit..low-tens %% overhead): %s\n",
                ok ? "PASS" : "FAIL");
  }
  return ok ? 0 : 1;
}
