// Baseline comparison — traditional on-path middlebox vs LiveSec off-path
// service elements (paper §I: "Single point of performance bottleneck ...
// the performance can be linearly raised by increasing the number of
// service elements" and §II's pswitch/PLayer discussion).
//
// Both deployments inspect the same UDP workload with appliances of the
// SAME unit capacity (~500 Mbps). The traditional build puts the appliance
// in series on the gateway path: adding more boxes cannot help without
// re-zoning the physical network, so throughput stays flat. LiveSec steers
// flows across n off-path SEs with min-load balancing: throughput rises
// linearly with n.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "net/middlebox.h"
#include "net/network.h"
#include "net/traffic.h"

using namespace livesec;

namespace {

/// Traditional architecture: clients -> legacy switch -> middlebox ->
/// gateway-side switch -> sinks. Every flow serializes through the one box
/// (extra boxes would sit idle without manual VLAN re-zoning — the paper's
/// point — so we only measure one).
double run_traditional(int client_pairs, double offered_per_client_bps) {
  sim::Simulator sim;
  sw::EthernetSwitch inside(sim, "inside");
  sw::EthernetSwitch outside(sim, "outside");
  net::InlineMiddlebox middlebox(sim, "fw");
  std::vector<std::unique_ptr<sim::Link>> links;
  links.push_back(sim::connect(sim, middlebox.inside(), inside.add_port(),
                               {.bandwidth_bps = 10e9}));
  links.push_back(sim::connect(sim, middlebox.outside(), outside.add_port(),
                               {.bandwidth_bps = 10e9}));

  std::vector<std::unique_ptr<net::Host>> clients;
  std::vector<std::unique_ptr<net::Host>> sinks;
  for (int i = 0; i < client_pairs; ++i) {
    clients.push_back(std::make_unique<net::Host>(
        sim, "c" + std::to_string(i), MacAddress::from_uint64(0x100 + static_cast<unsigned>(i)),
        Ipv4Address(10, 8, 0, static_cast<std::uint8_t>(i + 1))));
    sinks.push_back(std::make_unique<net::Host>(
        sim, "s" + std::to_string(i), MacAddress::from_uint64(0x200 + static_cast<unsigned>(i)),
        Ipv4Address(10, 9, 0, static_cast<std::uint8_t>(i + 1))));
    links.push_back(sim::connect(sim, clients.back()->port(0), inside.add_port(),
                                 {.bandwidth_bps = 10e9}));
    links.push_back(sim::connect(sim, sinks.back()->port(0), outside.add_port(),
                                 {.bandwidth_bps = 10e9}));
  }
  for (auto& host : clients) host->announce();
  for (auto& host : sinks) host->announce();
  sim.run_until(sim.now() + 100 * kMillisecond);

  const SimTime duration = 2 * kSecond;
  std::vector<std::unique_ptr<net::UdpCbrApp>> apps;
  for (int i = 0; i < client_pairs; ++i) {
    for (int f = 0; f < 4; ++f) {
      apps.push_back(std::make_unique<net::UdpCbrApp>(
          *clients[static_cast<std::size_t>(i)],
          net::UdpCbrApp::Config{.dst = sinks[static_cast<std::size_t>(i)]->ip(),
                                 .dst_port = static_cast<std::uint16_t>(9000 + f),
                                 .src_port = static_cast<std::uint16_t>(40000 + f),
                                 .rate_bps = offered_per_client_bps / 4,
                                 .packet_payload = 1400,
                                 .duration = duration}));
    }
  }
  const SimTime start = sim.now();
  for (auto& app : apps) app->start();
  sim.run_until(start + duration);
  std::uint64_t delivered = 0;
  for (auto& sink : sinks) delivered += sink->rx_ip_bytes();
  return static_cast<double>(delivered) * 8.0 / to_seconds(sim.now() - start);
}

/// LiveSec architecture: same unit appliances as off-path SEs on separate
/// hosts, min-load flow-grain balancing.
double run_livesec(int se_count, int client_pairs, double offered_per_client_bps) {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  for (int i = 0; i < se_count; ++i) {
    auto& se_sw = network.add_as_switch("se-sw" + std::to_string(i), backbone, 10e9);
    network.add_service_element(svc::ServiceType::kIntrusionDetection, se_sw);
  }
  ctrl::Policy policy;
  policy.nw_proto = static_cast<std::uint8_t>(pkt::IpProto::kUdp);
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kIntrusionDetection};
  network.controller().policies().add(policy);

  auto& client_sw = network.add_as_switch("clients", backbone, 10e9);
  auto& sink_sw = network.add_as_switch("sinks", backbone, 10e9);
  std::vector<net::Host*> clients, sinks;
  for (int i = 0; i < client_pairs; ++i) {
    clients.push_back(&network.add_host("c" + std::to_string(i), client_sw, 10e9));
    sinks.push_back(&network.add_host("s" + std::to_string(i), sink_sw, 10e9));
  }
  network.start();

  const SimTime duration = 2 * kSecond;
  std::vector<std::unique_ptr<net::UdpCbrApp>> apps;
  for (int i = 0; i < client_pairs; ++i) {
    for (int f = 0; f < 4; ++f) {
      apps.push_back(std::make_unique<net::UdpCbrApp>(
          *clients[static_cast<std::size_t>(i)],
          net::UdpCbrApp::Config{.dst = sinks[static_cast<std::size_t>(i)]->ip(),
                                 .dst_port = static_cast<std::uint16_t>(9000 + f),
                                 .src_port = static_cast<std::uint16_t>(40000 + f),
                                 .rate_bps = offered_per_client_bps / 4,
                                 .packet_payload = 1400,
                                 .duration = duration}));
    }
  }
  const SimTime start = network.sim().now();
  for (auto& app : apps) app->start();
  network.run_for(duration);
  std::uint64_t delivered = 0;
  for (auto* sink : sinks) delivered += sink->rx_ip_bytes();
  return static_cast<double>(delivered) * 8.0 / to_seconds(network.sim().now() - start);
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = benchjson::wants_json(argc, argv);
  benchjson::Emitter out("bench_baseline_onpath");
  if (!json) {
    std::printf("=== Baseline: on-path middlebox vs LiveSec off-path SEs ===\n");
    std::printf("(unit appliance capacity ~500 Mbps; 8 client pairs, 2.4 Gbps offered)\n\n");
  }

  const int pairs = 8;
  const double offered = 300e6;  // per client => 2.4 Gbps total

  const double traditional = run_traditional(pairs, offered);
  if (json) {
    out.metric("traditional_goodput", traditional, "bps");
  } else {
    std::printf("%-34s %-16s\n", "architecture", "goodput");
    std::printf("%-34s %-16s\n", "traditional (1 on-path box)",
                format_rate_bps(traditional).c_str());
  }

  double first = 0;
  bool linear = true;
  for (int n : {1, 2, 4}) {
    const double livesec = run_livesec(n, pairs, offered);
    if (n == 1) first = livesec;
    if (json) {
      out.metric("livesec_" + std::to_string(n) + "se_goodput", livesec, "bps");
    } else {
      std::printf("livesec (%d off-path SE%s)%*s %-16s %.2fx\n", n, n > 1 ? "s" : "",
                  n > 1 ? 8 : 9, "", format_rate_bps(livesec).c_str(), livesec / first);
    }
    if (n == 2 && livesec < 1.7 * first) linear = false;
    if (n == 4 && livesec < 3.2 * first) linear = false;
  }

  const bool ok = traditional < 600e6 && linear;
  if (json) {
    out.flag("shape_ok", ok);
    out.print();
  } else {
    std::printf("\nshape check (on-path flat ~500 Mbps; LiveSec scales ~linearly): %s\n",
                ok ? "PASS" : "FAIL");
  }
  return ok ? 0 : 1;
}
