// Shared --json support for the system benches (the printf-style binaries;
// the google-benchmark ones translate --json to --benchmark_format=json).
//
// Output shape, one object per binary:
//   {"bench": "<name>", "results": [{"name": ..., "value": ..., "unit": ...}]}
// Values are finite doubles; names are stable identifiers so downstream
// tooling can track the perf trajectory across commits.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace livesec::benchjson {

/// True when the binary was invoked with --json anywhere on the command line.
inline bool wants_json(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") return true;
  }
  return false;
}

/// Collects named metrics and prints them as one JSON object. In text mode
/// callers keep their existing printf reporting and simply skip print().
class Emitter {
 public:
  explicit Emitter(std::string bench_name) : bench_(std::move(bench_name)) {}

  void metric(std::string name, double value, std::string unit) {
    results_.push_back(Row{std::move(name), value, std::move(unit)});
  }
  void flag(std::string name, bool value) {
    results_.push_back(Row{std::move(name), value ? 1.0 : 0.0, "bool"});
  }

  void print() const {
    std::printf("{\"bench\": \"%s\", \"results\": [", bench_.c_str());
    for (std::size_t i = 0; i < results_.size(); ++i) {
      const Row& r = results_[i];
      const double v = std::isfinite(r.value) ? r.value : 0.0;
      std::printf("%s{\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\"}",
                  i == 0 ? "" : ", ", r.name.c_str(), v, r.unit.c_str());
    }
    std::printf("]}\n");
  }

 private:
  struct Row {
    std::string name;
    double value;
    std::string unit;
  };

  std::string bench_;
  std::vector<Row> results_;
};

}  // namespace livesec::benchjson
