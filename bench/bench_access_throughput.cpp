// E1 — Access throughput (paper §V.B.1).
//
// Paper: "single OvS can get up to 100Mbps access performance for wired
// users, and single Pantou can reach 43Mbps for wireless users" (UDP flows).
//
// Reproduction: one wired user behind an OvS and one wireless user behind an
// OF Wi-Fi AP each blast UDP upstream to a sink for 5 simulated seconds;
// goodput is measured at the sink.
#include <cstdio>

#include "net/network.h"
#include "net/traffic.h"

using namespace livesec;

namespace {

double run_wired() {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);
  auto& user = network.add_host("wired-user", ovs, 100e6);  // paper: 100 Mbps access
  auto& sink = network.add_host("sink", ovs2, 1e9);
  network.start();

  const SimTime duration = 5 * kSecond;
  net::UdpCbrApp app(user, {.dst = sink.ip(),
                            .rate_bps = 200e6,  // oversubscribe: the link is the limit
                            .packet_payload = 1400,
                            .duration = duration});
  sink.reset_counters();
  const SimTime start = network.sim().now();
  app.start();
  network.run_for(duration + 500 * kMillisecond);
  const double seconds = to_seconds(network.sim().now() - start);
  return static_cast<double>(sink.rx_ip_bytes()) * 8.0 / seconds;
}

double run_wireless() {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs = network.add_as_switch("ovs1", backbone);
  auto& ap = network.add_wifi_ap("ap1", backbone);
  auto& user = network.add_wifi_host("wifi-user", ap);
  auto& sink = network.add_host("sink", ovs, 1e9);
  network.start();

  const SimTime duration = 5 * kSecond;
  net::UdpCbrApp app(user, {.dst = sink.ip(),
                            .rate_bps = 100e6,
                            .packet_payload = 1400,
                            .duration = duration});
  sink.reset_counters();
  const SimTime start = network.sim().now();
  app.start();
  network.run_for(duration + 500 * kMillisecond);
  const double seconds = to_seconds(network.sim().now() - start);
  return static_cast<double>(sink.rx_ip_bytes()) * 8.0 / seconds;
}

/// Aggregate throughput of n wired users on one OvS (each on a 100 Mbps
/// access link, GbE uplink) — the paper's "bandwidth provided for every
/// user will be no less than 100Mbps" scaling to the OvS NIC.
double run_wired_multi(int users) {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs = network.add_as_switch("ovs1", backbone, 1e9);
  auto& sink_sw = network.add_as_switch("ovs2", backbone, 10e9);
  auto& sink = network.add_host("sink", sink_sw, 10e9);
  std::vector<net::Host*> hosts;
  for (int i = 0; i < users; ++i) {
    hosts.push_back(&network.add_host("u" + std::to_string(i), ovs, 100e6));
  }
  network.start();

  const SimTime duration = 3 * kSecond;
  std::vector<std::unique_ptr<net::UdpCbrApp>> apps;
  for (auto* host : hosts) {
    apps.push_back(std::make_unique<net::UdpCbrApp>(
        *host, net::UdpCbrApp::Config{.dst = sink.ip(), .rate_bps = 150e6, .duration = duration}));
  }
  sink.reset_counters();
  const SimTime start = network.sim().now();
  for (auto& app : apps) app->start();
  network.run_for(duration + 500 * kMillisecond);
  return static_cast<double>(sink.rx_ip_bytes()) * 8.0 / to_seconds(network.sim().now() - start);
}

/// Aggregate throughput of n wireless stations on one Pantou AP: the shared
/// radio pins the total near 43 Mbps no matter how many stations associate.
double run_wireless_multi(int stations) {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs = network.add_as_switch("ovs1", backbone);
  auto& ap = network.add_wifi_ap("ap1", backbone);
  auto& sink = network.add_host("sink", ovs, 1e9);
  std::vector<net::Host*> hosts;
  for (int i = 0; i < stations; ++i) {
    hosts.push_back(&network.add_wifi_host("sta" + std::to_string(i), ap));
  }
  network.start();

  const SimTime duration = 3 * kSecond;
  std::vector<std::unique_ptr<net::UdpCbrApp>> apps;
  for (auto* host : hosts) {
    apps.push_back(std::make_unique<net::UdpCbrApp>(
        *host, net::UdpCbrApp::Config{.dst = sink.ip(), .rate_bps = 60e6, .duration = duration}));
  }
  sink.reset_counters();
  const SimTime start = network.sim().now();
  for (auto& app : apps) app->start();
  network.run_for(duration + 500 * kMillisecond);
  return static_cast<double>(sink.rx_ip_bytes()) * 8.0 / to_seconds(network.sim().now() - start);
}

}  // namespace

int main() {
  std::printf("=== E1: access throughput (paper §V.B.1) ===\n");
  std::printf("%-28s %-18s %-18s\n", "access type", "paper", "measured");

  const double wired = run_wired();
  std::printf("%-28s %-18s %-18s\n", "wired user via OvS", "~100 Mbps",
              format_rate_bps(wired).c_str());

  const double wireless = run_wireless();
  std::printf("%-28s %-18s %-18s\n", "wireless user via Pantou", "~43 Mbps",
              format_rate_bps(wireless).c_str());

  std::printf("\n-- wired users on one OvS (100 Mbps each, GbE uplink) --\n");
  std::printf("%-10s %-18s %-18s\n", "users", "expected", "measured");
  bool multi_ok = true;
  for (int n : {1, 4, 8, 12}) {
    const double rate = run_wired_multi(n);
    const double expected = std::min(n * 100e6, 1e9);
    std::printf("%-10d %-18s %-18s\n", n, format_rate_bps(expected).c_str(),
                format_rate_bps(rate).c_str());
    if (rate < expected * 0.85 || rate > expected * 1.05) multi_ok = false;
  }

  std::printf("\n-- wireless stations on one AP (shared 43 Mbps radio) --\n");
  std::printf("%-10s %-18s %-18s\n", "stations", "expected", "measured");
  for (int n : {1, 2, 5, 10}) {
    const double rate = run_wireless_multi(n);
    std::printf("%-10d %-18s %-18s\n", n, "<= ~43 Mbps", format_rate_bps(rate).c_str());
    if (rate > 46e6) multi_ok = false;
  }

  const bool ok =
      wired > 90e6 && wired < 105e6 && wireless > 38e6 && wireless < 46e6 && multi_ok;
  std::printf("\nshape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
