// E1 — Access throughput (paper §V.B.1).
//
// Paper: "single OvS can get up to 100Mbps access performance for wired
// users, and single Pantou can reach 43Mbps for wireless users" (UDP flows).
//
// Reproduction: one wired user behind an OvS and one wireless user behind an
// OF Wi-Fi AP each blast UDP upstream to a sink for 5 simulated seconds;
// goodput is measured at the sink.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_json.h"
#include "net/network.h"
#include "net/traffic.h"

using namespace livesec;

namespace {

double run_wired() {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);
  auto& user = network.add_host("wired-user", ovs, 100e6);  // paper: 100 Mbps access
  auto& sink = network.add_host("sink", ovs2, 1e9);
  network.start();

  const SimTime duration = 5 * kSecond;
  net::UdpCbrApp app(user, {.dst = sink.ip(),
                            .rate_bps = 200e6,  // oversubscribe: the link is the limit
                            .packet_payload = 1400,
                            .duration = duration});
  sink.reset_counters();
  const SimTime start = network.sim().now();
  app.start();
  network.run_for(duration + 500 * kMillisecond);
  const double seconds = to_seconds(network.sim().now() - start);
  return static_cast<double>(sink.rx_ip_bytes()) * 8.0 / seconds;
}

double run_wireless() {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs = network.add_as_switch("ovs1", backbone);
  auto& ap = network.add_wifi_ap("ap1", backbone);
  auto& user = network.add_wifi_host("wifi-user", ap);
  auto& sink = network.add_host("sink", ovs, 1e9);
  network.start();

  const SimTime duration = 5 * kSecond;
  net::UdpCbrApp app(user, {.dst = sink.ip(),
                            .rate_bps = 100e6,
                            .packet_payload = 1400,
                            .duration = duration});
  sink.reset_counters();
  const SimTime start = network.sim().now();
  app.start();
  network.run_for(duration + 500 * kMillisecond);
  const double seconds = to_seconds(network.sim().now() - start);
  return static_cast<double>(sink.rx_ip_bytes()) * 8.0 / seconds;
}

/// Aggregate throughput of n wired users on one OvS (each on a 100 Mbps
/// access link, GbE uplink) — the paper's "bandwidth provided for every
/// user will be no less than 100Mbps" scaling to the OvS NIC.
double run_wired_multi(int users) {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs = network.add_as_switch("ovs1", backbone, 1e9);
  auto& sink_sw = network.add_as_switch("ovs2", backbone, 10e9);
  auto& sink = network.add_host("sink", sink_sw, 10e9);
  std::vector<net::Host*> hosts;
  for (int i = 0; i < users; ++i) {
    hosts.push_back(&network.add_host("u" + std::to_string(i), ovs, 100e6));
  }
  network.start();

  const SimTime duration = 3 * kSecond;
  std::vector<std::unique_ptr<net::UdpCbrApp>> apps;
  for (auto* host : hosts) {
    apps.push_back(std::make_unique<net::UdpCbrApp>(
        *host, net::UdpCbrApp::Config{.dst = sink.ip(), .rate_bps = 150e6, .duration = duration}));
  }
  sink.reset_counters();
  const SimTime start = network.sim().now();
  for (auto& app : apps) app->start();
  network.run_for(duration + 500 * kMillisecond);
  return static_cast<double>(sink.rx_ip_bytes()) * 8.0 / to_seconds(network.sim().now() - start);
}

/// Aggregate throughput of n wireless stations on one Pantou AP: the shared
/// radio pins the total near 43 Mbps no matter how many stations associate.
double run_wireless_multi(int stations) {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs = network.add_as_switch("ovs1", backbone);
  auto& ap = network.add_wifi_ap("ap1", backbone);
  auto& sink = network.add_host("sink", ovs, 1e9);
  std::vector<net::Host*> hosts;
  for (int i = 0; i < stations; ++i) {
    hosts.push_back(&network.add_wifi_host("sta" + std::to_string(i), ap));
  }
  network.start();

  const SimTime duration = 3 * kSecond;
  std::vector<std::unique_ptr<net::UdpCbrApp>> apps;
  for (auto* host : hosts) {
    apps.push_back(std::make_unique<net::UdpCbrApp>(
        *host, net::UdpCbrApp::Config{.dst = sink.ip(), .rate_bps = 60e6, .duration = duration}));
  }
  sink.reset_counters();
  const SimTime start = network.sim().now();
  for (auto& app : apps) app->start();
  network.run_for(duration + 500 * kMillisecond);
  return static_cast<double>(sink.rx_ip_bytes()) * 8.0 / to_seconds(network.sim().now() - start);
}

/// Wall-clock cost of the wired run with the OvS flow table prefilled with
/// `extra` idle exact entries. Simulated goodput is table-size independent;
/// the host-CPU time is not — with the linear-scan table it grew with every
/// resident entry, with the exact-match hash tier it stays flat.
double run_wired_prefilled_wallclock(int extra, double* goodput) {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);
  auto& user = network.add_host("wired-user", ovs, 100e6);
  auto& sink = network.add_host("sink", ovs2, 1e9);
  network.start();

  for (int i = 0; i < extra; ++i) {
    pkt::FlowKey key;
    key.dl_src = MacAddress::from_uint64(0xC000000 + static_cast<std::uint64_t>(i));
    key.dl_dst = MacAddress::from_uint64(0xD);
    key.dl_type = static_cast<std::uint16_t>(pkt::EtherType::kIpv4);
    key.nw_src = Ipv4Address(static_cast<std::uint32_t>((172u << 24) | (i + 1)));
    key.nw_dst = Ipv4Address(172, 16, 0, 1);
    key.nw_proto = 17;
    key.tp_src = static_cast<std::uint16_t>(i % 60000 + 1);
    key.tp_dst = 9999;
    of::FlowEntry e;
    e.match = of::Match::exact(0, key);
    e.actions = of::output_to(1);
    ovs.flow_table().add(e, network.sim().now());
  }

  const SimTime duration = 2 * kSecond;
  net::UdpCbrApp app(user, {.dst = sink.ip(),
                            .rate_bps = 200e6,
                            .packet_payload = 1400,
                            .duration = duration});
  sink.reset_counters();
  const SimTime start = network.sim().now();
  const auto wall_start = std::chrono::steady_clock::now();
  app.start();
  network.run_for(duration + 500 * kMillisecond);
  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - wall_start;
  if (goodput != nullptr) {
    *goodput = static_cast<double>(sink.rx_ip_bytes()) * 8.0 / to_seconds(network.sim().now() - start);
  }
  return wall.count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = benchjson::wants_json(argc, argv);
  benchjson::Emitter out("bench_access_throughput");

  if (!json) {
    std::printf("=== E1: access throughput (paper §V.B.1) ===\n");
    std::printf("%-28s %-18s %-18s\n", "access type", "paper", "measured");
  }

  const double wired = run_wired();
  if (json) {
    out.metric("wired_goodput", wired, "bps");
  } else {
    std::printf("%-28s %-18s %-18s\n", "wired user via OvS", "~100 Mbps",
                format_rate_bps(wired).c_str());
  }

  const double wireless = run_wireless();
  if (json) {
    out.metric("wireless_goodput", wireless, "bps");
  } else {
    std::printf("%-28s %-18s %-18s\n", "wireless user via Pantou", "~43 Mbps",
                format_rate_bps(wireless).c_str());

    std::printf("\n-- wired users on one OvS (100 Mbps each, GbE uplink) --\n");
    std::printf("%-10s %-18s %-18s\n", "users", "expected", "measured");
  }
  bool multi_ok = true;
  for (int n : {1, 4, 8, 12}) {
    const double rate = run_wired_multi(n);
    const double expected = std::min(n * 100e6, 1e9);
    if (json) {
      out.metric("wired_multi_" + std::to_string(n), rate, "bps");
    } else {
      std::printf("%-10d %-18s %-18s\n", n, format_rate_bps(expected).c_str(),
                  format_rate_bps(rate).c_str());
    }
    if (rate < expected * 0.85 || rate > expected * 1.05) multi_ok = false;
  }

  if (!json) {
    std::printf("\n-- wireless stations on one AP (shared 43 Mbps radio) --\n");
    std::printf("%-10s %-18s %-18s\n", "stations", "expected", "measured");
  }
  for (int n : {1, 2, 5, 10}) {
    const double rate = run_wireless_multi(n);
    if (json) {
      out.metric("wireless_multi_" + std::to_string(n), rate, "bps");
    } else {
      std::printf("%-10d %-18s %-18s\n", n, "<= ~43 Mbps", format_rate_bps(rate).c_str());
    }
    if (rate > 46e6) multi_ok = false;
  }

  if (!json) {
    std::printf("\n-- wired run wall-clock vs resident flow-table entries --\n");
    std::printf("%-10s %-18s %-14s\n", "entries", "goodput", "wall-clock");
  }
  bool prefill_ok = true;
  double base_goodput = 0;
  for (int extra : {0, 1000, 10000}) {
    double goodput = 0;
    const double wall = run_wired_prefilled_wallclock(extra, &goodput);
    if (json) {
      out.metric("prefill_" + std::to_string(extra) + "_goodput", goodput, "bps");
      out.metric("prefill_" + std::to_string(extra) + "_wall", wall, "s");
    } else {
      std::printf("%-10d %-18s %.3f s\n", extra, format_rate_bps(goodput).c_str(), wall);
    }
    if (extra == 0) base_goodput = goodput;
    // Goodput must not depend on table size (lookup is O(1) either way in
    // sim-time); wall-clock flatness is reported for EXPERIMENTS.md.
    if (goodput < base_goodput * 0.95 || goodput > base_goodput * 1.05) prefill_ok = false;
  }

  const bool ok = wired > 90e6 && wired < 105e6 && wireless > 38e6 && wireless < 46e6 &&
                  multi_ok && prefill_ok;
  if (json) {
    out.flag("shape_ok", ok);
    out.print();
  } else {
    std::printf("\nshape check: %s\n", ok ? "PASS" : "FAIL");
  }
  return ok ? 0 : 1;
}
