// F7/F8 — Visualization scenario (paper §V.B.4, Figures 7 and 8).
//
// Paper deployment for the figures: "3 OvSes and 1 OF Wi-Fi are deployed in
// this practical network, and only 2 intrusion detection service elements
// and 2 application identification service elements are on-line".
//
// Figure 7 (normal): 5 wireless users — 4 browsing the web, 1 using SSH.
// Figure 8 (events): one user has left; one web user switched to BitTorrent
// (link utilization jumps); another user hits a malicious website and the
// IDS reports it immediately.
//
// This bench replays that exact script and prints the two WebUI snapshots
// plus the history replay between them.
#include <cstdio>

#include "bench_json.h"
#include "monitor/webui.h"
#include "net/network.h"
#include "net/traffic.h"

using namespace livesec;

int main(int argc, char** argv) {
  const bool json = benchjson::wants_json(argc, argv);
  ctrl::Controller::Config config;
  config.host_timeout = 4 * kSecond;  // so the departed user ages out quickly
  net::Network network(config);

  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs1 = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);
  auto& ovs3 = network.add_as_switch("ovs3", backbone);
  auto& ap = network.add_wifi_ap("of-wifi", backbone);
  (void)ovs3;

  network.add_service_element(svc::ServiceType::kIntrusionDetection, ovs1);
  network.add_service_element(svc::ServiceType::kIntrusionDetection, ovs2);
  network.add_service_element(svc::ServiceType::kProtocolIdentification, ovs1);
  network.add_service_element(svc::ServiceType::kProtocolIdentification, ovs2);

  // All user TCP traffic is identified and inspected.
  ctrl::Policy policy;
  policy.nw_proto = static_cast<std::uint8_t>(pkt::IpProto::kTcp);
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kProtocolIdentification,
                          svc::ServiceType::kIntrusionDetection};
  network.controller().policies().add(policy);

  // 5 wireless users + the servers they talk to.
  net::Host* users[5];
  for (int i = 0; i < 5; ++i) {
    users[i] = &network.add_wifi_host("user" + std::to_string(i), ap);
  }
  auto& web_server = network.add_host("web-server", ovs3, 1e9);
  auto& ssh_server = network.add_host("ssh-server", ovs3, 1e9);
  auto& bt_peer = network.add_host("bt-peer", ovs3, 1e9);

  net::HttpServerApp web(web_server, {.port = 80, .response_size = 16 * 1024});
  network.start();

  // Everyone except user3 keeps refreshing ARP (OS revalidation); user3 goes
  // silent after the first phase, which is how a host "leaves" in LiveSec.
  for (int i = 0; i < 5; ++i) {
    if (i != 3) users[i]->enable_periodic_announce(1 * kSecond);
  }
  web_server.enable_periodic_announce(1 * kSecond);
  ssh_server.enable_periodic_announce(1 * kSecond);
  bt_peer.enable_periodic_announce(1 * kSecond);

  mon::WebUi ui(network.controller());

  // --- Figure 7: normal operation -------------------------------------------
  std::vector<std::unique_ptr<net::HttpClientApp>> browsing;
  for (int i = 0; i < 4; ++i) {
    browsing.push_back(std::make_unique<net::HttpClientApp>(
        *users[i], net::HttpClientApp::Config{
                       .server = web_server.ip(),
                       .first_src_port = static_cast<std::uint16_t>(21000 + i * 64),
                       .sessions = 3,
                       .concurrency = 2,
                       .expected_response = 16 * 1024}));
    browsing.back()->start();
  }
  net::SshApp ssh(*users[4], {.server = ssh_server.ip(), .duration = 20 * kSecond});
  ssh.start();
  network.run_for(3 * kSecond);

  const SimTime fig7_time = network.sim().now();
  if (!json) {
    std::printf("================ FIGURE 7: normal network environment ================\n");
    std::printf("%s\n", ui.snapshot_text(0, fig7_time).c_str());
  }

  // --- Figure 8: events ------------------------------------------------------
  // user3 leaves the network (no more traffic -> ARP timeout).
  // user1 switches from web to BitTorrent (traffic surge).
  // user2 accesses a malicious website; the IDS flags it immediately.
  net::BitTorrentApp bt(*users[1], {.peers = {bt_peer.ip()},
                                    .rate_bps = 20e6,
                                    .duration = 4 * kSecond});
  bt.start();
  net::AttackApp malicious(*users[2], {.server = web_server.ip(), .packets = 10});
  malicious.start();
  network.run_for(6 * kSecond);  // user3 idle long enough to age out

  const SimTime fig8_time = network.sim().now();
  if (!json) {
    std::printf("================ FIGURE 8: user leave / BT surge / attack ================\n");
    std::printf("%s\n", ui.snapshot_text(fig7_time, fig8_time).c_str());

    std::printf("================ history replay (event database) ================\n");
    std::printf("%s\n", ui.replay_text(fig7_time, fig8_time).c_str());
  }

  // Shape checks mirroring what the figures show.
  const auto& events = network.controller().events();
  const auto leaves = events.query_type(mon::EventType::kHostLeave, fig7_time, fig8_time);
  // Exactly user3 left; active users were kept alive by ARP refresh.
  const bool user_left =
      leaves.size() == 1 && leaves[0].subject == users[3]->mac().to_string();
  const bool bt_seen = [&] {
    for (const auto& e :
         events.query_type(mon::EventType::kProtocolIdentified, fig7_time, fig8_time)) {
      if (e.detail == "bittorrent") return true;
    }
    return false;
  }();
  const bool attack_seen =
      !events.query_type(mon::EventType::kAttackDetected, fig7_time, fig8_time).empty();
  const bool blocked =
      !events.query_type(mon::EventType::kFlowBlocked, fig7_time, fig8_time).empty();
  const bool web_users_seen = [&] {
    int http_users = 0;
    for (const MacAddress& user : network.controller().service_monitor().users()) {
      const auto* usage = network.controller().service_monitor().usage(user);
      if (usage && usage->contains(svc::l7::AppProtocol::kHttp)) ++http_users;
    }
    return http_users >= 4;
  }();

  const bool ok = user_left && bt_seen && attack_seen && blocked && web_users_seen;
  if (json) {
    benchjson::Emitter out("bench_visualization");
    out.flag("user_left", user_left);
    out.flag("bittorrent_identified", bt_seen);
    out.flag("attack_detected", attack_seen);
    out.flag("flow_blocked", blocked);
    out.flag("web_users_seen", web_users_seen);
    out.flag("shape_ok", ok);
    out.print();
  } else {
    std::printf(
        "figure-8 events: user_leave=%d bittorrent=%d attack=%d blocked=%d web_users>=4:%d\n",
        user_left, bt_seen, attack_seen, blocked, web_users_seen);
    std::printf("shape check: %s\n", ok ? "PASS" : "FAIL");
  }
  return ok ? 0 : 1;
}
