// B-K — Simulation-kernel hot path: raw event throughput and end-to-end
// packet throughput of the discrete-event kernel itself.
//
// Every LiveSec number (§V.B throughput, latency, scaling) is produced by
// this kernel, so its overhead is the noise floor of the whole reproduction.
// Two workloads:
//
//   B-K1  events_drain_1m — 1024 concurrent self-rescheduling event chains
//         (the in-flight packet count of ~1k active flows), ~1M dispatches
//         total, callbacks capturing ~32 bytes (what a link
//         delivery captures). Run once on the production kernel and once on
//         the pre-calendar reference heap (reference_event_queue.h), so the
//         speedup ratio is reproducible on any host.
//
//   B-K2  fit_redirect — FIT-building-style deployment (Figure 6): clients
//         and sinks behind AS switches on a legacy backbone, UDP traffic
//         redirected through IDS service elements (4 rewrite hops per
//         policied flow, paper §IV.A). Measures wall-clock packets/sec and
//         events/sec, i.e. how fast the kernel pushes real LiveSec traffic.
//
// `--json` emits the machine-readable form recorded in BENCH_kernel.json.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.h"
#include "net/network.h"
#include "net/traffic.h"
#include "sim/reference_event_queue.h"
#include "sim/simulator.h"

using namespace livesec;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// --- B-K1: self-rescheduling drain -----------------------------------------

constexpr std::uint64_t kLanes = 1024;        // concurrent in-flight events
constexpr std::uint64_t kHopsPerLane = 1000;  // ~1.02M dispatches total
constexpr std::uint64_t kDelaySpread = 1024;  // reschedule 0..spread-1 ns ahead

/// Minimal kernel around the reference heap so both queues run the exact
/// same workload through the same scheduling interface.
class ReferenceSimulator {
 public:
  SimTime now() const { return now_; }
  void schedule(SimTime delay, std::function<void()> action) {
    queue_.push(now_ + delay, std::move(action));
  }
  std::uint64_t run() {
    std::uint64_t count = 0;
    while (!queue_.empty()) {
      sim::ReferenceEvent e = queue_.pop();
      now_ = e.time;
      e.action();
      ++count;
    }
    return count;
  }

 private:
  SimTime now_ = 0;
  sim::ReferenceEventQueue queue_;
};

/// One hop of a chain: advance an xorshift stream, reschedule self 0..999 ns
/// ahead. The capture (sim*, remaining, rng, acc = 32 bytes) mirrors what the
/// Link delivery callback captures on the real packet path.
template <typename Sim>
void hop(Sim& sim, std::uint64_t remaining, std::uint64_t rng, std::uint64_t acc) {
  if (remaining == 0) return;
  std::uint64_t r = rng;
  r ^= r << 13;
  r ^= r >> 7;
  r ^= r << 17;
  sim.schedule(static_cast<SimTime>(r % kDelaySpread),
               [&sim, remaining, r, acc] { hop(sim, remaining - 1, r, acc + r); });
}

/// Best of `kDrainRepeats` runs: the host is a small shared container, so a
/// single run can lose a big slice of wall time to a neighbor; the max is
/// the least-disturbed measurement.
constexpr int kDrainRepeats = 5;

template <typename Sim>
double run_drain(std::uint64_t& dispatched) {
  double best = 0;
  for (int rep = 0; rep < kDrainRepeats; ++rep) {
    Sim sim;
    for (std::uint64_t lane = 0; lane < kLanes; ++lane) {
      hop(sim, kHopsPerLane, 0x9E3779B97F4A7C15ull * (lane + 1), 0);
    }
    const auto start = Clock::now();
    dispatched = sim.run();
    const double elapsed = seconds_since(start);
    best = std::max(best, static_cast<double>(dispatched) / elapsed);
  }
  return best;
}

// --- B-K2: FIT-style redirection scenario ----------------------------------

struct FitResult {
  double packets_per_sec_wall = 0;  // delivered end-to-end packets / wall second
  double events_per_sec_wall = 0;   // kernel dispatches / wall second
  double goodput_bps = 0;           // simulated goodput (sanity anchor)
};

FitResult run_fit_once() {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  for (int i = 0; i < 2; ++i) {
    auto& se_sw = network.add_as_switch("se-sw" + std::to_string(i), backbone, 10e9);
    network.add_service_element(svc::ServiceType::kIntrusionDetection, se_sw);
  }
  ctrl::Policy policy;
  policy.nw_proto = static_cast<std::uint8_t>(pkt::IpProto::kUdp);
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kIntrusionDetection};
  network.controller().policies().add(policy);

  auto& client_sw = network.add_as_switch("clients", backbone, 10e9);
  auto& sink_sw = network.add_as_switch("sinks", backbone, 10e9);
  std::vector<net::Host*> clients, sinks;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(&network.add_host("c" + std::to_string(i), client_sw, 10e9));
    sinks.push_back(&network.add_host("s" + std::to_string(i), sink_sw, 10e9));
  }
  network.start();

  const SimTime duration = 1 * kSecond;
  std::vector<std::unique_ptr<net::UdpCbrApp>> apps;
  for (int i = 0; i < 4; ++i) {
    for (int f = 0; f < 4; ++f) {
      apps.push_back(std::make_unique<net::UdpCbrApp>(
          *clients[static_cast<std::size_t>(i)],
          net::UdpCbrApp::Config{.dst = sinks[static_cast<std::size_t>(i)]->ip(),
                                 .dst_port = static_cast<std::uint16_t>(9000 + f),
                                 .src_port = static_cast<std::uint16_t>(40000 + f),
                                 .rate_bps = 75e6,
                                 .packet_payload = 1400,
                                 .duration = duration}));
    }
  }
  const SimTime sim_start = network.sim().now();
  for (auto& app : apps) app->start();

  const auto start = Clock::now();
  const std::uint64_t events = network.sim().run_until(sim_start + duration);
  const double elapsed = seconds_since(start);

  std::uint64_t delivered_packets = 0;
  std::uint64_t delivered_bytes = 0;
  for (auto* sink : sinks) {
    delivered_packets += sink->rx_ip_packets();
    delivered_bytes += sink->rx_ip_bytes();
  }
  FitResult r;
  r.packets_per_sec_wall = static_cast<double>(delivered_packets) / elapsed;
  r.events_per_sec_wall = static_cast<double>(events) / elapsed;
  r.goodput_bps = static_cast<double>(delivered_bytes) * 8.0 /
                  to_seconds(network.sim().now() - sim_start);
  return r;
}

FitResult run_fit() {
  FitResult best;
  for (int rep = 0; rep < 2; ++rep) {
    const FitResult r = run_fit_once();
    if (r.packets_per_sec_wall > best.packets_per_sec_wall) best = r;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = benchjson::wants_json(argc, argv);
  if (!json) std::printf("=== B-K: simulation-kernel hot path ===\n");

  std::uint64_t dispatched = 0;
  const double kernel_eps = run_drain<sim::Simulator>(dispatched);
  std::uint64_t ref_dispatched = 0;
  const double ref_eps = run_drain<ReferenceSimulator>(ref_dispatched);
  const double speedup = kernel_eps / ref_eps;

  const FitResult fit = run_fit();

  if (json) {
    benchjson::Emitter out("bench_kernel");
    out.metric("events_drain_1m", kernel_eps, "events/s");
    out.metric("events_drain_1m_refheap", ref_eps, "events/s");
    out.metric("events_drain_speedup", speedup, "x");
    out.metric("fit_redirect_packets_per_sec", fit.packets_per_sec_wall, "packets/s");
    out.metric("fit_redirect_events_per_sec", fit.events_per_sec_wall, "events/s");
    out.metric("fit_redirect_goodput", fit.goodput_bps, "bps");
    out.print();
  } else {
    std::printf("%-34s %12.0f events/s  (%llu dispatched)\n", "drain 1M (production kernel)",
                kernel_eps, static_cast<unsigned long long>(dispatched));
    std::printf("%-34s %12.0f events/s  (%llu dispatched)\n", "drain 1M (reference heap)",
                ref_eps, static_cast<unsigned long long>(ref_dispatched));
    std::printf("%-34s %11.2fx\n", "calendar vs reference heap", speedup);
    std::printf("%-34s %12.0f packets/s wall\n", "FIT redirect end-to-end", fit.packets_per_sec_wall);
    std::printf("%-34s %12.0f events/s wall\n", "FIT redirect kernel rate", fit.events_per_sec_wall);
    std::printf("%-34s %15s\n", "FIT redirect goodput", format_rate_bps(fit.goodput_bps).c_str());
  }
  return 0;
}
