// E8 — Service-chain fast path: verdict-driven flow offload (DESIGN.md §8).
//
// A redirected flow pays the full service chain on every packet: the paper's
// 4-entry steering detour (§IV.A) plus the SE's processing budget (§V.B.1,
// ~500 Mbps per VM). With the fast path on, each SE issues VERDICT(benign)
// once its inspected-byte budget passes clean and the controller rewrites the
// chain into the direct path, so the steady state runs at line rate.
//
// This bench drives one UDP CBR flow (2 Gbps offered, 10 GbE fabric) through
// 1/2/3-SE chains and reports delivered packets per second with the offload
// budget off (always-redirect baseline) and on — the two runs interleaved
// per chain length so drift in the harness cannot bias one arm. Shape check:
// the 1-SE chain must speed up by at least 3x once it cuts through.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "net/network.h"
#include "net/traffic.h"

using namespace livesec;

namespace {

struct Result {
  double pps;                      // packets delivered per offered second
  double goodput_bps;
  std::uint64_t flows_offloaded;   // controller cut-throughs (0 or 1 here)
};

Result run_one(int chain_len, bool offload) {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs1 = network.add_as_switch("ovs1", backbone, 10e9);
  auto& ovs2 = network.add_as_switch("ovs2", backbone, 10e9);
  auto& ovs3 = network.add_as_switch("ovs3", backbone, 10e9);

  // Heterogeneous chain, one SE per stage, all on a third switch so the
  // steered path is the paper's worst case (4 entries per direction).
  const svc::ServiceType kStages[3] = {svc::ServiceType::kIntrusionDetection,
                                       svc::ServiceType::kVirusScan,
                                       svc::ServiceType::kProtocolIdentification};
  std::vector<svc::ServiceType> chain;
  for (int i = 0; i < chain_len; ++i) {
    chain.push_back(kStages[i]);
    svc::ServiceElement::Config se;
    se.verdict_byte_budget = offload ? 64 * 1024 : 0;
    network.add_service_element(kStages[i], ovs3, se);
  }

  ctrl::Policy policy;
  policy.name = "inspect-udp";
  policy.nw_proto = static_cast<std::uint8_t>(pkt::IpProto::kUdp);
  policy.tp_dst = 9000;
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = chain;
  network.controller().policies().add(policy);

  auto& alice = network.add_host("alice", ovs1, 10e9);
  auto& bob = network.add_host("bob", ovs2, 10e9);
  network.start();

  const SimTime duration = 1 * kSecond;
  net::UdpCbrApp app(alice, net::UdpCbrApp::Config{.dst = bob.ip(),
                                                   .dst_port = 9000,
                                                   .src_port = 40000,
                                                   .rate_bps = 2e9,
                                                   .packet_payload = 1400,
                                                   .duration = duration});
  bob.reset_counters();
  app.start();
  network.run_for(duration + 200 * kMillisecond);  // let in-flight packets drain

  const double seconds = to_seconds(duration);
  return Result{static_cast<double>(bob.rx_ip_packets()) / seconds,
                static_cast<double>(bob.rx_ip_bytes()) * 8.0 / seconds,
                network.controller().stats().flows_offloaded};
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = benchjson::wants_json(argc, argv);
  benchjson::Emitter out("bench_se_chain");
  if (!json) {
    std::printf("=== E8: service-chain fast path (verdict-driven offload) ===\n");
    std::printf("%-8s %-16s %-16s %-10s %-10s\n", "chain", "redirect", "offload", "speedup",
                "cut");
  }
  bool ok = true;
  for (int n : {1, 2, 3}) {
    // Interleaved A/B: baseline then fast path, back to back per chain size.
    const Result redirect = run_one(n, /*offload=*/false);
    const Result offload = run_one(n, /*offload=*/true);
    const double speedup = redirect.pps > 0 ? offload.pps / redirect.pps : 0;
    if (json) {
      const std::string prefix = "chain" + std::to_string(n);
      out.metric(prefix + "_redirect_pps", redirect.pps, "pps");
      out.metric(prefix + "_offload_pps", offload.pps, "pps");
      out.metric(prefix + "_speedup", speedup, "x");
    } else {
      std::printf("%-8d %-16s %-16s %-10.2f %llu\n", n,
                  format_rate_bps(redirect.goodput_bps).c_str(),
                  format_rate_bps(offload.goodput_bps).c_str(), speedup,
                  static_cast<unsigned long long>(offload.flows_offloaded));
    }
    // The baseline must stay SE-bound and never offload; the fast path must
    // actually cut through and beat it 3x on the single-SE chain.
    ok = ok && redirect.flows_offloaded == 0 && offload.flows_offloaded == 1;
    if (n == 1) ok = ok && speedup >= 3.0;
    ok = ok && speedup >= 2.0;  // longer chains gain at least as much headroom
  }
  if (json) {
    out.flag("shape_ok", ok);
    out.print();
  } else {
    std::printf("shape check (offload fires, 1-SE chain >=3x): %s\n", ok ? "PASS" : "FAIL");
  }
  return ok ? 0 : 1;
}
