// E4 — Load balance quality (paper §V.B.2).
//
// Paper: "The load balance based on the selecting minimum-load method is
// effective in the practical test. The load is judged according to the
// number of received and processed packets. For the normal traffic, the
// real-time load deviation among multiple service elements is no more
// than 5%."
//
// Reproduction: k IDS SEs on separate OvS hosts; many HTTP flows of varying
// size are steered through the pool under each dispatching algorithm the
// paper names (polling, hash, queuing, min-load) at flow granularity, plus
// a user-grain min-load ablation. Deviation is measured over each SE's
// processed-packet counter, exactly the paper's load metric.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "net/network.h"
#include "net/traffic.h"

using namespace livesec;

namespace {

struct Deviation {
  double relative_spread;   // (max-min)/mean
  double coefficient;       // stddev/mean
};

Deviation run_one(ctrl::LbStrategy strategy, ctrl::LbGranularity granularity, int se_count,
                  int users) {
  ctrl::Controller::Config config;
  config.lb_strategy = strategy;
  net::Network network(config);
  auto& backbone = network.add_legacy_switch("backbone");

  std::vector<svc::ServiceElement*> ses;
  for (int i = 0; i < se_count; ++i) {
    auto& se_sw = network.add_as_switch("se-sw" + std::to_string(i), backbone, 10e9);
    ses.push_back(&network.add_service_element(svc::ServiceType::kIntrusionDetection, se_sw));
  }

  ctrl::Policy policy;
  policy.nw_proto = static_cast<std::uint8_t>(pkt::IpProto::kUdp);
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kIntrusionDetection};
  policy.granularity = granularity;
  network.controller().policies().add(policy);

  auto& server_sw = network.add_as_switch("server-sw", backbone, 10e9);
  auto& server = network.add_host("server", server_sw, 10e9);
  std::vector<net::Host*> clients;
  auto& client_sw = network.add_as_switch("client-sw", backbone, 10e9);
  for (int u = 0; u < users; ++u) {
    clients.push_back(&network.add_host("u" + std::to_string(u), client_sw, 10e9));
  }
  network.start();

  // Each user opens several UDP flows ("normal traffic": uniform rate).
  const SimTime duration = 2 * kSecond;
  std::vector<std::unique_ptr<net::UdpCbrApp>> apps;
  for (int u = 0; u < users; ++u) {
    for (int f = 0; f < 6; ++f) {
      apps.push_back(std::make_unique<net::UdpCbrApp>(
          *clients[static_cast<std::size_t>(u)],
          net::UdpCbrApp::Config{.dst = server.ip(),
                                 .dst_port = static_cast<std::uint16_t>(8000 + f),
                                 .src_port = static_cast<std::uint16_t>(41000 + f),
                                 .rate_bps = 8e6,
                                 .packet_payload = 1000,
                                 .duration = duration}));
    }
  }
  for (auto& app : apps) app->start();
  network.run_for(duration + 500 * kMillisecond);

  std::vector<double> loads;
  for (const auto* se : ses) loads.push_back(static_cast<double>(se->processed_packets()));
  const double sum = std::accumulate(loads.begin(), loads.end(), 0.0);
  const double mean = sum / static_cast<double>(loads.size());
  const auto [min_it, max_it] = std::minmax_element(loads.begin(), loads.end());
  double variance = 0;
  for (double l : loads) variance += (l - mean) * (l - mean);
  variance /= static_cast<double>(loads.size());
  return Deviation{mean > 0 ? (*max_it - *min_it) / mean : 1.0,
                   mean > 0 ? std::sqrt(variance) / mean : 1.0};
}

struct HeterogeneousResult {
  std::uint64_t slow_se_drops;
  double fast_flow_share;  // flows assigned to the fast SE / total
};

/// Heterogeneous pool ablation: one full-speed SE (500 Mbps) and one
/// half-speed SE (250 Mbps). Count-based min-load splits flows 1:1 and
/// overloads the slow VM; the capacity-weighted extension splits ~2:1.
HeterogeneousResult run_heterogeneous(ctrl::LbStrategy strategy) {
  ctrl::Controller::Config config;
  config.lb_strategy = strategy;
  net::Network network(config);
  auto& backbone = network.add_legacy_switch("backbone");

  auto& fast_sw = network.add_as_switch("fast-sw", backbone, 10e9);
  auto& slow_sw = network.add_as_switch("slow-sw", backbone, 10e9);
  svc::ServiceElement::Config fast_config;
  fast_config.processing_bps = 500e6;
  fast_config.max_queue_packets = 256;
  auto& fast = network.add_service_element(svc::ServiceType::kIntrusionDetection, fast_sw,
                                           fast_config);
  svc::ServiceElement::Config slow_config;
  slow_config.processing_bps = 250e6;
  slow_config.max_queue_packets = 256;
  auto& slow = network.add_service_element(svc::ServiceType::kIntrusionDetection, slow_sw,
                                           slow_config);

  ctrl::Policy policy;
  policy.nw_proto = static_cast<std::uint8_t>(pkt::IpProto::kUdp);
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kIntrusionDetection};
  network.controller().policies().add(policy);

  auto& client_sw = network.add_as_switch("clients", backbone, 10e9);
  auto& server_sw = network.add_as_switch("servers", backbone, 10e9);
  auto& server = network.add_host("server", server_sw, 10e9);
  std::vector<net::Host*> clients;
  for (int u = 0; u < 12; ++u) {
    clients.push_back(&network.add_host("u" + std::to_string(u), client_sw, 10e9));
  }
  network.start();

  // Offered ~600 Mbps total over 48 flows: within the pool's 750 Mbps
  // aggregate, but above what a 1:1 split can carry (300 > 250).
  const SimTime duration = 3 * kSecond;
  std::vector<std::unique_ptr<net::UdpCbrApp>> apps;
  for (int u = 0; u < 12; ++u) {
    for (int f = 0; f < 4; ++f) {
      apps.push_back(std::make_unique<net::UdpCbrApp>(
          *clients[static_cast<std::size_t>(u)],
          net::UdpCbrApp::Config{.dst = server.ip(),
                                 .dst_port = static_cast<std::uint16_t>(8100 + f),
                                 .src_port = static_cast<std::uint16_t>(42000 + f),
                                 .rate_bps = 600e6 / 48,
                                 .packet_payload = 1200,
                                 .duration = duration}));
      apps.back()->start();
    }
  }
  network.run_for(duration + 500 * kMillisecond);

  const auto& counts = network.controller().load_balancer().assignment_counts();
  const double fast_flows =
      counts.contains(fast.se_id()) ? static_cast<double>(counts.at(fast.se_id())) : 0.0;
  double total_flows = 0;
  for (const auto& [id, c] : counts) total_flows += static_cast<double>(c);
  return HeterogeneousResult{slow.overload_drops(),
                             total_flows > 0 ? fast_flows / total_flows : 0.0};
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = benchjson::wants_json(argc, argv);
  benchjson::Emitter out("bench_load_balance");
  if (!json) {
    std::printf("=== E4: load balance deviation across SEs (paper §V.B.2) ===\n");
    std::printf("%d SEs, 12 users x 6 uniform flows, flow-grain unless noted\n\n", 4);
    std::printf("%-22s %-16s %-16s %-14s\n", "algorithm", "spread(max-min)", "stddev/mean",
                "paper bound");
  }

  struct Row {
    const char* name;
    const char* tag;
    ctrl::LbStrategy strategy;
    ctrl::LbGranularity granularity;
  };
  const Row rows[] = {
      {"polling", "polling", ctrl::LbStrategy::kPolling, ctrl::LbGranularity::kPerFlow},
      {"hash", "hash", ctrl::LbStrategy::kHash, ctrl::LbGranularity::kPerFlow},
      {"queuing", "queuing", ctrl::LbStrategy::kQueuing, ctrl::LbGranularity::kPerFlow},
      {"min-load", "min_load", ctrl::LbStrategy::kMinLoad, ctrl::LbGranularity::kPerFlow},
      {"min-load (user-grain)", "min_load_user_grain", ctrl::LbStrategy::kMinLoad,
       ctrl::LbGranularity::kPerUser},
  };

  double min_load_spread = 1.0;
  double hash_spread = 0.0;
  for (const Row& row : rows) {
    const Deviation d = run_one(row.strategy, row.granularity, 4, 12);
    const bool is_min_load_flow =
        row.strategy == ctrl::LbStrategy::kMinLoad && row.granularity == ctrl::LbGranularity::kPerFlow;
    if (is_min_load_flow) min_load_spread = d.relative_spread;
    if (row.strategy == ctrl::LbStrategy::kHash && row.granularity == ctrl::LbGranularity::kPerFlow) {
      hash_spread = d.relative_spread;
    }
    if (json) {
      out.metric(std::string(row.tag) + "_spread", d.relative_spread, "ratio");
      out.metric(std::string(row.tag) + "_stddev_over_mean", d.coefficient, "ratio");
    } else {
      std::printf("%-22s %-16.3f %-16.3f %-14s\n", row.name, d.relative_spread, d.coefficient,
                  is_min_load_flow ? "<=0.05" : "-");
    }
  }

  if (!json) {
    std::printf("\n=== extension ablation: heterogeneous pool (500 + 250 Mbps SEs) ===\n");
    std::printf("%-22s %-22s %-18s\n", "algorithm", "fast-SE flow share", "slow-SE drops");
  }
  const HeterogeneousResult plain = run_heterogeneous(ctrl::LbStrategy::kMinLoad);
  const HeterogeneousResult weighted =
      run_heterogeneous(ctrl::LbStrategy::kWeightedMinLoad);
  if (json) {
    out.metric("hetero_min_load_fast_share", plain.fast_flow_share, "ratio");
    out.metric("hetero_min_load_slow_drops", static_cast<double>(plain.slow_se_drops), "count");
    out.metric("hetero_weighted_fast_share", weighted.fast_flow_share, "ratio");
    out.metric("hetero_weighted_slow_drops", static_cast<double>(weighted.slow_se_drops),
               "count");
  } else {
    std::printf("%-22s %-22.2f %-18llu\n", "min-load", plain.fast_flow_share,
                static_cast<unsigned long long>(plain.slow_se_drops));
    std::printf("%-22s %-22.2f %-18llu\n", "weighted-min-load", weighted.fast_flow_share,
                static_cast<unsigned long long>(weighted.slow_se_drops));
    std::printf("(count-based balancing overloads the half-speed VM; capacity weighting\n"
                " shifts ~2/3 of the flows to the fast VM and removes the drops)\n");
  }

  const bool hetero_ok =
      weighted.fast_flow_share > 0.55 && weighted.slow_se_drops < plain.slow_se_drops;
  const bool ok =
      min_load_spread <= 0.05 && min_load_spread <= hash_spread + 1e-9 && hetero_ok;
  if (json) {
    out.flag("shape_ok", ok);
    out.print();
  } else {
    std::printf("\nshape check (min-load deviation <=5%% and <= hash; weighted fixes hetero): %s\n",
                ok ? "PASS" : "FAIL");
  }
  return ok ? 0 : 1;
}
