// E3 — Aggregate deployment capacity (paper §V.B.1).
//
// Paper: "we have about 30 wireless users, 20 wired users, and 200 VM-based
// service elements supplying network services of intrusion detection and
// protocol identification. The performance of the LiveSec unit can achieve
// at least 8Gbps for intrusion detection and 2Gbps for protocol
// identification."
//
// Reproduction: 10 OvS SE-hosts x 20 SEs each (8 hosts run IDS, 2 run
// protocol identification), exactly the paper's 200-SE build. Saturating UDP
// flows are steered through each service type; aggregate inspected goodput
// is reported per service. Each SE-host's GbE uplink is the per-host cap, so
// the deployment shape (8 IDS hosts + 2 L7 hosts) yields the 8 + 2 Gbps split.
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "net/network.h"
#include "net/traffic.h"

using namespace livesec;

namespace {

double run_service(svc::ServiceType type, int se_hosts, int ses_per_host) {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");

  std::vector<sw::OpenFlowSwitch*> se_switches;
  for (int h = 0; h < se_hosts; ++h) {
    se_switches.push_back(
        &network.add_as_switch("se-host" + std::to_string(h), backbone, 1e9));
    for (int i = 0; i < ses_per_host; ++i) {
      network.add_service_element(type, *se_switches.back());
    }
  }

  ctrl::Policy policy;
  policy.nw_proto = static_cast<std::uint8_t>(pkt::IpProto::kUdp);
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {type};
  network.controller().policies().add(policy);

  // Traffic sources/sinks sized well above the SE capacity under test.
  const int pairs = se_hosts * 2;
  std::vector<net::Host*> clients, servers;
  for (int i = 0; i < pairs; ++i) {
    auto& csw = network.add_as_switch("c-sw" + std::to_string(i), backbone, 10e9);
    auto& ssw = network.add_as_switch("s-sw" + std::to_string(i), backbone, 10e9);
    clients.push_back(&network.add_host("c" + std::to_string(i), csw, 10e9));
    servers.push_back(&network.add_host("s" + std::to_string(i), ssw, 10e9));
  }
  network.start(500 * kMillisecond);

  const SimTime duration = 1 * kSecond;
  std::vector<std::unique_ptr<net::UdpCbrApp>> apps;
  for (int i = 0; i < pairs; ++i) {
    for (int f = 0; f < 10; ++f) {
      apps.push_back(std::make_unique<net::UdpCbrApp>(
          *clients[static_cast<std::size_t>(i)],
          net::UdpCbrApp::Config{.dst = servers[static_cast<std::size_t>(i)]->ip(),
                                 .dst_port = static_cast<std::uint16_t>(9000 + f),
                                 .src_port = static_cast<std::uint16_t>(40000 + f),
                                 .rate_bps = 1.5e9 * se_hosts / (pairs * 10),
                                 .packet_payload = 1400,
                                 .duration = duration}));
    }
  }
  for (auto& server : servers) server->reset_counters();
  const SimTime start = network.sim().now();
  for (auto& app : apps) app->start();
  network.run_for(duration);

  std::uint64_t delivered = 0;
  for (auto& server : servers) delivered += server->rx_ip_bytes();
  return static_cast<double>(delivered) * 8.0 / to_seconds(network.sim().now() - start);
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = benchjson::wants_json(argc, argv);
  if (!json) {
    std::printf("=== E3: aggregate capacity, 200 SEs on 10 OvS hosts (paper §V.B.1) ===\n");
    std::printf("%-28s %-14s %-14s %-14s\n", "service", "SE layout", "paper", "measured");
  }

  // 8 of the 10 hosts provide IDS (160 SEs), 2 provide protocol id (40 SEs).
  const double ids = run_service(svc::ServiceType::kIntrusionDetection, 8, 20);
  if (!json) {
    std::printf("%-28s %-14s %-14s %-14s\n", "intrusion detection", "8x20", ">=8 Gbps",
                format_rate_bps(ids).c_str());
  }

  const double l7 = run_service(svc::ServiceType::kProtocolIdentification, 2, 20);
  if (!json) {
    std::printf("%-28s %-14s %-14s %-14s\n", "protocol identification", "2x20", ">=2 Gbps",
                format_rate_bps(l7).c_str());
  }

  const bool ok = ids >= 7.2e9 && l7 >= 1.8e9;
  if (json) {
    benchjson::Emitter out("bench_aggregate_capacity");
    out.metric("ids_aggregate_goodput", ids, "bps");
    out.metric("l7_aggregate_goodput", l7, "bps");
    out.flag("shape_ok", ok);
    out.print();
  } else {
    std::printf("shape check (>=~8 Gbps IDS, >=~2 Gbps protocol id): %s\n", ok ? "PASS" : "FAIL");
  }
  return ok ? 0 : 1;
}
