// Ablations over LiveSec's control-plane design knobs (DESIGN.md §5):
//
//  A1. Secure-channel latency: the controller round trip is paid by the
//      first packet of every flow; this sweep shows flow-setup latency and
//      the per-ping overhead as a function of channel latency.
//  A2. Flow idle-timeout: shorter timeouts shrink switch tables but cause
//      recurring flows to re-punt; this sweep shows the packet-in load and
//      table size trade-off.
//  A3. Directory proxy on/off effect is structural (proxied ARP never
//      floods the fabric); measured as ARP packets crossing the backbone.
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "net/network.h"
#include "net/traffic.h"

using namespace livesec;

namespace {

struct SetupResult {
  double first_rtt_us;
  double later_rtt_us;
};

SetupResult run_channel_latency(SimTime /*channel latency modeled via config*/ latency) {
  // SecureChannel latency is fixed per channel at attach time; Network wires
  // channels internally, so we model the sweep by scaling the controller's
  // processing path: rebuild a deployment whose channels use `latency`.
  // Network does not expose the knob, so replicate its wiring minimally.
  sim::Simulator sim;
  ctrl::Controller controller(sim);

  sw::EthernetSwitch backbone(sim, "backbone");
  sw::OpenFlowSwitch ovs1(sim, "ovs1", 1);
  sw::OpenFlowSwitch ovs2(sim, "ovs2", 2);
  std::vector<std::unique_ptr<sim::Link>> links;

  auto wire_as = [&](sw::OpenFlowSwitch& sw) {
    sim::Port& uplink = sw.add_port(sw::PortRole::kLegacySwitching);
    links.push_back(sim::connect(sim, uplink, backbone.add_port(), {.bandwidth_bps = 1e9}));
    controller.register_ls_port(sw.datapath_id(), uplink.id());
  };
  wire_as(ovs1);
  wire_as(ovs2);

  of::SecureChannel ch1(sim, ovs1, controller, latency);
  of::SecureChannel ch2(sim, ovs2, controller, latency);
  controller.attach_channel(1, ch1);
  controller.attach_channel(2, ch2);
  ovs1.connect_controller(ch1);
  ovs2.connect_controller(ch2);

  net::Host alice(sim, "alice", MacAddress::from_uint64(0xA), Ipv4Address(10, 4, 0, 1));
  net::Host bob(sim, "bob", MacAddress::from_uint64(0xB), Ipv4Address(10, 4, 0, 2));
  links.push_back(sim::connect(sim, alice.port(0),
                               ovs1.add_port(sw::PortRole::kNetworkPeriphery),
                               {.bandwidth_bps = 100e6}));
  links.push_back(sim::connect(sim, bob.port(0), ovs2.add_port(sw::PortRole::kNetworkPeriphery),
                               {.bandwidth_bps = 100e6}));
  controller.start_housekeeping();
  alice.announce();
  bob.announce();
  sim.run_until(sim.now() + 200 * kMillisecond);

  alice.ping(bob.ip(), 10, 20 * kMillisecond);
  sim.run_until(sim.now() + 2 * kSecond);

  const auto& results = alice.ping_stats().results;
  if (results.size() < 2) return {0, 0};
  double later = 0;
  for (std::size_t i = 1; i < results.size(); ++i) later += static_cast<double>(results[i].rtt);
  later /= static_cast<double>(results.size() - 1);
  return {static_cast<double>(results[0].rtt) / kMicrosecond, later / kMicrosecond};
}

struct TimeoutResult {
  std::uint64_t packet_ins;
  std::size_t peak_table;
};

TimeoutResult run_idle_timeout(SimTime idle_timeout) {
  ctrl::Controller::Config config;
  config.flow_idle_timeout = idle_timeout;
  net::Network network(config);
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs1 = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);
  auto& a = network.add_host("a", ovs1);
  auto& b = network.add_host("b", ovs2);
  network.start();
  a.enable_periodic_announce(2 * kSecond);
  b.enable_periodic_announce(2 * kSecond);

  // A recurring, bursty flow: 200 ms of packets every 3 s for 30 s. With a
  // long idle timeout the entries survive the gaps; with a short one each
  // burst re-punts.
  const std::uint64_t before = network.controller().stats().packet_ins;
  std::size_t peak_table = 0;
  for (int burst = 0; burst < 10; ++burst) {
    net::UdpCbrApp app(a, {.dst = b.ip(), .rate_bps = 10e6, .duration = 200 * kMillisecond});
    app.start();
    network.run_for(3 * kSecond);
    peak_table = std::max(peak_table, ovs1.flow_table().size());
  }
  return {network.controller().stats().packet_ins - before, peak_table};
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = benchjson::wants_json(argc, argv);
  benchjson::Emitter out("bench_ablation_control");

  if (!json) {
    std::printf("=== A1: secure-channel latency vs flow-setup cost ===\n");
    std::printf("%-18s %-20s %-20s\n", "channel latency", "first-packet RTT", "steady RTT");
  }
  for (SimTime latency : {25 * kMicrosecond, 100 * kMicrosecond, 500 * kMicrosecond,
                          2 * kMillisecond}) {
    const SetupResult r = run_channel_latency(latency);
    if (json) {
      const std::string tag = "channel_" + format_time(latency);
      out.metric(tag + "_first_rtt", r.first_rtt_us, "us");
      out.metric(tag + "_steady_rtt", r.later_rtt_us, "us");
    } else {
      std::printf("%-18s %-20.1f %-20.1f\n", format_time(latency).c_str(), r.first_rtt_us,
                  r.later_rtt_us);
    }
  }
  if (!json) {
    std::printf("(first packet pays ~4x the one-way channel latency: packet-in + flow-mods\n"
                " in both directions; steady-state packets never touch the controller)\n\n");

    std::printf("=== A2: flow idle-timeout vs packet-in load (10 bursts, 3 s apart) ===\n");
    std::printf("%-18s %-18s %-14s\n", "idle timeout", "packet-ins", "peak table");
  }
  std::uint64_t short_pins = 0, long_pins = 0;
  for (SimTime timeout : {1 * kSecond, 10 * kSecond, 60 * kSecond}) {
    const TimeoutResult r = run_idle_timeout(timeout);
    if (timeout == 1 * kSecond) short_pins = r.packet_ins;
    if (timeout == 60 * kSecond) long_pins = r.packet_ins;
    if (json) {
      const std::string tag = "timeout_" + format_time(timeout);
      out.metric(tag + "_packet_ins", static_cast<double>(r.packet_ins), "count");
      out.metric(tag + "_peak_table", static_cast<double>(r.peak_table), "entries");
    } else {
      std::printf("%-18s %-18llu %-14zu\n", format_time(timeout).c_str(),
                  static_cast<unsigned long long>(r.packet_ins), r.peak_table);
    }
  }
  if (!json) std::printf("(short timeouts re-punt each burst; long ones hold table state)\n");

  const bool ok = short_pins > long_pins;
  if (json) {
    out.flag("shape_ok", ok);
    out.print();
  } else {
    std::printf("\nshape check (shorter timeout => more packet-ins): %s\n", ok ? "PASS" : "FAIL");
  }
  return ok ? 0 : 1;
}
