// E2 — Service-element throughput scaling (paper §V.B.1).
//
// Paper: "single VM-based service element can reach about 500 Mbps
// throughput [bypass]... performance of single VM-based service element is
// 421 Mbps [HTTP], and twice VM-based service elements raise the whole
// performance to 827 Mbps... the maximum performance of 20 VMs is limited
// to the Gigabit NIC of the physical host implemented with OvS."
//
// Reproduction: n IDS SEs (n = 1..20) hang off one "SE host" OvS whose GbE
// uplink models the physical NIC. Clients open many parallel HTTP sessions;
// a port-80 redirect policy steers them through the IDS pool (flow-grain
// min-load balancing). We report aggregate goodput per n.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "net/network.h"
#include "net/traffic.h"

using namespace livesec;

namespace {

struct Result {
  int se_count;
  double goodput_bps;
};

Result run_one(int se_count, bool bypass_udp) {
  net::Network network;
  auto& backbone = network.add_legacy_switch("backbone");
  auto& client_sw = network.add_as_switch("client-sw", backbone, 10e9);
  auto& server_sw = network.add_as_switch("server-sw", backbone, 10e9);
  auto& se_sw = network.add_as_switch("se-host", backbone, 1e9);  // the GbE NIC cap

  for (int i = 0; i < se_count; ++i) {
    network.add_service_element(svc::ServiceType::kIntrusionDetection, se_sw);
  }

  ctrl::Policy policy;
  policy.name = "inspect-everything";
  policy.nw_proto = static_cast<std::uint8_t>(bypass_udp ? pkt::IpProto::kUdp
                                                         : pkt::IpProto::kTcp);
  policy.action = ctrl::PolicyAction::kRedirect;
  policy.service_chain = {svc::ServiceType::kIntrusionDetection};
  network.controller().policies().add(policy);

  // Enough clients/servers that the sources are never the bottleneck.
  const int pairs = 8;
  std::vector<net::Host*> clients, servers;
  for (int i = 0; i < pairs; ++i) {
    clients.push_back(&network.add_host("c" + std::to_string(i), client_sw, 10e9));
    servers.push_back(&network.add_host("s" + std::to_string(i), server_sw, 10e9));
  }
  network.start();

  const SimTime duration = 2 * kSecond;
  std::vector<std::unique_ptr<net::UdpCbrApp>> udp_apps;
  std::vector<std::unique_ptr<net::HttpServerApp>> server_apps;
  std::vector<std::unique_ptr<net::HttpClientApp>> client_apps;

  if (bypass_udp) {
    // Bypass measurement: raw UDP streams through the IDS (no HTTP deep
    // inspection). Many distinct flows spread over the SE pool.
    for (int i = 0; i < pairs; ++i) {
      for (int f = 0; f < 8; ++f) {
        udp_apps.push_back(std::make_unique<net::UdpCbrApp>(
            *clients[static_cast<std::size_t>(i)],
            net::UdpCbrApp::Config{.dst = servers[static_cast<std::size_t>(i)]->ip(),
                                   .dst_port = static_cast<std::uint16_t>(9000 + f),
                                   .src_port = static_cast<std::uint16_t>(40000 + f),
                                   .rate_bps = 2e9 / (pairs * 8),
                                   .packet_payload = 1400,
                                   .duration = duration}));
      }
    }
  } else {
    for (int i = 0; i < pairs; ++i) {
      server_apps.push_back(std::make_unique<net::HttpServerApp>(
          *servers[static_cast<std::size_t>(i)],
          net::HttpServerApp::Config{.port = 80, .response_size = 256 * 1024}));
      client_apps.push_back(std::make_unique<net::HttpClientApp>(
          *clients[static_cast<std::size_t>(i)],
          net::HttpClientApp::Config{.server = servers[static_cast<std::size_t>(i)]->ip(),
                                     .first_src_port = static_cast<std::uint16_t>(20000 + i * 512),
                                     .sessions = 1000,
                                     .concurrency = 8,
                                     .expected_response = 256 * 1024}));
    }
  }

  for (auto& server : servers) server->reset_counters();
  for (auto& client : clients) client->reset_counters();
  const SimTime start = network.sim().now();
  for (auto& app : udp_apps) app->start();
  for (auto& app : client_apps) app->start();
  network.run_for(duration);

  // Aggregate bytes that made it through inspection to either side.
  std::uint64_t delivered = 0;
  for (auto& server : servers) delivered += server->rx_ip_bytes();
  for (auto& client : clients) delivered += client->rx_ip_bytes();
  const double seconds = to_seconds(network.sim().now() - start);
  return Result{se_count, static_cast<double>(delivered) * 8.0 / seconds};
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = benchjson::wants_json(argc, argv);
  benchjson::Emitter out("bench_se_scaling");
  if (!json) {
    std::printf("=== E2: SE throughput scaling (paper §V.B.1) ===\n");
    std::printf("-- bypass mode (UDP) --\n");
  }
  const Result bypass1 = run_one(1, /*bypass_udp=*/true);
  if (json) {
    out.metric("bypass_1se_goodput", bypass1.goodput_bps, "bps");
  } else {
    std::printf("%-10s %-18s %-18s\n", "n_SE", "paper", "measured");
    std::printf("%-10d %-18s %-18s\n", 1, "~500 Mbps",
                format_rate_bps(bypass1.goodput_bps).c_str());
    std::printf("-- HTTP deep inspection --\n");
    std::printf("%-10s %-18s %-18s %-10s\n", "n_SE", "paper", "measured", "scaling");
  }
  double first = 0;
  bool ok = bypass1.goodput_bps > 430e6 && bypass1.goodput_bps < 540e6;
  for (int n : {1, 2, 4, 8, 12, 16, 20}) {
    const Result r = run_one(n, /*bypass_udp=*/false);
    if (n == 1) first = r.goodput_bps;
    if (json) {
      out.metric("http_" + std::to_string(n) + "se_goodput", r.goodput_bps, "bps");
    } else {
      const char* paper =
          n == 1 ? "421 Mbps" : (n == 2 ? "827 Mbps" : (n >= 3 ? "<=1 Gbps (NIC)" : ""));
      std::printf("%-10d %-18s %-18s %.2fx\n", n, paper, format_rate_bps(r.goodput_bps).c_str(),
                  r.goodput_bps / first);
    }
    if (n == 1) ok = ok && r.goodput_bps > 350e6 && r.goodput_bps < 470e6;
    if (n == 2) ok = ok && r.goodput_bps > 1.7 * first;  // near-linear
    if (n == 20) ok = ok && r.goodput_bps < 1.1e9;       // NIC cap
  }
  if (json) {
    out.flag("shape_ok", ok);
    out.print();
  } else {
    std::printf("shape check (1 SE ~421-500 Mbps, 2 SEs ~2x, 20 SEs NIC-capped): %s\n",
                ok ? "PASS" : "FAIL");
  }
  return ok ? 0 : 1;
}
