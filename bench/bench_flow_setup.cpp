// B-C — Control-plane flow-setup fast path: how many reactive flow setups per
// second the controller sustains, and how fast the ARP directory proxy
// answers (paper §V "interactive policy enforcement" overhead; the
// controller-fingerprinting literature treats flow-setup latency as the
// observable signature of a slow control plane).
//
// Two workloads per policy-table size (10 / 100 / 1000 policies):
//
//   cold  — every packet-in opens a distinct flow *class* (new dst host /
//           dst port), so each setup pays the full decision: policy lookup,
//           host location, path computation, flow-mod construction.
//   warm  — packet-ins differ only in tp_src within one class, the shape of
//           a client re-contacting the same service: with the decision cache
//           this is a hash hit + template replay; without it each setup
//           recomputes everything.
//
// Plus arp_proxy_replies_per_sec: directory-proxy answers from global host
// state (paper §III.C.2).
//
// `--json` emits the machine-readable form recorded in BENCH_controller.json.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "controller/controller.h"
#include "openflow/channel.h"
#include "packet/packet.h"
#include "sim/simulator.h"
#include "topology/lldp.h"

using namespace livesec;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr int kHostsPerSide = 32;

/// Switch-side endpoint that only counts what the controller pushes; the
/// bench measures controller cost, not datapath cost.
class CountingSwitch : public of::SwitchEndpoint {
 public:
  explicit CountingSwitch(DatapathId dpid) : dpid_(dpid) {}
  DatapathId datapath_id() const override { return dpid_; }
  void handle_controller_message(const of::Message& m) override {
    ++messages_;
    (void)m;
  }
  std::uint64_t messages() const { return messages_; }

 private:
  DatapathId dpid_;
  std::uint64_t messages_ = 0;
};

MacAddress client_mac(int i) { return MacAddress::from_uint64(0x100000u + static_cast<unsigned>(i)); }
MacAddress server_mac(int i) { return MacAddress::from_uint64(0x200000u + static_cast<unsigned>(i)); }
Ipv4Address client_ip(int i) { return Ipv4Address(10, 0, 1, static_cast<std::uint8_t>(i + 1)); }
Ipv4Address server_ip(int i) { return Ipv4Address(10, 0, 2, static_cast<std::uint8_t>(i + 1)); }

/// Two AS switches on a legacy uplink, 32 hosts per side, driven by direct
/// packet-in injection (the channel only carries controller -> switch
/// traffic, so the measurement isolates the controller's decision path).
struct Harness {
  sim::Simulator sim;
  ctrl::Controller controller;
  CountingSwitch sw1{1};
  CountingSwitch sw2{2};
  of::SecureChannel ch1{sim, sw1, controller, 0};
  of::SecureChannel ch2{sim, sw2, controller, 0};

  Harness() : controller(sim) {
    controller.attach_channel(1, ch1);
    controller.attach_channel(2, ch2);
    ch1.connect(of::FeaturesReply{1, 64, "sw1"});
    ch2.connect(of::FeaturesReply{2, 64, "sw2"});
    sim.run();
    // LLDP probe from sw2 port 63 arriving on sw1 port 62: both LS uplinks.
    topo::LldpInfo info;
    info.chassis_id = 2;
    info.port_id = 63;
    packet_in(1, 62, pkt::finalize(info.to_packet()));
    for (int i = 0; i < kHostsPerSide; ++i) {
      packet_in(1, static_cast<PortId>(i), gratuitous_arp(client_mac(i), client_ip(i)));
      packet_in(2, static_cast<PortId>(i), gratuitous_arp(server_mac(i), server_ip(i)));
    }
  }

  static pkt::PacketPtr gratuitous_arp(MacAddress mac, Ipv4Address ip) {
    return pkt::PacketBuilder()
        .eth(mac, MacAddress::from_uint64(0xFFFFFFFFFFFFull))
        .arp(pkt::ArpOp::kRequest, mac, ip, MacAddress{}, ip)
        .finalize();
  }

  void packet_in(DatapathId dpid, PortId in_port, pkt::PacketPtr packet) {
    of::PacketIn pin;
    pin.in_port = in_port;
    pin.buffer_id = of::PacketOut::kNoBuffer;
    pin.packet = std::move(packet);
    controller.handle_switch_message(dpid, of::Message{std::move(pin)});
  }

  /// Installs `count` policies: all but one are fully-specified (mac/mac)
  /// rules over a disjoint address pool, plus non-matching wildcard subnet
  /// rules; the single catch-all ALLOW the measured flows hit sits at the
  /// lowest priority, so a linear table scans everything first.
  void add_policies(int count) {
    for (int i = 0; i < count - 1; ++i) {
      ctrl::Policy p;
      p.priority = 1000 + i;
      if (i % 8 == 7) {
        p.name = "subnet" + std::to_string(i);
        p.nw_dst = Ipv4Address(192, 168, static_cast<std::uint8_t>(i % 256), 0);
        p.nw_dst_prefix = 24;
        p.action = ctrl::PolicyAction::kDeny;
      } else {
        p.name = "pair" + std::to_string(i);
        p.src_mac = MacAddress::from_uint64(0x900000u + static_cast<unsigned>(i));
        p.dst_mac = MacAddress::from_uint64(0xA00000u + static_cast<unsigned>(i));
        p.action = ctrl::PolicyAction::kAllow;
      }
      controller.policies().add(p);
    }
    ctrl::Policy catch_all;
    catch_all.name = "default-allow";
    catch_all.priority = 1;
    catch_all.action = ctrl::PolicyAction::kAllow;
    controller.policies().add(catch_all);
  }
};

pkt::PacketPtr udp_packet(int client, int server, std::uint16_t tp_src, std::uint16_t tp_dst) {
  return pkt::PacketBuilder()
      .eth(client_mac(client), server_mac(server))
      .ipv4(client_ip(client), server_ip(server), pkt::IpProto::kUdp)
      .udp(tp_src, tp_dst)
      .finalize();
}

/// Flow setups per wall second. Warm mode keeps one (src, dst, dst-port)
/// class and varies tp_src; cold mode opens a new class every packet.
double run_setups(int policies, bool warm, int count) {
  Harness h;
  h.add_policies(policies);
  h.sim.run();

  // Packet construction is harness cost, not controller cost: build the
  // whole arrival sequence up front so the timed region is decisions only.
  std::vector<pkt::PacketPtr> arrivals;
  arrivals.reserve(static_cast<std::size_t>(count));
  for (int n = 0; n < count; ++n) {
    if (warm) {
      arrivals.push_back(udp_packet(0, 0, static_cast<std::uint16_t>(1 + (n % 60000)), 7777));
    } else {
      arrivals.push_back(
          udp_packet(n % kHostsPerSide, (n / kHostsPerSide) % kHostsPerSide, 40000,
                     static_cast<std::uint16_t>(5000 + n / (kHostsPerSide * kHostsPerSide))));
    }
  }

  const std::uint64_t before = h.controller.stats().flows_installed;
  const auto start = Clock::now();
  for (int n = 0; n < count; ++n) {
    h.packet_in(1, static_cast<PortId>(warm ? 0 : n % kHostsPerSide), std::move(arrivals[n]));
    if ((n & 511) == 511) h.sim.run();
  }
  h.sim.run();
  const double elapsed = seconds_since(start);
  const std::uint64_t installed = h.controller.stats().flows_installed - before;
  if (installed != static_cast<std::uint64_t>(count)) {
    std::fprintf(stderr, "WARNING: installed %llu of %d setups\n",
                 static_cast<unsigned long long>(installed), count);
  }
  return static_cast<double>(count) / elapsed;
}

/// ARP directory-proxy replies per wall second (requests for known hosts).
double run_arp_proxy(int count) {
  Harness h;
  h.add_policies(100);
  h.sim.run();

  std::vector<pkt::PacketPtr> requests;
  requests.reserve(static_cast<std::size_t>(count));
  for (int n = 0; n < count; ++n) {
    const int target = n % kHostsPerSide;
    requests.push_back(pkt::PacketBuilder()
                           .eth(client_mac(0), MacAddress::from_uint64(0xFFFFFFFFFFFFull))
                           .arp(pkt::ArpOp::kRequest, client_mac(0), client_ip(0), MacAddress{},
                                server_ip(target))
                           .finalize());
  }

  const auto start = Clock::now();
  for (int n = 0; n < count; ++n) {
    h.packet_in(1, 0, std::move(requests[n]));
    if ((n & 1023) == 1023) h.sim.run();
  }
  h.sim.run();
  const double elapsed = seconds_since(start);
  if (h.controller.stats().arp_proxied < static_cast<std::uint64_t>(count)) {
    std::fprintf(stderr, "WARNING: only %llu of %d ARP requests proxied\n",
                 static_cast<unsigned long long>(h.controller.stats().arp_proxied), count);
  }
  return static_cast<double>(count) / elapsed;
}

double best_of(int repeats, double (*fn)(int, bool, int), int policies, bool warm, int count) {
  double best = 0;
  for (int r = 0; r < repeats; ++r) best = std::max(best, fn(policies, warm, count));
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = benchjson::wants_json(argc, argv);
  if (!json) std::printf("=== B-C: control-plane flow setup ===\n");

  constexpr int kPolicyCounts[] = {10, 100, 1000};
  constexpr int kColdSetups = 4096;
  constexpr int kWarmSetups = 16384;
  constexpr int kRepeats = 2;

  benchjson::Emitter out("bench_flow_setup");
  for (int policies : kPolicyCounts) {
    const double cold = best_of(kRepeats, run_setups, policies, false, kColdSetups);
    const double warm = best_of(kRepeats, run_setups, policies, true, kWarmSetups);
    out.metric("setup_cold_p" + std::to_string(policies), cold, "flows/s");
    out.metric("setup_warm_p" + std::to_string(policies), warm, "flows/s");
    if (!json) {
      std::printf("%4d policies  cold %10.0f flows/s   warm %10.0f flows/s\n", policies, cold,
                  warm);
    }
  }

  double arp = 0;
  for (int r = 0; r < kRepeats; ++r) arp = std::max(arp, run_arp_proxy(16384));
  out.metric("arp_proxy_replies_per_sec", arp, "replies/s");
  if (!json) std::printf("ARP directory proxy %14.0f replies/s\n", arp);

  if (json) out.print();
  return 0;
}
