// M1-M5 — Supporting micro-benchmarks (google-benchmark): component costs
// underlying the system results — flow-table lookup, Aho-Corasick scan, L7
// classification, policy lookup, event store append/replay, packet codec.
#include <benchmark/benchmark.h>

#include "controller/policy.h"
#include "net/network.h"
#include "net/traffic.h"
#include "monitor/event_store.h"
#include "openflow/flow_table.h"
#include "packet/packet.h"
#include "services/ids/ids_engine.h"
#include "services/l7/l7_classifier.h"
#include "sim/event_queue.h"

namespace livesec {
namespace {

pkt::Packet make_packet(std::uint32_t flow, std::string_view payload) {
  return pkt::PacketBuilder()
      .eth(MacAddress::from_uint64(0xA0000 + (flow % 50)), MacAddress::from_uint64(0xB))
      .ipv4(Ipv4Address((10u << 24) | (flow % 250 + 1)), Ipv4Address(10, 0, 0, 2),
            pkt::IpProto::kTcp)
      .tcp(static_cast<std::uint16_t>(10000 + flow % 20000), 80, pkt::TcpFlags::kPsh)
      .payload(payload)
      .build();
}

// M1: flow table lookup with a realistic mix of exact entries.
void BM_FlowTableLookup(benchmark::State& state) {
  of::FlowTable table;
  const int entries = static_cast<int>(state.range(0));
  std::vector<pkt::FlowKey> keys;
  for (int i = 0; i < entries; ++i) {
    const pkt::Packet p = make_packet(static_cast<std::uint32_t>(i), "x");
    const pkt::FlowKey key = pkt::FlowKey::from_packet(p);
    keys.push_back(key);
    of::FlowEntry e;
    e.match = of::Match::exact(1, key);
    e.actions = of::output_to(2);
    table.add(e, 0);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(1, keys[i % keys.size()], 100, 1));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FlowTableLookup)->Arg(16)->Arg(128)->Arg(1024)->Arg(100)->Arg(1000)->Arg(10000);

// M1b: reference linear scan at the same table sizes — what lookup cost
// before the exact-match hash tier. Flat BM_FlowTableLookup next to a
// linearly growing BM_FlowTableLookupLinearScan is the fast path working.
void BM_FlowTableLookupLinearScan(benchmark::State& state) {
  const int entries = static_cast<int>(state.range(0));
  std::vector<pkt::FlowKey> keys;
  std::vector<of::FlowEntry> table;
  for (int i = 0; i < entries; ++i) {
    const pkt::Packet p = make_packet(static_cast<std::uint32_t>(i), "x");
    const pkt::FlowKey key = pkt::FlowKey::from_packet(p);
    keys.push_back(key);
    of::FlowEntry e;
    e.match = of::Match::exact(1, key);
    e.actions = of::output_to(2);
    table.push_back(e);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const pkt::FlowKey& key = keys[i % keys.size()];
    const of::FlowEntry* hit = nullptr;
    for (const of::FlowEntry& e : table) {
      if (e.match.matches(1, key)) {
        hit = &e;
        break;
      }
    }
    benchmark::DoNotOptimize(hit);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FlowTableLookupLinearScan)->Arg(100)->Arg(1000)->Arg(10000);

// M1c: lookup with wildcard entries shadow-checking the exact tier — the
// fallback path must not regress when a few wildcard rules coexist.
void BM_FlowTableLookupWithWildcards(benchmark::State& state) {
  of::FlowTable table;
  const int entries = static_cast<int>(state.range(0));
  std::vector<pkt::FlowKey> keys;
  for (int i = 0; i < entries; ++i) {
    const pkt::FlowKey key = pkt::FlowKey::from_packet(make_packet(static_cast<std::uint32_t>(i), "x"));
    keys.push_back(key);
    of::FlowEntry e;
    e.match = of::Match::exact(1, key);
    e.actions = of::output_to(2);
    table.add(e, 0);
  }
  // A handful of low-priority monitoring-style wildcard rules.
  for (std::uint16_t p = 1; p <= 8; ++p) {
    of::FlowEntry w;
    w.match = of::Match().tp_dst(p);
    w.priority = p;  // below the exact entries' default priority
    w.actions = of::output_to(3);
    table.add(w, 0);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(1, keys[i % keys.size()], 100, 1));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FlowTableLookupWithWildcards)->Arg(100)->Arg(1000)->Arg(10000);

// M2: Aho-Corasick scan throughput over the default IDS rule set.
void BM_AhoCorasickScan(benchmark::State& state) {
  svc::ids::AhoCorasick ac;
  for (const auto& rule : svc::ids::default_rules()) {
    for (const auto& content : rule.contents) ac.add_pattern(content);
  }
  ac.build();
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>('a' + i % 26);
  }
  std::vector<svc::ids::AhoCorasick::Hit> hits;
  for (auto _ : state) {
    hits.clear();
    benchmark::DoNotOptimize(ac.scan(payload, hits));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_AhoCorasickScan)->Arg(64)->Arg(1400)->Arg(64 * 1024);

// M2b: full IDS engine per-packet inspection cost.
void BM_IdsEngineInspect(benchmark::State& state) {
  svc::ids::IdsEngine engine;
  std::uint32_t flow = 0;
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'q');
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.inspect(make_packet(flow++ % 1000, payload)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_IdsEngineInspect)->Arg(128)->Arg(1400);

// M3: L7 classification of a fresh HTTP flow.
void BM_L7ClassifyFreshFlow(benchmark::State& state) {
  svc::l7::L7Classifier classifier;
  std::uint32_t flow = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        classifier.classify(make_packet(flow++, "GET /index.html HTTP/1.1\r\n\r\n")));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_L7ClassifyFreshFlow);

// M4: policy table lookup with N policies, worst case (no match).
void BM_PolicyLookup(benchmark::State& state) {
  ctrl::PolicyTable table;
  for (int i = 0; i < state.range(0); ++i) {
    ctrl::Policy p;
    p.tp_dst = static_cast<std::uint16_t>(10000 + i);
    p.action = ctrl::PolicyAction::kRedirect;
    table.add(p);
  }
  const pkt::FlowKey key = pkt::FlowKey::from_packet(make_packet(1, "x"));
  for (auto _ : state) benchmark::DoNotOptimize(table.lookup(key));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PolicyLookup)->Arg(8)->Arg(64)->Arg(512);

// M5: event store append + windowed replay.
void BM_EventStoreAppend(benchmark::State& state) {
  mon::EventStore store(1 << 20);
  SimTime t = 0;
  for (auto _ : state) {
    mon::NetworkEvent e;
    e.time = ++t;
    e.type = mon::EventType::kFlowStart;
    e.subject = "02:00:00:00:00:01";
    benchmark::DoNotOptimize(store.append(std::move(e)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventStoreAppend);

void BM_EventStoreReplay(benchmark::State& state) {
  mon::EventStore store;
  for (SimTime t = 0; t < state.range(0); ++t) {
    mon::NetworkEvent e;
    e.time = t;
    e.type = mon::EventType::kFlowStart;
    store.append(std::move(e));
  }
  for (auto _ : state) {
    std::size_t count = 0;
    store.replay(state.range(0) / 4, state.range(0) / 2,
                 [&count](const mon::NetworkEvent&) { ++count; });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0) / 4);
}
BENCHMARK(BM_EventStoreReplay)->Arg(10000);

// M7: controller flow-setup rate — full deployments processed end to end:
// ARP + packet-in + policy lookup + LB + FlowMod fan-out per new flow.
void BM_ControllerFlowSetup(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    net::Network network;
    auto& backbone = network.add_legacy_switch("backbone");
    auto& ovs1 = network.add_as_switch("ovs1", backbone);
    auto& ovs2 = network.add_as_switch("ovs2", backbone);
    auto& se_sw = network.add_as_switch("se", backbone);
    network.add_service_element(svc::ServiceType::kIntrusionDetection, se_sw);
    ctrl::Policy policy;
    policy.nw_proto = static_cast<std::uint8_t>(pkt::IpProto::kUdp);
    policy.action = ctrl::PolicyAction::kRedirect;
    policy.service_chain = {svc::ServiceType::kIntrusionDetection};
    network.controller().policies().add(policy);
    auto& a = network.add_host("a", ovs1, 10e9);
    auto& b = network.add_host("b", ovs2, 10e9);
    network.start();
    state.ResumeTiming();

    constexpr int kFlows = 500;
    for (int f = 0; f < kFlows; ++f) {
      pkt::Packet p = pkt::PacketBuilder()
                          .ipv4(a.ip(), b.ip(), pkt::IpProto::kUdp)
                          .udp(static_cast<std::uint16_t>(10000 + f), 9000)
                          .payload("first packet")
                          .build();
      a.send_ip(std::move(p));
    }
    network.run_for(2 * kSecond);
    benchmark::DoNotOptimize(network.controller().stats().flows_installed);
    state.SetItemsProcessed(state.items_processed() + kFlows);
  }
}
// Fixed iteration count: each iteration builds a full deployment (~50 ms),
// so auto-calibration would run for minutes.
BENCHMARK(BM_ControllerFlowSetup)->Unit(benchmark::kMillisecond)->Iterations(10);

// M8: event dispatch is copy-free end to end. The queue moves callbacks
// through buckets, the run, and rebuilds; a single accidental copy (e.g. a
// pop by value of std::function, or a by-value splice) would silently tax
// every event. Asserted, not just timed: the benchmark errors out if a 1M
// event push/dispatch cycle copies any callback even once.
void BM_EventQueueDrainZeroCopy(benchmark::State& state) {
  struct CountingCallback {
    std::uint64_t* copies;
    std::uint64_t* dispatched;
    CountingCallback(std::uint64_t* c, std::uint64_t* d) : copies(c), dispatched(d) {}
    CountingCallback(const CountingCallback& other)
        : copies(other.copies), dispatched(other.dispatched) {
      ++*copies;
    }
    CountingCallback(CountingCallback&&) = default;
    CountingCallback& operator=(const CountingCallback&) = default;
    CountingCallback& operator=(CountingCallback&&) = default;
    void operator()() const { ++*dispatched; }
  };
  constexpr std::uint64_t kEvents = 1'000'000;
  constexpr std::uint64_t kPending = 1024;
  for (auto _ : state) {
    std::uint64_t copies = 0;
    std::uint64_t dispatched = 0;
    sim::EventQueue queue;
    std::uint64_t rng = 0x9E3779B97F4A7C15ull;
    auto next_delay = [&rng]() {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return static_cast<SimTime>(rng % 1024);
    };
    for (std::uint64_t i = 0; i < kPending; ++i) {
      queue.push(next_delay(), CountingCallback(&copies, &dispatched));
    }
    // Steady-state churn: every dispatch schedules a successor, walking the
    // queue through bucket splices, run inserts, and window rebuilds.
    while (dispatched < kEvents) {
      sim::Event e = queue.pop();
      e.action();
      queue.push(e.time + next_delay(), CountingCallback(&copies, &dispatched));
    }
    benchmark::DoNotOptimize(dispatched);
    if (copies != 0) {
      state.SkipWithError("event queue copied a callback during drain");
      break;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kEvents));
}
BENCHMARK(BM_EventQueueDrainZeroCopy)->Unit(benchmark::kMillisecond)->Iterations(3);

// M6: packet wire codec round trip.
void BM_PacketSerializeParse(benchmark::State& state) {
  const pkt::Packet p = make_packet(1, std::string(1400, 'x'));
  for (auto _ : state) {
    const auto bytes = p.serialize();
    benchmark::DoNotOptimize(pkt::Packet::parse(bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1400);
}
BENCHMARK(BM_PacketSerializeParse);

}  // namespace
}  // namespace livesec

// Custom main so `--json` works uniformly across all bench binaries: it is
// rewritten into google-benchmark's native `--benchmark_format=json` flag.
int main(int argc, char** argv) {
  std::vector<char*> args;
  static char json_flag[] = "--benchmark_format=json";
  for (int i = 0; i < argc; ++i) {
    args.push_back(std::string_view(argv[i]) == "--json" ? json_flag : argv[i]);
  }
  int rewritten_argc = static_cast<int>(args.size());
  benchmark::Initialize(&rewritten_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(rewritten_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
