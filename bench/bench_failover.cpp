// B-HA — Controller high availability: what active-standby replication costs
// on the flow-setup hot path, and how long a failover takes end to end.
//
// Two measurements:
//
//   replication overhead — warm/cold flow setups per wall second with the
//       controller publishing every mutation through an HaCluster (one
//       standby applying the stream in the same process) versus standalone.
//       Acceptance: warm overhead <= 10%.
//
//   recovery time — simulated time from active crash to (a) standby
//       promotion with switches re-attached and (b) post-failover
//       reconciliation complete, in a 2-switch network under live traffic
//       with the default detection configuration (50 ms heartbeats, 3
//       misses).
//
// `--json` emits the machine-readable form recorded in BENCH_controller.json.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "controller/controller.h"
#include "ha/cluster.h"
#include "ha/fault_plan.h"
#include "net/network.h"
#include "net/traffic.h"
#include "openflow/channel.h"
#include "packet/packet.h"
#include "sim/simulator.h"
#include "topology/lldp.h"

using namespace livesec;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr int kHostsPerSide = 32;

class CountingSwitch : public of::SwitchEndpoint {
 public:
  explicit CountingSwitch(DatapathId dpid) : dpid_(dpid) {}
  DatapathId datapath_id() const override { return dpid_; }
  void handle_controller_message(const of::Message&) override { ++messages_; }
  std::uint64_t messages() const { return messages_; }

 private:
  DatapathId dpid_;
  std::uint64_t messages_ = 0;
};

MacAddress client_mac(int i) { return MacAddress::from_uint64(0x100000u + static_cast<unsigned>(i)); }
MacAddress server_mac(int i) { return MacAddress::from_uint64(0x200000u + static_cast<unsigned>(i)); }
Ipv4Address client_ip(int i) { return Ipv4Address(10, 0, 1, static_cast<std::uint8_t>(i + 1)); }
Ipv4Address server_ip(int i) { return Ipv4Address(10, 0, 2, static_cast<std::uint8_t>(i + 1)); }

/// Same direct packet-in harness as bench_flow_setup, optionally wrapped in
/// a two-node HaCluster so every controller mutation rides the replication
/// fabric (encode, schedule, decode, apply on the standby).
struct Harness {
  sim::Simulator sim;
  ctrl::Controller controller;
  ctrl::Controller standby;
  CountingSwitch sw1{1};
  CountingSwitch sw2{2};
  of::SecureChannel ch1{sim, sw1, controller, 0};
  of::SecureChannel ch2{sim, sw2, controller, 0};
  std::unique_ptr<ha::HaCluster> cluster;

  explicit Harness(bool replicated) : controller(sim), standby(sim) {
    if (replicated) {
      cluster = std::make_unique<ha::HaCluster>(sim, ha::HaCluster::Config{});
      cluster->add_node(controller);
      cluster->add_node(standby);
    }
    controller.attach_channel(1, ch1);
    controller.attach_channel(2, ch2);
    ch1.connect(of::FeaturesReply{1, 64, "sw1"});
    ch2.connect(of::FeaturesReply{2, 64, "sw2"});
    sim.run();
    topo::LldpInfo info;
    info.chassis_id = 2;
    info.port_id = 63;
    packet_in(1, 62, pkt::finalize(info.to_packet()));
    for (int i = 0; i < kHostsPerSide; ++i) {
      packet_in(1, static_cast<PortId>(i), gratuitous_arp(client_mac(i), client_ip(i)));
      packet_in(2, static_cast<PortId>(i), gratuitous_arp(server_mac(i), server_ip(i)));
    }
    ctrl::Policy catch_all;
    catch_all.name = "default-allow";
    catch_all.priority = 1;
    catch_all.action = ctrl::PolicyAction::kAllow;
    controller.policies().add(catch_all);
    sim.run();
  }

  static pkt::PacketPtr gratuitous_arp(MacAddress mac, Ipv4Address ip) {
    return pkt::PacketBuilder()
        .eth(mac, MacAddress::broadcast())
        .arp(pkt::ArpOp::kRequest, mac, ip, MacAddress{}, ip)
        .finalize();
  }

  void packet_in(DatapathId dpid, PortId in_port, pkt::PacketPtr packet) {
    of::PacketIn pin;
    pin.in_port = in_port;
    pin.buffer_id = of::PacketOut::kNoBuffer;
    pin.packet = std::move(packet);
    controller.handle_switch_message(dpid, of::Message{std::move(pin)});
  }
};

pkt::PacketPtr udp_packet(int client, int server, std::uint16_t tp_src, std::uint16_t tp_dst) {
  return pkt::PacketBuilder()
      .eth(client_mac(client), server_mac(server))
      .ipv4(client_ip(client), server_ip(server), pkt::IpProto::kUdp)
      .udp(tp_src, tp_dst)
      .finalize();
}

/// Flow setups per wall second, with or without the replication fabric. The
/// periodic sim.run() flushes scheduled record deliveries, so the replicated
/// figure pays the standby's apply cost too — the honest end-to-end price.
double run_setups(bool replicated, bool warm, int count) {
  Harness h(replicated);

  std::vector<pkt::PacketPtr> arrivals;
  arrivals.reserve(static_cast<std::size_t>(count));
  for (int n = 0; n < count; ++n) {
    if (warm) {
      arrivals.push_back(udp_packet(0, 0, static_cast<std::uint16_t>(1 + (n % 60000)), 7777));
    } else {
      arrivals.push_back(
          udp_packet(n % kHostsPerSide, (n / kHostsPerSide) % kHostsPerSide, 40000,
                     static_cast<std::uint16_t>(5000 + n / (kHostsPerSide * kHostsPerSide))));
    }
  }

  const std::uint64_t before = h.controller.stats().flows_installed;
  const auto start = Clock::now();
  for (int n = 0; n < count; ++n) {
    h.packet_in(1, static_cast<PortId>(warm ? 0 : n % kHostsPerSide), std::move(arrivals[n]));
    if ((n & 511) == 511) h.sim.run();
  }
  h.sim.run();
  const double elapsed = seconds_since(start);
  const std::uint64_t installed = h.controller.stats().flows_installed - before;
  if (installed != static_cast<std::uint64_t>(count)) {
    std::fprintf(stderr, "WARNING: installed %llu of %d setups (replicated=%d)\n",
                 static_cast<unsigned long long>(installed), count, replicated ? 1 : 0);
  }

  if (replicated) {
    const std::uint64_t head = h.cluster->log().head_seq();
    if (h.cluster->applied_seq(1) != head) {
      std::fprintf(stderr, "WARNING: standby applied %llu of %llu records\n",
                   static_cast<unsigned long long>(h.cluster->applied_seq(1)),
                   static_cast<unsigned long long>(head));
    }
  }
  return static_cast<double>(count) / elapsed;
}

struct Pair {
  double standalone = 0;  // best-of throughput
  double replicated = 0;  // best-of throughput
  double overhead_pct = 0;  // median of per-round standalone/replicated ratios
};

/// Interleaved standalone/replicated rounds. Throughputs are best-of; the
/// overhead is the median of per-round ratios — back-to-back rounds see the
/// same machine load, and the median sheds rounds a load spike polluted.
Pair measure_interleaved(int repeats, bool warm, int count) {
  Pair out;
  std::vector<double> ratios;
  for (int r = 0; r < repeats; ++r) {
    const double plain = run_setups(false, warm, count);
    const double repl = run_setups(true, warm, count);
    out.standalone = std::max(out.standalone, plain);
    out.replicated = std::max(out.replicated, repl);
    ratios.push_back(plain / repl);
  }
  std::sort(ratios.begin(), ratios.end());
  out.overhead_pct = (ratios[ratios.size() / 2] - 1.0) * 100.0;
  return out;
}

struct RecoveryResult {
  double detect_promote_ms = 0;   // crash -> standby holds mastership
  double reconcile_ms = 0;        // crash -> flow-table audit complete
  double stale_removed = 0;
  double drops_reinstalled = 0;
};

/// Simulated failover in a live 2-switch network: crash at 1 s, default
/// detection configuration. Times are simulated (deterministic), not wall.
RecoveryResult run_recovery() {
  ha::FaultPlan plan;
  plan.crash_active_at = 1 * kSecond;

  net::Network network;
  network.enable_ha(1, {}, plan);
  auto& backbone = network.add_legacy_switch("backbone");
  auto& ovs1 = network.add_as_switch("ovs1", backbone);
  auto& ovs2 = network.add_as_switch("ovs2", backbone);
  auto& alice = network.add_host("alice", ovs1);
  auto& bob = network.add_host("bob", ovs2);
  network.start();

  net::UdpCbrApp stream(alice, {.dst = bob.ip(), .rate_bps = 2e6, .duration = 3 * kSecond});
  stream.start();
  network.run_for(3 * kSecond);

  const ha::HaCluster& cluster = *network.ha_cluster();
  RecoveryResult out;
  const SimTime crash = cluster.stats().last_crash_at;
  out.detect_promote_ms =
      static_cast<double>(cluster.stats().last_promotion_at - crash) / kMillisecond;
  const auto& report = network.active_controller().reconcile_report();
  out.reconcile_ms = static_cast<double>(report.completed_at - crash) / kMillisecond;
  out.stale_removed = static_cast<double>(report.stale_removed);
  out.drops_reinstalled = static_cast<double>(report.drops_reinstalled);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = benchjson::wants_json(argc, argv);
  if (!json) std::printf("=== B-HA: controller failover ===\n");

  // Warm stays under the 60000 distinct tp_src values so no flow key ever
  // repeats within one iteration.
  constexpr int kColdSetups = 16384;
  constexpr int kWarmSetups = 49152;
  constexpr int kRepeats = 5;

  benchjson::Emitter out("bench_failover");

  const Pair warm = measure_interleaved(kRepeats, true, kWarmSetups);
  const Pair cold = measure_interleaved(kRepeats, false, kColdSetups);
  const double warm_plain = warm.standalone;
  const double warm_repl = warm.replicated;
  const double cold_plain = cold.standalone;
  const double cold_repl = cold.replicated;
  const double warm_overhead = warm.overhead_pct;
  const double cold_overhead = cold.overhead_pct;

  out.metric("setup_warm_standalone", warm_plain, "flows/s");
  out.metric("setup_warm_replicated", warm_repl, "flows/s");
  out.metric("replication_overhead_warm_pct", warm_overhead, "%");
  out.metric("setup_cold_standalone", cold_plain, "flows/s");
  out.metric("setup_cold_replicated", cold_repl, "flows/s");
  out.metric("replication_overhead_cold_pct", cold_overhead, "%");
  if (!json) {
    std::printf("warm  standalone %10.0f flows/s   replicated %10.0f flows/s   overhead %+5.1f%%\n",
                warm_plain, warm_repl, warm_overhead);
    std::printf("cold  standalone %10.0f flows/s   replicated %10.0f flows/s   overhead %+5.1f%%\n",
                cold_plain, cold_repl, cold_overhead);
  }

  const RecoveryResult rec = run_recovery();
  out.metric("failover_detect_promote_ms", rec.detect_promote_ms, "sim-ms");
  out.metric("failover_reconcile_ms", rec.reconcile_ms, "sim-ms");
  out.metric("reconcile_stale_removed", rec.stale_removed, "entries");
  out.metric("reconcile_drops_reinstalled", rec.drops_reinstalled, "entries");
  if (!json) {
    std::printf("recovery: detect+promote %.1f sim-ms, reconcile complete %.1f sim-ms\n",
                rec.detect_promote_ms, rec.reconcile_ms);
  }

  if (json) out.print();
  return 0;
}
