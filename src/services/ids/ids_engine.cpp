#include "services/ids/ids_engine.h"

#include <algorithm>
#include <cctype>

namespace livesec::svc::ids {

namespace {
std::string fold_case(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}
}  // namespace

IdsEngine::IdsEngine() : IdsEngine(default_rules()) {}

IdsEngine::IdsEngine(std::vector<Signature> rules) : rules_(std::move(rules)) {
  for (std::uint32_t r = 0; r < rules_.size(); ++r) {
    for (std::uint32_t c = 0; c < rules_[r].contents.size(); ++c) {
      const std::string& content = rules_[r].contents[c];
      const auto length = static_cast<std::uint32_t>(content.size());
      if (rules_[r].nocase) {
        automaton_nocase_.add_pattern(fold_case(content));
        pattern_refs_nocase_.push_back(PatternRef{r, c, length});
      } else {
        automaton_.add_pattern(content);
        pattern_refs_.push_back(PatternRef{r, c, length});
      }
    }
  }
  automaton_.build();
  automaton_nocase_.build();
}

void IdsEngine::apply_hits(const std::vector<AhoCorasick::Hit>& hits,
                           const std::vector<PatternRef>& refs, const pkt::Packet& packet,
                           const pkt::FlowKey& key, FlowState& state,
                           std::vector<Alert>& alerts) {
  for (const auto& hit : hits) {
    const PatternRef ref = refs[hit.pattern_id];
    const Signature& rule = rules_[ref.rule_index];
    if (!rule.matches_headers(packet)) continue;
    // Stream-absolute position of this occurrence for offset/depth rules.
    const std::uint64_t stream_end = state.stream_bytes + hit.end_offset;
    if (!rule.position_ok(stream_end, ref.length)) continue;
    if (std::find(state.fired.begin(), state.fired.end(), rule.id) != state.fired.end()) continue;

    std::uint64_t& mask = state.progress[ref.rule_index];
    mask |= (1ull << ref.content_index);
    const std::uint64_t complete =
        (rule.contents.size() >= 64) ? ~0ull : ((1ull << rule.contents.size()) - 1);
    if ((mask & complete) == complete) {
      state.fired.push_back(rule.id);
      ++alerts_raised_;
      alerts.push_back(Alert{rule.id, rule.name, rule.severity, key});
    }
  }
}

std::vector<Alert> IdsEngine::inspect(const pkt::Packet& packet, SimTime now) {
  ++packets_inspected_;
  bytes_inspected_ += packet.payload_size();

  std::vector<Alert> alerts;
  if (packet.payload_size() == 0) return alerts;

  const pkt::FlowKey key = pkt::FlowKey::from_packet(packet);
  FlowState& state = flows_.touch(key, now);

  if (automaton_.pattern_count() > 0) {
    hit_scratch_.clear();
    automaton_.scan_stream(packet.payload_view(), state.ac_state, hit_scratch_);
    apply_hits(hit_scratch_, pattern_refs_, packet, key, state, alerts);
  }
  if (automaton_nocase_.pattern_count() > 0) {
    // Fold the payload once; positions are unchanged by folding.
    const auto payload = packet.payload_view();
    fold_scratch_.resize(payload.size());
    for (std::size_t i = 0; i < payload.size(); ++i) {
      fold_scratch_[i] = static_cast<std::uint8_t>(std::tolower(payload[i]));
    }
    hit_scratch_.clear();
    automaton_nocase_.scan_stream(fold_scratch_, state.ac_state_nocase, hit_scratch_);
    apply_hits(hit_scratch_, pattern_refs_nocase_, packet, key, state, alerts);
  }
  state.stream_bytes += packet.payload_size();
  return alerts;
}

void IdsEngine::forget_flow(const pkt::FlowKey& flow) { flows_.erase(flow); }

}  // namespace livesec::svc::ids
