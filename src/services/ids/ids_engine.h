// The intrusion-detection engine run inside an IDS service element
// (the repo's stand-in for the Snort port of paper §V.B.1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "packet/flow_key.h"
#include "services/flow_context.h"
#include "services/ids/aho_corasick.h"
#include "services/ids/signature.h"

namespace livesec::svc::ids {

/// An alert produced by the engine for one flow.
struct Alert {
  std::uint32_t rule_id = 0;
  std::string rule_name;
  std::uint8_t severity = 0;
  pkt::FlowKey flow;
};

/// Multi-pattern IDS over per-flow payload streams.
///
/// All rule contents are compiled into one Aho-Corasick automaton; per flow
/// the engine keeps the automaton state plus the set of content patterns
/// seen so far, so multi-content rules fire only once all their patterns
/// have appeared in the flow (in any packet, even split across packets).
/// Each flow alerts at most once per rule. Per-flow state is bounded by a
/// FlowContextTable (LRU + idle timeout); an evicted flow restarts fresh.
class IdsEngine {
 public:
  struct FlowState {
    std::uint32_t ac_state = 0;         // case-sensitive automaton state
    std::uint32_t ac_state_nocase = 0;  // case-folded automaton state
    std::uint64_t stream_bytes = 0;     // payload bytes seen before this packet
    /// Per rule: bitmask of its content patterns already seen.
    std::unordered_map<std::uint32_t, std::uint64_t> progress;
    /// Rules that already alerted on this flow.
    std::vector<std::uint32_t> fired;
  };

  explicit IdsEngine(std::vector<Signature> rules);

  /// Engine over default_rules().
  IdsEngine();

  /// Inspects one packet in its flow's streaming context; returns alerts
  /// newly fired by this packet. `now` drives LRU/idle bookkeeping.
  std::vector<Alert> inspect(const pkt::Packet& packet, SimTime now = 0);

  /// Drops per-flow state (e.g. on FIN/RST or idle timeout).
  void forget_flow(const pkt::FlowKey& flow);

  FlowContextTable<FlowState>& contexts() { return flows_; }
  const FlowContextTable<FlowState>& contexts() const { return flows_; }

  std::size_t rule_count() const { return rules_.size(); }
  std::size_t tracked_flows() const { return flows_.size(); }
  std::uint64_t packets_inspected() const { return packets_inspected_; }
  std::uint64_t bytes_inspected() const { return bytes_inspected_; }
  std::uint64_t alerts_raised() const { return alerts_raised_; }

 private:
  struct PatternRef {
    std::uint32_t rule_index;
    std::uint32_t content_index;
    std::uint32_t length;  // pattern length, for offset/depth checks
  };

  /// Applies one automaton's hits to the flow state; appends fired alerts.
  void apply_hits(const std::vector<AhoCorasick::Hit>& hits,
                  const std::vector<PatternRef>& refs, const pkt::Packet& packet,
                  const pkt::FlowKey& key, FlowState& state, std::vector<Alert>& alerts);

  std::vector<Signature> rules_;
  AhoCorasick automaton_;         // case-sensitive contents
  AhoCorasick automaton_nocase_;  // case-folded contents, scans folded bytes
  std::vector<PatternRef> pattern_refs_;         // automaton pattern id -> rule content
  std::vector<PatternRef> pattern_refs_nocase_;
  FlowContextTable<FlowState> flows_;
  // Per-packet scratch reused across inspect() calls (no hot-path allocs).
  std::vector<AhoCorasick::Hit> hit_scratch_;
  std::vector<std::uint8_t> fold_scratch_;
  std::uint64_t packets_inspected_ = 0;
  std::uint64_t bytes_inspected_ = 0;
  std::uint64_t alerts_raised_ = 0;
};

}  // namespace livesec::svc::ids
