#include "services/ids/aho_corasick.h"

#include <cassert>
#include <queue>

namespace livesec::svc::ids {

std::uint32_t AhoCorasick::add_pattern(std::string_view pattern) {
  assert(!built_ && "cannot add patterns after build()");
  patterns_.emplace_back(pattern);
  return static_cast<std::uint32_t>(patterns_.size() - 1);
}

void AhoCorasick::build() {
  if (built_) return;
  nodes_.clear();
  nodes_.emplace_back();  // root = 0

  // Phase 1: trie of all patterns.
  for (std::uint32_t id = 0; id < patterns_.size(); ++id) {
    std::uint32_t state = 0;
    for (unsigned char c : patterns_[id]) {
      if (nodes_[state].next[c] < 0) {
        nodes_[state].next[c] = static_cast<std::int32_t>(nodes_.size());
        nodes_.emplace_back();
      }
      state = static_cast<std::uint32_t>(nodes_[state].next[c]);
    }
    nodes_[state].output.push_back(id);
  }

  // Phase 2: BFS failure links; convert to a full goto function so scanning
  // is a single table walk per byte.
  std::queue<std::uint32_t> queue;
  for (int c = 0; c < 256; ++c) {
    const std::int32_t next = nodes_[0].next[c];
    if (next < 0) {
      nodes_[0].next[c] = 0;
    } else {
      nodes_[static_cast<std::uint32_t>(next)].fail = 0;
      queue.push(static_cast<std::uint32_t>(next));
    }
  }
  while (!queue.empty()) {
    const std::uint32_t state = queue.front();
    queue.pop();
    const std::uint32_t fail = nodes_[state].fail;
    // Inherit the fail state's outputs (suffix matches).
    for (std::uint32_t id : nodes_[fail].output) nodes_[state].output.push_back(id);
    for (int c = 0; c < 256; ++c) {
      const std::int32_t next = nodes_[state].next[c];
      if (next < 0) {
        nodes_[state].next[c] = nodes_[fail].next[c];
      } else {
        nodes_[static_cast<std::uint32_t>(next)].fail =
            static_cast<std::uint32_t>(nodes_[fail].next[c]);
        queue.push(static_cast<std::uint32_t>(next));
      }
    }
  }
  for (int c = 0; c < 256; ++c) {
    root_advances_[c] = nodes_[0].next[c] != 0 ? 1 : 0;
  }
  built_ = true;
}

std::size_t AhoCorasick::scan(std::span<const std::uint8_t> data, std::vector<Hit>& hits) const {
  std::uint32_t state = 0;
  return scan_stream(data, state, hits);
}

std::size_t AhoCorasick::scan_stream(std::span<const std::uint8_t> data, std::uint32_t& state,
                                     std::vector<Hit>& hits) const {
  assert(built_);
  const Node* nodes = nodes_.data();
  std::size_t found = 0;
  std::size_t i = 0;
  const std::size_t n = data.size();
  while (i < n) {
    if (state == 0) {
      // Root fast path: skim bytes no pattern starts with (they loop on the
      // root with no output — the root matches no empty pattern).
      while (i < n && root_advances_[data[i]] == 0) ++i;
      if (i == n) break;
    }
    state = static_cast<std::uint32_t>(nodes[state].next[data[i]]);
    for (std::uint32_t id : nodes[state].output) {
      hits.push_back(Hit{id, i + 1});
      ++found;
    }
    ++i;
  }
  return found;
}

bool AhoCorasick::contains_any(std::span<const std::uint8_t> data) const {
  assert(built_);
  const Node* nodes = nodes_.data();
  std::uint32_t state = 0;
  std::size_t i = 0;
  const std::size_t n = data.size();
  while (i < n) {
    if (state == 0) {
      while (i < n && root_advances_[data[i]] == 0) ++i;
      if (i == n) break;
    }
    state = static_cast<std::uint32_t>(nodes[state].next[data[i]]);
    if (!nodes[state].output.empty()) return true;
    ++i;
  }
  return false;
}

}  // namespace livesec::svc::ids
