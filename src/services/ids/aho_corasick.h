// Aho-Corasick multi-pattern string matcher — the content-inspection core of
// the Snort-like IDS service element.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace livesec::svc::ids {

/// Builds one automaton over all rule content patterns and scans payloads in
/// a single pass (O(bytes + matches)), which is what lets a VM-sized service
/// element sustain the hundreds of Mbps measured in paper §V.B.1.
class AhoCorasick {
 public:
  /// A match: which pattern, and the payload offset just past its last byte.
  struct Hit {
    std::uint32_t pattern_id;
    std::size_t end_offset;
  };

  /// Adds a pattern; returns its id (dense, starting at 0). Patterns may
  /// contain arbitrary bytes. Must be called before build().
  std::uint32_t add_pattern(std::string_view pattern);

  /// Finalizes the goto/fail automaton. Idempotent.
  void build();

  bool built() const { return built_; }
  std::size_t pattern_count() const { return patterns_.size(); }
  const std::string& pattern(std::uint32_t id) const { return patterns_[id]; }

  /// Scans `data`, appending every match to `hits`. Returns match count.
  std::size_t scan(std::span<const std::uint8_t> data, std::vector<Hit>& hits) const;

  /// Convenience: true if any pattern occurs in `data`.
  bool contains_any(std::span<const std::uint8_t> data) const;

  /// Streaming scan: feed chunks with persistent state across calls so
  /// patterns spanning packet boundaries are still found. `state` starts at 0.
  std::size_t scan_stream(std::span<const std::uint8_t> data, std::uint32_t& state,
                          std::vector<Hit>& hits) const;

 private:
  struct Node {
    std::int32_t next[256];
    std::uint32_t fail = 0;
    std::vector<std::uint32_t> output;  // pattern ids ending here
    Node() {
      for (auto& n : next) n = -1;
    }
  };

  std::vector<std::string> patterns_;
  std::vector<Node> nodes_;
  /// root_advances_[b] iff byte b moves the automaton off the root. While at
  /// the root (the overwhelmingly common state for benign payloads), bytes
  /// that stay there can be skimmed in a tight loop instead of paying the
  /// dependent-load table walk — no pattern starts with them, so no hit or
  /// state change is possible.
  std::uint8_t root_advances_[256] = {};
  bool built_ = false;
};

}  // namespace livesec::svc::ids
