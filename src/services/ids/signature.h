// Snort-like rule model for the intrusion-detection service element.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "packet/packet.h"

namespace livesec::svc::ids {

/// Which transport a rule applies to.
enum class RuleProto : std::uint8_t { kAny = 0, kTcp = 6, kUdp = 17, kIcmp = 1 };

/// A detection rule: "alert <proto> any any -> any <port> (content:...)".
/// A rule fires when every content pattern occurs in a flow's payload stream
/// and the protocol/port constraints hold.
struct Signature {
  std::uint32_t id = 0;
  std::string name;
  RuleProto proto = RuleProto::kAny;
  /// Destination port constraint; 0 = any.
  std::uint16_t dst_port = 0;
  /// Source port constraint; 0 = any.
  std::uint16_t src_port = 0;
  /// All patterns must appear (logical AND), matching Snort multi-content.
  std::vector<std::string> contents;
  /// 1 (info) .. 10 (critical).
  std::uint8_t severity = 5;

  // Content modifiers (Snort-style, applied to every content of the rule):
  /// Case-insensitive matching.
  bool nocase = false;
  /// Contents must start at or after this byte offset of the flow's payload
  /// stream.
  std::uint32_t offset = 0;
  /// Contents must end within the first `offset + depth` stream bytes
  /// (0 = unbounded).
  std::uint32_t depth = 0;

  bool matches_headers(const pkt::Packet& packet) const;

  /// True when a content occurrence at stream position
  /// [end - length, end) satisfies the offset/depth constraints.
  bool position_ok(std::uint64_t end, std::size_t length) const {
    const std::uint64_t start = end - length;
    if (start < offset) return false;
    if (depth != 0 && end > static_cast<std::uint64_t>(offset) + depth) return false;
    return true;
  }
};

/// Parses a compact textual rule format, one rule per line:
///   id name proto dst_port severity content[|content2...] [opts]
/// e.g. `1001 exploit.shellcode tcp 0 9 \x90\x90\x90\x90`
///      `1020 web.login-probe tcp 80 4 admin nocase,offset=4,depth=64`
/// Escapes: \xNN for arbitrary bytes, \\ and \s (space) in content.
/// opts: comma list of `nocase`, `offset=N`, `depth=N`.
/// Lines starting with '#' and blank lines are skipped.
/// Returns parsed rules; malformed lines are collected into `errors`.
std::vector<Signature> parse_rules(std::string_view text, std::vector<std::string>& errors);

/// The built-in rule set modeling the Snort deployment of paper §V
/// (web attacks, shellcode, scans, botnet C2, malicious-site markers).
const std::vector<Signature>& default_rules();

}  // namespace livesec::svc::ids
