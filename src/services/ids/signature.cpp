#include "services/ids/signature.h"

#include <charconv>
#include <sstream>

namespace livesec::svc::ids {

bool Signature::matches_headers(const pkt::Packet& packet) const {
  if (!packet.ipv4) return false;
  if (proto != RuleProto::kAny &&
      packet.ipv4->protocol != static_cast<std::uint8_t>(proto)) {
    return false;
  }
  std::uint16_t pkt_src = 0;
  std::uint16_t pkt_dst = 0;
  if (packet.tcp) {
    pkt_src = packet.tcp->src_port;
    pkt_dst = packet.tcp->dst_port;
  } else if (packet.udp) {
    pkt_src = packet.udp->src_port;
    pkt_dst = packet.udp->dst_port;
  }
  if (dst_port != 0 && pkt_dst != dst_port) return false;
  if (src_port != 0 && pkt_src != src_port) return false;
  return true;
}

namespace {

/// Unescapes \xNN, \\ and \s sequences in a rule content field.
std::optional<std::string> unescape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '\\') {
      out.push_back(raw[i]);
      continue;
    }
    if (i + 1 >= raw.size()) return std::nullopt;
    const char kind = raw[++i];
    if (kind == '\\') {
      out.push_back('\\');
    } else if (kind == 's') {
      out.push_back(' ');
    } else if (kind == 'x') {
      if (i + 2 >= raw.size()) return std::nullopt;
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return 10 + (c - 'a');
        if (c >= 'A' && c <= 'F') return 10 + (c - 'A');
        return -1;
      };
      const int hi = hex(raw[i + 1]);
      const int lo = hex(raw[i + 2]);
      if (hi < 0 || lo < 0) return std::nullopt;
      out.push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else {
      return std::nullopt;
    }
  }
  return out;
}

}  // namespace

std::vector<Signature> parse_rules(std::string_view text, std::vector<std::string>& errors) {
  std::vector<Signature> rules;
  std::istringstream lines{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    Signature sig;
    std::string proto;
    std::string content;
    int dst_port = -1;
    int severity = -1;
    if (!(fields >> sig.id >> sig.name >> proto >> dst_port >> severity >> content)) {
      errors.push_back("line " + std::to_string(line_no) + ": expected 6 fields");
      continue;
    }
    if (proto == "tcp") {
      sig.proto = RuleProto::kTcp;
    } else if (proto == "udp") {
      sig.proto = RuleProto::kUdp;
    } else if (proto == "icmp") {
      sig.proto = RuleProto::kIcmp;
    } else if (proto == "any") {
      sig.proto = RuleProto::kAny;
    } else {
      errors.push_back("line " + std::to_string(line_no) + ": bad proto '" + proto + "'");
      continue;
    }
    if (dst_port < 0 || dst_port > 65535 || severity < 1 || severity > 10) {
      errors.push_back("line " + std::to_string(line_no) + ": bad port/severity");
      continue;
    }
    sig.dst_port = static_cast<std::uint16_t>(dst_port);
    sig.severity = static_cast<std::uint8_t>(severity);
    bool bad_content = false;
    std::size_t start = 0;
    while (start <= content.size()) {
      const std::size_t bar = content.find('|', start);
      const std::string_view piece = bar == std::string::npos
                                         ? std::string_view(content).substr(start)
                                         : std::string_view(content).substr(start, bar - start);
      auto unescaped = unescape(piece);
      if (!unescaped || unescaped->empty()) {
        bad_content = true;
        break;
      }
      sig.contents.push_back(std::move(*unescaped));
      if (bar == std::string::npos) break;
      start = bar + 1;
    }
    if (bad_content) {
      errors.push_back("line " + std::to_string(line_no) + ": bad content escapes");
      continue;
    }
    // Optional trailing options column.
    std::string opts;
    bool bad_opts = false;
    if (fields >> opts) {
      std::size_t pos = 0;
      while (pos <= opts.size()) {
        const std::size_t comma = opts.find(',', pos);
        const std::string item =
            comma == std::string::npos ? opts.substr(pos) : opts.substr(pos, comma - pos);
        auto parse_num = [&](const std::string& digits, std::uint32_t& out) {
          const auto [ptr, ec] =
              std::from_chars(digits.data(), digits.data() + digits.size(), out);
          return ec == std::errc() && ptr == digits.data() + digits.size();
        };
        if (item == "nocase") {
          sig.nocase = true;
        } else if (item.rfind("offset=", 0) == 0) {
          if (!parse_num(item.substr(7), sig.offset)) {
            errors.push_back("line " + std::to_string(line_no) + ": bad offset");
            bad_opts = true;
            break;
          }
        } else if (item.rfind("depth=", 0) == 0) {
          if (!parse_num(item.substr(6), sig.depth)) {
            errors.push_back("line " + std::to_string(line_no) + ": bad depth");
            bad_opts = true;
            break;
          }
        } else {
          errors.push_back("line " + std::to_string(line_no) + ": bad option '" + item + "'");
          bad_opts = true;
          break;
        }
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    }
    if (bad_opts) continue;
    rules.push_back(std::move(sig));
  }
  return rules;
}

const std::vector<Signature>& default_rules() {
  static const std::vector<Signature> kRules = [] {
    std::vector<std::string> errors;
    // A compact cross-section of what the paper's Snort deployment would
    // alert on: web attacks, shellcode, scanning, C2 beacons, EICAR.
    auto rules = parse_rules(
        "1001 web.sql-injection tcp 80 8 UNION\\sSELECT\n"
        "1002 web.sql-injection-comment tcp 80 7 '\\sOR\\s1=1--\n"
        "1003 web.xss-script-tag tcp 80 6 <script>alert(\n"
        "1004 web.path-traversal tcp 80 7 ../../../etc/passwd\n"
        "1005 web.cmd-injection tcp 80 8 ;cat\\s/etc/shadow\n"
        "1006 exploit.x86-nop-sled any 0 9 \\x90\\x90\\x90\\x90\\x90\\x90\\x90\\x90\n"
        "1007 exploit.shellcode-execve any 0 9 \\x31\\xc0\\x50\\x68\\x2f\\x2f\\x73\\x68\n"
        "1008 malware.eicar-test any 0 10 X5O!P%@AP[4\\\\PZX54(P^)7CC)7}$EICAR\n"
        "1009 c2.beacon-checkin tcp 0 8 BOTNET-CHECKIN|id=\n"
        "1010 scan.nikto-probe tcp 80 4 Nikto\n"
        "1011 dos.slowloris-marker tcp 80 5 X-a:\\sb\n"
        "1012 malware.dropper-url tcp 80 9 GET\\s/dropper.exe\n"
        "1013 policy.telnet-root udp 0 3 root:root\n"
        "1014 web.malicious-site tcp 80 8 malware-distribution.example\n"
        "1015 exfil.dns-tunnel udp 53 6 xfiltunnel\n",
        errors);
    return rules;
  }();
  return kRules;
}

}  // namespace livesec::svc::ids
