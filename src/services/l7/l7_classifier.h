// Application-protocol identification service (the repo's stand-in for the
// Linux L7-filter port of paper §V.B.1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "packet/flow_key.h"
#include "services/flow_context.h"

namespace livesec::svc::l7 {

/// The BitTorrent wire-protocol handshake header (BEP 3): one length byte
/// (19) followed by the protocol string. Shared by the classifier pattern
/// and the traffic generator so they cannot drift apart.
inline constexpr std::string_view kBitTorrentProtocolHeader = "\x13" "BitTorrent protocol";

/// Builds the full 68-byte BitTorrent handshake: header, 8 reserved bytes,
/// then `info_hash` and `peer_id` each truncated / zero-padded to their
/// fixed 20-byte fields.
std::string make_bittorrent_handshake(std::string_view info_hash, std::string_view peer_id);

/// Application protocols the classifier recognizes — the set visible in the
/// paper's WebUI figures (web browsing, SSH, BitTorrent) plus common campus
/// traffic.
enum class AppProtocol : std::uint32_t {
  kUnknown = 0,
  kHttp = 1,
  kSsh = 2,
  kBitTorrent = 3,
  kDns = 4,
  kFtp = 5,
  kSmtp = 6,
  kTls = 7,
  kSip = 8,
  kRtp = 9,
};

const char* app_protocol_name(AppProtocol proto);

/// One identification pattern: protocol + payload prefix/substring evidence.
struct ProtocolPattern {
  AppProtocol proto = AppProtocol::kUnknown;
  /// Pattern must appear within the first `window` payload bytes of a flow.
  std::string pattern;
  /// true: pattern must be at offset 0; false: anywhere in the window.
  bool anchored = false;
  /// Transport port hint (0 = none); port hints raise confidence but payload
  /// evidence alone is sufficient, like l7-filter.
  std::uint16_t port_hint = 0;
};

/// The built-in pattern set (l7-filter style, simplified to byte matching).
const std::vector<ProtocolPattern>& default_patterns();

/// Classification result for a flow.
struct Classification {
  AppProtocol proto = AppProtocol::kUnknown;
  /// True the moment the verdict was first reached (reported once per flow).
  bool fresh = false;
};

/// Per-flow application classifier over the first few payload-carrying
/// packets (l7-filter inspects at most the first 10 packets / 2 KiB; same
/// bounds here). Per-flow windows are bounded by a FlowContextTable (LRU +
/// idle timeout).
class L7Classifier {
 public:
  struct Config {
    std::size_t max_packets_per_flow = 10;
    std::size_t max_bytes_per_flow = 2048;
  };

  struct FlowState {
    std::vector<std::uint8_t> window;  // accumulated early payload
    std::size_t packets = 0;
    AppProtocol verdict = AppProtocol::kUnknown;
    bool decided = false;  // verdict final (identified or given up)
  };

  L7Classifier();
  explicit L7Classifier(std::vector<ProtocolPattern> patterns);

  /// Feeds one packet; returns the verdict when this packet decided it
  /// (fresh=true exactly once per flow). `now` drives LRU/idle bookkeeping.
  Classification classify(const pkt::Packet& packet, SimTime now = 0);

  /// Current verdict for a flow, if any.
  std::optional<AppProtocol> verdict(const pkt::FlowKey& flow) const;

  /// True once the flow's verdict is final (identified, or given up after
  /// the packet/byte budget) — i.e. further payload teaches nothing.
  bool decided(const pkt::FlowKey& flow) const;

  void forget_flow(const pkt::FlowKey& flow);

  FlowContextTable<FlowState>& contexts() { return flows_; }
  const FlowContextTable<FlowState>& contexts() const { return flows_; }

  std::size_t tracked_flows() const { return flows_.size(); }
  std::uint64_t packets_seen() const { return packets_seen_; }
  std::uint64_t flows_identified() const { return flows_identified_; }

 private:
  AppProtocol match(const pkt::Packet& packet, std::span<const std::uint8_t> window) const;

  Config config_;
  std::vector<ProtocolPattern> patterns_;
  FlowContextTable<FlowState> flows_;
  std::uint64_t packets_seen_ = 0;
  std::uint64_t flows_identified_ = 0;
};

}  // namespace livesec::svc::l7
