#include "services/l7/l7_classifier.h"

#include <algorithm>
#include <cstring>

namespace livesec::svc::l7 {

const char* app_protocol_name(AppProtocol proto) {
  switch (proto) {
    case AppProtocol::kUnknown: return "unknown";
    case AppProtocol::kHttp: return "http";
    case AppProtocol::kSsh: return "ssh";
    case AppProtocol::kBitTorrent: return "bittorrent";
    case AppProtocol::kDns: return "dns";
    case AppProtocol::kFtp: return "ftp";
    case AppProtocol::kSmtp: return "smtp";
    case AppProtocol::kTls: return "tls";
    case AppProtocol::kSip: return "sip";
    case AppProtocol::kRtp: return "rtp";
  }
  return "?";
}

const std::vector<ProtocolPattern>& default_patterns() {
  static const std::vector<ProtocolPattern> kPatterns = {
      {AppProtocol::kHttp, "GET ", true, 80},
      {AppProtocol::kHttp, "POST ", true, 80},
      {AppProtocol::kHttp, "HEAD ", true, 80},
      {AppProtocol::kHttp, "HTTP/1.", false, 80},
      {AppProtocol::kSsh, "SSH-2.0", true, 22},
      {AppProtocol::kSsh, "SSH-1.99", true, 22},
      {AppProtocol::kBitTorrent, std::string(kBitTorrentProtocolHeader), true, 6881},
      {AppProtocol::kBitTorrent, "d1:ad2:id20:", true, 6881},  // DHT query
      {AppProtocol::kFtp, "220 ", true, 21},
      {AppProtocol::kFtp, "USER ", true, 21},
      {AppProtocol::kSmtp, "EHLO ", true, 25},
      {AppProtocol::kSmtp, "HELO ", true, 25},
      {AppProtocol::kTls, std::string("\x16\x03", 2), true, 443},
      {AppProtocol::kSip, "INVITE sip:", true, 5060},
      {AppProtocol::kSip, "REGISTER sip:", true, 5060},
  };
  return kPatterns;
}

std::string make_bittorrent_handshake(std::string_view info_hash, std::string_view peer_id) {
  std::string handshake(kBitTorrentProtocolHeader);
  handshake.append(8, '\0');  // reserved extension bits
  const auto append_fixed20 = [&handshake](std::string_view field) {
    handshake.append(field.substr(0, 20));
    if (field.size() < 20) handshake.append(20 - field.size(), '\0');
  };
  append_fixed20(info_hash);
  append_fixed20(peer_id);
  return handshake;
}

L7Classifier::L7Classifier() : L7Classifier(default_patterns()) {}

L7Classifier::L7Classifier(std::vector<ProtocolPattern> patterns)
    : patterns_(std::move(patterns)) {}

AppProtocol L7Classifier::match(const pkt::Packet& packet,
                                std::span<const std::uint8_t> window) const {
  // DNS: no reliable ASCII marker — use port + minimal header sanity, like
  // l7-filter's dns pattern does structurally.
  if (packet.udp && (packet.udp->dst_port == 53 || packet.udp->src_port == 53) &&
      window.size() >= 12) {
    return AppProtocol::kDns;
  }
  for (const ProtocolPattern& p : patterns_) {
    if (p.pattern.size() > window.size()) continue;
    const auto* pat = reinterpret_cast<const std::uint8_t*>(p.pattern.data());
    if (p.anchored) {
      if (std::memcmp(window.data(), pat, p.pattern.size()) == 0) return p.proto;
    } else {
      auto it = std::search(window.begin(), window.end(), pat, pat + p.pattern.size());
      if (it != window.end()) return p.proto;
    }
  }
  return AppProtocol::kUnknown;
}

Classification L7Classifier::classify(const pkt::Packet& packet, SimTime now) {
  ++packets_seen_;
  if (packet.payload_size() == 0) return {AppProtocol::kUnknown, false};

  const pkt::FlowKey key = pkt::FlowKey::from_packet(packet);
  FlowState& state = flows_.touch(key, now);
  if (state.decided) return {state.verdict, false};

  ++state.packets;
  const auto payload = packet.payload_view();
  const std::size_t room = config_.max_bytes_per_flow - state.window.size();
  const std::size_t take = std::min(room, payload.size());
  state.window.insert(state.window.end(), payload.begin(), payload.begin() + static_cast<std::ptrdiff_t>(take));

  const AppProtocol verdict = match(packet, state.window);
  if (verdict != AppProtocol::kUnknown) {
    state.verdict = verdict;
    state.decided = true;
    state.window.clear();
    state.window.shrink_to_fit();
    ++flows_identified_;
    return {verdict, true};
  }
  if (state.packets >= config_.max_packets_per_flow ||
      state.window.size() >= config_.max_bytes_per_flow) {
    state.decided = true;  // give up: stays unknown
    state.window.clear();
    state.window.shrink_to_fit();
  }
  return {AppProtocol::kUnknown, false};
}

std::optional<AppProtocol> L7Classifier::verdict(const pkt::FlowKey& flow) const {
  const FlowState* state = flows_.find(flow);
  if (state == nullptr || !state->decided || state->verdict == AppProtocol::kUnknown) {
    return std::nullopt;
  }
  return state->verdict;
}

bool L7Classifier::decided(const pkt::FlowKey& flow) const {
  const FlowState* state = flows_.find(flow);
  return state != nullptr && state->decided;
}

void L7Classifier::forget_flow(const pkt::FlowKey& flow) { flows_.erase(flow); }

}  // namespace livesec::svc::l7
