// VM-based service element: the off-path middlebox of paper §III.D.1.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "common/ip_address.h"
#include "common/mac_address.h"
#include "services/firewall/firewall_engine.h"
#include "services/flow_context.h"
#include "services/ids/ids_engine.h"
#include "services/l7/l7_classifier.h"
#include "services/message.h"
#include "services/scanner/virus_scanner.h"
#include "sim/node.h"

namespace livesec::svc {

/// Destination addresses of daemon messages. Any UDP datagram to this
/// address misses every flow table (the controller never installs an entry
/// for it, §III.D.1) and is therefore punted to the controller on every hop.
MacAddress controller_service_mac();
Ipv4Address controller_service_ip();

/// A VM hosting one network-service engine, attached to an AS switch via a
/// single virtual NIC (port 0).
///
/// Operation (bypass mode, paper §V.B.1): a redirected packet arrives with
/// dl_dst rewritten to this SE's MAC; it queues behind a finite processing
/// budget (bytes*8/processing_bps + fixed per-packet cost), is inspected by
/// the engine, and is then reflected back out unchanged — the AS switch's
/// return-path entry carries it onward. Verdicts become EVENT daemon
/// messages; liveness and load become periodic ONLINE messages.
///
/// Fast path: the ingress queue is drained in batches (one simulator event
/// per batch instead of per packet; the busy-until chain is unchanged, so
/// total service time and thus throughput are identical), engines carry
/// streaming per-flow inspection state across packets, and — when
/// `verdict_byte_budget` is set — flows that pass the budget clean earn a
/// VERDICT(benign) message so the controller can cut them through.
class ServiceElement : public sim::Node {
 public:
  struct Config {
    std::uint64_t se_id = 0;
    MacAddress mac;
    Ipv4Address ip;
    ServiceType service = ServiceType::kIntrusionDetection;
    /// Bulk inspection rate. Paper §V.B.1: a single VM-based SE sustains
    /// ~500 Mbps in bypass mode.
    double processing_bps = 500e6;
    /// Extra per-byte cost of deep HTTP inspection; 500/421 reproduces the
    /// paper's 421 Mbps single-SE HTTP result.
    double http_inspect_factor = 500.0 / 421.0;
    /// Fixed per-packet engine cost.
    SimTime per_packet_overhead = 1 * kMicrosecond;
    SimTime heartbeat_interval = 2 * kSecond;
    /// Certification token issued by the controller (0 = uncertified; its
    /// traffic will be dropped at the ingress AS switch, §III.D.1).
    std::uint64_t cert_token = 0;
    /// Packets queued beyond this are dropped (VM overload).
    std::size_t max_queue_packets = 4096;
    /// Simulated VM memory footprint reported in ONLINE messages.
    std::uint16_t memory_mb = 512;
    /// Custom IDS ruleset; empty = ids::default_rules(). Lets operators roll
    /// out new signatures per SE generation.
    std::vector<ids::Signature> ids_rules;
    /// Firewall ruleset (kFirewall service): first match wins.
    std::vector<fw::FwRule> firewall_rules;
    /// Firewall default policy when no rule matches.
    fw::FwAction firewall_default = fw::FwAction::kAllow;
    /// Max packets drained per simulator event (1 = per-packet scheduling).
    std::size_t batch_max_packets = 32;
    /// Benign-verdict byte budget: a steered flow whose inspected payload
    /// passes this many bytes without any detection gets a VERDICT(benign)
    /// message, inviting the controller to offload it. 0 disables verdict
    /// emission (the default: always-redirect, the paper's base behavior).
    std::uint64_t verdict_byte_budget = 0;
    /// Bounds of the per-flow streaming-inspection context tables.
    std::size_t max_flow_contexts = 4096;
    SimTime context_idle_timeout = 30 * kSecond;
  };

  ServiceElement(sim::Simulator& sim, std::string name, Config config);

  /// Starts the service daemon: sends the first ONLINE message immediately
  /// and then every heartbeat_interval.
  void start();
  void stop();
  bool running() const { return running_; }

  void handle_packet(PortId in_port, pkt::PacketPtr packet) override;

  const Config& config() const { return config_; }
  MacAddress mac() const { return config_.mac; }
  Ipv4Address ip() const { return config_.ip; }
  std::uint64_t se_id() const { return config_.se_id; }
  ServiceType service() const { return config_.service; }

  std::uint64_t processed_packets() const { return processed_packets_; }
  std::uint64_t processed_bytes() const { return processed_bytes_; }
  std::uint64_t overload_drops() const { return overload_drops_; }
  std::uint64_t events_sent() const { return events_sent_; }
  std::uint64_t verdicts_sent() const { return verdicts_sent_; }
  std::size_t queue_depth() const { return queued_packets_; }

  // Batch-drain telemetry.
  std::uint64_t batches_total() const { return batches_total_; }
  std::uint64_t batch_packets_total() const { return batch_packets_total_; }
  const std::array<std::uint32_t, 6>& batch_size_hist() const { return batch_size_hist_; }

  /// Streaming-inspection context occupancy/evictions of the active engine.
  std::size_t flow_contexts() const;
  std::uint64_t context_evictions() const;

  ids::IdsEngine& ids_engine() { return ids_; }
  l7::L7Classifier& l7_classifier() { return l7_; }
  scanner::VirusScanner& virus_scanner() { return scanner_; }
  fw::FirewallEngine& firewall() { return firewall_; }

 private:
  /// Per-flow verdict bookkeeping (only populated when the budget is on).
  struct VerdictState {
    std::uint64_t inspected_bytes = 0;
    bool flagged = false;        // a detection fired on this flow
    bool verdict_sent = false;   // final verdict (benign/malicious) emitted
    bool progress_sent = false;  // keep-inspecting emitted at the budget
  };

  /// Schedules one drain event for the head of the pending queue.
  void schedule_batch();
  /// Processes the scheduled batch, flushes coalesced messages, re-arms.
  void drain_batch();
  void process(pkt::PacketPtr packet);
  /// Tracks inspected bytes toward the verdict budget; queues VERDICTs.
  void note_verdict_progress(const pkt::FlowKey& key, std::size_t payload_bytes, bool detected,
                             std::uint32_t rule_id, std::uint8_t severity);
  void send_heartbeat();
  /// Queues an event for the current batch, dropping intra-batch duplicates.
  void queue_event(EventMessage event);
  void send_event(EventMessage event);
  void send_verdict(VerdictMessage verdict);
  pkt::PacketPtr wrap_daemon_message(const DaemonMessage& message) const;
  /// Service time for one packet under this SE's budget.
  SimTime service_time(const pkt::Packet& packet) const;

  Config config_;
  bool running_ = false;
  std::uint64_t heartbeat_epoch_ = 0;  // invalidates pending heartbeats on stop()

  // Processing pipeline state (busy-until serialization, like a link).
  SimTime busy_until_ = 0;
  std::size_t queued_packets_ = 0;  // pending queue + scheduled batch

  // Batch drain state.
  std::deque<std::pair<pkt::PacketPtr, SimTime>> pending_;  // packet + its service time
  SimTime pending_service_time_ = 0;  // sum of service times still pending
  bool batch_scheduled_ = false;
  std::size_t batch_take_ = 0;  // packets covered by the scheduled event
  std::vector<EventMessage> batch_events_;
  std::vector<VerdictMessage> batch_verdicts_;

  // Engines (only the one matching config_.service is exercised).
  ids::IdsEngine ids_;
  l7::L7Classifier l7_;
  scanner::VirusScanner scanner_;
  fw::FirewallEngine firewall_;
  FlowContextTable<VerdictState> verdicts_;

  // Stats.
  std::uint64_t processed_packets_ = 0;
  std::uint64_t processed_bytes_ = 0;
  std::uint64_t overload_drops_ = 0;
  std::uint64_t events_sent_ = 0;
  std::uint64_t verdicts_sent_ = 0;
  std::uint64_t batches_total_ = 0;
  std::uint64_t batch_packets_total_ = 0;
  std::array<std::uint32_t, 6> batch_size_hist_{};
  std::uint64_t last_report_packets_ = 0;
  SimTime last_report_time_ = 0;
};

}  // namespace livesec::svc
