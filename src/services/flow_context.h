// Bounded per-flow inspection-context table shared by the SE engines.
//
// Streaming inspection (IDS automaton state, L7 windows, scanner DFA state)
// needs per-flow memory that lives across packets; on a production SE that
// memory must be bounded or a port scan exhausts it. FlowContextTable keys
// contexts by pkt::FlowKey and bounds them two ways:
//  - a hard capacity: inserting into a full table evicts the
//    least-recently-touched context (LRU);
//  - an idle timeout driven by the simulation clock: sweep(now) drops every
//    context whose flow has been silent past the timeout (the SE calls it
//    from its heartbeat tick).
// Eviction loses mid-flow state — a signature spanning an evicted boundary
// is missed — which is the standard memory/completeness trade every
// stream-reassembling inspector makes. Occupancy and eviction counters are
// exported so the trade is visible in ONLINE reports and the WebUI.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/types.h"
#include "packet/flow_key.h"

namespace livesec::svc {

template <typename Context>
class FlowContextTable {
 public:
  struct Limits {
    /// Max live contexts; 0 is clamped to 1 (touch() must return something).
    std::size_t capacity = 4096;
    /// Contexts idle longer than this are dropped by sweep(); 0 disables.
    SimTime idle_timeout = 30 * kSecond;
  };

  FlowContextTable() = default;
  explicit FlowContextTable(Limits limits) : limits_(limits) {}

  void set_limits(Limits limits) {
    limits_ = limits;
    while (lru_.size() > capacity()) {
      evict(std::prev(lru_.end()));
      ++evictions_lru_;
    }
  }
  const Limits& limits() const { return limits_; }

  /// Get-or-create the context for `key`, refreshing its LRU position and
  /// idle clock. A full table evicts its least-recently-touched entry first.
  Context& touch(const pkt::FlowKey& key, SimTime now) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->last_seen = now;
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->ctx;
    }
    if (lru_.size() >= capacity()) {
      evict(std::prev(lru_.end()));
      ++evictions_lru_;
    }
    lru_.push_front(Entry{key, now, Context{}});
    index_.emplace(key, lru_.begin());
    ++created_;
    return lru_.front().ctx;
  }

  Context* find(const pkt::FlowKey& key) {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->ctx;
  }
  const Context* find(const pkt::FlowKey& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->ctx;
  }

  void erase(const pkt::FlowKey& key) {
    auto it = index_.find(key);
    if (it != index_.end()) evict(it->second);
  }

  /// Drops every context idle past the timeout; returns how many. The LRU
  /// tail is the least recently touched, so this stops at the first live one.
  std::size_t sweep(SimTime now) {
    if (limits_.idle_timeout == 0) return 0;
    std::size_t evicted = 0;
    while (!lru_.empty()) {
      auto last = std::prev(lru_.end());
      if (now < last->last_seen + limits_.idle_timeout) break;
      evict(last);
      ++evictions_idle_;
      ++evicted;
    }
    return evicted;
  }

  void clear() {
    lru_.clear();
    index_.clear();
  }

  std::size_t size() const { return lru_.size(); }
  std::uint64_t created() const { return created_; }
  std::uint64_t evictions_lru() const { return evictions_lru_; }
  std::uint64_t evictions_idle() const { return evictions_idle_; }
  std::uint64_t evictions_total() const { return evictions_lru_ + evictions_idle_; }

 private:
  struct Entry {
    pkt::FlowKey key;
    SimTime last_seen = 0;
    Context ctx;
  };
  using EntryIt = typename std::list<Entry>::iterator;

  std::size_t capacity() const { return limits_.capacity == 0 ? 1 : limits_.capacity; }

  void evict(EntryIt it) {
    index_.erase(it->key);
    lru_.erase(it);
  }

  Limits limits_;
  std::list<Entry> lru_;  // front = most recently touched
  std::unordered_map<pkt::FlowKey, EntryIt> index_;
  std::uint64_t created_ = 0;
  std::uint64_t evictions_lru_ = 0;
  std::uint64_t evictions_idle_ = 0;
};

}  // namespace livesec::svc
