#include "services/message.h"

#include "packet/buffer.h"

namespace livesec::svc {

const char* service_type_name(ServiceType type) {
  switch (type) {
    case ServiceType::kIntrusionDetection: return "intrusion_detection";
    case ServiceType::kProtocolIdentification: return "protocol_identification";
    case ServiceType::kVirusScan: return "virus_scan";
    case ServiceType::kContentInspection: return "content_inspection";
    case ServiceType::kFirewall: return "firewall";
  }
  return "?";
}

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kAttackDetected: return "attack_detected";
    case EventKind::kProtocolIdentified: return "protocol_identified";
    case EventKind::kVirusFound: return "virus_found";
    case EventKind::kContentViolation: return "content_violation";
    case EventKind::kFirewallDenied: return "firewall_denied";
  }
  return "?";
}

const char* flow_verdict_name(FlowVerdict verdict) {
  switch (verdict) {
    case FlowVerdict::kBenign: return "benign";
    case FlowVerdict::kMalicious: return "malicious";
    case FlowVerdict::kKeepInspecting: return "keep_inspecting";
  }
  return "?";
}

namespace {

constexpr std::uint8_t kTypeOnline = 1;
constexpr std::uint8_t kTypeEvent = 2;
constexpr std::uint8_t kTypeVerdict = 3;

std::uint8_t wire_type(const std::variant<OnlineMessage, EventMessage, VerdictMessage>& body) {
  if (std::holds_alternative<OnlineMessage>(body)) return kTypeOnline;
  if (std::holds_alternative<EventMessage>(body)) return kTypeEvent;
  return kTypeVerdict;
}

}  // namespace

std::vector<std::uint8_t> DaemonMessage::encode() const {
  pkt::BufferWriter w;
  w.u32(kMessageMagic);
  w.u8(kMessageVersion);
  w.u8(wire_type(body));
  w.u64(se_id);
  w.u64(cert_token);
  if (const auto* online = std::get_if<OnlineMessage>(&body)) {
    w.u8(static_cast<std::uint8_t>(online->service));
    w.u8(online->cpu_percent);
    w.u16(online->memory_mb);
    w.u32(online->packets_per_second);
    w.u64(online->processed_packets_total);
    w.u64(online->processed_bytes_total);
    w.u32(online->queued_packets);
    w.u64(online->capacity_bps);
    w.u32(online->flow_contexts);
    w.u64(online->context_evictions);
    w.u64(online->batches_total);
    w.u64(online->batch_packets_total);
    for (const std::uint32_t bucket : online->batch_size_hist) w.u32(bucket);
  } else if (const auto* event = std::get_if<EventMessage>(&body)) {
    w.u8(static_cast<std::uint8_t>(event->kind));
    w.u32(event->rule_id);
    w.u8(event->severity);
    w.u64(event->observed_dpid);
    w.u32(event->observed_port);
    event->flow.encode(w);
    w.length_prefixed_string(event->description);
  } else {
    const auto& verdict = std::get<VerdictMessage>(body);
    w.u8(static_cast<std::uint8_t>(verdict.verdict));
    verdict.flow.encode(w);
    w.u64(verdict.inspected_bytes);
    w.u64(verdict.byte_budget);
    w.u32(verdict.rule_id);
    w.u8(verdict.severity);
  }
  return w.take();
}

std::optional<DaemonMessage> DaemonMessage::decode(std::span<const std::uint8_t> payload) {
  pkt::BufferReader r(payload);
  if (r.u32() != kMessageMagic) return std::nullopt;
  if (r.u8() != kMessageVersion) return std::nullopt;
  const std::uint8_t type = r.u8();
  DaemonMessage m;
  m.se_id = r.u64();
  m.cert_token = r.u64();
  if (type == kTypeOnline) {
    OnlineMessage online;
    online.service = static_cast<ServiceType>(r.u8());
    online.cpu_percent = r.u8();
    online.memory_mb = r.u16();
    online.packets_per_second = r.u32();
    online.processed_packets_total = r.u64();
    online.processed_bytes_total = r.u64();
    online.queued_packets = r.u32();
    online.capacity_bps = r.u64();
    online.flow_contexts = r.u32();
    online.context_evictions = r.u64();
    online.batches_total = r.u64();
    online.batch_packets_total = r.u64();
    for (std::uint32_t& bucket : online.batch_size_hist) bucket = r.u32();
    m.body = online;
  } else if (type == kTypeEvent) {
    EventMessage event;
    event.kind = static_cast<EventKind>(r.u8());
    event.rule_id = r.u32();
    event.severity = r.u8();
    event.observed_dpid = r.u64();
    event.observed_port = r.u32();
    event.flow = pkt::FlowKey::decode(r);
    event.description = r.length_prefixed_string();
    m.body = std::move(event);
  } else if (type == kTypeVerdict) {
    VerdictMessage verdict;
    verdict.verdict = static_cast<FlowVerdict>(r.u8());
    verdict.flow = pkt::FlowKey::decode(r);
    verdict.inspected_bytes = r.u64();
    verdict.byte_budget = r.u64();
    verdict.rule_id = r.u32();
    verdict.severity = r.u8();
    m.body = verdict;
  } else {
    return std::nullopt;
  }
  if (!r.ok()) return std::nullopt;
  return m;
}

bool is_daemon_packet(const pkt::Packet& packet) {
  return packet.udp.has_value() && packet.udp->dst_port == kLiveSecPort;
}

}  // namespace livesec::svc
