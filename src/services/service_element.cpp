#include "services/service_element.h"

#include <algorithm>

#include "common/logging.h"
#include "packet/packet.h"
#include "sim/simulator.h"

namespace livesec::svc {

MacAddress controller_service_mac() { return MacAddress::from_uint64(0x0200000000FEull); }
Ipv4Address controller_service_ip() { return Ipv4Address(10, 255, 255, 254); }

ServiceElement::ServiceElement(sim::Simulator& sim, std::string name, Config config)
    : Node(sim, std::move(name)),
      config_(config),
      ids_(config.ids_rules.empty() ? ids::default_rules() : config.ids_rules),
      firewall_(config.firewall_rules, config.firewall_default) {
  add_port();  // port 0: the virtual NIC
}

void ServiceElement::start() {
  if (running_) return;
  running_ = true;
  ++heartbeat_epoch_;
  send_heartbeat();
}

void ServiceElement::stop() {
  running_ = false;
  ++heartbeat_epoch_;
}

SimTime ServiceElement::service_time(const pkt::Packet& packet) const {
  double rate = config_.processing_bps;
  // Deep HTTP inspection costs more per byte (IDS reassembles and matches
  // across the HTTP stream) — paper: 500 Mbps bypass vs 421 Mbps HTTP.
  const bool http = packet.tcp && (packet.tcp->dst_port == 80 || packet.tcp->src_port == 80);
  if (http && config_.service == ServiceType::kIntrusionDetection) {
    rate /= config_.http_inspect_factor;
  }
  const double bits = static_cast<double>(packet.wire_size()) * 8.0;
  return static_cast<SimTime>(bits / rate * kSecond) + config_.per_packet_overhead;
}

void ServiceElement::handle_packet(PortId in_port, pkt::PacketPtr packet) {
  (void)in_port;
  if (!running_) return;
  // Only inspect traffic steered to this SE (dl_dst rewritten by the ingress
  // AS switch) or broadcast noise we can ignore.
  if (packet->eth.dst != config_.mac) return;

  if (queued_packets_ >= config_.max_queue_packets) {
    ++overload_drops_;
    return;
  }
  ++queued_packets_;
  const SimTime now = simulator().now();
  const SimTime start = busy_until_ > now ? busy_until_ : now;
  busy_until_ = start + service_time(*packet);
  simulator().schedule_at(busy_until_, [this, packet = std::move(packet)]() mutable {
    --queued_packets_;
    process(std::move(packet));
  });
}

void ServiceElement::process(pkt::PacketPtr packet) {
  if (!running_) return;
  ++processed_packets_;
  processed_bytes_ += packet->wire_size();

  switch (config_.service) {
    case ServiceType::kIntrusionDetection: {
      for (const ids::Alert& alert : ids_.inspect(*packet)) {
        EventMessage event;
        event.kind = EventKind::kAttackDetected;
        event.rule_id = alert.rule_id;
        event.severity = alert.severity;
        event.flow = alert.flow;
        event.description = alert.rule_name;
        send_event(std::move(event));
      }
      break;
    }
    case ServiceType::kProtocolIdentification: {
      const l7::Classification c = l7_.classify(*packet);
      if (c.fresh) {
        EventMessage event;
        event.kind = EventKind::kProtocolIdentified;
        event.rule_id = static_cast<std::uint32_t>(c.proto);
        event.severity = 0;
        event.flow = pkt::FlowKey::from_packet(*packet);
        event.description = l7::app_protocol_name(c.proto);
        send_event(std::move(event));
      }
      break;
    }
    case ServiceType::kVirusScan:
    case ServiceType::kContentInspection: {
      for (const auto& detection : scanner_.scan(*packet)) {
        EventMessage event;
        event.kind = config_.service == ServiceType::kVirusScan ? EventKind::kVirusFound
                                                                : EventKind::kContentViolation;
        event.rule_id = detection.signature_id;
        event.severity = detection.severity;
        event.flow = pkt::FlowKey::from_packet(*packet);
        event.description = detection.family;
        send_event(std::move(event));
      }
      break;
    }
    case ServiceType::kFirewall: {
      const fw::FwVerdict verdict = firewall_.filter(*packet);
      if (verdict.action == fw::FwAction::kDeny) {
        EventMessage event;
        event.kind = EventKind::kFirewallDenied;
        event.rule_id = verdict.rule_id;
        event.severity = 4;
        event.flow = pkt::FlowKey::from_packet(*packet);
        event.description = "firewall rule " + std::to_string(verdict.rule_id);
        send_event(std::move(event));
        return;  // denied: the packet is NOT reflected (dropped in the VM)
      }
      break;
    }
  }

  // Bypass mode: reflect the packet back toward the AS switch unchanged; the
  // switch's return-path flow entry (paper §IV.A step iii) carries it on.
  send(0, std::move(packet));
}

void ServiceElement::send_heartbeat() {
  if (!running_) return;
  const SimTime now = simulator().now();

  OnlineMessage online;
  online.service = config_.service;
  // CPU utilization approximated by pipeline occupancy over the last period.
  const SimTime busy = busy_until_ > now ? busy_until_ - now : 0;
  const double occupancy =
      std::min(1.0, static_cast<double>(busy) / static_cast<double>(config_.heartbeat_interval));
  online.cpu_percent = static_cast<std::uint8_t>(occupancy * 100.0);
  online.memory_mb = config_.memory_mb;
  const SimTime elapsed = now - last_report_time_;
  if (elapsed > 0) {
    online.packets_per_second = static_cast<std::uint32_t>(
        static_cast<double>(processed_packets_ - last_report_packets_) / to_seconds(elapsed));
  }
  online.processed_packets_total = processed_packets_;
  online.processed_bytes_total = processed_bytes_;
  online.queued_packets = static_cast<std::uint32_t>(queued_packets_);
  online.capacity_bps = static_cast<std::uint64_t>(config_.processing_bps);
  last_report_packets_ = processed_packets_;
  last_report_time_ = now;

  DaemonMessage message;
  message.se_id = config_.se_id;
  message.cert_token = config_.cert_token;
  message.body = online;
  send(0, wrap_daemon_message(message));

  const std::uint64_t epoch = heartbeat_epoch_;
  simulator().schedule(config_.heartbeat_interval, [this, epoch]() {
    if (running_ && heartbeat_epoch_ == epoch) send_heartbeat();
  });
}

void ServiceElement::send_event(EventMessage event) {
  DaemonMessage message;
  message.se_id = config_.se_id;
  message.cert_token = config_.cert_token;
  message.body = std::move(event);
  ++events_sent_;
  send(0, wrap_daemon_message(message));
}

pkt::PacketPtr ServiceElement::wrap_daemon_message(const DaemonMessage& message) const {
  return pkt::PacketBuilder()
      .eth(config_.mac, controller_service_mac())
      .ipv4(config_.ip, controller_service_ip(), pkt::IpProto::kUdp)
      .udp(kLiveSecPort, kLiveSecPort)
      .payload(pkt::make_payload(message.encode()))
      .finalize();
}

}  // namespace livesec::svc
