#include "services/service_element.h"

#include <algorithm>

#include "common/logging.h"
#include "packet/packet.h"
#include "sim/simulator.h"

namespace livesec::svc {

MacAddress controller_service_mac() { return MacAddress::from_uint64(0x0200000000FEull); }
Ipv4Address controller_service_ip() { return Ipv4Address(10, 255, 255, 254); }

ServiceElement::ServiceElement(sim::Simulator& sim, std::string name, Config config)
    : Node(sim, std::move(name)),
      config_(config),
      ids_(config.ids_rules.empty() ? ids::default_rules() : config.ids_rules),
      firewall_(config.firewall_rules, config.firewall_default) {
  add_port();  // port 0: the virtual NIC
  ids_.contexts().set_limits({config_.max_flow_contexts, config_.context_idle_timeout});
  l7_.contexts().set_limits({config_.max_flow_contexts, config_.context_idle_timeout});
  scanner_.contexts().set_limits({config_.max_flow_contexts, config_.context_idle_timeout});
  verdicts_.set_limits({config_.max_flow_contexts, config_.context_idle_timeout});
}

void ServiceElement::start() {
  if (running_) return;
  running_ = true;
  ++heartbeat_epoch_;
  send_heartbeat();
}

void ServiceElement::stop() {
  running_ = false;
  ++heartbeat_epoch_;  // also invalidates any scheduled batch drain
  pending_.clear();
  pending_service_time_ = 0;
  batch_scheduled_ = false;
  batch_events_.clear();
  batch_verdicts_.clear();
  queued_packets_ = 0;
}

SimTime ServiceElement::service_time(const pkt::Packet& packet) const {
  double rate = config_.processing_bps;
  // Deep HTTP inspection costs more per byte (IDS reassembles and matches
  // across the HTTP stream) — paper: 500 Mbps bypass vs 421 Mbps HTTP.
  const bool http = packet.tcp && (packet.tcp->dst_port == 80 || packet.tcp->src_port == 80);
  if (http && config_.service == ServiceType::kIntrusionDetection) {
    rate /= config_.http_inspect_factor;
  }
  const double bits = static_cast<double>(packet.wire_size()) * 8.0;
  return static_cast<SimTime>(bits / rate * kSecond) + config_.per_packet_overhead;
}

std::size_t ServiceElement::flow_contexts() const {
  switch (config_.service) {
    case ServiceType::kIntrusionDetection: return ids_.contexts().size();
    case ServiceType::kProtocolIdentification: return l7_.contexts().size();
    case ServiceType::kVirusScan:
    case ServiceType::kContentInspection: return scanner_.contexts().size();
    case ServiceType::kFirewall: return 0;
  }
  return 0;
}

std::uint64_t ServiceElement::context_evictions() const {
  switch (config_.service) {
    case ServiceType::kIntrusionDetection: return ids_.contexts().evictions_total();
    case ServiceType::kProtocolIdentification: return l7_.contexts().evictions_total();
    case ServiceType::kVirusScan:
    case ServiceType::kContentInspection: return scanner_.contexts().evictions_total();
    case ServiceType::kFirewall: return 0;
  }
  return 0;
}

void ServiceElement::handle_packet(PortId in_port, pkt::PacketPtr packet) {
  (void)in_port;
  if (!running_) return;
  // Only inspect traffic steered to this SE (dl_dst rewritten by the ingress
  // AS switch) or broadcast noise we can ignore.
  if (packet->eth.dst != config_.mac) return;

  if (queued_packets_ >= config_.max_queue_packets) {
    ++overload_drops_;
    return;
  }
  ++queued_packets_;
  const SimTime cost = service_time(*packet);
  pending_service_time_ += cost;
  pending_.emplace_back(std::move(packet), cost);
  if (!batch_scheduled_) schedule_batch();
}

void ServiceElement::schedule_batch() {
  const std::size_t limit = std::max<std::size_t>(1, config_.batch_max_packets);
  batch_take_ = std::min(pending_.size(), limit);
  const SimTime now = simulator().now();
  SimTime done = busy_until_ > now ? busy_until_ : now;
  // The busy-until chain is per packet, exactly as before batching; only the
  // completion event is collapsed to the batch's end, so throughput and the
  // SE's capacity accounting are unchanged.
  for (std::size_t i = 0; i < batch_take_; ++i) {
    done += pending_[i].second;
    pending_service_time_ -= pending_[i].second;
  }
  busy_until_ = done;
  batch_scheduled_ = true;
  const std::uint64_t epoch = heartbeat_epoch_;
  simulator().schedule_at(done, [this, epoch]() {
    if (heartbeat_epoch_ == epoch) drain_batch();
  });
}

void ServiceElement::drain_batch() {
  batch_scheduled_ = false;
  if (!running_) return;  // stop() already cleared the queue
  const std::size_t take = std::min(batch_take_, pending_.size());
  if (take > 0) {
    ++batches_total_;
    batch_packets_total_ += take;
    std::size_t bucket = 0;  // log2 buckets: 1, 2-3, 4-7, 8-15, 16-31, 32+
    for (std::size_t n = take; n > 1 && bucket < batch_size_hist_.size() - 1; n >>= 1) ++bucket;
    ++batch_size_hist_[bucket];
  }
  for (std::size_t i = 0; i < take; ++i) {
    pkt::PacketPtr packet = std::move(pending_.front().first);
    pending_.pop_front();
    --queued_packets_;
    process(std::move(packet));
  }
  // Coalesced daemon messages: at most one event per (kind, rule, flow) and
  // one verdict per flow, all emitted at batch completion.
  for (EventMessage& event : batch_events_) send_event(std::move(event));
  batch_events_.clear();
  for (VerdictMessage& verdict : batch_verdicts_) send_verdict(std::move(verdict));
  batch_verdicts_.clear();
  if (!pending_.empty()) schedule_batch();
}

void ServiceElement::process(pkt::PacketPtr packet) {
  if (!running_) return;
  ++processed_packets_;
  processed_bytes_ += packet->wire_size();

  const SimTime now = simulator().now();
  const pkt::FlowKey key = pkt::FlowKey::from_packet(*packet);
  bool detected = false;
  std::uint32_t detected_rule = 0;
  std::uint8_t detected_severity = 0;

  switch (config_.service) {
    case ServiceType::kIntrusionDetection: {
      for (const ids::Alert& alert : ids_.inspect(*packet, now)) {
        detected = true;
        detected_rule = alert.rule_id;
        detected_severity = alert.severity;
        EventMessage event;
        event.kind = EventKind::kAttackDetected;
        event.rule_id = alert.rule_id;
        event.severity = alert.severity;
        event.flow = alert.flow;
        event.description = alert.rule_name;
        queue_event(std::move(event));
      }
      break;
    }
    case ServiceType::kProtocolIdentification: {
      const l7::Classification c = l7_.classify(*packet, now);
      if (c.fresh) {
        EventMessage event;
        event.kind = EventKind::kProtocolIdentified;
        event.rule_id = static_cast<std::uint32_t>(c.proto);
        event.severity = 0;
        event.flow = key;
        event.description = l7::app_protocol_name(c.proto);
        queue_event(std::move(event));
      }
      break;
    }
    case ServiceType::kVirusScan:
    case ServiceType::kContentInspection: {
      for (const auto& detection : scanner_.scan(*packet, now)) {
        detected = true;
        detected_rule = detection.signature_id;
        detected_severity = detection.severity;
        EventMessage event;
        event.kind = config_.service == ServiceType::kVirusScan ? EventKind::kVirusFound
                                                                : EventKind::kContentViolation;
        event.rule_id = detection.signature_id;
        event.severity = detection.severity;
        event.flow = key;
        event.description = detection.family;
        queue_event(std::move(event));
      }
      break;
    }
    case ServiceType::kFirewall: {
      const fw::FwVerdict verdict = firewall_.filter(*packet);
      if (verdict.action == fw::FwAction::kDeny) {
        EventMessage event;
        event.kind = EventKind::kFirewallDenied;
        event.rule_id = verdict.rule_id;
        event.severity = 4;
        event.flow = key;
        event.description = "firewall rule " + std::to_string(verdict.rule_id);
        queue_event(std::move(event));
        note_verdict_progress(key, packet->payload_size(), true, verdict.rule_id, 4);
        return;  // denied: the packet is NOT reflected (dropped in the VM)
      }
      break;
    }
  }

  note_verdict_progress(key, packet->payload_size(), detected, detected_rule, detected_severity);

  // Bypass mode: reflect the packet back toward the AS switch unchanged; the
  // switch's return-path flow entry (paper §IV.A step iii) carries it on.
  send(0, std::move(packet));
}

void ServiceElement::note_verdict_progress(const pkt::FlowKey& key, std::size_t payload_bytes,
                                           bool detected, std::uint32_t rule_id,
                                           std::uint8_t severity) {
  if (config_.verdict_byte_budget == 0) return;
  const SimTime now = simulator().now();
  VerdictState& vs = verdicts_.touch(key, now);
  vs.inspected_bytes += payload_bytes;

  const auto queue_verdict = [&](FlowVerdict kind) {
    VerdictMessage v;
    v.verdict = kind;
    v.flow = key;
    v.inspected_bytes = vs.inspected_bytes;
    v.byte_budget = config_.verdict_byte_budget;
    v.rule_id = rule_id;
    v.severity = severity;
    batch_verdicts_.push_back(std::move(v));
  };

  if (detected) {
    vs.flagged = true;
    if (!vs.verdict_sent) {
      vs.verdict_sent = true;
      queue_verdict(FlowVerdict::kMalicious);
    }
    return;
  }
  if (vs.flagged || vs.verdict_sent) return;

  bool done = vs.inspected_bytes >= config_.verdict_byte_budget;
  switch (config_.service) {
    case ServiceType::kProtocolIdentification:
      // The classifier's verdict being final is what ends the inspection
      // need; undecided at the budget means it still wants early payload.
      if (l7_.decided(key)) {
        done = true;
      } else if (done) {
        if (!vs.progress_sent) {
          vs.progress_sent = true;
          queue_verdict(FlowVerdict::kKeepInspecting);
        }
        return;
      }
      break;
    case ServiceType::kFirewall:
      done = true;  // header-based decision: the first allowed packet settles it
      break;
    default:
      break;
  }
  if (!done) return;
  vs.verdict_sent = true;
  queue_verdict(FlowVerdict::kBenign);
}

void ServiceElement::send_heartbeat() {
  if (!running_) return;
  const SimTime now = simulator().now();

  // Idle streaming contexts decay on the heartbeat tick.
  ids_.contexts().sweep(now);
  l7_.contexts().sweep(now);
  scanner_.contexts().sweep(now);
  verdicts_.sweep(now);

  OnlineMessage online;
  online.service = config_.service;
  // CPU utilization approximated by pipeline occupancy over the last period:
  // the scheduled batch's remaining busy time plus the still-unscheduled
  // queue's service demand.
  const SimTime busy =
      (busy_until_ > now ? busy_until_ - now : 0) + pending_service_time_;
  const double occupancy =
      std::min(1.0, static_cast<double>(busy) / static_cast<double>(config_.heartbeat_interval));
  online.cpu_percent = static_cast<std::uint8_t>(occupancy * 100.0);
  online.memory_mb = config_.memory_mb;
  const SimTime elapsed = now - last_report_time_;
  if (elapsed > 0) {
    online.packets_per_second = static_cast<std::uint32_t>(
        static_cast<double>(processed_packets_ - last_report_packets_) / to_seconds(elapsed));
  }
  online.processed_packets_total = processed_packets_;
  online.processed_bytes_total = processed_bytes_;
  online.queued_packets = static_cast<std::uint32_t>(queued_packets_);
  online.capacity_bps = static_cast<std::uint64_t>(config_.processing_bps);
  online.flow_contexts = static_cast<std::uint32_t>(flow_contexts());
  online.context_evictions = context_evictions();
  online.batches_total = batches_total_;
  online.batch_packets_total = batch_packets_total_;
  online.batch_size_hist = batch_size_hist_;
  last_report_packets_ = processed_packets_;
  last_report_time_ = now;

  DaemonMessage message;
  message.se_id = config_.se_id;
  message.cert_token = config_.cert_token;
  message.body = online;
  send(0, wrap_daemon_message(message));

  const std::uint64_t epoch = heartbeat_epoch_;
  simulator().schedule(config_.heartbeat_interval, [this, epoch]() {
    if (running_ && heartbeat_epoch_ == epoch) send_heartbeat();
  });
}

void ServiceElement::queue_event(EventMessage event) {
  for (const EventMessage& queued : batch_events_) {
    if (queued.kind == event.kind && queued.rule_id == event.rule_id &&
        queued.flow == event.flow) {
      return;  // intra-batch duplicate
    }
  }
  batch_events_.push_back(std::move(event));
}

void ServiceElement::send_event(EventMessage event) {
  DaemonMessage message;
  message.se_id = config_.se_id;
  message.cert_token = config_.cert_token;
  message.body = std::move(event);
  ++events_sent_;
  send(0, wrap_daemon_message(message));
}

void ServiceElement::send_verdict(VerdictMessage verdict) {
  DaemonMessage message;
  message.se_id = config_.se_id;
  message.cert_token = config_.cert_token;
  message.body = std::move(verdict);
  ++verdicts_sent_;
  send(0, wrap_daemon_message(message));
}

pkt::PacketPtr ServiceElement::wrap_daemon_message(const DaemonMessage& message) const {
  return pkt::PacketBuilder()
      .eth(config_.mac, controller_service_mac())
      .ipv4(config_.ip, controller_service_ip(), pkt::IpProto::kUdp)
      .udp(kLiveSecPort, kLiveSecPort)
      .payload(pkt::make_payload(message.encode()))
      .finalize();
}

}  // namespace livesec::svc
