// The LiveSec service-element <-> controller communication mechanism
// (paper §III.D.1): specially formatted UDP datagrams that the AS switch
// always punts to the controller (no flow entry is ever installed for them).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/ip_address.h"
#include "common/mac_address.h"
#include "common/types.h"
#include "packet/flow_key.h"

namespace livesec::svc {

/// UDP destination port reserved for LiveSec daemon messages.
inline constexpr std::uint16_t kLiveSecPort = 50001;

/// Magic identifier at the start of every daemon message ("LVSC").
inline constexpr std::uint32_t kMessageMagic = 0x4C565343;

inline constexpr std::uint8_t kMessageVersion = 1;

/// Network services a VM-based service element can provide (paper §III.D:
/// "protocol identification, firewall, intrusion detection, virus scanning,
/// content inspection, and so on").
enum class ServiceType : std::uint8_t {
  kIntrusionDetection = 1,
  kProtocolIdentification = 2,
  kVirusScan = 3,
  kContentInspection = 4,
  kFirewall = 5,
};

const char* service_type_name(ServiceType type);

/// Real-time on-line message: confirms SE existence, declares the service
/// type, and attaches load information (paper: "CPU utility, memory
/// footprint and number of processed packets per second").
struct OnlineMessage {
  ServiceType service = ServiceType::kIntrusionDetection;
  std::uint8_t cpu_percent = 0;
  std::uint16_t memory_mb = 0;
  std::uint32_t packets_per_second = 0;
  std::uint64_t processed_packets_total = 0;
  std::uint64_t processed_bytes_total = 0;
  std::uint32_t queued_packets = 0;
  std::uint64_t capacity_bps = 0;
};

/// What an event report announces.
enum class EventKind : std::uint8_t {
  kAttackDetected = 1,
  kProtocolIdentified = 2,
  kVirusFound = 3,
  kContentViolation = 4,
  kFirewallDenied = 5,
};

const char* event_kind_name(EventKind kind);

/// Event report message: produced when the SE's network service yields a
/// result; carries the detected flow's identity so the controller can act on
/// the end-to-end flow (paper §IV.A: the "12-tuple information of the
/// detected flow and the corresponding attack type").
struct EventMessage {
  EventKind kind = EventKind::kAttackDetected;
  std::uint32_t rule_id = 0;   // IDS rule or protocol id
  std::uint8_t severity = 0;   // 0..10
  DatapathId observed_dpid = 0;
  PortId observed_port = kInvalidPort;
  pkt::FlowKey flow;           // the 9-tuple; with dpid+port = the 12-tuple
  std::string description;
};

/// Envelope common to both message types.
struct DaemonMessage {
  std::uint64_t se_id = 0;
  std::uint64_t cert_token = 0;  // issued by the controller (§III.D.1)
  std::variant<OnlineMessage, EventMessage> body;

  /// Serializes to the UDP payload byte format.
  std::vector<std::uint8_t> encode() const;

  /// Parses a UDP payload; nullopt when the magic/version/format is wrong
  /// (the controller's "message parsing module ... check[s] if the message
  /// identifier is legitimate").
  static std::optional<DaemonMessage> decode(std::span<const std::uint8_t> payload);
};

/// True when a packet looks like a LiveSec daemon message (UDP to the
/// reserved port). The controller still validates magic and certification.
bool is_daemon_packet(const pkt::Packet& packet);

}  // namespace livesec::svc
