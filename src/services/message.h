// The LiveSec service-element <-> controller communication mechanism
// (paper §III.D.1): specially formatted UDP datagrams that the AS switch
// always punts to the controller (no flow entry is ever installed for them).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/ip_address.h"
#include "common/mac_address.h"
#include "common/types.h"
#include "packet/flow_key.h"

namespace livesec::svc {

/// UDP destination port reserved for LiveSec daemon messages.
inline constexpr std::uint16_t kLiveSecPort = 50001;

/// Magic identifier at the start of every daemon message ("LVSC").
inline constexpr std::uint32_t kMessageMagic = 0x4C565343;

/// v2: ONLINE gained the service-chain fast-path load fields and the
/// per-flow VERDICT message type was added (both sides of the protocol live
/// in this repo, so the version is bumped in lockstep).
inline constexpr std::uint8_t kMessageVersion = 2;

/// Network services a VM-based service element can provide (paper §III.D:
/// "protocol identification, firewall, intrusion detection, virus scanning,
/// content inspection, and so on").
enum class ServiceType : std::uint8_t {
  kIntrusionDetection = 1,
  kProtocolIdentification = 2,
  kVirusScan = 3,
  kContentInspection = 4,
  kFirewall = 5,
};

const char* service_type_name(ServiceType type);

/// Real-time on-line message (wire type 1): confirms SE existence, declares
/// the service type, and attaches load information (paper: "CPU utility,
/// memory footprint and number of processed packets per second").
///
/// Wire layout after the common header (magic u32, version u8, type u8,
/// se_id u64, cert_token u64):
///   service u8, cpu_percent u8, memory_mb u16, packets_per_second u32,
///   processed_packets_total u64, processed_bytes_total u64,
///   queued_packets u32, capacity_bps u64,
///   flow_contexts u32, context_evictions u64,
///   batches_total u64, batch_packets_total u64, batch_size_hist 6 x u32.
struct OnlineMessage {
  ServiceType service = ServiceType::kIntrusionDetection;
  std::uint8_t cpu_percent = 0;
  std::uint16_t memory_mb = 0;
  std::uint32_t packets_per_second = 0;
  std::uint64_t processed_packets_total = 0;
  std::uint64_t processed_bytes_total = 0;
  std::uint32_t queued_packets = 0;
  std::uint64_t capacity_bps = 0;
  // v2 service-chain fast-path load: streaming-inspection context table
  // occupancy/evictions and batch-drain telemetry.
  std::uint32_t flow_contexts = 0;
  std::uint64_t context_evictions = 0;
  std::uint64_t batches_total = 0;
  std::uint64_t batch_packets_total = 0;
  /// log2 batch-size histogram: buckets 1, 2-3, 4-7, 8-15, 16-31, 32+.
  std::array<std::uint32_t, 6> batch_size_hist{};
};

/// What an event report announces.
enum class EventKind : std::uint8_t {
  kAttackDetected = 1,
  kProtocolIdentified = 2,
  kVirusFound = 3,
  kContentViolation = 4,
  kFirewallDenied = 5,
};

const char* event_kind_name(EventKind kind);

/// Event report message: produced when the SE's network service yields a
/// result; carries the detected flow's identity so the controller can act on
/// the end-to-end flow (paper §IV.A: the "12-tuple information of the
/// detected flow and the corresponding attack type").
struct EventMessage {
  EventKind kind = EventKind::kAttackDetected;
  std::uint32_t rule_id = 0;   // IDS rule or protocol id
  std::uint8_t severity = 0;   // 0..10
  DatapathId observed_dpid = 0;
  PortId observed_port = kInvalidPort;
  pkt::FlowKey flow;           // the 9-tuple; with dpid+port = the 12-tuple
  std::string description;
};

/// What a VERDICT message concludes about one flow.
enum class FlowVerdict : std::uint8_t {
  kBenign = 1,          ///< budget inspected clean: eligible for cut-through
  kMalicious = 2,       ///< detection fired: block the flow at its ingress
  kKeepInspecting = 3,  ///< budget reached but the engine still wants payload
};

const char* flow_verdict_name(FlowVerdict verdict);

/// VERDICT message (wire type 3, v2): the SE's per-flow conclusion, sent at
/// most once per steered flow direction once the configured inspected-byte
/// budget is reached (benign), a detection fires (malicious), or the engine
/// is still undecided at the budget (keep-inspecting). A benign verdict lets
/// the controller rewrite the redirect chain into a direct path — the
/// interactive-enforcement cut-through of paper §IV.A; a malicious verdict
/// triggers the same ingress block as the corresponding EVENT.
///
/// Wire layout after the common header (magic u32, version u8, type u8,
/// se_id u64, cert_token u64):
///   verdict          u8   (FlowVerdict)
///   flow             FlowKey::encode — as observed at the SE, i.e. with
///                    dl_dst rewritten to the SE MAC; the controller maps it
///                    back through its steered-flow index
///   inspected_bytes  u64  payload bytes inspected when the verdict fired
///   byte_budget      u64  the SE's configured benign budget
///   rule_id          u32  triggering rule/signature id (malicious only)
///   severity         u8
struct VerdictMessage {
  FlowVerdict verdict = FlowVerdict::kKeepInspecting;
  pkt::FlowKey flow;
  std::uint64_t inspected_bytes = 0;
  std::uint64_t byte_budget = 0;
  std::uint32_t rule_id = 0;
  std::uint8_t severity = 0;
};

/// Envelope common to all message types.
struct DaemonMessage {
  std::uint64_t se_id = 0;
  std::uint64_t cert_token = 0;  // issued by the controller (§III.D.1)
  std::variant<OnlineMessage, EventMessage, VerdictMessage> body;

  /// Serializes to the UDP payload byte format.
  std::vector<std::uint8_t> encode() const;

  /// Parses a UDP payload; nullopt when the magic/version/format is wrong
  /// (the controller's "message parsing module ... check[s] if the message
  /// identifier is legitimate").
  static std::optional<DaemonMessage> decode(std::span<const std::uint8_t> payload);
};

/// True when a packet looks like a LiveSec daemon message (UDP to the
/// reserved port). The controller still validates magic and certification.
bool is_daemon_packet(const pkt::Packet& packet);

}  // namespace livesec::svc
