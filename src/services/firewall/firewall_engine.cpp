#include "services/firewall/firewall_engine.h"

#include <charconv>
#include <sstream>

namespace livesec::svc::fw {

const char* fw_action_name(FwAction action) {
  return action == FwAction::kAllow ? "allow" : "deny";
}

bool FwRule::matches(const pkt::FlowKey& key) const {
  if (src_ip && !src_ip->same_subnet(key.nw_src, src_prefix)) return false;
  if (dst_ip && !dst_ip->same_subnet(key.nw_dst, dst_prefix)) return false;
  if (proto && *proto != key.nw_proto) return false;
  if (dst_port && *dst_port != key.tp_dst) return false;
  return true;
}

FirewallEngine::FirewallEngine(std::vector<FwRule> rules, FwAction default_action, bool stateful)
    : rules_(std::move(rules)), default_action_(default_action), stateful_(stateful) {}

pkt::FlowKey FirewallEngine::session_key(const pkt::FlowKey& key) {
  pkt::FlowKey normalized = key;
  normalized.dl_src = MacAddress();
  normalized.dl_dst = MacAddress();
  normalized.vlan_id = pkt::kVlanNone;
  return normalized;
}

FwVerdict FirewallEngine::filter(const pkt::Packet& packet) {
  const pkt::FlowKey key = pkt::FlowKey::from_packet(packet);
  const pkt::FlowKey session = session_key(key);

  if (stateful_) {
    // Reply direction of an established session: allowed without rules.
    if (established_.contains(session.reversed())) {
      ++allowed_;
      return FwVerdict{FwAction::kAllow, 0, true};
    }
  }

  for (const FwRule& rule : rules_) {
    if (!rule.matches(key)) continue;
    if (rule.action == FwAction::kAllow) {
      ++allowed_;
      if (stateful_) established_.insert(session);
      return FwVerdict{FwAction::kAllow, rule.id, false};
    }
    ++denied_;
    return FwVerdict{FwAction::kDeny, rule.id, false};
  }

  if (default_action_ == FwAction::kAllow) {
    ++allowed_;
    if (stateful_) established_.insert(session);
    return FwVerdict{FwAction::kAllow, 0, false};
  }
  ++denied_;
  return FwVerdict{FwAction::kDeny, 0, false};
}

void FirewallEngine::forget_session(const pkt::FlowKey& flow) {
  const pkt::FlowKey session = session_key(flow);
  established_.erase(session);
  established_.erase(session.reversed());
}

std::vector<FwRule> parse_fw_rules(std::string_view text, std::vector<std::string>& errors) {
  std::vector<FwRule> rules;
  std::istringstream lines{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    FwRule rule;
    std::string action;
    if (!(fields >> rule.id)) continue;  // blank
    auto fail = [&](const std::string& why) {
      errors.push_back("line " + std::to_string(line_no) + ": " + why);
    };
    if (!(fields >> rule.name >> action)) {
      fail("expected '<id> <name> <action> ...'");
      continue;
    }
    if (action == "allow") {
      rule.action = FwAction::kAllow;
    } else if (action == "deny") {
      rule.action = FwAction::kDeny;
    } else {
      fail("unknown action '" + action + "'");
      continue;
    }
    bool ok = true;
    std::string token;
    auto parse_cidr = [&](const std::string& value, std::optional<Ipv4Address>& ip,
                          std::uint8_t& prefix) {
      std::string_view view = value;
      prefix = 32;
      if (const auto slash = view.find('/'); slash != std::string_view::npos) {
        unsigned bits = 0;
        const auto tail = view.substr(slash + 1);
        const auto [p, ec] = std::from_chars(tail.data(), tail.data() + tail.size(), bits);
        if (ec != std::errc() || p != tail.data() + tail.size() || bits > 32) return false;
        prefix = static_cast<std::uint8_t>(bits);
        view = view.substr(0, slash);
      }
      const auto parsed = Ipv4Address::parse(view);
      if (!parsed) return false;
      ip = *parsed;
      return true;
    };
    while (ok && fields >> token) {
      const auto eq = token.find('=');
      if (eq == std::string::npos) {
        fail("expected key=value, got '" + token + "'");
        ok = false;
        break;
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "src") {
        if (!parse_cidr(value, rule.src_ip, rule.src_prefix)) {
          fail("bad src '" + value + "'");
          ok = false;
        }
      } else if (key == "dst") {
        if (!parse_cidr(value, rule.dst_ip, rule.dst_prefix)) {
          fail("bad dst '" + value + "'");
          ok = false;
        }
      } else if (key == "proto") {
        if (value == "tcp") {
          rule.proto = 6;
        } else if (value == "udp") {
          rule.proto = 17;
        } else if (value == "icmp") {
          rule.proto = 1;
        } else {
          unsigned num = 0;
          const auto [p, ec] = std::from_chars(value.data(), value.data() + value.size(), num);
          if (ec != std::errc() || p != value.data() + value.size() || num > 255) {
            fail("bad proto '" + value + "'");
            ok = false;
          } else {
            rule.proto = static_cast<std::uint8_t>(num);
          }
        }
      } else if (key == "dport") {
        unsigned port = 0;
        const auto [p, ec] = std::from_chars(value.data(), value.data() + value.size(), port);
        if (ec != std::errc() || p != value.data() + value.size() || port > 65535) {
          fail("bad dport '" + value + "'");
          ok = false;
        } else {
          rule.dst_port = static_cast<std::uint16_t>(port);
        }
      } else {
        fail("unknown key '" + key + "'");
        ok = false;
      }
    }
    if (ok) rules.push_back(std::move(rule));
  }
  return rules;
}

}  // namespace livesec::svc::fw
