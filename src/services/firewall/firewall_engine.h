// Stateful firewall engine for firewall-type service elements (paper §III.D
// lists "firewall" among the services an SE can provide).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "packet/flow_key.h"

namespace livesec::svc::fw {

enum class FwAction : std::uint8_t { kAllow = 0, kDeny = 1 };

const char* fw_action_name(FwAction action);

/// One filter rule; absent predicates match anything, first match wins.
struct FwRule {
  std::uint32_t id = 0;
  std::string name;
  FwAction action = FwAction::kDeny;
  std::optional<Ipv4Address> src_ip;
  std::uint8_t src_prefix = 32;
  std::optional<Ipv4Address> dst_ip;
  std::uint8_t dst_prefix = 32;
  std::optional<std::uint8_t> proto;
  std::optional<std::uint16_t> dst_port;

  bool matches(const pkt::FlowKey& key) const;
};

/// Verdict with attribution (which rule decided, or state/default).
struct FwVerdict {
  FwAction action = FwAction::kAllow;
  std::uint32_t rule_id = 0;      // 0 = stateful match or default policy
  bool by_state = false;          // true: allowed as reply of an established flow
};

/// First-match packet filter with optional connection tracking: a flow
/// allowed by the ruleset establishes a session, and reply-direction packets
/// of an established session are allowed without consulting the rules —
/// standard "established/related" semantics.
class FirewallEngine {
 public:
  FirewallEngine(std::vector<FwRule> rules, FwAction default_action = FwAction::kAllow,
                 bool stateful = true);

  FwVerdict filter(const pkt::Packet& packet);

  /// Drops a tracked session (e.g. after FIN/RST or idle timeout).
  void forget_session(const pkt::FlowKey& flow);

  std::size_t rule_count() const { return rules_.size(); }
  std::size_t established_sessions() const { return established_.size(); }
  std::uint64_t allowed() const { return allowed_; }
  std::uint64_t denied() const { return denied_; }

 private:
  /// Connection tracking key: the L3/L4 5-tuple only (MACs and VLAN zeroed)
  /// — sessions survive L2 rewrites, as in a real conntrack table.
  static pkt::FlowKey session_key(const pkt::FlowKey& key);

  std::vector<FwRule> rules_;
  FwAction default_action_;
  bool stateful_;
  /// Forward session keys of allowed flows; replies matched via reversed().
  std::unordered_set<pkt::FlowKey> established_;
  std::uint64_t allowed_ = 0;
  std::uint64_t denied_ = 0;
};

/// Parses textual firewall rules, one per line:
///   <id> <name> <allow|deny> [src=CIDR] [dst=CIDR] [proto=tcp|udp|icmp|N] [dport=N]
/// '#' comments and blank lines are skipped; bad lines land in `errors`.
std::vector<FwRule> parse_fw_rules(std::string_view text, std::vector<std::string>& errors);

}  // namespace livesec::svc::fw
