#include "services/scanner/virus_scanner.h"

namespace livesec::svc::scanner {

const std::vector<VirusSignature>& default_virus_signatures() {
  static const std::vector<VirusSignature> kSignatures = {
      {1, "EICAR-Test-File", "X5O!P%@AP[4\\PZX54(P^)7CC)7}$EICAR-STANDARD-ANTIVIRUS-TEST-FILE!",
       10},
      {2, "Synthetic.Worm.A", "WORM_A_PAYLOAD_MARKER_0xDEADBEEF", 9},
      {3, "Synthetic.Trojan.B", "TROJAN_B_STAGE2_LOADER", 9},
      {4, "Synthetic.Ransom.C", "YOUR_FILES_ARE_ENCRYPTED_PAY_NOW", 10},
      {5, "Synthetic.Miner.D", "stratum+tcp://pool.synthetic.example", 6},
  };
  return kSignatures;
}

VirusScanner::VirusScanner() : VirusScanner(default_virus_signatures()) {}

VirusScanner::VirusScanner(std::vector<VirusSignature> signatures)
    : signatures_(std::move(signatures)) {
  for (const auto& sig : signatures_) automaton_.add_pattern(sig.pattern);
  automaton_.build();
}

std::vector<VirusScanner::Detection> VirusScanner::scan(const pkt::Packet& packet) {
  ++packets_scanned_;
  std::vector<Detection> detections;
  if (packet.payload_size() == 0) return detections;

  std::vector<ids::AhoCorasick::Hit> hits;
  automaton_.scan(packet.payload_view(), hits);
  for (const auto& hit : hits) {
    const VirusSignature& sig = signatures_[hit.pattern_id];
    detections.push_back(Detection{sig.id, sig.family, sig.severity});
    ++detections_total_;
  }
  return detections;
}

}  // namespace livesec::svc::scanner
