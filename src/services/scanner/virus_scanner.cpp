#include "services/scanner/virus_scanner.h"

#include <algorithm>

namespace livesec::svc::scanner {

const std::vector<VirusSignature>& default_virus_signatures() {
  static const std::vector<VirusSignature> kSignatures = {
      {1, "EICAR-Test-File", "X5O!P%@AP[4\\PZX54(P^)7CC)7}$EICAR-STANDARD-ANTIVIRUS-TEST-FILE!",
       10},
      {2, "Synthetic.Worm.A", "WORM_A_PAYLOAD_MARKER_0xDEADBEEF", 9},
      {3, "Synthetic.Trojan.B", "TROJAN_B_STAGE2_LOADER", 9},
      {4, "Synthetic.Ransom.C", "YOUR_FILES_ARE_ENCRYPTED_PAY_NOW", 10},
      {5, "Synthetic.Miner.D", "stratum+tcp://pool.synthetic.example", 6},
  };
  return kSignatures;
}

VirusScanner::VirusScanner() : VirusScanner(default_virus_signatures()) {}

VirusScanner::VirusScanner(std::vector<VirusSignature> signatures)
    : signatures_(std::move(signatures)) {
  for (const auto& sig : signatures_) automaton_.add_pattern(sig.pattern);
  automaton_.build();
}

std::vector<VirusScanner::Detection> VirusScanner::scan(const pkt::Packet& packet, SimTime now) {
  ++packets_scanned_;
  std::vector<Detection> detections;
  if (packet.payload_size() == 0) return detections;

  FlowState& state = flows_.touch(pkt::FlowKey::from_packet(packet), now);
  hit_scratch_.clear();
  automaton_.scan_stream(packet.payload_view(), state.ac_state, hit_scratch_);
  for (const auto& hit : hit_scratch_) {
    const VirusSignature& sig = signatures_[hit.pattern_id];
    if (std::find(state.reported.begin(), state.reported.end(), sig.id) !=
        state.reported.end()) {
      continue;  // one report per signature per flow
    }
    state.reported.push_back(sig.id);
    detections.push_back(Detection{sig.id, sig.family, sig.severity});
    ++detections_total_;
  }
  state.stream_bytes += packet.payload_size();
  return detections;
}

}  // namespace livesec::svc::scanner
