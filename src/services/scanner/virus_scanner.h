// Virus-scanning / content-inspection engine (paper §III.D lists "virus
// scanning, content inspection" among the services a SE can provide).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "packet/packet.h"
#include "services/flow_context.h"
#include "services/ids/aho_corasick.h"

namespace livesec::svc::scanner {

/// A content signature: malware family name + byte pattern.
struct VirusSignature {
  std::uint32_t id = 0;
  std::string family;
  std::string pattern;
  std::uint8_t severity = 10;
};

/// Built-in signature set (EICAR plus synthetic families exercised by the
/// failure-injection tests).
const std::vector<VirusSignature>& default_virus_signatures();

/// Streaming per-flow scanner: payload bytes run through one Aho-Corasick
/// pass with the automaton state carried across packets of a flow, so a
/// content marker split across a packet boundary is still found (a per-packet
/// rescan from the automaton root misses it). Each signature is reported at
/// most once per flow. Per-flow state lives in a bounded FlowContextTable
/// (LRU + idle timeout); an evicted flow restarts from the root.
class VirusScanner {
 public:
  struct Detection {
    std::uint32_t signature_id;
    std::string family;
    std::uint8_t severity;
  };

  /// Streaming state for one flow.
  struct FlowState {
    std::uint32_t ac_state = 0;            // automaton state across packets
    std::uint64_t stream_bytes = 0;        // payload bytes scanned so far
    std::vector<std::uint32_t> reported;   // signature ids already reported
  };

  VirusScanner();
  explicit VirusScanner(std::vector<VirusSignature> signatures);

  /// Scans one packet's payload in its flow's streaming context; returns the
  /// signatures newly detected by this packet. `now` drives LRU/idle
  /// bookkeeping of the context table.
  std::vector<Detection> scan(const pkt::Packet& packet, SimTime now = 0);

  /// Drops per-flow streaming state (e.g. on idle timeout).
  void forget_flow(const pkt::FlowKey& flow) { flows_.erase(flow); }

  FlowContextTable<FlowState>& contexts() { return flows_; }
  const FlowContextTable<FlowState>& contexts() const { return flows_; }

  std::size_t signature_count() const { return signatures_.size(); }
  std::uint64_t packets_scanned() const { return packets_scanned_; }
  std::uint64_t detections_total() const { return detections_total_; }

 private:
  std::vector<VirusSignature> signatures_;
  ids::AhoCorasick automaton_;
  FlowContextTable<FlowState> flows_;
  std::vector<ids::AhoCorasick::Hit> hit_scratch_;
  std::uint64_t packets_scanned_ = 0;
  std::uint64_t detections_total_ = 0;
};

}  // namespace livesec::svc::scanner
