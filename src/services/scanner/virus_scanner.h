// Virus-scanning / content-inspection engine (paper §III.D lists "virus
// scanning, content inspection" among the services a SE can provide).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "packet/packet.h"
#include "services/ids/aho_corasick.h"

namespace livesec::svc::scanner {

/// A content signature: malware family name + byte pattern.
struct VirusSignature {
  std::uint32_t id = 0;
  std::string family;
  std::string pattern;
  std::uint8_t severity = 10;
};

/// Built-in signature set (EICAR plus synthetic families exercised by the
/// failure-injection tests).
const std::vector<VirusSignature>& default_virus_signatures();

/// Stateless per-packet scanner: payload bytes against all signatures in one
/// Aho-Corasick pass. Unlike the IDS it does not track flow state — file
/// content markers are self-contained.
class VirusScanner {
 public:
  struct Detection {
    std::uint32_t signature_id;
    std::string family;
    std::uint8_t severity;
  };

  VirusScanner();
  explicit VirusScanner(std::vector<VirusSignature> signatures);

  /// Scans one packet's payload; returns all detections.
  std::vector<Detection> scan(const pkt::Packet& packet);

  std::size_t signature_count() const { return signatures_.size(); }
  std::uint64_t packets_scanned() const { return packets_scanned_; }
  std::uint64_t detections_total() const { return detections_total_; }

 private:
  std::vector<VirusSignature> signatures_;
  ids::AhoCorasick automaton_;
  std::uint64_t packets_scanned_ = 0;
  std::uint64_t detections_total_ = 0;
};

}  // namespace livesec::svc::scanner
