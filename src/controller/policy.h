// The global policy table (paper §IV.A: "The LiveSec controller keeps a
// global policy table that is pre-configured and managed by the network
// administrator. The policy table describes whether or which security
// service element should be traversed for various end-to-end flows.").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ip_address.h"
#include "common/mac_address.h"
#include "packet/flow_key.h"
#include "services/message.h"

namespace livesec::ctrl {

/// What to do with a matching flow.
enum class PolicyAction : std::uint8_t {
  kAllow,     // forward directly (two-hop abstract routing)
  kDeny,      // install a drop entry at the ingress
  kRedirect,  // steer through the service chain, then forward
};

const char* policy_action_name(PolicyAction action);

/// Load-balancing granularity for redirect policies (paper §IV.B: flow-grain
/// vs user-grain).
enum class LbGranularity : std::uint8_t { kPerFlow, kPerUser };

/// One administrator policy. All present predicates must hold (logical AND);
/// absent predicates match anything.
struct Policy {
  std::uint32_t id = 0;
  std::string name;
  /// Higher wins; ties broken by insertion order.
  std::int32_t priority = 0;

  // Predicates over the flow's 9-tuple.
  std::optional<MacAddress> src_mac;
  std::optional<MacAddress> dst_mac;
  std::optional<Ipv4Address> nw_src;
  std::optional<std::uint8_t> nw_src_prefix;  // with nw_src; default 32
  std::optional<Ipv4Address> nw_dst;
  std::optional<std::uint8_t> nw_dst_prefix;
  std::optional<std::uint8_t> nw_proto;
  std::optional<std::uint16_t> tp_dst;
  std::optional<std::uint16_t> vlan_id;

  PolicyAction action = PolicyAction::kAllow;
  /// Service types the flow must traverse, in order (redirect only).
  std::vector<svc::ServiceType> service_chain;
  LbGranularity granularity = LbGranularity::kPerFlow;

  bool matches(const pkt::FlowKey& key) const;
  std::string to_string() const;
};

/// Ordered policy collection with priority lookup.
class PolicyTable {
 public:
  /// The action applied when no policy matches.
  explicit PolicyTable(PolicyAction default_action = PolicyAction::kAllow)
      : default_action_(default_action) {}

  /// Adds a policy; id 0 gets an auto-assigned id. Returns the id.
  std::uint32_t add(Policy policy);
  bool remove(std::uint32_t id);
  const Policy* find(std::uint32_t id) const;

  /// The winning policy for a flow, or nullptr (=> default action).
  const Policy* lookup(const pkt::FlowKey& key) const;

  PolicyAction default_action() const { return default_action_; }
  void set_default_action(PolicyAction action) { default_action_ = action; }

  std::size_t size() const { return policies_.size(); }
  const std::vector<Policy>& policies() const { return policies_; }

 private:
  PolicyAction default_action_;
  std::uint32_t next_id_ = 1;
  std::vector<Policy> policies_;  // kept sorted by (priority desc, insertion asc)
};

}  // namespace livesec::ctrl
