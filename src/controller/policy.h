// The global policy table (paper §IV.A: "The LiveSec controller keeps a
// global policy table that is pre-configured and managed by the network
// administrator. The policy table describes whether or which security
// service element should be traversed for various end-to-end flows.").
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/ip_address.h"
#include "common/mac_address.h"
#include "packet/flow_key.h"
#include "services/message.h"

namespace livesec::ctrl {

/// What to do with a matching flow.
enum class PolicyAction : std::uint8_t {
  kAllow,     // forward directly (two-hop abstract routing)
  kDeny,      // install a drop entry at the ingress
  kRedirect,  // steer through the service chain, then forward
};

const char* policy_action_name(PolicyAction action);

/// Load-balancing granularity for redirect policies (paper §IV.B: flow-grain
/// vs user-grain).
enum class LbGranularity : std::uint8_t { kPerFlow, kPerUser };

/// One administrator policy. All present predicates must hold (logical AND);
/// absent predicates match anything.
struct Policy {
  std::uint32_t id = 0;
  std::string name;
  /// Higher wins; ties broken by insertion order.
  std::int32_t priority = 0;

  // Predicates over the flow's 9-tuple.
  std::optional<MacAddress> src_mac;
  std::optional<MacAddress> dst_mac;
  std::optional<Ipv4Address> nw_src;
  std::optional<std::uint8_t> nw_src_prefix;  // with nw_src; default 32
  std::optional<Ipv4Address> nw_dst;
  std::optional<std::uint8_t> nw_dst_prefix;
  std::optional<std::uint8_t> nw_proto;
  std::optional<std::uint16_t> tp_dst;
  std::optional<std::uint16_t> vlan_id;

  PolicyAction action = PolicyAction::kAllow;
  /// Service types the flow must traverse, in order (redirect only).
  std::vector<svc::ServiceType> service_chain;
  LbGranularity granularity = LbGranularity::kPerFlow;

  bool matches(const pkt::FlowKey& key) const;
  std::string to_string() const;
};

/// Ordered policy collection with priority lookup.
///
/// Lookup mirrors the switch-side flow table's two-tier design: policies
/// whose MAC predicates fully pin them to a (src, dst) host pair — or to a
/// (src, destination port) service — live in exact-match hash tiers, and only
/// the remaining wildcard policies are scanned linearly. Every list stores
/// rank-ordered positions in the priority-sorted vector, so taking the
/// minimum rank across the candidate lists reproduces first-match-by-priority
/// exactly (property-tested against the linear scan in
/// tests/test_policy_index_property.cpp).
class PolicyTable {
 public:
  /// The action applied when no policy matches.
  explicit PolicyTable(PolicyAction default_action = PolicyAction::kAllow)
      : default_action_(default_action) {}

  /// Adds a policy; id 0 gets an auto-assigned id. Returns the id.
  std::uint32_t add(Policy policy);
  bool remove(std::uint32_t id);

  /// O(1) id lookup. The returned pointer is invalidated by the next add()
  /// or remove() — both reorder the underlying vector. Copy the policy out
  /// before mutating the table.
  const Policy* find(std::uint32_t id) const;

  /// The winning policy for a flow, or nullptr (=> default action).
  const Policy* lookup(const pkt::FlowKey& key) const;

  PolicyAction default_action() const { return default_action_; }
  void set_default_action(PolicyAction action) {
    default_action_ = action;
    ++version_;
    if (observer_) observer_(PolicyMutation{PolicyMutation::Kind::kDefaultAction, nullptr, 0, action});
  }

  /// One table mutation, reported to the observer after it is applied. The
  /// `policy` pointer is only valid for the duration of the callback.
  struct PolicyMutation {
    enum class Kind : std::uint8_t { kAdded, kRemoved, kDefaultAction };
    Kind kind = Kind::kAdded;
    const Policy* policy = nullptr;       // kAdded
    std::uint32_t id = 0;                 // kRemoved
    PolicyAction action = PolicyAction::kAllow;  // kDefaultAction
  };

  /// Installs the (single) mutation observer. HA replication uses this to
  /// mirror administrator policy pushes to standby controllers.
  void set_mutation_observer(std::function<void(const PolicyMutation&)> observer) {
    observer_ = std::move(observer);
  }

  /// Bumped on every mutation (add/remove/set_default_action). Decision
  /// caches compare this to detect that their memoized lookups went stale.
  std::uint64_t version() const { return version_; }

  std::size_t size() const { return policies_.size(); }
  const std::vector<Policy>& policies() const { return policies_; }

 private:
  /// Hash key of the (src MAC, dst MAC) exact tier.
  struct MacPairKey {
    MacAddress src;
    MacAddress dst;
    bool operator==(const MacPairKey&) const = default;
  };
  struct MacPairHash {
    std::size_t operator()(const MacPairKey& k) const noexcept {
      return static_cast<std::size_t>(
          hash_combine(std::hash<MacAddress>{}(k.src), std::hash<MacAddress>{}(k.dst)));
    }
  };
  /// Hash key of the (src MAC, tp_dst) exact tier.
  struct MacPortKey {
    MacAddress src;
    std::uint16_t tp_dst = 0;
    bool operator==(const MacPortKey&) const = default;
  };
  struct MacPortHash {
    std::size_t operator()(const MacPortKey& k) const noexcept {
      return static_cast<std::size_t>(hash_combine(std::hash<MacAddress>{}(k.src), k.tp_dst));
    }
  };

  /// Rebuilds every index from policies_. Deferred: mutations only mark the
  /// indexes dirty, and the first lookup/find after a mutation burst pays one
  /// O(n) rebuild instead of one per add (policy pushes arrive in batches).
  void reindex() const;
  void ensure_index() const {
    if (index_dirty_) reindex();
  }

  PolicyAction default_action_;
  std::uint32_t next_id_ = 1;
  std::uint64_t version_ = 0;
  std::function<void(const PolicyMutation&)> observer_;
  std::vector<Policy> policies_;  // kept sorted by (priority desc, insertion asc)

  // The indexes are a cache over policies_, rebuilt lazily from const
  // accessors, hence mutable.
  mutable bool index_dirty_ = false;
  mutable std::unordered_map<std::uint32_t, std::size_t> by_id_;
  /// Exact tiers and the wildcard fallback: ascending positions (= ranks)
  /// into policies_. A policy lives in exactly one of the three.
  mutable std::unordered_map<MacPairKey, std::vector<std::size_t>, MacPairHash> mac_pair_tier_;
  mutable std::unordered_map<MacPortKey, std::vector<std::size_t>, MacPortHash> mac_port_tier_;
  mutable std::vector<std::size_t> wildcard_ranks_;
};

}  // namespace livesec::ctrl
