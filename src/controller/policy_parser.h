// Textual policy configuration: the administrator-facing format behind the
// paper's "global policy table that is pre-configured and managed by the
// network administrator" (§IV.A).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "controller/policy.h"

namespace livesec::ctrl {

/// Parses a policy configuration document, one policy per line:
///
///   <name> <priority> <action> [<predicate-or-option> ...]
///
/// actions:    allow | deny | redirect
/// predicates: src_mac=aa:bb:cc:dd:ee:ff   dst_mac=...
///             src_ip=10.0.0.0/24          dst_ip=10.1.2.3
///             proto=tcp|udp|icmp|<num>    dport=80     vlan=42
/// options:    chain=ids,l7,scan,content,firewall   (redirect only)
///             granularity=flow|user
///
/// '#' starts a comment; blank lines are skipped. Malformed lines are
/// reported in `errors` and skipped. Example:
///
///   web-via-ids 10 redirect proto=tcp dport=80 chain=ids granularity=flow
///   quarantine  90 deny     src_mac=02:00:00:00:00:05
std::vector<Policy> parse_policies(std::string_view text, std::vector<std::string>& errors);

/// Renders a policy back into the textual format (round-trips with
/// parse_policies for every supported field).
std::string format_policy(const Policy& policy);

}  // namespace livesec::ctrl
