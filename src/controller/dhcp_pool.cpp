#include "controller/dhcp_pool.h"

namespace livesec::ctrl {

DhcpPool::DhcpPool(Ipv4Address base, std::uint32_t size, SimTime lease_duration)
    : base_(base), size_(size), lease_duration_(lease_duration) {}

std::optional<Ipv4Address> DhcpPool::allocate(const MacAddress& mac, SimTime now) {
  if (auto it = leases_.find(mac); it != leases_.end()) {
    it->second.expires = now + lease_duration_;  // renewal keeps the address
    return it->second.ip;
  }
  expire(now);
  // Scan from the cursor for a free address (wraps once).
  for (std::uint32_t i = 0; i < size_; ++i) {
    const std::uint32_t offset = (next_offset_ + i) % size_;
    const Ipv4Address candidate(base_.value() + offset);
    if (!by_ip_.contains(candidate)) {
      next_offset_ = (offset + 1) % size_;
      leases_[mac] = Lease{candidate, now + lease_duration_};
      by_ip_[candidate] = mac;
      return candidate;
    }
  }
  return std::nullopt;
}

std::optional<Ipv4Address> DhcpPool::lookup(const MacAddress& mac, SimTime now) const {
  auto it = leases_.find(mac);
  if (it == leases_.end() || it->second.expires <= now) return std::nullopt;
  return it->second.ip;
}

void DhcpPool::release(const MacAddress& mac) {
  auto it = leases_.find(mac);
  if (it == leases_.end()) return;
  by_ip_.erase(it->second.ip);
  leases_.erase(it);
}

std::vector<std::pair<MacAddress, Ipv4Address>> DhcpPool::expire(SimTime now) {
  std::vector<std::pair<MacAddress, Ipv4Address>> reclaimed;
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.expires <= now) {
      reclaimed.emplace_back(it->first, it->second.ip);
      by_ip_.erase(it->second.ip);
      it = leases_.erase(it);
    } else {
      ++it;
    }
  }
  return reclaimed;
}

void DhcpPool::restore(const MacAddress& mac, Ipv4Address ip, SimTime expires) {
  // Drop any conflicting bindings first: the replicated record is the truth.
  if (auto holder = by_ip_.find(ip); holder != by_ip_.end() && holder->second != mac) {
    leases_.erase(holder->second);
    by_ip_.erase(holder);
  }
  if (auto old = leases_.find(mac); old != leases_.end() && old->second.ip != ip) {
    by_ip_.erase(old->second.ip);
  }
  leases_[mac] = Lease{ip, expires};
  by_ip_[ip] = mac;
}

SimTime DhcpPool::lease_expiry(const MacAddress& mac) const {
  auto it = leases_.find(mac);
  return it == leases_.end() ? 0 : it->second.expires;
}

}  // namespace livesec::ctrl
