#include "controller/load_balancer.h"

#include "common/hash.h"

namespace livesec::ctrl {

const char* lb_strategy_name(LbStrategy strategy) {
  switch (strategy) {
    case LbStrategy::kPolling: return "polling";
    case LbStrategy::kHash: return "hash";
    case LbStrategy::kQueuing: return "queuing";
    case LbStrategy::kMinLoad: return "min_load";
    case LbStrategy::kWeightedMinLoad: return "weighted_min_load";
  }
  return "?";
}

std::optional<std::uint64_t> LoadBalancer::assign(ServiceRegistry& registry,
                                                  svc::ServiceType service,
                                                  const pkt::FlowKey& flow,
                                                  LbGranularity granularity) {
  const std::uint8_t svc_key = static_cast<std::uint8_t>(service);

  // Sticky pin lookup first: a pinned flow/user keeps its SE while alive.
  if (granularity == LbGranularity::kPerUser) {
    auto it = user_pins_.find({svc_key, flow.dl_src});
    if (it != user_pins_.end()) {
      if (registry.find(it->second) != nullptr) {
        registry.note_assignment(it->second);
        ++counts_[it->second];
        return it->second;
      }
      user_pins_.erase(it);
    }
  } else {
    auto it = flow_pins_.find({svc_key, flow});
    if (it != flow_pins_.end()) {
      if (registry.find(it->second) != nullptr) {
        // Same flow re-queried (e.g. reverse direction install): no second
        // assignment accounting.
        return it->second;
      }
      flow_pins_.erase(it);
    }
  }

  auto chosen = choose(registry, service, flow, granularity);
  if (!chosen) return std::nullopt;

  registry.note_assignment(*chosen);
  ++counts_[*chosen];
  if (granularity == LbGranularity::kPerUser) {
    user_pins_[{svc_key, flow.dl_src}] = *chosen;
  } else {
    flow_pins_[{svc_key, flow}] = *chosen;
  }
  return chosen;
}

std::optional<std::uint64_t> LoadBalancer::choose(ServiceRegistry& registry,
                                                  svc::ServiceType service,
                                                  const pkt::FlowKey& flow,
                                                  LbGranularity granularity) {
  const std::vector<const SeRecord*> pool = registry.pool(service);
  if (pool.empty()) return std::nullopt;

  switch (strategy_) {
    case LbStrategy::kPolling: {
      std::size_t& cursor = rr_cursor_[static_cast<std::uint8_t>(service)];
      const SeRecord* pick = pool[cursor % pool.size()];
      ++cursor;
      return pick->se_id;
    }
    case LbStrategy::kHash: {
      const std::uint64_t h = granularity == LbGranularity::kPerUser
                                  ? splitmix64(flow.dl_src.to_uint64())
                                  : flow.hash();
      return pool[h % pool.size()]->se_id;
    }
    case LbStrategy::kQueuing: {
      const SeRecord* best = pool.front();
      for (const SeRecord* candidate : pool) {
        const auto queue_of = [](const SeRecord* r) {
          return r->last_report.queued_packets + r->assigned_since_report;
        };
        if (queue_of(candidate) < queue_of(best)) best = candidate;
      }
      return best->se_id;
    }
    case LbStrategy::kMinLoad: {
      const SeRecord* best = pool.front();
      for (const SeRecord* candidate : pool) {
        if (candidate->load_estimate() < best->load_estimate()) best = candidate;
      }
      return best->se_id;
    }
    case LbStrategy::kWeightedMinLoad: {
      // Normalize the load estimate by the SE's self-reported capacity so
      // heterogeneous pools converge to equal *utilization*, not counts.
      auto utilization = [](const SeRecord* r) {
        const double capacity =
            r->last_report.capacity_bps > 0 ? static_cast<double>(r->last_report.capacity_bps)
                                            : 1.0;
        return r->load_estimate() / capacity;
      };
      const SeRecord* best = pool.front();
      for (const SeRecord* candidate : pool) {
        if (utilization(candidate) < utilization(best)) best = candidate;
      }
      return best->se_id;
    }
  }
  return std::nullopt;
}

void LoadBalancer::release_flow(const pkt::FlowKey& flow, svc::ServiceType service) {
  flow_pins_.erase({static_cast<std::uint8_t>(service), flow});
}

void LoadBalancer::purge_se(std::uint64_t se_id) {
  for (auto it = flow_pins_.begin(); it != flow_pins_.end();) {
    it = it->second == se_id ? flow_pins_.erase(it) : std::next(it);
  }
  for (auto it = user_pins_.begin(); it != user_pins_.end();) {
    it = it->second == se_id ? user_pins_.erase(it) : std::next(it);
  }
}

}  // namespace livesec::ctrl
