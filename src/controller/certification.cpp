#include "controller/certification.h"

#include <array>

#include "common/hash.h"

namespace livesec::ctrl {

std::uint64_t CertificationAuthority::issue(std::uint64_t se_id) const {
  // Two rounds of keyed mixing (hash(secret || id) re-mixed with the secret)
  // so neither plain XOR nor a single splitmix can be inverted from
  // (se_id, token) pairs without the secret.
  std::uint64_t h = hash_combine(splitmix64(secret_), se_id);
  h = splitmix64(h ^ secret_);
  return h == 0 ? 1 : h;  // 0 is reserved for "uncertified"
}

bool CertificationAuthority::validate(std::uint64_t se_id, std::uint64_t token) const {
  if (revoked_.contains(se_id)) return false;
  return token != 0 && token == issue(se_id);
}

}  // namespace livesec::ctrl
