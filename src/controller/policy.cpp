#include "controller/policy.h"

#include <algorithm>
#include <sstream>

namespace livesec::ctrl {

const char* policy_action_name(PolicyAction action) {
  switch (action) {
    case PolicyAction::kAllow: return "allow";
    case PolicyAction::kDeny: return "deny";
    case PolicyAction::kRedirect: return "redirect";
  }
  return "?";
}

bool Policy::matches(const pkt::FlowKey& key) const {
  if (src_mac && *src_mac != key.dl_src) return false;
  if (dst_mac && *dst_mac != key.dl_dst) return false;
  if (nw_src && !nw_src->same_subnet(key.nw_src, nw_src_prefix.value_or(32))) return false;
  if (nw_dst && !nw_dst->same_subnet(key.nw_dst, nw_dst_prefix.value_or(32))) return false;
  if (nw_proto && *nw_proto != key.nw_proto) return false;
  if (tp_dst && *tp_dst != key.tp_dst) return false;
  if (vlan_id && *vlan_id != key.vlan_id) return false;
  return true;
}

std::string Policy::to_string() const {
  std::ostringstream out;
  out << "policy#" << id << " '" << name << "' prio=" << priority << " "
      << policy_action_name(action);
  if (action == PolicyAction::kRedirect) {
    out << " via [";
    for (std::size_t i = 0; i < service_chain.size(); ++i) {
      if (i) out << ",";
      out << svc::service_type_name(service_chain[i]);
    }
    out << "] " << (granularity == LbGranularity::kPerFlow ? "per-flow" : "per-user");
  }
  return out.str();
}

std::uint32_t PolicyTable::add(Policy policy) {
  if (policy.id == 0) policy.id = next_id_++;
  else next_id_ = std::max(next_id_, policy.id + 1);
  const std::uint32_t id = policy.id;
  // Insert before the first strictly lower priority to keep stable order.
  auto pos = std::find_if(policies_.begin(), policies_.end(),
                          [&](const Policy& p) { return p.priority < policy.priority; });
  auto inserted = policies_.insert(pos, std::move(policy));
  index_dirty_ = true;
  ++version_;
  if (observer_) {
    observer_(PolicyMutation{PolicyMutation::Kind::kAdded, &*inserted, id, PolicyAction::kAllow});
  }
  return id;
}

bool PolicyTable::remove(std::uint32_t id) {
  ensure_index();
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return false;
  policies_.erase(policies_.begin() + static_cast<std::ptrdiff_t>(it->second));
  index_dirty_ = true;
  ++version_;
  if (observer_) {
    observer_(PolicyMutation{PolicyMutation::Kind::kRemoved, nullptr, id, PolicyAction::kAllow});
  }
  return true;
}

const Policy* PolicyTable::find(std::uint32_t id) const {
  ensure_index();
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &policies_[it->second];
}

void PolicyTable::reindex() const {
  by_id_.clear();
  mac_pair_tier_.clear();
  mac_port_tier_.clear();
  wildcard_ranks_.clear();
  for (std::size_t rank = 0; rank < policies_.size(); ++rank) {
    const Policy& p = policies_[rank];
    by_id_[p.id] = rank;
    // A tiered policy must be guaranteed unreachable from any flow key that
    // hashes to a different bucket: exact MAC predicates give that guarantee,
    // so (src, dst) pairs and (src, tp_dst) services are tierable and
    // everything else falls back to the wildcard scan.
    if (p.src_mac && p.dst_mac) {
      mac_pair_tier_[{*p.src_mac, *p.dst_mac}].push_back(rank);
    } else if (p.src_mac && p.tp_dst) {
      mac_port_tier_[{*p.src_mac, *p.tp_dst}].push_back(rank);
    } else {
      wildcard_ranks_.push_back(rank);
    }
  }
  index_dirty_ = false;
}

const Policy* PolicyTable::lookup(const pkt::FlowKey& key) const {
  ensure_index();
  std::size_t best = policies_.size();
  // Ranks in every list ascend, so the first match per list is that list's
  // winner and scanning past the current best can stop early.
  const auto scan = [&](const std::vector<std::size_t>& ranks) {
    for (std::size_t rank : ranks) {
      if (rank >= best) return;
      if (policies_[rank].matches(key)) {
        best = rank;
        return;
      }
    }
  };
  if (auto it = mac_pair_tier_.find({key.dl_src, key.dl_dst}); it != mac_pair_tier_.end()) {
    scan(it->second);
  }
  if (auto it = mac_port_tier_.find({key.dl_src, key.tp_dst}); it != mac_port_tier_.end()) {
    scan(it->second);
  }
  scan(wildcard_ranks_);
  return best == policies_.size() ? nullptr : &policies_[best];
}

}  // namespace livesec::ctrl
