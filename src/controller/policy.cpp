#include "controller/policy.h"

#include <algorithm>
#include <sstream>

namespace livesec::ctrl {

const char* policy_action_name(PolicyAction action) {
  switch (action) {
    case PolicyAction::kAllow: return "allow";
    case PolicyAction::kDeny: return "deny";
    case PolicyAction::kRedirect: return "redirect";
  }
  return "?";
}

bool Policy::matches(const pkt::FlowKey& key) const {
  if (src_mac && *src_mac != key.dl_src) return false;
  if (dst_mac && *dst_mac != key.dl_dst) return false;
  if (nw_src && !nw_src->same_subnet(key.nw_src, nw_src_prefix.value_or(32))) return false;
  if (nw_dst && !nw_dst->same_subnet(key.nw_dst, nw_dst_prefix.value_or(32))) return false;
  if (nw_proto && *nw_proto != key.nw_proto) return false;
  if (tp_dst && *tp_dst != key.tp_dst) return false;
  if (vlan_id && *vlan_id != key.vlan_id) return false;
  return true;
}

std::string Policy::to_string() const {
  std::ostringstream out;
  out << "policy#" << id << " '" << name << "' prio=" << priority << " "
      << policy_action_name(action);
  if (action == PolicyAction::kRedirect) {
    out << " via [";
    for (std::size_t i = 0; i < service_chain.size(); ++i) {
      if (i) out << ",";
      out << svc::service_type_name(service_chain[i]);
    }
    out << "] " << (granularity == LbGranularity::kPerFlow ? "per-flow" : "per-user");
  }
  return out.str();
}

std::uint32_t PolicyTable::add(Policy policy) {
  if (policy.id == 0) policy.id = next_id_++;
  else next_id_ = std::max(next_id_, policy.id + 1);
  const std::uint32_t id = policy.id;
  // Insert before the first strictly lower priority to keep stable order.
  auto pos = std::find_if(policies_.begin(), policies_.end(),
                          [&](const Policy& p) { return p.priority < policy.priority; });
  policies_.insert(pos, std::move(policy));
  return id;
}

bool PolicyTable::remove(std::uint32_t id) {
  auto it = std::find_if(policies_.begin(), policies_.end(),
                         [id](const Policy& p) { return p.id == id; });
  if (it == policies_.end()) return false;
  policies_.erase(it);
  return true;
}

const Policy* PolicyTable::find(std::uint32_t id) const {
  auto it = std::find_if(policies_.begin(), policies_.end(),
                         [id](const Policy& p) { return p.id == id; });
  return it == policies_.end() ? nullptr : &*it;
}

const Policy* PolicyTable::lookup(const pkt::FlowKey& key) const {
  for (const Policy& p : policies_) {
    if (p.matches(key)) return &p;
  }
  return nullptr;
}

}  // namespace livesec::ctrl
