#include "controller/service_registry.h"

namespace livesec::ctrl {

bool ServiceRegistry::handle_online(std::uint64_t se_id, const MacAddress& mac, Ipv4Address ip,
                                    DatapathId dpid, PortId port,
                                    const svc::OnlineMessage& report, SimTime now) {
  auto it = records_.find(se_id);
  const bool fresh = it == records_.end();
  SeRecord& record = records_[se_id];
  if (fresh) {
    record.se_id = se_id;
    record.first_seen = now;
    ++version_;
  } else if (record.dpid != dpid || record.port != port || record.mac != mac) {
    ++version_;  // migrated: steered paths to the old attachment are stale
  }
  record.mac = mac;
  record.ip = ip;
  record.service = report.service;
  record.dpid = dpid;
  record.port = port;
  record.last_heartbeat = now;
  record.last_report = report;
  record.assigned_since_report = 0;  // the report supersedes local estimates
  return fresh;
}

const SeRecord* ServiceRegistry::find(std::uint64_t se_id) const {
  auto it = records_.find(se_id);
  return it == records_.end() ? nullptr : &it->second;
}

SeRecord* ServiceRegistry::find_mutable(std::uint64_t se_id) {
  auto it = records_.find(se_id);
  return it == records_.end() ? nullptr : &it->second;
}

const SeRecord* ServiceRegistry::find_by_mac(const MacAddress& mac) const {
  for (const auto& [id, record] : records_) {
    if (record.mac == mac) return &record;
  }
  return nullptr;
}

std::vector<const SeRecord*> ServiceRegistry::pool(svc::ServiceType service) const {
  std::vector<const SeRecord*> out;
  for (const auto& [id, record] : records_) {
    if (record.service == service) out.push_back(&record);
  }
  return out;
}

bool ServiceRegistry::remove(std::uint64_t se_id) {
  if (records_.erase(se_id) == 0) return false;
  ++version_;
  return true;
}

std::vector<SeRecord> ServiceRegistry::expire(SimTime now) {
  std::vector<SeRecord> removed;
  for (auto it = records_.begin(); it != records_.end();) {
    if (timeout_ > 0 && now - it->second.last_heartbeat >= timeout_) {
      removed.push_back(it->second);
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
  if (!removed.empty()) ++version_;
  return removed;
}

void ServiceRegistry::note_assignment(std::uint64_t se_id) {
  auto it = records_.find(se_id);
  if (it == records_.end()) return;
  ++it->second.assigned_flows_total;
  ++it->second.assigned_since_report;
}

std::vector<const SeRecord*> ServiceRegistry::all() const {
  std::vector<const SeRecord*> out;
  out.reserve(records_.size());
  for (const auto& [id, record] : records_) out.push_back(&record);
  return out;
}

}  // namespace livesec::ctrl
