// DHCP address pool backing the directory proxy's central DHCP service.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ip_address.h"
#include "common/mac_address.h"
#include "common/types.h"

namespace livesec::ctrl {

/// Leases IPv4 addresses from a contiguous range. Allocation is stable: the
/// same client MAC gets the same address while its lease lives (and on
/// renewal), matching how hosts expect DHCP to behave across reconnects.
class DhcpPool {
 public:
  /// Pool of `size` addresses starting at `base`.
  DhcpPool(Ipv4Address base, std::uint32_t size, SimTime lease_duration = 3600 * kSecond);

  /// Leases (or renews) an address for `mac`. Returns nullopt when the pool
  /// is exhausted.
  std::optional<Ipv4Address> allocate(const MacAddress& mac, SimTime now);

  /// Address currently leased to `mac`, if any (and not expired).
  std::optional<Ipv4Address> lookup(const MacAddress& mac, SimTime now) const;

  /// Releases a lease explicitly.
  void release(const MacAddress& mac);

  /// Drops expired leases; returns the reclaimed (mac, ip) pairs so callers
  /// can propagate the expiry (events, HA replication).
  std::vector<std::pair<MacAddress, Ipv4Address>> expire(SimTime now);

  /// Force-installs a lease with an explicit expiry, displacing whatever held
  /// the address. Used when rebuilding pool state from a replication stream.
  void restore(const MacAddress& mac, Ipv4Address ip, SimTime expires);

  struct Lease {
    Ipv4Address ip;
    SimTime expires;
  };

  /// Current leases keyed by client MAC (HA snapshot export).
  const std::unordered_map<MacAddress, Lease>& leases() const { return leases_; }

  /// Expiry of `mac`'s current lease (0 = no lease).
  SimTime lease_expiry(const MacAddress& mac) const;

  std::size_t active_leases() const { return leases_.size(); }
  Ipv4Address base() const { return base_; }
  std::uint32_t capacity() const { return size_; }
  SimTime lease_duration() const { return lease_duration_; }

 private:
  Ipv4Address base_;
  std::uint32_t size_;
  SimTime lease_duration_;
  std::uint32_t next_offset_ = 0;
  std::unordered_map<MacAddress, Lease> leases_;
  std::unordered_map<Ipv4Address, MacAddress> by_ip_;
};

}  // namespace livesec::ctrl
