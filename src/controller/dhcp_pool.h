// DHCP address pool backing the directory proxy's central DHCP service.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/ip_address.h"
#include "common/mac_address.h"
#include "common/types.h"

namespace livesec::ctrl {

/// Leases IPv4 addresses from a contiguous range. Allocation is stable: the
/// same client MAC gets the same address while its lease lives (and on
/// renewal), matching how hosts expect DHCP to behave across reconnects.
class DhcpPool {
 public:
  /// Pool of `size` addresses starting at `base`.
  DhcpPool(Ipv4Address base, std::uint32_t size, SimTime lease_duration = 3600 * kSecond);

  /// Leases (or renews) an address for `mac`. Returns nullopt when the pool
  /// is exhausted.
  std::optional<Ipv4Address> allocate(const MacAddress& mac, SimTime now);

  /// Address currently leased to `mac`, if any (and not expired).
  std::optional<Ipv4Address> lookup(const MacAddress& mac, SimTime now) const;

  /// Releases a lease explicitly.
  void release(const MacAddress& mac);

  /// Drops expired leases; returns the number reclaimed.
  std::size_t expire(SimTime now);

  std::size_t active_leases() const { return leases_.size(); }
  std::uint32_t capacity() const { return size_; }
  SimTime lease_duration() const { return lease_duration_; }

 private:
  struct Lease {
    Ipv4Address ip;
    SimTime expires;
  };

  Ipv4Address base_;
  std::uint32_t size_;
  SimTime lease_duration_;
  std::uint32_t next_offset_ = 0;
  std::unordered_map<MacAddress, Lease> leases_;
  std::unordered_map<Ipv4Address, MacAddress> by_ip_;
};

}  // namespace livesec::ctrl
