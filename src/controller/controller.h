// The LiveSec controller: centralized security management for the
// Access-Switching layer (paper §III-IV). Developed against the NOX API in
// the paper; here it is a self-contained event-driven C++ class.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "controller/certification.h"
#include "controller/dhcp_pool.h"
#include "controller/host_index.h"
#include "controller/load_balancer.h"
#include "controller/policy.h"
#include "controller/routing_table.h"
#include "controller/service_registry.h"
#include "ha/replication.h"
#include "monitor/event_store.h"
#include "monitor/monitoring.h"
#include "openflow/channel.h"
#include "topology/topology_graph.h"

namespace livesec::sim {
class Simulator;
}

namespace livesec::ctrl {

/// Central LiveSec controller. One instance manages every AS switch via
/// secure channels and implements:
///  - topology & location discovery (LLDP + ARP packet-ins, §III.C.1-2)
///  - the ARP directory proxy (§III.C.2)
///  - abstract two-hop end-to-end routing (§III.C.3)
///  - interactive policy enforcement incl. SE redirection and event-driven
///    blocking (§IV.A)
///  - the SE registry, certification and load balancing (§III.D.1, §IV.B)
///  - service-aware monitoring, aggregate flow control and the event
///    database feeding the WebUI (§IV.C-D)
class Controller : public of::ControllerEndpoint {
 public:
  struct Config {
    std::uint64_t cert_secret = 0x4C697665536563ull;  // "LiveSec"
    SimTime host_timeout = 120 * kSecond;
    SimTime se_liveness_timeout = 6 * kSecond;
    SimTime housekeeping_interval = 2 * kSecond;
    /// Idle timeout stamped on installed data-path entries; expiry produces
    /// FlowRemoved -> FlowEnd events.
    SimTime flow_idle_timeout = 10 * kSecond;
    std::uint16_t flow_priority = 100;
    std::uint16_t drop_priority = 200;  // security drops outrank forwarding
    PolicyAction default_action = PolicyAction::kAllow;
    LbStrategy lb_strategy = LbStrategy::kMinLoad;
    /// Send LLDP discovery rounds periodically (0 = only on switch join).
    SimTime lldp_interval = 0;
    /// Poll switch statistics every interval (0 = off). Feeds the WebUI's
    /// per-switch load view (paper §IV.D: "load condition of links").
    SimTime stats_interval = 0;
    /// Flow-decision cache bound (entries). 0 disables memoization.
    std::size_t decision_cache_capacity = 8192;
    /// Pending-setup (packet-in suppression) table bounds: distinct flows
    /// parked, duplicate packet-ins remembered per flow, and how long a
    /// parked setup may wait before housekeeping drops it.
    std::size_t pending_setup_capacity = 1024;
    std::size_t pending_waiters_per_flow = 16;
    SimTime pending_setup_timeout = 1 * kSecond;
    /// OFPT_ECHO liveness probing of switch channels (0 = off). A channel
    /// that stays "connected" but silently loses traffic — a network
    /// partition as TCP sees it — is only detectable this way. A switch
    /// missing echo replies for `switch_echo_timeout` (default 3x the
    /// interval) is declared disconnected.
    SimTime switch_echo_interval = 0;
    SimTime switch_echo_timeout = 0;
    /// Verdict-driven cut-through (service-chain fast path): once every SE
    /// of a flow's chain has sent a benign VERDICT, the redirect entries are
    /// rewritten into the direct src->dst path. false = verdicts are
    /// counted but never acted on.
    bool enable_flow_offload = true;
    /// Bound of the offloaded-flow memo (benign verdicts replayed on later
    /// setups of the same flow). Full flush at capacity, like the decision
    /// cache. 0 disables the memo (offload still rewrites live flows).
    std::size_t offload_table_capacity = 8192;
    /// Partition count for the host-scale state (routing table shards, IP
    /// index, per-host flow index). Rounded up to a power of two.
    std::size_t routing_shards = RoutingTable::kDefaultShards;
    /// Event-database ring bound (0 = unbounded). Campus-scale runs bound
    /// it so churn events cannot grow controller memory without limit.
    std::size_t event_store_capacity = 0;
  };

  Controller(sim::Simulator& sim, Config config);
  Controller(sim::Simulator& sim);

  // --- wiring ---------------------------------------------------------------
  /// Registers the channel used to reach a switch. Must be called before the
  /// switch connects. `kind` distinguishes OvS from OF Wi-Fi for the UI.
  void attach_channel(DatapathId dpid, of::SecureChannel& channel,
                      topo::NodeKind kind = topo::NodeKind::kAsSwitch);

  /// Administrator override: declare a switch's Legacy-Switching uplink
  /// port. LLDP discovery fills this automatically; explicit registration
  /// lets deployments skip the discovery round.
  void register_ls_port(DatapathId dpid, PortId port);
  std::optional<PortId> ls_port(DatapathId dpid) const;

  // --- of::ControllerEndpoint -------------------------------------------------
  void handle_switch_connected(DatapathId dpid, const of::FeaturesReply& features) override;
  void handle_switch_disconnected(DatapathId dpid) override;
  void handle_switch_message(DatapathId dpid, const of::Message& message) override;

  // --- administration ---------------------------------------------------------
  PolicyTable& policies() { return policies_; }
  const PolicyTable& policies() const { return policies_; }
  mon::AggregateFlowControl& flow_control() { return flow_control_; }
  CertificationAuthority& certification() { return ca_; }
  LoadBalancer& load_balancer() { return lb_; }

  /// Configures a SPAN/mirror port on a switch: every flow entry the
  /// controller installs there gets an extra output to `port`, so a capture
  /// host on that port records the traffic (paper abstract: "historical
  /// traffic replay"). Affects entries installed after the call.
  void set_mirror_port(DatapathId dpid, PortId port) {
    mirror_ports_[dpid] = port;
    ++epoch_;  // cached flow-mod templates no longer carry the mirror output
  }
  void clear_mirror_port(DatapathId dpid) {
    mirror_ports_.erase(dpid);
    ++epoch_;
  }

  /// Enables the central DHCP service of the directory proxy: clients'
  /// DISCOVER/REQUEST packet-ins are answered from this pool.
  void enable_dhcp(Ipv4Address base, std::uint32_t size,
                   SimTime lease_duration = 3600 * kSecond);
  const DhcpPool* dhcp_pool() const { return dhcp_ ? &*dhcp_ : nullptr; }

  /// Launches an LLDP probe round over every known switch port.
  void run_discovery();

  /// Starts periodic housekeeping (host/SE expiry; optional LLDP rounds).
  void start_housekeeping();

  /// Unblocks a previously blocked flow (admin action).
  bool unblock_flow(const pkt::FlowKey& key);

  // --- high availability ------------------------------------------------------
  /// Wires the sink through which every state mutation is replicated to
  /// standby controllers. Pass nullptr to stop replicating (a demoted or
  /// standby instance). The caller owns the sink.
  void set_replication_sink(ha::ReplicationSink* sink);

  /// Applies one replicated record to this (standby) instance's state
  /// tables. Never touches switches: connectivity is per-controller.
  void apply_replicated(const ha::RecordBody& body);

  /// The full state re-expressed as records, in deterministic order.
  /// Applying them onto a fresh controller reproduces the state.
  std::vector<ha::RecordBody> export_state() const;

  /// Resets replicated state and applies a snapshot's records. Used when a
  /// standby lags past the active's log truncation point.
  void import_snapshot(const std::vector<ha::RecordBody>& records);

  /// Called when this standby takes mastership: bumps the epoch so no
  /// cached pre-failover decision (or cookie template) can replay, raises
  /// the failover event and starts housekeeping.
  void note_promoted();
  std::uint64_t epoch() const { return epoch_; }

  /// Outcome of one post-failover flow-table audit.
  struct ReconcileReport {
    std::uint64_t switches_audited = 0;
    std::uint64_t entries_audited = 0;
    /// Entries deleted: orphaned drops, policy-denied forwards, flows with
    /// endpoints the replicated state never heard of.
    std::uint64_t stale_removed = 0;
    /// Ingress drops re-installed for replicated blocked flows the switch
    /// no longer carried.
    std::uint64_t drops_reinstalled = 0;
    SimTime completed_at = 0;  // 0 = no reconciliation has completed
  };

  /// Audits every connected switch's flow table against the replicated
  /// state (StatsRequest/StatsReply): stale entries are deleted, missing
  /// security drops re-installed. Runs asynchronously; progress is visible
  /// through reconciling() and reconcile_report().
  void begin_reconciliation();
  bool reconciling() const { return reconciling_; }
  const ReconcileReport& reconcile_report() const { return reconcile_report_; }

  /// Channel backpressure, aggregated over every attached channel.
  std::uint64_t channel_outbox_dropped() const;
  std::size_t channel_backlog() const;

  std::size_t blocked_flow_count() const { return blocked_flows_.size(); }
  bool switch_connected(DatapathId dpid) const {
    auto it = switches_.find(dpid);
    return it != switches_.end() && it->second.connected;
  }

  // --- state queries (WebUI & tests) -----------------------------------------
  const RoutingTable& routing() const { return routing_; }
  const ServiceRegistry& services() const { return registry_; }
  const topo::TopologyGraph& topology() const { return topology_; }
  mon::EventStore& events() { return events_; }
  const mon::EventStore& events() const { return events_; }
  const mon::ServiceAwareMonitor& service_monitor() const { return monitor_; }
  bool flow_blocked(const pkt::FlowKey& key) const { return blocked_flows_.contains(key); }
  std::size_t active_flows() const { return flows_.size(); }

  /// Rolling per-switch load derived from StatsReply deltas.
  struct SwitchLoad {
    std::uint64_t total_packets = 0;  // cumulative matched packets
    std::uint64_t total_bytes = 0;
    double packets_per_second = 0;    // over the last poll interval
    double bits_per_second = 0;
    std::size_t flow_count = 0;
    SimTime updated_at = 0;
  };

  /// Latest load snapshot for a switch (nullptr before the first poll).
  const SwitchLoad* switch_load(DatapathId dpid) const;

  /// Issues a StatsRequest to every connected switch.
  void poll_stats();

  struct Stats {
    std::uint64_t packet_ins = 0;
    std::uint64_t flows_installed = 0;
    std::uint64_t flows_redirected = 0;
    std::uint64_t flows_denied = 0;
    std::uint64_t flows_blocked_by_event = 0;
    std::uint64_t daemon_messages = 0;
    std::uint64_t cert_rejections = 0;
    std::uint64_t arp_proxied = 0;
    std::uint64_t lldp_links = 0;
    /// Messages ignored because their dpid never attached a channel.
    std::uint64_t unknown_dpid_drops = 0;
    /// Switches declared dead because echo replies stopped arriving.
    std::uint64_t echo_timeouts = 0;
    /// VERDICT daemon messages received from SEs.
    std::uint64_t verdict_messages = 0;
    /// Flows cut through: redirect chain rewritten to the direct path.
    std::uint64_t flows_offloaded = 0;
    /// Flow setups served straight from the offload memo (direct install,
    /// no re-inspection).
    std::uint64_t offload_replays = 0;
    /// Offload memo entries dropped because their stamp went stale (policy
    /// mutation, host move, SE change, failover).
    std::uint64_t offload_invalidations = 0;
    /// Decision-cache and packet-in-suppression observability.
    mon::FastPathCounters fastpath;
  };
  const Stats& stats() const { return stats_; }

  // Fast-path state sizes (WebUI & tests).
  std::size_t decision_cache_size() const { return decision_cache_.size(); }
  std::size_t pending_setup_count() const { return pending_setups_.size(); }
  /// Hosts with at least one indexed active flow (scale observability).
  std::size_t host_flow_index_size() const { return flows_by_host_.host_count(); }
  std::size_t offloaded_flow_count() const { return offloaded_flows_.size(); }
  bool flow_offloaded(const pkt::FlowKey& key) const { return offloaded_flows_.contains(key); }

  /// Entries currently installed for an active flow (tests assert the
  /// paper's 4-entry redirect shape and its rewrite on offload).
  std::vector<std::pair<DatapathId, of::Match>> flow_entries(const pkt::FlowKey& key) const {
    auto it = flows_.find(key);
    if (it == flows_.end()) return {};
    return it->second.installed;
  }
  /// SE chain an active flow is steered through (empty after offload).
  std::vector<std::uint64_t> flow_se_ids(const pkt::FlowKey& key) const {
    auto it = flows_.find(key);
    if (it == flows_.end()) return {};
    return it->second.se_ids;
  }

 private:
  struct SwitchState {
    of::SecureChannel* channel = nullptr;
    topo::NodeKind kind = topo::NodeKind::kAsSwitch;
    std::uint32_t num_ports = 0;
    std::string name;
    bool connected = false;
  };

  /// Controller-side record of one installed end-to-end flow.
  struct FlowRecord {
    pkt::FlowKey key;          // original 9-tuple (forward direction)
    DatapathId ingress_dpid = 0;
    PortId ingress_port = kInvalidPort;
    std::uint32_t policy_id = 0;
    std::vector<std::uint64_t> se_ids;  // traversed chain
    MacAddress user;                     // originating host
    SimTime started_at = 0;
    bool blocked = false;
    svc::l7::AppProtocol app = svc::l7::AppProtocol::kUnknown;
    /// Every entry installed for this flow: (dpid, match, priority) so that
    /// blocking / teardown can address them.
    std::vector<std::pair<DatapathId, of::Match>> installed;
    /// Steered variants of the key (dl_dst = SE MAC) registered in
    /// steered_index_, kept for cleanup.
    std::vector<pkt::FlowKey> steered_keys;
    /// The reverse-session key registered in reverse_index_.
    pkt::FlowKey reverse_key;
    /// Actions of the ingress entry — used to release packets that raced to
    /// the controller before the entries landed (duplicate packet-ins).
    of::ActionList ingress_actions;
    /// Cookie on the ingress entry (keys cookie_index_).
    std::uint64_t cookie = 0;
    /// SEs of the chain that issued a benign VERDICT for this flow. The
    /// cut-through fires only once every se_ids member is present.
    std::vector<std::uint64_t> benign_se_ids;
  };

  // --- flow-decision fast path -----------------------------------------------
  //
  // A flow *class* is the FlowKey with tp_src zeroed for TCP/UDP (no policy
  // predicate reads tp_src, and the path is port-agnostic); ICMP and other
  // protocols keep the full key, because their tp_src carries semantics
  // (echo type). All flows of one class share a memoized decision: the
  // policy verdict, the SE chain, and per-switch flow-mod templates built
  // against the class key, replayed per flow with only the transport-port
  // fields, cookie and buffer id patched.

  /// Flow-mod templates of one switch's share of a class's path.
  struct SwitchMods {
    DatapathId dpid = 0;
    std::vector<of::FlowMod> mods;          // class-keyed templates, in order
    std::vector<std::uint8_t> reverse_dir;  // parallel: 1 = reverse-direction
    int ingress_mod = -1;  // patched with cookie + buffer id (forward ingress)
    /// Lazily built preserialized wire frame (FlowModBatch) + each mod's
    /// body offset, for channels with wire encoding: replayed with byte
    /// patches instead of re-encoding per flow.
    std::vector<std::uint8_t> frame;
    std::vector<std::size_t> mod_offsets;
  };

  struct CachedDecision {
    PolicyAction action = PolicyAction::kAllow;
    std::uint32_t policy_id = 0;
    std::string policy_name;  // deny-event detail
    std::vector<std::uint64_t> se_ids;
    std::vector<MacAddress> se_macs;  // steered-key registration
    std::vector<SwitchMods> switches;
    of::ActionList ingress_actions;
    /// Fabric-priming targets (destination + chain SEs).
    std::vector<std::tuple<MacAddress, Ipv4Address, DatapathId>> prime;
    /// Per-flow-granularity redirects re-balance on every setup and must
    /// not be memoized.
    bool cacheable = true;
  };

  struct DecisionKey {
    pkt::FlowKey cls;
    DatapathId dpid = 0;
    PortId in_port = kInvalidPort;
    bool operator==(const DecisionKey&) const = default;
  };
  struct DecisionKeyHash {
    std::size_t operator()(const DecisionKey& k) const noexcept {
      return static_cast<std::size_t>(
          hash_combine(hash_combine(k.cls.hash(), k.dpid), k.in_port));
    }
  };

  /// Everything a memoized decision depends on. Any component moving means
  /// the whole cache is flushed (invalidation is rare; per-entry stamps are
  /// not worth the bytes).
  struct DecisionStamp {
    std::uint64_t policy = 0;
    std::uint64_t routing = 0;
    std::uint64_t registry = 0;
    std::uint64_t epoch = 0;
    bool operator==(const DecisionStamp&) const = default;
  };

  /// One parked flow setup waiting for a missing precondition (host
  /// location, LS uplink). Duplicate packet-ins pile into `waiters` instead
  /// of recomputing; on completion the first waiter re-runs the setup and
  /// the rest are released through the installed ingress actions.
  struct PendingSetup {
    struct Waiter {
      DatapathId dpid = 0;
      PortId in_port = kInvalidPort;
      std::uint32_t buffer_id = 0;
    };
    std::vector<Waiter> waiters;
    pkt::PacketPtr packet;  // first packet, for the retry
    SimTime parked_at = 0;
  };

  static pkt::FlowKey decision_class(const pkt::FlowKey& key);
  DecisionStamp current_stamp() const;
  /// Flushes the cache when any stamp component moved since the last check.
  void validate_decision_cache();
  /// Computes the full decision for a class (policy, SE chain, per-switch
  /// templates). nullopt = a precondition is missing (park the setup).
  std::optional<CachedDecision> build_decision(DatapathId dpid, PortId in_port,
                                               const pkt::FlowKey& cls, const pkt::FlowKey& key);
  /// Replays a decision for one concrete flow: patches the templates,
  /// batches them out, and registers the flow record.
  void apply_decision(CachedDecision& decision, DatapathId dpid, const of::PacketIn& pin,
                      const pkt::FlowKey& key);
  /// Parks a setup whose decision could not be built yet.
  void park_setup(DatapathId dpid, const of::PacketIn& pin, const pkt::FlowKey& key);
  /// Retries parked setups touching `mac` (it may have just announced).
  void retry_pending_for_host(const MacAddress& mac);
  /// Retries every parked setup (topology knowledge changed).
  void retry_all_pending();
  void retry_pending(const std::vector<pkt::FlowKey>& keys);
  void expire_pending(SimTime now);
  /// Indexes `key` under both endpoint MACs for O(flows-of-host) teardown.
  void index_flow_host(const pkt::FlowKey& key, const FlowRecord& record);
  void unindex_flow_host(const pkt::FlowKey& key, const FlowRecord& record);

  // Message handlers.
  void on_packet_in(DatapathId dpid, const of::PacketIn& pin);
  void on_flow_removed(DatapathId dpid, const of::FlowRemoved& removed);
  void handle_lldp(DatapathId dpid, PortId in_port, const pkt::Packet& packet);
  void handle_daemon(DatapathId dpid, PortId in_port, const pkt::Packet& packet);
  void handle_daemon_event(const SeRecord& se, const svc::EventMessage& event);
  void handle_daemon_verdict(const SeRecord& se, const svc::VerdictMessage& verdict);
  /// Blocks `original` at its ingress switch (shared by security events and
  /// malicious verdicts) and revokes any benign cut-through memo it held.
  void block_flow_at_ingress(const pkt::FlowKey& original, std::uint64_t se_id,
                             std::uint8_t severity);
  void handle_arp(DatapathId dpid, const of::PacketIn& pin);
  void handle_dhcp(DatapathId dpid, const of::PacketIn& pin);
  void handle_flow_setup(DatapathId dpid, const of::PacketIn& pin);

  // Path installation (paper §III.C.3 and §IV.A).
  struct PathSpec {
    pkt::FlowKey key;  // flow *class* key (templates are per-class)
    HostLocation src;
    HostLocation dst;
    std::vector<const SeRecord*> chain;
    SimTime idle_timeout = 0;
    bool notify_ingress_removal = false;
  };

  /// Uninstalls every entry of one flow and forgets its record. Used when an
  /// SE migrates or a host moves and the installed paths are stale.
  void teardown_flow(const pkt::FlowKey& key);
  /// Tears down every active flow steered through `se_id`.
  std::size_t teardown_flows_through_se(std::uint64_t se_id);
  /// Tears down every active flow whose user is `mac` (ingress side).
  std::size_t teardown_flows_of_host(const MacAddress& mac);
  /// Appends one direction's class-keyed flow-mod templates to `decision`,
  /// grouped per switch. Nothing is sent — apply_decision() replays the
  /// templates per flow. Returns false if a needed LS port is unknown.
  bool build_path(const PathSpec& spec, CachedDecision& decision, bool reverse);

  // --- verdict-driven flow offload (service-chain fast path) -------------------
  //
  // A steered flow whose SEs all report a benign VERDICT is *cut through*:
  // its 4-entry-per-SE redirect chain is rewritten in place into the direct
  // src->dst path, so the data plane stops paying the SE detour. The
  // decision is memoized per concrete flow with the stamp it was taken
  // under; later setups of the same flow replay the direct path only while
  // the stamp still matches (policy mutation, host move, SE change or a
  // failover all invalidate it, falling back to redirect-and-reinspect).

  /// Direct src->dst decision for one concrete flow (no chain, not cached).
  std::optional<CachedDecision> build_direct_decision(const pkt::FlowKey& key);
  /// Rewrites an installed redirected flow onto the direct path and records
  /// the offload (memo + replication + event).
  void offload_flow(const pkt::FlowKey& key, FlowRecord& record, const SeRecord& se,
                    std::uint64_t inspected_bytes);
  /// Drops a flow's offload memo and tells standbys (no-op if absent).
  void forget_offload(const pkt::FlowKey& key);

  /// Installs a high-priority drop for `key` at its ingress switch.
  void install_drop(DatapathId dpid, PortId in_port, const pkt::FlowKey& key);

  /// Session-aware reverse key (ICMP echo request <-> reply, §III.C.3).
  static pkt::FlowKey session_reverse(const pkt::FlowKey& key);

  void raise(mon::EventType type, std::string subject, std::string detail, DatapathId dpid = 0,
             std::uint64_t se_id = 0, std::uint8_t severity = 0, const pkt::FlowKey* flow = nullptr);

  void housekeeping_tick();
  void send_lldp_probes(DatapathId dpid);
  void send_flow_mod(DatapathId dpid, of::FlowMod mod);

  // --- high availability ------------------------------------------------------
  /// Publishes one record to the replication sink (no-op on standbys and
  /// while applying replicated records, so applies never echo back).
  void replicate(ha::RecordBody body);
  /// (Re-)wires the policy-table observer that replicates policy pushes.
  void install_policy_observer();
  /// Satellite of the HA work: a switch that disconnected or reconnected
  /// invalidates every parked waiter holding one of its buffer ids —
  /// releasing them would PacketOut into a dead or restarted connection.
  void drop_pending_for_switch(DatapathId dpid);
  /// One switch's share of the post-failover audit.
  void audit_switch_stats(DatapathId dpid, const of::StatsReply& reply);
  void finish_reconciliation();
  /// Periodic OFPT_ECHO probe + liveness check (switch_echo_interval > 0).
  void echo_tick();

  /// Teaches the legacy fabric where `mac` lives by injecting a gratuitous
  /// ARP out of its switch's Legacy-Switching port. The directory proxy
  /// suppresses host broadcasts (paper §III.C.2), so without priming the
  /// fabric would flood every frame toward hosts that never send through it.
  void prime_fabric_location(const MacAddress& mac, Ipv4Address ip, DatapathId dpid);

  sim::Simulator* sim_;
  Config config_;

  std::map<DatapathId, SwitchState> switches_;
  std::map<DatapathId, PortId> ls_ports_;

  RoutingTable routing_;
  ServiceRegistry registry_;
  topo::TopologyGraph topology_;
  PolicyTable policies_;
  CertificationAuthority ca_;
  LoadBalancer lb_;
  mon::EventStore events_;
  mon::ServiceAwareMonitor monitor_;
  mon::AggregateFlowControl flow_control_;

  /// Active flow records, keyed by forward 9-tuple.
  std::unordered_map<pkt::FlowKey, FlowRecord> flows_;
  /// Steered 9-tuple (dl_dst rewritten to SE MAC) -> original forward key,
  /// so SE event reports map back to the user flow.
  std::unordered_map<pkt::FlowKey, pkt::FlowKey> steered_index_;
  /// Reverse key -> forward key (one record per session).
  std::unordered_map<pkt::FlowKey, pkt::FlowKey> reverse_index_;
  /// Where a blocked flow enters the network — carried in replication so a
  /// promoted standby can re-install the drop without the flow's next
  /// packet-in.
  struct BlockedFlowInfo {
    DatapathId ingress_dpid = 0;
    PortId ingress_port = kInvalidPort;
  };
  /// Flows banned by security events; re-blocked on any future packet-in.
  /// std::map: snapshot export iterates in deterministic key order.
  std::map<pkt::FlowKey, BlockedFlowInfo> blocked_flows_;
  /// Cookie stamped on ingress entries -> forward key (FlowRemoved lookup).
  std::unordered_map<std::uint64_t, pkt::FlowKey> cookie_index_;
  std::uint64_t next_cookie_ = 1;

  bool housekeeping_running_ = false;
  SimTime next_lldp_ = 0;

  // --- high-availability state ------------------------------------------------
  ha::ReplicationSink* repl_sink_ = nullptr;
  /// True while apply_replicated runs: mutations it causes (e.g. the policy
  /// observer firing) must not be re-replicated.
  bool applying_replicated_ = false;
  bool reconciling_ = false;
  /// Switches whose StatsReply the audit still waits for.
  std::set<DatapathId> reconcile_pending_;
  ReconcileReport reconcile_report_;
  /// Last proof of life per switch channel (echo reply or connect).
  std::map<DatapathId, SimTime> last_switch_echo_;
  /// Last fabric-priming time per MAC (re-primed after kPrimeInterval).
  std::unordered_map<MacAddress, SimTime> primed_;
  /// Per-switch load partitions, flat-hashed by dpid (thousands of AS
  /// switches at campus scale; no per-entry heap nodes).
  FlatHashMap<std::uint64_t, SwitchLoad> switch_loads_;
  SimTime next_stats_poll_ = 0;
  std::optional<DhcpPool> dhcp_;
  std::map<DatapathId, PortId> mirror_ports_;
  Stats stats_;

  // --- fast-path state --------------------------------------------------------
  std::unordered_map<DecisionKey, CachedDecision, DecisionKeyHash> decision_cache_;
  /// Stamp the cache contents were computed under.
  DecisionStamp cache_stamp_;
  /// Controller-local generation: bumped by anything outside the versioned
  /// tables that cached templates depend on (channel attach, switch
  /// connect/disconnect, LS-port learning, mirror-port changes).
  std::uint64_t epoch_ = 0;
  /// One flow's benign cut-through memo.
  struct OffloadEntry {
    DecisionStamp stamp;                 // world the verdict was taken in
    std::uint64_t inspected_bytes = 0;   // payload cleared before the verdict
    SimTime at = 0;
  };
  /// Flows holding a benign verdict, replayed as direct paths on later
  /// setups while their stamp holds. std::map: snapshot export iterates in
  /// deterministic key order.
  std::map<pkt::FlowKey, OffloadEntry> offloaded_flows_;
  /// In-flight flow setups, keyed by the concrete forward 9-tuple.
  std::unordered_map<pkt::FlowKey, PendingSetup> pending_setups_;
  /// Endpoint MAC -> forward keys of active flows touching it, MAC-sharded
  /// like the routing table.
  HostFlowIndex flows_by_host_;
};

}  // namespace livesec::ctrl
