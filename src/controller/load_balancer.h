// Distributed load balancing over service elements (paper §IV.B).
//
// "LiveSec controller can utilize different dispatching algorithms such as
//  polling, hash, queuing or minimum-load method" at either flow or user
//  granularity.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/mac_address.h"
#include "controller/policy.h"
#include "controller/service_registry.h"
#include "packet/flow_key.h"

namespace livesec::ctrl {

/// Dispatching algorithm. The first four are the paper's §IV.B list;
/// kWeightedMinLoad is this repo's extension for heterogeneous SE pools
/// (load normalized by each SE's reported capacity, so a half-speed VM gets
/// half the flows instead of an equal share it cannot sustain).
enum class LbStrategy : std::uint8_t {
  kPolling,  // round-robin
  kHash,     // consistent flow/user hashing
  kQueuing,  // fewest queued packets reported
  kMinLoad,  // minimum real-time load estimate
  kWeightedMinLoad,  // minimum load / capacity ratio
};

const char* lb_strategy_name(LbStrategy strategy);

/// Chooses a service element per flow or per user, with sticky assignments:
/// once a flow (or user) is pinned to an SE, it stays there while the SE is
/// alive, so an SE sees whole flows (required for stream inspection).
class LoadBalancer {
 public:
  explicit LoadBalancer(LbStrategy strategy = LbStrategy::kMinLoad) : strategy_(strategy) {}

  LbStrategy strategy() const { return strategy_; }
  void set_strategy(LbStrategy strategy) { strategy_ = strategy; }

  /// Picks an SE of `service` for the given flow/user. Returns se_id, or
  /// nullopt when the pool is empty. Registers the assignment with the
  /// registry for min-load accounting.
  std::optional<std::uint64_t> assign(ServiceRegistry& registry, svc::ServiceType service,
                                      const pkt::FlowKey& flow, LbGranularity granularity);

  /// Accounts a flow replayed from a memoized decision to its SE, exactly
  /// as the sticky-pin hit inside assign() would have (min-load accounting
  /// plus the per-SE counter). Decision caching must not hide flows from
  /// the balancer's load estimates.
  void note_cached_assignment(ServiceRegistry& registry, std::uint64_t se_id) {
    registry.note_assignment(se_id);
    ++counts_[se_id];
  }

  /// Forgets a flow's pin (flow ended).
  void release_flow(const pkt::FlowKey& flow, svc::ServiceType service);

  /// Drops every pin to a dead SE so its flows get reassigned.
  void purge_se(std::uint64_t se_id);

  /// Assignments made per SE (diagnostics for the balance benchmarks).
  const std::map<std::uint64_t, std::uint64_t>& assignment_counts() const { return counts_; }

 private:
  std::optional<std::uint64_t> choose(ServiceRegistry& registry, svc::ServiceType service,
                                      const pkt::FlowKey& flow, LbGranularity granularity);

  LbStrategy strategy_;
  /// Sticky pins. Keyed by (service, flow-hash) or (service, user MAC).
  std::map<std::pair<std::uint8_t, pkt::FlowKey>, std::uint64_t> flow_pins_;
  std::map<std::pair<std::uint8_t, MacAddress>, std::uint64_t> user_pins_;
  /// Round-robin cursor per service type.
  std::map<std::uint8_t, std::size_t> rr_cursor_;
  std::map<std::uint64_t, std::uint64_t> counts_;
};

}  // namespace livesec::ctrl
