// Per-host active-flow index, partitioned the same way as the routing
// table's host records (DESIGN.md §9): flows_by_host_ is the second
// O(hosts) structure on the controller, and at campus scale the old
// unordered_map<MacAddress, set<FlowKey>> paid two heap nodes per
// (host, flow) pair. Here each MAC-hash shard is one flat-hash table whose
// values are hybrid flow sets: the common case (a host with a couple of
// active flows) stays inline in the table slot with no per-flow node,
// while a hot host (a server terminating thousands of flows) spills into
// an open-addressing set so add/remove stay O(1) instead of degrading to
// a linear scan per flow.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/flat_hash.h"
#include "common/hash.h"
#include "common/mac_address.h"
#include "common/small_vector.h"
#include "packet/flow_key.h"

namespace livesec::ctrl {

/// Set of flow keys with inline storage for small cardinalities and a
/// flat-hash spill for large ones.
class FlowSet {
 public:
  bool contains(const pkt::FlowKey& key) const {
    if (large_) return large_->find(key) != nullptr;
    for (const pkt::FlowKey& existing : small_) {
      if (existing == key) return true;
    }
    return false;
  }

  /// Inserts `key`; returns false when it was already present.
  bool insert(const pkt::FlowKey& key) {
    if (large_ == nullptr) {
      for (const pkt::FlowKey& existing : small_) {
        if (existing == key) return false;
      }
      if (small_.size() < kSpillThreshold) {
        small_.push_back(key);
        return true;
      }
      spill();
    }
    if (large_->find(key) != nullptr) return false;
    large_->insert_or_assign(key, 0);
    return true;
  }

  /// Removes `key`; returns false when it was not present. A spilled set
  /// never shrinks back inline — a host that was hot tends to stay hot.
  bool erase(const pkt::FlowKey& key) {
    if (large_) return large_->erase(key);
    for (std::size_t i = 0; i < small_.size(); ++i) {
      if (small_[i] == key) {
        small_[i] = small_.back();
        small_.pop_back();
        return true;
      }
    }
    return false;
  }

  std::size_t size() const { return large_ ? large_->size() : small_.size(); }
  bool empty() const { return size() == 0; }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (large_) {
      large_->for_each([&fn](const pkt::FlowKey& key, char) { fn(key); });
      return;
    }
    for (const pkt::FlowKey& key : small_) fn(key);
  }

  std::size_t memory_bytes() const {
    std::size_t bytes = 0;
    if (small_.capacity() > kInline) bytes += small_.capacity() * sizeof(pkt::FlowKey);
    if (large_) bytes += sizeof(*large_) + large_->memory_bytes();
    return bytes;
  }

 private:
  static constexpr std::size_t kInline = 2;
  static constexpr std::size_t kSpillThreshold = 16;

  void spill() {
    large_ = std::make_unique<LargeSet>();
    large_->reserve(2 * kSpillThreshold);
    for (const pkt::FlowKey& key : small_) large_->insert_or_assign(key, 0);
    small_ = SmallVector<pkt::FlowKey, kInline>();
  }

  using LargeSet = FlatHashMap<pkt::FlowKey, char>;

  SmallVector<pkt::FlowKey, kInline> small_;
  std::unique_ptr<LargeSet> large_;
};

/// Endpoint MAC -> forward keys of active flows touching it, MAC-sharded.
class HostFlowIndex {
 public:
  explicit HostFlowIndex(std::size_t shards = 16) {
    std::size_t count = 1;
    while (count < shards) count *= 2;
    mask_ = count - 1;
    shards_.resize(count);
  }

  /// Registers `key` under `host`; duplicate registrations are idempotent
  /// (retried setups may index the same flow twice).
  void add(const MacAddress& host, const pkt::FlowKey& key) {
    shard_of(host)[host.to_uint64()].insert(key);
  }

  /// Unregisters `key` from `host`; the host's entry disappears with its
  /// last flow. Returns true when the pair was present.
  bool remove(const MacAddress& host, const pkt::FlowKey& key) {
    auto& shard = shard_of(host);
    FlowSet* set = shard.find(host.to_uint64());
    if (set == nullptr) return false;
    if (!set->erase(key)) return false;
    if (set->empty()) shard.erase(host.to_uint64());
    return true;
  }

  /// Flows of `host`, or nullptr. The pointer is invalidated by any
  /// mutation of the index (callers copy before tearing down).
  const FlowSet* find(const MacAddress& host) const {
    return shard_of(host).find(host.to_uint64());
  }

  /// Hosts with at least one indexed flow.
  std::size_t host_count() const {
    std::size_t count = 0;
    for (const auto& shard : shards_) count += shard.size();
    return count;
  }

  std::size_t shard_count() const { return shards_.size(); }

  std::size_t memory_bytes() const {
    std::size_t bytes = sizeof(*this);
    for (const auto& shard : shards_) {
      bytes += shard.memory_bytes();
      shard.for_each(
          [&bytes](std::uint64_t, const FlowSet& set) { bytes += set.memory_bytes(); });
    }
    return bytes;
  }

 private:
  using Shard = FlatHashMap<std::uint64_t, FlowSet>;

  Shard& shard_of(const MacAddress& host) {
    return shards_[static_cast<std::size_t>(splitmix64(host.to_uint64())) & mask_];
  }
  const Shard& shard_of(const MacAddress& host) const {
    return shards_[static_cast<std::size_t>(splitmix64(host.to_uint64())) & mask_];
  }

  std::size_t mask_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace livesec::ctrl
