// The controller's routing table: where every host lives
// (paper §III.C.2: "LiveSec controller will record this location information
// of the fresh host in the routing table ... removed ... due to ARP packet
// timeout").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ip_address.h"
#include "common/mac_address.h"
#include "common/types.h"

namespace livesec::ctrl {

/// Location record of one periphery host (user machine, SE VM or gateway).
struct HostLocation {
  MacAddress mac;
  Ipv4Address ip;
  DatapathId dpid = 0;    // AS switch the host hangs off
  PortId port = kInvalidPort;  // the Network-Periphery port on that switch
  SimTime first_seen = 0;
  SimTime last_seen = 0;
};

/// MAC-keyed host location map with IP secondary index and idle expiry.
class RoutingTable {
 public:
  /// Hosts idle longer than this are expired by expire(); mirrors the ARP
  /// cache timeout of the paper.
  explicit RoutingTable(SimTime host_timeout = 120 * kSecond) : timeout_(host_timeout) {}

  /// Inserts or refreshes a host; returns true when the host is new or moved
  /// to a different attachment point (the caller raises join/move events).
  bool learn(const MacAddress& mac, Ipv4Address ip, DatapathId dpid, PortId port, SimTime now);

  /// Refreshes last_seen only (any data-plane evidence of liveness).
  void touch(const MacAddress& mac, SimTime now);

  const HostLocation* find(const MacAddress& mac) const;
  const HostLocation* find_by_ip(Ipv4Address ip) const;

  /// Removes a specific host (e.g. explicit leave). Returns true if present.
  bool remove(const MacAddress& mac);

  /// Removes all hosts idle past the timeout; returns the removed records.
  std::vector<HostLocation> expire(SimTime now);

  /// Removes all hosts attached to a dead switch; returns removed records.
  std::vector<HostLocation> remove_switch(DatapathId dpid);

  std::size_t size() const { return by_mac_.size(); }
  std::vector<HostLocation> all() const;

  /// Bumped whenever a location mapping changes (new host, move, removal,
  /// expiry) — NOT on touch(). Decision caches compare this to detect that
  /// a memoized path went stale.
  std::uint64_t version() const { return version_; }

 private:
  SimTime timeout_;
  std::uint64_t version_ = 0;
  std::unordered_map<MacAddress, HostLocation> by_mac_;
  std::unordered_map<Ipv4Address, MacAddress> by_ip_;
};

}  // namespace livesec::ctrl
