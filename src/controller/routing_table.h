// The controller's routing table: where every host lives
// (paper §III.C.2: "LiveSec controller will record this location information
// of the fresh host in the routing table ... removed ... due to ARP packet
// timeout").
//
// Campus-at-scale layout (DESIGN.md §9): the table is the controller's
// biggest state component — O(hosts) records for up to millions of hosts —
// and the bottleneck of every packet-in, so it is built as
//
//  - sharded partitions: records live in `shards` independent partitions
//    keyed by MAC hash (the IP secondary index is partitioned the same way
//    by IP hash), so each partition's tables stay small and a future
//    parallel control plane can lock/own partitions independently;
//  - arena-backed interned records: each shard stores records in fixed-size
//    chunks addressed by a 32-bit slot handle. Chunks never move, so
//    find() pointers stay valid until the record itself is removed; freed
//    slots are recycled through an intrusive free list;
//  - flat-hash indexes: MAC -> slot, IP -> MAC and dpid -> chain head are
//    open-addressing FlatHashMaps (no per-entry heap nodes);
//  - a per-dpid intrusive chain through the records of each shard, making
//    remove_switch() and size_on_switch() O(hosts-on-that-switch);
//  - an amortized timeout wheel per shard (same technique as
//    of::FlowTable): expire() visits only due deadline buckets instead of
//    scanning every host, and touch()/learn() refresh lazily — a stale
//    wheel record re-files itself when its bucket fires.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/flat_hash.h"
#include "common/ip_address.h"
#include "common/mac_address.h"
#include "common/types.h"

namespace livesec::ctrl {

/// Location record of one periphery host (user machine, SE VM or gateway).
struct HostLocation {
  MacAddress mac;
  Ipv4Address ip;
  DatapathId dpid = 0;    // AS switch the host hangs off
  PortId port = kInvalidPort;  // the Network-Periphery port on that switch
  SimTime first_seen = 0;
  SimTime last_seen = 0;
};

/// MAC-keyed host location map with IP secondary index and idle expiry.
class RoutingTable {
 public:
  static constexpr std::size_t kDefaultShards = 16;

  /// Hosts idle longer than this are expired by expire(); mirrors the ARP
  /// cache timeout of the paper. `shards` is rounded up to a power of two.
  explicit RoutingTable(SimTime host_timeout = 120 * kSecond,
                        std::size_t shards = kDefaultShards);

  RoutingTable(RoutingTable&&) = default;
  RoutingTable& operator=(RoutingTable&&) = default;

  /// Inserts or refreshes a host; returns true when the host is new or moved
  /// to a different attachment point (the caller raises join/move events).
  /// When an IP is re-leased from one MAC to another, the previous holder's
  /// record loses the address (the IP index always names the latest owner).
  bool learn(const MacAddress& mac, Ipv4Address ip, DatapathId dpid, PortId port, SimTime now);

  /// Refreshes last_seen only (any data-plane evidence of liveness). The
  /// timeout wheel is not touched here: the stale wheel record re-files
  /// itself when its bucket fires.
  void touch(const MacAddress& mac, SimTime now);

  /// Pointers remain valid until that host's record is removed (arena
  /// chunks never move), but not across the removal itself.
  const HostLocation* find(const MacAddress& mac) const;
  const HostLocation* find_by_ip(Ipv4Address ip) const;

  /// Removes a specific host (e.g. explicit leave). Returns true if present.
  bool remove(const MacAddress& mac);

  /// Removes all hosts idle past the timeout; returns the removed records.
  /// Cost is proportional to due wheel buckets, not to table size.
  std::vector<HostLocation> expire(SimTime now);

  /// Removes all hosts attached to a dead switch; returns removed records.
  /// O(hosts-on-switch) via the per-dpid chains.
  std::vector<HostLocation> remove_switch(DatapathId dpid);

  std::size_t size() const { return total_; }
  std::vector<HostLocation> all() const;

  /// Visits every record (unordered) without materializing a snapshot.
  template <typename F>
  void for_each(F&& fn) const {
    for (const Shard& shard : shards_) {
      for (std::uint32_t slot = 0; slot < shard.arena_size; ++slot) {
        const Record& rec = record_at(shard, slot);
        if (rec.live) fn(rec.loc);
      }
    }
  }

  /// Bumped whenever a location mapping changes (new host, move, removal,
  /// expiry, or an IP re-lease — anything that can invalidate an IP- or
  /// MAC-keyed decision) — NOT on touch(). Decision caches compare this to
  /// detect that a memoized path went stale.
  std::uint64_t version() const { return version_; }

  // --- scale observability (WebUI, bench_scale, tests) -----------------------
  std::size_t shard_count() const { return shards_.size(); }

  struct ShardStats {
    std::size_t hosts = 0;         // live records in the shard
    std::size_t arena_slots = 0;   // slots ever allocated (live + free)
    std::size_t index_capacity = 0;  // MAC flat-hash slot-array length
    std::size_t wheel_buckets = 0;
    std::size_t bytes = 0;         // arena + index footprint of this shard
  };
  ShardStats shard_stats(std::size_t shard) const;

  /// Hosts currently attached to `dpid` (chain walk, O(result)).
  std::size_t size_on_switch(DatapathId dpid) const;

  /// Total footprint: arenas, MAC/dpid/IP indexes and wheel records.
  std::size_t memory_bytes() const;

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::uint32_t kChunkSlots = 4096;  // records per arena chunk

  struct Record {
    HostLocation loc;
    std::uint32_t dpid_prev = kNil;  // intrusive per-dpid chain
    std::uint32_t dpid_next = kNil;  // doubles as the free-list link
    /// Epoch of this record's live timer-wheel filing; a fired wheel entry
    /// whose epoch doesn't match is stale (record removed or re-filed).
    std::uint32_t wheel_epoch = 0;
    bool live = false;
  };

  struct Shard {
    FlatHashMap<std::uint64_t, std::uint32_t> by_mac;    // mac48 -> slot
    FlatHashMap<std::uint64_t, std::uint32_t> dpid_head; // dpid -> chain head
    std::vector<std::unique_ptr<Record[]>> chunks;
    std::uint32_t arena_size = 0;  // slots ever allocated
    std::uint32_t free_head = kNil;
    std::size_t live_count = 0;
    /// Timer wheel: quantized deadline -> (slot, epoch) records filed there.
    std::map<SimTime, std::vector<std::pair<std::uint32_t, std::uint32_t>>> wheel;
  };

  Shard& shard_of_mac(std::uint64_t mac48) {
    return shards_[static_cast<std::size_t>(splitmix64(mac48)) & shard_mask_];
  }
  const Shard& shard_of_mac(std::uint64_t mac48) const {
    return shards_[static_cast<std::size_t>(splitmix64(mac48)) & shard_mask_];
  }
  FlatHashMap<std::uint32_t, std::uint64_t>& ip_shard(Ipv4Address ip) {
    return ip_shards_[static_cast<std::size_t>(splitmix64(ip.value())) & shard_mask_];
  }
  const FlatHashMap<std::uint32_t, std::uint64_t>& ip_shard(Ipv4Address ip) const {
    return ip_shards_[static_cast<std::size_t>(splitmix64(ip.value())) & shard_mask_];
  }

  static Record& record_at(Shard& shard, std::uint32_t slot) {
    return shard.chunks[slot / kChunkSlots][slot % kChunkSlots];
  }
  static const Record& record_at(const Shard& shard, std::uint32_t slot) {
    return shard.chunks[slot / kChunkSlots][slot % kChunkSlots];
  }

  std::uint32_t allocate_slot(Shard& shard);
  void free_slot(Shard& shard, std::uint32_t slot);

  void link_dpid(Shard& shard, std::uint32_t slot);
  void unlink_dpid(Shard& shard, std::uint32_t slot);

  /// Quantizes a deadline up to the wheel granularity.
  SimTime wheel_bucket(SimTime deadline) const;
  /// Files (or re-files) the record's wheel entry at its current deadline.
  void file_in_wheel(Shard& shard, std::uint32_t slot);
  /// Fires every due bucket of one shard, collecting expired records.
  void advance_wheel(Shard& shard, SimTime now, std::vector<HostLocation>& removed);

  /// Points the IP index at `mac48`, clearing the address from the previous
  /// holder's record (DHCP re-lease: the index must always name the latest
  /// owner, and the loser's removal must not erase the winner's entry).
  void assign_ip(Ipv4Address ip, std::uint64_t mac48);
  /// Drops the IP index entry only when it still names `mac48`.
  void release_ip(Ipv4Address ip, std::uint64_t mac48);

  /// Shared removal path: unindexes, unlinks and frees one record.
  /// `from_chain_walk` skips the dpid unlink (remove_switch drains chains
  /// wholesale). Does NOT bump version_ — callers batch that.
  HostLocation remove_slot(Shard& shard, std::uint32_t slot, bool from_chain_walk);

  SimTime timeout_;
  SimTime wheel_granularity_;
  std::uint64_t version_ = 0;
  std::size_t total_ = 0;
  std::size_t shard_mask_ = 0;
  std::vector<Shard> shards_;
  /// IP secondary index, partitioned by IP hash: ip -> mac48 of the owner.
  std::vector<FlatHashMap<std::uint32_t, std::uint64_t>> ip_shards_;
};

}  // namespace livesec::ctrl
