#include "controller/routing_table.h"

#include <algorithm>

namespace livesec::ctrl {

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p *= 2;
  return p;
}
}  // namespace

RoutingTable::RoutingTable(SimTime host_timeout, std::size_t shards)
    : timeout_(host_timeout),
      // Coarse buckets bound wheel size: a bucket per eighth of the timeout
      // is enough resolution (expiry is already quantized by the caller's
      // housekeeping interval) while keeping bucket count ~ O(active span).
      wheel_granularity_(host_timeout > 0 ? std::max<SimTime>(host_timeout / 8, 1) : 1) {
  const std::size_t count = round_up_pow2(std::max<std::size_t>(shards, 1));
  shard_mask_ = count - 1;
  shards_.resize(count);
  ip_shards_.resize(count);
}

// --- arena -------------------------------------------------------------------

std::uint32_t RoutingTable::allocate_slot(Shard& shard) {
  if (shard.free_head != kNil) {
    const std::uint32_t slot = shard.free_head;
    shard.free_head = record_at(shard, slot).dpid_next;
    return slot;
  }
  if (shard.arena_size % kChunkSlots == 0) {
    shard.chunks.push_back(std::make_unique<Record[]>(kChunkSlots));
  }
  return shard.arena_size++;
}

void RoutingTable::free_slot(Shard& shard, std::uint32_t slot) {
  Record& rec = record_at(shard, slot);
  rec.live = false;
  ++rec.wheel_epoch;  // any filed wheel entry for this slot is now stale
  rec.dpid_prev = kNil;
  rec.dpid_next = shard.free_head;
  shard.free_head = slot;
}

// --- per-dpid chains ---------------------------------------------------------

void RoutingTable::link_dpid(Shard& shard, std::uint32_t slot) {
  Record& rec = record_at(shard, slot);
  const std::uint32_t* head = shard.dpid_head.find(rec.loc.dpid);
  rec.dpid_prev = kNil;
  rec.dpid_next = head == nullptr ? kNil : *head;
  if (rec.dpid_next != kNil) record_at(shard, rec.dpid_next).dpid_prev = slot;
  shard.dpid_head.insert_or_assign(rec.loc.dpid, slot);
}

void RoutingTable::unlink_dpid(Shard& shard, std::uint32_t slot) {
  Record& rec = record_at(shard, slot);
  if (rec.dpid_prev != kNil) {
    record_at(shard, rec.dpid_prev).dpid_next = rec.dpid_next;
  } else {
    // Head of the chain.
    if (rec.dpid_next != kNil) {
      shard.dpid_head.insert_or_assign(rec.loc.dpid, rec.dpid_next);
    } else {
      shard.dpid_head.erase(rec.loc.dpid);
    }
  }
  if (rec.dpid_next != kNil) record_at(shard, rec.dpid_next).dpid_prev = rec.dpid_prev;
  rec.dpid_prev = kNil;
  rec.dpid_next = kNil;
}

// --- timeout wheel -----------------------------------------------------------

SimTime RoutingTable::wheel_bucket(SimTime deadline) const {
  const SimTime g = wheel_granularity_;
  return ((deadline + g - 1) / g) * g;
}

void RoutingTable::file_in_wheel(Shard& shard, std::uint32_t slot) {
  if (timeout_ <= 0) return;
  Record& rec = record_at(shard, slot);
  ++rec.wheel_epoch;  // invalidate any earlier filing
  shard.wheel[wheel_bucket(rec.loc.last_seen + timeout_)].emplace_back(slot, rec.wheel_epoch);
}

void RoutingTable::advance_wheel(Shard& shard, SimTime now, std::vector<HostLocation>& removed) {
  if (timeout_ <= 0) return;
  const SimTime horizon = wheel_bucket(now);
  // Refiles are deferred: a not-yet-due record's new bucket may quantize to
  // a key we are still draining, and re-inserting there would loop.
  std::vector<std::uint32_t> refile;
  while (!shard.wheel.empty() && shard.wheel.begin()->first <= horizon) {
    auto node = shard.wheel.extract(shard.wheel.begin());
    for (const auto& [slot, epoch] : node.mapped()) {
      const Record& rec = record_at(shard, slot);
      if (!rec.live || rec.wheel_epoch != epoch) continue;  // stale filing
      if (now - rec.loc.last_seen >= timeout_) {
        removed.push_back(remove_slot(shard, slot, /*from_chain_walk=*/false));
      } else {
        refile.push_back(slot);  // idle clock was refreshed since filing
      }
    }
  }
  for (std::uint32_t slot : refile) file_in_wheel(shard, slot);
}

// --- IP secondary index ------------------------------------------------------

void RoutingTable::assign_ip(Ipv4Address ip, std::uint64_t mac48) {
  auto& index = ip_shard(ip);
  if (std::uint64_t* owner = index.find(ip.value())) {
    if (*owner != mac48) {
      // DHCP re-lease: the previous holder lost the address. Clear it from
      // the loser's record so a later remove/expire of the loser cannot
      // erase the new owner's index entry (the stale-index bug).
      Shard& loser_shard = shard_of_mac(*owner);
      if (const std::uint32_t* loser_slot = loser_shard.by_mac.find(*owner)) {
        record_at(loser_shard, *loser_slot).loc.ip = Ipv4Address();
      }
      *owner = mac48;
    }
    return;
  }
  index.insert_or_assign(ip.value(), mac48);
}

void RoutingTable::release_ip(Ipv4Address ip, std::uint64_t mac48) {
  if (ip.is_zero()) return;
  auto& index = ip_shard(ip);
  // Conditional erase: the address may already belong to another host.
  if (const std::uint64_t* owner = index.find(ip.value()); owner && *owner == mac48) {
    index.erase(ip.value());
  }
}

// --- public API --------------------------------------------------------------

bool RoutingTable::learn(const MacAddress& mac, Ipv4Address ip, DatapathId dpid, PortId port,
                         SimTime now) {
  const std::uint64_t mac48 = mac.to_uint64();
  Shard& shard = shard_of_mac(mac48);
  if (const std::uint32_t* found = shard.by_mac.find(mac48)) {
    const std::uint32_t slot = *found;
    Record& rec = record_at(shard, slot);
    const bool moved = rec.loc.dpid != dpid || rec.loc.port != port;
    const bool ip_changed = !ip.is_zero() && rec.loc.ip != ip;
    if (ip_changed) {
      release_ip(rec.loc.ip, mac48);
      rec.loc.ip = ip;
      assign_ip(ip, mac48);
    }
    if (moved) {
      unlink_dpid(shard, slot);
      rec.loc.dpid = dpid;
      rec.loc.port = port;
      link_dpid(shard, slot);
    }
    rec.loc.last_seen = now;
    // An IP re-lease changes the ip->mac mapping even when the host did not
    // move: IP-keyed consumers (ARP proxy answers, decision caches) must
    // see the version move or they keep serving the old binding.
    if (moved || ip_changed) ++version_;
    return moved;
  }

  const std::uint32_t slot = allocate_slot(shard);
  Record& rec = record_at(shard, slot);
  rec.loc = HostLocation{mac, ip, dpid, port, now, now};
  rec.live = true;
  shard.by_mac.insert_or_assign(mac48, slot);
  link_dpid(shard, slot);
  file_in_wheel(shard, slot);
  if (!ip.is_zero()) assign_ip(ip, mac48);
  ++shard.live_count;
  ++total_;
  ++version_;
  return true;
}

void RoutingTable::touch(const MacAddress& mac, SimTime now) {
  const std::uint64_t mac48 = mac.to_uint64();
  Shard& shard = shard_of_mac(mac48);
  if (const std::uint32_t* slot = shard.by_mac.find(mac48)) {
    record_at(shard, *slot).loc.last_seen = now;  // wheel re-files lazily
  }
}

const HostLocation* RoutingTable::find(const MacAddress& mac) const {
  const std::uint64_t mac48 = mac.to_uint64();
  const Shard& shard = shard_of_mac(mac48);
  const std::uint32_t* slot = shard.by_mac.find(mac48);
  return slot == nullptr ? nullptr : &record_at(shard, *slot).loc;
}

const HostLocation* RoutingTable::find_by_ip(Ipv4Address ip) const {
  if (ip.is_zero()) return nullptr;
  const std::uint64_t* mac48 = ip_shard(ip).find(ip.value());
  return mac48 == nullptr ? nullptr : find(MacAddress::from_uint64(*mac48));
}

HostLocation RoutingTable::remove_slot(Shard& shard, std::uint32_t slot, bool from_chain_walk) {
  Record& rec = record_at(shard, slot);
  const HostLocation loc = rec.loc;
  release_ip(loc.ip, loc.mac.to_uint64());
  shard.by_mac.erase(loc.mac.to_uint64());
  if (!from_chain_walk) unlink_dpid(shard, slot);
  free_slot(shard, slot);
  --shard.live_count;
  --total_;
  return loc;
}

bool RoutingTable::remove(const MacAddress& mac) {
  const std::uint64_t mac48 = mac.to_uint64();
  Shard& shard = shard_of_mac(mac48);
  const std::uint32_t* slot = shard.by_mac.find(mac48);
  if (slot == nullptr) return false;
  remove_slot(shard, *slot, /*from_chain_walk=*/false);
  ++version_;
  return true;
}

std::vector<HostLocation> RoutingTable::expire(SimTime now) {
  std::vector<HostLocation> removed;
  for (Shard& shard : shards_) advance_wheel(shard, now, removed);
  if (!removed.empty()) ++version_;
  return removed;
}

std::vector<HostLocation> RoutingTable::remove_switch(DatapathId dpid) {
  std::vector<HostLocation> removed;
  for (Shard& shard : shards_) {
    const std::uint32_t* head = shard.dpid_head.find(dpid);
    if (head == nullptr) continue;
    std::uint32_t slot = *head;
    while (slot != kNil) {
      const std::uint32_t next = record_at(shard, slot).dpid_next;
      removed.push_back(remove_slot(shard, slot, /*from_chain_walk=*/true));
      slot = next;
    }
    shard.dpid_head.erase(dpid);
  }
  if (!removed.empty()) ++version_;
  return removed;
}

std::vector<HostLocation> RoutingTable::all() const {
  std::vector<HostLocation> out;
  out.reserve(total_);
  for_each([&out](const HostLocation& loc) { out.push_back(loc); });
  return out;
}

// --- scale observability -----------------------------------------------------

RoutingTable::ShardStats RoutingTable::shard_stats(std::size_t shard_index) const {
  ShardStats stats;
  if (shard_index >= shards_.size()) return stats;
  const Shard& shard = shards_[shard_index];
  stats.hosts = shard.live_count;
  stats.arena_slots = shard.arena_size;
  stats.index_capacity = shard.by_mac.capacity();
  stats.wheel_buckets = shard.wheel.size();
  stats.bytes = shard.chunks.size() * kChunkSlots * sizeof(Record) +
                shard.by_mac.memory_bytes() + shard.dpid_head.memory_bytes();
  for (const auto& [bucket, entries] : shard.wheel) {
    stats.bytes += sizeof(bucket) + entries.capacity() * sizeof(entries[0]) + 48;
  }
  return stats;
}

std::size_t RoutingTable::size_on_switch(DatapathId dpid) const {
  std::size_t count = 0;
  for (const Shard& shard : shards_) {
    const std::uint32_t* head = shard.dpid_head.find(dpid);
    if (head == nullptr) continue;
    for (std::uint32_t slot = *head; slot != kNil; slot = record_at(shard, slot).dpid_next) {
      ++count;
    }
  }
  return count;
}

std::size_t RoutingTable::memory_bytes() const {
  std::size_t bytes = sizeof(*this);
  for (std::size_t i = 0; i < shards_.size(); ++i) bytes += shard_stats(i).bytes;
  for (const auto& index : ip_shards_) bytes += index.memory_bytes();
  return bytes;
}

}  // namespace livesec::ctrl
