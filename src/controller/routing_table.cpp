#include "controller/routing_table.h"

namespace livesec::ctrl {

bool RoutingTable::learn(const MacAddress& mac, Ipv4Address ip, DatapathId dpid, PortId port,
                         SimTime now) {
  auto it = by_mac_.find(mac);
  if (it == by_mac_.end()) {
    HostLocation loc;
    loc.mac = mac;
    loc.ip = ip;
    loc.dpid = dpid;
    loc.port = port;
    loc.first_seen = now;
    loc.last_seen = now;
    by_mac_.emplace(mac, loc);
    if (!ip.is_zero()) by_ip_[ip] = mac;
    ++version_;
    return true;
  }
  HostLocation& loc = it->second;
  const bool moved = loc.dpid != dpid || loc.port != port;
  if (!ip.is_zero() && loc.ip != ip) {
    by_ip_.erase(loc.ip);
    loc.ip = ip;
    by_ip_[ip] = mac;
  }
  loc.dpid = dpid;
  loc.port = port;
  loc.last_seen = now;
  if (moved) ++version_;
  return moved;
}

void RoutingTable::touch(const MacAddress& mac, SimTime now) {
  auto it = by_mac_.find(mac);
  if (it != by_mac_.end()) it->second.last_seen = now;
}

const HostLocation* RoutingTable::find(const MacAddress& mac) const {
  auto it = by_mac_.find(mac);
  return it == by_mac_.end() ? nullptr : &it->second;
}

const HostLocation* RoutingTable::find_by_ip(Ipv4Address ip) const {
  auto it = by_ip_.find(ip);
  if (it == by_ip_.end()) return nullptr;
  return find(it->second);
}

bool RoutingTable::remove(const MacAddress& mac) {
  auto it = by_mac_.find(mac);
  if (it == by_mac_.end()) return false;
  by_ip_.erase(it->second.ip);
  by_mac_.erase(it);
  ++version_;
  return true;
}

std::vector<HostLocation> RoutingTable::expire(SimTime now) {
  std::vector<HostLocation> removed;
  for (auto it = by_mac_.begin(); it != by_mac_.end();) {
    if (timeout_ > 0 && now - it->second.last_seen >= timeout_) {
      removed.push_back(it->second);
      by_ip_.erase(it->second.ip);
      it = by_mac_.erase(it);
    } else {
      ++it;
    }
  }
  if (!removed.empty()) ++version_;
  return removed;
}

std::vector<HostLocation> RoutingTable::remove_switch(DatapathId dpid) {
  std::vector<HostLocation> removed;
  for (auto it = by_mac_.begin(); it != by_mac_.end();) {
    if (it->second.dpid == dpid) {
      removed.push_back(it->second);
      by_ip_.erase(it->second.ip);
      it = by_mac_.erase(it);
    } else {
      ++it;
    }
  }
  if (!removed.empty()) ++version_;
  return removed;
}

std::vector<HostLocation> RoutingTable::all() const {
  std::vector<HostLocation> out;
  out.reserve(by_mac_.size());
  for (const auto& [mac, loc] : by_mac_) out.push_back(loc);
  return out;
}

}  // namespace livesec::ctrl
