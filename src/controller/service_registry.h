// Registry of live service elements and their reported load
// (paper §III.D.1-2: SEs announce themselves and their load via ONLINE
// messages; the controller manages them like an OS manages devices).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/ip_address.h"
#include "common/mac_address.h"
#include "common/types.h"
#include "services/message.h"

namespace livesec::ctrl {

/// Controller-side record of one service element.
struct SeRecord {
  std::uint64_t se_id = 0;
  MacAddress mac;
  Ipv4Address ip;
  svc::ServiceType service = svc::ServiceType::kIntrusionDetection;
  DatapathId dpid = 0;          // AS switch it is plugged into
  PortId port = kInvalidPort;   // observed ingress port of its messages
  SimTime first_seen = 0;
  SimTime last_heartbeat = 0;
  svc::OnlineMessage last_report;

  // Load-balancer bookkeeping: flows assigned since the last heartbeat.
  std::uint64_t assigned_flows_total = 0;
  std::uint64_t assigned_since_report = 0;

  /// Effective load metric used by min-load selection: the freshest SE
  /// report plus what we have assigned since it was sent (paper §V.B.2:
  /// "the load is judged according to the number of received and processed
  /// packets").
  double load_estimate() const {
    return static_cast<double>(last_report.packets_per_second) +
           static_cast<double>(last_report.queued_packets) +
           static_cast<double>(assigned_since_report);
  }
};

/// Live SE directory keyed by se_id, with per-service-type pools and
/// heartbeat-based liveness.
class ServiceRegistry {
 public:
  /// SEs missing heartbeats longer than this are pruned by expire().
  explicit ServiceRegistry(SimTime liveness_timeout = 6 * kSecond)
      : timeout_(liveness_timeout) {}

  /// Applies an ONLINE message observed at (dpid, port) from MAC/IP.
  /// Returns true when the SE is new (caller raises SeOnline event).
  bool handle_online(std::uint64_t se_id, const MacAddress& mac, Ipv4Address ip, DatapathId dpid,
                     PortId port, const svc::OnlineMessage& report, SimTime now);

  const SeRecord* find(std::uint64_t se_id) const;
  SeRecord* find_mutable(std::uint64_t se_id);
  const SeRecord* find_by_mac(const MacAddress& mac) const;

  /// All live SEs providing `service` (insertion-ordered by se_id).
  std::vector<const SeRecord*> pool(svc::ServiceType service) const;

  bool remove(std::uint64_t se_id);

  /// Prunes silent SEs; returns the removed records.
  std::vector<SeRecord> expire(SimTime now);

  /// Notes a load-balancer assignment for min-load accounting.
  void note_assignment(std::uint64_t se_id);

  std::size_t size() const { return records_.size(); }
  std::vector<const SeRecord*> all() const;

  /// Bumped when the SE pool changes shape (fresh SE, migration, removal,
  /// expiry) — NOT on heartbeat refreshes. Decision caches compare this to
  /// detect stale SE assignments.
  std::uint64_t version() const { return version_; }

 private:
  SimTime timeout_;
  std::uint64_t version_ = 0;
  std::map<std::uint64_t, SeRecord> records_;
};

}  // namespace livesec::ctrl
