#include "controller/policy_parser.h"

#include <charconv>
#include <sstream>

namespace livesec::ctrl {

namespace {

bool parse_u16(std::string_view text, std::uint16_t& out) {
  unsigned value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size() || value > 0xFFFF) return false;
  out = static_cast<std::uint16_t>(value);
  return true;
}

bool parse_proto(std::string_view text, std::uint8_t& out) {
  if (text == "tcp") {
    out = 6;
  } else if (text == "udp") {
    out = 17;
  } else if (text == "icmp") {
    out = 1;
  } else {
    unsigned value = 0;
    const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size() || value > 255) return false;
    out = static_cast<std::uint8_t>(value);
  }
  return true;
}

/// Parses "10.0.0.0/24" or "10.0.0.1" into address + prefix.
bool parse_cidr(std::string_view text, Ipv4Address& addr, std::uint8_t& prefix) {
  prefix = 32;
  std::string_view ip_part = text;
  if (const auto slash = text.find('/'); slash != std::string_view::npos) {
    ip_part = text.substr(0, slash);
    const std::string_view len = text.substr(slash + 1);
    unsigned value = 0;
    const auto [ptr, ec] = std::from_chars(len.data(), len.data() + len.size(), value);
    if (ec != std::errc() || ptr != len.data() + len.size() || value > 32) return false;
    prefix = static_cast<std::uint8_t>(value);
  }
  const auto parsed = Ipv4Address::parse(ip_part);
  if (!parsed) return false;
  addr = *parsed;
  return true;
}

bool parse_service(std::string_view text, svc::ServiceType& out) {
  if (text == "ids") {
    out = svc::ServiceType::kIntrusionDetection;
  } else if (text == "l7") {
    out = svc::ServiceType::kProtocolIdentification;
  } else if (text == "scan") {
    out = svc::ServiceType::kVirusScan;
  } else if (text == "content") {
    out = svc::ServiceType::kContentInspection;
  } else if (text == "firewall") {
    out = svc::ServiceType::kFirewall;
  } else {
    return false;
  }
  return true;
}

const char* service_token(svc::ServiceType type) {
  switch (type) {
    case svc::ServiceType::kIntrusionDetection: return "ids";
    case svc::ServiceType::kProtocolIdentification: return "l7";
    case svc::ServiceType::kVirusScan: return "scan";
    case svc::ServiceType::kContentInspection: return "content";
    case svc::ServiceType::kFirewall: return "firewall";
  }
  return "?";
}

}  // namespace

std::vector<Policy> parse_policies(std::string_view text, std::vector<std::string>& errors) {
  std::vector<Policy> policies;
  std::istringstream lines{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string name, action;
    std::int32_t priority = 0;
    if (!(fields >> name)) continue;  // blank line
    auto fail = [&](const std::string& why) {
      errors.push_back("line " + std::to_string(line_no) + ": " + why);
    };
    if (!(fields >> priority >> action)) {
      fail("expected '<name> <priority> <action> ...'");
      continue;
    }
    Policy policy;
    policy.name = name;
    policy.priority = priority;
    if (action == "allow") {
      policy.action = PolicyAction::kAllow;
    } else if (action == "deny") {
      policy.action = PolicyAction::kDeny;
    } else if (action == "redirect") {
      policy.action = PolicyAction::kRedirect;
    } else {
      fail("unknown action '" + action + "'");
      continue;
    }

    bool ok = true;
    std::string token;
    while (ok && fields >> token) {
      const auto eq = token.find('=');
      if (eq == std::string::npos) {
        fail("expected key=value, got '" + token + "'");
        ok = false;
        break;
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "src_mac" || key == "dst_mac") {
        const auto mac = MacAddress::parse(value);
        if (!mac) {
          fail("bad MAC '" + value + "'");
          ok = false;
          break;
        }
        (key == "src_mac" ? policy.src_mac : policy.dst_mac) = *mac;
      } else if (key == "src_ip" || key == "dst_ip") {
        Ipv4Address addr;
        std::uint8_t prefix = 32;
        if (!parse_cidr(value, addr, prefix)) {
          fail("bad CIDR '" + value + "'");
          ok = false;
          break;
        }
        if (key == "src_ip") {
          policy.nw_src = addr;
          policy.nw_src_prefix = prefix;
        } else {
          policy.nw_dst = addr;
          policy.nw_dst_prefix = prefix;
        }
      } else if (key == "proto") {
        std::uint8_t proto = 0;
        if (!parse_proto(value, proto)) {
          fail("bad proto '" + value + "'");
          ok = false;
          break;
        }
        policy.nw_proto = proto;
      } else if (key == "dport") {
        std::uint16_t port = 0;
        if (!parse_u16(value, port)) {
          fail("bad dport '" + value + "'");
          ok = false;
          break;
        }
        policy.tp_dst = port;
      } else if (key == "vlan") {
        std::uint16_t vlan = 0;
        if (!parse_u16(value, vlan)) {
          fail("bad vlan '" + value + "'");
          ok = false;
          break;
        }
        policy.vlan_id = vlan;
      } else if (key == "chain") {
        std::size_t start = 0;
        while (start <= value.size()) {
          const auto comma = value.find(',', start);
          const std::string item = comma == std::string::npos
                                       ? value.substr(start)
                                       : value.substr(start, comma - start);
          svc::ServiceType service;
          if (!parse_service(item, service)) {
            fail("unknown service '" + item + "'");
            ok = false;
            break;
          }
          policy.service_chain.push_back(service);
          if (comma == std::string::npos) break;
          start = comma + 1;
        }
      } else if (key == "granularity") {
        if (value == "flow") {
          policy.granularity = LbGranularity::kPerFlow;
        } else if (value == "user") {
          policy.granularity = LbGranularity::kPerUser;
        } else {
          fail("bad granularity '" + value + "'");
          ok = false;
          break;
        }
      } else {
        fail("unknown key '" + key + "'");
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    if (policy.action == PolicyAction::kRedirect && policy.service_chain.empty()) {
      fail("redirect policy needs chain=");
      continue;
    }
    policies.push_back(std::move(policy));
  }
  return policies;
}

std::string format_policy(const Policy& policy) {
  std::ostringstream out;
  out << policy.name << " " << policy.priority << " " << policy_action_name(policy.action);
  if (policy.src_mac) out << " src_mac=" << policy.src_mac->to_string();
  if (policy.dst_mac) out << " dst_mac=" << policy.dst_mac->to_string();
  if (policy.nw_src) {
    out << " src_ip=" << policy.nw_src->to_string() << "/"
        << static_cast<int>(policy.nw_src_prefix.value_or(32));
  }
  if (policy.nw_dst) {
    out << " dst_ip=" << policy.nw_dst->to_string() << "/"
        << static_cast<int>(policy.nw_dst_prefix.value_or(32));
  }
  if (policy.nw_proto) out << " proto=" << static_cast<int>(*policy.nw_proto);
  if (policy.tp_dst) out << " dport=" << *policy.tp_dst;
  if (policy.vlan_id) out << " vlan=" << *policy.vlan_id;
  if (!policy.service_chain.empty()) {
    out << " chain=";
    for (std::size_t i = 0; i < policy.service_chain.size(); ++i) {
      if (i) out << ",";
      out << service_token(policy.service_chain[i]);
    }
  }
  if (policy.action == PolicyAction::kRedirect) {
    out << " granularity=" << (policy.granularity == LbGranularity::kPerUser ? "user" : "flow");
  }
  return out.str();
}

}  // namespace livesec::ctrl
