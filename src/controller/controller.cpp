#include "controller/controller.h"

#include <algorithm>

#include "common/logging.h"
#include "openflow/wire.h"
#include "packet/buffer.h"
#include "packet/dhcp.h"
#include "services/service_element.h"
#include "sim/simulator.h"
#include "topology/lldp.h"

namespace livesec::ctrl {

Controller::Controller(sim::Simulator& sim) : Controller(sim, Config{}) {}

Controller::Controller(sim::Simulator& sim, Config config)
    : sim_(&sim),
      config_(config),
      routing_(config.host_timeout, config.routing_shards),
      registry_(config.se_liveness_timeout),
      policies_(config.default_action),
      ca_(config.cert_secret),
      lb_(config.lb_strategy),
      events_(config.event_store_capacity),
      flows_by_host_(config.routing_shards) {
  // Pre-size the per-flow tables: flow setup inserts into each of these on
  // every new flow, and growing them one rehash at a time under load puts
  // the rehash right on the packet-in latency path.
  flows_.reserve(1 << 12);
  reverse_index_.reserve(1 << 12);
  cookie_index_.reserve(1 << 12);
  decision_cache_.reserve(std::min<std::size_t>(config_.decision_cache_capacity, 1 << 12));
  install_policy_observer();
}

// --- replication -------------------------------------------------------------

void Controller::set_replication_sink(ha::ReplicationSink* sink) { repl_sink_ = sink; }

void Controller::replicate(ha::RecordBody body) {
  if (repl_sink_ != nullptr && !applying_replicated_) repl_sink_->replicate(std::move(body));
}

void Controller::install_policy_observer() {
  policies_.set_mutation_observer([this](const PolicyTable::PolicyMutation& m) {
    switch (m.kind) {
      case PolicyTable::PolicyMutation::Kind::kAdded:
        replicate(ha::PolicyAddedRecord{*m.policy});
        break;
      case PolicyTable::PolicyMutation::Kind::kRemoved:
        replicate(ha::PolicyRemovedRecord{m.id});
        break;
      case PolicyTable::PolicyMutation::Kind::kDefaultAction:
        replicate(ha::DefaultActionRecord{m.action});
        break;
    }
  });
}

void Controller::attach_channel(DatapathId dpid, of::SecureChannel& channel,
                                topo::NodeKind kind) {
  SwitchState& state = switches_[dpid];
  state.channel = &channel;
  state.kind = kind;
  ++epoch_;  // cached decisions may predate this channel
}

void Controller::register_ls_port(DatapathId dpid, PortId port) {
  auto it = ls_ports_.find(dpid);
  if (it != ls_ports_.end() && it->second == port) return;
  ls_ports_[dpid] = port;
  ++epoch_;  // cached templates steer through the old uplink
  replicate(ha::LsPortRecord{dpid, port});
}

std::optional<PortId> Controller::ls_port(DatapathId dpid) const {
  auto it = ls_ports_.find(dpid);
  if (it == ls_ports_.end()) return std::nullopt;
  return it->second;
}

// --- channel events ----------------------------------------------------------

void Controller::handle_switch_connected(DatapathId dpid, const of::FeaturesReply& features) {
  SwitchState& state = switches_[dpid];
  state.connected = true;
  state.num_ports = features.num_ports;
  state.name = features.name;
  ++epoch_;  // cached decisions were built while this switch was absent
  last_switch_echo_[dpid] = sim_->now();
  // A (re)connect restarts the datapath's buffer space: waiters parked
  // against the previous connection hold buffer ids the switch no longer
  // honors, so releasing them later would misfire.
  drop_pending_for_switch(dpid);
  replicate(ha::SwitchUpRecord{dpid, features.num_ports, features.name});

  topo::TopologyGraph::SwitchInfo info;
  info.dpid = dpid;
  info.name = features.name;
  info.kind = state.kind;
  info.joined_at = sim_->now();
  topology_.add_switch(info);

  raise(mon::EventType::kSwitchJoin, features.name, "dpid=" + std::to_string(dpid), dpid);
  send_lldp_probes(dpid);
}

void Controller::handle_switch_disconnected(DatapathId dpid) {
  auto it = switches_.find(dpid);
  if (it == switches_.end()) return;
  // Idempotent: an echo-timeout declaration and the channel's own close (or
  // two staggered closes around a failover) may both land here.
  if (!it->second.connected) return;
  it->second.connected = false;
  last_switch_echo_.erase(dpid);
  raise(mon::EventType::kSwitchLeave, it->second.name, "dpid=" + std::to_string(dpid), dpid);
  replicate(ha::SwitchDownRecord{dpid});
  topology_.remove_switch(dpid);
  // Tear down every flow with a hop (ingress, egress or SE steering entry)
  // on the dead switch: its FlowRemoved can never arrive, so without this
  // the FlowRecord and its index entries leak forever, and entries on
  // surviving switches keep forwarding into a black hole. A flow's entries
  // sit only on its endpoints' switches and its chain SEs' switches, so the
  // per-host index plus an SE sweep covers them all without scanning flows_
  // (hosts that moved off this switch already had their stale flows torn
  // down when the move was learned).
  for (const HostLocation& host : routing_.remove_switch(dpid)) {
    replicate(ha::HostRemovedRecord{host.mac});
    raise(mon::EventType::kHostLeave, host.mac.to_string(), "switch disconnected", dpid);
    teardown_flows_of_host(host.mac);
  }
  for (const SeRecord* se : registry_.all()) {
    if (se->dpid == dpid) teardown_flows_through_se(se->se_id);
  }
  drop_pending_for_switch(dpid);
  if (reconciling_ && reconcile_pending_.erase(dpid) > 0 && reconcile_pending_.empty()) {
    finish_reconciliation();
  }
  switch_loads_.erase(dpid);
  ls_ports_.erase(dpid);
  ++epoch_;  // cached decisions may route through or ingress at this switch
}

void Controller::handle_switch_message(DatapathId dpid, const of::Message& message) {
  if (const auto* pin = std::get_if<of::PacketIn>(&message)) {
    on_packet_in(dpid, *pin);
  } else if (const auto* removed = std::get_if<of::FlowRemoved>(&message)) {
    on_flow_removed(dpid, *removed);
  } else if (const auto* echo = std::get_if<of::EchoRequest>(&message)) {
    auto it = switches_.find(dpid);
    if (it != switches_.end() && it->second.channel != nullptr) {
      it->second.channel->send_to_switch(of::EchoReply{echo->token});
    }
  } else if (std::get_if<of::EchoReply>(&message)) {
    last_switch_echo_[dpid] = sim_->now();
  } else if (const auto* reply = std::get_if<of::StatsReply>(&message)) {
    // Post-failover audit: this reply is the switch's answer to the
    // reconciliation StatsRequest.
    if (reconciling_ && reconcile_pending_.erase(dpid) > 0) {
      audit_switch_stats(dpid, *reply);
      if (reconcile_pending_.empty()) finish_reconciliation();
    }
    // Fold the snapshot into the per-switch load view.
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    for (const auto& flow : reply->flows) {
      packets += flow.packet_count;
      bytes += flow.byte_count;
    }
    SwitchLoad& load = switch_loads_[dpid];
    const SimTime now = sim_->now();
    if (load.updated_at > 0 && now > load.updated_at && packets >= load.total_packets) {
      const double dt = to_seconds(now - load.updated_at);
      load.packets_per_second = static_cast<double>(packets - load.total_packets) / dt;
      load.bits_per_second = static_cast<double>(bytes - load.total_bytes) * 8.0 / dt;
    }
    load.total_packets = packets;
    load.total_bytes = bytes;
    load.flow_count = reply->flows.size();
    load.updated_at = now;
  }
}

// --- discovery ----------------------------------------------------------------

void Controller::run_discovery() {
  for (const auto& [dpid, state] : switches_) {
    if (state.connected) send_lldp_probes(dpid);
  }
}

void Controller::send_lldp_probes(DatapathId dpid) {
  const auto it = switches_.find(dpid);
  if (it == switches_.end()) {
    ++stats_.unknown_dpid_drops;
    return;
  }
  const SwitchState& state = it->second;
  if (state.channel == nullptr) return;
  for (PortId port = 0; port < state.num_ports; ++port) {
    topo::LldpInfo info;
    info.chassis_id = dpid;
    info.port_id = port;
    of::PacketOut out;
    out.in_port = kInvalidPort;
    out.actions = of::output_to(port);
    out.packet = pkt::finalize(info.to_packet());
    state.channel->send_to_switch(std::move(out));
  }
}

void Controller::handle_lldp(DatapathId dpid, PortId in_port, const pkt::Packet& packet) {
  const auto info = topo::LldpInfo::from_packet(packet);
  if (!info || info->chassis_id == dpid) return;
  // The probe traversed the legacy fabric: the arrival port is this switch's
  // Legacy-Switching uplink, and the emitting port is the peer's. A switch
  // re-cabled to a different uplink port must overwrite the stale record, or
  // two-hop routing keeps steering into the dead port.
  const auto learn_uplink = [this](DatapathId sw, PortId port) {
    auto [it, inserted] = ls_ports_.try_emplace(sw, port);
    if (!inserted && it->second == port) return;
    it->second = port;
    ++epoch_;  // cached templates steer through the old uplink
    replicate(ha::LsPortRecord{sw, port});
  };
  learn_uplink(dpid, in_port);
  learn_uplink(info->chassis_id, info->port_id);
  // New uplink knowledge may be exactly what parked setups were waiting for.
  if (!pending_setups_.empty()) retry_all_pending();

  const topo::AsLink link{info->chassis_id, info->port_id, dpid, in_port};
  if (!topology_.links().find(link.src, link.dst)) {
    topology_.links().add(link);
    ++stats_.lldp_links;
    replicate(ha::LinkRecord{link.src, link.src_port, link.dst, link.dst_port});
    raise(mon::EventType::kLinkDiscovered,
          "dpid" + std::to_string(link.src) + "<->dpid" + std::to_string(link.dst), "", dpid);
  }
}

// --- packet-in pipeline ---------------------------------------------------------

void Controller::on_packet_in(DatapathId dpid, const of::PacketIn& pin) {
  ++stats_.packet_ins;
  if (!switches_.contains(dpid)) {
    // Packet-in from a dpid that never attached a channel (misbehaving or
    // half-configured datapath): every downstream handler would either learn
    // an unroutable location or install state it can never clean up.
    ++stats_.unknown_dpid_drops;
    return;
  }
  const pkt::Packet& packet = *pin.packet;

  if (packet.eth.ether_type == static_cast<std::uint16_t>(pkt::EtherType::kLldp)) {
    handle_lldp(dpid, pin.in_port, packet);
    return;
  }
  if (svc::is_daemon_packet(packet)) {
    handle_daemon(dpid, pin.in_port, packet);
    return;  // deliberately no flow entry (paper §III.D.1)
  }
  if (packet.arp) {
    handle_arp(dpid, pin);
    return;
  }
  if (pkt::is_dhcp_packet(packet)) {
    handle_dhcp(dpid, pin);
    return;  // DHCP is proxied; never a data-path flow
  }
  if (packet.ipv4) {
    // Any data-plane packet refreshes the sender's liveness.
    routing_.touch(packet.eth.src, sim_->now());
    handle_flow_setup(dpid, pin);
  }
  // Non-IP, non-ARP unicast: ignored (no policy semantics defined).
}

// --- SE daemon messages ----------------------------------------------------------

void Controller::handle_daemon(DatapathId dpid, PortId in_port, const pkt::Packet& packet) {
  const auto message = svc::DaemonMessage::decode(packet.payload_view());
  if (!message) return;  // wrong identifier/format: not a legitimate message
  ++stats_.daemon_messages;

  if (!ca_.validate(message->se_id, message->cert_token)) {
    ++stats_.cert_rejections;
    raise(mon::EventType::kCertificationRejected, "se" + std::to_string(message->se_id),
          "invalid certificate", dpid, message->se_id, 8);
    // Paper §III.D.1: flows generated by an uncertified SE are dropped at
    // the ingress AS switch.
    install_drop(dpid, in_port, pkt::FlowKey::from_packet(packet));
    return;
  }

  if (const auto* online = std::get_if<svc::OnlineMessage>(&message->body)) {
    // Detect VM migration (paper §III.D.1: "dynamic migration for elastic
    // utilization of network service resources") before the record updates.
    const SeRecord* existing = registry_.find(message->se_id);
    const bool migrated =
        existing != nullptr && (existing->dpid != dpid || existing->port != in_port);

    const bool fresh =
        registry_.handle_online(message->se_id, packet.eth.src,
                                packet.ipv4 ? packet.ipv4->src : Ipv4Address(), dpid, in_port,
                                *online, sim_->now());
    if (migrated) {
      // Stale paths still steer to the old attachment point: tear them down
      // (they re-setup through the new location on the next packet), and
      // re-teach the fabric where the SE now lives.
      const std::size_t torn = teardown_flows_through_se(message->se_id);
      primed_.erase(packet.eth.src);
      prime_fabric_location(packet.eth.src, packet.ipv4 ? packet.ipv4->src : Ipv4Address(), dpid);
      topo::TopologyGraph::AttachedNode node;
      node.name = "se" + std::to_string(message->se_id) + ":" +
                  svc::service_type_name(online->service);
      node.kind = topo::NodeKind::kServiceElement;
      node.dpid = dpid;
      node.port = in_port;
      node.joined_at = sim_->now();
      topology_.upsert_node("se" + std::to_string(message->se_id), node);
      raise(mon::EventType::kSeMigrated, "se" + std::to_string(message->se_id),
            "now at dpid=" + std::to_string(dpid) + ", " + std::to_string(torn) +
                " flows re-routed",
            dpid, message->se_id);
    }
    routing_.learn(packet.eth.src, packet.ipv4 ? packet.ipv4->src : Ipv4Address(), dpid, in_port,
                   sim_->now());
    replicate(ha::SeUpsertRecord{message->se_id, packet.eth.src,
                                 packet.ipv4 ? packet.ipv4->src : Ipv4Address(), online->service,
                                 dpid, in_port, sim_->now()});
    replicate(ha::HostLearnedRecord{packet.eth.src,
                                    packet.ipv4 ? packet.ipv4->src : Ipv4Address(), dpid, in_port,
                                    sim_->now()});
    prime_fabric_location(packet.eth.src, packet.ipv4 ? packet.ipv4->src : Ipv4Address(), dpid);
    if (!pending_setups_.empty()) retry_pending_for_host(packet.eth.src);
    if (fresh) {
      topo::TopologyGraph::AttachedNode node;
      node.name = "se" + std::to_string(message->se_id) + ":" +
                  svc::service_type_name(online->service);
      node.kind = topo::NodeKind::kServiceElement;
      node.dpid = dpid;
      node.port = in_port;
      node.joined_at = sim_->now();
      topology_.upsert_node("se" + std::to_string(message->se_id), node);
      raise(mon::EventType::kSeOnline, "se" + std::to_string(message->se_id),
            svc::service_type_name(online->service), dpid, message->se_id);
    }
  } else if (const auto* event = std::get_if<svc::EventMessage>(&message->body)) {
    const SeRecord* se = registry_.find(message->se_id);
    if (se != nullptr) handle_daemon_event(*se, *event);
  } else if (const auto* verdict = std::get_if<svc::VerdictMessage>(&message->body)) {
    const SeRecord* se = registry_.find(message->se_id);
    if (se != nullptr) handle_daemon_verdict(*se, *verdict);
  }
}

void Controller::handle_daemon_event(const SeRecord& se, const svc::EventMessage& event) {
  // Map the flow the SE observed (dl_dst rewritten to the SE's MAC) back to
  // the original end-to-end flow, and fold reverse-direction reports onto
  // the forward session key.
  pkt::FlowKey original = event.flow;
  if (auto it = steered_index_.find(event.flow); it != steered_index_.end()) {
    original = it->second;
  }
  if (auto it = reverse_index_.find(original); it != reverse_index_.end()) {
    original = it->second;
  }
  auto record_it = flows_.find(original);

  switch (event.kind) {
    case svc::EventKind::kAttackDetected:
    case svc::EventKind::kVirusFound:
    case svc::EventKind::kContentViolation:
    case svc::EventKind::kFirewallDenied: {
      // The firewall SE already drops the packets it denies; blocking the
      // flow at its ingress additionally stops the denied traffic from
      // consuming fabric and SE capacity (same path as attack handling).
      const mon::EventType type =
          event.kind == svc::EventKind::kAttackDetected ? mon::EventType::kAttackDetected
          : event.kind == svc::EventKind::kVirusFound   ? mon::EventType::kVirusFound
          : event.kind == svc::EventKind::kFirewallDenied
              ? mon::EventType::kPolicyDenied
              : mon::EventType::kContentViolation;
      raise(type, original.dl_src.to_string(), event.description, se.dpid, se.se_id,
            event.severity, &original);
      block_flow_at_ingress(original, se.se_id, event.severity);
      break;
    }
    case svc::EventKind::kProtocolIdentified: {
      const auto proto = static_cast<svc::l7::AppProtocol>(event.rule_id);
      raise(mon::EventType::kProtocolIdentified, original.dl_src.to_string(),
            svc::l7::app_protocol_name(proto), se.dpid, se.se_id, 0, &original);
      if (record_it != flows_.end()) {
        FlowRecord& record = record_it->second;
        if (record.app == svc::l7::AppProtocol::kUnknown) {
          record.app = proto;
          monitor_.record_flow_identified(record.user, proto);
          // Aggregate flow control (paper §IV.C): too many active flows of
          // this app for this user => block the newest flow at the ingress.
          if (!flow_control_.admits(monitor_, record.user, proto)) {
            flow_control_.record_rejection();
            blocked_flows_.insert_or_assign(
                record.key, BlockedFlowInfo{record.ingress_dpid, record.ingress_port});
            replicate(
                ha::FlowBlockedRecord{record.key, record.ingress_dpid, record.ingress_port});
            forget_offload(record.key);
            record.blocked = true;
            of::FlowMod mod;
            mod.command = of::FlowModCommand::kModifyStrict;
            mod.entry.match = of::Match::exact(record.ingress_port, record.key);
            mod.entry.priority = config_.flow_priority;
            mod.entry.actions = of::drop();
            send_flow_mod(record.ingress_dpid, mod);
            raise(mon::EventType::kAggregateLimitHit, record.user.to_string(),
                  svc::l7::app_protocol_name(proto), record.ingress_dpid, se.se_id, 3,
                  &record.key);
          }
        }
      }
      break;
    }
  }
}

void Controller::block_flow_at_ingress(const pkt::FlowKey& original, std::uint64_t se_id,
                                       std::uint8_t severity) {
  auto record_it = flows_.find(original);
  BlockedFlowInfo ingress;
  if (record_it != flows_.end()) {
    ingress = BlockedFlowInfo{record_it->second.ingress_dpid, record_it->second.ingress_port};
  }
  blocked_flows_.insert_or_assign(original, ingress);
  replicate(ha::FlowBlockedRecord{original, ingress.ingress_dpid, ingress.ingress_port});
  // A blocked flow must never replay a benign cut-through.
  forget_offload(original);
  if (record_it != flows_.end() && !record_it->second.blocked) {
    FlowRecord& record = record_it->second;
    record.blocked = true;
    // Paper §IV.A: "modify relevant flow entries with the drop action in
    // the ingress AS switch, to block this flow at the entrance".
    of::FlowMod mod;
    mod.command = of::FlowModCommand::kModifyStrict;
    mod.entry.match = of::Match::exact(record.ingress_port, record.key);
    mod.entry.priority = config_.flow_priority;
    mod.entry.actions = of::drop();
    // Bounds the entry if the modify falls back to an insert (entry expired
    // under the in-flight event) — same lifetime as install_drop().
    mod.entry.idle_timeout = config_.flow_idle_timeout * 3;
    send_flow_mod(record.ingress_dpid, mod);
    ++stats_.flows_blocked_by_event;
    raise(mon::EventType::kFlowBlocked, original.dl_src.to_string(),
          "blocked at ingress dpid=" + std::to_string(record.ingress_dpid), record.ingress_dpid,
          se_id, severity, &original);
  }
}

void Controller::handle_daemon_verdict(const SeRecord& se, const svc::VerdictMessage& verdict) {
  ++stats_.verdict_messages;
  // Same key mapping as event reports: steered variant -> original forward
  // key, reverse direction folded onto the session's forward key.
  pkt::FlowKey original = verdict.flow;
  if (auto it = steered_index_.find(original); it != steered_index_.end()) {
    original = it->second;
  }
  if (auto it = reverse_index_.find(original); it != reverse_index_.end()) {
    original = it->second;
  }

  switch (verdict.verdict) {
    case svc::FlowVerdict::kMalicious:
      // Same containment as an attack event: drop at the entrance.
      raise(mon::EventType::kAttackDetected, original.dl_src.to_string(),
            "malicious verdict rule=" + std::to_string(verdict.rule_id), se.dpid, se.se_id,
            verdict.severity, &original);
      block_flow_at_ingress(original, se.se_id, verdict.severity);
      break;
    case svc::FlowVerdict::kBenign: {
      if (!config_.enable_flow_offload) break;
      auto record_it = flows_.find(original);
      if (record_it == flows_.end()) break;
      FlowRecord& record = record_it->second;
      if (record.blocked || record.se_ids.empty()) break;
      if (std::find(record.benign_se_ids.begin(), record.benign_se_ids.end(), se.se_id) ==
          record.benign_se_ids.end()) {
        record.benign_se_ids.push_back(se.se_id);
      }
      // Cut through only once every SE of the chain has cleared the flow —
      // one engine's benign says nothing about what the next would find.
      const bool all_clear =
          std::all_of(record.se_ids.begin(), record.se_ids.end(), [&](std::uint64_t id) {
            return std::find(record.benign_se_ids.begin(), record.benign_se_ids.end(), id) !=
                   record.benign_se_ids.end();
          });
      if (all_clear) offload_flow(original, record, se, verdict.inspected_bytes);
      break;
    }
    case svc::FlowVerdict::kKeepInspecting:
      // Progress report: the SE crossed its byte budget without a conclusive
      // verdict (e.g. an undecided classifier). Keep the redirect.
      break;
  }
}

// --- ARP: location discovery + directory proxy -----------------------------------

void Controller::handle_arp(DatapathId dpid, const of::PacketIn& pin) {
  const auto sw_it = switches_.find(dpid);
  if (sw_it == switches_.end()) {
    // Packet-in from a dpid that never attached a channel (misbehaving or
    // half-configured datapath): ignore instead of throwing, and don't learn
    // a location the controller could never route to.
    ++stats_.unknown_dpid_drops;
    return;
  }
  const pkt::Packet& packet = *pin.packet;
  const pkt::ArpHeader& arp = *packet.arp;

  const HostLocation* known = routing_.find(arp.sender_mac);
  const bool moved = known != nullptr && (known->dpid != dpid || known->port != pin.in_port);
  const bool fresh =
      routing_.learn(arp.sender_mac, arp.sender_ip, dpid, pin.in_port, sim_->now()) && !moved;
  replicate(ha::HostLearnedRecord{arp.sender_mac, arp.sender_ip, dpid, pin.in_port, sim_->now()});

  if (moved && registry_.find_by_mac(arp.sender_mac) == nullptr) {
    // Host mobility (paper §III.D: "the mobility of users and VMs can be
    // guaranteed by existing OpenFlow technologies"): stale paths are torn
    // down and the fabric re-primed toward the new attachment point.
    const std::size_t torn = teardown_flows_of_host(arp.sender_mac);
    primed_.erase(arp.sender_mac);
    prime_fabric_location(arp.sender_mac, arp.sender_ip, dpid);
    topo::TopologyGraph::AttachedNode node;
    node.name = arp.sender_ip.to_string();
    node.kind = topo::NodeKind::kHost;
    node.dpid = dpid;
    node.port = pin.in_port;
    node.joined_at = sim_->now();
    topology_.upsert_node(arp.sender_mac.to_string(), node);
    raise(mon::EventType::kHostMoved, arp.sender_mac.to_string(),
          "now at dpid=" + std::to_string(dpid) + ", " + std::to_string(torn) +
              " flows re-routed",
          dpid);
  }
  if (fresh && registry_.find_by_mac(arp.sender_mac) == nullptr) {
    topo::TopologyGraph::AttachedNode node;
    node.name = arp.sender_ip.to_string();
    node.kind = topo::NodeKind::kHost;
    node.dpid = dpid;
    node.port = pin.in_port;
    node.joined_at = sim_->now();
    topology_.upsert_node(arp.sender_mac.to_string(), node);
    raise(mon::EventType::kHostJoin, arp.sender_mac.to_string(), arp.sender_ip.to_string(), dpid);
  }
  // The announced host may be the missing endpoint of parked setups.
  if (!pending_setups_.empty()) retry_pending_for_host(arp.sender_mac);

  const SwitchState& state = sw_it->second;
  if (state.channel == nullptr) return;

  if (arp.op == pkt::ArpOp::kRequest) {
    if (arp.sender_ip == arp.target_ip) return;  // gratuitous: learn only
    const HostLocation* target = routing_.find_by_ip(arp.target_ip);
    if (target != nullptr) {
      // Directory proxy (paper §III.C.2): answer from global host info, no
      // broadcast into the legacy fabric.
      ++stats_.arp_proxied;
      auto reply = pkt::PacketBuilder()
                       .eth(target->mac, arp.sender_mac)
                       .arp(pkt::ArpOp::kReply, target->mac, arp.target_ip, arp.sender_mac,
                            arp.sender_ip)
                       .finalize();
      of::PacketOut out;
      out.actions = of::output_to(pin.in_port);
      out.packet = std::move(reply);
      state.channel->send_to_switch(std::move(out));
    } else {
      // Unknown target: fall back to flooding on the ingress switch only.
      of::PacketOut out;
      out.buffer_id = pin.buffer_id;
      out.in_port = pin.in_port;
      out.actions = {of::ActionFlood{}};
      state.channel->send_to_switch(std::move(out));
    }
    return;
  }

  // ARP reply punted (e.g. answer to a flooded request): deliver directly to
  // the target host using global location knowledge.
  const HostLocation* dst = routing_.find(packet.eth.dst);
  if (dst != nullptr) {
    auto dst_state_it = switches_.find(dst->dpid);
    if (dst_state_it != switches_.end() && dst_state_it->second.channel != nullptr) {
      of::PacketOut out;
      out.actions = of::output_to(dst->port);
      out.packet = pin.packet;
      dst_state_it->second.channel->send_to_switch(std::move(out));
    }
  }
}

// --- DHCP directory proxy (paper §III.C.2) -----------------------------------------

void Controller::enable_dhcp(Ipv4Address base, std::uint32_t size, SimTime lease_duration) {
  dhcp_.emplace(base, size, lease_duration);
  replicate(ha::DhcpConfigRecord{base, size, lease_duration});
}

void Controller::handle_dhcp(DatapathId dpid, const of::PacketIn& pin) {
  if (!dhcp_) return;  // no DHCP service configured: drop
  const auto request = pkt::DhcpMessage::decode(pin.packet->payload_view());
  if (!request) return;
  auto sw = switches_.find(dpid);
  if (sw == switches_.end() || sw->second.channel == nullptr) return;

  pkt::DhcpMessage reply;
  reply.xid = request->xid;
  reply.client_mac = request->client_mac;
  reply.server_ip = svc::controller_service_ip();
  reply.lease_seconds =
      static_cast<std::uint32_t>(dhcp_->lease_duration() / kSecond);

  if (request->op == pkt::DhcpOp::kDiscover || request->op == pkt::DhcpOp::kRequest) {
    const auto leased = dhcp_->allocate(request->client_mac, sim_->now());
    if (leased) {
      replicate(ha::DhcpLeaseRecord{request->client_mac, *leased,
                                    dhcp_->lease_expiry(request->client_mac)});
    }
    if (!leased) {
      reply.op = pkt::DhcpOp::kNak;
    } else if (request->op == pkt::DhcpOp::kDiscover) {
      reply.op = pkt::DhcpOp::kOffer;
      reply.your_ip = *leased;
    } else {
      reply.op = pkt::DhcpOp::kAck;
      reply.your_ip = *leased;
      // A committed lease is a host location: record it like an ARP would.
      const bool fresh =
          routing_.learn(request->client_mac, *leased, dpid, pin.in_port, sim_->now());
      replicate(
          ha::HostLearnedRecord{request->client_mac, *leased, dpid, pin.in_port, sim_->now()});
      if (fresh) {
        topo::TopologyGraph::AttachedNode node;
        node.name = leased->to_string();
        node.kind = topo::NodeKind::kHost;
        node.dpid = dpid;
        node.port = pin.in_port;
        node.joined_at = sim_->now();
        topology_.upsert_node(request->client_mac.to_string(), node);
        raise(mon::EventType::kHostJoin, request->client_mac.to_string(),
              "dhcp " + leased->to_string(), dpid);
      }
      if (!pending_setups_.empty()) retry_pending_for_host(request->client_mac);
    }
  } else {
    return;  // clients never receive OFFER/ACK via packet-in
  }

  of::PacketOut out;
  out.actions = of::output_to(pin.in_port);
  out.packet =
      pkt::finalize(reply.to_packet(svc::controller_service_mac(), svc::controller_service_ip()));
  sw->second.channel->send_to_switch(std::move(out));
}

// --- flow setup (paper §III.C.3 + §IV.A) ------------------------------------------

pkt::FlowKey Controller::session_reverse(const pkt::FlowKey& key) {
  pkt::FlowKey rev = key.reversed();
  if (key.nw_proto == static_cast<std::uint8_t>(pkt::IpProto::kIcmp)) {
    // ICMP echo: the reply is type 0, the request type 8 (stored in tp_src).
    rev.tp_src = key.tp_src == 8 ? 0 : 8;
    rev.tp_dst = 0;
  }
  return rev;
}

pkt::FlowKey Controller::decision_class(const pkt::FlowKey& key) {
  pkt::FlowKey cls = key;
  // The source port is ephemeral and no policy predicate reads it, so every
  // TCP/UDP flow of one (src, dst, dst-port) conversation shares a decision.
  // Other protocols keep the full key: ICMP stores the echo type in tp_src.
  if (cls.nw_proto == static_cast<std::uint8_t>(pkt::IpProto::kTcp) ||
      cls.nw_proto == static_cast<std::uint8_t>(pkt::IpProto::kUdp)) {
    cls.tp_src = 0;
  }
  return cls;
}

Controller::DecisionStamp Controller::current_stamp() const {
  return DecisionStamp{policies_.version(), routing_.version(), registry_.version(), epoch_};
}

void Controller::validate_decision_cache() {
  const DecisionStamp stamp = current_stamp();
  if (stamp == cache_stamp_) return;
  if (!decision_cache_.empty()) {
    decision_cache_.clear();
    ++stats_.fastpath.decision_cache_invalidations;
  }
  cache_stamp_ = stamp;
}

void Controller::handle_flow_setup(DatapathId dpid, const of::PacketIn& pin) {
  const pkt::Packet& packet = *pin.packet;
  const pkt::FlowKey key = pkt::FlowKey::from_packet(packet);

  if (!blocked_flows_.empty() && blocked_flows_.contains(key)) {
    install_drop(dpid, pin.in_port, key);
    return;
  }

  // Duplicate packet-in after install: packets of this flow raced to the
  // controller before the entries landed on the switch. Release the parked
  // packet through the already-computed ingress actions.
  if (auto existing = flows_.find(key); existing != flows_.end()) {
    auto sw = switches_.find(dpid);
    if (sw != switches_.end() && sw->second.channel != nullptr) {
      of::PacketOut out;
      out.buffer_id = pin.buffer_id;
      out.in_port = pin.in_port;
      out.actions = existing->second.ingress_actions;
      sw->second.channel->send_to_switch(std::move(out));
    }
    return;
  }

  // Duplicate packet-in while the first one's setup is still in flight:
  // remember the waiter, compute nothing.
  if (auto pending = pending_setups_.find(key); pending != pending_setups_.end()) {
    ++stats_.fastpath.suppressed_packet_ins;
    if (pending->second.waiters.size() < config_.pending_waiters_per_flow) {
      pending->second.waiters.push_back({dpid, pin.in_port, pin.buffer_id});
    }
    return;
  }

  validate_decision_cache();

  // Benign cut-through memo: a flow that earned its verdict re-installs the
  // direct path — skipping the redirect chain and the re-inspection — for as
  // long as the world it was judged in still stands. Any stamp drift
  // (policy mutation, host move, SE change, failover) drops the memo and
  // falls back to redirect-and-reinspect.
  if (!offloaded_flows_.empty()) {
    if (auto off = offloaded_flows_.find(key); off != offloaded_flows_.end()) {
      if (off->second.stamp == current_stamp()) {
        if (auto direct = build_direct_decision(key)) {
          ++stats_.offload_replays;
          apply_decision(*direct, dpid, pin, key);
          return;
        }
        // An endpoint is momentarily unknown: fall through, the normal path
        // parks the setup.
      } else {
        offloaded_flows_.erase(off);
        ++stats_.offload_invalidations;
        replicate(ha::FlowOnloadedRecord{key});
      }
    }
  }

  const pkt::FlowKey cls = decision_class(key);

  if (auto it = decision_cache_.find(DecisionKey{cls, dpid, pin.in_port});
      it != decision_cache_.end()) {
    ++stats_.fastpath.decision_cache_hits;
    // The balancer still accounts every flow to its (per-user pinned) SEs.
    for (std::uint64_t se_id : it->second.se_ids) {
      lb_.note_cached_assignment(registry_, se_id);
    }
    apply_decision(it->second, dpid, pin, key);
    return;
  }
  ++stats_.fastpath.decision_cache_misses;

  auto decision = build_decision(dpid, pin.in_port, cls, key);
  if (!decision) {
    // An endpoint has not announced itself yet (or an uplink is undiscovered):
    // park the setup until the missing knowledge arrives.
    park_setup(dpid, pin, key);
    return;
  }
  if (decision->cacheable && config_.decision_cache_capacity > 0) {
    if (decision_cache_.size() >= config_.decision_cache_capacity) {
      // Bounded cache: a full flush is simpler than LRU and refills fast.
      decision_cache_.clear();
    }
    auto [it, inserted] =
        decision_cache_.emplace(DecisionKey{cls, dpid, pin.in_port}, std::move(*decision));
    apply_decision(it->second, dpid, pin, key);
  } else {
    apply_decision(*decision, dpid, pin, key);
  }
}

std::optional<Controller::CachedDecision> Controller::build_decision(DatapathId dpid,
                                                                     PortId in_port,
                                                                     const pkt::FlowKey& cls,
                                                                     const pkt::FlowKey& key) {
  (void)dpid;
  (void)in_port;
  CachedDecision decision;
  // The class zeroes only tp_src, which no policy predicate reads, so the
  // class verdict is the per-flow verdict.
  const Policy* policy = policies_.lookup(cls);
  decision.action = policy != nullptr ? policy->action : policies_.default_action();
  decision.policy_id = policy != nullptr ? policy->id : 0;
  decision.policy_name = policy != nullptr ? policy->name : "default-deny";
  if (decision.action == PolicyAction::kDeny) return decision;

  const HostLocation* src = routing_.find(cls.dl_src);
  const HostLocation* dst = routing_.find(cls.dl_dst);
  if (src == nullptr || dst == nullptr) return std::nullopt;

  // Select the service chain via load balancing (paper §IV.B).
  std::vector<const SeRecord*> chain;
  if (decision.action == PolicyAction::kRedirect && policy != nullptr) {
    // Per-flow granularity re-balances every flow of the class, so the
    // chain (and its templates) must not be memoized.
    if (policy->granularity == LbGranularity::kPerFlow) decision.cacheable = false;
    for (svc::ServiceType service : policy->service_chain) {
      // Balance on the concrete key: per-flow pins and release_flow() are
      // keyed by it.
      const auto se_id = lb_.assign(registry_, service, key, policy->granularity);
      if (!se_id) continue;  // no live SE of this type: fail-open
      const SeRecord* se = registry_.find(*se_id);
      if (se != nullptr) {
        chain.push_back(se);
        decision.se_ids.push_back(*se_id);
        decision.se_macs.push_back(se->mac);
      }
    }
  }

  decision.prime.emplace_back(dst->mac, dst->ip, dst->dpid);
  for (const SeRecord* se : chain) decision.prime.emplace_back(se->mac, se->ip, se->dpid);

  PathSpec forward;
  forward.key = cls;
  forward.src = *src;
  forward.dst = *dst;
  forward.chain = chain;
  forward.idle_timeout = config_.flow_idle_timeout;
  forward.notify_ingress_removal = true;
  // Build-then-send: a forward path that cannot complete (unknown LS port)
  // aborts before anything reaches a switch — no partially installed flows.
  if (!build_path(forward, decision, /*reverse=*/false)) return std::nullopt;

  // Pre-build the reply direction as one session (paper §III.C.3),
  // traversing the same SEs in reverse order so stream inspection sees both
  // directions of the conversation.
  PathSpec reverse;
  reverse.key = session_reverse(cls);
  reverse.src = *dst;
  reverse.dst = *src;
  reverse.chain = {chain.rbegin(), chain.rend()};
  reverse.idle_timeout = config_.flow_idle_timeout;
  build_path(reverse, decision, /*reverse=*/true);
  return decision;
}

bool Controller::build_path(const PathSpec& spec, CachedDecision& decision, bool reverse) {
  DatapathId cur = spec.src.dpid;
  PortId cur_in = spec.src.port;
  pkt::FlowKey cur_key = spec.key;
  const MacAddress orig_src = spec.key.dl_src;
  const MacAddress final_mac = spec.key.dl_dst;
  // SE the packet most recently returned from. Frames leaving that SE's
  // switch into the legacy fabric carry the SE's MAC as dl_src (restored at
  // the next hop); otherwise the learning fabric would see the original
  // host's MAC appear on the SE switch's port and re-point it there,
  // blackholing the host's own traffic (middlebox MAC flapping).
  const SeRecord* prev_se = nullptr;
  bool first = !reverse;  // the ingress entry is the first forward entry

  auto switch_mods = [&](DatapathId dpid) -> SwitchMods& {
    for (SwitchMods& sm : decision.switches) {
      if (sm.dpid == dpid) return sm;
    }
    decision.switches.emplace_back();
    decision.switches.back().dpid = dpid;
    return decision.switches.back();
  };

  auto emit = [&](DatapathId dpid, of::FlowEntry entry) -> void {
    entry.priority = config_.flow_priority;
    entry.idle_timeout = spec.idle_timeout;
    // SPAN: duplicate the (pre-forwarding) frame onto the mirror port.
    if (auto mirror = mirror_ports_.find(dpid); mirror != mirror_ports_.end()) {
      entry.actions.insert(entry.actions.begin(), of::ActionOutput{mirror->second});
    }
    of::FlowMod mod;
    mod.command = of::FlowModCommand::kAdd;
    SwitchMods& sm = switch_mods(dpid);
    if (first) {
      mod.notify_on_removal = spec.notify_ingress_removal;
      decision.ingress_actions = entry.actions;
      sm.ingress_mod = static_cast<int>(sm.mods.size());
      first = false;
    }
    mod.entry = std::move(entry);
    sm.mods.push_back(std::move(mod));
    sm.reverse_dir.push_back(reverse ? 1 : 0);
  };

  // Steering hops through the service chain (paper §IV.A steps i-iii).
  for (const SeRecord* se : spec.chain) {
    of::FlowEntry steer;
    steer.match = of::Match::exact(cur_in, cur_key);
    steer.actions.push_back(of::ActionSetDlDst{se->mac});
    if (se->dpid == cur) {
      steer.actions.push_back(of::ActionOutput{se->port});
    } else {
      if (prev_se != nullptr) steer.actions.push_back(of::ActionSetDlSrc{prev_se->mac});
      const auto out = ls_port(cur);
      if (!out) return false;
      steer.actions.push_back(of::ActionOutput{*out});
    }
    emit(cur, std::move(steer));

    cur_key.dl_dst = se->mac;
    if (se->dpid != cur) {
      if (prev_se != nullptr) cur_key.dl_src = prev_se->mac;
      const auto in = ls_port(se->dpid);
      if (!in) return false;
      of::FlowEntry arrive;
      arrive.match = of::Match::exact(*in, cur_key);
      // Restore the true source before the SE inspects the flow.
      if (cur_key.dl_src != orig_src) arrive.actions.push_back(of::ActionSetDlSrc{orig_src});
      arrive.actions.push_back(of::ActionOutput{se->port});
      emit(se->dpid, std::move(arrive));
      cur_key.dl_src = orig_src;
    }
    cur = se->dpid;
    cur_in = se->port;
    prev_se = se;
  }

  // Final delivery (paper §IV.A step iii-iv / §III.C.3 two-hop routing).
  of::FlowEntry last;
  last.match = of::Match::exact(cur_in, cur_key);
  if (cur_key.dl_dst != final_mac) last.actions.push_back(of::ActionSetDlDst{final_mac});
  if (spec.dst.dpid == cur) {
    last.actions.push_back(of::ActionOutput{spec.dst.port});
    emit(cur, std::move(last));
  } else {
    if (prev_se != nullptr) last.actions.push_back(of::ActionSetDlSrc{prev_se->mac});
    const auto out = ls_port(cur);
    if (!out) return false;
    last.actions.push_back(of::ActionOutput{*out});
    emit(cur, std::move(last));

    const auto in = ls_port(spec.dst.dpid);
    if (!in) return false;
    cur_key.dl_dst = final_mac;
    if (prev_se != nullptr) cur_key.dl_src = prev_se->mac;
    of::FlowEntry egress;
    egress.match = of::Match::exact(*in, cur_key);
    if (cur_key.dl_src != orig_src) egress.actions.push_back(of::ActionSetDlSrc{orig_src});
    egress.actions.push_back(of::ActionOutput{spec.dst.port});
    emit(spec.dst.dpid, std::move(egress));
  }
  return true;
}

// --- verdict-driven flow offload (service-chain fast path) ---------------------------

std::optional<Controller::CachedDecision> Controller::build_direct_decision(
    const pkt::FlowKey& key) {
  const HostLocation* src = routing_.find(key.dl_src);
  const HostLocation* dst = routing_.find(key.dl_dst);
  if (src == nullptr || dst == nullptr) return std::nullopt;

  CachedDecision decision;
  decision.action = PolicyAction::kAllow;
  const Policy* policy = policies_.lookup(key);
  decision.policy_id = policy != nullptr ? policy->id : 0;
  decision.policy_name = policy != nullptr ? policy->name : "default";
  // Concrete-key templates for one flow; never memoized in the class cache.
  decision.cacheable = false;
  decision.prime.emplace_back(dst->mac, dst->ip, dst->dpid);

  PathSpec forward;
  forward.key = key;
  forward.src = *src;
  forward.dst = *dst;
  forward.idle_timeout = config_.flow_idle_timeout;
  forward.notify_ingress_removal = true;
  if (!build_path(forward, decision, /*reverse=*/false)) return std::nullopt;

  PathSpec reverse;
  reverse.key = session_reverse(key);
  reverse.src = *dst;
  reverse.dst = *src;
  reverse.idle_timeout = config_.flow_idle_timeout;
  build_path(reverse, decision, /*reverse=*/true);
  return decision;
}

void Controller::offload_flow(const pkt::FlowKey& key, FlowRecord& record, const SeRecord& se,
                              std::uint64_t inspected_bytes) {
  auto direct = build_direct_decision(key);
  if (!direct) return;  // an endpoint location evaporated: keep the redirect

  std::vector<std::pair<DatapathId, of::FlowMod>> new_mods;
  for (SwitchMods& sm : direct->switches) {
    for (of::FlowMod& mod : sm.mods) new_mods.emplace_back(sm.dpid, std::move(mod));
  }
  std::vector<std::pair<DatapathId, of::Match>> new_installed;
  new_installed.reserve(new_mods.size());
  for (const auto& [mod_dpid, mod] : new_mods) new_installed.emplace_back(mod_dpid, mod.entry.match);

  // Rewrite in place: entries whose (dpid, match) survive — the ingress and
  // egress pair of the paper's 4-entry chain — are ModifyStrict'ed (keeps
  // the cookie, removal notification and counters), genuinely new hops are
  // added first, and only then the stale steering entries deleted, so no
  // in-flight packet ever hits a gap.
  for (auto& [mod_dpid, mod] : new_mods) {
    const bool existed = std::find(record.installed.begin(), record.installed.end(),
                                   std::make_pair(mod_dpid, mod.entry.match)) !=
                         record.installed.end();
    mod.command = existed ? of::FlowModCommand::kModifyStrict : of::FlowModCommand::kAdd;
    send_flow_mod(mod_dpid, mod);
  }
  for (const auto& [old_dpid, match] : record.installed) {
    if (std::find(new_installed.begin(), new_installed.end(), std::make_pair(old_dpid, match)) !=
        new_installed.end()) {
      continue;
    }
    of::FlowMod mod;
    mod.command = of::FlowModCommand::kDeleteStrict;
    mod.entry.match = match;
    mod.entry.priority = config_.flow_priority;
    send_flow_mod(old_dpid, mod);
  }

  // The SEs stop seeing this flow: release the chain's load-balancer
  // accounting. The steered-key registrations stay until the record dies —
  // packets already queued inside an SE when the rewrite lands may still
  // produce detections, and their reports must map back to this flow so a
  // late alert can block it and revoke the memo.
  for (std::uint64_t se_id : record.se_ids) {
    const SeRecord* chain_se = registry_.find(se_id);
    if (chain_se != nullptr) lb_.release_flow(key, chain_se->service);
  }
  record.se_ids.clear();
  record.benign_se_ids.clear();
  record.installed = std::move(new_installed);
  record.ingress_actions = direct->ingress_actions;

  if (config_.offload_table_capacity > 0) {
    if (offloaded_flows_.size() >= config_.offload_table_capacity &&
        !offloaded_flows_.contains(key)) {
      offloaded_flows_.clear();  // bounded memo: full flush, like the decision cache
    }
    offloaded_flows_.insert_or_assign(key,
                                      OffloadEntry{current_stamp(), inspected_bytes, sim_->now()});
    replicate(ha::FlowOffloadedRecord{key, inspected_bytes});
  }
  ++stats_.flows_offloaded;
  raise(mon::EventType::kFlowOffloaded, key.dl_src.to_string(),
        "cut through after " + std::to_string(inspected_bytes) + " clean bytes",
        record.ingress_dpid, se.se_id, 0, &key);
}

void Controller::forget_offload(const pkt::FlowKey& key) {
  if (offloaded_flows_.erase(key) > 0) replicate(ha::FlowOnloadedRecord{key});
}

void Controller::apply_decision(CachedDecision& decision, DatapathId dpid, const of::PacketIn& pin,
                                const pkt::FlowKey& key) {
  if (decision.action == PolicyAction::kDeny) {
    ++stats_.flows_denied;
    install_drop(dpid, pin.in_port, key);
    raise(mon::EventType::kPolicyDenied, key.dl_src.to_string(), decision.policy_name, dpid, 0, 2,
          &key);
    return;
  }

  // Teach the legacy fabric where the destination and the chain's SEs live,
  // so the two-hop route unicasts instead of flooding.
  for (const auto& [mac, ip, at] : decision.prime) prime_fabric_location(mac, ip, at);

  FlowRecord record;
  record.key = key;
  record.ingress_dpid = dpid;
  record.ingress_port = pin.in_port;
  record.policy_id = decision.policy_id;
  record.se_ids = decision.se_ids;
  record.user = key.dl_src;
  record.started_at = sim_->now();
  record.ingress_actions = decision.ingress_actions;
  const std::uint64_t cookie = next_cookie_++;
  record.cookie = cookie;

  record.installed.reserve(4);

  // The templates match the flow *class*; patch the zeroed source-port field
  // back to this flow's value (forward entries: tp_src, reverse: tp_dst).
  // (decision_class zeroes tp_src exactly for TCP/UDP, so compare in place
  // instead of materializing the class key.)
  const bool patch_ports =
      key.tp_src != 0 && (key.nw_proto == static_cast<std::uint8_t>(pkt::IpProto::kTcp) ||
                          key.nw_proto == static_cast<std::uint8_t>(pkt::IpProto::kUdp));

  for (SwitchMods& sm : decision.switches) {
    auto sw = switches_.find(sm.dpid);
    of::SecureChannel* channel =
        sw != switches_.end() && sw->second.connected ? sw->second.channel : nullptr;

    if (channel != nullptr && channel->wire_encoding()) {
      // Preserialized replay: the batch is encoded once per decision; each
      // flow patches its few per-flow bytes into a copy of the frame and
      // skips the per-message encode entirely.
      if (sm.frame.empty()) {
        of::FlowModBatch batch;
        batch.mods = sm.mods;
        sm.frame = of::encode_message(of::Message{std::move(batch)}, 0, &sm.mod_offsets);
      }
      std::vector<std::uint8_t> frame = sm.frame;
      const std::span<std::uint8_t> bytes(frame);
      for (std::size_t i = 0; i < sm.mods.size(); ++i) {
        const std::size_t at = sm.mod_offsets[i];
        if (patch_ports) {
          if (sm.reverse_dir[i] != 0) {
            pkt::patch_u16(bytes, at + of::FlowModPatchOffsets::kMatchTpDst, key.tp_src);
          } else {
            pkt::patch_u16(bytes, at + of::FlowModPatchOffsets::kMatchTpSrc, key.tp_src);
          }
        }
        if (static_cast<int>(i) == sm.ingress_mod) {
          pkt::patch_u32(bytes, at + of::FlowModPatchOffsets::kBufferId, pin.buffer_id);
          pkt::patch_u64(bytes, at + of::FlowModPatchOffsets::kCookie, cookie);
        }
        of::Match match = sm.mods[i].entry.match;
        if (patch_ports) {
          if (sm.reverse_dir[i] != 0) {
            match.tp_dst(key.tp_src);
          } else {
            match.tp_src(key.tp_src);
          }
        }
        record.installed.emplace_back(sm.dpid, std::move(match));
      }
      stats_.fastpath.batched_flow_mods += sm.mods.size();
      channel->send_frame_to_switch(bytes);
    } else {
      of::FlowModBatch batch;
      batch.mods.reserve(sm.mods.size());
      for (std::size_t i = 0; i < sm.mods.size(); ++i) {
        of::FlowMod mod = sm.mods[i];
        if (patch_ports) {
          if (sm.reverse_dir[i] != 0) {
            mod.entry.match.tp_dst(key.tp_src);
          } else {
            mod.entry.match.tp_src(key.tp_src);
          }
        }
        if (static_cast<int>(i) == sm.ingress_mod) {
          mod.entry.cookie = cookie;
          mod.buffer_id = pin.buffer_id;
        }
        record.installed.emplace_back(sm.dpid, mod.entry.match);
        batch.mods.push_back(std::move(mod));
      }
      if (channel != nullptr) {
        if (batch.mods.size() == 1) {
          channel->send_to_switch(of::Message{std::move(batch.mods.front())});
        } else {
          stats_.fastpath.batched_flow_mods += batch.mods.size();
          channel->send_to_switch(of::Message{std::move(batch)});
        }
      }
    }
  }

  record.reverse_key = session_reverse(key);
  reverse_index_.insert_or_assign(record.reverse_key, key);
  cookie_index_.emplace(cookie, key);

  // Register the steered variants so SE event reports resolve to this flow.
  for (const MacAddress& se_mac : decision.se_macs) {
    pkt::FlowKey steered = key;
    steered.dl_dst = se_mac;
    steered_index_[steered] = key;
    record.steered_keys.push_back(steered);
    pkt::FlowKey steered_rev = record.reverse_key;
    steered_rev.dl_dst = se_mac;
    steered_index_[steered_rev] = key;
    record.steered_keys.push_back(steered_rev);
  }

  ++stats_.flows_installed;
  if (!decision.se_ids.empty()) ++stats_.flows_redirected;
  raise(mon::EventType::kFlowStart, key.dl_src.to_string(),
        key.to_string() + (decision.se_ids.empty()
                               ? ""
                               : " via " + std::to_string(decision.se_ids.size()) + " SE"),
        dpid, 0, 0, &key);
  index_flow_host(key, record);
  flows_.insert_or_assign(key, std::move(record));
}

// --- pending setups (packet-in suppression) ------------------------------------------

void Controller::park_setup(DatapathId dpid, const of::PacketIn& pin, const pkt::FlowKey& key) {
  if (pending_setups_.size() >= config_.pending_setup_capacity) {
    // Table full: drop this setup, the sender retries (exactly what happened
    // to every unknown-destination setup before the pending table existed).
    ++stats_.fastpath.pending_setups_expired;
    return;
  }
  PendingSetup& pending = pending_setups_[key];
  pending.packet = pin.packet;
  pending.parked_at = sim_->now();
  pending.waiters.push_back({dpid, pin.in_port, pin.buffer_id});
  ++stats_.fastpath.pending_setups_parked;
}

void Controller::retry_pending_for_host(const MacAddress& mac) {
  std::vector<pkt::FlowKey> keys;
  for (const auto& [key, pending] : pending_setups_) {
    if (key.dl_src == mac || key.dl_dst == mac) keys.push_back(key);
  }
  retry_pending(keys);
}

void Controller::retry_all_pending() {
  std::vector<pkt::FlowKey> keys;
  keys.reserve(pending_setups_.size());
  for (const auto& [key, pending] : pending_setups_) keys.push_back(key);
  retry_pending(keys);
}

void Controller::retry_pending(const std::vector<pkt::FlowKey>& keys) {
  for (const pkt::FlowKey& key : keys) {
    auto it = pending_setups_.find(key);
    if (it == pending_setups_.end()) continue;
    PendingSetup pending = std::move(it->second);
    pending_setups_.erase(it);
    if (pending.waiters.empty() || pending.packet == nullptr) continue;

    // Re-run the setup as the first waiter's packet-in.
    of::PacketIn pin;
    pin.buffer_id = pending.waiters.front().buffer_id;
    pin.in_port = pending.waiters.front().in_port;
    pin.reason = of::PacketInReason::kNoMatch;
    pin.packet = pending.packet;
    handle_flow_setup(pending.waiters.front().dpid, pin);

    auto flow = flows_.find(key);
    if (flow == flows_.end()) continue;  // denied, or parked again
    ++stats_.fastpath.pending_setups_completed;
    // Release the suppressed duplicates' buffered packets through the
    // now-installed ingress actions.
    for (std::size_t i = 1; i < pending.waiters.size(); ++i) {
      const PendingSetup::Waiter& waiter = pending.waiters[i];
      auto sw = switches_.find(waiter.dpid);
      if (sw == switches_.end() || sw->second.channel == nullptr) continue;
      of::PacketOut out;
      out.buffer_id = waiter.buffer_id;
      out.in_port = waiter.in_port;
      out.actions = flow->second.ingress_actions;
      sw->second.channel->send_to_switch(std::move(out));
    }
  }
}

void Controller::expire_pending(SimTime now) {
  for (auto it = pending_setups_.begin(); it != pending_setups_.end();) {
    if (now - it->second.parked_at >= config_.pending_setup_timeout) {
      ++stats_.fastpath.pending_setups_expired;
      it = pending_setups_.erase(it);
    } else {
      ++it;
    }
  }
}

// --- per-host flow index -------------------------------------------------------------

void Controller::index_flow_host(const pkt::FlowKey& key, const FlowRecord& record) {
  flows_by_host_.add(record.user, key);
  if (key.dl_dst != record.user) flows_by_host_.add(key.dl_dst, key);
}

void Controller::unindex_flow_host(const pkt::FlowKey& key, const FlowRecord& record) {
  flows_by_host_.remove(record.user, key);
  if (key.dl_dst != record.user) flows_by_host_.remove(key.dl_dst, key);
}

void Controller::install_drop(DatapathId dpid, PortId in_port, const pkt::FlowKey& key) {
  of::FlowEntry entry;
  entry.match = of::Match::exact(in_port, key);
  entry.actions = of::drop();
  entry.priority = config_.drop_priority;
  entry.idle_timeout = config_.flow_idle_timeout * 3;
  of::FlowMod mod;
  mod.command = of::FlowModCommand::kAdd;
  mod.entry = std::move(entry);
  send_flow_mod(dpid, mod);
}

bool Controller::unblock_flow(const pkt::FlowKey& key) {
  if (blocked_flows_.erase(key) == 0) return false;
  replicate(ha::FlowUnblockedRecord{key});
  return true;
}

// --- flow teardown -----------------------------------------------------------------

void Controller::teardown_flow(const pkt::FlowKey& key) {
  auto it = flows_.find(key);
  if (it == flows_.end()) return;
  FlowRecord record = std::move(it->second);
  flows_.erase(it);
  unindex_flow_host(key, record);

  for (const auto& [dpid, match] : record.installed) {
    of::FlowMod mod;
    mod.command = of::FlowModCommand::kDeleteStrict;
    mod.entry.match = match;
    mod.entry.priority = config_.flow_priority;
    send_flow_mod(dpid, mod);
  }
  // Forget bookkeeping so the late FlowRemoved from the delete is ignored.
  cookie_index_.erase(record.cookie);
  for (const pkt::FlowKey& steered : record.steered_keys) steered_index_.erase(steered);
  reverse_index_.erase(record.reverse_key);
  if (record.app != svc::l7::AppProtocol::kUnknown) {
    monitor_.record_flow_ended(record.user, record.app);
  }
  for (std::uint64_t se_id : record.se_ids) {
    const SeRecord* se = registry_.find(se_id);
    if (se != nullptr) lb_.release_flow(key, se->service);
  }
  raise(mon::EventType::kFlowEnd, key.dl_src.to_string(), "torn down", record.ingress_dpid, 0, 0,
        &key);
}

std::size_t Controller::teardown_flows_through_se(std::uint64_t se_id) {
  std::vector<pkt::FlowKey> affected;
  for (const auto& [key, record] : flows_) {
    if (std::find(record.se_ids.begin(), record.se_ids.end(), se_id) != record.se_ids.end()) {
      affected.push_back(key);
    }
  }
  for (const pkt::FlowKey& key : affected) teardown_flow(key);
  return affected.size();
}

std::size_t Controller::teardown_flows_of_host(const MacAddress& mac) {
  const FlowSet* flows = flows_by_host_.find(mac);
  if (flows == nullptr) return 0;
  // Copy: teardown_flow mutates the index.
  std::vector<pkt::FlowKey> affected;
  affected.reserve(flows->size());
  flows->for_each([&affected](const pkt::FlowKey& key) { affected.push_back(key); });
  for (const pkt::FlowKey& key : affected) teardown_flow(key);
  return affected.size();
}

void Controller::on_flow_removed(DatapathId dpid, const of::FlowRemoved& removed) {
  (void)dpid;
  auto cookie_it = cookie_index_.find(removed.cookie);
  if (cookie_it == cookie_index_.end()) return;
  const pkt::FlowKey key = cookie_it->second;
  cookie_index_.erase(cookie_it);

  auto it = flows_.find(key);
  if (it == flows_.end()) return;
  FlowRecord& record = it->second;

  if (record.app != svc::l7::AppProtocol::kUnknown) {
    monitor_.record_flow_ended(record.user, record.app);
  }
  // Data-path counters from the expired entry feed the per-user traffic
  // distribution view (paper §IV.C).
  monitor_.record_flow_traffic(record.user, removed.packet_count, removed.byte_count);
  for (std::uint64_t se_id : record.se_ids) {
    const SeRecord* se = registry_.find(se_id);
    if (se != nullptr) lb_.release_flow(key, se->service);
  }
  for (const pkt::FlowKey& steered : record.steered_keys) steered_index_.erase(steered);
  reverse_index_.erase(record.reverse_key);
  unindex_flow_host(key, record);

  raise(mon::EventType::kFlowEnd, key.dl_src.to_string(),
        "pkts=" + std::to_string(removed.packet_count) +
            " bytes=" + std::to_string(removed.byte_count),
        record.ingress_dpid, 0, 0, &key);
  flows_.erase(it);
}

// --- housekeeping ---------------------------------------------------------------------

void Controller::start_housekeeping() {
  if (housekeeping_running_) return;
  housekeeping_running_ = true;
  sim_->schedule(config_.housekeeping_interval, [this]() { housekeeping_tick(); });
  if (config_.switch_echo_interval > 0) {
    sim_->schedule(config_.switch_echo_interval, [this]() { echo_tick(); });
  }
}

void Controller::echo_tick() {
  if (!housekeeping_running_) return;
  const SimTime now = sim_->now();
  const SimTime timeout = config_.switch_echo_timeout > 0 ? config_.switch_echo_timeout
                                                          : 3 * config_.switch_echo_interval;
  std::vector<DatapathId> dead;
  for (auto& [dpid, state] : switches_) {
    if (!state.connected || state.channel == nullptr) continue;
    const auto last = last_switch_echo_.find(dpid);
    if (last != last_switch_echo_.end() && now - last->second > timeout) {
      dead.push_back(dpid);
      continue;
    }
    state.channel->send_to_switch(of::EchoRequest{static_cast<std::uint64_t>(now)});
  }
  for (DatapathId dpid : dead) {
    // The channel still believes it is connected (a partition, not a close):
    // declare the switch gone so state and flows stop depending on it. A
    // later heal re-runs the connect handshake.
    ++stats_.echo_timeouts;
    handle_switch_disconnected(dpid);
  }
  sim_->schedule(config_.switch_echo_interval, [this]() { echo_tick(); });
}

void Controller::housekeeping_tick() {
  if (!housekeeping_running_) return;
  const SimTime now = sim_->now();

  for (const HostLocation& host : routing_.expire(now)) {
    replicate(ha::HostRemovedRecord{host.mac});
    // An expired host's flows must die with its location record: the next
    // packet-in for them would otherwise replay stale paths, and at campus
    // scale one batched expiry sweep can remove thousands of hosts — each
    // must be torn down and announced here, exactly once (expire() bumps
    // the routing version once for the whole batch).
    teardown_flows_of_host(host.mac);
    if (registry_.find_by_mac(host.mac) != nullptr) continue;  // SEs expire below
    topology_.remove_node(host.mac.to_string());
    raise(mon::EventType::kHostLeave, host.mac.to_string(), "arp timeout", host.dpid);
  }
  for (const SeRecord& se : registry_.expire(now)) {
    replicate(ha::SeRemovedRecord{se.se_id});
    lb_.purge_se(se.se_id);
    topology_.remove_node("se" + std::to_string(se.se_id));
    // Flows steered through the dead SE would blackhole until their idle
    // timeout; tear them down so their next packet re-routes over the
    // surviving pool (no single point of failure, paper §IV.B).
    const std::size_t torn = teardown_flows_through_se(se.se_id);
    raise(mon::EventType::kSeOffline, "se" + std::to_string(se.se_id),
          std::string(svc::service_type_name(se.service)) + ", " + std::to_string(torn) +
              " flows re-routed",
          se.dpid, se.se_id);
  }
  expire_pending(now);
  if (dhcp_) {
    for (const auto& expired : dhcp_->expire(now)) {
      replicate(ha::DhcpReleaseRecord{expired.first});
    }
  }
  // Periodic re-discovery keeps the link table fresh across topology
  // changes; interval 0 limits discovery to switch-join time.
  if (config_.lldp_interval > 0 && now >= next_lldp_) {
    run_discovery();
    next_lldp_ = now + config_.lldp_interval;
  }
  if (config_.stats_interval > 0 && now >= next_stats_poll_) {
    poll_stats();
    next_stats_poll_ = now + config_.stats_interval;
  }
  sim_->schedule(config_.housekeeping_interval, [this]() { housekeeping_tick(); });
}

// --- helpers -----------------------------------------------------------------------

const Controller::SwitchLoad* Controller::switch_load(DatapathId dpid) const {
  return switch_loads_.find(dpid);
}

void Controller::poll_stats() {
  for (const auto& [dpid, state] : switches_) {
    if (state.connected && state.channel != nullptr) {
      state.channel->send_to_switch(of::StatsRequest{});
    }
  }
}

void Controller::prime_fabric_location(const MacAddress& mac, Ipv4Address ip, DatapathId dpid) {
  constexpr SimTime kPrimeInterval = 30 * kSecond;
  const SimTime now = sim_->now();
  auto it = primed_.find(mac);
  if (it != primed_.end() && now - it->second < kPrimeInterval) return;
  const auto ls = ls_port(dpid);
  auto sw = switches_.find(dpid);
  if (!ls || sw == switches_.end() || sw->second.channel == nullptr) return;
  primed_[mac] = now;

  of::PacketOut out;
  out.actions = of::output_to(*ls);
  out.packet = pkt::PacketBuilder()
                   .eth(mac, MacAddress::broadcast())
                   .arp(pkt::ArpOp::kRequest, mac, ip, MacAddress(), ip)
                   .finalize();
  sw->second.channel->send_to_switch(std::move(out));
}

void Controller::send_flow_mod(DatapathId dpid, of::FlowMod mod) {
  auto it = switches_.find(dpid);
  if (it == switches_.end() || it->second.channel == nullptr || !it->second.connected) return;
  it->second.channel->send_to_switch(std::move(mod));
}

// --- high availability -------------------------------------------------------

void Controller::drop_pending_for_switch(DatapathId dpid) {
  for (auto it = pending_setups_.begin(); it != pending_setups_.end();) {
    std::vector<PendingSetup::Waiter>& waiters = it->second.waiters;
    std::erase_if(waiters,
                  [dpid](const PendingSetup::Waiter& w) { return w.dpid == dpid; });
    if (waiters.empty()) {
      ++stats_.fastpath.pending_setups_expired;
      it = pending_setups_.erase(it);
    } else {
      ++it;
    }
  }
}

void Controller::apply_replicated(const ha::RecordBody& body) {
  applying_replicated_ = true;
  if (const auto* h = std::get_if<ha::HostLearnedRecord>(&body)) {
    routing_.learn(h->mac, h->ip, h->dpid, h->port, h->seen_at);
    if (registry_.find_by_mac(h->mac) == nullptr) {
      topo::TopologyGraph::AttachedNode node;
      node.name = h->ip.to_string();
      node.kind = topo::NodeKind::kHost;
      node.dpid = h->dpid;
      node.port = h->port;
      node.joined_at = h->seen_at;
      topology_.upsert_node(h->mac.to_string(), node);
    }
  } else if (const auto* h = std::get_if<ha::HostRemovedRecord>(&body)) {
    routing_.remove(h->mac);
    topology_.remove_node(h->mac.to_string());
  } else if (const auto* r = std::get_if<ha::LsPortRecord>(&body)) {
    ls_ports_[r->dpid] = r->port;
    ++epoch_;
  } else if (const auto* l = std::get_if<ha::LinkRecord>(&body)) {
    topology_.links().add(topo::AsLink{l->src, l->src_port, l->dst, l->dst_port});
  } else if (const auto* p = std::get_if<ha::PolicyAddedRecord>(&body)) {
    policies_.add(p->policy);
  } else if (const auto* p = std::get_if<ha::PolicyRemovedRecord>(&body)) {
    policies_.remove(p->id);
  } else if (const auto* d = std::get_if<ha::DefaultActionRecord>(&body)) {
    policies_.set_default_action(d->action);
  } else if (const auto* s = std::get_if<ha::SeUpsertRecord>(&body)) {
    svc::OnlineMessage report;
    report.service = s->service;
    registry_.handle_online(s->se_id, s->mac, s->ip, s->dpid, s->port, report, s->seen_at);
    topo::TopologyGraph::AttachedNode node;
    node.name = "se" + std::to_string(s->se_id) + ":" + svc::service_type_name(s->service);
    node.kind = topo::NodeKind::kServiceElement;
    node.dpid = s->dpid;
    node.port = s->port;
    node.joined_at = s->seen_at;
    topology_.upsert_node("se" + std::to_string(s->se_id), node);
  } else if (const auto* s = std::get_if<ha::SeRemovedRecord>(&body)) {
    registry_.remove(s->se_id);
    lb_.purge_se(s->se_id);
    topology_.remove_node("se" + std::to_string(s->se_id));
  } else if (const auto* f = std::get_if<ha::FlowBlockedRecord>(&body)) {
    blocked_flows_.insert_or_assign(f->key,
                                    BlockedFlowInfo{f->ingress_dpid, f->ingress_port});
  } else if (const auto* f = std::get_if<ha::FlowUnblockedRecord>(&body)) {
    blocked_flows_.erase(f->key);
  } else if (const auto* d = std::get_if<ha::DhcpConfigRecord>(&body)) {
    // Re-emplacing wipes leases, so only (re)configure on an actual change.
    if (!dhcp_ || dhcp_->base() != d->base || dhcp_->capacity() != d->size ||
        dhcp_->lease_duration() != d->lease_duration) {
      dhcp_.emplace(d->base, d->size, d->lease_duration);
    }
  } else if (const auto* d = std::get_if<ha::DhcpLeaseRecord>(&body)) {
    if (dhcp_) dhcp_->restore(d->mac, d->ip, d->expires);
  } else if (const auto* d = std::get_if<ha::DhcpReleaseRecord>(&body)) {
    if (dhcp_) dhcp_->release(d->mac);
  } else if (const auto* s = std::get_if<ha::SwitchUpRecord>(&body)) {
    // `connected` stays false: connectivity is a per-controller fact, and
    // this instance's channel to the switch has not handshaken. The
    // topology view mirrors the active's, so a promoted standby can route
    // before every FeaturesReply of its own has landed.
    SwitchState& state = switches_[s->dpid];
    state.num_ports = s->num_ports;
    state.name = s->name;
    topo::TopologyGraph::SwitchInfo info;
    info.dpid = s->dpid;
    info.name = s->name;
    info.kind = state.kind;
    topology_.add_switch(info);
  } else if (const auto* s = std::get_if<ha::SwitchDownRecord>(&body)) {
    switch_loads_.erase(s->dpid);
    topology_.remove_switch(s->dpid);
  } else if (const auto* f = std::get_if<ha::FlowOffloadedRecord>(&body)) {
    // Stamped with *this* instance's current stamp: note_promoted() bumps
    // the epoch, so a pre-failover verdict is never replayed by the new
    // active — the flow redirects and re-earns its cut-through.
    offloaded_flows_.insert_or_assign(
        f->key, OffloadEntry{current_stamp(), f->inspected_bytes, sim_->now()});
  } else if (const auto* f = std::get_if<ha::FlowOnloadedRecord>(&body)) {
    offloaded_flows_.erase(f->key);
  }
  applying_replicated_ = false;
}

std::vector<ha::RecordBody> Controller::export_state() const {
  std::vector<ha::RecordBody> out;
  if (dhcp_) {
    out.push_back(ha::DhcpConfigRecord{dhcp_->base(), dhcp_->capacity(),
                                       dhcp_->lease_duration()});
  }
  for (const auto& [dpid, state] : switches_) {
    if (state.connected) out.push_back(ha::SwitchUpRecord{dpid, state.num_ports, state.name});
  }
  for (const auto& [dpid, port] : ls_ports_) out.push_back(ha::LsPortRecord{dpid, port});
  for (const topo::AsLink& link : topology_.links().all()) {
    out.push_back(ha::LinkRecord{link.src, link.src_port, link.dst, link.dst_port});
  }
  // The hash-keyed tables iterate in arbitrary order; sort so two exports of
  // identical state produce identical snapshots.
  std::vector<HostLocation> hosts = routing_.all();
  std::sort(hosts.begin(), hosts.end(), [](const HostLocation& a, const HostLocation& b) {
    return a.mac.to_uint64() < b.mac.to_uint64();
  });
  for (const HostLocation& host : hosts) {
    out.push_back(ha::HostLearnedRecord{host.mac, host.ip, host.dpid, host.port, host.last_seen});
  }
  for (const SeRecord* se : registry_.all()) {  // map-ordered by se_id
    out.push_back(ha::SeUpsertRecord{se->se_id, se->mac, se->ip, se->service, se->dpid, se->port,
                                     se->last_heartbeat});
  }
  out.push_back(ha::DefaultActionRecord{policies_.default_action()});
  for (const Policy& policy : policies_.policies()) {
    out.push_back(ha::PolicyAddedRecord{policy});
  }
  for (const auto& [key, info] : blocked_flows_) {
    out.push_back(ha::FlowBlockedRecord{key, info.ingress_dpid, info.ingress_port});
  }
  for (const auto& [key, entry] : offloaded_flows_) {  // map-ordered
    out.push_back(ha::FlowOffloadedRecord{key, entry.inspected_bytes});
  }
  if (dhcp_) {
    std::vector<std::pair<MacAddress, DhcpPool::Lease>> leases(dhcp_->leases().begin(),
                                                               dhcp_->leases().end());
    std::sort(leases.begin(), leases.end(), [](const auto& a, const auto& b) {
      return a.first.to_uint64() < b.first.to_uint64();
    });
    for (const auto& [mac, lease] : leases) {
      out.push_back(ha::DhcpLeaseRecord{mac, lease.ip, lease.expires});
    }
  }
  return out;
}

void Controller::import_snapshot(const std::vector<ha::RecordBody>& records) {
  routing_ = RoutingTable(config_.host_timeout, config_.routing_shards);
  registry_ = ServiceRegistry(config_.se_liveness_timeout);
  policies_ = PolicyTable(config_.default_action);
  install_policy_observer();
  blocked_flows_.clear();
  offloaded_flows_.clear();
  ls_ports_.clear();
  dhcp_.reset();
  topology_ = topo::TopologyGraph{};
  ++epoch_;
  for (const ha::RecordBody& record : records) apply_replicated(record);
}

void Controller::note_promoted() {
  // No cached decision, cookie template or suppressed packet-in computed
  // before the failover may replay against the post-failover network.
  ++epoch_;
  raise(mon::EventType::kFailover, "controller", "promoted to active");
  start_housekeeping();
}

void Controller::begin_reconciliation() {
  reconcile_report_ = ReconcileReport{};
  reconcile_pending_.clear();
  for (const auto& [dpid, state] : switches_) {
    if (state.connected && state.channel != nullptr) {
      reconcile_pending_.insert(dpid);
      state.channel->send_to_switch(of::StatsRequest{});
    }
  }
  reconciling_ = true;
  if (reconcile_pending_.empty()) finish_reconciliation();
}

void Controller::finish_reconciliation() {
  reconciling_ = false;
  reconcile_report_.completed_at = sim_->now();
  raise(mon::EventType::kReconciled, "controller",
        std::to_string(reconcile_report_.entries_audited) + " entries audited, " +
            std::to_string(reconcile_report_.stale_removed) + " stale removed, " +
            std::to_string(reconcile_report_.drops_reinstalled) + " drops reinstalled");
}

void Controller::audit_switch_stats(DatapathId dpid, const of::StatsReply& reply) {
  ++reconcile_report_.switches_audited;
  // Exact keys whose drop entry already exists on this switch.
  std::set<pkt::FlowKey> dropped_here;

  const auto remove_entry = [&](const of::FlowStats& fs) {
    of::FlowMod mod;
    mod.command = of::FlowModCommand::kDeleteStrict;
    mod.entry.match = fs.match;
    mod.entry.priority = fs.priority;
    send_flow_mod(dpid, mod);
    ++reconcile_report_.stale_removed;
  };

  for (const of::FlowStats& fs : reply.flows) {
    ++reconcile_report_.entries_audited;
    // Wildcard entries are administrator-installed, not controller flow
    // state; the audit leaves them alone.
    if (!fs.match.is_exact()) continue;
    const pkt::FlowKey key = fs.match.flow_key();
    const bool blocked = blocked_flows_.contains(key);
    const Policy* policy = policies_.lookup(key);
    const bool denied =
        (policy != nullptr ? policy->action : policies_.default_action()) == PolicyAction::kDeny;

    if (fs.drop) {
      // A drop entry is legitimate only while its flow is still blocked or
      // policy-denied; anything else is an orphan from the previous active
      // (e.g. a flow unblocked after the entry was installed).
      if (blocked || denied) {
        dropped_here.insert(key);
      } else {
        remove_entry(fs);
      }
      continue;
    }
    // Forwarding entry. A blocked flow must not forward: overwrite the
    // entry with a drop in place (same match/priority).
    if (blocked) {
      of::FlowMod mod;
      mod.command = of::FlowModCommand::kModifyStrict;
      mod.entry.match = fs.match;
      mod.entry.priority = fs.priority;
      mod.entry.actions = of::drop();
      send_flow_mod(dpid, mod);
      ++reconcile_report_.drops_reinstalled;
      dropped_here.insert(key);
      continue;
    }
    if (denied) {
      // Policy changed to deny after the previous active installed the path.
      remove_entry(fs);
      continue;
    }
    // Entries whose endpoints the replicated state never heard of are
    // orphans (both hosts expired or left before the failover).
    const bool src_known =
        routing_.find(key.dl_src) != nullptr || registry_.find_by_mac(key.dl_src) != nullptr;
    const bool dst_known =
        routing_.find(key.dl_dst) != nullptr || registry_.find_by_mac(key.dl_dst) != nullptr;
    if (!src_known || !dst_known) remove_entry(fs);
  }

  // Re-install drops the switch lost (e.g. it idle-expired while no active
  // was watching, or the crash raced the install).
  for (const auto& [key, info] : blocked_flows_) {
    if (info.ingress_dpid != dpid || info.ingress_port == kInvalidPort) continue;
    if (dropped_here.contains(key)) continue;
    install_drop(dpid, info.ingress_port, key);
    ++reconcile_report_.drops_reinstalled;
  }
}

std::uint64_t Controller::channel_outbox_dropped() const {
  std::uint64_t total = 0;
  for (const auto& [dpid, state] : switches_) {
    if (state.channel != nullptr) total += state.channel->outbox_dropped();
  }
  return total;
}

std::size_t Controller::channel_backlog() const {
  std::size_t total = 0;
  for (const auto& [dpid, state] : switches_) {
    if (state.channel != nullptr) {
      total += state.channel->outbox_depth_to_switch() +
               state.channel->outbox_depth_to_controller();
    }
  }
  return total;
}

void Controller::raise(mon::EventType type, std::string subject, std::string detail,
                       DatapathId dpid, std::uint64_t se_id, std::uint8_t severity,
                       const pkt::FlowKey* flow) {
  mon::NetworkEvent event;
  event.time = sim_->now();
  event.type = type;
  event.subject = std::move(subject);
  event.detail = std::move(detail);
  event.dpid = dpid;
  event.se_id = se_id;
  event.severity = severity;
  if (flow != nullptr) event.flow = *flow;
  events_.append(std::move(event));
}

}  // namespace livesec::ctrl
