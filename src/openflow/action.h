// OpenFlow actions executed by the switch datapath on matching packets.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/mac_address.h"
#include "common/small_vector.h"
#include "common/types.h"

namespace livesec::of {

/// Forward out of a specific port.
struct ActionOutput {
  PortId port = kInvalidPort;
  friend bool operator==(const ActionOutput&, const ActionOutput&) = default;
};

/// Flood out of every port except the ingress (OFPP_FLOOD).
struct ActionFlood {
  friend bool operator==(const ActionFlood&, const ActionFlood&) = default;
};

/// Send to the controller as a PacketIn (OFPP_CONTROLLER).
struct ActionController {
  friend bool operator==(const ActionController&, const ActionController&) = default;
};

/// Rewrite destination MAC — used by the ingress AS switch to steer a flow to
/// a service element (paper §IV.A step i).
struct ActionSetDlDst {
  MacAddress mac;
  friend bool operator==(const ActionSetDlDst&, const ActionSetDlDst&) = default;
};

/// Rewrite source MAC.
struct ActionSetDlSrc {
  MacAddress mac;
  friend bool operator==(const ActionSetDlSrc&, const ActionSetDlSrc&) = default;
};

/// Explicitly drop (an empty action list also drops; the explicit form makes
/// security-drop entries self-documenting in dumps).
struct ActionDrop {
  friend bool operator==(const ActionDrop&, const ActionDrop&) = default;
};

using Action = std::variant<ActionOutput, ActionFlood, ActionController, ActionSetDlDst,
                            ActionSetDlSrc, ActionDrop>;
/// Inline capacity 2 covers the overwhelmingly common set-field + output
/// pair without a heap allocation per copied entry (see SmallVector).
using ActionList = SmallVector<Action, 2>;

std::string to_string(const Action& action);
std::string to_string(const ActionList& actions);

inline ActionList output_to(PortId port) { return {ActionOutput{port}}; }
inline ActionList drop() { return {ActionDrop{}}; }

}  // namespace livesec::of
