#include "openflow/action.h"

#include <sstream>

namespace livesec::of {

std::string to_string(const Action& action) {
  struct Visitor {
    std::string operator()(const ActionOutput& a) const {
      return "output:" + std::to_string(a.port);
    }
    std::string operator()(const ActionFlood&) const { return "flood"; }
    std::string operator()(const ActionController&) const { return "controller"; }
    std::string operator()(const ActionSetDlDst& a) const {
      return "set_dl_dst:" + a.mac.to_string();
    }
    std::string operator()(const ActionSetDlSrc& a) const {
      return "set_dl_src:" + a.mac.to_string();
    }
    std::string operator()(const ActionDrop&) const { return "drop"; }
  };
  return std::visit(Visitor{}, action);
}

std::string to_string(const ActionList& actions) {
  if (actions.empty()) return "drop(empty)";
  std::ostringstream out;
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (i) out << ",";
    out << to_string(actions[i]);
  }
  return out.str();
}

}  // namespace livesec::of
