// Control-plane messages exchanged over the secure channel
// (a faithful subset of OpenFlow 1.0).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/types.h"
#include "openflow/flow_table.h"
#include "packet/packet.h"

namespace livesec::of {

/// Why a packet was punted to the controller.
enum class PacketInReason { kNoMatch, kAction };

/// Switch -> controller: a packet needing a decision. LiveSec's location
/// discovery (§III.C.2), end-to-end routing (§III.C.3) and service element
/// messaging (§III.D.1) are all driven by PacketIn.
struct PacketIn {
  std::uint32_t buffer_id = 0;
  PortId in_port = kInvalidPort;
  PacketInReason reason = PacketInReason::kNoMatch;
  pkt::PacketPtr packet;
};

/// Controller -> switch: emit a packet (possibly a buffered one).
struct PacketOut {
  /// Buffer id from a previous PacketIn, or kNoBuffer to use `packet`.
  static constexpr std::uint32_t kNoBuffer = 0xFFFFFFFFu;
  std::uint32_t buffer_id = kNoBuffer;
  PortId in_port = kInvalidPort;  // for flood semantics
  ActionList actions;
  pkt::PacketPtr packet;  // used when buffer_id == kNoBuffer
};

enum class FlowModCommand { kAdd, kModifyStrict, kDeleteStrict, kDelete };

/// Controller -> switch: install/modify/remove flow entries.
struct FlowMod {
  FlowModCommand command = FlowModCommand::kAdd;
  FlowEntry entry;  // match+priority identify the target for modify/delete
  /// Ask the switch to send FlowRemoved when this entry expires.
  bool notify_on_removal = false;
  /// Also release this buffered packet through the new entry's actions.
  std::uint32_t buffer_id = PacketOut::kNoBuffer;
};

/// Controller -> switch: several FlowMods applied in order, delivered as one
/// channel message. The reactive fast path sends a flow's whole entry set
/// (ingress + steering hops + egress, up to the 4-entry redirection chain of
/// paper §IV.A) per switch in one batch instead of N independent sends.
struct FlowModBatch {
  std::vector<FlowMod> mods;
};

/// Switch -> controller: an entry expired or was deleted.
struct FlowRemoved {
  Match match;
  std::uint16_t priority = 0;
  std::uint64_t cookie = 0;
  RemovalReason reason = RemovalReason::kIdleTimeout;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
};

/// Switch -> controller on connect: datapath description.
struct FeaturesReply {
  DatapathId datapath_id = 0;
  std::uint32_t num_ports = 0;
  std::string name;
};

/// Liveness probe (either direction); `token` is echoed back.
struct EchoRequest {
  std::uint64_t token = 0;
};
struct EchoReply {
  std::uint64_t token = 0;
};

enum class PortChange { kUp, kDown };

/// Switch -> controller: a port changed state.
struct PortStatus {
  PortId port = kInvalidPort;
  PortChange change = PortChange::kUp;
};

/// Controller -> switch: request per-table statistics.
struct StatsRequest {};

struct FlowStats {
  Match match;
  std::uint16_t priority = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  /// True when the entry discards matching packets (its action list drops).
  /// Post-failover reconciliation audits drop entries against the promoted
  /// controller's replicated blocked-flow state.
  bool drop = false;
};

/// Switch -> controller: statistics snapshot.
struct StatsReply {
  std::uint64_t table_lookups = 0;
  std::uint64_t table_hits = 0;
  std::vector<FlowStats> flows;
};

using Message = std::variant<PacketIn, PacketOut, FlowMod, FlowRemoved, FeaturesReply, EchoRequest,
                             EchoReply, PortStatus, StatsRequest, StatsReply, FlowModBatch>;

const char* message_name(const Message& m);

}  // namespace livesec::of
