// Byte-level wire codec for the control-channel messages (OpenFlow 1.0-style
// framing: fixed header + typed body). The in-simulator SecureChannel passes
// structured messages for speed, but this codec makes the protocol layer
// byte-faithful: every Message can be framed for a real TCP/TLS channel and
// parsed back, and a frame stream can be segmented from a byte buffer.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "openflow/messages.h"

namespace livesec::of {

/// Wire message type codes (subset of OFPT_*).
enum class WireType : std::uint8_t {
  kEchoRequest = 2,
  kEchoReply = 3,
  kFeaturesReply = 6,
  kPacketIn = 10,
  kFlowRemoved = 11,
  kPortStatus = 12,
  kPacketOut = 13,
  kFlowMod = 14,
  kStatsRequest = 16,
  kStatsReply = 17,
  kFlowModBatch = 18,  // modeled extension: several FlowMods in one frame
};

inline constexpr std::uint8_t kWireVersion = 0x01;  // OpenFlow 1.0

/// Encodes one message into a framed byte vector:
///   version(1) type(1) length(2) xid(4) body...
std::vector<std::uint8_t> encode_message(const Message& message, std::uint32_t xid = 0);

/// Fixed offsets (relative to a FlowMod body start) of the fields the flow
/// fast path patches when replaying a preserialized template: the fields sit
/// at constant positions because everything before them is fixed-size.
struct FlowModPatchOffsets {
  static constexpr std::size_t kBufferId = 2;        // u32
  static constexpr std::size_t kMatchTpSrc = 39;     // u16 (body+6 match, +33)
  static constexpr std::size_t kMatchTpDst = 41;     // u16
  static constexpr std::size_t kCookie = 61;         // u64
};

/// encode_message variant that additionally records where each FlowMod body
/// begins inside the returned frame (one entry per mod: a lone kFlowMod
/// yields one offset, a kFlowModBatch one per batched mod, anything else
/// none). Combined with FlowModPatchOffsets this lets a template frame be
/// serialized once and replayed per flow with only byte patches.
std::vector<std::uint8_t> encode_message(const Message& message, std::uint32_t xid,
                                         std::vector<std::size_t>* flow_mod_offsets);

/// Decoded frame: the message plus its transaction id.
struct DecodedFrame {
  Message message;
  std::uint32_t xid = 0;
};

/// Parses one complete frame. Returns nullopt for malformed input
/// (bad version, unknown type, truncated body, length mismatch).
std::optional<DecodedFrame> decode_message(std::span<const std::uint8_t> frame);

/// Stream segmentation: consumes as many complete frames as `buffer` holds,
/// appending them to `out`; returns the number of bytes consumed (callers
/// keep the unconsumed tail for the next read, exactly like a TCP decoder).
/// Malformed frames stop consumption (the caller should drop the channel).
std::size_t decode_stream(std::span<const std::uint8_t> buffer, std::vector<DecodedFrame>& out);

// Exposed for reuse/testing: Match and ActionList sub-codecs.
void encode_match(pkt::BufferWriter& w, const Match& match);
std::optional<Match> decode_match(pkt::BufferReader& r);
void encode_actions(pkt::BufferWriter& w, const ActionList& actions);
std::optional<ActionList> decode_actions(pkt::BufferReader& r);

}  // namespace livesec::of
