// Flow entries and the per-switch flow table.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "openflow/action.h"
#include "openflow/match.h"

namespace livesec::of {

/// One rule in a switch's flow table: match + actions + counters + timeouts.
struct FlowEntry {
  Match match;
  ActionList actions;
  std::uint16_t priority = 100;
  /// Entry is evicted if unmatched for this long (0 = never).
  SimTime idle_timeout = 0;
  /// Entry is evicted this long after installation regardless of use (0 = never).
  SimTime hard_timeout = 0;
  /// Opaque cookie chosen by the controller to recognize its own entries.
  std::uint64_t cookie = 0;

  // Counters (maintained by the flow table on each hit).
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  SimTime installed_at = 0;
  SimTime last_hit = 0;

  std::string to_string() const;
};

/// Reason codes reported when an entry is removed (OFPRR_*).
enum class RemovalReason { kIdleTimeout, kHardTimeout, kDelete };

/// Priority-ordered flow table with exact OpenFlow 1.0 semantics:
/// highest priority wins; among equal priorities the most specific match
/// wins; ties broken by install order (oldest first).
class FlowTable {
 public:
  /// Called when an entry with `notify_on_removal` expires or is deleted.
  using RemovalCallback = std::function<void(const FlowEntry&, RemovalReason)>;

  /// Adds an entry. An existing entry with identical match & priority is
  /// replaced (counters reset), per OFPFC_ADD semantics.
  void add(FlowEntry entry, SimTime now);

  /// Updates actions of entries whose match equals `match` exactly
  /// (OFPFC_MODIFY_STRICT). Returns number updated.
  std::size_t modify_strict(const Match& match, std::uint16_t priority, const ActionList& actions);

  /// Removes entries whose match equals `match` exactly (OFPFC_DELETE_STRICT).
  std::size_t remove_strict(const Match& match, std::uint16_t priority, SimTime now);

  /// Removes every entry matched-or-wildcard-covered by `match`
  /// (OFPFC_DELETE, non-strict: `match` must be equal or more general).
  std::size_t remove_matching(const Match& match, SimTime now);

  /// Looks up the best entry for a packet; bumps counters on hit. Expired
  /// entries are lazily evicted during lookup.
  const FlowEntry* lookup(PortId in_port, const pkt::FlowKey& key, std::size_t packet_bytes,
                          SimTime now);

  /// Non-mutating lookup (no counter bump, no eviction) for diagnostics.
  const FlowEntry* peek(PortId in_port, const pkt::FlowKey& key, SimTime now) const;

  /// Evicts all entries that have timed out as of `now`. Returns the count.
  std::size_t expire(SimTime now);

  void set_removal_callback(RemovalCallback cb) { on_removal_ = std::move(cb); }

  std::size_t size() const { return entries_.size(); }
  const std::vector<FlowEntry>& entries() const { return entries_; }

  std::uint64_t lookups() const { return lookups_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return lookups_ - hits_; }

  std::string dump() const;

 private:
  bool expired(const FlowEntry& e, SimTime now) const;
  /// True when `general` covers every packet `specific` could match.
  static bool covers(const Match& general, const Match& specific);

  std::vector<FlowEntry> entries_;  // kept sorted: priority desc, specificity desc, age asc
  RemovalCallback on_removal_;
  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t install_seq_ = 0;
  std::vector<std::uint64_t> seqs_;  // parallel to entries_, for stable age ordering
};

}  // namespace livesec::of
