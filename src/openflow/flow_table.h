// Flow entries and the per-switch flow table.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/types.h"
#include "openflow/action.h"
#include "openflow/match.h"

namespace livesec::of {

/// One rule in a switch's flow table: match + actions + counters + timeouts.
struct FlowEntry {
  Match match;
  ActionList actions;
  std::uint16_t priority = 100;
  /// Entry is evicted if unmatched for this long (0 = never).
  SimTime idle_timeout = 0;
  /// Entry is evicted this long after installation regardless of use (0 = never).
  SimTime hard_timeout = 0;
  /// Opaque cookie chosen by the controller to recognize its own entries.
  std::uint64_t cookie = 0;

  // Counters (maintained by the flow table on each hit).
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  SimTime installed_at = 0;
  SimTime last_hit = 0;

  std::string to_string() const;
};

/// Reason codes reported when an entry is removed (OFPRR_*).
enum class RemovalReason { kIdleTimeout, kHardTimeout, kDelete };

/// Flow table with exact OpenFlow 1.0 semantics: highest priority wins;
/// among equal priorities the most specific match wins; ties broken by
/// install order (oldest first).
///
/// Internally two-tier, OvS-microflow-cache style:
///  - an exact tier: hash index on (in_port, 9-tuple) serving fully-exact
///    entries (everything the controller's path/drop installation emits) in
///    O(1) regardless of table size;
///  - a wildcard tier: the classic priority/specificity-ordered list,
///    scanned only when the exact tier misses or a strictly-higher-priority
///    wildcard entry could shadow the exact hit.
/// Timeout eviction uses a deadline-bucketed timer wheel instead of a
/// per-lookup full-table sweep, so expiry cost is proportional to the
/// entries actually expiring, not to table size. Idle-timeout refreshes are
/// lazy: a hit only bumps `last_hit`; the stale wheel record re-files itself
/// when its bucket fires.
class FlowTable {
 public:
  /// Called when an entry with `notify_on_removal` expires or is deleted.
  using RemovalCallback = std::function<void(const FlowEntry&, RemovalReason)>;

  /// Adds an entry. An existing entry with identical match & priority is
  /// replaced (counters reset), per OFPFC_ADD semantics.
  void add(FlowEntry entry, SimTime now);

  /// Updates actions of entries whose match equals `match` exactly
  /// (OFPFC_MODIFY_STRICT). Returns number updated.
  std::size_t modify_strict(const Match& match, std::uint16_t priority, const ActionList& actions);

  /// Removes entries whose match equals `match` exactly (OFPFC_DELETE_STRICT).
  std::size_t remove_strict(const Match& match, std::uint16_t priority, SimTime now);

  /// Removes every entry matched-or-wildcard-covered by `match`
  /// (OFPFC_DELETE, non-strict: `match` must be equal or more general).
  std::size_t remove_matching(const Match& match, SimTime now);

  /// Looks up the best entry for a packet; bumps counters on hit. Expired
  /// entries are lazily evicted during lookup (timer wheel, amortized O(1)).
  const FlowEntry* lookup(PortId in_port, const pkt::FlowKey& key, std::size_t packet_bytes,
                          SimTime now);

  /// Non-mutating lookup (no counter bump, no eviction) for diagnostics.
  const FlowEntry* peek(PortId in_port, const pkt::FlowKey& key, SimTime now) const;

  /// Evicts all entries that have timed out as of `now`. Returns the count.
  std::size_t expire(SimTime now);

  void set_removal_callback(RemovalCallback cb) { on_removal_ = std::move(cb); }

  std::size_t size() const { return slots_.size(); }

  /// Snapshot of all entries in table order (priority desc, specificity
  /// desc, install order asc). Materialized on demand — diagnostics/stats
  /// path, not per-packet.
  std::vector<FlowEntry> entries() const;

  /// Visits every entry (unordered) without materializing a snapshot.
  template <typename F>
  void for_each_entry(F&& fn) const {
    for (const auto& [id, slot] : slots_) fn(slot.entry);
  }

  std::uint64_t lookups() const { return lookups_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return lookups_ - hits_; }
  /// Hits served by the O(1) exact tier (no wildcard scan involved).
  std::uint64_t exact_hits() const { return exact_hits_; }
  /// Hits resolved by scanning the wildcard tier.
  std::uint64_t wildcard_hits() const { return hits_ - exact_hits_; }
  /// Entries currently in the wildcard (linear-scan) tier.
  std::size_t wildcard_size() const { return wild_order_.size(); }

  std::string dump() const;

 private:
  /// Hash key of the exact tier: switch ingress port + the 9-tuple.
  struct ExactKey {
    PortId in_port = 0;
    pkt::FlowKey key;
    friend bool operator==(const ExactKey&, const ExactKey&) = default;
  };
  struct ExactKeyHash {
    std::size_t operator()(const ExactKey& k) const noexcept {
      return static_cast<std::size_t>(splitmix64(hash_combine(k.key.hash(), k.in_port)));
    }
  };

  struct Slot {
    FlowEntry entry;
    std::uint64_t seq = 0;  // install order; stable across OFPFC_ADD replace
    bool exact = false;
    /// Epoch of this slot's live timer-wheel record; a fired record whose
    /// epoch doesn't match is stale (entry was replaced) and is skipped.
    std::uint32_t wheel_epoch = 0;
  };

  bool expired(const FlowEntry& e, SimTime now) const;
  /// True when `general` covers every packet `specific` could match.
  static bool covers(const Match& general, const Match& specific);
  /// Earliest time `e` could expire given its current clocks (0 = never).
  static SimTime next_deadline(const FlowEntry& e);
  /// (Re-)files the slot's timer-wheel record at its current deadline.
  void file_in_wheel(std::uint64_t id, Slot& slot);
  /// Fires every due wheel bucket: evicts entries expired as of `now`,
  /// re-files entries whose idle clock was refreshed since filing.
  std::size_t advance(SimTime now);
  /// Unlinks a slot from its tier index (exact hash or wildcard order).
  void detach(std::uint64_t id, const Slot& slot);
  /// Removes one entry, firing the removal callback with `reason`.
  void remove_slot(std::uint64_t id, RemovalReason reason);
  /// Table-order comparison (priority desc, specificity desc, seq asc).
  bool ordered_before(const Slot& a, const Slot& b) const;

  /// All live entries, keyed by a unique install id (node-stable).
  std::unordered_map<std::uint64_t, Slot> slots_;
  /// Exact tier: (in_port, 9-tuple) -> ids, sorted by priority desc. Almost
  /// always one id; a second appears when e.g. a security drop (priority
  /// 200) overlays a forwarding entry (priority 100) for the same flow.
  std::unordered_map<ExactKey, std::vector<std::uint64_t>, ExactKeyHash> exact_index_;
  /// Wildcard tier in table order (priority desc, specificity desc, seq asc).
  std::vector<std::uint64_t> wild_order_;
  /// Timer wheel: deadline -> (id, epoch) records filed at that deadline.
  std::map<SimTime, std::vector<std::pair<std::uint64_t, std::uint32_t>>> wheel_;

  RemovalCallback on_removal_;
  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t exact_hits_ = 0;
  std::uint64_t next_id_ = 0;
};

}  // namespace livesec::of
