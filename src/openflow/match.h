// OpenFlow 1.0-style flow match with per-field wildcards.
#pragma once

#include <cstdint>
#include <string>

#include "common/ip_address.h"
#include "common/mac_address.h"
#include "common/types.h"
#include "packet/flow_key.h"

namespace livesec::of {

/// Wildcard bits: a set bit means "field is ignored when matching".
enum class Wildcard : std::uint32_t {
  kInPort = 1u << 0,
  kDlVlan = 1u << 1,
  kDlSrc = 1u << 2,
  kDlDst = 1u << 3,
  kDlType = 1u << 4,
  kNwSrc = 1u << 5,
  kNwDst = 1u << 6,
  kNwProto = 1u << 7,
  kTpSrc = 1u << 8,
  kTpDst = 1u << 9,
  kAll = (1u << 10) - 1,
};

constexpr std::uint32_t operator|(Wildcard a, Wildcard b) {
  return static_cast<std::uint32_t>(a) | static_cast<std::uint32_t>(b);
}
constexpr std::uint32_t operator|(std::uint32_t a, Wildcard b) {
  return a | static_cast<std::uint32_t>(b);
}

/// The 12-tuple match of OpenFlow 1.0: switch in-port, the paper's 9-tuple
/// (§III.C.3) and wildcards selecting which fields participate.
class Match {
 public:
  /// A match with all fields wildcarded (matches everything).
  Match() = default;

  /// Exact match on every field of `key` plus `in_port`.
  static Match exact(PortId in_port, const pkt::FlowKey& key);

  /// Exact match on the 9-tuple only (in_port wildcarded).
  static Match exact_flow(const pkt::FlowKey& key);

  Match& wildcard(Wildcard field);
  Match& in_port(PortId v);
  Match& dl_vlan(std::uint16_t v);
  Match& dl_src(MacAddress v);
  Match& dl_dst(MacAddress v);
  Match& dl_type(std::uint16_t v);
  Match& nw_src(Ipv4Address v);
  Match& nw_dst(Ipv4Address v);
  Match& nw_proto(std::uint8_t v);
  Match& tp_src(std::uint16_t v);
  Match& tp_dst(std::uint16_t v);

  bool matches(PortId in_port, const pkt::FlowKey& key) const;

  /// True when no field is constrained.
  bool is_wildcard_all() const { return wildcards_ == static_cast<std::uint32_t>(Wildcard::kAll); }

  /// True when every field is constrained: the match accepts exactly one
  /// (in_port, 9-tuple) combination. Fully-exact entries are what the
  /// controller's `install_path`/`install_drop` emit, and they are served
  /// from the flow table's O(1) hash tier.
  bool is_exact() const { return wildcards_ == 0; }

  /// The 9-tuple this match constrains. Meaningful only when `is_exact()`;
  /// together with `in_port_value()` it reconstructs the hash-tier key, and
  /// `FlowKey::hash()` makes it hash-compatible with packet lookups.
  pkt::FlowKey flow_key() const;

  /// Number of exact-match (non-wildcarded) fields; used to order overlapping
  /// entries of equal priority (more specific wins).
  int specificity() const;

  std::uint32_t wildcards() const { return wildcards_; }

  // Field accessors (meaningful only when the corresponding wildcard bit is
  // clear). Used for covers() checks and diagnostics.
  PortId in_port_value() const { return in_port_; }
  std::uint16_t dl_vlan_value() const { return dl_vlan_; }
  MacAddress dl_src_value() const { return dl_src_; }
  MacAddress dl_dst_value() const { return dl_dst_; }
  std::uint16_t dl_type_value() const { return dl_type_; }
  Ipv4Address nw_src_value() const { return nw_src_; }
  Ipv4Address nw_dst_value() const { return nw_dst_; }
  std::uint8_t nw_proto_value() const { return nw_proto_; }
  std::uint16_t tp_src_value() const { return tp_src_; }
  std::uint16_t tp_dst_value() const { return tp_dst_; }

  std::string to_string() const;

  friend bool operator==(const Match&, const Match&) = default;

 private:
  std::uint32_t wildcards_ = static_cast<std::uint32_t>(Wildcard::kAll);
  PortId in_port_ = 0;
  std::uint16_t dl_vlan_ = pkt::kVlanNone;
  MacAddress dl_src_;
  MacAddress dl_dst_;
  std::uint16_t dl_type_ = 0;
  Ipv4Address nw_src_;
  Ipv4Address nw_dst_;
  std::uint8_t nw_proto_ = 0;
  std::uint16_t tp_src_ = 0;
  std::uint16_t tp_dst_ = 0;
};

}  // namespace livesec::of
