// The secure channel between an AS switch and the LiveSec controller.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>

#include "common/types.h"
#include "openflow/messages.h"

namespace livesec::sim {
class Simulator;
}

namespace livesec::of {

/// Interface the switch side of a channel exposes to the controller.
class SwitchEndpoint {
 public:
  virtual ~SwitchEndpoint() = default;
  virtual DatapathId datapath_id() const = 0;
  /// Delivers a controller message to the switch.
  virtual void handle_controller_message(const Message& message) = 0;
};

/// Interface the controller side exposes to switches.
class ControllerEndpoint {
 public:
  virtual ~ControllerEndpoint() = default;
  /// Delivers a switch message to the controller.
  virtual void handle_switch_message(DatapathId dpid, const Message& message) = 0;
  /// Invoked once when a switch connects its channel.
  virtual void handle_switch_connected(DatapathId dpid, const FeaturesReply& features) = 0;
  /// Invoked when a switch channel closes.
  virtual void handle_switch_disconnected(DatapathId dpid) = 0;
};

/// Out-of-band control connection with configurable one-way latency.
///
/// In the Tsinghua deployment the channel is a management-network TCP+TLS
/// connection; here delivery is an event scheduled `latency` into the future,
/// which preserves the control-plane round-trip cost that dominates the
/// first-packet latency measured in paper §V.B.3.
class SecureChannel {
 public:
  SecureChannel(sim::Simulator& sim, SwitchEndpoint& sw, ControllerEndpoint& controller,
                SimTime one_way_latency = 100 * kMicrosecond);

  /// When enabled, every message is serialized through the OpenFlow wire
  /// codec and parsed back before delivery — byte-faithful transport, as a
  /// real TCP/TLS channel would carry. Messages that fail the codec are
  /// dropped and counted (they would have been protocol errors on the wire).
  void set_wire_encoding(bool enabled) { wire_encoding_ = enabled; }
  bool wire_encoding() const { return wire_encoding_; }
  std::uint64_t wire_codec_failures() const { return wire_failures_; }

  /// Announces the switch to the controller (FeaturesReply handshake).
  void connect(const FeaturesReply& features);
  void disconnect();
  bool connected() const { return connected_; }

  /// Caps the number of in-flight messages per direction. A send beyond the
  /// cap is dropped and counted — the control connection applies
  /// backpressure instead of queueing unboundedly (a replication or stats
  /// burst must not grow the outbox without limit). 0 = unbounded.
  void set_outbox_limit(std::size_t limit) { outbox_limit_ = limit; }
  std::size_t outbox_limit() const { return outbox_limit_; }
  /// Messages dropped by the outbox bound (both directions).
  std::uint64_t outbox_dropped() const { return outbox_dropped_; }
  /// Current in-flight depth per direction (backpressure observability).
  std::size_t outbox_depth_to_switch() const { return outbox_switch_.size(); }
  std::size_t outbox_depth_to_controller() const { return outbox_controller_.size(); }

  /// Fault injection: while set, the channel stays "connected" but silently
  /// loses every message in both directions — a network partition as TCP
  /// experiences it before keepalives fire. OFPT_ECHO liveness is what
  /// detects this state.
  void set_blackhole(bool enabled) { blackhole_ = enabled; }
  bool blackhole() const { return blackhole_; }
  std::uint64_t blackholed_messages() const { return blackholed_; }

  /// Switch -> controller, delivered after the channel latency.
  void send_to_controller(Message message);
  /// Controller -> switch, delivered after the channel latency.
  void send_to_switch(Message message);
  /// Controller -> switch, from an already-encoded wire frame (a
  /// preserialized flow-mod template with per-flow fields patched in). The
  /// frame decodes once here — the per-send encode of the wire_encoding
  /// round trip is skipped entirely. Malformed frames are dropped and
  /// counted like any other codec failure.
  void send_frame_to_switch(std::span<const std::uint8_t> frame);

  SimTime latency() const { return latency_; }
  std::uint64_t messages_to_controller() const { return to_controller_; }
  std::uint64_t messages_to_switch() const { return to_switch_; }

 private:
  /// Applies the wire codec round trip when enabled; nullopt = drop. Takes
  /// ownership so the no-codec path forwards without copying the variant.
  std::optional<Message> transport(Message&& message);
  /// Queues a controller->switch message and schedules its delivery.
  void deliver_to_switch(Message message);

  sim::Simulator* sim_;
  SwitchEndpoint* switch_;
  ControllerEndpoint* controller_;
  SimTime latency_;
  /// In-flight messages per direction. Delivery order is FIFO because every
  /// message in a direction travels the same fixed latency; the scheduled
  /// callback pops the head. Keeping the payload here instead of in the
  /// callback capture keeps the capture at one pointer, inside
  /// InlineFunction's no-allocation size.
  std::deque<Message> outbox_switch_;
  std::deque<Message> outbox_controller_;
  bool connected_ = false;
  bool wire_encoding_ = false;
  bool blackhole_ = false;
  /// Default bound: far above any healthy latency-window backlog, small
  /// enough that a runaway sender degrades into counted drops, not OOM.
  std::size_t outbox_limit_ = 8192;
  std::uint64_t to_controller_ = 0;
  std::uint64_t to_switch_ = 0;
  std::uint64_t wire_failures_ = 0;
  std::uint64_t outbox_dropped_ = 0;
  std::uint64_t blackholed_ = 0;
  std::uint32_t next_xid_ = 1;
};

}  // namespace livesec::of
