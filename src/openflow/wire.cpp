#include "openflow/wire.h"

#include "packet/buffer.h"

namespace livesec::of {

namespace {

constexpr std::size_t kHeaderSize = 8;

void encode_mac(pkt::BufferWriter& w, const MacAddress& mac) { w.bytes(mac.bytes()); }

MacAddress decode_mac(pkt::BufferReader& r) {
  std::array<std::uint8_t, 6> bytes{};
  for (auto& b : bytes) b = r.u8();
  return MacAddress(bytes);
}

// Action TLV type codes (OFPAT_*-flavored).
constexpr std::uint16_t kActionOutput = 0;
constexpr std::uint16_t kActionSetDlSrc = 4;
constexpr std::uint16_t kActionSetDlDst = 5;
constexpr std::uint16_t kActionFlood = 100;       // modeled pseudo-ports
constexpr std::uint16_t kActionController = 101;
constexpr std::uint16_t kActionDrop = 102;

void encode_entry(pkt::BufferWriter& w, const FlowEntry& entry) {
  encode_match(w, entry.match);
  w.u16(entry.priority);
  w.u64(static_cast<std::uint64_t>(entry.idle_timeout));
  w.u64(static_cast<std::uint64_t>(entry.hard_timeout));
  w.u64(entry.cookie);
  encode_actions(w, entry.actions);
}

void encode_flow_mod_body(pkt::BufferWriter& w, const FlowMod& mod) {
  w.u8(static_cast<std::uint8_t>(mod.command));
  w.u8(mod.notify_on_removal ? 1 : 0);
  w.u32(mod.buffer_id);
  encode_entry(w, mod.entry);
}

std::optional<FlowEntry> decode_entry(pkt::BufferReader& r) {
  FlowEntry entry;
  auto match = decode_match(r);
  if (!match) return std::nullopt;
  entry.match = *match;
  entry.priority = r.u16();
  entry.idle_timeout = static_cast<SimTime>(r.u64());
  entry.hard_timeout = static_cast<SimTime>(r.u64());
  entry.cookie = r.u64();
  auto actions = decode_actions(r);
  if (!actions) return std::nullopt;
  entry.actions = *actions;
  return entry;
}

std::optional<FlowMod> decode_flow_mod_body(pkt::BufferReader& r) {
  FlowMod mod;
  mod.command = static_cast<FlowModCommand>(r.u8());
  mod.notify_on_removal = r.u8() != 0;
  mod.buffer_id = r.u32();
  auto entry = decode_entry(r);
  if (!entry) return std::nullopt;
  mod.entry = *entry;
  return mod;
}

void encode_packet_field(pkt::BufferWriter& w, const pkt::PacketPtr& packet) {
  if (packet == nullptr) {
    w.u32(0);
    return;
  }
  // Serialize straight into the message writer — no temporary vector; the
  // length is known up front from the packet structure.
  const std::size_t n = packet->serialized_size();
  w.u32(static_cast<std::uint32_t>(n));
  w.reserve(n);
  packet->serialize_into(w);
}

/// Decodes a length-prefixed packet field; empty (length 0) yields nullptr.
bool decode_packet_field(pkt::BufferReader& r, pkt::PacketPtr& out) {
  const std::uint32_t length = r.u32();
  if (length == 0) {
    out = nullptr;
    return r.ok();
  }
  const auto bytes = r.bytes(length);
  if (!r.ok()) return false;
  auto parsed = pkt::Packet::parse(bytes);
  if (!parsed) return false;
  out = pkt::finalize(std::move(*parsed));
  return true;
}

}  // namespace

void encode_match(pkt::BufferWriter& w, const Match& match) {
  w.u32(match.wildcards());
  w.u32(match.in_port_value());
  w.u16(match.dl_vlan_value());
  encode_mac(w, match.dl_src_value());
  encode_mac(w, match.dl_dst_value());
  w.u16(match.dl_type_value());
  w.u32(match.nw_src_value().value());
  w.u32(match.nw_dst_value().value());
  w.u8(match.nw_proto_value());
  w.u16(match.tp_src_value());
  w.u16(match.tp_dst_value());
}

std::optional<Match> decode_match(pkt::BufferReader& r) {
  const std::uint32_t wildcards = r.u32();
  if (wildcards & ~static_cast<std::uint32_t>(Wildcard::kAll)) return std::nullopt;
  // Read every field, then apply only the exact (non-wildcarded) ones; the
  // setters clear the wildcard bits, reproducing the original mask.
  const std::uint32_t in_port = r.u32();
  const std::uint16_t dl_vlan = r.u16();
  const MacAddress dl_src = decode_mac(r);
  const MacAddress dl_dst = decode_mac(r);
  const std::uint16_t dl_type = r.u16();
  const Ipv4Address nw_src{r.u32()};
  const Ipv4Address nw_dst{r.u32()};
  const std::uint8_t nw_proto = r.u8();
  const std::uint16_t tp_src = r.u16();
  const std::uint16_t tp_dst = r.u16();
  if (!r.ok()) return std::nullopt;

  Match match;
  auto exact = [wildcards](Wildcard bit) {
    return (wildcards & static_cast<std::uint32_t>(bit)) == 0;
  };
  if (exact(Wildcard::kInPort)) match.in_port(in_port);
  if (exact(Wildcard::kDlVlan)) match.dl_vlan(dl_vlan);
  if (exact(Wildcard::kDlSrc)) match.dl_src(dl_src);
  if (exact(Wildcard::kDlDst)) match.dl_dst(dl_dst);
  if (exact(Wildcard::kDlType)) match.dl_type(dl_type);
  if (exact(Wildcard::kNwSrc)) match.nw_src(nw_src);
  if (exact(Wildcard::kNwDst)) match.nw_dst(nw_dst);
  if (exact(Wildcard::kNwProto)) match.nw_proto(nw_proto);
  if (exact(Wildcard::kTpSrc)) match.tp_src(tp_src);
  if (exact(Wildcard::kTpDst)) match.tp_dst(tp_dst);
  return match;
}

void encode_actions(pkt::BufferWriter& w, const ActionList& actions) {
  w.u16(static_cast<std::uint16_t>(actions.size()));
  for (const Action& action : actions) {
    if (const auto* out = std::get_if<ActionOutput>(&action)) {
      w.u16(kActionOutput);
      w.u32(out->port);
    } else if (const auto* src = std::get_if<ActionSetDlSrc>(&action)) {
      w.u16(kActionSetDlSrc);
      encode_mac(w, src->mac);
    } else if (const auto* dst = std::get_if<ActionSetDlDst>(&action)) {
      w.u16(kActionSetDlDst);
      encode_mac(w, dst->mac);
    } else if (std::get_if<ActionFlood>(&action)) {
      w.u16(kActionFlood);
    } else if (std::get_if<ActionController>(&action)) {
      w.u16(kActionController);
    } else {
      w.u16(kActionDrop);
    }
  }
}

std::optional<ActionList> decode_actions(pkt::BufferReader& r) {
  const std::uint16_t count = r.u16();
  ActionList actions;
  actions.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    const std::uint16_t type = r.u16();
    switch (type) {
      case kActionOutput: actions.push_back(ActionOutput{r.u32()}); break;
      case kActionSetDlSrc: actions.push_back(ActionSetDlSrc{decode_mac(r)}); break;
      case kActionSetDlDst: actions.push_back(ActionSetDlDst{decode_mac(r)}); break;
      case kActionFlood: actions.push_back(ActionFlood{}); break;
      case kActionController: actions.push_back(ActionController{}); break;
      case kActionDrop: actions.push_back(ActionDrop{}); break;
      default: return std::nullopt;
    }
    if (!r.ok()) return std::nullopt;
  }
  return actions;
}

std::vector<std::uint8_t> encode_message(const Message& message, std::uint32_t xid) {
  return encode_message(message, xid, nullptr);
}

std::vector<std::uint8_t> encode_message(const Message& message, std::uint32_t xid,
                                         std::vector<std::size_t>* flow_mod_offsets) {
  pkt::BufferWriter body;
  WireType type;
  // Body offsets become frame offsets once the fixed-size header prepends.
  const auto note_mod = [&]() {
    if (flow_mod_offsets != nullptr) flow_mod_offsets->push_back(kHeaderSize + body.size());
  };

  if (const auto* pin = std::get_if<PacketIn>(&message)) {
    type = WireType::kPacketIn;
    body.u32(pin->buffer_id);
    body.u32(pin->in_port);
    body.u8(static_cast<std::uint8_t>(pin->reason));
    encode_packet_field(body, pin->packet);
  } else if (const auto* pout = std::get_if<PacketOut>(&message)) {
    type = WireType::kPacketOut;
    body.u32(pout->buffer_id);
    body.u32(pout->in_port);
    encode_actions(body, pout->actions);
    encode_packet_field(body, pout->packet);
  } else if (const auto* mod = std::get_if<FlowMod>(&message)) {
    type = WireType::kFlowMod;
    note_mod();
    encode_flow_mod_body(body, *mod);
  } else if (const auto* batch = std::get_if<FlowModBatch>(&message)) {
    type = WireType::kFlowModBatch;
    body.u16(static_cast<std::uint16_t>(batch->mods.size()));
    for (const FlowMod& m : batch->mods) {
      note_mod();
      encode_flow_mod_body(body, m);
    }
  } else if (const auto* removed = std::get_if<FlowRemoved>(&message)) {
    type = WireType::kFlowRemoved;
    encode_match(body, removed->match);
    body.u16(removed->priority);
    body.u64(removed->cookie);
    body.u8(static_cast<std::uint8_t>(removed->reason));
    body.u64(removed->packet_count);
    body.u64(removed->byte_count);
  } else if (const auto* features = std::get_if<FeaturesReply>(&message)) {
    type = WireType::kFeaturesReply;
    body.u64(features->datapath_id);
    body.u32(features->num_ports);
    body.length_prefixed_string(features->name);
  } else if (const auto* echo_req = std::get_if<EchoRequest>(&message)) {
    type = WireType::kEchoRequest;
    body.u64(echo_req->token);
  } else if (const auto* echo_rep = std::get_if<EchoReply>(&message)) {
    type = WireType::kEchoReply;
    body.u64(echo_rep->token);
  } else if (const auto* status = std::get_if<PortStatus>(&message)) {
    type = WireType::kPortStatus;
    body.u32(status->port);
    body.u8(status->change == PortChange::kUp ? 1 : 0);
  } else if (std::get_if<StatsRequest>(&message)) {
    type = WireType::kStatsRequest;
  } else {
    const auto& stats = std::get<StatsReply>(message);
    type = WireType::kStatsReply;
    body.u64(stats.table_lookups);
    body.u64(stats.table_hits);
    body.u32(static_cast<std::uint32_t>(stats.flows.size()));
    for (const FlowStats& flow : stats.flows) {
      encode_match(body, flow.match);
      body.u16(flow.priority);
      body.u64(flow.packet_count);
      body.u64(flow.byte_count);
      body.u8(flow.drop ? 1 : 0);
    }
  }

  pkt::BufferWriter frame;
  frame.u8(kWireVersion);
  frame.u8(static_cast<std::uint8_t>(type));
  frame.u16(static_cast<std::uint16_t>(kHeaderSize + body.size()));
  frame.u32(xid);
  frame.bytes(body.data());
  return frame.take();
}

std::optional<DecodedFrame> decode_message(std::span<const std::uint8_t> frame) {
  pkt::BufferReader r(frame);
  if (r.u8() != kWireVersion) return std::nullopt;
  const std::uint8_t type = r.u8();
  const std::uint16_t length = r.u16();
  if (length != frame.size()) return std::nullopt;
  DecodedFrame out;
  out.xid = r.u32();

  switch (static_cast<WireType>(type)) {
    case WireType::kPacketIn: {
      PacketIn pin;
      pin.buffer_id = r.u32();
      pin.in_port = r.u32();
      pin.reason = static_cast<PacketInReason>(r.u8());
      if (!decode_packet_field(r, pin.packet)) return std::nullopt;
      out.message = std::move(pin);
      break;
    }
    case WireType::kPacketOut: {
      PacketOut pout;
      pout.buffer_id = r.u32();
      pout.in_port = r.u32();
      auto actions = decode_actions(r);
      if (!actions) return std::nullopt;
      pout.actions = *actions;
      if (!decode_packet_field(r, pout.packet)) return std::nullopt;
      out.message = std::move(pout);
      break;
    }
    case WireType::kFlowMod: {
      auto mod = decode_flow_mod_body(r);
      if (!mod) return std::nullopt;
      out.message = std::move(*mod);
      break;
    }
    case WireType::kFlowModBatch: {
      FlowModBatch batch;
      const std::uint16_t count = r.u16();
      batch.mods.reserve(count);
      for (std::uint16_t i = 0; i < count; ++i) {
        auto mod = decode_flow_mod_body(r);
        if (!mod) return std::nullopt;
        batch.mods.push_back(std::move(*mod));
      }
      out.message = std::move(batch);
      break;
    }
    case WireType::kFlowRemoved: {
      FlowRemoved removed;
      auto match = decode_match(r);
      if (!match) return std::nullopt;
      removed.match = *match;
      removed.priority = r.u16();
      removed.cookie = r.u64();
      removed.reason = static_cast<RemovalReason>(r.u8());
      removed.packet_count = r.u64();
      removed.byte_count = r.u64();
      out.message = removed;
      break;
    }
    case WireType::kFeaturesReply: {
      FeaturesReply features;
      features.datapath_id = r.u64();
      features.num_ports = r.u32();
      features.name = r.length_prefixed_string();
      out.message = std::move(features);
      break;
    }
    case WireType::kEchoRequest: out.message = EchoRequest{r.u64()}; break;
    case WireType::kEchoReply: out.message = EchoReply{r.u64()}; break;
    case WireType::kPortStatus: {
      PortStatus status;
      status.port = r.u32();
      status.change = r.u8() != 0 ? PortChange::kUp : PortChange::kDown;
      out.message = status;
      break;
    }
    case WireType::kStatsRequest: out.message = StatsRequest{}; break;
    case WireType::kStatsReply: {
      StatsReply stats;
      stats.table_lookups = r.u64();
      stats.table_hits = r.u64();
      const std::uint32_t count = r.u32();
      for (std::uint32_t i = 0; i < count; ++i) {
        FlowStats flow;
        auto match = decode_match(r);
        if (!match) return std::nullopt;
        flow.match = *match;
        flow.priority = r.u16();
        flow.packet_count = r.u64();
        flow.byte_count = r.u64();
        flow.drop = r.u8() != 0;
        stats.flows.push_back(std::move(flow));
      }
      out.message = std::move(stats);
      break;
    }
    default:
      return std::nullopt;
  }
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return out;
}

std::size_t decode_stream(std::span<const std::uint8_t> buffer, std::vector<DecodedFrame>& out) {
  std::size_t consumed = 0;
  while (buffer.size() - consumed >= kHeaderSize) {
    const std::size_t length = (static_cast<std::size_t>(buffer[consumed + 2]) << 8) |
                               buffer[consumed + 3];
    if (length < kHeaderSize) break;  // malformed: stop
    if (buffer.size() - consumed < length) break;  // incomplete frame: wait
    auto frame = decode_message(buffer.subspan(consumed, length));
    if (!frame) break;  // malformed: stop
    out.push_back(std::move(*frame));
    consumed += length;
  }
  return consumed;
}

}  // namespace livesec::of
