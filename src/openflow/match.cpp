#include "openflow/match.h"

#include <bit>
#include <sstream>

namespace livesec::of {

Match Match::exact(PortId in_port, const pkt::FlowKey& key) {
  Match m = exact_flow(key);
  m.in_port(in_port);
  return m;
}

Match Match::exact_flow(const pkt::FlowKey& key) {
  Match m;
  m.dl_vlan(key.vlan_id)
      .dl_src(key.dl_src)
      .dl_dst(key.dl_dst)
      .dl_type(key.dl_type)
      .nw_src(key.nw_src)
      .nw_dst(key.nw_dst)
      .nw_proto(key.nw_proto)
      .tp_src(key.tp_src)
      .tp_dst(key.tp_dst);
  return m;
}

namespace {
constexpr std::uint32_t bit(Wildcard w) { return static_cast<std::uint32_t>(w); }
}  // namespace

Match& Match::wildcard(Wildcard field) {
  wildcards_ |= bit(field);
  // Canonicalize: a wildcarded field's stored value is meaningless, so reset
  // it — this keeps operator== semantic (two matches that accept the same
  // packets compare equal) and makes wire round-trips exact.
  switch (field) {
    case Wildcard::kInPort: in_port_ = 0; break;
    case Wildcard::kDlVlan: dl_vlan_ = pkt::kVlanNone; break;
    case Wildcard::kDlSrc: dl_src_ = MacAddress(); break;
    case Wildcard::kDlDst: dl_dst_ = MacAddress(); break;
    case Wildcard::kDlType: dl_type_ = 0; break;
    case Wildcard::kNwSrc: nw_src_ = Ipv4Address(); break;
    case Wildcard::kNwDst: nw_dst_ = Ipv4Address(); break;
    case Wildcard::kNwProto: nw_proto_ = 0; break;
    case Wildcard::kTpSrc: tp_src_ = 0; break;
    case Wildcard::kTpDst: tp_dst_ = 0; break;
    case Wildcard::kAll:
      *this = Match();
      break;
  }
  return *this;
}
Match& Match::in_port(PortId v) {
  in_port_ = v;
  wildcards_ &= ~bit(Wildcard::kInPort);
  return *this;
}
Match& Match::dl_vlan(std::uint16_t v) {
  dl_vlan_ = v;
  wildcards_ &= ~bit(Wildcard::kDlVlan);
  return *this;
}
Match& Match::dl_src(MacAddress v) {
  dl_src_ = v;
  wildcards_ &= ~bit(Wildcard::kDlSrc);
  return *this;
}
Match& Match::dl_dst(MacAddress v) {
  dl_dst_ = v;
  wildcards_ &= ~bit(Wildcard::kDlDst);
  return *this;
}
Match& Match::dl_type(std::uint16_t v) {
  dl_type_ = v;
  wildcards_ &= ~bit(Wildcard::kDlType);
  return *this;
}
Match& Match::nw_src(Ipv4Address v) {
  nw_src_ = v;
  wildcards_ &= ~bit(Wildcard::kNwSrc);
  return *this;
}
Match& Match::nw_dst(Ipv4Address v) {
  nw_dst_ = v;
  wildcards_ &= ~bit(Wildcard::kNwDst);
  return *this;
}
Match& Match::nw_proto(std::uint8_t v) {
  nw_proto_ = v;
  wildcards_ &= ~bit(Wildcard::kNwProto);
  return *this;
}
Match& Match::tp_src(std::uint16_t v) {
  tp_src_ = v;
  wildcards_ &= ~bit(Wildcard::kTpSrc);
  return *this;
}
Match& Match::tp_dst(std::uint16_t v) {
  tp_dst_ = v;
  wildcards_ &= ~bit(Wildcard::kTpDst);
  return *this;
}

bool Match::matches(PortId in_port, const pkt::FlowKey& key) const {
  auto exact = [this](Wildcard w) { return (wildcards_ & bit(w)) == 0; };
  if (exact(Wildcard::kInPort) && in_port_ != in_port) return false;
  if (exact(Wildcard::kDlVlan) && dl_vlan_ != key.vlan_id) return false;
  if (exact(Wildcard::kDlSrc) && dl_src_ != key.dl_src) return false;
  if (exact(Wildcard::kDlDst) && dl_dst_ != key.dl_dst) return false;
  if (exact(Wildcard::kDlType) && dl_type_ != key.dl_type) return false;
  if (exact(Wildcard::kNwSrc) && nw_src_ != key.nw_src) return false;
  if (exact(Wildcard::kNwDst) && nw_dst_ != key.nw_dst) return false;
  if (exact(Wildcard::kNwProto) && nw_proto_ != key.nw_proto) return false;
  if (exact(Wildcard::kTpSrc) && tp_src_ != key.tp_src) return false;
  if (exact(Wildcard::kTpDst) && tp_dst_ != key.tp_dst) return false;
  return true;
}

pkt::FlowKey Match::flow_key() const {
  pkt::FlowKey key;
  key.vlan_id = dl_vlan_;
  key.dl_src = dl_src_;
  key.dl_dst = dl_dst_;
  key.dl_type = dl_type_;
  key.nw_src = nw_src_;
  key.nw_dst = nw_dst_;
  key.nw_proto = nw_proto_;
  key.tp_src = tp_src_;
  key.tp_dst = tp_dst_;
  return key;
}

int Match::specificity() const {
  return 10 - std::popcount(wildcards_ & static_cast<std::uint32_t>(Wildcard::kAll));
}

std::string Match::to_string() const {
  std::ostringstream out;
  auto exact = [this](Wildcard w) { return (wildcards_ & bit(w)) == 0; };
  out << "{";
  bool first = true;
  auto field = [&](const char* name, const std::string& value) {
    if (!first) out << ",";
    out << name << "=" << value;
    first = false;
  };
  if (exact(Wildcard::kInPort)) field("in_port", std::to_string(in_port_));
  if (exact(Wildcard::kDlVlan)) field("vlan", std::to_string(dl_vlan_));
  if (exact(Wildcard::kDlSrc)) field("dl_src", dl_src_.to_string());
  if (exact(Wildcard::kDlDst)) field("dl_dst", dl_dst_.to_string());
  if (exact(Wildcard::kDlType)) field("dl_type", std::to_string(dl_type_));
  if (exact(Wildcard::kNwSrc)) field("nw_src", nw_src_.to_string());
  if (exact(Wildcard::kNwDst)) field("nw_dst", nw_dst_.to_string());
  if (exact(Wildcard::kNwProto)) field("nw_proto", std::to_string(nw_proto_));
  if (exact(Wildcard::kTpSrc)) field("tp_src", std::to_string(tp_src_));
  if (exact(Wildcard::kTpDst)) field("tp_dst", std::to_string(tp_dst_));
  if (first) out << "*";
  out << "}";
  return out.str();
}

}  // namespace livesec::of
