#include "openflow/channel.h"

#include "openflow/wire.h"
#include "sim/simulator.h"

namespace livesec::of {

SecureChannel::SecureChannel(sim::Simulator& sim, SwitchEndpoint& sw,
                             ControllerEndpoint& controller, SimTime one_way_latency)
    : sim_(&sim), switch_(&sw), controller_(&controller), latency_(one_way_latency) {}

void SecureChannel::connect(const FeaturesReply& features) {
  if (connected_) return;
  connected_ = true;
  const DatapathId dpid = switch_->datapath_id();
  sim_->schedule(latency_, [this, dpid, features]() {
    controller_->handle_switch_connected(dpid, features);
  });
}

void SecureChannel::disconnect() {
  if (!connected_) return;
  connected_ = false;
  const DatapathId dpid = switch_->datapath_id();
  sim_->schedule(latency_, [this, dpid]() { controller_->handle_switch_disconnected(dpid); });
}

std::optional<Message> SecureChannel::transport(Message&& message) {
  if (!wire_encoding_) return std::move(message);
  const auto bytes = encode_message(message, next_xid_++);
  auto decoded = decode_message(bytes);
  if (!decoded) {
    ++wire_failures_;
    return std::nullopt;
  }
  return std::move(decoded->message);
}

void SecureChannel::send_to_controller(Message message) {
  if (!connected_) return;
  if (blackhole_) {
    ++blackholed_;
    return;
  }
  if (outbox_limit_ != 0 && outbox_controller_.size() >= outbox_limit_) {
    ++outbox_dropped_;
    return;
  }
  auto carried = transport(std::move(message));
  if (!carried) return;
  ++to_controller_;
  outbox_controller_.push_back(std::move(*carried));
  sim_->schedule(latency_, [this]() {
    const Message m = std::move(outbox_controller_.front());
    outbox_controller_.pop_front();
    controller_->handle_switch_message(switch_->datapath_id(), m);
  });
}

void SecureChannel::send_frame_to_switch(std::span<const std::uint8_t> frame) {
  if (!connected_) return;
  auto decoded = decode_message(frame);
  if (!decoded) {
    ++wire_failures_;
    return;
  }
  deliver_to_switch(std::move(decoded->message));
}

void SecureChannel::send_to_switch(Message message) {
  if (!connected_) return;
  auto carried = transport(std::move(message));
  if (!carried) return;
  deliver_to_switch(std::move(*carried));
}

void SecureChannel::deliver_to_switch(Message message) {
  if (blackhole_) {
    ++blackholed_;
    return;
  }
  if (outbox_limit_ != 0 && outbox_switch_.size() >= outbox_limit_) {
    ++outbox_dropped_;
    return;
  }
  ++to_switch_;
  outbox_switch_.push_back(std::move(message));
  sim_->schedule(latency_, [this]() {
    const Message m = std::move(outbox_switch_.front());
    outbox_switch_.pop_front();
    switch_->handle_controller_message(m);
  });
}

}  // namespace livesec::of
