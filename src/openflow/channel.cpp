#include "openflow/channel.h"

#include "openflow/wire.h"
#include "sim/simulator.h"

namespace livesec::of {

SecureChannel::SecureChannel(sim::Simulator& sim, SwitchEndpoint& sw,
                             ControllerEndpoint& controller, SimTime one_way_latency)
    : sim_(&sim), switch_(&sw), controller_(&controller), latency_(one_way_latency) {}

void SecureChannel::connect(const FeaturesReply& features) {
  if (connected_) return;
  connected_ = true;
  const DatapathId dpid = switch_->datapath_id();
  sim_->schedule(latency_, [this, dpid, features]() {
    controller_->handle_switch_connected(dpid, features);
  });
}

void SecureChannel::disconnect() {
  if (!connected_) return;
  connected_ = false;
  const DatapathId dpid = switch_->datapath_id();
  sim_->schedule(latency_, [this, dpid]() { controller_->handle_switch_disconnected(dpid); });
}

std::optional<Message> SecureChannel::transport(const Message& message) {
  if (!wire_encoding_) return message;
  const auto bytes = encode_message(message, next_xid_++);
  auto decoded = decode_message(bytes);
  if (!decoded) {
    ++wire_failures_;
    return std::nullopt;
  }
  return std::move(decoded->message);
}

void SecureChannel::send_to_controller(Message message) {
  if (!connected_) return;
  auto carried = transport(message);
  if (!carried) return;
  ++to_controller_;
  const DatapathId dpid = switch_->datapath_id();
  sim_->schedule(latency_, [this, dpid, message = std::move(*carried)]() {
    controller_->handle_switch_message(dpid, message);
  });
}

void SecureChannel::send_to_switch(Message message) {
  if (!connected_) return;
  auto carried = transport(message);
  if (!carried) return;
  ++to_switch_;
  sim_->schedule(latency_, [this, message = std::move(*carried)]() {
    switch_->handle_controller_message(message);
  });
}

}  // namespace livesec::of
