#include "openflow/flow_table.h"

#include <algorithm>
#include <sstream>

namespace livesec::of {

std::string FlowEntry::to_string() const {
  std::ostringstream out;
  out << "prio=" << priority << " " << match.to_string() << " -> " << of::to_string(actions)
      << " pkts=" << packet_count << " bytes=" << byte_count;
  return out.str();
}

void FlowTable::add(FlowEntry entry, SimTime now) {
  entry.installed_at = now;
  entry.last_hit = now;
  // OFPFC_ADD: identical (match, priority) replaces in place.
  for (auto& existing : entries_) {
    if (existing.priority == entry.priority && existing.match == entry.match) {
      existing = entry;
      return;
    }
  }
  // Insert keeping order: priority desc, specificity desc, install order asc.
  const std::uint64_t seq = install_seq_++;
  auto pos = entries_.begin();
  auto seq_pos = seqs_.begin();
  for (; pos != entries_.end(); ++pos, ++seq_pos) {
    if (pos->priority != entry.priority) {
      if (pos->priority < entry.priority) break;
      continue;
    }
    const int a = entry.match.specificity();
    const int b = pos->match.specificity();
    if (b < a) break;
  }
  seqs_.insert(seq_pos, seq);
  entries_.insert(pos, std::move(entry));
}

std::size_t FlowTable::modify_strict(const Match& match, std::uint16_t priority,
                                     const ActionList& actions) {
  std::size_t updated = 0;
  for (auto& e : entries_) {
    if (e.priority == priority && e.match == match) {
      e.actions = actions;
      ++updated;
    }
  }
  return updated;
}

std::size_t FlowTable::remove_strict(const Match& match, std::uint16_t priority, SimTime now) {
  (void)now;
  std::size_t removed = 0;
  for (std::size_t i = 0; i < entries_.size();) {
    if (entries_[i].priority == priority && entries_[i].match == match) {
      if (on_removal_) on_removal_(entries_[i], RemovalReason::kDelete);
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      seqs_.erase(seqs_.begin() + static_cast<std::ptrdiff_t>(i));
      ++removed;
    } else {
      ++i;
    }
  }
  return removed;
}

bool FlowTable::covers(const Match& general, const Match& specific) {
  // Every field constrained by `general` must be constrained by `specific`
  // to the same value; then anything `specific` matches, `general` matches.
  const std::uint32_t gw = general.wildcards();
  const std::uint32_t sw = specific.wildcards();
  // A field exact in general but wildcarded in specific => not covered.
  if ((~gw & sw) != 0) return false;
  auto exact = [gw](Wildcard w) { return (gw & static_cast<std::uint32_t>(w)) == 0; };
  if (exact(Wildcard::kInPort) && general.in_port_value() != specific.in_port_value()) return false;
  if (exact(Wildcard::kDlVlan) && general.dl_vlan_value() != specific.dl_vlan_value()) return false;
  if (exact(Wildcard::kDlSrc) && general.dl_src_value() != specific.dl_src_value()) return false;
  if (exact(Wildcard::kDlDst) && general.dl_dst_value() != specific.dl_dst_value()) return false;
  if (exact(Wildcard::kDlType) && general.dl_type_value() != specific.dl_type_value()) return false;
  if (exact(Wildcard::kNwSrc) && general.nw_src_value() != specific.nw_src_value()) return false;
  if (exact(Wildcard::kNwDst) && general.nw_dst_value() != specific.nw_dst_value()) return false;
  if (exact(Wildcard::kNwProto) && general.nw_proto_value() != specific.nw_proto_value())
    return false;
  if (exact(Wildcard::kTpSrc) && general.tp_src_value() != specific.tp_src_value()) return false;
  if (exact(Wildcard::kTpDst) && general.tp_dst_value() != specific.tp_dst_value()) return false;
  return true;
}

std::size_t FlowTable::remove_matching(const Match& match, SimTime now) {
  (void)now;
  std::size_t removed = 0;
  for (std::size_t i = 0; i < entries_.size();) {
    if (covers(match, entries_[i].match)) {
      if (on_removal_) on_removal_(entries_[i], RemovalReason::kDelete);
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      seqs_.erase(seqs_.begin() + static_cast<std::ptrdiff_t>(i));
      ++removed;
    } else {
      ++i;
    }
  }
  return removed;
}

bool FlowTable::expired(const FlowEntry& e, SimTime now) const {
  if (e.hard_timeout > 0 && now - e.installed_at >= e.hard_timeout) return true;
  if (e.idle_timeout > 0 && now - e.last_hit >= e.idle_timeout) return true;
  return false;
}

const FlowEntry* FlowTable::lookup(PortId in_port, const pkt::FlowKey& key,
                                   std::size_t packet_bytes, SimTime now) {
  ++lookups_;
  expire(now);
  for (auto& e : entries_) {
    if (e.match.matches(in_port, key)) {
      ++hits_;
      ++e.packet_count;
      e.byte_count += packet_bytes;
      e.last_hit = now;
      return &e;
    }
  }
  return nullptr;
}

const FlowEntry* FlowTable::peek(PortId in_port, const pkt::FlowKey& key, SimTime now) const {
  for (const auto& e : entries_) {
    if (expired(e, now)) continue;
    if (e.match.matches(in_port, key)) return &e;
  }
  return nullptr;
}

std::size_t FlowTable::expire(SimTime now) {
  std::size_t removed = 0;
  for (std::size_t i = 0; i < entries_.size();) {
    if (expired(entries_[i], now)) {
      if (on_removal_) {
        const bool hard =
            entries_[i].hard_timeout > 0 && now - entries_[i].installed_at >= entries_[i].hard_timeout;
        on_removal_(entries_[i], hard ? RemovalReason::kHardTimeout : RemovalReason::kIdleTimeout);
      }
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      seqs_.erase(seqs_.begin() + static_cast<std::ptrdiff_t>(i));
      ++removed;
    } else {
      ++i;
    }
  }
  return removed;
}

std::string FlowTable::dump() const {
  std::ostringstream out;
  out << "flow_table(" << entries_.size() << " entries, " << hits_ << "/" << lookups_
      << " hits)\n";
  for (const auto& e : entries_) out << "  " << e.to_string() << "\n";
  return out.str();
}

}  // namespace livesec::of
