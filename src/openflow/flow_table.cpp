#include "openflow/flow_table.h"

#include <algorithm>
#include <sstream>

namespace livesec::of {

std::string FlowEntry::to_string() const {
  std::ostringstream out;
  out << "prio=" << priority << " " << match.to_string() << " -> " << of::to_string(actions)
      << " pkts=" << packet_count << " bytes=" << byte_count;
  return out.str();
}

bool FlowTable::ordered_before(const Slot& a, const Slot& b) const {
  if (a.entry.priority != b.entry.priority) return a.entry.priority > b.entry.priority;
  const int sa = a.entry.match.specificity();
  const int sb = b.entry.match.specificity();
  if (sa != sb) return sa > sb;
  return a.seq < b.seq;
}

SimTime FlowTable::next_deadline(const FlowEntry& e) {
  SimTime deadline = 0;
  if (e.hard_timeout > 0) deadline = e.installed_at + e.hard_timeout;
  if (e.idle_timeout > 0) {
    const SimTime idle = e.last_hit + e.idle_timeout;
    deadline = deadline == 0 ? idle : std::min(deadline, idle);
  }
  return deadline;
}

void FlowTable::file_in_wheel(std::uint64_t id, Slot& slot) {
  ++slot.wheel_epoch;  // invalidate any record filed for the previous state
  const SimTime deadline = next_deadline(slot.entry);
  if (deadline == 0) return;  // no timeouts: never expires
  wheel_[deadline].emplace_back(id, slot.wheel_epoch);
}

void FlowTable::add(FlowEntry entry, SimTime now) {
  entry.installed_at = now;
  entry.last_hit = now;

  if (entry.match.is_exact()) {
    const ExactKey key{entry.match.in_port_value(), entry.match.flow_key()};
    std::vector<std::uint64_t>& ids = exact_index_[key];
    // OFPFC_ADD: identical (match, priority) replaces in place.
    for (std::uint64_t id : ids) {
      Slot& slot = slots_.at(id);
      if (slot.entry.priority == entry.priority) {
        slot.entry = std::move(entry);
        file_in_wheel(id, slot);
        return;
      }
    }
    const std::uint64_t id = next_id_++;
    // Keep ids ordered by priority desc so front() is the lookup winner
    // (priorities are distinct here: equal priority replaced above).
    auto pos = ids.begin();
    while (pos != ids.end() && slots_.at(*pos).entry.priority > entry.priority) ++pos;
    ids.insert(pos, id);
    Slot slot{std::move(entry), id, /*exact=*/true, 0};
    file_in_wheel(id, slot);
    slots_.emplace(id, std::move(slot));
    return;
  }

  for (std::uint64_t id : wild_order_) {
    Slot& slot = slots_.at(id);
    if (slot.entry.priority == entry.priority && slot.entry.match == entry.match) {
      slot.entry = std::move(entry);
      file_in_wheel(id, slot);
      return;
    }
  }
  const std::uint64_t id = next_id_++;
  Slot slot{std::move(entry), id, /*exact=*/false, 0};
  // Insert keeping order: priority desc, specificity desc, install order asc
  // (the new entry is youngest, so it goes after equal (priority, spec)).
  auto pos = wild_order_.begin();
  while (pos != wild_order_.end() && ordered_before(slots_.at(*pos), slot)) ++pos;
  wild_order_.insert(pos, id);
  file_in_wheel(id, slot);
  slots_.emplace(id, std::move(slot));
}

std::size_t FlowTable::modify_strict(const Match& match, std::uint16_t priority,
                                     const ActionList& actions) {
  std::size_t updated = 0;
  if (match.is_exact()) {
    const auto it = exact_index_.find(ExactKey{match.in_port_value(), match.flow_key()});
    if (it == exact_index_.end()) return 0;
    for (std::uint64_t id : it->second) {
      Slot& slot = slots_.at(id);
      if (slot.entry.priority == priority) {
        slot.entry.actions = actions;
        ++updated;
      }
    }
    return updated;
  }
  for (std::uint64_t id : wild_order_) {
    Slot& slot = slots_.at(id);
    if (slot.entry.priority == priority && slot.entry.match == match) {
      slot.entry.actions = actions;
      ++updated;
    }
  }
  return updated;
}

void FlowTable::detach(std::uint64_t id, const Slot& slot) {
  if (slot.exact) {
    const ExactKey key{slot.entry.match.in_port_value(), slot.entry.match.flow_key()};
    const auto it = exact_index_.find(key);
    if (it != exact_index_.end()) {
      std::erase(it->second, id);
      if (it->second.empty()) exact_index_.erase(it);
    }
  } else {
    std::erase(wild_order_, id);
  }
  // Any pending wheel record becomes a tombstone: its id no longer resolves.
}

void FlowTable::remove_slot(std::uint64_t id, RemovalReason reason) {
  const auto it = slots_.find(id);
  if (it == slots_.end()) return;
  if (on_removal_) on_removal_(it->second.entry, reason);
  detach(id, it->second);
  slots_.erase(it);
}

std::size_t FlowTable::remove_strict(const Match& match, std::uint16_t priority, SimTime now) {
  (void)now;
  std::vector<std::uint64_t> victims;
  if (match.is_exact()) {
    const auto it = exact_index_.find(ExactKey{match.in_port_value(), match.flow_key()});
    if (it == exact_index_.end()) return 0;
    for (std::uint64_t id : it->second) {
      if (slots_.at(id).entry.priority == priority) victims.push_back(id);
    }
  } else {
    for (std::uint64_t id : wild_order_) {
      const Slot& slot = slots_.at(id);
      if (slot.entry.priority == priority && slot.entry.match == match) victims.push_back(id);
    }
  }
  for (std::uint64_t id : victims) remove_slot(id, RemovalReason::kDelete);
  return victims.size();
}

bool FlowTable::covers(const Match& general, const Match& specific) {
  // Every field constrained by `general` must be constrained by `specific`
  // to the same value; then anything `specific` matches, `general` matches.
  const std::uint32_t gw = general.wildcards();
  const std::uint32_t sw = specific.wildcards();
  // A field exact in general but wildcarded in specific => not covered.
  if ((~gw & sw) != 0) return false;
  auto exact = [gw](Wildcard w) { return (gw & static_cast<std::uint32_t>(w)) == 0; };
  if (exact(Wildcard::kInPort) && general.in_port_value() != specific.in_port_value()) return false;
  if (exact(Wildcard::kDlVlan) && general.dl_vlan_value() != specific.dl_vlan_value()) return false;
  if (exact(Wildcard::kDlSrc) && general.dl_src_value() != specific.dl_src_value()) return false;
  if (exact(Wildcard::kDlDst) && general.dl_dst_value() != specific.dl_dst_value()) return false;
  if (exact(Wildcard::kDlType) && general.dl_type_value() != specific.dl_type_value()) return false;
  if (exact(Wildcard::kNwSrc) && general.nw_src_value() != specific.nw_src_value()) return false;
  if (exact(Wildcard::kNwDst) && general.nw_dst_value() != specific.nw_dst_value()) return false;
  if (exact(Wildcard::kNwProto) && general.nw_proto_value() != specific.nw_proto_value())
    return false;
  if (exact(Wildcard::kTpSrc) && general.tp_src_value() != specific.tp_src_value()) return false;
  if (exact(Wildcard::kTpDst) && general.tp_dst_value() != specific.tp_dst_value()) return false;
  return true;
}

std::size_t FlowTable::remove_matching(const Match& match, SimTime now) {
  (void)now;
  std::vector<std::uint64_t> victims;
  if (match.is_exact()) {
    // A fully-exact filter covers only identical exact entries (any priority).
    const auto it = exact_index_.find(ExactKey{match.in_port_value(), match.flow_key()});
    if (it == exact_index_.end()) return 0;
    victims = it->second;
  } else {
    for (const auto& [id, slot] : slots_) {
      if (covers(match, slot.entry.match)) victims.push_back(id);
    }
    // Fire removal callbacks in deterministic table order.
    std::sort(victims.begin(), victims.end(), [this](std::uint64_t a, std::uint64_t b) {
      return ordered_before(slots_.at(a), slots_.at(b));
    });
  }
  for (std::uint64_t id : victims) remove_slot(id, RemovalReason::kDelete);
  return victims.size();
}

bool FlowTable::expired(const FlowEntry& e, SimTime now) const {
  if (e.hard_timeout > 0 && now - e.installed_at >= e.hard_timeout) return true;
  if (e.idle_timeout > 0 && now - e.last_hit >= e.idle_timeout) return true;
  return false;
}

std::size_t FlowTable::advance(SimTime now) {
  std::size_t removed = 0;
  while (!wheel_.empty() && wheel_.begin()->first <= now) {
    const auto records = std::move(wheel_.begin()->second);
    wheel_.erase(wheel_.begin());
    for (const auto& [id, epoch] : records) {
      const auto it = slots_.find(id);
      if (it == slots_.end() || it->second.wheel_epoch != epoch) continue;  // stale record
      Slot& slot = it->second;
      if (!expired(slot.entry, now)) {
        // Idle clock was refreshed by hits since filing: re-file at the new
        // deadline (strictly in the future, since the entry is not expired).
        file_in_wheel(id, slot);
        continue;
      }
      const bool hard =
          slot.entry.hard_timeout > 0 && now - slot.entry.installed_at >= slot.entry.hard_timeout;
      remove_slot(id, hard ? RemovalReason::kHardTimeout : RemovalReason::kIdleTimeout);
      ++removed;
    }
  }
  return removed;
}

const FlowEntry* FlowTable::lookup(PortId in_port, const pkt::FlowKey& key,
                                   std::size_t packet_bytes, SimTime now) {
  ++lookups_;
  advance(now);

  FlowEntry* exact_hit = nullptr;
  const auto eit = exact_index_.find(ExactKey{in_port, key});
  if (eit != exact_index_.end() && !eit->second.empty()) {
    exact_hit = &slots_.at(eit->second.front()).entry;  // highest priority first
  }

  FlowEntry* winner = nullptr;
  bool via_exact = false;
  if (exact_hit != nullptr) {
    // A fully-exact hit has maximal specificity, so it can only be shadowed
    // by a strictly-higher-priority wildcard entry. The common case — no
    // wildcard outranks it — resolves with one comparison against the
    // wildcard tier's head (kept priority-sorted).
    winner = exact_hit;
    via_exact = true;
    for (std::uint64_t id : wild_order_) {
      FlowEntry& wild = slots_.at(id).entry;
      if (wild.priority <= exact_hit->priority) break;
      if (wild.match.matches(in_port, key)) {
        winner = &wild;
        via_exact = false;
        break;
      }
    }
  } else {
    for (std::uint64_t id : wild_order_) {
      FlowEntry& wild = slots_.at(id).entry;
      if (wild.match.matches(in_port, key)) {
        winner = &wild;
        break;
      }
    }
  }
  if (winner == nullptr) return nullptr;
  ++hits_;
  if (via_exact) ++exact_hits_;
  ++winner->packet_count;
  winner->byte_count += packet_bytes;
  winner->last_hit = now;
  return winner;
}

const FlowEntry* FlowTable::peek(PortId in_port, const pkt::FlowKey& key, SimTime now) const {
  const FlowEntry* best_exact = nullptr;
  const auto eit = exact_index_.find(ExactKey{in_port, key});
  if (eit != exact_index_.end()) {
    for (std::uint64_t id : eit->second) {
      const FlowEntry& entry = slots_.at(id).entry;
      if (!expired(entry, now)) {
        best_exact = &entry;  // ids are priority-sorted: first live one wins
        break;
      }
    }
  }
  for (std::uint64_t id : wild_order_) {
    const FlowEntry& wild = slots_.at(id).entry;
    if (best_exact != nullptr && wild.priority <= best_exact->priority) break;
    if (expired(wild, now)) continue;
    if (wild.match.matches(in_port, key)) return &wild;
  }
  return best_exact;
}

std::size_t FlowTable::expire(SimTime now) { return advance(now); }

std::vector<FlowEntry> FlowTable::entries() const {
  std::vector<const Slot*> ordered;
  ordered.reserve(slots_.size());
  for (const auto& [id, slot] : slots_) ordered.push_back(&slot);
  std::sort(ordered.begin(), ordered.end(),
            [this](const Slot* a, const Slot* b) { return ordered_before(*a, *b); });
  std::vector<FlowEntry> out;
  out.reserve(ordered.size());
  for (const Slot* slot : ordered) out.push_back(slot->entry);
  return out;
}

std::string FlowTable::dump() const {
  std::ostringstream out;
  out << "flow_table(" << slots_.size() << " entries [" << wild_order_.size() << " wildcard], "
      << hits_ << "/" << lookups_ << " hits, " << exact_hits_ << " exact-tier)\n";
  for (const FlowEntry& e : entries()) out << "  " << e.to_string() << "\n";
  return out.str();
}

}  // namespace livesec::of
