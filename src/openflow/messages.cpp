#include "openflow/messages.h"

namespace livesec::of {

const char* message_name(const Message& m) {
  struct Visitor {
    const char* operator()(const PacketIn&) const { return "PacketIn"; }
    const char* operator()(const PacketOut&) const { return "PacketOut"; }
    const char* operator()(const FlowMod&) const { return "FlowMod"; }
    const char* operator()(const FlowRemoved&) const { return "FlowRemoved"; }
    const char* operator()(const FeaturesReply&) const { return "FeaturesReply"; }
    const char* operator()(const EchoRequest&) const { return "EchoRequest"; }
    const char* operator()(const EchoReply&) const { return "EchoReply"; }
    const char* operator()(const PortStatus&) const { return "PortStatus"; }
    const char* operator()(const StatsRequest&) const { return "StatsRequest"; }
    const char* operator()(const StatsReply&) const { return "StatsReply"; }
    const char* operator()(const FlowModBatch&) const { return "FlowModBatch"; }
  };
  return std::visit(Visitor{}, m);
}

}  // namespace livesec::of
