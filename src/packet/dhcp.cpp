#include "packet/dhcp.h"

#include "packet/buffer.h"

namespace livesec::pkt {

namespace {
constexpr std::uint32_t kDhcpMagic = 0x4C444843;  // "LDHC"
}

const char* dhcp_op_name(DhcpOp op) {
  switch (op) {
    case DhcpOp::kDiscover: return "discover";
    case DhcpOp::kOffer: return "offer";
    case DhcpOp::kRequest: return "request";
    case DhcpOp::kAck: return "ack";
    case DhcpOp::kNak: return "nak";
  }
  return "?";
}

std::vector<std::uint8_t> DhcpMessage::encode() const {
  BufferWriter w;
  w.u32(kDhcpMagic);
  w.u8(static_cast<std::uint8_t>(op));
  w.u32(xid);
  w.bytes(client_mac.bytes());
  w.u32(your_ip.value());
  w.u32(server_ip.value());
  w.u32(lease_seconds);
  return w.take();
}

std::optional<DhcpMessage> DhcpMessage::decode(std::span<const std::uint8_t> payload) {
  BufferReader r(payload);
  if (r.u32() != kDhcpMagic) return std::nullopt;
  DhcpMessage m;
  m.op = static_cast<DhcpOp>(r.u8());
  m.xid = r.u32();
  std::array<std::uint8_t, 6> mac{};
  for (auto& b : mac) b = r.u8();
  m.client_mac = MacAddress(mac);
  m.your_ip = Ipv4Address(r.u32());
  m.server_ip = Ipv4Address(r.u32());
  m.lease_seconds = r.u32();
  if (!r.ok()) return std::nullopt;
  if (static_cast<std::uint8_t>(m.op) < 1 || static_cast<std::uint8_t>(m.op) > 5) {
    return std::nullopt;
  }
  return m;
}

Packet DhcpMessage::to_packet(MacAddress src_mac, Ipv4Address src_ip) const {
  const bool from_client = op == DhcpOp::kDiscover || op == DhcpOp::kRequest;
  PacketBuilder builder;
  builder
      .eth(src_mac, from_client ? MacAddress::broadcast() : client_mac)
      .ipv4(src_ip, from_client ? Ipv4Address::broadcast() : your_ip, IpProto::kUdp)
      .udp(from_client ? kDhcpClientPort : kDhcpServerPort,
           from_client ? kDhcpServerPort : kDhcpClientPort)
      .payload(make_payload(encode()));
  return builder.build();
}

bool is_dhcp_packet(const Packet& packet) {
  return packet.udp.has_value() &&
         (packet.udp->dst_port == kDhcpServerPort || packet.udp->dst_port == kDhcpClientPort);
}

}  // namespace livesec::pkt
