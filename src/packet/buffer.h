// Big-endian byte buffer used by all wire codecs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace livesec::pkt {

/// Append-only writer producing network-byte-order (big-endian) bytes.
class BufferWriter {
 public:
  void u8(std::uint8_t v) { data_.push_back(v); }
  void u16(std::uint16_t v) {
    data_.push_back(static_cast<std::uint8_t>(v >> 8));
    data_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  /// Pre-sizes the buffer for `additional` more bytes, so a writer that
  /// knows its output size (e.g. Packet::serialized_size()) grows at most
  /// once instead of doubling through push_back.
  void reserve(std::size_t additional) { data_.reserve(data_.size() + additional); }

  void bytes(std::span<const std::uint8_t> b) { data_.insert(data_.end(), b.begin(), b.end()); }
  void string(std::string_view s) {
    data_.insert(data_.end(), s.begin(), s.end());
  }
  /// Writes a 16-bit length prefix followed by the string bytes.
  void length_prefixed_string(std::string_view s) {
    u16(static_cast<std::uint16_t>(s.size()));
    string(s);
  }

  std::size_t size() const { return data_.size(); }
  const std::vector<std::uint8_t>& data() const { return data_; }
  std::vector<std::uint8_t> take() { return std::move(data_); }

 private:
  std::vector<std::uint8_t> data_;
};

// In-place big-endian patches over an already-serialized buffer. The flow
// fast path serializes control messages once and replays them per flow with
// only the variable fields (ports, cookie, buffer id) rewritten at fixed
// offsets. Out-of-range offsets are ignored (template/offset mismatch must
// not corrupt adjacent bytes).
inline void patch_u16(std::span<std::uint8_t> buffer, std::size_t offset, std::uint16_t v) {
  if (offset + 2 > buffer.size()) return;
  buffer[offset] = static_cast<std::uint8_t>(v >> 8);
  buffer[offset + 1] = static_cast<std::uint8_t>(v);
}

inline void patch_u32(std::span<std::uint8_t> buffer, std::size_t offset, std::uint32_t v) {
  if (offset + 4 > buffer.size()) return;
  patch_u16(buffer, offset, static_cast<std::uint16_t>(v >> 16));
  patch_u16(buffer, offset + 2, static_cast<std::uint16_t>(v));
}

inline void patch_u64(std::span<std::uint8_t> buffer, std::size_t offset, std::uint64_t v) {
  if (offset + 8 > buffer.size()) return;
  patch_u32(buffer, offset, static_cast<std::uint32_t>(v >> 32));
  patch_u32(buffer, offset + 4, static_cast<std::uint32_t>(v));
}

/// Sequential reader over big-endian bytes. All reads are bounds-checked:
/// reading past the end sets a sticky error flag and returns zeros, so codecs
/// can parse optimistically and check `ok()` once at the end.
class BufferReader {
 public:
  explicit BufferReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    if (!ensure(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16() {
    if (!ensure(2)) return 0;
    const std::uint16_t v =
        static_cast<std::uint16_t>((std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    const std::uint32_t hi = u16();
    const std::uint32_t lo = u16();
    return (hi << 16) | lo;
  }
  std::uint64_t u64() {
    const std::uint64_t hi = u32();
    const std::uint64_t lo = u32();
    return (hi << 32) | lo;
  }
  std::vector<std::uint8_t> bytes(std::size_t n) {
    if (!ensure(n)) return {};
    std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  std::string string(std::size_t n) {
    if (!ensure(n)) return {};
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return out;
  }
  std::string length_prefixed_string() {
    const std::uint16_t n = u16();
    return string(n);
  }
  void skip(std::size_t n) {
    if (ensure(n)) pos_ += n;
  }

  std::size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }
  bool ok() const { return ok_; }

 private:
  bool ensure(std::size_t n) {
    if (!ok_ || pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace livesec::pkt
