#include "packet/packet_pool.h"

#include <cstddef>
#include <new>
#include <utility>
#include <vector>

namespace livesec::pkt {

namespace {

/// Free blocks, all of one size: allocate_shared performs a single allocation
/// of its internal node type (control block + Packet), so every block this
/// pool ever sees has identical size. Shared (not static-lifetime-owned) so
/// packets outliving static destruction still deallocate safely: each
/// allocator copy — including the one stored inside every control block —
/// keeps the state alive.
struct PoolState {
  std::vector<void*> free_blocks;
  std::size_t block_size = 0;

  ~PoolState() {
    for (void* b : free_blocks) ::operator delete(b);
  }
};

/// Bounds pool memory (~4k blocks of ~0.3KB) under burst churn.
constexpr std::size_t kMaxPooledBlocks = 4096;

std::shared_ptr<PoolState> pool_state() {
  static std::shared_ptr<PoolState> state = std::make_shared<PoolState>();
  return state;
}

template <typename T>
struct RecyclingAllocator {
  using value_type = T;

  std::shared_ptr<PoolState> state;

  explicit RecyclingAllocator(std::shared_ptr<PoolState> s) : state(std::move(s)) {}
  template <typename U>
  RecyclingAllocator(const RecyclingAllocator<U>& other) : state(other.state) {}

  T* allocate(std::size_t n) {
    if (n == 1 && state->block_size == sizeof(T) && !state->free_blocks.empty()) {
      void* b = state->free_blocks.back();
      state->free_blocks.pop_back();
      return static_cast<T*>(b);
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) {
    if (n == 1 && (state->block_size == 0 || state->block_size == sizeof(T)) &&
        state->free_blocks.size() < kMaxPooledBlocks) {
      state->block_size = sizeof(T);
      state->free_blocks.push_back(p);
      return;
    }
    ::operator delete(p);
  }

  template <typename U>
  bool operator==(const RecyclingAllocator<U>& other) const {
    return state == other.state;
  }
  template <typename U>
  bool operator!=(const RecyclingAllocator<U>& other) const {
    return state != other.state;
  }
};

}  // namespace

std::shared_ptr<Packet> pooled_packet(Packet&& p) {
  return std::allocate_shared<Packet>(RecyclingAllocator<Packet>(pool_state()), std::move(p));
}

}  // namespace livesec::pkt
