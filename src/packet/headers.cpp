#include "packet/headers.h"

namespace livesec::pkt {

void EthernetHeader::serialize(BufferWriter& w) const {
  w.bytes(dst.bytes());
  w.bytes(src.bytes());
  if (vlan_id != kVlanNone) {
    w.u16(static_cast<std::uint16_t>(EtherType::kVlan));
    w.u16(vlan_id & 0x0FFF);
  }
  w.u16(ether_type);
}

std::optional<EthernetHeader> EthernetHeader::parse(BufferReader& r) {
  EthernetHeader h;
  auto mac6 = [&r]() {
    std::array<std::uint8_t, 6> b{};
    for (auto& x : b) x = r.u8();
    return MacAddress(b);
  };
  h.dst = mac6();
  h.src = mac6();
  std::uint16_t type = r.u16();
  if (type == static_cast<std::uint16_t>(EtherType::kVlan)) {
    h.vlan_id = r.u16() & 0x0FFF;
    type = r.u16();
  }
  h.ether_type = type;
  if (!r.ok()) return std::nullopt;
  return h;
}

void ArpHeader::serialize(BufferWriter& w) const {
  w.u16(1);                 // htype: Ethernet
  w.u16(0x0800);            // ptype: IPv4
  w.u8(6);                  // hlen
  w.u8(4);                  // plen
  w.u16(static_cast<std::uint16_t>(op));
  w.bytes(sender_mac.bytes());
  w.u32(sender_ip.value());
  w.bytes(target_mac.bytes());
  w.u32(target_ip.value());
}

std::optional<ArpHeader> ArpHeader::parse(BufferReader& r) {
  const std::uint16_t htype = r.u16();
  const std::uint16_t ptype = r.u16();
  const std::uint8_t hlen = r.u8();
  const std::uint8_t plen = r.u8();
  if (!r.ok() || htype != 1 || ptype != 0x0800 || hlen != 6 || plen != 4) return std::nullopt;
  ArpHeader h;
  h.op = static_cast<ArpOp>(r.u16());
  auto mac6 = [&r]() {
    std::array<std::uint8_t, 6> b{};
    for (auto& x : b) x = r.u8();
    return MacAddress(b);
  };
  h.sender_mac = mac6();
  h.sender_ip = Ipv4Address(r.u32());
  h.target_mac = mac6();
  h.target_ip = Ipv4Address(r.u32());
  if (!r.ok()) return std::nullopt;
  return h;
}

void Ipv4Header::serialize(BufferWriter& w, std::uint16_t total_length_out) const {
  w.u8(0x45);  // version 4, IHL 5
  w.u8(dscp);
  w.u16(total_length_out);
  w.u16(0);    // identification
  w.u16(0);    // flags + fragment offset
  w.u8(ttl);
  w.u8(protocol);
  w.u16(0);    // checksum (not modeled; integrity is guaranteed in-sim)
  w.u32(src.value());
  w.u32(dst.value());
}

std::optional<Ipv4Header> Ipv4Header::parse(BufferReader& r) {
  const std::uint8_t ver_ihl = r.u8();
  if (!r.ok() || ver_ihl != 0x45) return std::nullopt;
  Ipv4Header h;
  h.dscp = r.u8();
  h.total_length = r.u16();
  r.skip(4);  // id, flags/frag
  h.ttl = r.u8();
  h.protocol = r.u8();
  r.skip(2);  // checksum
  h.src = Ipv4Address(r.u32());
  h.dst = Ipv4Address(r.u32());
  if (!r.ok()) return std::nullopt;
  return h;
}

void TcpHeader::serialize(BufferWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  w.u8(0x50);  // data offset 5 words
  w.u8(flags);
  w.u16(65535);  // window
  w.u16(0);      // checksum
  w.u16(0);      // urgent pointer
}

std::optional<TcpHeader> TcpHeader::parse(BufferReader& r) {
  TcpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.seq = r.u32();
  h.ack = r.u32();
  const std::uint8_t offset = r.u8();
  if (!r.ok() || (offset >> 4) != 5) return std::nullopt;
  h.flags = r.u8();
  r.skip(6);  // window, checksum, urgent
  if (!r.ok()) return std::nullopt;
  return h;
}

void UdpHeader::serialize(BufferWriter& w, std::uint16_t payload_size) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(static_cast<std::uint16_t>(kSize + payload_size));
  w.u16(0);  // checksum
}

std::optional<UdpHeader> UdpHeader::parse(BufferReader& r) {
  UdpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  r.skip(4);  // length, checksum
  if (!r.ok()) return std::nullopt;
  return h;
}

void IcmpHeader::serialize(BufferWriter& w) const {
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(0);   // code
  w.u16(0);  // checksum
  w.u16(id);
  w.u16(seq);
}

std::optional<IcmpHeader> IcmpHeader::parse(BufferReader& r) {
  IcmpHeader h;
  h.type = static_cast<IcmpType>(r.u8());
  r.skip(3);  // code + checksum
  h.id = r.u16();
  h.seq = r.u16();
  if (!r.ok()) return std::nullopt;
  return h;
}

}  // namespace livesec::pkt
