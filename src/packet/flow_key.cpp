#include "packet/flow_key.h"

#include "common/format_util.h"

namespace livesec::pkt {

FlowKey FlowKey::from_packet(const Packet& p) {
  FlowKey k;
  k.vlan_id = p.eth.vlan_id;
  k.dl_src = p.eth.src;
  k.dl_dst = p.eth.dst;
  k.dl_type = p.eth.ether_type;
  if (p.ipv4) {
    k.nw_src = p.ipv4->src;
    k.nw_dst = p.ipv4->dst;
    k.nw_proto = p.ipv4->protocol;
    if (p.tcp) {
      k.tp_src = p.tcp->src_port;
      k.tp_dst = p.tcp->dst_port;
    } else if (p.udp) {
      k.tp_src = p.udp->src_port;
      k.tp_dst = p.udp->dst_port;
    } else if (p.icmp) {
      k.tp_src = static_cast<std::uint16_t>(p.icmp->type);  // OpenFlow: icmp_type in tp_src
      k.tp_dst = 0;
    }
  } else if (p.arp) {
    k.nw_src = p.arp->sender_ip;
    k.nw_dst = p.arp->target_ip;
    k.nw_proto = static_cast<std::uint8_t>(p.arp->op);
  }
  return k;
}

FlowKey FlowKey::reversed() const {
  FlowKey k = *this;
  std::swap(k.dl_src, k.dl_dst);
  std::swap(k.nw_src, k.nw_dst);
  std::swap(k.tp_src, k.tp_dst);
  return k;
}

void FlowKey::encode(BufferWriter& w) const {
  w.u16(vlan_id);
  w.bytes(dl_src.bytes());
  w.bytes(dl_dst.bytes());
  w.u16(dl_type);
  w.u32(nw_src.value());
  w.u32(nw_dst.value());
  w.u8(nw_proto);
  w.u16(tp_src);
  w.u16(tp_dst);
}

FlowKey FlowKey::decode(BufferReader& r) {
  FlowKey k;
  k.vlan_id = r.u16();
  auto mac6 = [&r]() {
    std::array<std::uint8_t, 6> b{};
    for (auto& x : b) x = r.u8();
    return MacAddress(b);
  };
  k.dl_src = mac6();
  k.dl_dst = mac6();
  k.dl_type = r.u16();
  k.nw_src = Ipv4Address(r.u32());
  k.nw_dst = Ipv4Address(r.u32());
  k.nw_proto = r.u8();
  k.tp_src = r.u16();
  k.tp_dst = r.u16();
  return k;
}

namespace {
int format_mac(char* out, const MacAddress& mac) {
  const auto& b = mac.bytes();
  int len = 0;
  for (int i = 0; i < 6; ++i) {
    if (i != 0) out[len++] = ':';
    len += format_hex_byte(out + len, b[static_cast<std::size_t>(i)]);
  }
  return len;
}
int format_ip(char* out, Ipv4Address ip) {
  const std::uint32_t v = ip.value();
  int len = 0;
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (shift != 24) out[len++] = '.';
    len += format_u32_dec(out + len, (v >> shift) & 0xFF);
  }
  return len;
}
int format_literal(char* out, const char* text) {
  int len = 0;
  while (text[len] != '\0') {
    out[len] = text[len];
    ++len;
  }
  return len;
}
}  // namespace

std::string FlowKey::to_string() const {
  // Formats straight into one stack buffer with the format_util helpers:
  // this renders once per flow event on the setup path, where an
  // ostringstream (or even snprintf's vfprintf machinery) is measurably
  // expensive. Worst case is 102 characters, so buf cannot overflow.
  char buf[112];
  int len = 0;
  buf[len++] = '[';
  len += format_mac(buf + len, dl_src);
  buf[len++] = '>';
  len += format_mac(buf + len, dl_dst);
  if (vlan_id != kVlanNone) {
    len += format_literal(buf + len, " vlan=");
    len += format_u32_dec(buf + len, vlan_id);
  }
  if (dl_type == static_cast<std::uint16_t>(EtherType::kIpv4)) {
    buf[len++] = ' ';
    len += format_ip(buf + len, nw_src);
    buf[len++] = ':';
    len += format_u32_dec(buf + len, tp_src);
    buf[len++] = '>';
    len += format_ip(buf + len, nw_dst);
    buf[len++] = ':';
    len += format_u32_dec(buf + len, tp_dst);
    len += format_literal(buf + len, " proto=");
    len += format_u32_dec(buf + len, nw_proto);
  }
  buf[len++] = ']';
  return std::string(buf, static_cast<std::size_t>(len));
}

}  // namespace livesec::pkt
