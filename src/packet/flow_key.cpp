#include "packet/flow_key.h"

#include <sstream>

namespace livesec::pkt {

FlowKey FlowKey::from_packet(const Packet& p) {
  FlowKey k;
  k.vlan_id = p.eth.vlan_id;
  k.dl_src = p.eth.src;
  k.dl_dst = p.eth.dst;
  k.dl_type = p.eth.ether_type;
  if (p.ipv4) {
    k.nw_src = p.ipv4->src;
    k.nw_dst = p.ipv4->dst;
    k.nw_proto = p.ipv4->protocol;
    if (p.tcp) {
      k.tp_src = p.tcp->src_port;
      k.tp_dst = p.tcp->dst_port;
    } else if (p.udp) {
      k.tp_src = p.udp->src_port;
      k.tp_dst = p.udp->dst_port;
    } else if (p.icmp) {
      k.tp_src = static_cast<std::uint16_t>(p.icmp->type);  // OpenFlow: icmp_type in tp_src
      k.tp_dst = 0;
    }
  } else if (p.arp) {
    k.nw_src = p.arp->sender_ip;
    k.nw_dst = p.arp->target_ip;
    k.nw_proto = static_cast<std::uint8_t>(p.arp->op);
  }
  return k;
}

FlowKey FlowKey::reversed() const {
  FlowKey k = *this;
  std::swap(k.dl_src, k.dl_dst);
  std::swap(k.nw_src, k.nw_dst);
  std::swap(k.tp_src, k.tp_dst);
  return k;
}

std::uint64_t FlowKey::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = hash_combine(h, vlan_id);
  h = hash_combine(h, dl_src.to_uint64());
  h = hash_combine(h, dl_dst.to_uint64());
  h = hash_combine(h, dl_type);
  h = hash_combine(h, nw_src.value());
  h = hash_combine(h, nw_dst.value());
  h = hash_combine(h, nw_proto);
  h = hash_combine(h, tp_src);
  h = hash_combine(h, tp_dst);
  return splitmix64(h);
}

void FlowKey::encode(BufferWriter& w) const {
  w.u16(vlan_id);
  w.bytes(dl_src.bytes());
  w.bytes(dl_dst.bytes());
  w.u16(dl_type);
  w.u32(nw_src.value());
  w.u32(nw_dst.value());
  w.u8(nw_proto);
  w.u16(tp_src);
  w.u16(tp_dst);
}

FlowKey FlowKey::decode(BufferReader& r) {
  FlowKey k;
  k.vlan_id = r.u16();
  auto mac6 = [&r]() {
    std::array<std::uint8_t, 6> b{};
    for (auto& x : b) x = r.u8();
    return MacAddress(b);
  };
  k.dl_src = mac6();
  k.dl_dst = mac6();
  k.dl_type = r.u16();
  k.nw_src = Ipv4Address(r.u32());
  k.nw_dst = Ipv4Address(r.u32());
  k.nw_proto = r.u8();
  k.tp_src = r.u16();
  k.tp_dst = r.u16();
  return k;
}

std::string FlowKey::to_string() const {
  std::ostringstream out;
  out << "[" << dl_src.to_string() << ">" << dl_dst.to_string();
  if (vlan_id != kVlanNone) out << " vlan=" << vlan_id;
  if (dl_type == static_cast<std::uint16_t>(EtherType::kIpv4)) {
    out << " " << nw_src.to_string() << ":" << tp_src << ">" << nw_dst.to_string() << ":" << tp_dst
        << " proto=" << static_cast<int>(nw_proto);
  }
  out << "]";
  return out.str();
}

}  // namespace livesec::pkt
