// Recycling allocator behind the shared-packet hot path.
#pragma once

#include <memory>

#include "packet/packet.h"

namespace livesec::pkt {

/// Wraps a Packet into the shared form using a pooled allocation.
///
/// `std::make_shared<const Packet>` costs one heap allocation (control block
/// + Packet) per packet; on the simulation hot path packets are created and
/// destroyed at line rate, and every header-rewrite hop (paper §IV.A installs
/// four per policied flow) mints another one. The pool keeps freed blocks on
/// a free list and hands them back on the next allocation, so steady-state
/// traffic recycles a small working set of blocks instead of hammering
/// malloc. The free list is bounded; overflow falls back to operator delete.
///
/// Returns a mutable pointer so callers can finish header rewrites before
/// publishing; it converts implicitly to PacketPtr (shared_ptr<const Packet>)
/// which freezes it by convention.
std::shared_ptr<Packet> pooled_packet(Packet&& p);

}  // namespace livesec::pkt
