// The "9-tuple" flow identity of paper §III.C.3.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "common/hash.h"
#include "packet/buffer.h"
#include "packet/packet.h"

namespace livesec::pkt {

/// Flow identity extracted from a packet's headers: VLAN id, src/dst MAC and
/// EtherType (L2), src/dst IP and protocol (L3), src/dst transport port (L4).
/// The paper calls this the 9-tuple; together with the switch ingress port it
/// forms the 12-tuple reported in security events (paper §IV.A mentions the
/// "12-tuple information of the detected flow" — switch, in-port, 9-tuple
/// plus direction metadata).
struct FlowKey {
  std::uint16_t vlan_id = kVlanNone;
  MacAddress dl_src;
  MacAddress dl_dst;
  std::uint16_t dl_type = 0;
  Ipv4Address nw_src;
  Ipv4Address nw_dst;
  std::uint8_t nw_proto = 0;
  std::uint16_t tp_src = 0;
  std::uint16_t tp_dst = 0;

  /// Extracts the flow key from a packet. Non-IP packets leave L3/L4 fields
  /// zeroed; ICMP packets carry type/code in tp_src/tp_dst as OpenFlow does.
  static FlowKey from_packet(const Packet& p);

  /// The same flow seen from the opposite direction (used by the session
  /// table to pre-install the reply flow, paper §III.C.3).
  FlowKey reversed() const;

  std::uint64_t hash() const;
  std::string to_string() const;

  /// Fixed-size wire encoding (29 bytes) used by daemon messages and the
  /// event database.
  void encode(BufferWriter& w) const;
  static FlowKey decode(BufferReader& r);

  friend auto operator<=>(const FlowKey&, const FlowKey&) = default;
};

}  // namespace livesec::pkt

template <>
struct std::hash<livesec::pkt::FlowKey> {
  std::size_t operator()(const livesec::pkt::FlowKey& k) const noexcept {
    return static_cast<std::size_t>(k.hash());
  }
};
