// The "9-tuple" flow identity of paper §III.C.3.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "common/hash.h"
#include "packet/buffer.h"
#include "packet/packet.h"

namespace livesec::pkt {

/// Flow identity extracted from a packet's headers: VLAN id, src/dst MAC and
/// EtherType (L2), src/dst IP and protocol (L3), src/dst transport port (L4).
/// The paper calls this the 9-tuple; together with the switch ingress port it
/// forms the 12-tuple reported in security events (paper §IV.A mentions the
/// "12-tuple information of the detected flow" — switch, in-port, 9-tuple
/// plus direction metadata).
struct FlowKey {
  std::uint16_t vlan_id = kVlanNone;
  MacAddress dl_src;
  MacAddress dl_dst;
  std::uint16_t dl_type = 0;
  Ipv4Address nw_src;
  Ipv4Address nw_dst;
  std::uint8_t nw_proto = 0;
  std::uint16_t tp_src = 0;
  std::uint16_t tp_dst = 0;

  /// Extracts the flow key from a packet. Non-IP packets leave L3/L4 fields
  /// zeroed; ICMP packets carry type/code in tp_src/tp_dst as OpenFlow does.
  static FlowKey from_packet(const Packet& p);

  /// The same flow seen from the opposite direction (used by the session
  /// table to pre-install the reply flow, paper §III.C.3).
  FlowKey reversed() const;

  /// Hot-path hash: the nine fields packed into four 64-bit words and mixed.
  /// Keyed hash tables on FlowKey sit on the per-packet-in flow-setup path,
  /// so this is inline and word-oriented instead of field-by-field.
  std::uint64_t hash() const {
    const std::uint64_t w0 = dl_src.to_uint64() | (static_cast<std::uint64_t>(vlan_id) << 48);
    const std::uint64_t w1 = dl_dst.to_uint64() | (static_cast<std::uint64_t>(dl_type) << 48);
    const std::uint64_t w2 =
        (static_cast<std::uint64_t>(nw_src.value()) << 32) | nw_dst.value();
    const std::uint64_t w3 = (static_cast<std::uint64_t>(nw_proto) << 32) |
                             (static_cast<std::uint64_t>(tp_src) << 16) | tp_dst;
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = hash_combine(h, w0);
    h = hash_combine(h, w1);
    h = hash_combine(h, w2);
    h = hash_combine(h, w3);
    return splitmix64(h);
  }

  std::string to_string() const;

  /// Fixed-size wire encoding (29 bytes) used by daemon messages and the
  /// event database.
  void encode(BufferWriter& w) const;
  static FlowKey decode(BufferReader& r);

  friend auto operator<=>(const FlowKey&, const FlowKey&) = default;
};

}  // namespace livesec::pkt

template <>
struct std::hash<livesec::pkt::FlowKey> {
  std::size_t operator()(const livesec::pkt::FlowKey& k) const noexcept {
    return static_cast<std::size_t>(k.hash());
  }
};
