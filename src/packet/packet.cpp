#include "packet/packet.h"

#include <sstream>

#include "packet/packet_pool.h"

namespace livesec::pkt {

std::size_t Packet::serialized_size() const {
  std::size_t size = eth.wire_size();
  if (arp) size += ArpHeader::kSize;
  if (ipv4) size += Ipv4Header::kSize;
  if (tcp) size += TcpHeader::kSize;
  if (udp) size += UdpHeader::kSize;
  if (icmp) size += IcmpHeader::kSize;
  return size + payload_size();
}

std::size_t Packet::wire_size() const {
  const std::size_t size = serialized_size();
  // Minimum Ethernet frame size (64 bytes incl. FCS; we model 60 + implicit FCS).
  return size < 60 ? 60 : size;
}

std::vector<std::uint8_t> Packet::serialize() const {
  BufferWriter w;
  w.reserve(serialized_size());  // exact wire bytes, sized in one growth step
  serialize_into(w);
  return w.take();
}

void Packet::serialize_into(BufferWriter& w) const {
  eth.serialize(w);
  if (arp) {
    arp->serialize(w);
  } else if (ipv4) {
    std::size_t l4 = payload_size();
    if (tcp) l4 += TcpHeader::kSize;
    if (udp) l4 += UdpHeader::kSize;
    if (icmp) l4 += IcmpHeader::kSize;
    ipv4->serialize(w, static_cast<std::uint16_t>(Ipv4Header::kSize + l4));
    if (tcp) tcp->serialize(w);
    if (udp) udp->serialize(w, static_cast<std::uint16_t>(payload_size()));
    if (icmp) icmp->serialize(w);
    if (payload) w.bytes(*payload);
  } else if (payload) {
    w.bytes(*payload);
  }
}

std::optional<Packet> Packet::parse(std::span<const std::uint8_t> bytes) {
  BufferReader r(bytes);
  Packet p;
  auto eth = EthernetHeader::parse(r);
  if (!eth) return std::nullopt;
  p.eth = *eth;
  if (p.eth.ether_type == static_cast<std::uint16_t>(EtherType::kArp)) {
    auto arp = ArpHeader::parse(r);
    if (!arp) return std::nullopt;
    p.arp = *arp;
  } else if (p.eth.ether_type == static_cast<std::uint16_t>(EtherType::kIpv4)) {
    auto ip = Ipv4Header::parse(r);
    if (!ip) return std::nullopt;
    p.ipv4 = *ip;
    switch (static_cast<IpProto>(ip->protocol)) {
      case IpProto::kTcp: {
        auto tcp = TcpHeader::parse(r);
        if (!tcp) return std::nullopt;
        p.tcp = *tcp;
        break;
      }
      case IpProto::kUdp: {
        auto udp = UdpHeader::parse(r);
        if (!udp) return std::nullopt;
        p.udp = *udp;
        break;
      }
      case IpProto::kIcmp: {
        auto icmp = IcmpHeader::parse(r);
        if (!icmp) return std::nullopt;
        p.icmp = *icmp;
        break;
      }
      default:
        break;
    }
    if (r.remaining() > 0) p.payload = make_payload(r.bytes(r.remaining()));
  } else if (r.remaining() > 0) {
    p.payload = make_payload(r.bytes(r.remaining()));
  }
  return p;
}

std::string Packet::summary() const {
  std::ostringstream out;
  out << eth.src.to_string() << ">" << eth.dst.to_string();
  if (arp) {
    out << " ARP " << (arp->op == ArpOp::kRequest ? "who-has " : "is-at ")
        << arp->target_ip.to_string();
  } else if (ipv4) {
    out << " IP " << ipv4->src.to_string() << ">" << ipv4->dst.to_string();
    if (tcp) out << " TCP " << tcp->src_port << ">" << tcp->dst_port;
    if (udp) out << " UDP " << udp->src_port << ">" << udp->dst_port;
    if (icmp)
      out << " ICMP " << (icmp->type == IcmpType::kEchoRequest ? "echo-req" : "echo-rep") << " seq "
          << icmp->seq;
  }
  out << " len " << wire_size();
  return out.str();
}

PacketPtr finalize(Packet p) { return pooled_packet(std::move(p)); }

std::shared_ptr<const std::vector<std::uint8_t>> make_payload(std::string_view text) {
  return std::make_shared<const std::vector<std::uint8_t>>(text.begin(), text.end());
}

std::shared_ptr<const std::vector<std::uint8_t>> make_payload(std::vector<std::uint8_t> bytes) {
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
}

std::shared_ptr<const std::vector<std::uint8_t>> make_payload(std::size_t size) {
  return std::make_shared<const std::vector<std::uint8_t>>(size, std::uint8_t{0});
}

PacketBuilder& PacketBuilder::eth(MacAddress src, MacAddress dst, EtherType type) {
  packet_.eth.src = src;
  packet_.eth.dst = dst;
  packet_.eth.ether_type = static_cast<std::uint16_t>(type);
  return *this;
}

PacketBuilder& PacketBuilder::vlan(std::uint16_t vlan_id) {
  packet_.eth.vlan_id = vlan_id;
  return *this;
}

PacketBuilder& PacketBuilder::arp(ArpOp op, MacAddress sender_mac, Ipv4Address sender_ip,
                                  MacAddress target_mac, Ipv4Address target_ip) {
  packet_.eth.ether_type = static_cast<std::uint16_t>(EtherType::kArp);
  ArpHeader h;
  h.op = op;
  h.sender_mac = sender_mac;
  h.sender_ip = sender_ip;
  h.target_mac = target_mac;
  h.target_ip = target_ip;
  packet_.arp = h;
  return *this;
}

PacketBuilder& PacketBuilder::ipv4(Ipv4Address src, Ipv4Address dst, IpProto proto) {
  packet_.eth.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);
  Ipv4Header h;
  h.src = src;
  h.dst = dst;
  h.protocol = static_cast<std::uint8_t>(proto);
  packet_.ipv4 = h;
  return *this;
}

PacketBuilder& PacketBuilder::tcp(std::uint16_t src_port, std::uint16_t dst_port,
                                  std::uint8_t flags) {
  TcpHeader h;
  h.src_port = src_port;
  h.dst_port = dst_port;
  h.flags = flags;
  packet_.tcp = h;
  return *this;
}

PacketBuilder& PacketBuilder::udp(std::uint16_t src_port, std::uint16_t dst_port) {
  UdpHeader h;
  h.src_port = src_port;
  h.dst_port = dst_port;
  packet_.udp = h;
  return *this;
}

PacketBuilder& PacketBuilder::icmp(IcmpType type, std::uint16_t id, std::uint16_t seq) {
  IcmpHeader h;
  h.type = type;
  h.id = id;
  h.seq = seq;
  packet_.icmp = h;
  return *this;
}

PacketBuilder& PacketBuilder::payload(std::shared_ptr<const std::vector<std::uint8_t>> p) {
  packet_.payload = std::move(p);
  return *this;
}

PacketBuilder& PacketBuilder::payload(std::string_view text) {
  packet_.payload = make_payload(text);
  return *this;
}

PacketBuilder& PacketBuilder::payload_size(std::size_t size) {
  packet_.payload = make_payload(size);
  return *this;
}

}  // namespace livesec::pkt
