// Protocol header definitions: Ethernet, 802.1Q VLAN, ARP, IPv4, TCP, UDP,
// ICMP. Each header is a plain value struct with byte-exact serialize/parse.
#pragma once

#include <cstdint>
#include <optional>

#include "common/ip_address.h"
#include "common/mac_address.h"
#include "packet/buffer.h"

namespace livesec::pkt {

/// EtherType values used by LiveSec.
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
  kVlan = 0x8100,
  kLldp = 0x88CC,
};

/// IP protocol numbers used by LiveSec.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

inline constexpr std::uint16_t kVlanNone = 0xFFFF;  // OpenFlow OFP_VLAN_NONE

struct EthernetHeader {
  MacAddress dst;
  MacAddress src;
  /// 802.1Q VLAN id, or kVlanNone when untagged.
  std::uint16_t vlan_id = kVlanNone;
  std::uint16_t ether_type = 0;

  static constexpr std::size_t kUntaggedSize = 14;
  static constexpr std::size_t kTaggedSize = 18;

  std::size_t wire_size() const { return vlan_id == kVlanNone ? kUntaggedSize : kTaggedSize; }
  void serialize(BufferWriter& w) const;
  static std::optional<EthernetHeader> parse(BufferReader& r);
};

enum class ArpOp : std::uint16_t { kRequest = 1, kReply = 2 };

struct ArpHeader {
  ArpOp op = ArpOp::kRequest;
  MacAddress sender_mac;
  Ipv4Address sender_ip;
  MacAddress target_mac;
  Ipv4Address target_ip;

  static constexpr std::size_t kSize = 28;
  void serialize(BufferWriter& w) const;
  static std::optional<ArpHeader> parse(BufferReader& r);
};

struct Ipv4Header {
  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;  // filled by Packet::serialize
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  Ipv4Address src;
  Ipv4Address dst;

  static constexpr std::size_t kSize = 20;  // no options
  void serialize(BufferWriter& w, std::uint16_t total_length_out) const;
  static std::optional<Ipv4Header> parse(BufferReader& r);
};

/// TCP flag bits (subset).
struct TcpFlags {
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;

  static constexpr std::size_t kSize = 20;  // no options
  void serialize(BufferWriter& w) const;
  static std::optional<TcpHeader> parse(BufferReader& r);
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  static constexpr std::size_t kSize = 8;
  void serialize(BufferWriter& w, std::uint16_t payload_size) const;
  static std::optional<UdpHeader> parse(BufferReader& r);
};

enum class IcmpType : std::uint8_t { kEchoReply = 0, kEchoRequest = 8 };

struct IcmpHeader {
  IcmpType type = IcmpType::kEchoRequest;
  std::uint16_t id = 0;
  std::uint16_t seq = 0;

  static constexpr std::size_t kSize = 8;
  void serialize(BufferWriter& w) const;
  static std::optional<IcmpHeader> parse(BufferReader& r);
};

}  // namespace livesec::pkt
