// Simplified DHCP (BOOTP-style) message codec. The LiveSec directory proxy
// answers DHCP centrally (paper §III.C.2: "a dedicated directory proxy
// should be employed to specially handle all ARP and DHCP resolutions").
#pragma once

#include <cstdint>
#include <optional>

#include "common/ip_address.h"
#include "common/mac_address.h"
#include "packet/packet.h"

namespace livesec::pkt {

inline constexpr std::uint16_t kDhcpServerPort = 67;
inline constexpr std::uint16_t kDhcpClientPort = 68;

enum class DhcpOp : std::uint8_t {
  kDiscover = 1,
  kOffer = 2,
  kRequest = 3,
  kAck = 4,
  kNak = 5,
};

const char* dhcp_op_name(DhcpOp op);

/// The subset of BOOTP/DHCP fields LiveSec uses: message type, transaction
/// id, client hardware address, offered/requested address, server id, lease.
struct DhcpMessage {
  DhcpOp op = DhcpOp::kDiscover;
  std::uint32_t xid = 0;
  MacAddress client_mac;
  Ipv4Address your_ip;     // yiaddr: offered / acknowledged address
  Ipv4Address server_ip;   // server identifier
  std::uint32_t lease_seconds = 0;

  /// Serializes to a UDP payload (magic-prefixed fixed layout).
  std::vector<std::uint8_t> encode() const;
  static std::optional<DhcpMessage> decode(std::span<const std::uint8_t> payload);

  /// Wraps into a full packet. Client messages broadcast; server messages
  /// unicast to the client MAC.
  Packet to_packet(MacAddress src_mac, Ipv4Address src_ip) const;
};

/// True when the packet is DHCP (UDP ports 67/68).
bool is_dhcp_packet(const Packet& packet);

}  // namespace livesec::pkt
