// Structured packet model passed between simulated network elements.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "packet/headers.h"

namespace livesec::pkt {

/// A network packet, held as parsed layers plus an immutable shared payload.
///
/// The simulation hot path passes `std::shared_ptr<const Packet>` so that a
/// packet traversing N hops costs zero copies. Elements that rewrite headers
/// (e.g. the ingress AS switch setting dl_dst to a service element's MAC,
/// paper §IV.A) copy the Packet value — cheap, since the payload is shared.
///
/// `serialize()`/`parse()` convert to and from exact wire bytes; the service
/// element daemon messages and the LLDP frames use this for real encoding.
struct Packet {
  EthernetHeader eth;
  std::optional<ArpHeader> arp;
  std::optional<Ipv4Header> ipv4;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::optional<IcmpHeader> icmp;
  std::shared_ptr<const std::vector<std::uint8_t>> payload;

  /// Total size on the wire in bytes (headers + payload), used for
  /// serialization-delay and throughput accounting. Clamped to the 60-byte
  /// Ethernet minimum; `serialized_size()` is the unclamped byte count.
  std::size_t wire_size() const;

  /// Exact number of bytes `serialize()` emits (headers + payload, no
  /// minimum-frame padding). Lets callers reserve scratch space up front.
  std::size_t serialized_size() const;

  std::size_t payload_size() const { return payload ? payload->size() : 0; }
  std::span<const std::uint8_t> payload_view() const {
    return payload ? std::span<const std::uint8_t>(*payload) : std::span<const std::uint8_t>{};
  }

  /// Serializes to exact wire bytes (Ethernet frame).
  std::vector<std::uint8_t> serialize() const;

  /// Appends the wire bytes to an existing writer — codecs embedding packets
  /// (e.g. the OpenFlow PacketIn/PacketOut encoding) reuse their scratch
  /// buffer instead of paying a temporary vector per packet.
  void serialize_into(BufferWriter& w) const;

  /// Parses wire bytes back into a structured packet. Returns nullopt for
  /// malformed frames. Unknown EtherTypes keep the remaining bytes as payload.
  static std::optional<Packet> parse(std::span<const std::uint8_t> bytes);

  /// One-line human-readable summary ("IPv4 10.0.0.1->10.0.0.2 TCP 80...").
  std::string summary() const;
};

using PacketPtr = std::shared_ptr<const Packet>;

/// Wraps a Packet value into the shared immutable form used on the wire.
/// Allocation is pooled (see packet_pool.h): steady-state traffic recycles
/// freed packet blocks instead of round-tripping through malloc.
PacketPtr finalize(Packet p);

/// Shared immutable payload bytes — one allocation, shared by every copy of
/// the packet and (for CBR-style senders) by every packet of a flow.
using PayloadPtr = std::shared_ptr<const std::vector<std::uint8_t>>;

/// Convenience payload construction from a string literal / string.
std::shared_ptr<const std::vector<std::uint8_t>> make_payload(std::string_view text);
std::shared_ptr<const std::vector<std::uint8_t>> make_payload(std::vector<std::uint8_t> bytes);
/// A zero-filled payload of `size` bytes (bulk data traffic).
std::shared_ptr<const std::vector<std::uint8_t>> make_payload(std::size_t size);

/// Builder for the packet kinds LiveSec exercises. Keeps test and generator
/// code short and uniform.
class PacketBuilder {
 public:
  PacketBuilder& eth(MacAddress src, MacAddress dst,
                     EtherType type = EtherType::kIpv4);
  PacketBuilder& vlan(std::uint16_t vlan_id);
  PacketBuilder& arp(ArpOp op, MacAddress sender_mac, Ipv4Address sender_ip,
                     MacAddress target_mac, Ipv4Address target_ip);
  PacketBuilder& ipv4(Ipv4Address src, Ipv4Address dst, IpProto proto);
  PacketBuilder& tcp(std::uint16_t src_port, std::uint16_t dst_port, std::uint8_t flags = 0);
  PacketBuilder& udp(std::uint16_t src_port, std::uint16_t dst_port);
  PacketBuilder& icmp(IcmpType type, std::uint16_t id, std::uint16_t seq);
  PacketBuilder& payload(std::shared_ptr<const std::vector<std::uint8_t>> p);
  PacketBuilder& payload(std::string_view text);
  PacketBuilder& payload_size(std::size_t size);

  Packet build() const { return packet_; }
  PacketPtr finalize() const { return pkt::finalize(packet_); }

 private:
  Packet packet_;
};

}  // namespace livesec::pkt
