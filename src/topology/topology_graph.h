// The controller's global view of the Access-Switching topology
// (paper §III.C.1: "the global network topology of access switching network
// can be mastered by the LiveSec controller in real time").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "topology/link_table.h"

namespace livesec::topo {

/// Kind of node in the logical topology graph shown by the WebUI.
enum class NodeKind { kAsSwitch, kWifiAp, kHost, kServiceElement, kGateway };

const char* node_kind_name(NodeKind kind);

/// Logical topology: AS switches/APs discovered through secure channels plus
/// hosts/SEs learned from ARP packet-ins, with their attachment points.
class TopologyGraph {
 public:
  struct SwitchInfo {
    DatapathId dpid = 0;
    std::string name;
    NodeKind kind = NodeKind::kAsSwitch;
    SimTime joined_at = 0;
  };

  struct AttachedNode {
    std::string name;
    NodeKind kind = NodeKind::kHost;
    DatapathId dpid = 0;   // AS switch it hangs off
    PortId port = kInvalidPort;
    SimTime joined_at = 0;
  };

  // --- switches -------------------------------------------------------------
  void add_switch(SwitchInfo info);
  void remove_switch(DatapathId dpid);
  bool has_switch(DatapathId dpid) const { return switches_.contains(dpid); }
  const SwitchInfo* switch_info(DatapathId dpid) const;
  std::vector<DatapathId> switch_ids() const;
  std::size_t switch_count() const { return switches_.size(); }

  // --- attached periphery nodes ---------------------------------------------
  void upsert_node(const std::string& key, AttachedNode node);
  void remove_node(const std::string& key);
  const AttachedNode* node(const std::string& key) const;
  std::vector<std::pair<std::string, AttachedNode>> nodes() const;
  std::size_t node_count() const { return nodes_.size(); }

  // --- links ------------------------------------------------------------------
  LinkTable& links() { return links_; }
  const LinkTable& links() const { return links_; }

  /// Full-mesh check over the current switch set (paper §III.C.1).
  bool full_mesh() const { return links_.is_full_mesh(switch_ids()); }

  /// Graphviz dot rendering of the logical topology (WebUI export).
  std::string to_dot() const;

 private:
  std::map<DatapathId, SwitchInfo> switches_;
  std::map<std::string, AttachedNode> nodes_;
  LinkTable links_;
};

}  // namespace livesec::topo
