// LLDP frames for controller-driven link discovery (paper §III.C.1: "Based
// on link layer discovery protocol (LLDP), LiveSec controller can
// dynamically discover the logical link between all switches").
#pragma once

#include <optional>

#include "common/types.h"
#include "packet/packet.h"

namespace livesec::topo {

/// Payload of a LiveSec LLDP probe: identifies the emitting switch and port.
/// The controller floods these via PacketOut on every AS switch port; when a
/// probe arrives back via PacketIn on a different switch, the pair of
/// (switch, port) endpoints is a discovered logical link.
struct LldpInfo {
  DatapathId chassis_id = 0;
  PortId port_id = kInvalidPort;

  /// Encodes as a genuine LLDP-style TLV payload inside an Ethernet frame
  /// with EtherType 0x88CC and the LLDP multicast destination.
  pkt::Packet to_packet() const;

  /// Decodes; nullopt for anything that is not one of our probes.
  static std::optional<LldpInfo> from_packet(const pkt::Packet& packet);

  /// The LLDP nearest-bridge multicast address 01:80:c2:00:00:0e.
  static MacAddress multicast_mac();
};

}  // namespace livesec::topo
