#include "topology/topology_graph.h"

#include <algorithm>
#include <sstream>

namespace livesec::topo {

const char* node_kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::kAsSwitch: return "as_switch";
    case NodeKind::kWifiAp: return "wifi_ap";
    case NodeKind::kHost: return "host";
    case NodeKind::kServiceElement: return "service_element";
    case NodeKind::kGateway: return "gateway";
  }
  return "?";
}

void TopologyGraph::add_switch(SwitchInfo info) { switches_[info.dpid] = std::move(info); }

void TopologyGraph::remove_switch(DatapathId dpid) {
  switches_.erase(dpid);
  links_.remove_switch(dpid);
  for (auto it = nodes_.begin(); it != nodes_.end();) {
    if (it->second.dpid == dpid) {
      it = nodes_.erase(it);
    } else {
      ++it;
    }
  }
}

const TopologyGraph::SwitchInfo* TopologyGraph::switch_info(DatapathId dpid) const {
  auto it = switches_.find(dpid);
  return it == switches_.end() ? nullptr : &it->second;
}

std::vector<DatapathId> TopologyGraph::switch_ids() const {
  std::vector<DatapathId> out;
  out.reserve(switches_.size());
  for (const auto& [dpid, info] : switches_) out.push_back(dpid);
  return out;
}

void TopologyGraph::upsert_node(const std::string& key, AttachedNode node) {
  nodes_[key] = std::move(node);
}

void TopologyGraph::remove_node(const std::string& key) { nodes_.erase(key); }

const TopologyGraph::AttachedNode* TopologyGraph::node(const std::string& key) const {
  auto it = nodes_.find(key);
  return it == nodes_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::string, TopologyGraph::AttachedNode>> TopologyGraph::nodes() const {
  return {nodes_.begin(), nodes_.end()};
}

std::string TopologyGraph::to_dot() const {
  std::ostringstream out;
  out << "graph livesec {\n";
  for (const auto& [dpid, info] : switches_) {
    out << "  sw" << dpid << " [label=\"" << info.name << "\" shape=box kind="
        << node_kind_name(info.kind) << "];\n";
  }
  for (const auto& [key, node] : nodes_) {
    out << "  \"" << key << "\" [label=\"" << node.name << "\" kind=" << node_kind_name(node.kind)
        << "];\n";
    if (switches_.contains(node.dpid)) {
      out << "  \"" << key << "\" -- sw" << node.dpid << " [port=" << node.port << "];\n";
    }
  }
  std::set<std::pair<DatapathId, DatapathId>> drawn;
  for (DatapathId a : switch_ids()) {
    for (const AsLink& l : links_.links_from(a)) {
      const auto key = std::minmax(l.src, l.dst);
      if (drawn.insert({key.first, key.second}).second) {
        out << "  sw" << l.src << " -- sw" << l.dst << ";\n";
      }
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace livesec::topo
