// The controller's link table: how to get from one AS switch to another
// (paper §III.C.2: "keep track of the mapping relationship in the link
// table").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace livesec::topo {

/// One logical adjacency in the full-mesh Access-Switching topology:
/// leaving `src` via `src_port` reaches `dst` on `dst_port` (through the
/// transparent legacy fabric).
struct AsLink {
  DatapathId src = 0;
  PortId src_port = kInvalidPort;
  DatapathId dst = 0;
  PortId dst_port = kInvalidPort;

  friend auto operator<=>(const AsLink&, const AsLink&) = default;
};

/// Bidirectional map of discovered AS-layer links. In LiveSec each AS switch
/// attaches to the legacy fabric through its Legacy-Switching port, and the
/// fabric guarantees reachability between any pair — a full mesh. The table
/// answers "which ports connect switch A to switch B".
class LinkTable {
 public:
  /// Records a link in both directions.
  void add(const AsLink& link);
  void remove_switch(DatapathId dpid);

  /// Ports connecting src -> dst, if known.
  std::optional<AsLink> find(DatapathId src, DatapathId dst) const;

  /// All links from `src`.
  std::vector<AsLink> links_from(DatapathId src) const;

  /// Every directed link, in deterministic (src, dst) order — the
  /// replication snapshot re-expresses the table through this.
  std::vector<AsLink> all() const;

  /// Total number of directed links.
  std::size_t size() const { return links_.size(); }

  /// True when every distinct ordered switch pair in `switches` has a link.
  bool is_full_mesh(const std::vector<DatapathId>& switches) const;

  std::string dump() const;

 private:
  std::map<std::pair<DatapathId, DatapathId>, AsLink> links_;
};

}  // namespace livesec::topo
