#include "topology/link_table.h"

#include <sstream>

namespace livesec::topo {

void LinkTable::add(const AsLink& link) {
  links_[{link.src, link.dst}] = link;
  links_[{link.dst, link.src}] = AsLink{link.dst, link.dst_port, link.src, link.src_port};
}

void LinkTable::remove_switch(DatapathId dpid) {
  for (auto it = links_.begin(); it != links_.end();) {
    if (it->first.first == dpid || it->first.second == dpid) {
      it = links_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<AsLink> LinkTable::find(DatapathId src, DatapathId dst) const {
  auto it = links_.find({src, dst});
  if (it == links_.end()) return std::nullopt;
  return it->second;
}

std::vector<AsLink> LinkTable::links_from(DatapathId src) const {
  std::vector<AsLink> out;
  for (const auto& [key, link] : links_) {
    if (key.first == src) out.push_back(link);
  }
  return out;
}

std::vector<AsLink> LinkTable::all() const {
  std::vector<AsLink> out;
  out.reserve(links_.size());
  for (const auto& [key, link] : links_) out.push_back(link);
  return out;
}

bool LinkTable::is_full_mesh(const std::vector<DatapathId>& switches) const {
  for (DatapathId a : switches) {
    for (DatapathId b : switches) {
      if (a == b) continue;
      if (!links_.contains({a, b})) return false;
    }
  }
  return true;
}

std::string LinkTable::dump() const {
  std::ostringstream out;
  out << "link_table(" << links_.size() << " directed links)\n";
  for (const auto& [key, link] : links_) {
    out << "  dpid " << link.src << " port " << link.src_port << " -> dpid " << link.dst
        << " port " << link.dst_port << "\n";
  }
  return out.str();
}

}  // namespace livesec::topo
