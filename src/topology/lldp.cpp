#include "topology/lldp.h"

#include "packet/buffer.h"

namespace livesec::topo {

namespace {
// TLV types from IEEE 802.1AB.
constexpr std::uint8_t kTlvChassisId = 1;
constexpr std::uint8_t kTlvPortId = 2;
constexpr std::uint8_t kTlvEnd = 0;
}  // namespace

MacAddress LldpInfo::multicast_mac() {
  return MacAddress::from_uint64(0x0180c200000eull);
}

pkt::Packet LldpInfo::to_packet() const {
  pkt::BufferWriter w;
  // Chassis ID TLV: type(7 bits)|len(9 bits), subtype 7 (locally assigned),
  // value = 8-byte datapath id.
  w.u16(static_cast<std::uint16_t>((kTlvChassisId << 9) | 9));
  w.u8(7);
  w.u64(chassis_id);
  // Port ID TLV: subtype 7, value = 4-byte port number.
  w.u16(static_cast<std::uint16_t>((kTlvPortId << 9) | 5));
  w.u8(7);
  w.u32(port_id);
  // End TLV.
  w.u16(static_cast<std::uint16_t>(kTlvEnd << 9));

  pkt::Packet p;
  // 0e:xx:... prefix: locally administered, disjoint from the 02:xx host
  // range, so legacy MAC learning can never confuse a probe with a host.
  p.eth.src = MacAddress::from_uint64(0x0E0000000000ull | (chassis_id & 0xFFFFFFFFFFull));
  p.eth.dst = multicast_mac();
  p.eth.ether_type = static_cast<std::uint16_t>(pkt::EtherType::kLldp);
  p.payload = pkt::make_payload(w.take());
  return p;
}

std::optional<LldpInfo> LldpInfo::from_packet(const pkt::Packet& packet) {
  if (packet.eth.ether_type != static_cast<std::uint16_t>(pkt::EtherType::kLldp)) {
    return std::nullopt;
  }
  pkt::BufferReader r(packet.payload_view());
  LldpInfo info;
  bool have_chassis = false;
  bool have_port = false;
  while (r.ok() && r.remaining() >= 2) {
    const std::uint16_t header = r.u16();
    const std::uint8_t type = static_cast<std::uint8_t>(header >> 9);
    const std::uint16_t length = header & 0x1FF;
    if (type == kTlvEnd) break;
    if (type == kTlvChassisId && length == 9) {
      r.u8();  // subtype
      info.chassis_id = r.u64();
      have_chassis = true;
    } else if (type == kTlvPortId && length == 5) {
      r.u8();  // subtype
      info.port_id = r.u32();
      have_port = true;
    } else {
      r.skip(length);
    }
  }
  if (!r.ok() || !have_chassis || !have_port) return std::nullopt;
  return info;
}

}  // namespace livesec::topo
