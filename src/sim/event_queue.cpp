#include "sim/event_queue.h"

#include <utility>

namespace livesec::sim {

std::uint64_t EventQueue::push(SimTime time, std::function<void()> action) {
  const std::uint64_t seq = next_seq_++;
  heap_.push(Event{time, seq, std::move(action)});
  return seq;
}

Event EventQueue::pop() {
  // priority_queue::top() returns const&; moving out of the const reference
  // would silently copy, so copy explicitly then pop.
  Event e = heap_.top();
  heap_.pop();
  return e;
}

}  // namespace livesec::sim
