#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <utility>

namespace livesec::sim {

namespace {

/// Width heuristic: pick the power-of-two bucket width that spreads `pending`
/// events across `span` nanoseconds at roughly one per bucket, so spliced
/// days stay tiny and need no sorting. Callers pass the span of the events
/// *nearest the head* — sizing from the global span is the classic calendar
/// failure mode: one far-future timer (e.g. a 1 s duration guard) inflates
/// the span, the width balloons, every near event maps to the cursor's day
/// and the queue degenerates into an O(n)-per-push insertion-sorted vector.
std::uint32_t shift_for_span(SimTime span, std::size_t pending, std::uint64_t num_buckets) {
  const std::uint64_t divisor =
      std::max<std::uint64_t>(1, std::min<std::uint64_t>(pending, num_buckets));
  const std::uint64_t target = static_cast<std::uint64_t>(span < 0 ? 0 : span) / divisor;
  // Round up to the *nearest* power of two (bit_width alone would round a
  // power-of-two target up a further 2x, doubling bucket occupancy).
  if (target <= 1) return 0;
  return static_cast<std::uint32_t>(std::bit_width(target - 1));
}

}  // namespace

void EventQueue::place(Event&& e) {
  const std::uint64_t b = bucket_of(e.time);
  if (b <= day_) {
    // At or before the cursor's day: append to the run; rebuild() sorts the
    // run once after all placements.
    cur_.push_back(std::move(e));
  } else if (b < window_end_) {
    buckets_[b & kMask].push_back(std::move(e));
    occupied_[(b & kMask) >> 6] |= 1ull << (b & 63);
    ++near_count_;
  } else {
    overflow_.push_back(std::move(e));
  }
}

void EventQueue::rebuild() {
  scratch_.clear();
  scratch_.reserve(size_);
  for (std::size_t i = pos_; i < cur_.size(); ++i) scratch_.push_back(std::move(cur_[i]));
  cur_.clear();
  pos_ = 0;
  if (near_count_ > 0) {
    for (Bucket& b : buckets_) {
      for (Event& e : b) scratch_.push_back(std::move(e));
      b.clear();
    }
  }
  for (Event& e : overflow_) scratch_.push_back(std::move(e));
  overflow_.clear();
  near_count_ = 0;
  for (std::uint64_t& w : occupied_) w = 0;

  // Size buckets from the density at the head of the queue, where the window
  // lives — not from the global span (see shift_for_span). Far events simply
  // sit in the overflow until a later rebuild reaches them. An O(n) select
  // of the kWidthSample-th smallest time gives the head span without sorting
  // the (64-byte) events themselves.
  time_scratch_.clear();
  time_scratch_.reserve(scratch_.size());
  SimTime tmin = scratch_.front().time;
  for (const Event& e : scratch_) {
    tmin = std::min(tmin, e.time);
    time_scratch_.push_back(e.time);
  }
  const std::size_t sample = std::min<std::size_t>(time_scratch_.size(), kWidthSample);
  if (sample >= 2) {
    std::nth_element(time_scratch_.begin(),
                     time_scratch_.begin() + static_cast<std::ptrdiff_t>(sample - 1),
                     time_scratch_.end());
    shift_ = shift_for_span(time_scratch_[sample - 1] - tmin, sample - 1, kBuckets);
  } else {
    shift_ = 0;
  }
  day_ = static_cast<std::uint64_t>(tmin) >> shift_;
  window_end_ = day_ + kBuckets;
  for (Event& e : scratch_) place(std::move(e));
  scratch_.clear();
  // place() appended the cursor-day events to the run unsorted; restore the
  // (time, seq) dispatch order. The run holds at most one bucket's worth.
  std::sort(cur_.begin(), cur_.end(), Earlier{});
  // Re-derive the width once the population doubles: a rebuild taken while
  // the workload ramps (a handful of sparse timers at t=0) picks a coarse
  // width that would otherwise stick for the whole window.
  resize_at_ = std::max<std::size_t>(2 * size_, 2 * kWidthSample);
}

}  // namespace livesec::sim
