#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace livesec::sim {

std::uint64_t Simulator::run() {
  std::uint64_t count = 0;
  while (step()) ++count;
  return count;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    step();
    ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event e = queue_.pop();
  now_ = e.time;
  e.action();
  return true;
}

}  // namespace livesec::sim
