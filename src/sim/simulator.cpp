#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace livesec::sim {

void Simulator::schedule(SimTime delay, std::function<void()> action) {
  assert(delay >= 0 && "cannot schedule into the past");
  queue_.push(now_ + delay, std::move(action));
}

void Simulator::schedule_at(SimTime when, std::function<void()> action) {
  assert(when >= now_ && "cannot schedule into the past");
  queue_.push(when, std::move(action));
}

std::uint64_t Simulator::run() {
  std::uint64_t count = 0;
  while (step()) ++count;
  return count;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    step();
    ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event e = queue_.pop();
  now_ = e.time;
  e.action();
  return true;
}

}  // namespace livesec::sim
