// The simulation kernel: virtual clock plus event dispatch loop.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>

#include "common/types.h"
#include "sim/event_queue.h"
#include "sim/inline_function.h"

namespace livesec::sim {

/// Single-threaded discrete-event simulator.
///
/// Every network element (link, switch, host, service element, controller
/// channel) schedules its work through one `Simulator`, which guarantees a
/// globally ordered, reproducible execution.
class Simulator {
 public:
  SimTime now() const { return now_; }

  /// Schedules `action` to run `delay` ns from now (delay >= 0). Callbacks
  /// capturing up to InlineFunction::kInlineSize bytes are stored without a
  /// heap allocation, constructed directly in their queue slot.
  template <typename F>
  void schedule(SimTime delay, F&& action) {
    assert(delay >= 0 && "cannot schedule into the past");
    queue_.push(now_ + delay, std::forward<F>(action));
  }

  /// Schedules `action` at absolute simulated time `when` (>= now()).
  template <typename F>
  void schedule_at(SimTime when, F&& action) {
    assert(when >= now_ && "cannot schedule into the past");
    queue_.push(when, std::forward<F>(action));
  }

  /// Runs events until the queue drains. Returns the number of events run.
  std::uint64_t run();

  /// Runs events with time <= `deadline`, then advances the clock to
  /// `deadline` (even if the queue drained earlier). Returns events run.
  std::uint64_t run_until(SimTime deadline);

  /// Runs at most one event. Returns false if the queue was empty.
  bool step();

  std::size_t pending_events() const { return queue_.size(); }

 private:
  SimTime now_ = 0;
  EventQueue queue_;
};

}  // namespace livesec::sim
