// Move-only callable with small-buffer storage, sized for event callbacks.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace livesec::sim {

/// `void()` callable wrapper used for simulation events instead of
/// `std::function`.
///
/// Differences that matter on the kernel hot path:
///   - 40 bytes of inline storage — sized so that `sim::Event` (time + seq +
///     callback) is exactly one 64-byte cache line, while every scheduling
///     lambda in the packet path (link delivery captures this + packed
///     dir/size + PacketPtr = 32 bytes) fits without a heap allocation.
///     `std::function` on libstdc++ spills to the heap past 16 bytes.
///   - move-only, so nothing can accidentally copy a captured PacketPtr and
///     pay refcount traffic; moves relocate the capture inline.
/// Callables that are larger, over-aligned, or throwing-move fall back to a
/// single heap allocation (still move-as-pointer afterwards).
class InlineFunction {
 public:
  static constexpr std::size_t kInlineSize = 40;

  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    init(std::forward<F>(f));
  }

  /// Destroys the current callable (if any) and constructs `f` in place —
  /// lets containers fill a default-constructed slot without a second move.
  template <typename F>
  void emplace(F&& f) {
    reset();
    init(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { take(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs the callable into `dst` and destroys it in `src`.
    /// nullptr means the callable is trivially copyable: relocation is a
    /// plain byte copy with no indirect call and no destructor run.
    void (*relocate)(void* src, void* dst);
    /// nullptr for trivially destructible callables.
    void (*destroy)(void*);
  };

  template <typename D>
  struct InlineModel {
    static D* self(void* s) { return std::launder(reinterpret_cast<D*>(s)); }
    static void invoke(void* s) { (*self(s))(); }
    static void relocate(void* src, void* dst) {
      D* p = self(src);
      ::new (dst) D(std::move(*p));
      p->~D();
    }
    static void destroy(void* s) { self(s)->~D(); }
    static constexpr Ops ops{
        &invoke, std::is_trivially_copyable_v<D> ? nullptr : &relocate,
        std::is_trivially_destructible_v<D> ? nullptr : &destroy};
  };

  template <typename D>
  struct HeapModel {
    static D* self(void* s) { return *std::launder(reinterpret_cast<D**>(s)); }
    static void invoke(void* s) { (*self(s))(); }
    static void destroy(void* s) { delete self(s); }
    // The stored pointer relocates as a byte copy.
    static constexpr Ops ops{&invoke, nullptr, &destroy};
  };

  template <typename F>
  void init(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &InlineModel<D>::ops;
    } else {
      *reinterpret_cast<D**>(static_cast<void*>(storage_)) = new D(std::forward<F>(f));
      ops_ = &HeapModel<D>::ops;
    }
  }

  void take(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(other.storage_, storage_);
      } else {
        __builtin_memcpy(storage_, other.storage_, kInlineSize);
      }
      other.ops_ = nullptr;
    }
  }
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace livesec::sim
