// Deterministic discrete-event queue — two-tier calendar with overflow.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/inline_function.h"

namespace livesec::sim {

/// A pending simulation event: a callback to run at an absolute sim time.
/// Ties on time are broken by insertion sequence so execution order is fully
/// deterministic regardless of container internals. Sized (with
/// InlineFunction's 40-byte buffer) to exactly one 64-byte cache line.
struct Event {
  SimTime time = 0;
  std::uint64_t seq = 0;
  InlineFunction action;
};

/// Calendar queue with amortized O(1) push/pop, ordered by (time, seq).
///
/// Layout (see DESIGN.md "Simulation kernel fast path"):
///   - sorted run `cur_`: the next batch of due events in ascending
///     (time, seq) order, consumed through cursor `pos_` — pop is one move
///     plus a cursor increment, no heap sift;
///   - near tier: kBuckets unsorted append-only buckets of width 2^shift_ ns
///     covering the window [day_, window_end_) of absolute bucket numbers,
///     with a 1-bit-per-bucket occupancy bitmap;
///   - overflow tier: one unsorted vector for events at or past window end.
///
/// Push appends to a bucket or the overflow (O(1)). When the run is consumed,
/// settle() splices the next few non-empty buckets (found via countr_zero on
/// the bitmap) into a fresh run; at the density-matched bucket width each
/// bucket holds events of a single timestamp already in seq order, so the
/// splice needs no comparison sort. Events pushed at or before the cursor's
/// day (zero-delay self-reschedules) insert into the pending part of the run
/// by binary search. When the near tier drains, the window is rebuilt around
/// the overflow with a width recomputed from the density at its head; a
/// doubled population, an oversized pending run, or a bucket that collected
/// a large burst likewise force a finer-width rebuild. Dispatch
/// order is bit-identical to a (time, seq) min-heap — the property test
/// checks this against ReferenceEventQueue.
///
/// The run, bucket, and scratch vectors recycle their capacity, so a
/// steady-state simulation schedules and dispatches events with zero heap
/// allocations (callbacks permitting, see InlineFunction).
class EventQueue {
 public:
  /// Inserts an event at absolute time `time` (>= 0). Returns the sequence
  /// number assigned (useful for debugging; events cannot be cancelled —
  /// schedule a guard flag instead, which is how timeouts are implemented).
  /// Takes any void() callable; it is constructed directly in its queue slot
  /// (one move total from the caller's argument).
  template <typename F>
  std::uint64_t push(SimTime time, F&& action) {
    assert(time >= 0 && "event times are non-negative");
    const std::uint64_t seq = next_seq_++;
    // The population doubled since the width was last derived: re-derive it.
    // A width picked during ramp-up (a few sparse timers) is far too coarse
    // for the steady-state density, and the window only re-sizes naturally
    // when the near tier drains — which a too-coarse width postpones.
    if (size_ >= resize_at_) {
      rebuild();
      burst_retry_ok_ = true;
    }
    std::uint64_t b = bucket_of(time);
    if (b <= day_ && cur_.size() - pos_ >= kBurstThreshold && burst_retry_ok_) {
      // The pending run has grown far past the splice target: pushes keep
      // landing at or before the cursor's day, i.e. the bucket width is too
      // coarse for the live distribution and every such insert pays an O(n)
      // memmove. Rebuild at the width the current population implies; only
      // retry once a finer width was actually achieved.
      const std::uint32_t old_shift = shift_;
      rebuild();
      burst_retry_ok_ = shift_ < old_shift;
      b = bucket_of(time);
    }
    Event* slot;
    if (b <= day_) {
      // Due at or before the cursor's day (that bucket is already spliced
      // into the run — zero-delay self-reschedules land here): insert into
      // the pending part of the run at its sorted position.
      slot = insert_into_run(time, seq);
    } else if (b < window_end_) {
      Bucket& bucket = buckets_[b & kMask];
      occupied_[(b & kMask) >> 6] |= 1ull << (b & 63);
      ++near_count_;
      slot = &bucket.emplace_back();
      slot->time = time;
      slot->seq = seq;
    } else {
      slot = &overflow_.emplace_back();
      slot->time = time;
      slot->seq = seq;
    }
    if constexpr (std::is_same_v<std::decay_t<F>, InlineFunction>) {
      slot->action = std::forward<F>(action);
    } else {
      slot->action.emplace(std::forward<F>(action));
    }
    ++size_;
    if (pos_ == cur_.size()) settle();
    return seq;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Time of the earliest pending event. Precondition: !empty().
  SimTime next_time() const {
    assert(pos_ < cur_.size());
    return cur_[pos_].time;
  }

  /// Removes and returns the earliest pending event by move (no callback
  /// copy). Precondition: !empty().
  Event pop() {
    assert(size_ > 0 && pos_ < cur_.size());
    Event e = std::move(cur_[pos_]);
    ++pos_;
    --size_;
    if (pos_ == cur_.size() && size_ > 0) settle();
    return e;
  }

 private:
  static constexpr std::uint64_t kBuckets = 1024;  // power of two
  static constexpr std::uint64_t kMask = kBuckets - 1;
  static constexpr std::uint64_t kWords = kBuckets / 64;
  static constexpr std::uint64_t kWordMask = kWords - 1;
  /// settle() splices consecutive days until the run holds at least this
  /// many events, amortizing the refill over several pops.
  static constexpr std::size_t kSpliceTarget = 16;
  /// A spliced day larger than this (with a splittable width) triggers a
  /// finer-width rebuild: the day collected a burst denser than the current
  /// calendar resolution. The same threshold caps the pending run length a
  /// push may extend before forcing a rebuild (see push()).
  static constexpr std::size_t kBurstThreshold = 64;
  /// Events sampled from the head of the sorted population to derive the
  /// bucket width at rebuild (their mean gap approximates the density the
  /// window actually serves).
  static constexpr std::size_t kWidthSample = 64;

  using Bucket = std::vector<Event>;

  struct Earlier {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time < b.time;
      return a.seq < b.seq;
    }
  };

  std::uint64_t bucket_of(SimTime time) const {
    return static_cast<std::uint64_t>(time) >> shift_;
  }

  /// Opens a slot for (time, seq) at its sorted position in the pending part
  /// of the run, [pos_, cur_.size()). The dispatched prefix [0, pos_) is
  /// never touched, so the cursor stays valid.
  Event* insert_into_run(SimTime time, std::uint64_t seq) {
    const auto it = std::upper_bound(
        cur_.begin() + static_cast<std::ptrdiff_t>(pos_), cur_.end(),
        std::pair<SimTime, std::uint64_t>(time, seq),
        [](const std::pair<SimTime, std::uint64_t>& v, const Event& e) {
          if (v.first != e.time) return v.first < e.time;
          return v.second < e.seq;
        });
    Event* slot = &*cur_.insert(it, Event{});
    slot->time = time;
    slot->seq = seq;
    return slot;
  }

  /// Refills the run with the next batch of due events. Precondition:
  /// size_ > 0 and the run is fully consumed (pos_ == cur_.size()).
  /// Inlined: it runs once per ~kSpliceTarget dispatches in steady state.
  void settle() {
    cur_.clear();
    pos_ = 0;
    for (;;) {
      if (near_count_ == 0) {
        if (!cur_.empty()) return;
        // Near tier drained: rebuild the window around the overflow. This
        // is where the bucket width adapts to the workload's event density.
        rebuild();
        burst_retry_ok_ = true;
        if (!cur_.empty()) return;
        continue;
      }
      if (cur_.size() >= kSpliceTarget) return;
      advance_day();
      Bucket& bucket = buckets_[day_ & kMask];
      if (cur_.empty() && burst_retry_ok_ && bucket.size() > kBurstThreshold && shift_ > 0) {
        // One day collected a burst denser than the calendar resolution
        // (e.g. a sparse settle phase fixed a coarse width, then traffic
        // started): redistribute with a finer width. If the global span
        // prevents a finer width, fall through and splice the big day.
        const std::uint32_t old_shift = shift_;
        rebuild();
        burst_retry_ok_ = shift_ < old_shift;
        if (!cur_.empty()) return;
        continue;
      }
      near_count_ -= bucket.size();
      occupied_[(day_ & kMask) >> 6] &= ~(1ull << (day_ & 63));
      const std::size_t first = cur_.size();
      for (Event& e : bucket) cur_.push_back(std::move(e));
      bucket.clear();  // keeps capacity for reuse
      if (shift_ != 0 && cur_.size() - first > 1) {
        // Wide buckets can hold mixed timestamps in push order. At width 1
        // (the steady-state fit) every event in a bucket shares one
        // timestamp and is already in seq order, so no sort is needed —
        // and consecutive days concatenate into a sorted run for free.
        std::sort(cur_.begin() + static_cast<std::ptrdiff_t>(first), cur_.end(), Earlier{});
      }
    }
  }

  /// Advances `day_` to the next non-empty bucket by scanning the occupancy
  /// bitmap (no bucket headers touched). Precondition: near_count_ > 0.
  void advance_day() {
    std::uint64_t p = day_ & kMask;
    std::uint64_t w = occupied_[p >> 6] >> (p & 63);
    if (w != 0) {
      day_ += std::countr_zero(w);
      return;
    }
    // Scan whole words, wrapping once around the ring. The window is exactly
    // kBuckets wide, so every set bit maps to a unique day in
    // [day_, window_end_).
    for (std::uint64_t i = (p >> 6) + 1;; ++i) {
      const std::uint64_t word = occupied_[i & kWordMask];
      if (word != 0) {
        const std::uint64_t pos = ((i & kWordMask) << 6) +
                                  static_cast<std::uint64_t>(std::countr_zero(word));
        day_ += (pos - p) & kMask;
        return;
      }
    }
  }

  /// Routes an event to the run, a near bucket, or overflow (rebuild only).
  void place(Event&& e);

  /// Collects every pending event and redistributes it into a fresh window
  /// whose bucket width is derived from the mean gap of the kWidthSample
  /// earliest events (head density, not global span — a lone far-future
  /// timer must not widen the buckets).
  void rebuild();

  std::vector<Event> cur_;                  // sorted run; [0, pos_) dispatched
  std::size_t pos_ = 0;                     // cursor into cur_
  std::vector<Bucket> buckets_{kBuckets};   // near tier, unsorted
  std::vector<Event> overflow_;             // far tier, unsorted
  std::vector<Event> scratch_;              // rebuild staging, capacity reused
  std::vector<SimTime> time_scratch_;       // rebuild width sample, capacity reused
  /// One bit per near bucket; set iff the bucket is non-empty. Lets
  /// advance_day() skip empty days with countr_zero over 128 bytes instead
  /// of probing 24KB of bucket headers.
  std::uint64_t occupied_[kWords] = {};

  std::uint32_t shift_ = 0;                 // bucket width = 2^shift_ ns
  std::uint64_t day_ = 0;                   // absolute bucket of the run's tail
  std::uint64_t window_end_ = kBuckets;     // absolute bucket past the window
  std::size_t near_count_ = 0;              // events across buckets_
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  /// Population size that forces a width re-derivation (2x the size at the
  /// last rebuild): keeps a width picked during ramp-up from sticking.
  std::size_t resize_at_ = 2 * kWidthSample;
  /// Cleared when a burst rebuild failed to find a finer width, so a
  /// too-wide-to-split day is spliced as one big run instead of looping.
  bool burst_retry_ok_ = true;
};

}  // namespace livesec::sim
