// Deterministic discrete-event queue.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace livesec::sim {

/// A pending simulation event: a callback to run at an absolute sim time.
/// Ties on time are broken by insertion sequence so execution order is fully
/// deterministic regardless of container internals.
struct Event {
  SimTime time = 0;
  std::uint64_t seq = 0;
  std::function<void()> action;
};

/// Min-heap of events ordered by (time, seq).
class EventQueue {
 public:
  /// Inserts an event at absolute time `time`. Returns the sequence number
  /// assigned (useful for debugging; events cannot be cancelled — schedule a
  /// guard flag instead, which is how timeouts are implemented).
  std::uint64_t push(SimTime time, std::function<void()> action);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Precondition: !empty().
  SimTime next_time() const { return heap_.top().time; }

  /// Removes and returns the earliest pending event. Precondition: !empty().
  Event pop();

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace livesec::sim
