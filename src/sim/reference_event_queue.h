// Reference event-queue model: the pre-calendar binary heap, kept verbatim.
//
// This is NOT used by the production kernel. It exists for two consumers:
//   - the randomized property test, which checks that the calendar queue in
//     event_queue.h dispatches the exact same (time, seq) sequence;
//   - bench_kernel, which reports the calendar queue's speedup against this
//     heap on identical workloads, so the ratio is reproducible on any host.
//
// It deliberately preserves the old costs: type-erased std::function events,
// O(log n) heap push/pop, and the copy-out pop (priority_queue::top() is
// const, so moving out would silently copy anyway — the original bug).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace livesec::sim {

/// A pending event in the reference model.
struct ReferenceEvent {
  SimTime time = 0;
  std::uint64_t seq = 0;
  std::function<void()> action;
};

/// Min-heap of events ordered by (time, seq) — the pre-PR-2 EventQueue.
class ReferenceEventQueue {
 public:
  std::uint64_t push(SimTime time, std::function<void()> action) {
    const std::uint64_t seq = next_seq_++;
    heap_.push(ReferenceEvent{time, seq, std::move(action)});
    return seq;
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  SimTime next_time() const { return heap_.top().time; }

  ReferenceEvent pop() {
    ReferenceEvent e = heap_.top();  // intentional copy-out, see header comment
    heap_.pop();
    return e;
  }

 private:
  struct Later {
    bool operator()(const ReferenceEvent& a, const ReferenceEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<ReferenceEvent, std::vector<ReferenceEvent>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace livesec::sim
