// Node/Port/Link: the physical substrate of the simulated network.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "packet/packet.h"

namespace livesec::sim {

class Simulator;
class Node;
class Link;

/// One physical interface of a Node. Ports are created by the node and wired
/// to at most one Link.
class Port {
 public:
  Port(Node& owner, PortId id) : owner_(&owner), id_(id) {}

  PortId id() const { return id_; }
  Node& owner() const { return *owner_; }
  Link* link() const { return link_; }
  bool connected() const { return link_ != nullptr; }

  /// Transmits a packet onto the attached link (no-op + drop counter when
  /// unwired). Delivery to the peer is scheduled by the link.
  void transmit(pkt::PacketPtr packet);

  /// Called by the link when a packet arrives at this port.
  void receive(pkt::PacketPtr packet);

  std::uint64_t tx_packets() const { return tx_packets_; }
  std::uint64_t rx_packets() const { return rx_packets_; }
  std::uint64_t tx_bytes() const { return tx_bytes_; }
  std::uint64_t rx_bytes() const { return rx_bytes_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  friend class Link;

  Node* owner_;
  PortId id_;
  Link* link_ = nullptr;
  std::uint64_t tx_packets_ = 0;
  std::uint64_t rx_packets_ = 0;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t rx_bytes_ = 0;
  std::uint64_t dropped_ = 0;
};

/// A full-duplex point-to-point link with finite bandwidth, propagation
/// delay, and a bounded FIFO transmit queue per direction.
///
/// Serialization time = bytes*8/bandwidth; a packet finishing serialization
/// then propagates for `propagation_delay`. When the queue backlog exceeds
/// `max_queue_bytes` the packet is dropped (tail drop), which is what caps
/// throughput at link capacity in every experiment of paper §V.B.1.
class Link {
 public:
  struct Config {
    double bandwidth_bps = 1e9;       // 1 GbE by default
    SimTime propagation_delay = 5 * kMicrosecond;
    std::size_t max_queue_bytes = 512 * 1024;
  };

  Link(Simulator& sim, Port& a, Port& b, Config config);
  ~Link();

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  const Config& config() const { return config_; }

  /// Bytes currently queued/serializing in the a->b (idx 0) or b->a (idx 1)
  /// direction.
  std::size_t backlog_bytes(int direction) const { return backlog_[direction]; }

  std::uint64_t delivered_packets() const { return delivered_packets_; }
  std::uint64_t dropped_packets() const { return dropped_packets_; }
  std::uint64_t delivered_bytes() const { return delivered_bytes_; }

 private:
  friend class Port;

  /// Enqueues `packet` for transmission from `from`; drops on overflow.
  void enqueue(Port& from, pkt::PacketPtr packet);

  Simulator* sim_;
  Port* a_;
  Port* b_;
  Config config_;
  // Per-direction serializer state: the time at which the sender's "wire"
  // becomes free again, plus current backlog for tail-drop decisions.
  SimTime busy_until_[2] = {0, 0};
  std::size_t backlog_[2] = {0, 0};
  std::uint64_t delivered_packets_ = 0;
  std::uint64_t dropped_packets_ = 0;
  std::uint64_t delivered_bytes_ = 0;
};

/// Base class for anything that owns ports and reacts to packets: hosts,
/// legacy switches, AS switches, Wi-Fi APs, service element hypervisor NICs.
class Node {
 public:
  Node(Simulator& sim, std::string name) : sim_(&sim), name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  Simulator& simulator() const { return *sim_; }
  const std::string& name() const { return name_; }

  /// Creates a new port with the next free id and returns it.
  Port& add_port();

  Port& port(PortId id) { return *ports_.at(id); }
  const Port& port(PortId id) const { return *ports_.at(id); }
  std::size_t port_count() const { return ports_.size(); }

  /// Invoked when a packet arrives on `in_port`.
  virtual void handle_packet(PortId in_port, pkt::PacketPtr packet) = 0;

 protected:
  /// Sends `packet` out of port `out`, if that port exists and is wired.
  void send(PortId out, pkt::PacketPtr packet);

 private:
  Simulator* sim_;
  std::string name_;
  std::vector<std::unique_ptr<Port>> ports_;
};

/// Wires two ports together with a fresh link owned by the returned pointer.
std::unique_ptr<Link> connect(Simulator& sim, Port& a, Port& b, Link::Config config = {});

}  // namespace livesec::sim
