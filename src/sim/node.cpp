#include "sim/node.h"

#include <cassert>

#include "sim/simulator.h"

namespace livesec::sim {

void Port::transmit(pkt::PacketPtr packet) {
  if (link_ == nullptr) {
    ++dropped_;
    return;
  }
  ++tx_packets_;
  tx_bytes_ += packet->wire_size();
  link_->enqueue(*this, std::move(packet));
}

void Port::receive(pkt::PacketPtr packet) {
  ++rx_packets_;
  rx_bytes_ += packet->wire_size();
  owner_->handle_packet(id_, std::move(packet));
}

Link::Link(Simulator& sim, Port& a, Port& b, Config config)
    : sim_(&sim), a_(&a), b_(&b), config_(config) {
  assert(a_->link_ == nullptr && b_->link_ == nullptr && "port already wired");
  a_->link_ = this;
  b_->link_ = this;
}

Link::~Link() {
  a_->link_ = nullptr;
  b_->link_ = nullptr;
}

void Link::enqueue(Port& from, pkt::PacketPtr packet) {
  const int dir = (&from == a_) ? 0 : 1;
  const std::size_t size = packet->wire_size();

  if (backlog_[dir] + size > config_.max_queue_bytes) {
    ++dropped_packets_;
    ++from.dropped_;
    return;
  }

  const SimTime now = sim_->now();
  const SimTime serialization =
      static_cast<SimTime>(static_cast<double>(size) * 8.0 / config_.bandwidth_bps * kSecond);
  const SimTime start = busy_until_[dir] > now ? busy_until_[dir] : now;
  const SimTime done = start + serialization;
  busy_until_[dir] = done;
  backlog_[dir] += size;

  const SimTime arrival = done + config_.propagation_delay;
  // Capture kept to 32 bytes (this, packed dir+size, PacketPtr) so the
  // callback stays inside InlineFunction's inline storage; the destination
  // port is recomputed from the direction on delivery.
  const std::uint32_t size32 = static_cast<std::uint32_t>(size);
  const std::uint8_t dir8 = static_cast<std::uint8_t>(dir);
  sim_->schedule_at(arrival, [this, dir8, size32, packet = std::move(packet)]() mutable {
    backlog_[dir8] -= size32;
    ++delivered_packets_;
    delivered_bytes_ += size32;
    Port* to = (dir8 == 0) ? b_ : a_;
    to->receive(std::move(packet));
  });
}

Port& Node::add_port() {
  const PortId id = static_cast<PortId>(ports_.size());
  ports_.push_back(std::make_unique<Port>(*this, id));
  return *ports_.back();
}

void Node::send(PortId out, pkt::PacketPtr packet) {
  if (out >= ports_.size()) return;
  ports_[out]->transmit(std::move(packet));
}

std::unique_ptr<Link> connect(Simulator& sim, Port& a, Port& b, Link::Config config) {
  return std::make_unique<Link>(sim, a, b, config);
}

}  // namespace livesec::sim
