#include "monitor/event.h"

#include <sstream>

namespace livesec::mon {

const char* event_type_name(EventType type) {
  switch (type) {
    case EventType::kSwitchJoin: return "switch_join";
    case EventType::kSwitchLeave: return "switch_leave";
    case EventType::kHostJoin: return "host_join";
    case EventType::kHostLeave: return "host_leave";
    case EventType::kSeOnline: return "se_online";
    case EventType::kSeOffline: return "se_offline";
    case EventType::kLinkDiscovered: return "link_discovered";
    case EventType::kFlowStart: return "flow_start";
    case EventType::kFlowEnd: return "flow_end";
    case EventType::kAttackDetected: return "attack_detected";
    case EventType::kFlowBlocked: return "flow_blocked";
    case EventType::kProtocolIdentified: return "protocol_identified";
    case EventType::kVirusFound: return "virus_found";
    case EventType::kContentViolation: return "content_violation";
    case EventType::kCertificationRejected: return "certification_rejected";
    case EventType::kLoadReport: return "load_report";
    case EventType::kPolicyDenied: return "policy_denied";
    case EventType::kAggregateLimitHit: return "aggregate_limit_hit";
    case EventType::kSeMigrated: return "se_migrated";
    case EventType::kHostMoved: return "host_moved";
    case EventType::kFailover: return "failover";
    case EventType::kReconciled: return "reconciled";
    case EventType::kFlowOffloaded: return "flow_offloaded";
  }
  return "?";
}

std::string NetworkEvent::to_string() const {
  std::ostringstream out;
  out << format_time(time) << " [" << event_type_name(type) << "] " << subject;
  if (!detail.empty()) out << " (" << detail << ")";
  if (severity > 0) out << " sev=" << static_cast<int>(severity);
  return out.str();
}

namespace {
/// Minimal JSON string escaping (quotes, backslash, control chars).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

std::string NetworkEvent::to_json() const {
  std::ostringstream out;
  out << "{\"id\":" << id << ",\"t\":" << time << ",\"type\":\"" << event_type_name(type)
      << "\",\"subject\":\"" << escape(subject) << "\",\"detail\":\"" << escape(detail)
      << "\",\"dpid\":" << dpid << ",\"se\":" << se_id << ",\"sev\":" << static_cast<int>(severity)
      << "}";
  return out.str();
}

}  // namespace livesec::mon
