// Packet trace capture and offline replay — the packet-level complement of
// the event replay (paper abstract: "live traffic monitoring and historical
// traffic replay"). Traces are recorded from a SPAN/mirror port and can be
// re-inspected offline by any engine (e.g. a new IDS ruleset against last
// week's traffic).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "common/types.h"
#include "packet/packet.h"
#include "services/ids/ids_engine.h"
#include "services/l7/l7_classifier.h"

namespace livesec::mon {

/// One captured packet with its capture timestamp.
struct TraceRecord {
  SimTime time = 0;
  pkt::PacketPtr packet;
};

/// An append-only packet capture, serializable to a pcap-like binary blob
/// (packets stored in exact wire format).
class Trace {
 public:
  void append(SimTime time, pkt::PacketPtr packet);

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const TraceRecord& at(std::size_t index) const { return records_[index]; }
  std::uint64_t total_bytes() const { return total_bytes_; }

  /// Records in [from, to).
  std::vector<TraceRecord> slice(SimTime from, SimTime to) const;

  /// Serializes to a binary blob (wire-format packets + timestamps).
  std::vector<std::uint8_t> serialize() const;
  static std::optional<Trace> deserialize(std::span<const std::uint8_t> blob);

  /// Offline IDS replay: runs every captured packet through `engine` and
  /// returns the alerts, in capture order. This is how an updated ruleset
  /// is validated against historical traffic.
  std::vector<svc::ids::Alert> replay_into(svc::ids::IdsEngine& engine) const;

  /// Offline protocol census: classifies every captured flow and returns
  /// per-application flow counts.
  std::map<svc::l7::AppProtocol, std::size_t> classify_flows(
      svc::l7::L7Classifier& classifier) const;

 private:
  std::vector<TraceRecord> records_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace livesec::mon
