#include "monitor/event_store.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

namespace livesec::mon {

std::uint64_t EventStore::append(NetworkEvent event) {
  assert((events_.empty() || event.time >= events_.back().time) &&
         "events must arrive in time order");
  event.id = next_id_++;
  const std::uint64_t id = event.id;
  if (capacity_ > 0 && events_.size() >= capacity_) {
    events_.erase(events_.begin());
  }
  events_.push_back(std::move(event));
  return id;
}

const NetworkEvent* EventStore::by_id(std::uint64_t id) const {
  // Ids are monotone, so binary search works even after rolling eviction.
  auto it = std::lower_bound(events_.begin(), events_.end(), id,
                             [](const NetworkEvent& e, std::uint64_t v) { return e.id < v; });
  if (it == events_.end() || it->id != id) return nullptr;
  return &*it;
}

std::size_t EventStore::lower_bound(SimTime t) const {
  auto it = std::lower_bound(events_.begin(), events_.end(), t,
                             [](const NetworkEvent& e, SimTime v) { return e.time < v; });
  return static_cast<std::size_t>(it - events_.begin());
}

std::vector<NetworkEvent> EventStore::query_range(SimTime from, SimTime to) const {
  std::vector<NetworkEvent> out;
  for (std::size_t i = lower_bound(from); i < events_.size() && events_[i].time < to; ++i) {
    out.push_back(events_[i]);
  }
  return out;
}

std::vector<NetworkEvent> EventStore::query_type(EventType type, SimTime from, SimTime to) const {
  std::vector<NetworkEvent> out;
  for (std::size_t i = lower_bound(from); i < events_.size() && events_[i].time < to; ++i) {
    if (events_[i].type == type) out.push_back(events_[i]);
  }
  return out;
}

std::vector<NetworkEvent> EventStore::query_subject(const std::string& subject,
                                                    std::size_t limit) const {
  std::vector<NetworkEvent> out;
  for (auto it = events_.rbegin(); it != events_.rend() && out.size() < limit; ++it) {
    if (it->subject == subject) out.push_back(*it);
  }
  return out;
}

std::size_t EventStore::replay(SimTime from, SimTime to,
                               const std::function<void(const NetworkEvent&)>& visit) const {
  std::size_t count = 0;
  for (std::size_t i = lower_bound(from); i < events_.size() && events_[i].time < to; ++i) {
    visit(events_[i]);
    ++count;
  }
  return count;
}

std::vector<std::pair<EventType, std::size_t>> EventStore::histogram() const {
  std::map<EventType, std::size_t> counts;
  for (const auto& e : events_) ++counts[e.type];
  return {counts.begin(), counts.end()};
}

namespace {
constexpr std::uint32_t kStoreMagic = 0x4C455644;  // "LEVD"
constexpr std::uint8_t kStoreVersion = 1;
}  // namespace

std::vector<std::uint8_t> EventStore::serialize() const {
  pkt::BufferWriter w;
  w.u32(kStoreMagic);
  w.u8(kStoreVersion);
  w.u64(events_.size());
  for (const NetworkEvent& e : events_) {
    w.u64(e.id);
    w.u64(static_cast<std::uint64_t>(e.time));
    w.u8(static_cast<std::uint8_t>(e.type));
    w.length_prefixed_string(e.subject);
    w.length_prefixed_string(e.detail);
    w.u64(e.dpid);
    w.u64(e.se_id);
    w.u8(e.severity);
    e.flow.encode(w);
  }
  return w.take();
}

std::optional<EventStore> EventStore::deserialize(std::span<const std::uint8_t> blob,
                                                  std::size_t capacity) {
  pkt::BufferReader r(blob);
  if (r.u32() != kStoreMagic || r.u8() != kStoreVersion) return std::nullopt;
  const std::uint64_t count = r.u64();
  EventStore store(capacity);
  for (std::uint64_t i = 0; i < count; ++i) {
    NetworkEvent e;
    e.id = r.u64();
    e.time = static_cast<SimTime>(r.u64());
    e.type = static_cast<EventType>(r.u8());
    e.subject = r.length_prefixed_string();
    e.detail = r.length_prefixed_string();
    e.dpid = r.u64();
    e.se_id = r.u64();
    e.severity = r.u8();
    e.flow = pkt::FlowKey::decode(r);
    if (!r.ok()) return std::nullopt;
    if (capacity > 0 && store.events_.size() >= capacity) store.events_.erase(store.events_.begin());
    store.events_.push_back(std::move(e));
    store.next_id_ = std::max(store.next_id_, store.events_.back().id + 1);
  }
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return store;
}

std::string EventStore::to_json(SimTime from, SimTime to) const {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (std::size_t i = lower_bound(from); i < events_.size() && events_[i].time < to; ++i) {
    if (!first) out << ",";
    out << events_[i].to_json();
    first = false;
  }
  out << "]";
  return out.str();
}

}  // namespace livesec::mon
