// Network event model: everything the LiveSec WebUI displays and replays
// (paper §IV.D: "user join and leave, load condition of links and various
// service elements, which user is accessing which application service,
// where attacks happen, and so on").
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"
#include "packet/flow_key.h"

namespace livesec::mon {

enum class EventType : std::uint8_t {
  kSwitchJoin = 1,
  kSwitchLeave,
  kHostJoin,
  kHostLeave,
  kSeOnline,
  kSeOffline,
  kLinkDiscovered,
  kFlowStart,
  kFlowEnd,
  kAttackDetected,
  kFlowBlocked,
  kProtocolIdentified,
  kVirusFound,
  kContentViolation,
  kCertificationRejected,
  kLoadReport,
  kPolicyDenied,
  kAggregateLimitHit,
  kSeMigrated,
  kHostMoved,
  kFailover,
  kReconciled,
  kFlowOffloaded,
};

const char* event_type_name(EventType type);

/// One record in the event database.
struct NetworkEvent {
  std::uint64_t id = 0;  // assigned by the EventStore, monotonically
  SimTime time = 0;
  EventType type = EventType::kFlowStart;
  /// Primary subject: host MAC, SE id, switch name — display handle.
  std::string subject;
  /// Free-form detail (rule name, protocol, reason).
  std::string detail;
  DatapathId dpid = 0;
  std::uint64_t se_id = 0;
  std::uint8_t severity = 0;
  pkt::FlowKey flow;

  /// Single-line rendering for logs and the ASCII UI.
  std::string to_string() const;
  /// JSON object rendering for the WebUI data feed.
  std::string to_json() const;
};

}  // namespace livesec::mon
