#include "monitor/monitoring.h"

#include <algorithm>

namespace livesec::mon {

void ServiceAwareMonitor::record_flow_identified(const MacAddress& user,
                                                 svc::l7::AppProtocol proto) {
  AppUsage& usage = per_user_[user][proto];
  ++usage.flows;
  ++usage.active_flows;
}

void ServiceAwareMonitor::record_flow_ended(const MacAddress& user, svc::l7::AppProtocol proto) {
  auto user_it = per_user_.find(user);
  if (user_it == per_user_.end()) return;
  auto app_it = user_it->second.find(proto);
  if (app_it == user_it->second.end()) return;
  if (app_it->second.active_flows > 0) --app_it->second.active_flows;
}

void ServiceAwareMonitor::record_flow_traffic(const MacAddress& user, std::uint64_t packets,
                                              std::uint64_t bytes) {
  TrafficTotals& totals = traffic_[user];
  ++totals.flows;
  totals.packets += packets;
  totals.bytes += bytes;
}

const ServiceAwareMonitor::TrafficTotals* ServiceAwareMonitor::traffic(
    const MacAddress& user) const {
  auto it = traffic_.find(user);
  return it == traffic_.end() ? nullptr : &it->second;
}

std::vector<std::pair<MacAddress, ServiceAwareMonitor::TrafficTotals>>
ServiceAwareMonitor::top_talkers(std::size_t limit) const {
  std::vector<std::pair<MacAddress, TrafficTotals>> ranked(traffic_.begin(), traffic_.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second.bytes != b.second.bytes) return a.second.bytes > b.second.bytes;
    return a.first < b.first;  // deterministic tie-break
  });
  if (ranked.size() > limit) ranked.resize(limit);
  return ranked;
}

std::optional<svc::l7::AppProtocol> ServiceAwareMonitor::dominant_app(
    const MacAddress& user) const {
  auto it = per_user_.find(user);
  if (it == per_user_.end()) return std::nullopt;
  std::optional<svc::l7::AppProtocol> best;
  std::uint64_t best_active = 0;
  for (const auto& [proto, usage] : it->second) {
    if (usage.active_flows > best_active) {
      best_active = usage.active_flows;
      best = proto;
    }
  }
  return best;
}

const std::map<svc::l7::AppProtocol, ServiceAwareMonitor::AppUsage>* ServiceAwareMonitor::usage(
    const MacAddress& user) const {
  auto it = per_user_.find(user);
  return it == per_user_.end() ? nullptr : &it->second;
}

std::vector<MacAddress> ServiceAwareMonitor::users() const {
  std::vector<MacAddress> out;
  out.reserve(per_user_.size());
  for (const auto& [mac, usage] : per_user_) out.push_back(mac);
  return out;
}

std::map<svc::l7::AppProtocol, std::uint64_t> ServiceAwareMonitor::network_distribution() const {
  std::map<svc::l7::AppProtocol, std::uint64_t> out;
  for (const auto& [mac, apps] : per_user_) {
    for (const auto& [proto, usage] : apps) out[proto] += usage.flows;
  }
  return out;
}

void AggregateFlowControl::set_limit(svc::l7::AppProtocol proto, std::uint32_t max_active_flows) {
  limits_[proto] = max_active_flows;
}

std::optional<std::uint32_t> AggregateFlowControl::limit(svc::l7::AppProtocol proto) const {
  auto it = limits_.find(proto);
  if (it == limits_.end()) return std::nullopt;
  return it->second;
}

bool AggregateFlowControl::admits(const ServiceAwareMonitor& monitor, const MacAddress& user,
                                  svc::l7::AppProtocol proto) const {
  auto it = limits_.find(proto);
  if (it == limits_.end()) return true;
  const auto* usage = monitor.usage(user);
  if (usage == nullptr) return true;
  auto app_it = usage->find(proto);
  if (app_it == usage->end()) return true;
  return app_it->second.active_flows < it->second;
}

}  // namespace livesec::mon
