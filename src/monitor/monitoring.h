// Service-aware traffic monitoring and aggregate flow control
// (paper §IV.C: "LiveSec controller know the services status that each user
// is consuming ... and provide more interesting function, such as aggregate
// flow control").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/mac_address.h"
#include "common/types.h"
#include "services/l7/l7_classifier.h"

namespace livesec::mon {

/// Observability counters of the controller's flow-setup fast path: how the
/// decision cache and the pending-setup (packet-in suppression) table are
/// behaving. Embedded in Controller::Stats and surfaced by the WebUI stats
/// block, so operators can see whether the control plane is absorbing
/// packet-in load or recomputing every flow.
struct FastPathCounters {
  std::uint64_t decision_cache_hits = 0;
  std::uint64_t decision_cache_misses = 0;
  /// Cache-wide flushes caused by policy/topology/SE/host state changes.
  std::uint64_t decision_cache_invalidations = 0;
  /// Packet-ins absorbed because a setup for the same flow was in flight.
  std::uint64_t suppressed_packet_ins = 0;
  /// Setups parked waiting for a missing host location or LS uplink.
  std::uint64_t pending_setups_parked = 0;
  /// Parked setups that later completed (host announced / link discovered).
  std::uint64_t pending_setups_completed = 0;
  /// Parked setups dropped by the bound or the housekeeping timeout.
  std::uint64_t pending_setups_expired = 0;
  /// Flow-mods delivered inside FlowModBatch messages.
  std::uint64_t batched_flow_mods = 0;
};

/// Per-user, per-application usage counters fed by protocol-identification
/// event reports.
class ServiceAwareMonitor {
 public:
  struct AppUsage {
    std::uint64_t flows = 0;
    std::uint64_t active_flows = 0;
  };

  struct TrafficTotals {
    std::uint64_t flows = 0;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };

  /// Records that a flow of `user` was identified as `proto`.
  void record_flow_identified(const MacAddress& user, svc::l7::AppProtocol proto);
  /// Records that one of `user`'s `proto` flows ended.
  void record_flow_ended(const MacAddress& user, svc::l7::AppProtocol proto);

  /// Accumulates a finished flow's data-path counters (from FlowRemoved)
  /// into the user's traffic totals.
  void record_flow_traffic(const MacAddress& user, std::uint64_t packets, std::uint64_t bytes);

  /// Cumulative data-path totals for one user (nullptr if never seen).
  const TrafficTotals* traffic(const MacAddress& user) const;
  /// Users ranked by cumulative bytes, heaviest first ("top talkers").
  std::vector<std::pair<MacAddress, TrafficTotals>> top_talkers(std::size_t limit) const;

  /// The application the user currently has the most active flows of
  /// (what the WebUI shows as "user X is browsing / using SSH / BitTorrent").
  std::optional<svc::l7::AppProtocol> dominant_app(const MacAddress& user) const;

  const std::map<svc::l7::AppProtocol, AppUsage>* usage(const MacAddress& user) const;
  std::vector<MacAddress> users() const;

  /// Network-wide flow counts by application (traffic distribution view).
  std::map<svc::l7::AppProtocol, std::uint64_t> network_distribution() const;

 private:
  std::map<MacAddress, std::map<svc::l7::AppProtocol, AppUsage>> per_user_;
  std::map<MacAddress, TrafficTotals> traffic_;
};

/// Aggregate flow control: per-user, per-application cap on concurrently
/// active flows. When a user exceeds the cap for an app, the controller
/// denies new flows of that app (installing drop entries at the ingress).
class AggregateFlowControl {
 public:
  /// No limits by default.
  void set_limit(svc::l7::AppProtocol proto, std::uint32_t max_active_flows);
  std::optional<std::uint32_t> limit(svc::l7::AppProtocol proto) const;

  /// True when `user` may start another `proto` flow.
  bool admits(const ServiceAwareMonitor& monitor, const MacAddress& user,
              svc::l7::AppProtocol proto) const;

  std::uint64_t rejections() const { return rejections_; }
  void record_rejection() { ++rejections_; }

 private:
  std::map<svc::l7::AppProtocol, std::uint32_t> limits_;
  std::uint64_t rejections_ = 0;
};

}  // namespace livesec::mon
