#include "monitor/trace.h"

#include "packet/buffer.h"
#include "packet/flow_key.h"

namespace livesec::mon {

namespace {
constexpr std::uint32_t kTraceMagic = 0x4C545243;  // "LTRC"
constexpr std::uint8_t kTraceVersion = 1;
}  // namespace

void Trace::append(SimTime time, pkt::PacketPtr packet) {
  total_bytes_ += packet->wire_size();
  records_.push_back(TraceRecord{time, std::move(packet)});
}

std::vector<TraceRecord> Trace::slice(SimTime from, SimTime to) const {
  std::vector<TraceRecord> out;
  for (const auto& record : records_) {
    if (record.time >= from && record.time < to) out.push_back(record);
  }
  return out;
}

std::vector<std::uint8_t> Trace::serialize() const {
  pkt::BufferWriter w;
  w.u32(kTraceMagic);
  w.u8(kTraceVersion);
  w.u64(records_.size());
  for (const auto& record : records_) {
    w.u64(static_cast<std::uint64_t>(record.time));
    const std::size_t n = record.packet->serialized_size();
    w.u32(static_cast<std::uint32_t>(n));
    w.reserve(n);
    record.packet->serialize_into(w);
  }
  return w.take();
}

std::optional<Trace> Trace::deserialize(std::span<const std::uint8_t> blob) {
  pkt::BufferReader r(blob);
  if (r.u32() != kTraceMagic || r.u8() != kTraceVersion) return std::nullopt;
  const std::uint64_t count = r.u64();
  Trace trace;
  for (std::uint64_t i = 0; i < count; ++i) {
    const SimTime time = static_cast<SimTime>(r.u64());
    const std::uint32_t length = r.u32();
    const auto bytes = r.bytes(length);
    if (!r.ok()) return std::nullopt;
    auto packet = pkt::Packet::parse(bytes);
    if (!packet) return std::nullopt;
    trace.append(time, pkt::finalize(std::move(*packet)));
  }
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return trace;
}

std::vector<svc::ids::Alert> Trace::replay_into(svc::ids::IdsEngine& engine) const {
  std::vector<svc::ids::Alert> alerts;
  for (const auto& record : records_) {
    auto fired = engine.inspect(*record.packet);
    alerts.insert(alerts.end(), fired.begin(), fired.end());
  }
  return alerts;
}

std::map<svc::l7::AppProtocol, std::size_t> Trace::classify_flows(
    svc::l7::L7Classifier& classifier) const {
  std::map<svc::l7::AppProtocol, std::size_t> census;
  for (const auto& record : records_) {
    const auto result = classifier.classify(*record.packet);
    if (result.fresh) ++census[result.proto];
  }
  return census;
}

}  // namespace livesec::mon
