// The event database behind the WebUI (the paper's MySQL instance) with
// time-range queries and history replay (paper §IV.D: "locate the network
// problems by replaying the history events").
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "monitor/event.h"

namespace livesec::mon {

/// Append-only store of NetworkEvents with monotonic ids. Events must be
/// appended in non-decreasing time order (they come from one simulator
/// clock), which lets queries binary-search on time.
class EventStore {
 public:
  /// Unbounded by default; give a capacity to keep a rolling window (the
  /// oldest events are discarded first).
  explicit EventStore(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Appends and returns the assigned event id.
  std::uint64_t append(NetworkEvent event);

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const NetworkEvent& at(std::size_t index) const { return events_[index]; }
  const NetworkEvent* by_id(std::uint64_t id) const;

  /// Events with time in [from, to).
  std::vector<NetworkEvent> query_range(SimTime from, SimTime to) const;

  /// Events of a given type in [from, to).
  std::vector<NetworkEvent> query_type(EventType type, SimTime from, SimTime to) const;

  /// Events whose subject equals `subject`, most recent first, up to `limit`.
  std::vector<NetworkEvent> query_subject(const std::string& subject, std::size_t limit) const;

  /// History replay: invokes `visit` for every event in [from, to) in the
  /// original order. Returns the number of events replayed.
  std::size_t replay(SimTime from, SimTime to,
                     const std::function<void(const NetworkEvent&)>& visit) const;

  /// Counts per event type over the whole store.
  std::vector<std::pair<EventType, std::size_t>> histogram() const;

  /// JSON array of events in [from, to) (the WebUI's periodic data fetch).
  std::string to_json(SimTime from, SimTime to) const;

  /// Serializes the whole store to a binary blob (the on-disk database).
  std::vector<std::uint8_t> serialize() const;

  /// Restores a store from serialize() output; nullopt on corrupt input.
  /// Id allocation resumes past the highest restored id.
  static std::optional<EventStore> deserialize(std::span<const std::uint8_t> blob,
                                               std::size_t capacity = 0);

 private:
  /// Index of the first event with time >= t.
  std::size_t lower_bound(SimTime t) const;

  std::size_t capacity_;
  std::uint64_t next_id_ = 1;
  std::vector<NetworkEvent> events_;
};

}  // namespace livesec::mon
