// The LiveSec WebUI data backend (paper §IV.D / Figures 5, 7, 8): renders
// live topology + event snapshots as JSON (the Flash front-end's data feed)
// and as ASCII (terminal display), plus history replay.
#pragma once

#include <functional>
#include <string>

#include "common/types.h"
#include "controller/controller.h"

namespace livesec::mon {

/// Stateless renderer over a controller's live state and event database.
class WebUi {
 public:
  explicit WebUi(const ctrl::Controller& controller) : controller_(&controller) {}

  /// Hooks up the HA status panel: `provider` must return one JSON object
  /// (e.g. ha::HaCluster::status_json). Kept as a callback so the monitor
  /// layer does not depend on the HA subsystem.
  void set_ha_status_provider(std::function<std::string()> provider) {
    ha_status_ = std::move(provider);
  }

  /// Full JSON snapshot: switches, periphery nodes, links, users with their
  /// dominant application, service elements with load, and the events in
  /// [events_from, events_to) — what the browser polls periodically.
  std::string snapshot_json(SimTime events_from, SimTime events_to) const;

  /// Human-readable terminal rendering of the same snapshot (the examples'
  /// "Figure 7 / Figure 8" views).
  std::string snapshot_text(SimTime events_from, SimTime events_to) const;

  /// History replay (paper: "locate the network problems by replaying the
  /// history events"): renders every event in [from, to) one per line.
  std::string replay_text(SimTime from, SimTime to) const;

 private:
  const ctrl::Controller* controller_;
  std::function<std::string()> ha_status_;
};

}  // namespace livesec::mon
