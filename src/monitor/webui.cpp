#include "monitor/webui.h"

#include <sstream>

namespace livesec::mon {

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

std::string WebUi::snapshot_json(SimTime events_from, SimTime events_to) const {
  const auto& topo = controller_->topology();
  const auto& monitor = controller_->service_monitor();
  std::ostringstream out;
  out << "{";

  out << "\"switches\":[";
  bool first = true;
  for (DatapathId dpid : topo.switch_ids()) {
    const auto* info = topo.switch_info(dpid);
    if (!first) out << ",";
    out << "{\"dpid\":" << dpid << ",\"name\":\"" << json_escape(info->name) << "\",\"kind\":\""
        << topo::node_kind_name(info->kind) << "\"";
    if (const auto* load = controller_->switch_load(dpid)) {
      out << ",\"bps\":" << static_cast<std::uint64_t>(load->bits_per_second)
          << ",\"pps\":" << static_cast<std::uint64_t>(load->packets_per_second)
          << ",\"flows\":" << load->flow_count;
    }
    out << "}";
    first = false;
  }
  out << "],";

  out << "\"nodes\":[";
  first = true;
  for (const auto& [key, node] : topo.nodes()) {
    if (!first) out << ",";
    out << "{\"id\":\"" << json_escape(key) << "\",\"name\":\"" << json_escape(node.name)
        << "\",\"kind\":\"" << topo::node_kind_name(node.kind) << "\",\"dpid\":" << node.dpid
        << ",\"port\":" << node.port << "}";
    first = false;
  }
  out << "],";

  out << "\"users\":[";
  first = true;
  for (const MacAddress& user : monitor.users()) {
    const auto app = monitor.dominant_app(user);
    if (!first) out << ",";
    out << "{\"mac\":\"" << user.to_string() << "\",\"app\":\""
        << (app ? svc::l7::app_protocol_name(*app) : "idle") << "\"}";
    first = false;
  }
  out << "],";

  out << "\"service_elements\":[";
  first = true;
  for (const ctrl::SeRecord* se : controller_->services().all()) {
    if (!first) out << ",";
    const auto& report = se->last_report;
    out << "{\"id\":" << se->se_id << ",\"service\":\"" << svc::service_type_name(se->service)
        << "\",\"dpid\":" << se->dpid << ",\"cpu\":" << static_cast<int>(report.cpu_percent)
        << ",\"pps\":" << report.packets_per_second
        << ",\"queued\":" << report.queued_packets
        << ",\"flow_contexts\":" << report.flow_contexts
        << ",\"context_evictions\":" << report.context_evictions
        << ",\"batches\":" << report.batches_total
        << ",\"batch_packets\":" << report.batch_packets_total
        << ",\"batch_size_hist\":[";
    for (std::size_t i = 0; i < report.batch_size_hist.size(); ++i) {
      if (i > 0) out << ",";
      out << report.batch_size_hist[i];
    }
    out << "]}";
    first = false;
  }
  out << "],";

  out << "\"full_mesh\":" << (topo.full_mesh() ? "true" : "false") << ",";

  // Control-plane health: how the flow-setup fast path is absorbing load.
  const auto& stats = controller_->stats();
  const auto& fp = stats.fastpath;
  out << "\"stats\":{"
      << "\"packet_ins\":" << stats.packet_ins
      << ",\"flows_installed\":" << stats.flows_installed
      << ",\"decision_cache_hits\":" << fp.decision_cache_hits
      << ",\"decision_cache_misses\":" << fp.decision_cache_misses
      << ",\"decision_cache_invalidations\":" << fp.decision_cache_invalidations
      << ",\"decision_cache_size\":" << controller_->decision_cache_size()
      << ",\"suppressed_packet_ins\":" << fp.suppressed_packet_ins
      << ",\"pending_setups\":" << controller_->pending_setup_count()
      << ",\"pending_setups_parked\":" << fp.pending_setups_parked
      << ",\"pending_setups_completed\":" << fp.pending_setups_completed
      << ",\"pending_setups_expired\":" << fp.pending_setups_expired
      << ",\"batched_flow_mods\":" << fp.batched_flow_mods
      << ",\"verdict_messages\":" << stats.verdict_messages
      << ",\"flows_offloaded\":" << stats.flows_offloaded
      << ",\"offload_replays\":" << stats.offload_replays
      << ",\"offload_invalidations\":" << stats.offload_invalidations
      << ",\"offloaded_now\":" << controller_->offloaded_flow_count()
      << ",\"echo_timeouts\":" << stats.echo_timeouts
      << ",\"channel_outbox_dropped\":" << controller_->channel_outbox_dropped()
      << ",\"channel_backlog\":" << controller_->channel_backlog() << "},";

  // Host-table footprint: per-shard occupancy of the sharded routing state.
  const auto& routing = controller_->routing();
  out << "\"routing\":{"
      << "\"hosts\":" << routing.size()
      << ",\"version\":" << routing.version()
      << ",\"shards\":" << routing.shard_count()
      << ",\"memory_bytes\":" << routing.memory_bytes()
      << ",\"indexed_flows\":" << controller_->host_flow_index_size()
      << ",\"shard_hosts\":[";
  for (std::size_t s = 0; s < routing.shard_count(); ++s) {
    if (s > 0) out << ",";
    out << routing.shard_stats(s).hosts;
  }
  out << "]},";

  if (ha_status_) out << "\"ha\":" << ha_status_() << ",";

  out << "\"events\":" << controller_->events().to_json(events_from, events_to);
  out << "}";
  return out.str();
}

std::string WebUi::snapshot_text(SimTime events_from, SimTime events_to) const {
  const auto& topo = controller_->topology();
  const auto& monitor = controller_->service_monitor();
  std::ostringstream out;

  out << "=== LiveSec topology ===\n";
  for (DatapathId dpid : topo.switch_ids()) {
    const auto* info = topo.switch_info(dpid);
    out << "  [" << topo::node_kind_name(info->kind) << "] " << info->name << " (dpid " << dpid
        << ")";
    if (const auto* load = controller_->switch_load(dpid); load && load->updated_at > 0) {
      out << " load=" << format_rate_bps(load->bits_per_second) << " flows=" << load->flow_count;
    }
    out << "\n";
  }
  out << "  full-mesh AS layer: " << (topo.full_mesh() ? "yes" : "no") << "\n";

  out << "--- periphery ---\n";
  for (const auto& [key, node] : topo.nodes()) {
    out << "  [" << topo::node_kind_name(node.kind) << "] " << node.name << " @ dpid "
        << node.dpid << " port " << node.port << "\n";
  }

  out << "--- users ---\n";
  for (const MacAddress& user : monitor.users()) {
    const auto app = monitor.dominant_app(user);
    out << "  " << user.to_string() << ": "
        << (app ? svc::l7::app_protocol_name(*app) : "idle") << "\n";
  }

  out << "--- top talkers ---\n";
  for (const auto& [mac, totals] : monitor.top_talkers(5)) {
    out << "  " << mac.to_string() << ": " << totals.bytes << " bytes in " << totals.flows
        << " flows\n";
  }

  out << "--- service elements ---\n";
  for (const ctrl::SeRecord* se : controller_->services().all()) {
    out << "  se" << se->se_id << " " << svc::service_type_name(se->service) << " cpu="
        << static_cast<int>(se->last_report.cpu_percent)
        << "% pps=" << se->last_report.packets_per_second
        << " queued=" << se->last_report.queued_packets
        << " contexts=" << se->last_report.flow_contexts << " (evicted "
        << se->last_report.context_evictions << ") batches=" << se->last_report.batches_total
        << "\n";
  }

  out << "--- control plane ---\n";
  const auto& stats = controller_->stats();
  const auto& fp = stats.fastpath;
  out << "  packet-ins: " << stats.packet_ins << " (suppressed " << fp.suppressed_packet_ins
      << ")\n";
  out << "  flows installed: " << stats.flows_installed << "\n";
  out << "  decision cache: " << fp.decision_cache_hits << " hits / " << fp.decision_cache_misses
      << " misses, " << controller_->decision_cache_size() << " cached, "
      << fp.decision_cache_invalidations << " flushes\n";
  out << "  pending setups: " << controller_->pending_setup_count() << " parked ("
      << fp.pending_setups_completed << " completed, " << fp.pending_setups_expired
      << " expired)\n";
  out << "  flow offload: " << stats.flows_offloaded << " cut through ("
      << controller_->offloaded_flow_count() << " held, " << stats.offload_replays
      << " replayed, " << stats.offload_invalidations << " invalidated) from "
      << stats.verdict_messages << " verdicts\n";
  out << "  channel backpressure: " << controller_->channel_backlog() << " in flight, "
      << controller_->channel_outbox_dropped() << " dropped\n";
  out << "  echo timeouts: " << stats.echo_timeouts << "\n";
  const auto& routing = controller_->routing();
  out << "  host table: " << routing.size() << " hosts over " << routing.shard_count()
      << " shards, " << routing.memory_bytes() / 1024 << " KiB, "
      << controller_->host_flow_index_size() << " hosts with indexed flows (v"
      << routing.version() << ")\n";
  if (ha_status_) out << "--- high availability ---\n  " << ha_status_() << "\n";

  out << "--- events ---\n";
  controller_->events().replay(events_from, events_to, [&out](const NetworkEvent& e) {
    out << "  " << e.to_string() << "\n";
  });
  return out.str();
}

std::string WebUi::replay_text(SimTime from, SimTime to) const {
  std::ostringstream out;
  out << "=== history replay [" << format_time(from) << ", " << format_time(to) << ") ===\n";
  controller_->events().replay(from, to, [&out](const NetworkEvent& e) {
    out << "  " << e.to_string() << "\n";
  });
  return out.str();
}

}  // namespace livesec::mon
