// Deterministic fault-injection plan for HA tests and benches: when to crash
// the active controller, how the replication channel misbehaves, and which
// switch gets partitioned from the control plane. All randomness draws from
// the embedded seed, so a plan reproduces the same failure sequence run after
// run.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace livesec::ha {

struct FaultPlan {
  /// Seed of the RNG driving drop/delay/reorder decisions.
  std::uint64_t seed = 1;

  /// Crash the active controller at this simulation time (0 = never).
  SimTime crash_active_at = 0;

  /// Per-record probability that a replication delivery is lost.
  double replication_drop_probability = 0;
  /// Per-record probability that a delivery is delayed by `replication_extra_delay`.
  double replication_delay_probability = 0;
  /// Per-record probability that a delivery is held long enough for later
  /// records to overtake it (same extra delay, counted separately).
  double replication_reorder_probability = 0;
  SimTime replication_extra_delay = 5 * kMillisecond;

  /// Partition this switch from the control plane (its channel blackholes
  /// both directions) during [partition_at, partition_heal_at).
  DatapathId partition_dpid = 0;
  SimTime partition_at = 0;
  SimTime partition_heal_at = 0;
};

}  // namespace livesec::ha
