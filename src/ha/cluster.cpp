#include "ha/cluster.h"

#include <cassert>
#include <sstream>

#include "sim/simulator.h"

namespace livesec::ha {

namespace {
const char* role_name(HaCluster::Role role) {
  switch (role) {
    case HaCluster::Role::kActive: return "active";
    case HaCluster::Role::kStandby: return "standby";
    case HaCluster::Role::kCrashed: return "crashed";
  }
  return "?";
}
}  // namespace

HaCluster::HaCluster(sim::Simulator& sim, Config config, FaultPlan plan)
    : sim_(&sim), config_(config), plan_(plan), rng_(plan.seed) {}

void HaCluster::add_node(ctrl::Controller& controller) {
  assert(switches_.empty() && "add every node before managing switches");
  Node node;
  node.controller = &controller;
  if (nodes_.empty()) {
    node.role = Role::kActive;
    controller.set_replication_sink(this);
  }
  nodes_.push_back(std::move(node));
}

void HaCluster::manage_switch(sw::OpenFlowSwitch& sw, of::SecureChannel& active_channel,
                              topo::NodeKind kind) {
  assert(!nodes_.empty() && "add nodes before switches");
  ManagedSwitch ms;
  ms.sw = &sw;
  ms.dpid = sw.datapath_id();
  ms.kind = kind;
  ms.channels.resize(nodes_.size(), nullptr);
  ms.channels[0] = &active_channel;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    owned_channels_.push_back(std::make_unique<of::SecureChannel>(
        *sim_, sw, *nodes_[i].controller, active_channel.latency()));
    owned_channels_.back()->set_wire_encoding(wire_encoding_);
    ms.channels[i] = owned_channels_.back().get();
    // The standby learns the channel now so promotion only has to connect it.
    nodes_[i].controller->attach_channel(ms.dpid, *ms.channels[i], kind);
  }
  switches_.push_back(std::move(ms));
}

void HaCluster::start() {
  if (started_) return;
  started_ = true;
  last_heartbeat_ = sim_->now();
  sim_->schedule(config_.heartbeat_interval, [this] { heartbeat_tick(); });
  sim_->schedule(config_.resync_interval, [this] { resync_tick(); });
  if (config_.snapshot_interval > 0) {
    sim_->schedule(config_.snapshot_interval, [this] { snapshot_tick(); });
  }
  if (plan_.crash_active_at > 0) {
    sim_->schedule_at(plan_.crash_active_at, [this] { crash_active(); });
  }
  if (plan_.partition_dpid != 0 && plan_.partition_at > 0) {
    sim_->schedule_at(plan_.partition_at, [this] { partition_switch(plan_.partition_dpid); });
    if (plan_.partition_heal_at > plan_.partition_at) {
      sim_->schedule_at(plan_.partition_heal_at, [this] { heal_switch(plan_.partition_dpid); });
    }
  }
}

void HaCluster::enable_wire_encoding() {
  wire_encoding_ = true;
  for (auto& channel : owned_channels_) channel->set_wire_encoding(true);
}

// --- replication fan-out -----------------------------------------------------

void HaCluster::replicate(RecordBody body) {
  ReplicationRecord record;
  record.body = std::move(body);
  record.seq = log_.append(record.body);
  ++stats_.records_published;
  if (nodes_.size() <= 1) return;

  // Encode once; every standby's delivery shares the same immutable frame.
  auto bytes = std::make_shared<const std::vector<std::uint8_t>>(encode_record(record));
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i == active_ || nodes_[i].role != Role::kStandby) continue;
    if (plan_.replication_drop_probability > 0 &&
        rng_.chance(plan_.replication_drop_probability)) {
      ++stats_.records_dropped;  // the resync tick will repair the gap
      continue;
    }
    SimTime delay = config_.replication_latency;
    if (plan_.replication_delay_probability > 0 &&
        rng_.chance(plan_.replication_delay_probability)) {
      delay += plan_.replication_extra_delay;
      ++stats_.records_delayed;
    } else if (plan_.replication_reorder_probability > 0 &&
               rng_.chance(plan_.replication_reorder_probability)) {
      // Held just long enough for records published after it to overtake.
      delay += 3 * config_.replication_latency;
      ++stats_.records_delayed;
    }
    sim_->schedule(delay, [this, i, bytes] {
      if (auto decoded = decode_record(*bytes)) deliver(i, *decoded);
    });
  }
}

void HaCluster::deliver(std::size_t node_index, const ReplicationRecord& record) {
  Node& node = nodes_[node_index];
  if (node.role != Role::kStandby) return;  // promoted or crashed in flight
  if (record.seq <= node.applied_seq) {
    ++stats_.duplicates_ignored;
    return;
  }
  if (record.seq != node.applied_seq + 1) {
    node.held.emplace(record.seq, record.body);  // gap: park until repaired
    return;
  }
  node.controller->apply_replicated(record.body);
  node.applied_seq = record.seq;
  // Drain any held records the gap was hiding.
  auto it = node.held.begin();
  while (it != node.held.end() && it->first <= node.applied_seq + 1) {
    if (it->first == node.applied_seq + 1) {
      node.controller->apply_replicated(it->second);
      node.applied_seq = it->first;
    }
    it = node.held.erase(it);
  }
}

void HaCluster::catch_up(Node& node, bool count_retransmits) {
  auto records = log_.since(node.applied_seq);
  if (!records) {
    // The log was truncated past this node's position: bootstrap from the
    // snapshot, then take the remaining tail from the log.
    node.controller->import_snapshot(snapshot_records_);
    node.applied_seq = snapshot_through_;
    node.held.clear();
    ++stats_.snapshots_imported;
    records = log_.since(node.applied_seq);
  }
  if (records) {
    for (const auto& record : *records) {
      if (record.seq <= node.applied_seq) continue;
      node.controller->apply_replicated(record.body);
      node.applied_seq = record.seq;
      if (count_retransmits) ++stats_.retransmits;
    }
  }
  node.held.clear();
}

// --- periodic machinery ------------------------------------------------------

void HaCluster::heartbeat_tick() {
  if (nodes_[active_].role == Role::kActive) {
    last_heartbeat_ = sim_->now();
  } else if (sim_->now() - last_heartbeat_ >=
             static_cast<SimTime>(config_.heartbeat_miss_threshold) *
                 config_.heartbeat_interval) {
    promote_next();
  }
  if (started_) sim_->schedule(config_.heartbeat_interval, [this] { heartbeat_tick(); });
}

void HaCluster::resync_tick() {
  for (auto& node : nodes_) {
    if (node.role != Role::kStandby) continue;
    if (node.applied_seq < log_.head_seq()) catch_up(node, true);
  }
  if (started_) sim_->schedule(config_.resync_interval, [this] { resync_tick(); });
}

void HaCluster::snapshot_tick() {
  if (nodes_[active_].role == Role::kActive) {
    snapshot_records_ = nodes_[active_].controller->export_state();
    snapshot_through_ = log_.head_seq();
    log_.truncate(snapshot_through_);
    ++stats_.snapshots_taken;
  }
  if (started_) sim_->schedule(config_.snapshot_interval, [this] { snapshot_tick(); });
}

// --- failure + recovery ------------------------------------------------------

void HaCluster::crash_active() {
  Node& node = nodes_[active_];
  if (node.role != Role::kActive) return;
  node.role = Role::kCrashed;
  node.controller->set_replication_sink(nullptr);
  // Process death closes its control connections; switches experience a
  // controller outage (table misses drop) until a standby takes over.
  for (auto& ms : switches_) {
    if (ms.channels[active_]->connected()) ms.channels[active_]->disconnect();
  }
  ++stats_.crashes;
  stats_.last_crash_at = sim_->now();
}

void HaCluster::promote_next() {
  std::size_t next = nodes_.size();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].role == Role::kStandby) {
      next = i;
      break;
    }
  }
  if (next == nodes_.size()) return;  // cluster exhausted

  Node& node = nodes_[next];
  // Apply everything the log knows before taking writes of our own.
  catch_up(node, false);
  node.role = Role::kActive;
  active_ = next;
  node.controller->set_replication_sink(this);
  node.controller->note_promoted();

  // Point every reachable switch at the new active's channel.
  for (auto& ms : switches_) {
    if (ms.partitioned) continue;
    ms.sw->connect_controller(*ms.channels[next]);
  }

  ++stats_.failovers;
  stats_.last_promotion_at = sim_->now();
  last_heartbeat_ = sim_->now();

  // Audit the switches once the re-handshakes have landed.
  sim_->schedule(config_.reconcile_delay,
                 [this] { nodes_[active_].controller->begin_reconciliation(); });
}

void HaCluster::partition_switch(DatapathId dpid) {
  for (auto& ms : switches_) {
    if (ms.dpid != dpid) continue;
    ms.partitioned = true;
    ms.channels[active_]->set_blackhole(true);
    return;
  }
}

void HaCluster::heal_switch(DatapathId dpid) {
  for (auto& ms : switches_) {
    if (ms.dpid != dpid) continue;
    ms.partitioned = false;
    // The active may have changed while partitioned; clear the blackhole
    // everywhere and re-handshake with whoever is active now.
    for (auto* channel : ms.channels) channel->set_blackhole(false);
    of::SecureChannel* channel = ms.channels[active_];
    // Echo liveness likely declared the switch dead during the partition;
    // cycle the channel so both ends agree the connection is fresh.
    if (channel->connected()) channel->disconnect();
    ms.sw->connect_controller(*channel);
    return;
  }
}

// --- observability -----------------------------------------------------------

std::string HaCluster::status_json() const {
  std::ostringstream out;
  out << "{\"active\":" << active_ << ",\"nodes\":[";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"role\":\"" << role_name(nodes_[i].role)
        << "\",\"applied_seq\":" << nodes_[i].applied_seq
        << ",\"epoch\":" << nodes_[i].controller->epoch() << "}";
  }
  out << "],\"log\":{\"head\":" << log_.head_seq() << ",\"base\":" << log_.base_seq()
      << ",\"size\":" << log_.size() << "}"
      << ",\"snapshot_through\":" << snapshot_through_
      << ",\"records_published\":" << stats_.records_published
      << ",\"records_dropped\":" << stats_.records_dropped
      << ",\"records_delayed\":" << stats_.records_delayed
      << ",\"duplicates_ignored\":" << stats_.duplicates_ignored
      << ",\"retransmits\":" << stats_.retransmits
      << ",\"snapshots_taken\":" << stats_.snapshots_taken
      << ",\"snapshots_imported\":" << stats_.snapshots_imported
      << ",\"crashes\":" << stats_.crashes << ",\"failovers\":" << stats_.failovers
      << ",\"last_crash_at\":" << stats_.last_crash_at
      << ",\"last_promotion_at\":" << stats_.last_promotion_at << "}";
  return out.str();
}

}  // namespace livesec::ha
