// Active-standby controller cluster: failure detection, mastership handover
// and the replication fabric between controller instances.
//
// The paper runs one NOX controller (§III.C); a production deployment of
// LiveSec needs the controller to survive machine loss. HaCluster runs N
// ctrl::Controller instances over the same simulated network:
//  - node 0 starts as the ACTIVE: its secure channels are connected and it
//    publishes every state mutation through the ReplicationSink interface;
//  - the remaining nodes are STANDBYS: they hold unconnected channels to
//    every switch and apply the replicated record stream;
//  - cluster heartbeats detect active death; the lowest-index live standby
//    is promoted, catches up from the replication log (or a snapshot when
//    the log was truncated past its position), reconnects the switches and
//    audits their flow tables against the replicated state.
//
// The replication channel is deliberately imperfect: a FaultPlan can drop,
// delay or reorder record deliveries (seeded, reproducible). Standbys apply
// records strictly in sequence-number order, buffering out-of-order arrivals;
// a periodic resync fetches gaps from the log — the reliable catch-up path a
// real deployment would implement as a fetch over TCP from the shared log.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "controller/controller.h"
#include "ha/fault_plan.h"
#include "ha/replication.h"
#include "openflow/channel.h"
#include "switching/openflow_switch.h"

namespace livesec::ha {

class HaCluster : public ReplicationSink {
 public:
  struct Config {
    /// Active -> standby liveness pulse period.
    SimTime heartbeat_interval = 50 * kMillisecond;
    /// Pulses missed before the active is declared dead.
    std::uint32_t heartbeat_miss_threshold = 3;
    /// One-way latency of a replication record delivery.
    SimTime replication_latency = 200 * kMicrosecond;
    /// Snapshot + log-truncation period (0 = never truncate).
    SimTime snapshot_interval = 5 * kSecond;
    /// How often standbys check for (and repair) sequence gaps.
    SimTime resync_interval = 100 * kMillisecond;
    /// Delay between switch re-handshake and the post-failover audit — long
    /// enough for every reconnect's FeaturesReply to land.
    SimTime reconcile_delay = 2 * kMillisecond;
  };

  enum class Role : std::uint8_t { kActive, kStandby, kCrashed };

  struct HaStats {
    std::uint64_t records_published = 0;
    std::uint64_t records_dropped = 0;  // fault-injected losses
    std::uint64_t records_delayed = 0;  // fault-injected delays + reorders
    std::uint64_t duplicates_ignored = 0;
    std::uint64_t retransmits = 0;  // records served from the log on resync
    std::uint64_t snapshots_taken = 0;
    std::uint64_t snapshots_imported = 0;
    std::uint64_t crashes = 0;
    std::uint64_t failovers = 0;
    SimTime last_crash_at = 0;
    SimTime last_promotion_at = 0;
  };

  HaCluster(sim::Simulator& sim, Config config, FaultPlan plan = {});

  /// Registers a controller instance. The first added becomes the initial
  /// active (and this cluster its replication sink). Call before start().
  void add_node(ctrl::Controller& controller);

  /// Registers a switch: every node gets its own secure channel to it; the
  /// active's is `active_channel` (already connected by the caller), the
  /// standbys' are created here and stay down until promotion.
  void manage_switch(sw::OpenFlowSwitch& sw, of::SecureChannel& active_channel,
                     topo::NodeKind kind = topo::NodeKind::kAsSwitch);

  /// Launches heartbeats, resync, snapshots and the FaultPlan's timers.
  void start();

  /// Kills the active instance: replication stops, its channels close, and
  /// nothing is processed by it again. Detection + promotion follow from the
  /// heartbeat machinery.
  void crash_active();

  /// Control-plane partition of one switch: the channel to the current
  /// active stays "connected" but loses everything (OFPT_ECHO liveness is
  /// what notices). heal reverses it and re-handshakes with the active.
  void partition_switch(DatapathId dpid);
  void heal_switch(DatapathId dpid);

  /// Routes every cluster-owned channel through the wire codec.
  void enable_wire_encoding();

  // --- ReplicationSink --------------------------------------------------------
  void replicate(RecordBody body) override;

  // --- observability ----------------------------------------------------------
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t active_index() const { return active_; }
  ctrl::Controller& active_controller() { return *nodes_[active_].controller; }
  const ctrl::Controller& active_controller() const { return *nodes_[active_].controller; }
  ctrl::Controller& node_controller(std::size_t node) { return *nodes_[node].controller; }
  Role role(std::size_t node) const { return nodes_[node].role; }
  std::uint64_t applied_seq(std::size_t node) const { return nodes_[node].applied_seq; }
  const ReplicationLog& log() const { return log_; }
  const HaStats& stats() const { return stats_; }
  /// JSON object for the WebUI's HA status panel.
  std::string status_json() const;

 private:
  struct Node {
    ctrl::Controller* controller = nullptr;
    Role role = Role::kStandby;
    /// Highest sequence number applied contiguously.
    std::uint64_t applied_seq = 0;
    /// Records that arrived ahead of a gap, keyed by seq.
    std::map<std::uint64_t, RecordBody> held;
  };

  struct ManagedSwitch {
    sw::OpenFlowSwitch* sw = nullptr;
    DatapathId dpid = 0;
    topo::NodeKind kind = topo::NodeKind::kAsSwitch;
    /// Channel per node; [0] aliases the caller-owned active channel.
    std::vector<of::SecureChannel*> channels;
    bool partitioned = false;
  };

  void deliver(std::size_t node_index, const ReplicationRecord& record);
  /// Applies every log record past the node's position; imports the latest
  /// snapshot first when the log no longer reaches back far enough.
  void catch_up(Node& node, bool count_retransmits);
  void promote_next();
  void heartbeat_tick();
  void resync_tick();
  void snapshot_tick();

  sim::Simulator* sim_;
  Config config_;
  FaultPlan plan_;
  Rng rng_;

  std::vector<Node> nodes_;
  std::vector<ManagedSwitch> switches_;
  /// Channels created for standby nodes (active channels are caller-owned).
  std::vector<std::unique_ptr<of::SecureChannel>> owned_channels_;

  ReplicationLog log_;
  /// Latest snapshot: state records + the sequence number they cover.
  std::vector<RecordBody> snapshot_records_;
  std::uint64_t snapshot_through_ = 0;

  std::size_t active_ = 0;
  SimTime last_heartbeat_ = 0;
  bool started_ = false;
  bool wire_encoding_ = false;
  HaStats stats_;
};

}  // namespace livesec::ha
