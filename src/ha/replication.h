// Active-standby state replication for the LiveSec controller.
//
// The paper's controller (§III.C) is one NOX process holding every piece of
// security-relevant state: host locations, the policy table, the SE registry,
// blocked flows, DHCP leases and the AS-layer link table. This module defines
// the versioned record stream through which an active controller mirrors that
// state to standbys, plus the log/snapshot machinery that lets a standby
// bootstrap and catch up after loss.
//
// Design:
//  - Every state mutation on the active is one `RecordBody`, serialized with
//    a format version + monotonically increasing sequence number.
//  - `ReplicationLog` retains encoded records for retransmission; a periodic
//    snapshot (the full state re-expressed *as records*) allows truncation.
//    Snapshot import is therefore just "apply each contained record", so the
//    bootstrap path and the incremental path share one code path.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/ip_address.h"
#include "common/mac_address.h"
#include "common/types.h"
#include "controller/policy.h"
#include "packet/flow_key.h"
#include "services/message.h"

namespace livesec::ha {

/// Bumped when the record wire format changes; a standby refuses records
/// carrying a different version (mixed-version clusters resync via snapshot).
inline constexpr std::uint16_t kReplicationFormatVersion = 1;

// --- record bodies -----------------------------------------------------------

/// A host (or SE NIC) was learned or refreshed at an attachment point.
struct HostLearnedRecord {
  MacAddress mac;
  Ipv4Address ip;
  DatapathId dpid = 0;
  PortId port = kInvalidPort;
  SimTime seen_at = 0;
};

/// A host left (explicit removal or ARP expiry).
struct HostRemovedRecord {
  MacAddress mac;
};

/// A switch's Legacy-Switching uplink port (configured or LLDP-learned).
struct LsPortRecord {
  DatapathId dpid = 0;
  PortId port = kInvalidPort;
};

/// An AS-layer link discovered via LLDP.
struct LinkRecord {
  DatapathId src = 0;
  PortId src_port = kInvalidPort;
  DatapathId dst = 0;
  PortId dst_port = kInvalidPort;
};

/// A policy was added (carries the full policy, id included, so replay via
/// PolicyTable::add reproduces the same id).
struct PolicyAddedRecord {
  ctrl::Policy policy;
};

struct PolicyRemovedRecord {
  std::uint32_t id = 0;
};

struct DefaultActionRecord {
  ctrl::PolicyAction action = ctrl::PolicyAction::kAllow;
};

/// An SE came online, refreshed, or migrated (latest attachment point wins).
struct SeUpsertRecord {
  std::uint64_t se_id = 0;
  MacAddress mac;
  Ipv4Address ip;
  svc::ServiceType service = svc::ServiceType::kIntrusionDetection;
  DatapathId dpid = 0;
  PortId port = kInvalidPort;
  SimTime seen_at = 0;
};

struct SeRemovedRecord {
  std::uint64_t se_id = 0;
};

/// A flow was blocked by a security event (attack/virus/content/firewall or
/// aggregate limit). The ingress is carried so a promoted standby can
/// re-install the drop entry without waiting for the flow's next packet-in.
struct FlowBlockedRecord {
  pkt::FlowKey key;
  DatapathId ingress_dpid = 0;
  PortId ingress_port = kInvalidPort;
};

struct FlowUnblockedRecord {
  pkt::FlowKey key;
};

/// DHCP pool configuration (emitted on enable_dhcp and in snapshots, so a
/// standby can serve leases without out-of-band configuration).
struct DhcpConfigRecord {
  Ipv4Address base;
  std::uint32_t size = 0;
  SimTime lease_duration = 0;
};

struct DhcpLeaseRecord {
  MacAddress mac;
  Ipv4Address ip;
  SimTime expires = 0;
};

struct DhcpReleaseRecord {
  MacAddress mac;
};

/// A switch completed its channel handshake on the active.
struct SwitchUpRecord {
  DatapathId dpid = 0;
  std::uint32_t num_ports = 0;
  std::string name;
};

struct SwitchDownRecord {
  DatapathId dpid = 0;
};

/// A flow earned a benign verdict and was cut through past its service chain
/// (§IV.A fast path). Replicated so a promoted standby re-installs the
/// direct path — never the stale redirect — when the flow next sets up.
struct FlowOffloadedRecord {
  pkt::FlowKey key;
  std::uint64_t inspected_bytes = 0;
};

/// An offloaded flow lost its cut-through (blocked, invalidated, or ended).
struct FlowOnloadedRecord {
  pkt::FlowKey key;
};

using RecordBody =
    std::variant<HostLearnedRecord, HostRemovedRecord, LsPortRecord, LinkRecord,
                 PolicyAddedRecord, PolicyRemovedRecord, DefaultActionRecord, SeUpsertRecord,
                 SeRemovedRecord, FlowBlockedRecord, FlowUnblockedRecord, DhcpConfigRecord,
                 DhcpLeaseRecord, DhcpReleaseRecord, SwitchUpRecord, SwitchDownRecord,
                 FlowOffloadedRecord, FlowOnloadedRecord>;

const char* record_name(const RecordBody& body);

/// One replicated record as it travels the replication channel.
struct ReplicationRecord {
  std::uint64_t seq = 0;
  RecordBody body;
};

/// Serializes {format version, seq, type, payload} in network byte order.
std::vector<std::uint8_t> encode_record(const ReplicationRecord& record);

/// Returns nullopt on a format-version mismatch or malformed payload.
std::optional<ReplicationRecord> decode_record(std::span<const std::uint8_t> bytes);

// --- sink --------------------------------------------------------------------

/// Where an active controller publishes its state mutations. The controller
/// calls this synchronously at every mutation site; the cluster assigns the
/// sequence number and fans the record out to standbys.
class ReplicationSink {
 public:
  virtual ~ReplicationSink() = default;
  virtual void replicate(RecordBody body) = 0;
};

// --- log + snapshot ----------------------------------------------------------

/// A full-state snapshot: the active's state re-expressed as records.
/// Importing = applying each record in order onto a reset controller.
struct Snapshot {
  /// Every record with seq <= through_seq is reflected in the snapshot.
  std::uint64_t through_seq = 0;
  /// Count-prefixed concatenation of encoded records.
  std::vector<std::uint8_t> bytes;
};

std::vector<std::uint8_t> encode_snapshot_records(const std::vector<RecordBody>& records);
std::optional<std::vector<RecordBody>> decode_snapshot_records(
    std::span<const std::uint8_t> bytes);

/// Ordered record retention between snapshots. Appends assign sequence
/// numbers; `since()` serves catch-up requests from lagging standbys;
/// `truncate()` discards everything a snapshot already covers.
class ReplicationLog {
 public:
  /// Appends a record, assigning the next sequence number (returned).
  std::uint64_t append(RecordBody body);

  /// Records with seq > after_seq, oldest first. Returns nullopt when the
  /// span was truncated away (caller must bootstrap from a snapshot).
  std::optional<std::vector<ReplicationRecord>> since(std::uint64_t after_seq) const;

  /// Drops records with seq <= through_seq.
  void truncate(std::uint64_t through_seq);

  /// Sequence number of the newest appended record (0 = none yet).
  std::uint64_t head_seq() const { return next_seq_ - 1; }
  /// Oldest retained sequence number (0 = log is empty).
  std::uint64_t base_seq() const { return records_.empty() ? 0 : records_.front().seq; }
  std::size_t size() const { return records_.size(); }

 private:
  std::uint64_t next_seq_ = 1;
  /// Highest sequence number dropped by truncate(); since() requests at or
  /// below it must bootstrap from a snapshot even when the log is empty.
  std::uint64_t truncated_through_ = 0;
  std::deque<ReplicationRecord> records_;
};

}  // namespace livesec::ha
