#include "ha/replication.h"

#include <algorithm>

#include "packet/buffer.h"

namespace livesec::ha {

namespace {

/// Wire tag of each record type. Values are part of the format: append-only.
enum class RecordType : std::uint8_t {
  kHostLearned = 1,
  kHostRemoved = 2,
  kLsPort = 3,
  kLink = 4,
  kPolicyAdded = 5,
  kPolicyRemoved = 6,
  kDefaultAction = 7,
  kSeUpsert = 8,
  kSeRemoved = 9,
  kFlowBlocked = 10,
  kFlowUnblocked = 11,
  kDhcpConfig = 12,
  kDhcpLease = 13,
  kDhcpRelease = 14,
  kSwitchUp = 15,
  kSwitchDown = 16,
  kFlowOffloaded = 17,
  kFlowOnloaded = 18,
};

void encode_mac(pkt::BufferWriter& w, const MacAddress& mac) { w.u64(mac.to_uint64()); }
MacAddress decode_mac(pkt::BufferReader& r) { return MacAddress::from_uint64(r.u64()); }

void encode_policy(pkt::BufferWriter& w, const ctrl::Policy& p) {
  w.u32(p.id);
  w.length_prefixed_string(p.name);
  w.u32(static_cast<std::uint32_t>(p.priority));
  // Presence bitmap over the optional predicates, in field order.
  std::uint16_t present = 0;
  const auto mark = [&present](int bit, bool on) {
    if (on) present = static_cast<std::uint16_t>(present | (1u << bit));
  };
  mark(0, p.src_mac.has_value());
  mark(1, p.dst_mac.has_value());
  mark(2, p.nw_src.has_value());
  mark(3, p.nw_src_prefix.has_value());
  mark(4, p.nw_dst.has_value());
  mark(5, p.nw_dst_prefix.has_value());
  mark(6, p.nw_proto.has_value());
  mark(7, p.tp_dst.has_value());
  mark(8, p.vlan_id.has_value());
  w.u16(present);
  if (p.src_mac) encode_mac(w, *p.src_mac);
  if (p.dst_mac) encode_mac(w, *p.dst_mac);
  if (p.nw_src) w.u32(p.nw_src->value());
  if (p.nw_src_prefix) w.u8(*p.nw_src_prefix);
  if (p.nw_dst) w.u32(p.nw_dst->value());
  if (p.nw_dst_prefix) w.u8(*p.nw_dst_prefix);
  if (p.nw_proto) w.u8(*p.nw_proto);
  if (p.tp_dst) w.u16(*p.tp_dst);
  if (p.vlan_id) w.u16(*p.vlan_id);
  w.u8(static_cast<std::uint8_t>(p.action));
  w.u8(static_cast<std::uint8_t>(p.service_chain.size()));
  for (svc::ServiceType service : p.service_chain) w.u8(static_cast<std::uint8_t>(service));
  w.u8(static_cast<std::uint8_t>(p.granularity));
}

ctrl::Policy decode_policy(pkt::BufferReader& r) {
  ctrl::Policy p;
  p.id = r.u32();
  p.name = r.length_prefixed_string();
  p.priority = static_cast<std::int32_t>(r.u32());
  const std::uint16_t present = r.u16();
  const auto has = [present](int bit) { return (present & (1u << bit)) != 0; };
  if (has(0)) p.src_mac = decode_mac(r);
  if (has(1)) p.dst_mac = decode_mac(r);
  if (has(2)) p.nw_src = Ipv4Address(r.u32());
  if (has(3)) p.nw_src_prefix = r.u8();
  if (has(4)) p.nw_dst = Ipv4Address(r.u32());
  if (has(5)) p.nw_dst_prefix = r.u8();
  if (has(6)) p.nw_proto = r.u8();
  if (has(7)) p.tp_dst = r.u16();
  if (has(8)) p.vlan_id = r.u16();
  p.action = static_cast<ctrl::PolicyAction>(r.u8());
  const std::uint8_t chain = r.u8();
  p.service_chain.reserve(chain);
  for (std::uint8_t i = 0; i < chain; ++i) {
    p.service_chain.push_back(static_cast<svc::ServiceType>(r.u8()));
  }
  p.granularity = static_cast<ctrl::LbGranularity>(r.u8());
  return p;
}

void encode_body(pkt::BufferWriter& w, const RecordBody& body) {
  if (const auto* host = std::get_if<HostLearnedRecord>(&body)) {
    w.u8(static_cast<std::uint8_t>(RecordType::kHostLearned));
    encode_mac(w, host->mac);
    w.u32(host->ip.value());
    w.u64(host->dpid);
    w.u32(host->port);
    w.u64(host->seen_at);
  } else if (const auto* gone = std::get_if<HostRemovedRecord>(&body)) {
    w.u8(static_cast<std::uint8_t>(RecordType::kHostRemoved));
    encode_mac(w, gone->mac);
  } else if (const auto* ls = std::get_if<LsPortRecord>(&body)) {
    w.u8(static_cast<std::uint8_t>(RecordType::kLsPort));
    w.u64(ls->dpid);
    w.u32(ls->port);
  } else if (const auto* link = std::get_if<LinkRecord>(&body)) {
    w.u8(static_cast<std::uint8_t>(RecordType::kLink));
    w.u64(link->src);
    w.u32(link->src_port);
    w.u64(link->dst);
    w.u32(link->dst_port);
  } else if (const auto* added = std::get_if<PolicyAddedRecord>(&body)) {
    w.u8(static_cast<std::uint8_t>(RecordType::kPolicyAdded));
    encode_policy(w, added->policy);
  } else if (const auto* removed = std::get_if<PolicyRemovedRecord>(&body)) {
    w.u8(static_cast<std::uint8_t>(RecordType::kPolicyRemoved));
    w.u32(removed->id);
  } else if (const auto* def = std::get_if<DefaultActionRecord>(&body)) {
    w.u8(static_cast<std::uint8_t>(RecordType::kDefaultAction));
    w.u8(static_cast<std::uint8_t>(def->action));
  } else if (const auto* se = std::get_if<SeUpsertRecord>(&body)) {
    w.u8(static_cast<std::uint8_t>(RecordType::kSeUpsert));
    w.u64(se->se_id);
    encode_mac(w, se->mac);
    w.u32(se->ip.value());
    w.u8(static_cast<std::uint8_t>(se->service));
    w.u64(se->dpid);
    w.u32(se->port);
    w.u64(se->seen_at);
  } else if (const auto* se_gone = std::get_if<SeRemovedRecord>(&body)) {
    w.u8(static_cast<std::uint8_t>(RecordType::kSeRemoved));
    w.u64(se_gone->se_id);
  } else if (const auto* blocked = std::get_if<FlowBlockedRecord>(&body)) {
    w.u8(static_cast<std::uint8_t>(RecordType::kFlowBlocked));
    blocked->key.encode(w);
    w.u64(blocked->ingress_dpid);
    w.u32(blocked->ingress_port);
  } else if (const auto* unblocked = std::get_if<FlowUnblockedRecord>(&body)) {
    w.u8(static_cast<std::uint8_t>(RecordType::kFlowUnblocked));
    unblocked->key.encode(w);
  } else if (const auto* dhcp = std::get_if<DhcpConfigRecord>(&body)) {
    w.u8(static_cast<std::uint8_t>(RecordType::kDhcpConfig));
    w.u32(dhcp->base.value());
    w.u32(dhcp->size);
    w.u64(dhcp->lease_duration);
  } else if (const auto* lease = std::get_if<DhcpLeaseRecord>(&body)) {
    w.u8(static_cast<std::uint8_t>(RecordType::kDhcpLease));
    encode_mac(w, lease->mac);
    w.u32(lease->ip.value());
    w.u64(lease->expires);
  } else if (const auto* release = std::get_if<DhcpReleaseRecord>(&body)) {
    w.u8(static_cast<std::uint8_t>(RecordType::kDhcpRelease));
    encode_mac(w, release->mac);
  } else if (const auto* up = std::get_if<SwitchUpRecord>(&body)) {
    w.u8(static_cast<std::uint8_t>(RecordType::kSwitchUp));
    w.u64(up->dpid);
    w.u32(up->num_ports);
    w.length_prefixed_string(up->name);
  } else if (const auto* offloaded = std::get_if<FlowOffloadedRecord>(&body)) {
    w.u8(static_cast<std::uint8_t>(RecordType::kFlowOffloaded));
    offloaded->key.encode(w);
    w.u64(offloaded->inspected_bytes);
  } else if (const auto* onloaded = std::get_if<FlowOnloadedRecord>(&body)) {
    w.u8(static_cast<std::uint8_t>(RecordType::kFlowOnloaded));
    onloaded->key.encode(w);
  } else {
    const auto& down = std::get<SwitchDownRecord>(body);
    w.u8(static_cast<std::uint8_t>(RecordType::kSwitchDown));
    w.u64(down.dpid);
  }
}

std::optional<RecordBody> decode_body(pkt::BufferReader& r) {
  const auto type = static_cast<RecordType>(r.u8());
  switch (type) {
    case RecordType::kHostLearned: {
      HostLearnedRecord host;
      host.mac = decode_mac(r);
      host.ip = Ipv4Address(r.u32());
      host.dpid = r.u64();
      host.port = r.u32();
      host.seen_at = r.u64();
      return host;
    }
    case RecordType::kHostRemoved: return HostRemovedRecord{decode_mac(r)};
    case RecordType::kLsPort: {
      LsPortRecord ls;
      ls.dpid = r.u64();
      ls.port = r.u32();
      return ls;
    }
    case RecordType::kLink: {
      LinkRecord link;
      link.src = r.u64();
      link.src_port = r.u32();
      link.dst = r.u64();
      link.dst_port = r.u32();
      return link;
    }
    case RecordType::kPolicyAdded: return PolicyAddedRecord{decode_policy(r)};
    case RecordType::kPolicyRemoved: return PolicyRemovedRecord{r.u32()};
    case RecordType::kDefaultAction:
      return DefaultActionRecord{static_cast<ctrl::PolicyAction>(r.u8())};
    case RecordType::kSeUpsert: {
      SeUpsertRecord se;
      se.se_id = r.u64();
      se.mac = decode_mac(r);
      se.ip = Ipv4Address(r.u32());
      se.service = static_cast<svc::ServiceType>(r.u8());
      se.dpid = r.u64();
      se.port = r.u32();
      se.seen_at = r.u64();
      return se;
    }
    case RecordType::kSeRemoved: return SeRemovedRecord{r.u64()};
    case RecordType::kFlowBlocked: {
      FlowBlockedRecord blocked;
      blocked.key = pkt::FlowKey::decode(r);
      blocked.ingress_dpid = r.u64();
      blocked.ingress_port = r.u32();
      return blocked;
    }
    case RecordType::kFlowUnblocked: return FlowUnblockedRecord{pkt::FlowKey::decode(r)};
    case RecordType::kDhcpConfig: {
      DhcpConfigRecord dhcp;
      dhcp.base = Ipv4Address(r.u32());
      dhcp.size = r.u32();
      dhcp.lease_duration = r.u64();
      return dhcp;
    }
    case RecordType::kDhcpLease: {
      DhcpLeaseRecord lease;
      lease.mac = decode_mac(r);
      lease.ip = Ipv4Address(r.u32());
      lease.expires = r.u64();
      return lease;
    }
    case RecordType::kDhcpRelease: return DhcpReleaseRecord{decode_mac(r)};
    case RecordType::kSwitchUp: {
      SwitchUpRecord up;
      up.dpid = r.u64();
      up.num_ports = r.u32();
      up.name = r.length_prefixed_string();
      return up;
    }
    case RecordType::kSwitchDown: return SwitchDownRecord{r.u64()};
    case RecordType::kFlowOffloaded: {
      FlowOffloadedRecord offloaded;
      offloaded.key = pkt::FlowKey::decode(r);
      offloaded.inspected_bytes = r.u64();
      return offloaded;
    }
    case RecordType::kFlowOnloaded: return FlowOnloadedRecord{pkt::FlowKey::decode(r)};
  }
  return std::nullopt;
}

}  // namespace

const char* record_name(const RecordBody& body) {
  struct Namer {
    const char* operator()(const HostLearnedRecord&) { return "host_learned"; }
    const char* operator()(const HostRemovedRecord&) { return "host_removed"; }
    const char* operator()(const LsPortRecord&) { return "ls_port"; }
    const char* operator()(const LinkRecord&) { return "link"; }
    const char* operator()(const PolicyAddedRecord&) { return "policy_added"; }
    const char* operator()(const PolicyRemovedRecord&) { return "policy_removed"; }
    const char* operator()(const DefaultActionRecord&) { return "default_action"; }
    const char* operator()(const SeUpsertRecord&) { return "se_upsert"; }
    const char* operator()(const SeRemovedRecord&) { return "se_removed"; }
    const char* operator()(const FlowBlockedRecord&) { return "flow_blocked"; }
    const char* operator()(const FlowUnblockedRecord&) { return "flow_unblocked"; }
    const char* operator()(const DhcpConfigRecord&) { return "dhcp_config"; }
    const char* operator()(const DhcpLeaseRecord&) { return "dhcp_lease"; }
    const char* operator()(const DhcpReleaseRecord&) { return "dhcp_release"; }
    const char* operator()(const SwitchUpRecord&) { return "switch_up"; }
    const char* operator()(const SwitchDownRecord&) { return "switch_down"; }
    const char* operator()(const FlowOffloadedRecord&) { return "flow_offloaded"; }
    const char* operator()(const FlowOnloadedRecord&) { return "flow_onloaded"; }
  };
  return std::visit(Namer{}, body);
}

std::vector<std::uint8_t> encode_record(const ReplicationRecord& record) {
  pkt::BufferWriter w;
  w.u16(kReplicationFormatVersion);
  w.u64(record.seq);
  encode_body(w, record.body);
  return w.take();
}

std::optional<ReplicationRecord> decode_record(std::span<const std::uint8_t> bytes) {
  pkt::BufferReader r(bytes);
  if (r.u16() != kReplicationFormatVersion) return std::nullopt;
  ReplicationRecord record;
  record.seq = r.u64();
  auto body = decode_body(r);
  if (!body || !r.ok() || r.remaining() != 0) return std::nullopt;
  record.body = std::move(*body);
  return record;
}

std::vector<std::uint8_t> encode_snapshot_records(const std::vector<RecordBody>& records) {
  pkt::BufferWriter w;
  w.u16(kReplicationFormatVersion);
  w.u32(static_cast<std::uint32_t>(records.size()));
  for (const RecordBody& body : records) encode_body(w, body);
  return w.take();
}

std::optional<std::vector<RecordBody>> decode_snapshot_records(
    std::span<const std::uint8_t> bytes) {
  pkt::BufferReader r(bytes);
  if (r.u16() != kReplicationFormatVersion) return std::nullopt;
  const std::uint32_t count = r.u32();
  std::vector<RecordBody> records;
  records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto body = decode_body(r);
    if (!body) return std::nullopt;
    records.push_back(std::move(*body));
  }
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return records;
}

std::uint64_t ReplicationLog::append(RecordBody body) {
  const std::uint64_t seq = next_seq_++;
  records_.push_back(ReplicationRecord{seq, std::move(body)});
  return seq;
}

std::optional<std::vector<ReplicationRecord>> ReplicationLog::since(
    std::uint64_t after_seq) const {
  // The span (after_seq, head] must be fully retained; a truncated prefix
  // means the caller can only recover through a snapshot.
  if (after_seq < truncated_through_) return std::nullopt;
  std::vector<ReplicationRecord> out;
  for (const ReplicationRecord& record : records_) {
    if (record.seq > after_seq) out.push_back(record);
  }
  return out;
}

void ReplicationLog::truncate(std::uint64_t through_seq) {
  while (!records_.empty() && records_.front().seq <= through_seq) records_.pop_front();
  truncated_through_ = std::max(truncated_through_, through_seq);
}

}  // namespace livesec::ha
